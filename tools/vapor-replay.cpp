//===- tools/vapor-replay.cpp - Execution-service load driver -------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Replays the kernel suite against a running vapor-serve instance under
// real concurrency and checks every answer without trusting the server:
//
//  - each kernel is vectorized + encoded CLIENT-side, and its expected
//    outputs are computed client-side with the golden IR evaluator; a
//    successful response's array lanes must match (0 mismatches is a
//    hard gate);
//  - requests rotate across tenants, targets, and kernels, so the
//    server's cache, quotas, and queue see genuinely mixed traffic;
//  - with --inject-every N, every Nth request carries a request-scoped
//    fault-injection class (decode failure, verify failure, JIT-lower
//    failure, VM alignment trap, deadline exhaustion, queue-full
//    rejection, dropped response write) and the reply is checked against
//    that class's expected structured Status -- under load, while other
//    tenants' clean requests run on the same workers;
//  - genuine Overloaded/QuotaExceeded rejections are retried after the
//    server's RetryAfterMs hint (that is the backpressure contract);
//  - at the end, a StatsReq audits the service: cache hit rate and
//    evictions, deadline count, and the server's resident-set size
//    against --max-rss-mb.
//
// Exit status is the number of contract violations (0 = clean). --json
// writes the BENCH_server.json consumed by scripts/perf_gate.py
// --server-floor.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"
#include "ir/Interp.h"
#include "kernels/Kernels.h"
#include "server/Protocol.h"
#include "support/FaultInject.h"
#include "target/Target.h"
#include "vapor/FillAdapters.h"
#include "vectorizer/Vectorizer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace vapor;
using server::FrameKind;

namespace {

/// One kernel prepared for replay: the encoded module the server will
/// receive and the golden outputs no server response may contradict.
struct Prep {
  const kernels::Kernel *K = nullptr;
  std::vector<uint8_t> Bytecode;
  struct GoldArray {
    std::string Name;
    bool IsFP = false;
    std::vector<int64_t> I; ///< Integer lanes.
    std::vector<double> F;  ///< FP lanes (value, not bit pattern).
  };
  std::vector<GoldArray> Golden;
};

struct Tally {
  std::atomic<uint64_t> Completed{0};  ///< Ok responses, golden-checked.
  std::atomic<uint64_t> Mismatches{0}; ///< Golden lane disagreements.
  std::atomic<uint64_t> Unexpected{0}; ///< Wrong Status for the case.
  std::atomic<uint64_t> ProtoFail{0};  ///< Framing/decode/id violations.
  std::atomic<uint64_t> ServerGone{0}; ///< Connection died mid-replay.
  std::atomic<uint64_t> Overloaded{0}; ///< Genuine backpressure hits.
  std::atomic<uint64_t> Quota{0};
  std::atomic<uint64_t> Retried{0};    ///< Backoff-and-resend cycles.
  std::atomic<uint64_t> InjectedOk{0}; ///< Injected cases answered right.
  std::atomic<uint64_t> Dropped{0};    ///< SocketIo: reply never sent.
  std::atomic<uint64_t> Deadlines{0};  ///< DeadlineExceeded answers.
};

int connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Connect with retries so the driver can be started alongside the
/// server before its socket is bound.
int connectRetry(const std::string &Path, int Attempts = 50) {
  for (int I = 0; I < Attempts; ++I) {
    int Fd = connectUnix(Path);
    if (Fd >= 0)
      return Fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

/// Computes the golden outputs for \p K exactly the way the server runs
/// the module: deterministic default fill with \p Seed, parameters bound
/// from the kernel's workload tables.
void computeGolden(Prep &P, uint64_t Seed) {
  const kernels::Kernel &K = *P.K;
  ir::Evaluator E(K.Source, {});
  E.allocAllArrays();
  detail::EvalFill Fill(E);
  kernels::defaultFill(Fill, K.Source, Seed);
  detail::setParams(
      K, K.Source,
      [&](const std::string &N, int64_t V) { E.setParamInt(N, V); },
      [&](const std::string &N, double V) { E.setParamFP(N, V); });
  E.run();
  for (uint32_t A = 0; A < K.Source.Arrays.size(); ++A) {
    const ir::ArrayInfo &AI = K.Source.Arrays[A];
    Prep::GoldArray G;
    G.Name = AI.Name;
    G.IsFP = ir::isFloatKind(AI.Elem);
    for (uint64_t I = 0; I < AI.NumElems; ++I) {
      if (G.IsFP)
        G.F.push_back(E.peekFP(A, I));
      else
        G.I.push_back(E.peekInt(A, I));
    }
    P.Golden.push_back(std::move(G));
  }
}

/// Checks a successful response's array dump against the prep's golden
/// lanes. \returns true on match, else fills \p Err.
bool checkGolden(const Prep &P, const server::RunResponse &Resp,
                 std::string &Err) {
  // The vectorizer may append "__vt*" scratch arrays to the module; the
  // server dumps every module array, so the source arrays are a strict
  // prefix of the response and anything beyond it must be scratch.
  if (Resp.Arrays.size() < P.Golden.size()) {
    Err = "array count " + std::to_string(Resp.Arrays.size()) + ", golden " +
          std::to_string(P.Golden.size());
    return false;
  }
  for (size_t A = P.Golden.size(); A < Resp.Arrays.size(); ++A)
    if (Resp.Arrays[A].Name.rfind("__vt", 0) != 0) {
      Err = "unexpected non-scratch array " + Resp.Arrays[A].Name;
      return false;
    }
  for (size_t A = 0; A < P.Golden.size(); ++A) {
    const Prep::GoldArray &G = P.Golden[A];
    const server::ArrayDump &D = Resp.Arrays[A];
    size_t Want = G.IsFP ? G.F.size() : G.I.size();
    if (D.Name != G.Name || (D.IsFP != 0) != G.IsFP ||
        D.Lanes.size() != Want) {
      Err = "array " + std::to_string(A) + " shape mismatch (" + D.Name +
            ")";
      return false;
    }
    for (size_t I = 0; I < D.Lanes.size(); ++I) {
      if (G.IsFP) {
        double Got;
        static_assert(sizeof(Got) == sizeof(uint64_t), "lane width");
        std::memcpy(&Got, &D.Lanes[I], sizeof(Got));
        double WantV = G.F[I];
        double Tol = P.K->Tolerance * std::max(1.0, std::fabs(WantV));
        if (std::fabs(WantV - Got) > Tol &&
            !(std::isnan(WantV) && std::isnan(Got))) {
          Err = G.Name + "[" + std::to_string(I) +
                "] = " + std::to_string(Got) + ", golden " +
                std::to_string(WantV);
          return false;
        }
      } else if (static_cast<int64_t>(D.Lanes[I]) != G.I[I]) {
        Err = G.Name + "[" + std::to_string(I) + "] = " +
              std::to_string(static_cast<int64_t>(D.Lanes[I])) +
              ", golden " + std::to_string(G.I[I]);
        return false;
      }
    }
  }
  return true;
}

/// Injection classes the replay rotates through. NativeTrap is omitted:
/// the driver never requests the native tier, so its sites cannot run.
constexpr faultinject::SiteClass InjectRotation[] = {
    faultinject::SiteClass::Decode,   faultinject::SiteClass::Verify,
    faultinject::SiteClass::JitLower, faultinject::SiteClass::VmAlign,
    faultinject::SiteClass::Deadline, faultinject::SiteClass::QueueFull,
    faultinject::SiteClass::SocketIo,
};
constexpr size_t InjectRotationSize =
    sizeof(InjectRotation) / sizeof(InjectRotation[0]);

struct DriverConfig {
  std::string Socket;
  uint64_t Requests = 2000;
  unsigned Tenants = 4;
  unsigned Connections = 8;
  uint64_t InjectEvery = 0; ///< 0 = no injection.
  uint64_t MaxRssMb = 0;    ///< 0 = no bound.
  bool ExpectEvictions = false;
  /// The server was started with --tiered. Relaxes the JitLower/VmAlign
  /// injected expectations: a cold request enters at the forced-scalar
  /// JIT floor, where an injected lowering fault has no tier below it in
  /// fail-closed mode -- the contract becomes "golden-checked Ok after
  /// demotion OR a structured non-abort failure", never a dead server.
  bool Tiered = false;
  /// Gate on the post-run stats audit showing >0 tier promotions (the
  /// CI server-load job's proof that background compilation really ran).
  bool ExpectPromotions = false;
  bool Verbose = false;
  const char *JsonPath = nullptr;
};

/// One connection's synchronous replay loop over its slice of the
/// request index space.
void runClient(const DriverConfig &Cfg, unsigned Tid,
               const std::vector<Prep> &Preps,
               const std::vector<std::string> &Targets, Tally &T,
               std::vector<double> &LatenciesMs) {
  int Fd = connectRetry(Cfg.Socket);
  if (Fd < 0) {
    T.ServerGone.fetch_add(1);
    return;
  }
  using Clock = std::chrono::steady_clock;
  const uint8_t CodeOk = 0;
  const auto CodeOf = [](status::Code C) {
    return static_cast<uint8_t>(C);
  };

  for (uint64_t J = Tid; J < Cfg.Requests; J += Cfg.Connections) {
    const Prep &P = Preps[J % Preps.size()];
    server::RunRequest Req;
    Req.RequestId = J + 1;
    Req.Tenant = "tenant-" + std::to_string(J % Cfg.Tenants);
    Req.Name = P.K->Name;
    Req.Target = Targets[J % Targets.size()];
    Req.FillSeed = 7;
    Req.IntParams = P.K->IntParams;
    Req.FPParams = P.K->FPParams;
    Req.Bytecode = P.Bytecode;
    bool Injected = Cfg.InjectEvery != 0 && J % Cfg.InjectEvery == 0;
    faultinject::SiteClass Cls = faultinject::SiteClass::Decode;
    if (Injected) {
      Cls = InjectRotation[(J / Cfg.InjectEvery) % InjectRotationSize];
      Req.Inject = static_cast<uint8_t>(Cls);
    }

    // Backoff-and-resend loop for genuine backpressure; injected cases
    // are answered on the first attempt by construction.
    for (int Attempt = 0; Attempt < 200; ++Attempt) {
      auto T0 = Clock::now();
      if (!server::writeFrame(Fd, FrameKind::RunReq,
                              server::encodeRunRequest(Req))) {
        T.ServerGone.fetch_add(1);
        ::close(Fd);
        return;
      }
      if (Injected && Cls == faultinject::SiteClass::SocketIo) {
        // The server executes the run but the response write is dropped
        // by the injected fault; nothing will arrive for this id.
        T.Dropped.fetch_add(1);
        T.InjectedOk.fetch_add(1);
        break;
      }

      FrameKind Kind;
      std::vector<uint8_t> Payload;
      bool CleanEof = false;
      Status St = server::readFrame(Fd, Kind, Payload, CleanEof);
      if (!St.ok() || CleanEof || Kind != FrameKind::RunResp) {
        T.ServerGone.fetch_add(1);
        ::close(Fd);
        return;
      }
      server::RunResponse Resp;
      if (!server::decodeRunResponse(Payload.data(), Payload.size(), Resp)
               .ok() ||
          Resp.RequestId != Req.RequestId) {
        T.ProtoFail.fetch_add(1);
        break;
      }
      double Ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            T0)
                      .count();

      if (!Injected) {
        if (Resp.Code == CodeOk) {
          std::string Err;
          if (checkGolden(P, Resp, Err)) {
            T.Completed.fetch_add(1);
            LatenciesMs.push_back(Ms);
          } else {
            T.Mismatches.fetch_add(1);
            std::printf("MISMATCH %-14s %-8s id=%llu %s\n",
                        P.K->Name.c_str(), Req.Target.c_str(),
                        (unsigned long long)Req.RequestId, Err.c_str());
          }
          break;
        }
        if (Resp.Code == CodeOf(status::Code::Overloaded) ||
            Resp.Code == CodeOf(status::Code::QuotaExceeded)) {
          // The backpressure contract: honor the hint and resend.
          (Resp.Code == CodeOf(status::Code::Overloaded) ? T.Overloaded
                                                         : T.Quota)
              .fetch_add(1);
          T.Retried.fetch_add(1);
          uint32_t BackoffMs = Resp.RetryAfterMs ? Resp.RetryAfterMs : 5;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(BackoffMs));
          continue;
        }
        T.Unexpected.fetch_add(1);
        std::printf("UNEXPECTED %-14s id=%llu code=%u layer=%u %s\n",
                    P.K->Name.c_str(), (unsigned long long)Req.RequestId,
                    Resp.Code, Resp.Layer, Resp.Message.c_str());
        break;
      }

      // Injected case: check the class's expected structured answer.
      bool Ok = false;
      std::string Expect;
      switch (Cls) {
      case faultinject::SiteClass::Decode:
        // The module fails to decode; fail-closed, so the run stops
        // with the decode Status instead of falling back.
        Ok = Resp.Code != CodeOk;
        Expect = "non-ok decode failure";
        break;
      case faultinject::SiteClass::Verify:
      case faultinject::SiteClass::JitLower:
      case faultinject::SiteClass::VmAlign:
        // One-shot faults the chain absorbs: the run demotes (or
        // deopt-retries) and still completes with correct results.
        // Tiered server: the run may have ENTERED at the forced-scalar
        // floor, where a JitLower/VmAlign fault has nothing below it to
        // demote to (fail-closed) -- a structured non-abort failure is
        // then also within contract.
        Ok = Resp.Code == CodeOk;
        if (Ok) {
          std::string Err;
          Ok = checkGolden(P, Resp, Err);
          if (!Ok)
            Expect = "golden match after demotion: " + Err;
        } else if (Cfg.Tiered && Cls != faultinject::SiteClass::Verify) {
          Ok = true; // Structured failure at the fail-closed floor.
        } else {
          Expect = "ok-after-demotion";
        }
        break;
      case faultinject::SiteClass::Deadline:
        Ok = Resp.Code == CodeOf(status::Code::DeadlineExceeded);
        Expect = "deadline-exceeded";
        if (Ok)
          T.Deadlines.fetch_add(1);
        break;
      case faultinject::SiteClass::QueueFull:
        Ok = Resp.Code == CodeOf(status::Code::Overloaded) &&
             Resp.RetryAfterMs > 0;
        Expect = "overloaded with retry-after hint";
        break;
      case faultinject::SiteClass::NativeTrap:
      case faultinject::SiteClass::SocketIo:
        break; // Not in the rotation / handled before the read.
      }
      if (Ok) {
        T.InjectedOk.fetch_add(1);
        if (Cfg.Verbose)
          std::printf("inject ok  %-10s %-14s id=%llu code=%u\n",
                      faultinject::siteClassName(Cls), P.K->Name.c_str(),
                      (unsigned long long)Req.RequestId, Resp.Code);
      } else {
        T.Unexpected.fetch_add(1);
        std::printf("INJECT FAIL %-10s %-14s id=%llu code=%u layer=%u: "
                    "expected %s (%s)\n",
                    faultinject::siteClassName(Cls), P.K->Name.c_str(),
                    (unsigned long long)Req.RequestId, Resp.Code,
                    Resp.Layer, Expect.c_str(), Resp.Message.c_str());
      }
      break;
    }
  }
  ::close(Fd);
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P / 100.0 * Sorted.size());
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

} // namespace

static int usage() {
  std::printf(
      "usage: vapor-replay --socket <path> [--requests N] [--tenants N]\n"
      "                    [--connections N] [--inject-every N]\n"
      "                    [--max-rss-mb N] [--expect-evictions]\n"
      "                    [--tiered] [--expect-promotions]\n"
      "                    [--json <path>] [--verbose]\n");
  return 2;
}

int main(int argc, char **argv) {
  DriverConfig Cfg;
  for (int I = 1; I < argc; ++I) {
    auto Num = [&](uint64_t &Out) {
      if (I + 1 >= argc)
        return false;
      char *End = nullptr;
      Out = std::strtoull(argv[++I], &End, 10);
      return End != argv[I] && !*End;
    };
    uint64_t V = 0;
    if (!std::strcmp(argv[I], "--socket") && I + 1 < argc)
      Cfg.Socket = argv[++I];
    else if (!std::strcmp(argv[I], "--requests") && Num(V) && V >= 1)
      Cfg.Requests = V;
    else if (!std::strcmp(argv[I], "--tenants") && Num(V) && V >= 1)
      Cfg.Tenants = static_cast<unsigned>(V);
    else if (!std::strcmp(argv[I], "--connections") && Num(V) && V >= 1)
      Cfg.Connections = static_cast<unsigned>(V);
    else if (!std::strcmp(argv[I], "--inject-every") && Num(V))
      Cfg.InjectEvery = V;
    else if (!std::strcmp(argv[I], "--max-rss-mb") && Num(V))
      Cfg.MaxRssMb = V;
    else if (!std::strcmp(argv[I], "--expect-evictions"))
      Cfg.ExpectEvictions = true;
    else if (!std::strcmp(argv[I], "--tiered"))
      Cfg.Tiered = true;
    else if (!std::strcmp(argv[I], "--expect-promotions"))
      Cfg.ExpectPromotions = true;
    else if (!std::strcmp(argv[I], "--verbose"))
      Cfg.Verbose = true;
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      Cfg.JsonPath = argv[++I];
    else {
      std::printf("bad option or missing value at '%s'\n", argv[I]);
      return usage();
    }
  }
  if (Cfg.Socket.empty())
    return usage();

  // Client-side prep: vectorize + encode every kernel, compute goldens.
  std::vector<kernels::Kernel> Ks = kernels::allKernels();
  std::vector<Prep> Preps;
  for (const kernels::Kernel &K : Ks) {
    Prep P;
    P.K = &K;
    auto VR = vectorizer::vectorize(K.Source, {});
    P.Bytecode = bytecode::encode(VR.Output);
    computeGolden(P, /*Seed=*/7);
    Preps.push_back(std::move(P));
  }
  std::vector<std::string> Targets;
  for (const target::TargetDesc &T : target::allTargets())
    Targets.push_back(T.Name);

  std::printf("replaying %llu requests: %zu kernels x %zu targets, "
              "%u tenants, %u connections%s\n",
              (unsigned long long)Cfg.Requests, Preps.size(),
              Targets.size(), Cfg.Tenants, Cfg.Connections,
              Cfg.InjectEvery ? ", fault injection armed" : "");

  Tally T;
  std::vector<std::vector<double>> PerThreadLat(Cfg.Connections);
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Cfg.Connections; ++I)
    Threads.emplace_back([&, I] {
      runClient(Cfg, I, Preps, Targets, T, PerThreadLat[I]);
    });
  for (std::thread &Th : Threads)
    Th.join();
  double WallSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - T0)
                       .count();

  // Post-run audit over a fresh connection: the server must still be
  // alive and answering after everything above.
  server::StatsResponse Stats;
  bool StatsOk = false;
  if (int Fd = connectUnix(Cfg.Socket); Fd >= 0) {
    if (server::writeFrame(Fd, FrameKind::StatsReq, {})) {
      FrameKind Kind;
      std::vector<uint8_t> Payload;
      bool CleanEof = false;
      if (server::readFrame(Fd, Kind, Payload, CleanEof).ok() &&
          !CleanEof && Kind == FrameKind::StatsResp)
        StatsOk = server::decodeStatsResponse(Payload.data(),
                                              Payload.size(), Stats)
                      .ok();
    }
    ::close(Fd);
  }

  std::vector<double> Lat;
  for (std::vector<double> &L : PerThreadLat)
    Lat.insert(Lat.end(), L.begin(), L.end());
  std::sort(Lat.begin(), Lat.end());
  double P50 = percentile(Lat, 50), P99 = percentile(Lat, 99);
  double Rps = WallSec > 0 ? T.Completed.load() / WallSec : 0;
  uint64_t HitDen = Stats.CacheHits + Stats.CacheMisses;
  double HitRate = HitDen ? double(Stats.CacheHits) / double(HitDen) : 0;

  uint64_t Failures = 0;
  auto Gate = [&](bool Bad, const char *What) {
    if (Bad) {
      ++Failures;
      std::printf("FAIL %s\n", What);
    }
  };
  Gate(!StatsOk, "server did not answer the post-run stats audit");
  Gate(T.ServerGone.load() != 0, "connection(s) died mid-replay");
  Gate(T.Mismatches.load() != 0, "golden mismatches on ok responses");
  Gate(T.Unexpected.load() != 0, "unexpected structured Status answers");
  Gate(T.ProtoFail.load() != 0, "protocol violations in responses");
  Gate(T.Completed.load() == 0, "no request completed");
  if (Cfg.ExpectEvictions)
    Gate(StatsOk && Stats.CacheEvictions == 0,
         "bounded cache never evicted under load");
  if (Cfg.ExpectPromotions)
    Gate(StatsOk && Stats.TierPromotions == 0,
         "tiered server recorded zero promotions under load");
  if (Cfg.MaxRssMb && StatsOk)
    Gate(Stats.RssBytes > Cfg.MaxRssMb * (1ull << 20),
         "server RSS above the configured bound");

  std::printf(
      "completed=%llu injected_ok=%llu dropped=%llu retried=%llu "
      "overloaded=%llu quota=%llu deadlines(client)=%llu\n"
      "p50=%.3fms p99=%.3fms throughput=%.1f req/s\n",
      (unsigned long long)T.Completed.load(),
      (unsigned long long)T.InjectedOk.load(),
      (unsigned long long)T.Dropped.load(),
      (unsigned long long)T.Retried.load(),
      (unsigned long long)T.Overloaded.load(),
      (unsigned long long)T.Quota.load(),
      (unsigned long long)T.Deadlines.load(), P50, P99, Rps);
  if (StatsOk)
    std::printf("server: accepted=%llu completed=%llu deadlines=%llu "
                "cache{hit_rate=%.3f bytes=%llu/%llu evictions=%llu} "
                "rss=%.1fMiB\n",
                (unsigned long long)Stats.Accepted,
                (unsigned long long)Stats.Completed,
                (unsigned long long)Stats.Deadlines, HitRate,
                (unsigned long long)Stats.CacheBytesLive,
                (unsigned long long)Stats.CacheCapacity,
                (unsigned long long)Stats.CacheEvictions,
                Stats.RssBytes / double(1 << 20));
  if (StatsOk && (Cfg.Tiered || Stats.TierInvocations))
    std::printf("server tiering: invocations=%llu promotions=%llu "
                "compiles{ok=%llu failed=%llu} queue_rejects=%llu "
                "pins=%llu\n",
                (unsigned long long)Stats.TierInvocations,
                (unsigned long long)Stats.TierPromotions,
                (unsigned long long)Stats.TierCompilesOk,
                (unsigned long long)Stats.TierCompilesFailed,
                (unsigned long long)Stats.TierQueueRejects,
                (unsigned long long)Stats.TierPins);

  if (Cfg.JsonPath) {
    std::FILE *F = std::fopen(Cfg.JsonPath, "w");
    if (!F) {
      std::printf("cannot write %s\n", Cfg.JsonPath);
      return static_cast<int>(Failures + 1);
    }
    std::fprintf(
        F,
        "{\n"
        "  \"schema\": \"vapor-bench-server-v1\",\n"
        "  \"requests\": %llu,\n"
        "  \"tenants\": %u,\n"
        "  \"connections\": %u,\n"
        "  \"inject_every\": %llu,\n"
        "  \"completed\": %llu,\n"
        "  \"injected_ok\": %llu,\n"
        "  \"dropped_responses\": %llu,\n"
        "  \"retried\": %llu,\n"
        "  \"golden_mismatches\": %llu,\n"
        "  \"unexpected_status\": %llu,\n"
        "  \"protocol_failures\": %llu,\n"
        "  \"server_aborts\": %llu,\n"
        "  \"failures\": %llu,\n"
        "  \"p50_ms\": %.4f,\n"
        "  \"p99_ms\": %.4f,\n"
        "  \"throughput_rps\": %.2f,\n"
        "  \"cache_hit_rate\": %.4f,\n"
        "  \"cache_evictions\": %llu,\n"
        "  \"cache_bytes_live\": %llu,\n"
        "  \"cache_capacity\": %llu,\n"
        "  \"server_deadlines\": %llu,\n"
        "  \"server_rss_bytes\": %llu,\n"
        "  \"tiered\": %s,\n"
        "  \"promotions\": %llu,\n"
        "  \"tier_compiles_ok\": %llu,\n"
        "  \"tier_compiles_failed\": %llu\n"
        "}\n",
        (unsigned long long)Cfg.Requests, Cfg.Tenants, Cfg.Connections,
        (unsigned long long)Cfg.InjectEvery,
        (unsigned long long)T.Completed.load(),
        (unsigned long long)T.InjectedOk.load(),
        (unsigned long long)T.Dropped.load(),
        (unsigned long long)T.Retried.load(),
        (unsigned long long)T.Mismatches.load(),
        (unsigned long long)T.Unexpected.load(),
        (unsigned long long)T.ProtoFail.load(),
        (unsigned long long)(T.ServerGone.load() + (StatsOk ? 0 : 1)),
        (unsigned long long)Failures, P50, P99, Rps, HitRate,
        (unsigned long long)Stats.CacheEvictions,
        (unsigned long long)Stats.CacheBytesLive,
        (unsigned long long)Stats.CacheCapacity,
        (unsigned long long)Stats.Deadlines,
        (unsigned long long)Stats.RssBytes,
        Cfg.Tiered ? "true" : "false",
        (unsigned long long)Stats.TierPromotions,
        (unsigned long long)Stats.TierCompilesOk,
        (unsigned long long)Stats.TierCompilesFailed);
    std::fclose(F);
    std::printf("wrote %s\n", Cfg.JsonPath);
  }

  return static_cast<int>(Failures);
}
