//===- tools/vapor-verify.cpp - Split-bytecode verifier CLI ---------------===//
//
// Part of the Vapor SIMD reproduction.
//
// Usage:
//   vapor-verify --all-kernels [--notes]
//   vapor-verify <kernel-name> [target-name] [--notes]
//
// Runs the offline vectorizer on the named kernel(s), pushes the result
// through the real encode/decode interchange path, and statically
// verifies the decoded module: alignment-safety proofs for every
// lowering strategy of every requested target, hint re-derivation, guard
// and idiom-chain analysis. Exit status is the number of modules with
// verification errors (0 = everything proved).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"
#include "kernels/Kernels.h"
#include "target/Target.h"
#include "vectorizer/Vectorizer.h"
#include "verify/Verify.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace vapor;

namespace {

/// Vectorize + encode + decode: exactly what the split pipeline hands to
/// an online compiler.
bool shipKernel(const kernels::Kernel &K, ir::Function &Out,
                size_t &Bytes) {
  auto VR = vectorizer::vectorize(K.Source, {});
  std::vector<uint8_t> Encoded = bytecode::encode(VR.Output);
  Bytes = Encoded.size();
  std::string Err;
  auto Decoded = bytecode::decode(Encoded, Err);
  if (!Decoded) {
    std::printf("%-16s round-trip FAILED: %s\n", K.Name.c_str(),
                Err.c_str());
    return false;
  }
  Out = std::move(*Decoded);
  return true;
}

int verifyOne(const kernels::Kernel &K, const verify::VerifyOptions &VO,
              bool Notes) {
  ir::Function Mod("");
  size_t Bytes = 0;
  if (!shipKernel(K, Mod, Bytes))
    return 1;
  verify::Report R = verify::verifyModule(Mod, VO);
  std::printf("%-16s %5zuB  %4llu/%llu obligations  %zu errors  "
              "%zu warnings  %s\n",
              K.Name.c_str(), Bytes,
              (unsigned long long)R.ObligationsProved,
              (unsigned long long)(R.ObligationsProved +
                                   R.ObligationsFailed),
              R.count(verify::Severity::Error),
              R.count(verify::Severity::Warning),
              R.ok() ? "OK" : "FAILED");
  for (const verify::Diagnostic &D : R.Diags) {
    if (D.Sev == verify::Severity::Note && !Notes)
      continue;
    std::printf("    %s\n", D.str().c_str());
  }
  return R.ok() ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  bool All = false, Notes = false;
  std::string KernelName, TargetName;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--all-kernels"))
      All = true;
    else if (!std::strcmp(argv[I], "--notes"))
      Notes = true;
    else if (KernelName.empty())
      KernelName = argv[I];
    else
      TargetName = argv[I];
  }
  if (!All && KernelName.empty()) {
    std::printf("usage: vapor-verify --all-kernels [--notes]\n"
                "       vapor-verify <kernel> [target] [--notes]\n");
    return 2;
  }

  verify::VerifyOptions VO;
  if (!TargetName.empty()) {
    bool Found = false;
    for (const target::TargetDesc &T : target::allTargets())
      if (T.Name == TargetName) {
        VO.Targets = {T};
        Found = true;
      }
    if (!Found) {
      std::printf("unknown target '%s' (try: sse altivec neon avx "
                  "scalar)\n",
                  TargetName.c_str());
      return 2;
    }
  }

  std::vector<kernels::Kernel> Ks;
  if (All)
    Ks = kernels::allKernels();
  else
    Ks.push_back(kernels::kernelByName(KernelName));

  int Failed = 0;
  for (const kernels::Kernel &K : Ks)
    Failed += verifyOne(K, VO, Notes);
  if (All)
    std::printf("%zu kernels verified, %d failed\n", Ks.size(), Failed);
  return Failed;
}
