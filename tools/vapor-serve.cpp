//===- tools/vapor-serve.cpp - Kernel-execution daemon entry point --------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Long-running front end over server::Server. Binds the AF_UNIX socket,
// prints a readiness line, then parks on sigwait until SIGTERM/SIGINT
// asks for a graceful drain: stop accepting, answer everything already
// admitted, reject new runs with Unavailable, tear down, exit 0.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace vapor;

static int usage() {
  std::printf(
      "usage: vapor-serve --socket <path> [--workers N] [--max-queue N]\n"
      "                   [--max-per-tenant N] [--retry-after-ms N]\n"
      "                   [--cache-mb N] [--default-fuel N] [--max-fuel N]\n"
      "                   [--tiered]\n"
      "  --socket          AF_UNIX listen path (required)\n"
      "  --workers         execution workers (default: host concurrency)\n"
      "  --max-queue       admission bound before Overloaded (default 256)\n"
      "  --max-per-tenant  per-tenant in-flight cap (default 64)\n"
      "  --retry-after-ms  backoff hint sent with Overloaded (default 50)\n"
      "  --cache-mb        code-cache budget in MiB, 0 = unbounded "
      "(default 64)\n"
      "  --default-fuel    dispatch budget for requests that ask for 0\n"
      "  --max-fuel        clamp on client-supplied budgets, 0 = no clamp\n"
      "  --tiered          tiered execution: cold requests run at the\n"
      "                    forced-scalar JIT floor; hot modules are\n"
      "                    promoted by background compiles on idle "
      "workers\n");
  return 2;
}

static bool parseU64(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End)
    return false;
  Out = V;
  return true;
}

int main(int argc, char **argv) {
  server::ServerOptions Opts;
  for (int I = 1; I < argc; ++I) {
    uint64_t V = 0;
    if (!std::strcmp(argv[I], "--socket") && I + 1 < argc) {
      Opts.SocketPath = argv[++I];
    } else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc &&
               parseU64(argv[I + 1], V)) {
      Opts.Workers = static_cast<unsigned>(V);
      ++I;
    } else if (!std::strcmp(argv[I], "--max-queue") && I + 1 < argc &&
               parseU64(argv[I + 1], V) && V >= 1) {
      Opts.MaxQueue = static_cast<uint32_t>(V);
      ++I;
    } else if (!std::strcmp(argv[I], "--max-per-tenant") && I + 1 < argc &&
               parseU64(argv[I + 1], V) && V >= 1) {
      Opts.MaxPerTenant = static_cast<uint32_t>(V);
      ++I;
    } else if (!std::strcmp(argv[I], "--retry-after-ms") && I + 1 < argc &&
               parseU64(argv[I + 1], V)) {
      Opts.RetryAfterMs = static_cast<uint32_t>(V);
      ++I;
    } else if (!std::strcmp(argv[I], "--cache-mb") && I + 1 < argc &&
               parseU64(argv[I + 1], V)) {
      Opts.CacheCapacityBytes = static_cast<size_t>(V) << 20;
      ++I;
    } else if (!std::strcmp(argv[I], "--default-fuel") && I + 1 < argc &&
               parseU64(argv[I + 1], V) && V >= 1) {
      Opts.DefaultDeadlineFuel = V;
      ++I;
    } else if (!std::strcmp(argv[I], "--max-fuel") && I + 1 < argc &&
               parseU64(argv[I + 1], V)) {
      Opts.MaxDeadlineFuel = V;
      ++I;
    } else if (!std::strcmp(argv[I], "--tiered")) {
      Opts.Tiered = true;
    } else {
      std::printf("bad option or missing value at '%s'\n", argv[I]);
      return usage();
    }
  }
  if (Opts.SocketPath.empty())
    return usage();

  // Block the shutdown signals BEFORE any thread is spawned so every
  // server thread inherits the mask and only main's sigwait sees them.
  sigset_t Mask;
  sigemptyset(&Mask);
  sigaddset(&Mask, SIGTERM);
  sigaddset(&Mask, SIGINT);
  pthread_sigmask(SIG_BLOCK, &Mask, nullptr);

  server::Server Srv(Opts);
  if (Status St = Srv.start(); !St.ok()) {
    std::fprintf(stderr, "vapor-serve: %s\n", St.str().c_str());
    return 1;
  }
  std::printf("vapor-serve: listening on %s (%llu workers, queue %u, "
              "cache %zu MiB)\n",
              Opts.SocketPath.c_str(),
              (unsigned long long)Srv.statsSnapshot().Workers, Opts.MaxQueue,
              Opts.CacheCapacityBytes >> 20);
  std::fflush(stdout);

  int Sig = 0;
  while (sigwait(&Mask, &Sig) != 0) {
  }
  std::printf("vapor-serve: signal %d, draining\n", Sig);
  std::fflush(stdout);
  Srv.drain();

  server::StatsResponse S = Srv.statsSnapshot();
  std::printf("vapor-serve: drained. accepted=%llu completed=%llu "
              "deadlines=%llu rejected{overload=%llu quota=%llu dup=%llu "
              "malformed=%llu unavailable=%llu invalid=%llu} "
              "cache{bytes=%llu evictions=%llu} "
              "tiering{promotions=%llu compiles=%llu/%llu pins=%llu}\n",
              (unsigned long long)S.Accepted, (unsigned long long)S.Completed,
              (unsigned long long)S.Deadlines,
              (unsigned long long)S.RejectedOverload,
              (unsigned long long)S.RejectedQuota,
              (unsigned long long)S.RejectedDuplicate,
              (unsigned long long)S.RejectedMalformed,
              (unsigned long long)S.RejectedUnavailable,
              (unsigned long long)S.RejectedInvalid,
              (unsigned long long)S.CacheBytesLive,
              (unsigned long long)S.CacheEvictions,
              (unsigned long long)S.TierPromotions,
              (unsigned long long)S.TierCompilesOk,
              (unsigned long long)(S.TierCompilesOk + S.TierCompilesFailed),
              (unsigned long long)S.TierPins);
  return 0;
}
