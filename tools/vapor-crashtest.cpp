//===- tools/vapor-crashtest.cpp - Fault-injection sweep CLI --------------===//
//
// Part of the Vapor SIMD reproduction.
//
// Usage:
//   vapor-crashtest --all-kernels [--native] [--json <path>] [--trace <path>]
//                   [--jobs N] [--verbose]
//   vapor-crashtest <kernel-name> [target-name] [--native] [--trace <path>]
//                   [--jobs N] [--verbose]
//
// --trace (or VAPOR_TRACE=<path>) writes a Chrome-trace JSON of the whole
// sweep: executor tier spans, demotion events, JIT/verify/VM stage spans,
// one timeline per pool worker. Unrecognized options and non-numeric
// --jobs values exit 2 with the usage message.
//
// Drives the fault-tolerant executor (vapor::Executor) through the
// split-vectorized flow for every kernel x target x injected fault and
// asserts the degradation contract. With --native the chain is entered
// at the Native tier instead (host x86-64 codegen above the VM); a
// native failure demotes to Vectorized without counting as a retry, so
// the oracle for every fault class shifts accordingly, and the
// interpreter still terminates the chain. On hosts where the native
// tier is unsupported (non-x86-64 or -DVAPOR_NATIVE=OFF) --native
// prints a notice and sweeps the ordinary chain instead, so CI stays
// green everywhere. The contract asserted:
//
//   - every run completes: no process abort, under any injected fault;
//   - every run's results match the golden IR evaluator;
//   - the reported tier is honest: exactly the chain position the fired
//     fault class demotes to (and Vectorized with no demotions when no
//     fault fired);
//   - a runtime alignment trap is counted as a deoptimizing retry.
//
// Injected cases per kernel x target: for each site class, a one-shot
// fault at sampled dynamic sites (first / middle / last occurrence) plus
// a sticky fault that fires at every occurrence — the sticky decode and
// JIT faults are what push runs all the way down to the interpreter.
//
// Exit status is the number of failed cases (0 = contract holds).
// --json writes a machine-readable summary (BENCH_crashtest.json).
//
// The kernel x target cells run across the work-stealing sweep pool
// (--jobs N, default VAPOR_JOBS or the hardware concurrency; 1 forces
// the serial driver). The fault-injection controller is thread-local,
// so each worker arms and counts sites on its own runs only, and every
// per-cell statistic is identical to a serial sweep -- only the merge
// order (and FAIL-line interleaving) can differ.
//
//===----------------------------------------------------------------------===//

#include "codegen/NativeJit.h"
#include "jit/Tiering.h"
#include "kernels/Kernels.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "target/Target.h"
#include "vapor/Pipeline.h"
#include "vapor/Sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

using namespace vapor;
using faultinject::SiteClass;

namespace {

struct Stats {
  uint64_t Cases = 0;
  uint64_t Failures = 0;
  uint64_t Fired = 0;
  uint64_t Retries = 0;
  uint64_t Demotions = 0;
  uint64_t TierCount[5] = {}; ///< Indexed by ExecTier.
  /// --audit: genuine would-have-fired counts of elision-granted checks,
  /// summed across every case. Soundness demands both stay zero.
  uint64_t AuditAlign = 0;
  uint64_t AuditBounds = 0;
};

/// The tier each fault class must demote the split-vectorized flow to
/// when it actually fires (the crashtest's honesty oracle; mirrors the
/// chain documented in vapor/Executor.h).
ExecTier expectedTier(SiteClass S, bool Sticky, bool Native) {
  if (Native) {
    // Entering at the Native tier adds one demotion hop: any failure
    // during the native attempt (including its shared prepare and JIT
    // stages) falls back to Vectorized, which re-runs those stages
    // deterministically. A one-shot fault is spent by then, so the
    // chain settles one tier higher than the classic oracle; a sticky
    // fault keeps firing and lands exactly where it always did.
    switch (S) {
    case SiteClass::Decode:
      return Sticky ? ExecTier::Interpreter : ExecTier::Vectorized;
    case SiteClass::Verify:
      return Sticky ? ExecTier::ScalarJit : ExecTier::Vectorized;
    case SiteClass::JitLower:
      return Sticky ? ExecTier::Interpreter : ExecTier::Vectorized;
    case SiteClass::VmAlign:
      // Unreachable from the native entry: the cycle-model VM's checked
      // accesses never execute unless something else already demoted.
      return ExecTier::ScalarJit;
    case SiteClass::NativeTrap:
      // The trap is in the native binding only; the VM re-runs the same
      // vector lowering cleanly, and sticky does not matter because the
      // site class never fires again below Native.
      return ExecTier::Vectorized;
    case SiteClass::Deadline:
    case SiteClass::QueueFull:
    case SiteClass::SocketIo:
      // Server-side site classes: their sites only exist under a fueled
      // run or inside the execution service, so classic sweeps count
      // zero hits and skip them (Classes[] below never lists them).
      return ExecTier::Native;
    }
    return ExecTier::Interpreter;
  }
  switch (S) {
  case SiteClass::Decode:
    // One-shot: the scalar re-encode decodes fine. Sticky: the
    // interchange layer itself is broken; only the interpreter is left.
    return Sticky ? ExecTier::Interpreter : ExecTier::ScalarBytecode;
  case SiteClass::Verify:
    // The gate rejected a vector lowering; forced-scalar JIT is safe.
    return ExecTier::ScalarJit;
  case SiteClass::JitLower:
    return Sticky ? ExecTier::Interpreter : ExecTier::ScalarBytecode;
  case SiteClass::VmAlign:
    // Runtime trap -> deoptimizing re-JIT. Scalar code has no checked
    // accesses, so even a sticky fault cannot re-fire.
    return ExecTier::ScalarJit;
  case SiteClass::NativeTrap:
    // The native engine never runs in the classic sweep; hit counts for
    // this class are always zero and the case is skipped.
    return ExecTier::Vectorized;
  case SiteClass::Deadline:
  case SiteClass::QueueFull:
  case SiteClass::SocketIo:
    // Server-side classes; never hit in the classic sweep (no fuel is
    // armed and no admission gate runs here).
    return ExecTier::Vectorized;
  }
  return ExecTier::Interpreter;
}

/// Set by --no-elide: run every case with check elision forced off.
/// Mutually exclusive with --audit (rejected at parse time): audit mode
/// exists precisely to observe the checks elision would have removed.
bool NoElide = false;

/// Set by --tiered: run every case through the hotness engine
/// (RunOptions::Tiered). Each case gets a fresh salt and is prewarmed to
/// the sweep's clean entry ceiling first, so the per-class tier oracle
/// holds unchanged: the instrumented run enters exactly where an eager
/// run would (the code cache stands down under the armed controller, so
/// every stage -- and every fault site -- still executes).
bool Tiered = false;
std::atomic<uint64_t> NextSalt{1};

/// Drives a fresh tiering key to the clean entry ceiling (Vectorized, or
/// Native under --native) with clean runs + queue drains. \returns the
/// salt on success, 0 when the ceiling is unreachable for this cell (the
/// case then falls back to a plain eager run instead of asserting a
/// vacuous oracle against a cold interpreter entry).
uint64_t prewarmTiered(const kernels::Kernel &K, const target::TargetDesc &T,
                       bool Native, bool Audit) {
  if (!Tiered)
    return 0;
  uint64_t Salt = NextSalt.fetch_add(1, std::memory_order_relaxed);
  RunOptions O;
  O.Target = T;
  O.UseNative = Native;
  if (Audit)
    O.Elide = target::ElisionMode::Audit;
  else if (NoElide)
    O.Elide = target::ElisionMode::Off;
  O.Tiered = true;
  O.TieringSalt = Salt;
  const ExecTier Ceiling = Native ? ExecTier::Native : ExecTier::Vectorized;
  for (int R = 0; R < 64; ++R) {
    RunOutcome Out = runKernel(K, Flow::SplitVectorized, O);
    jit::tiering::engine().drain();
    if (Out.EntryTier == Ceiling)
      return Salt;
    if (!Out.Terminal.ok())
      break;
  }
  return 0;
}

bool runCase(const kernels::Kernel &K, const target::TargetDesc &T,
             const std::string &Desc, const ExecTier *Expect, Stats &S,
             bool Native, bool Audit, bool Verbose,
             uint64_t TieredSalt = 0) {
  ++S.Cases;
  RunOptions O;
  O.Target = T;
  O.UseNative = Native;
  if (Audit)
    O.Elide = target::ElisionMode::Audit;
  else if (NoElide)
    O.Elide = target::ElisionMode::Off;
  if (TieredSalt) {
    O.Tiered = true;
    O.TieringSalt = TieredSalt;
  }
  RunOutcome Out = runKernel(K, Flow::SplitVectorized, O);
  uint64_t Fired = faultinject::fired();
  ExecTier CleanTier = Native ? ExecTier::Native : ExecTier::Vectorized;

  S.AuditAlign += Out.AuditAlignFired;
  S.AuditBounds += Out.AuditBoundsFired;

  std::string Err;
  bool Ok = true;
  if (Out.AuditAlignFired || Out.AuditBoundsFired) {
    // An elision-granted check's predicate genuinely fired: had the run
    // been in elide mode this would have been a silent unsafe access.
    Err = "audit: " + std::to_string(Out.AuditAlignFired) + " align + " +
          std::to_string(Out.AuditBoundsFired) +
          " bounds elided-eligible checks would have fired";
    Ok = false;
  } else if (!checkAgainstGolden(K, Out, Err)) {
    Err = "golden mismatch: " + Err;
    Ok = false;
  } else if (Fired == 0) {
    if (Out.Tier != CleanTier || !Out.Demotions.empty()) {
      Err = "no fault fired but tier is " +
            std::string(tierName(Out.Tier)) + " with " +
            std::to_string(Out.Demotions.size()) + " demotions";
      Ok = false;
    }
  } else {
    if (Out.Demotions.empty()) {
      Err = "fault fired but no demotion was recorded";
      Ok = false;
    } else if (Expect && Out.Tier != *Expect) {
      Err = "fault fired but tier is " + std::string(tierName(Out.Tier)) +
            ", expected " + tierName(*Expect);
      Ok = false;
    }
  }

  S.Fired += Fired;
  S.Retries += Out.Retries;
  S.Demotions += Out.Demotions.size();
  ++S.TierCount[static_cast<unsigned>(Out.Tier)];
  if (!Ok) {
    ++S.Failures;
    std::printf("FAIL %-16s %-8s %-28s %s\n", K.Name.c_str(), T.Name.c_str(),
                Desc.c_str(), Err.c_str());
  } else if (Verbose) {
    std::printf("ok   %-16s %-8s %-28s tier=%s demotions=%zu retries=%u\n",
                K.Name.c_str(), T.Name.c_str(), Desc.c_str(),
                tierName(Out.Tier), Out.Demotions.size(), Out.Retries);
  }
  return Ok;
}

/// Dynamic hit counts per class for one clean run (site discovery).
void countSites(const kernels::Kernel &K, const target::TargetDesc &T,
                bool Native, bool Audit,
                uint64_t Hits[faultinject::NumSiteClasses]) {
  faultinject::resetHits();
  faultinject::startCounting();
  RunOptions O;
  O.Target = T;
  O.UseNative = Native;
  if (Audit)
    O.Elide = target::ElisionMode::Audit;
  else if (NoElide)
    O.Elide = target::ElisionMode::Off;
  runKernel(K, Flow::SplitVectorized, O);
  for (unsigned C = 0; C < faultinject::NumSiteClasses; ++C)
    Hits[C] = faultinject::hits(static_cast<SiteClass>(C));
  faultinject::disarm();
  faultinject::resetHits();
}

void sweepOne(const kernels::Kernel &K, const target::TargetDesc &T,
              Stats &S, bool Native, bool Audit, bool Verbose) {
  // Baseline: no injection active at all (the 1-branch fast path).
  runCase(K, T, "clean", nullptr, S, Native, Audit, Verbose,
          prewarmTiered(K, T, Native, Audit));

  uint64_t Hits[faultinject::NumSiteClasses];
  countSites(K, T, Native, Audit, Hits);

  constexpr SiteClass Classes[] = {SiteClass::Decode, SiteClass::Verify,
                                   SiteClass::JitLower, SiteClass::VmAlign,
                                   SiteClass::NativeTrap};
  for (SiteClass C : Classes) {
    uint64_t N = Hits[static_cast<unsigned>(C)];
    if (N == 0)
      continue; // This surface never runs here (e.g. no checked vector
                // accesses on an all-scalar lowering).

    // One-shot faults at sampled dynamic sites: first, middle, last.
    std::vector<uint64_t> Sites = {0, N / 2, N - 1};
    Sites.erase(std::unique(Sites.begin(), Sites.end()), Sites.end());
    for (uint64_t Site : Sites) {
      ExecTier Expect = expectedTier(C, /*Sticky=*/false, Native);
      // Prewarm BEFORE arming: promotion runs must not eat the fault.
      uint64_t Salt = prewarmTiered(K, T, Native, Audit);
      faultinject::ScopedFault F(C, Site, /*Sticky=*/false);
      runCase(K, T,
              std::string(siteClassName(C)) + "@" + std::to_string(Site),
              &Expect, S, Native, Audit, Verbose, Salt);
    }

    // Sticky fault: fires at every occurrence from the first on.
    {
      ExecTier Expect = expectedTier(C, /*Sticky=*/true, Native);
      uint64_t Salt = prewarmTiered(K, T, Native, Audit);
      faultinject::ScopedFault F(C, 0, /*Sticky=*/true);
      runCase(K, T, std::string(siteClassName(C)) + " sticky", &Expect, S,
              Native, Audit, Verbose, Salt);
    }
  }
}

void writeJson(const char *Path, const Stats &S, size_t Kernels,
               size_t Targets, bool Native, bool Audit) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::printf("cannot write %s\n", Path);
    return;
  }
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"suite\": \"vapor-crashtest\",\n");
  std::fprintf(F, "  \"flow\": \"split-vectorized\",\n");
  std::fprintf(F, "  \"native_entry\": %s,\n", Native ? "true" : "false");
  std::fprintf(F, "  \"audit_mode\": %s,\n", Audit ? "true" : "false");
  std::fprintf(F, "  \"tiered\": %s,\n", Tiered ? "true" : "false");
  std::fprintf(F, "  \"audit_align_fired\": %llu,\n",
               (unsigned long long)S.AuditAlign);
  std::fprintf(F, "  \"audit_bounds_fired\": %llu,\n",
               (unsigned long long)S.AuditBounds);
  std::fprintf(F, "  \"kernels\": %zu,\n", Kernels);
  std::fprintf(F, "  \"targets\": %zu,\n", Targets);
  std::fprintf(F, "  \"cases\": %llu,\n", (unsigned long long)S.Cases);
  std::fprintf(F, "  \"aborts\": 0,\n");
  std::fprintf(F, "  \"failures\": %llu,\n", (unsigned long long)S.Failures);
  std::fprintf(F, "  \"faults_fired\": %llu,\n",
               (unsigned long long)S.Fired);
  std::fprintf(F, "  \"demotions\": %llu,\n",
               (unsigned long long)S.Demotions);
  std::fprintf(F, "  \"deopt_retries\": %llu,\n",
               (unsigned long long)S.Retries);
  std::fprintf(F, "  \"tier_distribution\": {\n");
  const char *Names[5] = {"native", "vectorized", "scalar-jit",
                          "scalar-bytecode", "interpreter"};
  for (unsigned I = 0; I < 5; ++I)
    std::fprintf(F, "    \"%s\": %llu%s\n", Names[I],
                 (unsigned long long)S.TierCount[I], I + 1 < 5 ? "," : "");
  std::fprintf(F, "  }\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path);
}

} // namespace

static int usage() {
  std::printf("usage: vapor-crashtest --all-kernels [--native] "
              "[--audit | --no-elide] [--tiered] "
              "[--json <path>] [--trace <path>] [--jobs N] [--verbose]\n"
              "       vapor-crashtest <kernel> [target] [--native] "
              "[--audit | --no-elide] [--tiered] "
              "[--trace <path>] [--jobs N] [--verbose]\n");
  return 2;
}

int main(int argc, char **argv) {
  bool All = false, Verbose = false, Native = false, Audit = false;
  const char *JsonPath = nullptr;
  const char *TracePath = nullptr;
  unsigned Jobs = sweep::defaultJobs();
  std::string KernelName, TargetName;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--all-kernels"))
      All = true;
    else if (!std::strcmp(argv[I], "--native"))
      Native = true;
    else if (!std::strcmp(argv[I], "--audit"))
      Audit = true;
    else if (!std::strcmp(argv[I], "--no-elide"))
      NoElide = true;
    else if (!std::strcmp(argv[I], "--tiered"))
      Tiered = true;
    else if (!std::strcmp(argv[I], "--verbose"))
      Verbose = true;
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      TracePath = argv[++I];
    else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc) {
      // atoi would fold garbage (and "0") to a zero-worker pool request;
      // validate and clamp instead.
      if (!sweep::parseJobs(argv[++I], Jobs)) {
        std::printf("invalid --jobs value '%s' (expected a number >= 1)\n",
                    argv[I]);
        return usage();
      }
    } else if (argv[I][0] == '-') {
      // A mistyped flag must not be silently swallowed as a kernel name.
      std::printf("unknown option '%s'\n", argv[I]);
      return usage();
    } else if (KernelName.empty())
      KernelName = argv[I];
    else
      TargetName = argv[I];
  }
  if (Audit && NoElide) {
    // Contradictory: --audit asks to observe elided-eligible checks
    // firing, --no-elide removes the elision grants it audits.
    std::printf("--audit conflicts with --no-elide: audit mode observes "
                "the checks elision would remove\n");
    return usage();
  }
  if (!All && KernelName.empty())
    return usage();
  if (Native && !codegen::supported()) {
    std::printf("native tier unsupported on this host (features: %s); "
                "sweeping the classic chain instead\n",
                codegen::hostFeatures().str().c_str());
    Native = false;
  }
  if (Tiered) {
    // Small thresholds keep the per-case prewarm (clean runs to the
    // entry ceiling before arming the fault) cheap across the sweep.
    jit::tiering::Config C = jit::tiering::engine().config();
    C.HotVectorized = 2;
    C.HotNative = 4;
    jit::tiering::engine().setConfig(C);
  }

  // --trace wins over the VAPOR_TRACE environment variable; the sink's
  // destructor writes the Chrome-trace JSON when main returns.
  std::unique_ptr<obs::TraceSink> Sink;
  if (TracePath)
    Sink = std::make_unique<obs::TraceSink>(TracePath);
  else
    Sink.reset(obs::TraceSink::fromEnv("VAPOR_TRACE"));

  std::vector<kernels::Kernel> Ks = kernels::allKernels();
  std::vector<target::TargetDesc> Ts = target::allTargets();
  if (!All) {
    const kernels::Kernel *K = sweep::kernelByNameOrNull(Ks, KernelName);
    if (!K) {
      std::printf("unknown kernel '%s'\n", KernelName.c_str());
      return 2;
    }
    Ks = {*K};
    if (!TargetName.empty()) {
      const target::TargetDesc *T = sweep::targetByNameOrNull(Ts, TargetName);
      if (!T) {
        std::printf("unknown target '%s'\n", TargetName.c_str());
        return 2;
      }
      Ts = {*T};
    }
  }

  // One cell per kernel x target; each runs on its own pool worker with
  // its own thread-local fault controller, and merges its per-cell Stats
  // (pure sums) under one mutex.
  Stats S;
  std::mutex MergeMu;
  size_t NumCells = Ks.size() * Ts.size();
  sweep::forEachCell(Jobs, NumCells, [&](size_t Cell) {
    const kernels::Kernel &K = Ks[Cell / Ts.size()];
    const target::TargetDesc &T = Ts[Cell % Ts.size()];
    Stats Local;
    sweepOne(K, T, Local, Native, Audit, Verbose);
    std::lock_guard<std::mutex> Lock(MergeMu);
    S.Cases += Local.Cases;
    S.Failures += Local.Failures;
    S.Fired += Local.Fired;
    S.Retries += Local.Retries;
    S.Demotions += Local.Demotions;
    S.AuditAlign += Local.AuditAlign;
    S.AuditBounds += Local.AuditBounds;
    for (unsigned I = 0; I < 5; ++I)
      S.TierCount[I] += Local.TierCount[I];
  });

  std::printf("crashtest: %llu cases, %llu faults fired, %llu demotions, "
              "%llu deopt retries, %llu failures, 0 aborts\n",
              (unsigned long long)S.Cases, (unsigned long long)S.Fired,
              (unsigned long long)S.Demotions, (unsigned long long)S.Retries,
              (unsigned long long)S.Failures);
  std::printf("tiers: native=%llu vectorized=%llu scalar-jit=%llu "
              "scalar-bytecode=%llu interpreter=%llu\n",
              (unsigned long long)S.TierCount[0],
              (unsigned long long)S.TierCount[1],
              (unsigned long long)S.TierCount[2],
              (unsigned long long)S.TierCount[3],
              (unsigned long long)S.TierCount[4]);
  if (Audit)
    std::printf("audit: %llu align + %llu bounds elided-eligible checks "
                "would have fired (soundness requires 0 + 0)\n",
                (unsigned long long)S.AuditAlign,
                (unsigned long long)S.AuditBounds);
  if (Tiered) {
    jit::tiering::engine().drain();
    jit::tiering::EngineStats TS = jit::tiering::engine().stats();
    std::printf("tiering: %llu invocations, %llu promotions, %llu/%llu "
                "compiles ok, %llu pins\n",
                (unsigned long long)TS.Invocations,
                (unsigned long long)TS.Promotions,
                (unsigned long long)TS.CompilesOk,
                (unsigned long long)(TS.CompilesOk + TS.CompilesFailed),
                (unsigned long long)TS.Pins);
  }
  if (JsonPath)
    writeJson(JsonPath, S, Ks.size(), Ts.size(), Native, Audit);
  return static_cast<int>(S.Failures);
}
