//===- tools/vapor-explain.cpp - End-to-end decision report CLI -----------===//
//
// Part of the Vapor SIMD reproduction.
//
// Usage:
//   vapor-explain <kernel> [target] [--tier weak|strong] [--native]
//                 [--trace <path>]
//
// Prints the human-readable end-to-end decision report for one kernel:
// what the offline vectorizer decided per loop and why (strategy,
// versioning, peeling, reductions, dependence VF cap), the bytecode
// interchange sizes, the verifier's proof-obligation summary, and — per
// target — the online compiler's strategy record (memory lowering mix,
// guard folds, resolved VF), the code-cache traffic, the executed tier of
// the fault-tolerant chain, and the modeled cycle cost. With --native the
// chain enters at the Native tier and the report adds the host CPU
// feature probe, the encoding set the emitter actually used, and the
// per-MachineIR-op split between inline x86-64 and ScalarOps shim calls
// (from RunOutcome::NativeCode). Everything comes
// from the same structured records the pipeline itself acts on
// (vectorizer::LoopReport, verify::Report, jit::StrategyStats,
// RunOutcome), not from parsing logs, so the report cannot drift from the
// implementation.
//
// --trace additionally writes a Chrome-trace JSON of the explained runs.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"
#include "codegen/NativeJit.h"
#include "jit/CodeCache.h"
#include "jit/Tiering.h"
#include "kernels/Kernels.h"
#include "obs/Obs.h"
#include "target/Target.h"
#include "vapor/Executor.h"
#include "vapor/Pipeline.h"
#include "vapor/Sweep.h"
#include "vectorizer/Vectorizer.h"
#include "verify/Verify.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace vapor;

namespace {

int usage() {
  std::printf("usage: vapor-explain <kernel> [target] [--tier weak|strong] "
              "[--native] [--elide on|off|audit] [--tiered] "
              "[--trace <path>]\n");
  return 2;
}

const char *tierNameRaw(uint8_t T) {
  return T == jit::tiering::NoTier ? "none"
                                   : tierName(static_cast<ExecTier>(T));
}

/// The --tiered addendum: drive the kernel through the hotness engine run
/// by run (draining the background queue between invocations so the
/// timeline is deterministic) and print the engine's own transition
/// record for the key -- the same KeyReport the tests assert on.
void printTieredTimeline(const kernels::Kernel &K,
                         const target::TargetDesc &T, jit::Tier Tier,
                         bool Native, target::ElisionMode Elide) {
  std::printf("\n== Tiered promotion timeline: %s ==\n", T.Name.c_str());
  RunOptions O;
  O.Target = T;
  O.Tier = Tier;
  O.UseNative = Native;
  O.Elide = Elide;
  O.Tiered = true;
  O.TieringSalt = std::hash<std::string>{}("explain:" + T.Name);

  jit::tiering::Config C = jit::tiering::engine().config();
  std::printf("  thresholds: vectorized at %llu invocations, native at "
              "%llu%s\n",
              static_cast<unsigned long long>(C.HotVectorized),
              static_cast<unsigned long long>(C.HotNative),
              Native ? "" : " (native tier not requested)");
  const ExecTier Best = Native ? ExecTier::Native : ExecTier::Vectorized;
  const unsigned Runs = (Native ? C.HotNative : C.HotVectorized) + 4;
  for (unsigned R = 1; R <= Runs; ++R) {
    RunOutcome Out = runKernel(K, Flow::SplitVectorized, O);
    std::printf("  run %2u: entered %-14s executed %-14s %llu cycles\n", R,
                tierName(Out.EntryTier), tierName(Out.Tier),
                static_cast<unsigned long long>(Out.Cycles));
    jit::tiering::engine().drain(); // Promotions land before the next run.
    if (Out.EntryTier == Best)
      break;
  }

  uint64_t Key = Executor(K, O).tieringKey();
  auto Rep = jit::tiering::engine().keyReport(Key);
  if (!Rep) {
    std::printf("  (no hotness row for this key)\n");
    return;
  }
  std::printf("  hotness key %016llx: %llu invocations, ready tier %s, "
              "pin %s%s\n",
              static_cast<unsigned long long>(Rep->Key),
              static_cast<unsigned long long>(Rep->Invocations),
              tierNameRaw(Rep->ReadyTier), tierNameRaw(Rep->PinTier),
              Rep->CompileInFlight ? ", compile in flight" : "");
  for (const jit::tiering::TransitionEvent &Ev : Rep->Events) {
    switch (Ev.What) {
    case jit::tiering::TransitionEvent::Promoted:
      std::printf("    at invocation %llu: promoted entry %s -> %s "
                  "(queued %.0f us, compiled %.0f us off-thread)\n",
                  static_cast<unsigned long long>(Ev.AtInvocation),
                  tierNameRaw(Ev.FromTier), tierNameRaw(Ev.ToTier),
                  Ev.QueueWaitMicros, Ev.CompileMicros);
      break;
    case jit::tiering::TransitionEvent::CompileFailed:
      std::printf("    at invocation %llu: background compile FAILED; "
                  "pinned at %s (queued %.0f us, compiled %.0f us)\n",
                  static_cast<unsigned long long>(Ev.AtInvocation),
                  tierNameRaw(Ev.ToTier), Ev.QueueWaitMicros,
                  Ev.CompileMicros);
      break;
    case jit::tiering::TransitionEvent::Demoted:
      std::printf("    at invocation %llu: run demoted; pinned at %s "
                  "(was ready at %s)\n",
                  static_cast<unsigned long long>(Ev.AtInvocation),
                  tierNameRaw(Ev.ToTier), tierNameRaw(Ev.FromTier));
      break;
    }
  }
  if (Rep->Events.empty())
    std::printf("    (no transitions recorded)\n");
}

/// The proof-carrying elision record: what the checker granted against
/// this placement and what each certified access decided.
void printElisionReport(const RunOutcome &Out) {
  std::printf("  check elision: mode %s — %u align + %u bounds checks "
              "elided, %u kept, %u facts rejected\n",
              target::elisionModeName(Out.ElideMode), Out.AlignElided,
              Out.BoundsElided, Out.ChecksKept, Out.ElideFactsRejected);
  if (!Out.ElideCheckerError.empty())
    std::printf("    checker rejected certificate: %s\n",
                Out.ElideCheckerError.c_str());
  for (const std::string &D : Out.ElideDecisions)
    std::printf("    %s\n", D.c_str());
  if (Out.ElideMode == target::ElisionMode::Audit)
    std::printf("    audit: %llu align + %llu bounds would-have-fired\n",
                static_cast<unsigned long long>(Out.AuditAlignFired),
                static_cast<unsigned long long>(Out.AuditBoundsFired));
}

/// The --native addendum: which encodings the emitter picked and how much
/// of the MachineIR stayed inline vs fell back to the ScalarOps shims.
void printNativeReport(const RunOutcome &Out) {
  if (Out.Tier != ExecTier::Native) {
    std::printf("  native code: none (tier demoted before native ran)\n");
    return;
  }
  const codegen::NativeStats &N = Out.NativeCode;
  std::printf("  native code: %llu bytes for %llu MachineIR instrs "
              "(encoding set: %s)\n",
              static_cast<unsigned long long>(N.CodeBytes),
              static_cast<unsigned long long>(N.MInstrs),
              N.FeaturesUsed.c_str());
  std::printf("  lowering split: %llu inline x86-64, %llu ScalarOps shim "
              "calls, %llu packed SIMD chunks (%llu 256-bit VEX)\n",
              static_cast<unsigned long long>(N.InlineOps),
              static_cast<unsigned long long>(N.HelperOps),
              static_cast<unsigned long long>(N.PackedOps),
              static_cast<unsigned long long>(N.VexChunks));
  for (unsigned I = 0; I < codegen::NumMOps; ++I) {
    uint32_t Inl = N.InlineByOp[I], Hlp = N.HelperByOp[I];
    if (!Inl && !Hlp)
      continue;
    std::printf("    %-10s %5u inline, %5u shim\n",
                target::mopMnemonic(static_cast<target::MOp>(I)), Inl, Hlp);
  }
}

void printLoopDecision(const vectorizer::LoopReport &L) {
  if (!L.Vectorized) {
    std::printf("  loop %u: NOT vectorized — %s\n", L.SrcLoop,
                L.Reason.c_str());
    return;
  }
  std::printf("  loop %u: vectorized (%s)\n", L.SrcLoop, L.Strategy.c_str());
  if (L.MinElemBytes)
    std::printf("    VF: symbolic — each target resolves VSBytes / %uB "
                "(smallest vector element)\n",
                L.MinElemBytes);
  std::printf("    alignment versioning: %s\n",
              L.Versioned ? "yes (guarded aligned fast path + fall-back)"
                          : "no");
  std::printf("    loop peeling: %s\n",
              L.Peeled ? "yes (fall-back peels to align the store)" : "no");
  if (L.Reductions)
    std::printf("    reductions vectorized: %u\n", L.Reductions);
  if (L.MaxReductions)
    std::printf("    horizontal-max epilogues: %u (striped-DP reduc_max "
                "collapse)\n",
                L.MaxReductions);
  if (L.SatOps)
    std::printf("    saturating ops vectorized: %u (clamping lanes, "
                "never combined across partial accumulators)\n",
                L.SatOps);
  if (L.MaxSafeVF)
    std::printf("    dependence limit: VF <= %lld (maxvf hint)\n",
                static_cast<long long>(L.MaxSafeVF));
}

void explainOnTarget(const kernels::Kernel &K, const target::TargetDesc &T,
                     jit::Tier Tier, bool Native,
                     target::ElisionMode Elide) {
  std::printf("\n== Online stage: %s (%s tier) ==\n", T.Name.c_str(),
              Tier == jit::Tier::Strong ? "strong" : "weak");
  if (T.VSBytes)
    std::printf("  target: %uB vectors, misaligned loads %s, permute "
                "realignment %s\n",
                T.VSBytes, T.HasMisaligned ? "yes" : "no",
                T.HasPermRealign ? "yes" : "no");
  else
    std::printf("  target: no SIMD (vector bytecode is scalar-expanded)\n");

  jit::cache::Stats Before = jit::cache::stats();
  RunOptions O;
  O.Target = T;
  O.Tier = Tier;
  O.UseNative = Native;
  O.Elide = Elide;
  RunOutcome Out = runKernel(K, Flow::SplitVectorized, O);
  jit::cache::Stats After = jit::cache::stats();

  const jit::StrategyStats &S = Out.Strategy;
  std::printf("  JIT strategy: %u aligned, %u unaligned, %u permute, "
              "%u scalar memory accesses\n",
              S.MemAligned, S.MemUnaligned, S.MemPerm, S.MemScalar);
  std::printf("  version guards: %u folded taken, %u folded not-taken, "
              "%u left as runtime checks\n",
              S.GuardsFoldedTrue, S.GuardsFoldedFalse, S.GuardsRuntime);
  for (const vectorizer::LoopReport &L : Out.LoopDecisions)
    if (L.Vectorized && L.MinElemBytes && T.VSBytes)
      std::printf("  loop %u resolved VF: %u lanes (%uB / %uB)\n", L.SrcLoop,
                  T.VSBytes / L.MinElemBytes, T.VSBytes, L.MinElemBytes);
  if (Out.Scalarized)
    std::printf("  lowering: scalarized end-to-end on this target\n");
  printElisionReport(Out);
  std::printf("  compile time: %.1f us; code cache this run: %llu hits, "
              "%llu misses\n",
              Out.CompileMicros,
              static_cast<unsigned long long>(
                  (After.ModuleHits - Before.ModuleHits) +
                  (After.VerifyHits - Before.VerifyHits) +
                  (After.CompileHits - Before.CompileHits) +
                  (After.ProgramHits - Before.ProgramHits)),
              static_cast<unsigned long long>(
                  (After.ModuleMisses - Before.ModuleMisses) +
                  (After.VerifyMisses - Before.VerifyMisses) +
                  (After.CompileMisses - Before.CompileMisses) +
                  (After.ProgramMisses - Before.ProgramMisses)));

  std::printf("\n== Execution: %s ==\n", T.Name.c_str());
  std::printf("  executed tier: %s%s\n", tierName(Out.Tier),
              Out.Demotions.empty() ? " (no demotions)" : "");
  for (const status::Status &D : Out.Demotions)
    std::printf("  demotion: %s\n", D.str().c_str());
  if (Out.Retries)
    std::printf("  deoptimizing retries: %u\n", Out.Retries);
  if (Native)
    printNativeReport(Out);
  std::printf("  modeled cycles: %llu\n",
              static_cast<unsigned long long>(Out.Cycles));
  if (Out.Iaca.Found)
    std::printf("  vector loop (IACA-style): %llu cycles/iter, %u loads, "
                "%u stores, %u ALU ops\n",
                static_cast<unsigned long long>(Out.Iaca.Cycles),
                Out.Iaca.Loads, Out.Iaca.Stores, Out.Iaca.AluOps);

  std::string Err;
  std::printf("  golden check: %s\n",
              checkAgainstGolden(K, Out, Err) ? "match" : Err.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::string KernelName, TargetName;
  jit::Tier Tier = jit::Tier::Strong;
  bool Native = false;
  bool Tiered = false;
  target::ElisionMode Elide = target::ElisionMode::On;
  const char *TracePath = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--tier") && I + 1 < argc) {
      ++I;
      if (!std::strcmp(argv[I], "weak"))
        Tier = jit::Tier::Weak;
      else if (!std::strcmp(argv[I], "strong"))
        Tier = jit::Tier::Strong;
      else {
        std::printf("unknown tier '%s'\n", argv[I]);
        return usage();
      }
    } else if (!std::strcmp(argv[I], "--elide") && I + 1 < argc) {
      ++I;
      if (!std::strcmp(argv[I], "on"))
        Elide = target::ElisionMode::On;
      else if (!std::strcmp(argv[I], "off"))
        Elide = target::ElisionMode::Off;
      else if (!std::strcmp(argv[I], "audit"))
        Elide = target::ElisionMode::Audit;
      else {
        std::printf("unknown elision mode '%s'\n", argv[I]);
        return usage();
      }
    } else if (!std::strcmp(argv[I], "--native"))
      Native = true;
    else if (!std::strcmp(argv[I], "--tiered"))
      Tiered = true;
    else if (!std::strcmp(argv[I], "--trace") && I + 1 < argc)
      TracePath = argv[++I];
    else if (argv[I][0] == '-') {
      std::printf("unknown option '%s'\n", argv[I]);
      return usage();
    } else if (KernelName.empty())
      KernelName = argv[I];
    else if (TargetName.empty())
      TargetName = argv[I];
    else
      return usage();
  }
  if (KernelName.empty())
    return usage();

  std::vector<kernels::Kernel> Ks = kernels::allKernels();
  std::vector<target::TargetDesc> Ts = target::allTargets();
  const kernels::Kernel *K = sweep::kernelByNameOrNull(Ks, KernelName);
  if (!K) {
    std::printf("unknown kernel '%s'\n", KernelName.c_str());
    return 2;
  }
  if (!TargetName.empty()) {
    const target::TargetDesc *T = sweep::targetByNameOrNull(Ts, TargetName);
    if (!T) {
      std::printf("unknown target '%s'\n", TargetName.c_str());
      return 2;
    }
    Ts = {*T};
  }

  std::unique_ptr<obs::TraceSink> Sink;
  if (TracePath)
    Sink = std::make_unique<obs::TraceSink>(TracePath);

  std::printf("vapor-explain: %s (suite: %s)\n", K->Name.c_str(),
              K->Suite.c_str());
  if (Native)
    std::printf("native tier requested: host CPU features %s (%s)\n",
                codegen::hostFeatures().str().c_str(),
                codegen::supported() ? "supported"
                                     : "unsupported; will demote to the VM");

  // --- Offline stage: target-independent, runs once. ---
  std::printf("\n== Offline stage (vectorize once) ==\n");
  vectorizer::Result VR = vectorizer::vectorize(K->Source);
  for (const vectorizer::LoopReport &L : VR.Loops)
    printLoopDecision(L);
  if (VR.Loops.empty())
    std::printf("  (no loops)\n");

  std::vector<uint8_t> Encoded = bytecode::encode(VR.Output);
  std::printf("  split bytecode: %zu bytes encoded\n", Encoded.size());
  auto Decoded = bytecode::decode(Encoded);
  if (!Decoded) {
    std::printf("  decode FAILED: %s\n", Decoded.status().str().c_str());
    return 1;
  }

  // --- Verifier gate: obligations for every explained target at once. ---
  std::printf("\n== Verifier gate ==\n");
  verify::VerifyOptions VO;
  VO.Targets = Ts;
  verify::Report Rep = verify::verifyModule(*Decoded, VO);
  std::printf("  %s: %llu proof obligations proved, %llu failed "
              "(%u target%s checked)\n",
              Rep.ok() ? "ok" : "REJECTED",
              static_cast<unsigned long long>(Rep.ObligationsProved),
              static_cast<unsigned long long>(Rep.ObligationsFailed),
              Rep.TargetsChecked, Rep.TargetsChecked == 1 ? "" : "s");
  if (!Rep.ok())
    std::printf("%s\n", Rep.str().c_str());
  for (const analysis::SafetyCertificate &C : Rep.Certificates) {
    size_t Align = 0, Bounds = 0;
    for (const analysis::AccessFact &F : C.Facts) {
      Align += F.HasAlign;
      Bounds += F.HasBounds;
    }
    std::printf("  certificate [%s]: %zu access facts (%zu align, %zu "
                "bounds) — hash %016llx\n",
                C.TargetName.c_str(), C.Facts.size(), Align, Bounds,
                static_cast<unsigned long long>(
                    analysis::certificateHash(C)));
  }

  // --- Online stage + execution, per target. ---
  for (const target::TargetDesc &T : Ts) {
    explainOnTarget(*K, T, Tier, Native, Elide);
    if (Tiered)
      printTieredTimeline(*K, T, Tier, Native, Elide);
  }
  return 0;
}
