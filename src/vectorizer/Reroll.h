//===- vectorizer/Reroll.h - SLP via loop re-rolling -----------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Straight-line (SLP) vectorization, implemented the way loop-aware SLP
/// behaves in practice: a loop body consisting of G isomorphic statement
/// groups at consecutive offsets — the hand-unrolled channel code of
/// mix_streams (paper Table 2) — is *re-rolled* into an equivalent loop of
/// G times the trip count, which the regular loop vectorizer then handles
/// at the target's full vector width.
///
/// Re-rolling preserves the exact statement execution order, so it needs
/// no dependence analysis: group c of iteration i runs exactly where it
/// ran before.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VECTORIZER_REROLL_H
#define VAPOR_VECTORIZER_REROLL_H

#include "ir/Function.h"

#include <set>

namespace vapor {
namespace vectorizer {

struct RerollResult {
  ir::Function Output;
  /// Loop indices *in Output* that were produced by re-rolling (their
  /// later vectorization is reported as the "slp" strategy).
  std::set<uint32_t> RerolledLoops;
};

/// Re-rolls every innermost loop of \p F that matches the unrolled-group
/// pattern; all other code is cloned unchanged.
RerollResult rerollUnrolledLoops(const ir::Function &F);

} // namespace vectorizer
} // namespace vapor

#endif // VAPOR_VECTORIZER_REROLL_H
