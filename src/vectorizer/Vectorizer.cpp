//===- vectorizer/Vectorizer.cpp - Offline auto-vectorizer -----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Structure: VectorizerImpl clones the source function region by region.
// When it reaches an innermost loop it runs planInnerLoop(); if the plan is
// viable it emits the vectorized form (optionally versioned on alignment),
// otherwise it clones the loop unchanged and records why.
//
// The emitted shape for one vectorized loop (paper Sec. III-B/III-C):
//
//   [guard = version_guard(bases_aligned, arrays)]      ; if versioning
//   if guard {                                          ;
//     vf = get_VF(minKind); <splats>; <reduction init>
//     loop i = [lo, mainEnd) step vf  { ...vector body, aligned hints... }
//     <reduction finalize>
//     loop i = [mainEnd, hi) step 1   { ...scalar epilogue... }
//   } else {
//     vf = get_VF(minKind); <splats>
//     peelN  = loop_bound(min((AL - get_misalign(store)) % AL, hi-lo), 0)
//     loop i = [lo, lo+peelN) step 1  { ...scalar peel... }
//     <reduction init from peel>
//     loop i = [peelEnd, mainEnd) step vf { ...vector body, null hints... }
//     <reduction finalize>
//     loop i = [mainEnd, hi) step 1   { ...scalar epilogue... }
//   }
//
// Misaligned (or unknown-alignment) contiguous loads use the optimized
// realignment scheme of Fig. 3a: a carried aligned chunk, one align_load
// per part per iteration, and realign_load with the mis/mod hints. The
// online compiler reverts this to plain aligned or misaligned loads where
// the target allows, at which point the chain becomes dead code.
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Vectorizer.h"

#include "vectorizer/Reroll.h"

#include "analysis/Affine.h"
#include "analysis/Alignment.h"
#include "analysis/Dependence.h"
#include "analysis/LoopAnalysis.h"
#include "analysis/Reduction.h"
#include "ir/Builder.h"
#include "ir/ScalarOps.h"
#include "ir/Verifier.h"
#include "obs/Obs.h"
#include "support/Support.h"

#include <algorithm>
#include <map>
#include <set>

using namespace vapor;
using namespace vapor::vectorizer;
using namespace vapor::analysis;
using namespace vapor::ir;

namespace {

//===--- Planning -------------------------------------------------------------//

struct AccessPlan {
  enum class Kind : uint8_t { Contig, Invariant, Strided } K =
      Kind::Contig;
  int64_t Stride = 1;      ///< Iv coefficient.
  bool OffConst = false;   ///< Offset (index - stride*iv) is a constant.
  int64_t OffElems = 0;    ///< That constant (when OffConst).
  AlignHint Hint;          ///< mis/mod as computed offline.
  int64_t GroupBase = 0;   ///< Strided: offset rounded down to the stride.
  int64_t GroupRes = 0;    ///< Strided: OffElems % Stride.
};

struct RedPlan {
  ReductionInfo Info;
  bool UseDot = false;
  WideningMul Dot; ///< Valid when UseDot.
};

struct LoopPlan {
  bool OK = false;
  std::string Reason;
  ScalarKind MinKind = ScalarKind::None;
  std::set<ValueId> VecValues;
  std::map<uint32_t, AccessPlan> Access; ///< Keyed by instruction index.
  std::set<uint32_t> Fused; ///< Converts/muls folded into widening idioms.
  std::vector<RedPlan> Reds; ///< Parallel to the loop's carried vars.
  bool Versioned = false;
  std::vector<uint32_t> GuardArrays;
  bool Peel = false;
  uint32_t PeelArr = NoArray;
  int64_t PeelOff = 0;
  /// The loop's lower bound when it is a compile-time constant. Access
  /// misalignment is relative to the *first iteration*, so a constant
  /// lower bound folds into every hint and a symbolic one nulls them
  /// (the vector loop then starts at an unknown residue mod VF).
  bool LowerConst = false;
  int64_t LowerVal = 0;
  /// Dependence-distance hint: all carried dependences have |distance|
  /// >= MaxSafeVF >= 2 and the online compiler must keep VF <= it.
  int64_t MaxSafeVF = 0;
  /// Saturating narrow-int ops classified as vector values (the
  /// striped-DP idiom signature; surfaced in the loop's decision record).
  uint32_t SatOps = 0;
};

/// Element kinds eligible as vector data. I64/U64 are excluded: index
/// arithmetic is I64 by IR convention, and no evaluated target vectorizes
/// 64-bit integers (AltiVec has none at all).
bool isVectorizableDataKind(ScalarKind K) {
  switch (K) {
  case ScalarKind::I8:
  case ScalarKind::U8:
  case ScalarKind::I16:
  case ScalarKind::U16:
  case ScalarKind::I32:
  case ScalarKind::U32:
  case ScalarKind::F32:
  case ScalarKind::F64:
    return true;
  default:
    return false;
  }
}

//===--- The vectorizer -------------------------------------------------------//

class VectorizerImpl {
public:
  VectorizerImpl(const Function &Source, const Options &Options_,
                 std::set<uint32_t> RerolledLoops = {})
      : Src(Source), Opt(Options_), Rerolled(std::move(RerolledLoops)),
        Out(Source.Name), B(Out), AA(Source), Nest(Source) {}

  Result run() {
    Out.IsSplitLayer = true;
    for (const ArrayInfo &A : Src.Arrays)
      Out.addArray(A.Name, A.Elem, A.NumElems, A.BaseAlign);
    for (ValueId P : Src.Params)
      VMap[P] = Out.addParam(Src.Values[P].Name, Src.typeOf(P));
    cloneRegion(Src.Body, /*TryVectorize=*/true);
    verifyOrDie(Out);
    Result R{std::move(Out), std::move(Reports)};
    return R;
  }

private:
  const Function &Src;
  Options Opt;
  std::set<uint32_t> Rerolled;
  Function Out;
  IrBuilder B;
  AffineAnalysis AA;
  LoopNestInfo Nest;
  std::map<ValueId, ValueId> VMap; ///< Source value -> output value.
  std::vector<LoopReport> Reports;

  ValueId mapped(ValueId V) const {
    auto It = VMap.find(V);
    assert(It != VMap.end() && "source value not yet cloned");
    return It->second;
  }

  //===--- Generic cloning ----------------------------------------------===//

  void cloneRegion(const Region &R, bool TryVectorize) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        cloneInstr(Src.Instrs[N.Index]);
        break;
      case NodeKind::Loop:
        cloneOrVectorizeLoop(N.Index, TryVectorize);
        break;
      case NodeKind::If: {
        const IfStmt &S = Src.Ifs[N.Index];
        uint32_t NewIf = B.beginIf(mapped(S.Cond));
        cloneRegion(S.Then, TryVectorize);
        B.beginElse(NewIf);
        cloneRegion(S.Else, TryVectorize);
        B.endIf(NewIf);
        break;
      }
      }
    }
  }

  void cloneInstr(const Instr &I) {
    Instr C = I;
    for (ValueId &Op : C.Ops)
      Op = mapped(Op);
    C.Result = NoValue; // emit() recreates result bookkeeping.
    ValueId NewRes = B.emit(std::move(C));
    if (I.hasResult())
      VMap[I.Result] = NewRes;
  }

  /// Clones a loop verbatim (recursing with vectorization enabled for
  /// inner loops when \p TryVectorize).
  void cloneLoopVerbatim(uint32_t LoopIdx, bool TryVectorize) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    auto H = B.beginLoop(mapped(L.Lower), mapped(L.Upper), mapped(L.Step),
                         L.Role);
    VMap[L.IndVar] = H.indVar();
    for (const auto &C : L.Carried)
      VMap[C.Phi] = B.addCarried(H, mapped(C.Init));
    cloneRegion(L.Body, TryVectorize);
    for (const auto &C : L.Carried) {
      B.setCarriedNext(H, mapped(C.Phi), mapped(C.Next));
      VMap[C.Result] = B.carriedResult(H, mapped(C.Phi));
    }
    B.endLoop(H);
  }

  /// Clones the body of source loop \p LoopIdx as a scalar loop over
  /// [Lower, Upper) step 1, with carried variables initialized from
  /// \p CarriedInits. \returns the carried results (parallel to Carried).
  std::vector<ValueId> emitScalarCopy(uint32_t LoopIdx, ValueId Lower,
                                      ValueId Upper,
                                      const std::vector<ValueId> &CarriedInits,
                                      LoopRole Role) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    auto H = B.beginLoop(Lower, Upper, B.constIdx(1), Role);
    VMap[L.IndVar] = H.indVar();
    for (size_t C = 0; C < L.Carried.size(); ++C)
      VMap[L.Carried[C].Phi] = B.addCarried(H, CarriedInits[C]);
    cloneRegion(L.Body, /*TryVectorize=*/false);
    std::vector<ValueId> Results;
    for (const auto &C : L.Carried) {
      B.setCarriedNext(H, mapped(C.Phi), mapped(C.Next));
      Results.push_back(B.carriedResult(H, mapped(C.Phi)));
    }
    B.endLoop(H);
    return Results;
  }

  /// Clones the pure scalar expression tree rooted at source value \p V,
  /// with leaf substitutions from \p Subst (falling back to VMap).
  ValueId cloneExpr(ValueId V, const std::map<ValueId, ValueId> &Subst) {
    auto It = Subst.find(V);
    if (It != Subst.end())
      return It->second;
    const ValueInfo &VI = Src.Values[V];
    if (VI.Def != ValueDef::Instr)
      return mapped(V);
    const Instr &I = Src.Instrs[VI.A];
    Instr C = I;
    C.Result = NoValue;
    for (ValueId &Op : C.Ops)
      Op = cloneExpr(Op, Subst);
    return B.emit(std::move(C));
  }

  //===--- Loop planning ------------------------------------------------===//

  void cloneOrVectorizeLoop(uint32_t LoopIdx, bool TryVectorize) {
    LoopReport Report;
    Report.SrcLoop = LoopIdx;
    if (!TryVectorize) {
      cloneLoopVerbatim(LoopIdx, false);
      return;
    }
    if (!Nest.isInnermost(LoopIdx)) {
      if (Opt.EnableOuterLoop && tryOuterLoop(LoopIdx, Report)) {
        Reports.push_back(Report);
        return;
      }
      if (Report.Reason.empty())
        Report.Reason = "not innermost (outer-loop strategy not viable)";
      Reports.push_back(Report);
      cloneLoopVerbatim(LoopIdx, true);
      return;
    }
    LoopPlan Plan = planInnerLoop(LoopIdx);
    if (!Plan.OK) {
      Report.Reason = Plan.Reason;
      Reports.push_back(Report);
      cloneLoopVerbatim(LoopIdx, true);
      return;
    }
    emitVectorizedLoop(LoopIdx, Plan);
    Report.Vectorized = true;
    Report.Strategy = Rerolled.count(LoopIdx) ? "slp" : "inner";
    recordPlan(Report, Plan);
    Reports.push_back(Report);
  }

  /// Copies the plan's decisions into the loop's decision record.
  static void recordPlan(LoopReport &Report, const LoopPlan &Plan) {
    Report.Versioned = Plan.Versioned;
    Report.Peeled = Plan.Peel;
    Report.MaxSafeVF = Plan.MaxSafeVF;
    Report.Reductions = static_cast<uint32_t>(Plan.Reds.size());
    for (const RedPlan &RP : Plan.Reds)
      Report.MaxReductions += RP.Info.Kind == ReductionKind::Max;
    Report.SatOps = Plan.SatOps;
    Report.MinElemBytes =
        Plan.MinKind == ScalarKind::None ? 0 : scalarSize(Plan.MinKind);
  }

  LoopPlan planInnerLoop(uint32_t LoopIdx) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    LoopPlan P;
    auto Fail = [&](const std::string &Why) {
      P.OK = false;
      P.Reason = Why;
      return P;
    };

    const AffineExpr &Step = AA.of(L.Step);
    if (!Step.isConstant() || Step.Const != 1)
      return Fail("loop step is not 1");
    const AffineExpr &LowerE = AA.of(L.Lower);
    P.LowerConst = LowerE.isConstant();
    P.LowerVal = LowerE.Const;
    // Re-rolled (SLP) loops may be configured without alignment
    // versioning, matching the era's native SLP behaviour.
    bool AlignOpts = Opt.EnableAlignmentOpts &&
                     (!Rerolled.count(LoopIdx) ||
                      Opt.SLPAlignmentVersioning);

    // Body must be straight-line.
    for (const NodeRef &N : L.Body.Nodes)
      if (N.Kind != NodeKind::Instr)
        return Fail("loop body has control flow");

    // Dependences. Unknown distances are conservatively rejected (the
    // paper's implemented policy). Constant carried distances >= 2 are
    // admitted through the dependence-distance hint extension the paper
    // describes (Sec. III-B(b)): the loop is vectorized with a max_safe_vf
    // annotation and the online compiler scalarizes when its VF is wider.
    DependenceResult Deps = analyzeDependences(Src, AA, Nest, LoopIdx);
    if (!Deps.Vectorizable) {
      int64_t MinDist = INT64_MAX;
      for (const DepPair &DP : Deps.Blockers) {
        if (DP.Kind != DepKind::Carried)
          return Fail("blocking data dependence (unknown distance)");
        int64_t D = DP.Distance < 0 ? -DP.Distance : DP.Distance;
        if (D < 2)
          return Fail("loop-carried dependence of distance " +
                      std::to_string(D));
        MinDist = std::min(MinDist, D);
      }
      P.MaxSafeVF = MinDist;
      // Keep hinted loops free of carried variables: their lane layout is
      // decided per target by the online compiler, so no value may escape
      // the loop (reduction results would).
      if (!L.Carried.empty())
        return Fail("dependence-hinted loop with carried variables");
    }

    // Reductions.
    for (uint32_t C = 0; C < L.Carried.size(); ++C) {
      auto Red = matchReduction(Src, LoopIdx, C);
      if (!Red)
        return Fail("loop-carried variable is not a recognized reduction");
      if (!isVectorizableDataKind(Src.typeOf(L.Carried[C].Phi).Elem))
        return Fail("reduction on a non-vectorizable kind");
      RedPlan RP;
      RP.Info = *Red;
      P.Reds.push_back(RP);
    }

    // Classify values: loads and reduction phis seed the vector set, and
    // vectorness propagates through operands.
    for (const auto &C : L.Carried)
      P.VecValues.insert(C.Phi);
    for (const NodeRef &N : L.Body.Nodes) {
      const Instr &I = Src.Instrs[N.Index];
      bool Vec = I.Op == Opcode::Load;
      unsigned FirstDataOp = 0;
      if (I.Op == Opcode::Load || I.Op == Opcode::Store)
        FirstDataOp = 1; // Skip the index operand.
      for (unsigned OpIdx = FirstDataOp; OpIdx < I.Ops.size(); ++OpIdx)
        Vec |= P.VecValues.count(I.Ops[OpIdx]) != 0;
      if (!Vec)
        continue;
      if (I.hasResult()) {
        ScalarKind RK = I.Ty.Elem;
        if (RK != ScalarKind::I1 && !isVectorizableDataKind(RK))
          return Fail("vector value of unsupported kind " +
                      std::string(scalarKindName(RK)));
        P.VecValues.insert(I.Result);
      }
      // Opcode restrictions for vector emission.
      switch (I.Op) {
      case Opcode::AddSatS:
      case Opcode::AddSatU:
      case Opcode::SubSatS:
      case Opcode::SubSatU:
        ++P.SatOps;
        break;
      case Opcode::Rem:
        return Fail("vector integer remainder is not supported");
      case Opcode::Div:
        if (!isFloatKind(I.Ty.Elem))
          return Fail("vector integer division is not supported");
        break;
      default:
        break;
      }
      // Data operands must be data-kinded (an I64 index value flowing into
      // a vector op means the induction variable is used as data).
      for (unsigned OpIdx = FirstDataOp; OpIdx < I.Ops.size(); ++OpIdx) {
        Type OT = Src.typeOf(I.Ops[OpIdx]);
        if (OT.Elem != ScalarKind::I1 && !isVectorizableDataKind(OT.Elem))
          return Fail("index-kind value used as vector data");
      }
    }

    // The reduction update must be a vector op.
    for (const RedPlan &RP : P.Reds)
      if (!P.VecValues.count(L.Carried[RP.Info.CarriedIdx].Next))
        return Fail("reduction update is not vectorizable");

    // Smallest data kind determines the symbolic VF.
    unsigned MinSize = 16;
    for (ValueId V : P.VecValues) {
      ScalarKind K = Src.typeOf(V).Elem;
      if (K == ScalarKind::I1)
        continue;
      MinSize = std::min(MinSize, scalarSize(K));
    }
    if (MinSize == 16)
      return Fail("no vector data in loop");
    if (P.MaxSafeVF > 0 && MinSize < 4)
      return Fail("dependence-hinted loop with sub-word data");
    for (ScalarKind K : {ScalarKind::I8, ScalarKind::U8, ScalarKind::I16,
                         ScalarKind::U16, ScalarKind::I32, ScalarKind::U32,
                         ScalarKind::F32, ScalarKind::F64})
      if (scalarSize(K) == MinSize)
        P.MinKind = K;

    // Access plans.
    std::map<uint32_t, std::map<int64_t, std::set<int64_t>>> StrideStores;
    for (const NodeRef &N : L.Body.Nodes) {
      const Instr &I = Src.Instrs[N.Index];
      if (I.Op != Opcode::Load && I.Op != Opcode::Store)
        continue;
      AccessShape S = accessShape(Src, AA, Nest, LoopIdx, I.Ops[0]);
      AccessPlan AP;
      AP.Stride = S.IvCoeff;
      AP.OffConst = S.OffsetConst;
      AP.OffElems = S.OffsetElems;
      if (S.IvCoeff == 0) {
        if (I.Op == Opcode::Store)
          return Fail("store with loop-invariant address");
        if (!S.OffsetInvariant)
          return Fail("invariant load with loop-variant index");
        AP.K = AccessPlan::Kind::Invariant;
      } else if (S.IvCoeff == 1) {
        AP.K = AccessPlan::Kind::Contig;
        if (!S.OffsetInvariant)
          return Fail("contiguous access with loop-variant offset");
        AccessShape Adjusted = S;
        // Misalignment is relative to the first executed index.
        if (P.LowerConst) {
          Adjusted.OffsetElems += P.LowerVal;
        } else {
          // Unknown starting residue: poison the shape so the hint nulls.
          Adjusted.OffsetConst = false;
          Adjusted.OffsetTerms[Src.Loops[LoopIdx].Lower] = 1;
        }
        AP.Hint = AlignOpts ? alignmentOf(Src, I.Array, Adjusted).Hint
                            : AlignHint{-1, 0, false};
      } else if (S.IvCoeff >= 2 && S.IvCoeff <= 4 && S.OffsetConst) {
        // Strided access: only for the smallest kind (single part).
        if (scalarSize(Src.Arrays[I.Array].Elem) != MinSize)
          return Fail("strided access on a wide kind");
        AP.K = AccessPlan::Kind::Strided;
        AP.GroupRes = ((S.OffsetElems % S.IvCoeff) + S.IvCoeff) % S.IvCoeff;
        AP.GroupBase = S.OffsetElems - AP.GroupRes;
        if (I.Op == Opcode::Store) {
          if (S.IvCoeff != 2)
            return Fail("strided stores only supported for stride 2");
          StrideStores[I.Array][AP.GroupBase].insert(AP.GroupRes);
        }
      } else {
        return Fail("unsupported access pattern");
      }
      P.Access[N.Index] = AP;
    }

    // Stride-2 store groups must cover both residues.
    for (const auto &[Arr, Groups] : StrideStores) {
      (void)Arr;
      for (const auto &[Base, Residues] : Groups) {
        (void)Base;
        if (Residues.size() != 2)
          return Fail("incomplete strided store group");
      }
    }

    // Widening idiom formation: dot_product for plus-reductions over a
    // widening multiplication; widen_mult elsewhere. The converts (and for
    // dot the multiply) are "fused": not emitted on their own.
    for (RedPlan &RP : P.Reds) {
      if (RP.Info.Kind != ReductionKind::Plus)
        continue;
      auto WM = matchWideningMul(Src, RP.Info.Contribution);
      if (!WM)
        continue;
      const ValueInfo &MulInfo = Src.Values[RP.Info.Contribution];
      const Instr &Mul = Src.Instrs[MulInfo.A];
      // Contribution and its converts must be single-use to fuse.
      if (countUses(Src, L.Body, RP.Info.Contribution) != 1 ||
          countUses(Src, L.Body, Mul.Ops[0]) != 1 ||
          countUses(Src, L.Body, Mul.Ops[1]) != 1)
        continue;
      RP.UseDot = true;
      RP.Dot = *WM;
      P.Fused.insert(MulInfo.A);
      P.Fused.insert(Src.Values[Mul.Ops[0]].A);
      P.Fused.insert(Src.Values[Mul.Ops[1]].A);
    }
    for (const NodeRef &N : L.Body.Nodes) {
      const Instr &I = Src.Instrs[N.Index];
      if (I.Op != Opcode::Mul || !I.hasResult() || P.Fused.count(N.Index) ||
          !P.VecValues.count(I.Result))
        continue;
      auto WM = matchWideningMul(Src, I.Result);
      if (!WM)
        continue;
      if (countUses(Src, L.Body, I.Ops[0]) != 1 ||
          countUses(Src, L.Body, I.Ops[1]) != 1)
        continue;
      // widen_mult: fuse the converts, keep the multiply (it becomes the
      // widen_mult_lo/hi pair).
      P.Fused.insert(Src.Values[I.Ops[0]].A);
      P.Fused.insert(Src.Values[I.Ops[1]].A);
    }

    // Versioning: needed when the alignment hints depend on runtime base
    // alignment (some hinted array has unknown base alignment). Only
    // arrays whose accesses carry a useful hint go into the guard: an
    // access whose misalignment stays symbolic (nulled hint, e.g. a
    // striped-DP row at a runtime offset) is emitted through the
    // realignment chain in both versions, so guarding its base would add
    // a runtime check that no downstream obligation consumes.
    if (AlignOpts) {
      std::set<uint32_t> HintedArrays;
      for (const auto &[InstrIdx, AP] : P.Access)
        if (AP.Hint.Mod != 0 || AP.K == AccessPlan::Kind::Strided)
          HintedArrays.insert(Src.Instrs[InstrIdx].Array);
      bool AnyUnknownBase = false;
      for (uint32_t Arr : HintedArrays)
        if (Src.Arrays[Arr].BaseAlign < AlignModBytes)
          AnyUnknownBase = true;
      if (AnyUnknownBase) {
        P.Versioned = true;
        P.GuardArrays.assign(HintedArrays.begin(), HintedArrays.end());
      }
      // Peeling (fall-back path): single store array with one constant
      // offset class.
      std::set<uint32_t> StoreArrays;
      std::set<int64_t> StoreOffs;
      bool PeelEligible = true;
      for (const auto &[InstrIdx, AP] : P.Access) {
        const Instr &I = Src.Instrs[InstrIdx];
        if (I.Op != Opcode::Store)
          continue;
        if (AP.K != AccessPlan::Kind::Contig || !AP.OffConst)
          PeelEligible = false;
        StoreArrays.insert(I.Array);
        StoreOffs.insert(AP.OffElems);
      }
      if (PeelEligible && StoreArrays.size() == 1 && StoreOffs.size() == 1) {
        P.Peel = true;
        P.PeelArr = *StoreArrays.begin();
        P.PeelOff = *StoreOffs.begin();
      }
    }

    P.OK = true;
    return P;
  }


  //===--- Vectorized emission ------------------------------------------===//

  /// Per-version emission state.
  struct VecCtx {
    bool Hinted = false; ///< Version A: hints valid (bases aligned).
    bool AlignedBases = false; ///< Bases known VS-aligned in this version.
    bool PeelActive = false; ///< A peel loop aligned the store array.
    ValueId MainLower = NoValue;
    ValueId NewIv = NoValue;
    std::map<ScalarKind, ValueId> VF;
    std::map<ValueId, std::vector<ValueId>> Parts;
    std::map<ValueId, ValueId> Splats;
    /// Realignment chains: per load instruction, the carried chunk.
    struct Chain {
      ValueId Phi = NoValue;
      ValueId RT = NoValue;
      ValueId LastChunk = NoValue; ///< Next value for the carried chunk.
    };
    std::map<uint32_t, Chain> Chains;
    /// Strided-load chunk memo for the current iteration:
    /// (array, stride, groupBase) -> chunk vectors.
    std::map<std::tuple<uint32_t, int64_t, int64_t>, std::vector<ValueId>>
        StridedChunks;
    /// Pending strided stores: (array, groupBase) -> residue -> value.
    std::map<std::pair<uint32_t, int64_t>, std::map<int64_t, ValueId>>
        PendingStridedStores;
  };

  unsigned partCount(ScalarKind K, ScalarKind MinKind) const {
    return scalarSize(K) / scalarSize(MinKind);
  }

  ValueId vfOf(VecCtx &C, ScalarKind K) {
    auto It = C.VF.find(K);
    if (It != C.VF.end())
      return It->second;
    return C.VF[K] = B.getVF(K);
  }

  /// The effective hint for this version: version A keeps the computed
  /// hints (the guard guarantees base alignment); version B and the
  /// ablation run with nulled hints.
  AlignHint effectiveHint(const VecCtx &C, const AlignHint &H) const {
    if (!C.Hinted)
      return AlignHint{-1, 0, false};
    AlignHint R = H;
    R.IfJitAligns = false; // The guard subsumes the condition.
    return R;
  }

  void emitVectorizedLoop(uint32_t LoopIdx, LoopPlan &Plan) {
    const LoopStmt &L = Src.Loops[LoopIdx];

    if (!Plan.Versioned) {
      VecCtx C;
      C.Hinted = Opt.EnableAlignmentOpts;
      C.AlignedBases = C.Hinted; // All bases statically >= 32-aligned.
      std::vector<ValueId> Results =
          emitOneVersion(LoopIdx, Plan, C, /*WithPeel=*/false);
      for (size_t I = 0; I < L.Carried.size(); ++I)
        VMap[L.Carried[I].Result] = Results[I];
      return;
    }

    // Versioned: guarded fast path with aligned hints, fall-back with
    // nulled hints (paper Sec. III-B(c)). Results flow through scratch
    // slots because the two arms define different values.
    std::vector<uint32_t> Scratch;
    for (size_t I = 0; I < L.Carried.size(); ++I)
      Scratch.push_back(Out.addArray("__vt" + std::to_string(LoopIdx) + "_" +
                                         std::to_string(I),
                                     Src.typeOf(L.Carried[I].Phi).Elem, 1,
                                     32));

    ValueId Guard =
        B.versionGuard(GuardKind::BasesAligned, Plan.GuardArrays);
    uint32_t IfIdx = B.beginIf(Guard);
    {
      VecCtx CA;
      CA.Hinted = true;
      CA.AlignedBases = true;
      std::vector<ValueId> R =
          emitOneVersion(LoopIdx, Plan, CA, /*WithPeel=*/false);
      for (size_t I = 0; I < R.size(); ++I)
        B.store(Scratch[I], B.constIdx(0), R[I]);
    }
    B.beginElse(IfIdx);
    {
      VecCtx CB;
      CB.Hinted = false;
      CB.AlignedBases = false;
      std::vector<ValueId> R =
          emitOneVersion(LoopIdx, Plan, CB, /*WithPeel=*/Plan.Peel);
      for (size_t I = 0; I < R.size(); ++I)
        B.store(Scratch[I], B.constIdx(0), R[I]);
    }
    B.endIf(IfIdx);

    for (size_t I = 0; I < L.Carried.size(); ++I)
      VMap[L.Carried[I].Result] = B.load(Scratch[I], B.constIdx(0));
  }

  /// Emits preheader + (peel) + vector main loop + reduction finalize +
  /// scalar epilogue for one version. \returns the final scalar values of
  /// the carried variables.
  std::vector<ValueId> emitOneVersion(uint32_t LoopIdx, LoopPlan &Plan,
                                      VecCtx &C, bool WithPeel) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    ValueId Lower = mapped(L.Lower);
    ValueId Upper = mapped(L.Upper);
    ValueId VFMin = vfOf(C, Plan.MinKind);

    // Invariant splats for every out-of-loop data operand.
    emitInvariantSplats(LoopIdx, Plan, C);

    // Scalar peel loop (fall-back path): aligns the store array.
    std::vector<ValueId> CarriedAfterPeel;
    for (const auto &CV : L.Carried)
      CarriedAfterPeel.push_back(mapped(CV.Init));
    ValueId MainLower = Lower;
    if (WithPeel && Plan.Peel) {
      ValueId AL = B.getAlignLimit(Src.Arrays[Plan.PeelArr].Elem);
      ValueId Mis = B.getMisalign(Plan.PeelArr, Plan.PeelOff);
      // The first store lands at element Lower + PeelOff: fold the lower
      // bound into the misalignment before sizing the peel.
      ValueId MisTot = B.rem(B.add(Mis, Lower), AL);
      ValueId RawPeel = B.rem(B.sub(AL, MisTot), AL);
      ValueId Span = B.sub(Upper, Lower);
      ValueId PeelN = B.smin(RawPeel, B.smax(Span, B.constIdx(0)));
      ValueId PeelBound = B.loopBound(PeelN, B.constIdx(0));
      ValueId PeelEnd = B.add(Lower, PeelBound);
      CarriedAfterPeel = emitScalarCopy(LoopIdx, Lower, PeelEnd,
                                        CarriedAfterPeel, LoopRole::Peel);
      MainLower = PeelEnd;
      C.PeelActive = true;
    }
    C.MainLower = MainLower;

    // Main bound: lower + floor((upper-lower)/vf)*vf.
    ValueId Span = B.smax(B.sub(Upper, MainLower), B.constIdx(0));
    ValueId MainEnd =
        B.add(MainLower, B.mul(B.div(Span, VFMin), VFMin));

    // Reduction accumulator initialization.
    std::vector<std::vector<ValueId>> AccInit(L.Carried.size());
    for (const RedPlan &RP : Plan.Reds) {
      const auto &CV = L.Carried[RP.Info.CarriedIdx];
      ScalarKind PhiK = Src.typeOf(CV.Phi).Elem;
      ValueId InitScalar = CarriedAfterPeel[RP.Info.CarriedIdx];
      ValueId Ident = identityValue(RP.Info.Kind, PhiK);
      unsigned NParts = RP.UseDot ? partCount(RP.Dot.NarrowKind, Plan.MinKind)
                                  : partCount(PhiK, Plan.MinKind);
      std::vector<ValueId> Parts;
      Parts.push_back(B.initReduc(InitScalar, Ident));
      for (unsigned PIdx = 1; PIdx < NParts; ++PIdx)
        Parts.push_back(B.initUniform(Ident));
      AccInit[RP.Info.CarriedIdx] = std::move(Parts);
    }

    // Realignment chain preheaders (rt + first chunk) for loads that are
    // not known-aligned.
    prepareChains(LoopIdx, Plan, C, MainLower);

    // --- Main vector loop ---
    auto H = B.beginLoop(MainLower, MainEnd, VFMin, LoopRole::VecMain);
    Out.Loops[H.LoopIdx].MaxSafeVF = Plan.MaxSafeVF;
    C.NewIv = H.indVar();
    VMap[L.IndVar] = H.indVar();

    // Carried accumulators.
    std::vector<std::vector<ValueId>> AccPhi(L.Carried.size());
    for (size_t CI = 0; CI < L.Carried.size(); ++CI) {
      for (ValueId Init : AccInit[CI])
        AccPhi[CI].push_back(B.addCarried(H, Init));
      if (!AccInit[CI].empty())
        C.Parts[L.Carried[CI].Phi] = AccPhi[CI];
    }
    // Carried realignment chunks (not in dependence-hinted loops).
    for (auto &[InstrIdx, Chain] : C.Chains) {
      (void)InstrIdx;
      if (Chain.Phi != NoValue)
        Chain.Phi = B.addCarried(H, Chain.Phi);
    }

    emitVectorBody(LoopIdx, Plan, C);

    for (size_t CI = 0; CI < L.Carried.size(); ++CI) {
      const auto &NextParts = C.Parts[L.Carried[CI].Next];
      for (size_t PIdx = 0; PIdx < AccPhi[CI].size(); ++PIdx)
        B.setCarriedNext(H, AccPhi[CI][PIdx], NextParts[PIdx]);
    }
    for (auto &[InstrIdx, Chain] : C.Chains) {
      (void)InstrIdx;
      if (Chain.Phi != NoValue)
        B.setCarriedNext(H, Chain.Phi, Chain.LastChunk);
    }

    std::vector<std::vector<ValueId>> AccOut(L.Carried.size());
    for (size_t CI = 0; CI < L.Carried.size(); ++CI)
      for (ValueId Phi : AccPhi[CI])
        AccOut[CI].push_back(B.carriedResult(H, Phi));
    B.endLoop(H);

    // Reduction finalization: combine parts, then horizontal reduce.
    std::vector<ValueId> AfterMain = CarriedAfterPeel;
    for (const RedPlan &RP : Plan.Reds) {
      size_t CI = RP.Info.CarriedIdx;
      Opcode Comb = RP.Info.Kind == ReductionKind::Plus
                        ? Opcode::Add
                        : (RP.Info.Kind == ReductionKind::Min ? Opcode::Min
                                                              : Opcode::Max);
      Opcode RedOp = RP.Info.Kind == ReductionKind::Plus
                         ? Opcode::ReducPlus
                         : (RP.Info.Kind == ReductionKind::Min
                                ? Opcode::ReducMin
                                : Opcode::ReducMax);
      ValueId Acc = AccOut[CI][0];
      for (size_t PIdx = 1; PIdx < AccOut[CI].size(); ++PIdx)
        Acc = B.binop(Comb, Acc, AccOut[CI][PIdx]);
      AfterMain[CI] = B.reduc(RedOp, Acc);
    }

    // --- Scalar epilogue ---
    std::vector<ValueId> Final =
        emitScalarCopy(LoopIdx, MainEnd, Upper, AfterMain,
                       LoopRole::Epilogue);
    return Final;
  }

  ValueId identityValue(ReductionKind K, ScalarKind Kind) {
    if (isFloatKind(Kind)) {
      double V = 0;
      if (K == ReductionKind::Min)
        V = Kind == ScalarKind::F32 ? 3.4e38 : 1.7e308;
      else if (K == ReductionKind::Max)
        V = Kind == ScalarKind::F32 ? -3.4e38 : -1.7e308;
      return B.constFP(Kind, V);
    }
    int64_t V = 0;
    unsigned Bits = scalarSize(Kind) * 8;
    if (K == ReductionKind::Min)
      V = isSignedKind(Kind) ? (int64_t(1) << (Bits - 1)) - 1
                             : static_cast<int64_t>(laneMask(Kind));
    else if (K == ReductionKind::Max)
      V = isSignedKind(Kind) ? -(int64_t(1) << (Bits - 1)) : 0;
    return B.constInt(Kind, V);
  }

  /// Emits init_uniform splats in the preheader for every loop-invariant
  /// value consumed by a vector operation.
  void emitInvariantSplats(uint32_t LoopIdx, LoopPlan &Plan, VecCtx &C) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    for (const NodeRef &N : L.Body.Nodes) {
      const Instr &I = Src.Instrs[N.Index];
      if (Plan.Fused.count(N.Index))
        continue;
      bool IsVec = (I.hasResult() && Plan.VecValues.count(I.Result)) ||
                   (I.Op == Opcode::Store &&
                    Plan.Access.count(N.Index));
      if (!IsVec)
        continue;
      unsigned FirstDataOp =
          (I.Op == Opcode::Load || I.Op == Opcode::Store) ? 1 : 0;
      for (unsigned OpIdx = FirstDataOp; OpIdx < I.Ops.size(); ++OpIdx) {
        ValueId Op = I.Ops[OpIdx];
        if (Plan.VecValues.count(Op) || C.Splats.count(Op))
          continue;
        if (Nest.definesValue(LoopIdx, Op)) {
          // Defined in the loop but not a vector value: it must be a
          // fused convert input handled elsewhere; skip here.
          continue;
        }
        C.Splats[Op] = B.initUniform(mapped(Op));
      }
    }
  }

  /// \returns the vector parts of source data value \p V (splatting
  /// invariants on demand — the splat was pre-created in the preheader).
  const std::vector<ValueId> &partsOf(LoopPlan &Plan, VecCtx &C, ValueId V) {
    auto It = C.Parts.find(V);
    if (It != C.Parts.end())
      return It->second;
    auto SIt = C.Splats.find(V);
    ValueId Splat;
    if (SIt != C.Splats.end()) {
      Splat = SIt->second;
    } else {
      // Uniform value first seen inside the body (typically a constant
      // cloned in place): splat it here; the online compiler hoists
      // loop-invariant initializations.
      Splat = C.Splats[V] = B.initUniform(mapped(V));
    }
    unsigned N = partCount(Src.typeOf(V).Elem, Plan.MinKind);
    return C.Parts[V] = std::vector<ValueId>(N, Splat);
  }

  /// Preheader part of the realignment scheme: get_rt and the initial
  /// aligned chunk for every contiguous load that is not known-aligned.
  void prepareChains(uint32_t LoopIdx, LoopPlan &Plan, VecCtx &C,
                     ValueId MainLower) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    for (const NodeRef &N : L.Body.Nodes) {
      const Instr &I = Src.Instrs[N.Index];
      if (I.Op != Opcode::Load)
        continue;
      auto APIt = Plan.Access.find(N.Index);
      if (APIt == Plan.Access.end() ||
          APIt->second.K != AccessPlan::Kind::Contig)
        continue;
      const AccessPlan &AP = APIt->second;
      AlignHint H = effectiveHint(C, AP.Hint);
      if (isKnownAligned(C, AP))
        continue; // Plain aligned loads; no chain.
      // First access address: index expression with iv := MainLower.
      std::map<ValueId, ValueId> Subst{{L.IndVar, MainLower}};
      ValueId FirstIdx = cloneExpr(I.Ops[0], Subst);
      VecCtx::Chain Chain;
      Chain.RT = B.getRT(I.Array, FirstIdx, H);
      // Loops with carried dependences reload the chunk each iteration:
      // a store from the previous iteration may overlap the cached one.
      if (Plan.MaxSafeVF == 0)
        Chain.Phi = B.alignLoad(I.Array, FirstIdx); // Becomes carried phi.
      C.Chains[N.Index] = Chain;
    }
  }

  /// Known aligned for every legal VS: hint valid and mis == 0, with base
  /// alignment guaranteed in this version.
  bool isKnownAligned(const VecCtx &C, const AccessPlan &AP) const {
    if (!C.AlignedBases)
      return false;
    AlignHint H = effectiveHint(C, AP.Hint);
    return H.known() && H.Mis == 0;
  }

  //===--- Vector body emission ------------------------------------------===//

  void emitVectorBody(uint32_t LoopIdx, LoopPlan &Plan, VecCtx &C) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    C.StridedChunks.clear();
    C.PendingStridedStores.clear();

    for (const NodeRef &N : L.Body.Nodes) {
      const Instr &I = Src.Instrs[N.Index];
      if (Plan.Fused.count(N.Index))
        continue;

      bool IsVec = (I.hasResult() && Plan.VecValues.count(I.Result)) ||
                   (I.Op == Opcode::Store && Plan.Access.count(N.Index));
      if (!IsVec) {
        cloneInstr(I); // Scalar index computation.
        continue;
      }

      switch (I.Op) {
      case Opcode::Load:
        C.Parts[I.Result] = emitLoad(LoopIdx, Plan, C, N.Index, I);
        break;
      case Opcode::Store:
        emitStore(Plan, C, N.Index, I);
        break;
      case Opcode::Convert:
        C.Parts[I.Result] =
            emitConvert(Plan, C, partsOf(Plan, C, I.Ops[0]),
                        Src.typeOf(I.Ops[0]).Elem, I.Ty.Elem);
        break;
      case Opcode::Mul:
        if (emitMaybeWidenMult(Plan, C, N.Index, I))
          break;
        [[fallthrough]];
      default:
        if (emitMaybeDotUpdate(Plan, C, LoopIdx, N.Index, I))
          break;
        emitElementwise(Plan, C, I);
        break;
      }
    }
  }

  std::vector<ValueId> emitLoad(uint32_t LoopIdx, LoopPlan &Plan, VecCtx &C,
                                uint32_t InstrIdx, const Instr &I) {
    (void)LoopIdx;
    const AccessPlan &AP = Plan.Access.at(InstrIdx);
    ScalarKind K = Src.Arrays[I.Array].Elem;
    unsigned NParts = partCount(K, Plan.MinKind);

    switch (AP.K) {
    case AccessPlan::Kind::Invariant: {
      // Uniform value: scalar load + splat.
      ValueId Idx = cloneExpr(I.Ops[0], {});
      ValueId S = B.load(I.Array, Idx);
      return std::vector<ValueId>(NParts, B.initUniform(S));
    }
    case AccessPlan::Kind::Contig: {
      ValueId Idx = mapped(I.Ops[0]); // Cloned earlier in body order.
      AlignHint H = effectiveHint(C, AP.Hint);
      std::vector<ValueId> Parts;
      if (isKnownAligned(C, AP)) {
        // Carry the proving hint as provenance for the static verifier.
        for (unsigned PIdx = 0; PIdx < NParts; ++PIdx)
          Parts.push_back(B.aload(I.Array, partIndex(C, Idx, K, PIdx), H));
        return Parts;
      }
      // Optimized realignment (Fig. 3a): carried chunk + align_load(next)
      // + realign_load per part.
      VecCtx::Chain &Chain = C.Chains.at(InstrIdx);
      ValueId Prev = Chain.Phi != NoValue
                         ? Chain.Phi
                         : B.alignLoad(I.Array, Idx); // Fresh chunk.
      ValueId VFK = vfOf(C, K);
      for (unsigned PIdx = 0; PIdx < NParts; ++PIdx) {
        ValueId PartIdx = partIndex(C, Idx, K, PIdx);
        ValueId NextIdx = B.add(PartIdx, VFK);
        ValueId NextChunk = B.alignLoad(I.Array, NextIdx);
        Parts.push_back(
            B.realignLoad(Prev, NextChunk, Chain.RT, I.Array, PartIdx, H));
        Prev = NextChunk;
      }
      Chain.LastChunk = Prev;
      return Parts;
    }
    case AccessPlan::Kind::Strided: {
      const std::vector<ValueId> &Chunks =
          stridedChunks(Plan, C, I.Array, AP);
      return {B.extract(AP.Stride, AP.GroupRes, Chunks)};
    }
    }
    vapor_unreachable("bad access plan kind");
  }

  /// Element index of part \p PIdx: Idx + PIdx * get_VF(K).
  ValueId partIndex(VecCtx &C, ValueId Idx, ScalarKind K, unsigned PIdx) {
    if (PIdx == 0)
      return Idx;
    ValueId VFK = vfOf(C, K);
    return B.add(Idx, B.mul(B.constIdx(PIdx), VFK));
  }

  /// Chunk loads shared by the strided accesses of one residue group.
  const std::vector<ValueId> &stridedChunks(LoopPlan &Plan, VecCtx &C,
                                            uint32_t Array,
                                            const AccessPlan &AP) {
    auto Key = std::make_tuple(Array, AP.Stride, AP.GroupBase);
    auto It = C.StridedChunks.find(Key);
    if (It != C.StridedChunks.end())
      return It->second;
    ScalarKind K = Src.Arrays[Array].Elem;
    ValueId VFK = vfOf(C, K);
    ValueId Base = B.add(B.mul(C.NewIv, B.constIdx(AP.Stride)),
                         B.constIdx(AP.GroupBase));
    std::vector<ValueId> Chunks;
    bool Aligned =
        C.AlignedBases && Plan.LowerConst &&
        ((AP.Stride * Plan.LowerVal + AP.GroupBase) * scalarSize(K)) %
                AlignModBytes ==
            0;
    for (int64_t J = 0; J < AP.Stride; ++J) {
      ValueId Idx = J == 0 ? Base : B.add(Base, B.mul(B.constIdx(J), VFK));
      Chunks.push_back(Aligned
                           ? B.aload(Array, Idx,
                                     AlignHint{0, AlignModBytes, false})
                           : B.uload(Array, Idx, AlignHint{-1, 0, false}));
    }
    return C.StridedChunks[Key] = Chunks;
  }

  void emitStore(LoopPlan &Plan, VecCtx &C, uint32_t InstrIdx,
                 const Instr &I) {
    const AccessPlan &AP = Plan.Access.at(InstrIdx);
    ScalarKind K = Src.Arrays[I.Array].Elem;
    const std::vector<ValueId> &Vals = partsOf(Plan, C, I.Ops[1]);

    if (AP.K == AccessPlan::Kind::Contig) {
      ValueId Idx = mapped(I.Ops[0]);
      AlignHint H = effectiveHint(C, AP.Hint);
      // Statically known-aligned stores carry the proving hint as
      // provenance; peel-made-aligned stores carry none (their alignment
      // is a dynamic fact about the peel bound, not a static residue).
      bool Known = isKnownAligned(C, AP);
      bool Aligned = Known ||
                     (C.PeelActive && I.Array == Plan.PeelArr &&
                      AP.OffConst && AP.OffElems == Plan.PeelOff);
      for (unsigned PIdx = 0; PIdx < Vals.size(); ++PIdx) {
        ValueId PartIdx = partIndex(C, Idx, K, PIdx);
        if (Aligned)
          B.astore(I.Array, PartIdx, Vals[PIdx],
                   Known ? H : AlignHint{});
        else
          B.ustore(I.Array, PartIdx, Vals[PIdx], H);
      }
      return;
    }

    assert(AP.K == AccessPlan::Kind::Strided && AP.Stride == 2 &&
           "planner admits only stride-2 stores");
    auto Key = std::make_pair(I.Array, AP.GroupBase);
    auto &Pending = C.PendingStridedStores[Key];
    Pending[AP.GroupRes] = Vals[0];
    if (Pending.size() != 2)
      return; // Wait for the partner residue.
    ValueId V0 = Pending.at(0);
    ValueId V1 = Pending.at(1);
    ValueId VFK = vfOf(C, K);
    ValueId Base = B.add(B.mul(C.NewIv, B.constIdx(2)),
                         B.constIdx(AP.GroupBase));
    ValueId Lo = B.interleaveLo(V0, V1);
    ValueId Hi = B.interleaveHi(V0, V1);
    bool Aligned =
        C.AlignedBases && Plan.LowerConst &&
        ((2 * Plan.LowerVal + AP.GroupBase) * scalarSize(K)) %
                AlignModBytes ==
            0;
    if (Aligned) {
      AlignHint H{0, AlignModBytes, false};
      B.astore(I.Array, Base, Lo, H);
      B.astore(I.Array, B.add(Base, VFK), Hi, H);
    } else {
      AlignHint H{-1, 0, false};
      B.ustore(I.Array, Base, Lo, H);
      B.ustore(I.Array, B.add(Base, VFK), Hi, H);
    }
  }

  /// Converts between kinds, possibly across widths (unpack/pack chains).
  std::vector<ValueId> emitConvert(LoopPlan &Plan, VecCtx &C,
                                   std::vector<ValueId> Parts,
                                   ScalarKind From, ScalarKind To) {
    (void)Plan;
    (void)C;
    // Widen step by step: each level doubles the part count.
    while (scalarSize(From) < scalarSize(To)) {
      ScalarKind Mid = widenKind(From);
      std::vector<ValueId> Next;
      for (ValueId P : Parts) {
        Next.push_back(B.unpackLo(P));
        Next.push_back(B.unpackHi(P));
      }
      Parts = std::move(Next);
      From = Mid;
    }
    // Narrow step by step: each level halves the part count (pack pairs).
    while (scalarSize(From) > scalarSize(To)) {
      ScalarKind Mid = narrowKind(From);
      std::vector<ValueId> Next;
      assert(Parts.size() % 2 == 0 && "odd part count while narrowing");
      for (size_t PIdx = 0; PIdx < Parts.size(); PIdx += 2)
        Next.push_back(B.pack(Parts[PIdx], Parts[PIdx + 1]));
      Parts = std::move(Next);
      From = Mid;
    }
    // Same-width kind change (sign or int<->fp).
    if (From != To)
      for (ValueId &P : Parts)
        P = B.convert(To, P);
    return Parts;
  }

  /// widen_mult_lo/hi for a multiply whose converts were fused.
  bool emitMaybeWidenMult(LoopPlan &Plan, VecCtx &C, uint32_t InstrIdx,
                          const Instr &I) {
    (void)InstrIdx;
    auto WM = matchWideningMul(Src, I.Result);
    if (!WM)
      return false;
    // Only if the converts were fused at plan time (single-use check).
    uint32_t CvtA = Src.Values[I.Ops[0]].A;
    uint32_t CvtB = Src.Values[I.Ops[1]].A;
    if (!Plan.Fused.count(CvtA) || !Plan.Fused.count(CvtB))
      return false;
    const auto &PA = partsOf(Plan, C, WM->NarrowA);
    const auto &PB = partsOf(Plan, C, WM->NarrowB);
    std::vector<ValueId> Res;
    for (size_t PIdx = 0; PIdx < PA.size(); ++PIdx) {
      Res.push_back(B.widenMultLo(PA[PIdx], PB[PIdx]));
      Res.push_back(B.widenMultHi(PA[PIdx], PB[PIdx]));
    }
    // The multiply's result kind may differ from widen(narrow) only by a
    // same-width conversion, which matchWideningMul precludes.
    C.Parts[I.Result] = std::move(Res);
    return true;
  }

  /// dot_product for a fused plus-reduction update.
  bool emitMaybeDotUpdate(LoopPlan &Plan, VecCtx &C, uint32_t LoopIdx,
                          uint32_t InstrIdx, const Instr &I) {
    (void)InstrIdx;
    const LoopStmt &L = Src.Loops[LoopIdx];
    for (const RedPlan &RP : Plan.Reds) {
      if (!RP.UseDot)
        continue;
      const auto &CV = L.Carried[RP.Info.CarriedIdx];
      if (!I.hasResult() || I.Result != CV.Next)
        continue;
      const auto &PA = partsOf(Plan, C, RP.Dot.NarrowA);
      const auto &PB = partsOf(Plan, C, RP.Dot.NarrowB);
      const auto &Acc = partsOf(Plan, C, CV.Phi);
      assert(PA.size() == Acc.size() && "dot accumulator shape mismatch");
      std::vector<ValueId> Next;
      for (size_t PIdx = 0; PIdx < PA.size(); ++PIdx)
        Next.push_back(B.dotProduct(PA[PIdx], PB[PIdx], Acc[PIdx]));
      C.Parts[I.Result] = std::move(Next);
      return true;
    }
    return false;
  }

  /// Plain per-part elementwise emission.
  void emitElementwise(LoopPlan &Plan, VecCtx &C, const Instr &I) {
    std::vector<const std::vector<ValueId> *> OpParts;
    for (ValueId Op : I.Ops)
      OpParts.push_back(&partsOf(Plan, C, Op));
    size_t NParts = 0;
    for (const auto *P : OpParts)
      NParts = std::max(NParts, P->size());
    std::vector<ValueId> Res;
    for (size_t PIdx = 0; PIdx < NParts; ++PIdx) {
      Instr NI;
      NI.Op = I.Op;
      NI.Ty = Type::vector(I.Ty.Elem);
      NI.TyParam = I.Ty.Elem;
      for (const auto *P : OpParts) {
        assert(P->size() == NParts && "part-count mismatch in vector op");
        NI.Ops.push_back((*P)[PIdx]);
      }
      Res.push_back(B.emit(std::move(NI)));
    }
    assert(I.hasResult());
    C.Parts[I.Result] = std::move(Res);
  }
  //===--- Outer-loop vectorization (paper [18], Sec. III-B(d)) ----------===//
  //
  // A 2-deep nest  for j { pre; for i { ... }; post }  is vectorized with
  // lanes over the *outer* counter j: every access must be contiguous
  // (coefficient 1) or uniform (coefficient 0) in j; the inner loop runs
  // sequentially with lane-wise vector state, so inner reductions need no
  // horizontal finalization — the benefit the paper's guard weighs against
  // inner-loop vectorization on short-SIMD targets.

  /// Plans outer-loop vectorization of \p LoopIdx. On success the plan's
  /// Access map is keyed like the inner plan's (Stride holds the j
  /// coefficient, 0 or 1) and Reds/Fused stay empty.
  LoopPlan planOuterLoop(uint32_t LoopIdx, uint32_t &InnerIdx) {
    const LoopStmt &O = Src.Loops[LoopIdx];
    LoopPlan P;
    auto Fail = [&](const std::string &Why) {
      P.OK = false;
      P.Reason = Why;
      return P;
    };

    if (!AA.of(O.Step).isConstant() || AA.of(O.Step).Const != 1)
      return Fail("outer loop step is not 1");
    if (!O.Carried.empty())
      return Fail("outer loop has carried variables");
    const AffineExpr &LowerE = AA.of(O.Lower);
    P.LowerConst = LowerE.isConstant();
    P.LowerVal = LowerE.Const;

    // Exactly one inner loop, innermost, step 1, lane-invariant bounds.
    InnerIdx = ~0u;
    std::vector<uint32_t> BodyInstrs;
    for (const NodeRef &N : O.Body.Nodes) {
      if (N.Kind == NodeKind::If)
        return Fail("outer loop body has control flow");
      if (N.Kind == NodeKind::Loop) {
        if (InnerIdx != ~0u)
          return Fail("more than one inner loop");
        InnerIdx = N.Index;
        continue;
      }
      BodyInstrs.push_back(N.Index);
    }
    if (InnerIdx == ~0u)
      return Fail("no inner loop");
    const LoopStmt &I = Src.Loops[InnerIdx];
    if (!Nest.isInnermost(InnerIdx))
      return Fail("inner loop is not innermost");
    if (!AA.of(I.Step).isConstant() || AA.of(I.Step).Const != 1)
      return Fail("inner loop step is not 1");
    for (ValueId Bound : {I.Lower, I.Upper, I.Step})
      if (dependsOn(Src, Bound, O.IndVar))
        return Fail("inner trip count varies across lanes");
    for (const NodeRef &N : I.Body.Nodes)
      if (N.Kind != NodeKind::Instr)
        return Fail("inner loop body has control flow");

    std::vector<uint32_t> AllInstrs = BodyInstrs;
    for (const NodeRef &N : I.Body.Nodes)
      AllInstrs.push_back(N.Index);

    // Lane classification: loads contiguous in j seed the vector set;
    // inner carried variables join when their updates do (fixpoint).
    for (uint32_t Idx : AllInstrs) {
      const Instr &In = Src.Instrs[Idx];
      if (In.Op != Opcode::Load)
        continue;
      AccessShape S = accessShape(Src, AA, Nest, LoopIdx, In.Ops[0]);
      if (S.IvCoeff == 1)
        P.VecValues.insert(In.Result);
      else if (S.IvCoeff != 0)
        return Fail("access neither contiguous nor uniform in outer iv");
    }
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (uint32_t Idx : AllInstrs) {
        const Instr &In = Src.Instrs[Idx];
        if (!In.hasResult() || P.VecValues.count(In.Result) ||
            In.Op == Opcode::Load)
          continue;
        bool Vec = false;
        unsigned FirstDataOp = In.Op == Opcode::Store ? 1 : 0;
        for (unsigned OpIdx = FirstDataOp; OpIdx < In.Ops.size(); ++OpIdx)
          Vec |= P.VecValues.count(In.Ops[OpIdx]) != 0;
        if (Vec) {
          P.VecValues.insert(In.Result);
          Changed = true;
        }
      }
      for (const auto &C : I.Carried) {
        bool PhiVec = P.VecValues.count(C.Phi) != 0;
        if (!PhiVec &&
            (P.VecValues.count(C.Next) || P.VecValues.count(C.Init))) {
          P.VecValues.insert(C.Phi);
          PhiVec = true;
          Changed = true;
        }
        // The loop-exit value follows the phi (reduction results that
        // post-loop stores consume).
        if (PhiVec && !P.VecValues.count(C.Result)) {
          P.VecValues.insert(C.Result);
          Changed = true;
        }
      }
    }

    // Validate vector values and operations (same rules as inner plan).
    unsigned MinSize = 16;
    auto CheckVec = [&](const Instr &In) -> std::string {
      ScalarKind RK = In.Ty.Elem;
      if (In.hasResult() && RK != ScalarKind::I1 &&
          !isVectorizableDataKind(RK))
        return std::string("vector value of unsupported kind ") +
               scalarKindName(RK);
      if (In.Op == Opcode::Rem ||
          (In.Op == Opcode::Div && !isFloatKind(In.Ty.Elem)))
        return "vector integer division/remainder unsupported";
      unsigned FirstDataOp =
          (In.Op == Opcode::Load || In.Op == Opcode::Store) ? 1 : 0;
      for (unsigned OpIdx = FirstDataOp; OpIdx < In.Ops.size(); ++OpIdx) {
        Type OT = Src.typeOf(In.Ops[OpIdx]);
        if (P.VecValues.count(In.Ops[OpIdx]) &&
            OT.Elem != ScalarKind::I1 && !isVectorizableDataKind(OT.Elem))
          return "index-kind value used as vector data";
      }
      return "";
    };
    for (uint32_t Idx : AllInstrs) {
      const Instr &In = Src.Instrs[Idx];
      bool IsVec = (In.hasResult() && P.VecValues.count(In.Result)) ||
                   (In.Op == Opcode::Store &&
                    P.VecValues.count(In.Ops[1]));
      if (!IsVec)
        continue;
      std::string Why = CheckVec(In);
      if (!Why.empty())
        return Fail(Why);
      if (In.hasResult() && In.Ty.Elem != ScalarKind::I1)
        MinSize = std::min(MinSize, scalarSize(In.Ty.Elem));
    }
    for (const auto &C : I.Carried) {
      if (!P.VecValues.count(C.Phi))
        return Fail("inner carried variable stays scalar");
      if (!isVectorizableDataKind(Src.typeOf(C.Phi).Elem))
        return Fail("inner carried variable of unsupported kind");
    }
    if (MinSize == 16)
      return Fail("no vector data in nest");
    for (ScalarKind K : {ScalarKind::I8, ScalarKind::U8, ScalarKind::I16,
                         ScalarKind::U16, ScalarKind::I32, ScalarKind::U32,
                         ScalarKind::F32, ScalarKind::F64})
      if (scalarSize(K) == MinSize)
        P.MinKind = K;

    // Accesses: plans keyed by instruction; written arrays must be
    // accessed by one common index expression (distinct per lane).
    std::map<uint32_t, AffineExpr> WrittenIndex;
    for (uint32_t Idx : AllInstrs) {
      const Instr &In = Src.Instrs[Idx];
      if (In.Op != Opcode::Load && In.Op != Opcode::Store)
        continue;
      AccessShape S = accessShape(Src, AA, Nest, LoopIdx, In.Ops[0]);
      AccessPlan AP;
      AP.Stride = S.IvCoeff;
      AP.OffConst = S.OffsetConst;
      AP.OffElems = S.OffsetElems;
      if (S.IvCoeff == 1) {
        AP.K = AccessPlan::Kind::Contig;
        AccessShape Adjusted = S;
        if (P.LowerConst) {
          Adjusted.OffsetElems += P.LowerVal;
        } else {
          Adjusted.OffsetConst = false;
          Adjusted.OffsetTerms[O.Lower] = 1;
        }
        AP.Hint = Opt.EnableAlignmentOpts
                      ? alignmentOf(Src, In.Array, Adjusted).Hint
                      : AlignHint{-1, 0, false};
      } else {
        AP.K = AccessPlan::Kind::Invariant;
        if (In.Op == Opcode::Store)
          return Fail("store uniform across lanes");
      }
      if (In.Op == Opcode::Store) {
        if (!P.VecValues.count(In.Ops[1]))
          return Fail("stored value is uniform");
        WrittenIndex.emplace(In.Array, AA.of(In.Ops[0]));
      }
      P.Access[Idx] = AP;
    }
    for (uint32_t Idx : AllInstrs) {
      const Instr &In = Src.Instrs[Idx];
      if (In.Op != Opcode::Load && In.Op != Opcode::Store)
        continue;
      auto It = WrittenIndex.find(In.Array);
      if (It == WrittenIndex.end())
        continue;
      AffineExpr D = AA.of(In.Ops[0]).sub(It->second);
      if (!D.isConstant() || D.Const != 0)
        return Fail("written array accessed at diverging addresses");
    }

    P.OK = true;
    return P;
  }

  /// Entry for the non-innermost case: plans the outer strategy and, when
  /// the inner loop is independently vectorizable, emits the paper's
  /// cost-model versioning (version_guard prefer_outer_loop).
  bool tryOuterLoop(uint32_t LoopIdx, LoopReport &Report) {
    uint32_t InnerIdx = ~0u;
    LoopPlan OPlan = planOuterLoop(LoopIdx, InnerIdx);
    if (!OPlan.OK) {
      Report.Reason = "outer: " + OPlan.Reason;
      return false;
    }
    LoopPlan IPlan = planInnerLoop(InnerIdx);
    if (IPlan.OK) {
      // Both strategies work: let the online compiler pick per target.
      ValueId Guard = B.versionGuard(GuardKind::PreferOuterLoop, {});
      uint32_t IfIdx = B.beginIf(Guard);
      emitOuterVectorized(LoopIdx, InnerIdx, OPlan);
      B.beginElse(IfIdx);
      cloneLoopVerbatim(LoopIdx, /*TryVectorize=*/true);
      B.endIf(IfIdx);
      Report.Strategy = "outer+inner versioned";
    } else {
      emitOuterVectorized(LoopIdx, InnerIdx, OPlan);
      Report.Strategy = "outer";
    }
    Report.Vectorized = true;
    recordPlan(Report, OPlan);
    // The outer strategy versions on the cost model, not on alignment.
    Report.Versioned = Report.Strategy == "outer+inner versioned";
    return true;
  }

  void emitOuterVectorized(uint32_t LoopIdx, uint32_t InnerIdx,
                           LoopPlan &Plan) {
    const LoopStmt &O = Src.Loops[LoopIdx];
    const LoopStmt &I = Src.Loops[InnerIdx];
    VecCtx C;
    C.Hinted = true; // Hints carry IfJitAligns; the JIT weighs them.
    C.AlignedBases = false;

    ValueId Lower = mapped(O.Lower);
    ValueId Upper = mapped(O.Upper);
    ValueId VFMin = vfOf(C, Plan.MinKind);
    ValueId Span = B.smax(B.sub(Upper, Lower), B.constIdx(0));
    ValueId MainEnd = B.add(Lower, B.mul(B.div(Span, VFMin), VFMin));

    auto H = B.beginLoop(Lower, MainEnd, VFMin, LoopRole::VecMain);
    C.NewIv = H.indVar();
    VMap[O.IndVar] = H.indVar();

    for (const NodeRef &N : O.Body.Nodes) {
      if (N.Kind == NodeKind::Instr) {
        emitOuterNode(Plan, C, N.Index);
        continue;
      }
      // The inner loop: sequential, with lane-wise carried state.
      assert(N.Index == InnerIdx && "unexpected inner loop");
      std::vector<std::vector<ValueId>> Inits;
      for (const auto &CV : I.Carried)
        Inits.push_back(partsOf(Plan, C, CV.Init));
      auto HI = B.beginLoop(mapped(I.Lower), mapped(I.Upper),
                            mapped(I.Step), LoopRole::Plain);
      VMap[I.IndVar] = HI.indVar();
      std::vector<std::vector<ValueId>> Phis(I.Carried.size());
      for (size_t CI = 0; CI < I.Carried.size(); ++CI) {
        for (ValueId Init : Inits[CI])
          Phis[CI].push_back(B.addCarried(HI, Init));
        C.Parts[I.Carried[CI].Phi] = Phis[CI];
      }
      for (const NodeRef &M : I.Body.Nodes)
        emitOuterNode(Plan, C, M.Index);
      for (size_t CI = 0; CI < I.Carried.size(); ++CI) {
        const auto &Next = C.Parts.at(I.Carried[CI].Next);
        std::vector<ValueId> Results;
        for (size_t PIdx = 0; PIdx < Phis[CI].size(); ++PIdx) {
          B.setCarriedNext(HI, Phis[CI][PIdx], Next[PIdx]);
          Results.push_back(B.carriedResult(HI, Phis[CI][PIdx]));
        }
        C.Parts[I.Carried[CI].Result] = std::move(Results);
      }
      B.endLoop(HI);
    }
    B.endLoop(H);

    emitScalarCopy(LoopIdx, MainEnd, Upper, {}, LoopRole::Epilogue);
  }

  /// One instruction of the outer-vectorized nest.
  void emitOuterNode(LoopPlan &Plan, VecCtx &C, uint32_t InstrIdx) {
    const Instr &In = Src.Instrs[InstrIdx];
    bool IsVec = (In.hasResult() && P_vecHas(Plan, In.Result)) ||
                 (In.Op == Opcode::Store &&
                  P_vecHas(Plan, In.Ops[1]));
    if (!IsVec) {
      cloneInstr(In);
      return;
    }
    switch (In.Op) {
    case Opcode::Load: {
      const AccessPlan &AP = Plan.Access.at(InstrIdx);
      ScalarKind K = Src.Arrays[In.Array].Elem;
      unsigned NParts = partCount(K, Plan.MinKind);
      if (AP.K == AccessPlan::Kind::Invariant) {
        ValueId S = B.load(In.Array, mapped(In.Ops[0]));
        C.Parts[In.Result] =
            std::vector<ValueId>(NParts, B.initUniform(S));
        return;
      }
      // Contiguous across lanes; the offset usually varies with the inner
      // counter, so emit an inline realignment triple per part (no
      // carried chunk). The JIT reverts it to (mis)aligned loads.
      ValueId Idx = mapped(In.Ops[0]);
      AlignHint Hint = AP.Hint;
      ValueId VFK = vfOf(C, K);
      ValueId RT = B.getRT(In.Array, Idx, Hint);
      ValueId Prev = B.alignLoad(In.Array, Idx);
      std::vector<ValueId> Parts;
      for (unsigned PIdx = 0; PIdx < NParts; ++PIdx) {
        ValueId PartIdx = partIndex(C, Idx, K, PIdx);
        ValueId NextChunk =
            B.alignLoad(In.Array, B.add(PartIdx, VFK));
        Parts.push_back(
            B.realignLoad(Prev, NextChunk, RT, In.Array, PartIdx, Hint));
        Prev = NextChunk;
      }
      C.Parts[In.Result] = std::move(Parts);
      return;
    }
    case Opcode::Store: {
      const AccessPlan &AP = Plan.Access.at(InstrIdx);
      ScalarKind K = Src.Arrays[In.Array].Elem;
      const auto &Vals = partsOf(Plan, C, In.Ops[1]);
      ValueId Idx = mapped(In.Ops[0]);
      for (unsigned PIdx = 0; PIdx < Vals.size(); ++PIdx)
        B.ustore(In.Array, partIndex(C, Idx, K, PIdx), Vals[PIdx],
                 AP.Hint);
      return;
    }
    case Opcode::Convert:
      C.Parts[In.Result] =
          emitConvert(Plan, C, partsOf(Plan, C, In.Ops[0]),
                      Src.typeOf(In.Ops[0]).Elem, In.Ty.Elem);
      return;
    default:
      emitElementwise(Plan, C, In);
      return;
    }
  }

  static bool P_vecHas(const LoopPlan &Plan, ValueId V) {
    return Plan.VecValues.count(V) != 0;
  }


};

} // namespace

Result vectorizer::vectorize(const Function &Src, const Options &Opt) {
  obs::Span S("vectorizer", "vectorize");
  S.arg("function", Src.Name);
  Result R = [&] {
    if (!Opt.EnableSLP)
      return VectorizerImpl(Src, Opt).run();
    RerollResult RR = rerollUnrolledLoops(Src);
    return VectorizerImpl(RR.Output, Opt, RR.RerolledLoops).run();
  }();
  static obs::Counter Vectorized("vectorizer.loops_vectorized");
  static obs::Counter Declined("vectorizer.loops_declined");
  for (const LoopReport &LR : R.Loops) {
    (LR.Vectorized ? Vectorized : Declined).add(1);
    if (!obs::tracingActive())
      continue;
    obs::event(
        "vectorizer", "loop_decision",
        {{"function", obs::argStr(Src.Name)},
         {"loop", obs::argStr(static_cast<uint64_t>(LR.SrcLoop))},
         {"vectorized", obs::argStr(LR.Vectorized)},
         {"strategy", obs::argStr(LR.Strategy)},
         {"reason", obs::argStr(LR.Reason)},
         {"versioned", obs::argStr(LR.Versioned)},
         {"peeled", obs::argStr(LR.Peeled)},
         {"max_safe_vf", obs::argStr(LR.MaxSafeVF)},
         {"reductions", obs::argStr(static_cast<uint64_t>(LR.Reductions))},
         {"max_reductions",
          obs::argStr(static_cast<uint64_t>(LR.MaxReductions))},
         {"sat_ops", obs::argStr(static_cast<uint64_t>(LR.SatOps))},
         {"min_elem_bytes",
          obs::argStr(static_cast<uint64_t>(LR.MinElemBytes))}});
  }
  S.arg("loops", static_cast<uint64_t>(R.Loops.size()));
  S.arg("any_vectorized", R.anyVectorized());
  return R;
}
