//===- vectorizer/Reroll.cpp - SLP via loop re-rolling ----------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Pattern: an innermost loop with no carried variables whose stores all
// target one array with affine indexes G*i + c, the residues c forming the
// complete group 0..G-1 in order, and whose per-residue expression trees
// are isomorphic (same operations; loads shifted by the same residue;
// shared loop-invariant leaves). The rewrite maps iteration (i, c) to a
// single counter j = G*i + c:
//
//   for i in [lo, hi):            for j in [G*lo, G*hi):
//     o[G*i+0] = f(a[G*i+0], k)     o[j] = f(a[j], k)
//     o[G*i+1] = f(a[G*i+1], k) =>
//     ...
//
//===----------------------------------------------------------------------===//

#include "vectorizer/Reroll.h"

#include "analysis/Affine.h"
#include "analysis/Alignment.h"
#include "analysis/LoopAnalysis.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "support/Support.h"

#include <map>

using namespace vapor;
using namespace vapor::vectorizer;
using namespace vapor::analysis;
using namespace vapor::ir;

namespace {

class RerollPass {
public:
  explicit RerollPass(const Function &Source)
      : Src(Source), Out(Source.Name), B(Out), AA(Source), Nest(Source) {}

  RerollResult run() {
    Out.IsSplitLayer = Src.IsSplitLayer;
    for (const ArrayInfo &A : Src.Arrays)
      Out.addArray(A.Name, A.Elem, A.NumElems, A.BaseAlign);
    for (ValueId P : Src.Params)
      VMap[P] = Out.addParam(Src.Values[P].Name, Src.typeOf(P));
    cloneRegion(Src.Body);
    verifyOrDie(Out);
    RerollResult R{std::move(Out), std::move(Rerolled)};
    return R;
  }

private:
  const Function &Src;
  Function Out;
  IrBuilder B;
  AffineAnalysis AA;
  LoopNestInfo Nest;
  std::map<ValueId, ValueId> VMap;
  std::set<uint32_t> Rerolled;

  ValueId mapped(ValueId V) const {
    auto It = VMap.find(V);
    assert(It != VMap.end() && "value not yet cloned");
    return It->second;
  }

  void cloneRegion(const Region &R) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr: {
        const Instr &I = Src.Instrs[N.Index];
        Instr C = I;
        for (ValueId &Op : C.Ops)
          Op = mapped(Op);
        C.Result = NoValue;
        ValueId NewRes = B.emit(std::move(C));
        if (I.hasResult())
          VMap[I.Result] = NewRes;
        break;
      }
      case NodeKind::Loop:
        cloneLoop(N.Index);
        break;
      case NodeKind::If: {
        const IfStmt &S = Src.Ifs[N.Index];
        uint32_t NewIf = B.beginIf(mapped(S.Cond));
        cloneRegion(S.Then);
        B.beginElse(NewIf);
        cloneRegion(S.Else);
        B.endIf(NewIf);
        break;
      }
      }
    }
  }

  void cloneLoop(uint32_t LoopIdx) {
    if (tryReroll(LoopIdx))
      return;
    const LoopStmt &L = Src.Loops[LoopIdx];
    auto H = B.beginLoop(mapped(L.Lower), mapped(L.Upper), mapped(L.Step),
                         L.Role);
    VMap[L.IndVar] = H.indVar();
    for (const auto &C : L.Carried)
      VMap[C.Phi] = B.addCarried(H, mapped(C.Init));
    cloneRegion(L.Body);
    for (const auto &C : L.Carried) {
      B.setCarriedNext(H, mapped(C.Phi), mapped(C.Next));
      VMap[C.Result] = B.carriedResult(H, mapped(C.Phi));
    }
    B.endLoop(H);
  }

  //===--- Pattern matching ----------------------------------------------===//

  /// Compares the defining trees of \p A (from group \p Res) and \p Base
  /// (from group 0): identical operations, loads shifted by \p Res.
  bool isomorphic(ValueId A, ValueId Base, uint32_t LoopIdx, int64_t Res) {
    if (A == Base) {
      // Residue 0 compares the base tree against itself; otherwise a
      // shared leaf must be loop-invariant to mean the same thing.
      return Res == 0 || !Nest.definesValue(LoopIdx, A);
    }
    const ValueInfo &VA = Src.Values[A];
    const ValueInfo &VB = Src.Values[Base];
    if (VA.Def != ValueDef::Instr || VB.Def != ValueDef::Instr)
      return false;
    const Instr &IA = Src.Instrs[VA.A];
    const Instr &IB = Src.Instrs[VB.A];
    if (IA.Op != IB.Op || IA.Ty != IB.Ty || IA.TyParam != IB.TyParam ||
        IA.IntImm != IB.IntImm || IA.IntImm2 != IB.IntImm2 ||
        IA.FPImm != IB.FPImm || IA.Array != IB.Array)
      return false;
    if (IA.Op == Opcode::Load) {
      AffineExpr D = AA.of(IA.Ops[0]).sub(AA.of(IB.Ops[0]));
      return D.isConstant() && D.Const == Res;
    }
    if (IA.Op == Opcode::ConstInt || IA.Op == Opcode::ConstFP)
      return true; // Field equality checked above.
    if (IA.Ops.size() != IB.Ops.size())
      return false;
    for (size_t OpIdx = 0; OpIdx < IA.Ops.size(); ++OpIdx)
      if (!isomorphic(IA.Ops[OpIdx], IB.Ops[OpIdx], LoopIdx, Res))
        return false;
    return true;
  }

  /// Rewrites the value tree of group 0 in terms of the re-rolled counter
  /// \p NewIv: loads at G*i + c become loads at NewIv + (c - base shift).
  ValueId rebuildTree(ValueId V, uint32_t LoopIdx, ValueId NewIv,
                      std::map<ValueId, ValueId> &Memo) {
    auto It = Memo.find(V);
    if (It != Memo.end())
      return It->second;
    if (!Nest.definesValue(LoopIdx, V))
      return Memo[V] = mapped(V); // Invariant leaf.
    const ValueInfo &VI = Src.Values[V];
    assert(VI.Def == ValueDef::Instr && "matcher admitted a non-instr");
    const Instr &I = Src.Instrs[VI.A];
    Instr C = I;
    C.Result = NoValue;
    if (I.Op == Opcode::Load) {
      const AffineExpr &E = AA.of(I.Ops[0]);
      ValueId Idx = E.Const == 0
                        ? NewIv
                        : B.add(NewIv, B.constIdx(E.Const));
      C.Ops = {Idx};
    } else {
      for (ValueId &Op : C.Ops)
        Op = rebuildTree(Op, LoopIdx, NewIv, Memo);
    }
    ValueId NewRes = B.emit(std::move(C));
    return Memo[V] = NewRes;
  }

  bool tryReroll(uint32_t LoopIdx) {
    const LoopStmt &L = Src.Loops[LoopIdx];
    if (!Nest.isInnermost(LoopIdx) || !L.Carried.empty())
      return false;
    if (!AA.of(L.Step).isConstant() || AA.of(L.Step).Const != 1)
      return false;

    // Collect stores in order; derive the group factor from the first.
    std::vector<uint32_t> StoreIdx;
    for (const NodeRef &N : L.Body.Nodes) {
      if (N.Kind != NodeKind::Instr)
        return false;
      if (Src.Instrs[N.Index].Op == Opcode::Store)
        StoreIdx.push_back(N.Index);
    }
    if (StoreIdx.size() < 2)
      return false;
    const Instr &S0 = Src.Instrs[StoreIdx[0]];
    AccessShape Shape0 =
        accessShape(Src, AA, Nest, LoopIdx, S0.Ops[0]);
    int64_t G = Shape0.IvCoeff;
    if (G < 2 || G > 8 || static_cast<int64_t>(StoreIdx.size()) != G)
      return false;
    if (!Shape0.OffsetConst)
      return false;

    // Every store: same array, group residues 0..G-1 in order, all loads
    // in the tree affine with stride G, trees isomorphic to group 0.
    for (int64_t C = 0; C < G; ++C) {
      const Instr &S = Src.Instrs[StoreIdx[C]];
      if (S.Array != S0.Array)
        return false;
      AccessShape Sh = accessShape(Src, AA, Nest, LoopIdx, S.Ops[0]);
      if (Sh.IvCoeff != G || !Sh.OffsetConst ||
          Sh.OffsetElems != Shape0.OffsetElems + C)
        return false;
      if (!isomorphic(S.Ops[1], S0.Ops[1], LoopIdx, C))
        return false;
      // All loads feeding group 0 must themselves stride by G with
      // constant offsets (checked while rebuilding below via affine).
    }
    // Verify group-0 loads are G-strided with constant offsets and that
    // the whole body participates in the groups (no stray side values —
    // stores are the only side effects, so unused index scaffolding just
    // dies).
    if (!treeLoadsOk(S0.Ops[1], LoopIdx, G))
      return false;

    // --- Rewrite ---
    ValueId GV = B.constIdx(G);
    ValueId NewLower = B.mul(GV, mapped(L.Lower));
    ValueId NewUpper = B.mul(GV, mapped(L.Upper));
    auto H = B.beginLoop(NewLower, NewUpper, B.constIdx(1), L.Role);
    // Group-0 store offset c0: new index = j + c0 (j absorbs G*i + res).
    std::map<ValueId, ValueId> Memo;
    ValueId Val = rebuildTree(S0.Ops[1], LoopIdx, H.indVar(), Memo);
    ValueId StIdx = Shape0.OffsetElems == 0
                        ? H.indVar()
                        : B.add(H.indVar(), B.constIdx(Shape0.OffsetElems));
    Instr St;
    St.Op = Opcode::Store;
    St.Array = S0.Array;
    St.Ops = {StIdx, Val};
    B.emit(std::move(St));
    B.endLoop(H);
    Rerolled.insert(H.LoopIdx);
    return true;
  }

  bool treeLoadsOk(ValueId V, uint32_t LoopIdx, int64_t G) {
    if (!Nest.definesValue(LoopIdx, V))
      return true;
    const ValueInfo &VI = Src.Values[V];
    if (VI.Def != ValueDef::Instr)
      return false;
    const Instr &I = Src.Instrs[VI.A];
    if (I.Op == Opcode::Load) {
      AccessShape Sh = accessShape(Src, AA, Nest, LoopIdx, I.Ops[0]);
      return Sh.IvCoeff == G && Sh.OffsetConst;
    }
    for (ValueId Op : I.Ops)
      if (!treeLoadsOk(Op, LoopIdx, G))
        return false;
    return true;
  }
};

} // namespace

RerollResult vectorizer::rerollUnrolledLoops(const Function &F) {
  return RerollPass(F).run();
}
