//===- vectorizer/Vectorizer.h - Offline auto-vectorizer -------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first, offline compilation stage (paper Sec. III-B): an
/// auto-vectorizer that consumes scalar source IR and emits split-layer
/// bytecode whose vector size is fully parametric. All expensive analyses
/// run here — dependence testing, reduction and idiom recognition,
/// misalignment computation relative to a 32-byte modulo, loop peeling and
/// alignment versioning — and their conclusions are encoded as Table 1
/// idioms and hints so the online stage stays linear in code size.
///
/// Capabilities (matching the paper's kernel suite):
///  - innermost-loop vectorization with add/min/max reductions,
///  - dot_product and widen_mult idiom formation from widening patterns,
///  - multi-type loops (u8 data mixed with u16/i32) via unpack/pack chains
///    with a symbolic vectorization factor of the smallest type,
///  - strided loads (extract) and stride-2/4 stores (interleave),
///  - optimized realignment (align_load / get_rt / realign_load with a
///    software-pipelined carried chunk, Fig. 3a),
///  - alignment versioning with a fall-back version carrying nulled hints,
///  - loop peeling via loop_bound/get_misalign and a scalar epilogue,
///  - outer-loop vectorization and SLP (straight-line) vectorization.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VECTORIZER_VECTORIZER_H
#define VAPOR_VECTORIZER_VECTORIZER_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace vapor {
namespace vectorizer {

struct Options {
  /// Master switch for the alignment machinery: misalignment hints,
  /// versioning with an aligned fast path, loop peeling. Disabling it
  /// reproduces the paper's ablation (Sec. V-A(b)): every access is
  /// emitted as if nothing were known (mod = 0), which forces misaligned
  /// accesses or scalarization downstream.
  bool EnableAlignmentOpts = true;
  /// Straight-line (SLP) vectorization of unrolled isomorphic statements.
  bool EnableSLP = true;
  /// Whether SLP-vectorized (re-rolled) loops get alignment versioning.
  /// The split flow versions them like any loop; the era's native SLP did
  /// not, emitting misaligned accesses — the source of the paper's
  /// mix_streams result (Sec. V-B). The native pipeline turns this off.
  bool SLPAlignmentVersioning = true;
  /// Outer-loop vectorization of 2-deep nests whose inner loop reduces.
  bool EnableOuterLoop = true;
};

struct LoopReport {
  uint32_t SrcLoop = 0;
  bool Vectorized = false;
  std::string Strategy; ///< "inner", "outer", "slp" or empty.
  std::string Reason;   ///< Why vectorization was declined.

  /// Decision record (observability layer / vapor-explain): why the
  /// emitted shape looks the way it does. Valid when Vectorized.
  bool Versioned = false;    ///< Alignment-versioned: guarded aligned fast
                             ///< path plus a fall-back with nulled hints.
  bool Peeled = false;       ///< Fall-back path peels to align the store.
  int64_t MaxSafeVF = 0;     ///< Dependence-distance VF cap (0 = none).
  uint32_t Reductions = 0;   ///< Carried reductions vectorized.
  uint32_t MaxReductions = 0; ///< Of those, horizontal-max collapses
                              ///< (the striped-DP epilogue).
  uint32_t SatOps = 0;       ///< Saturating narrow-int ops vectorized.
  /// Smallest vector element size in bytes. The split VF is symbolic;
  /// each target resolves it to VSBytes / MinElemBytes (jit::loopVF).
  unsigned MinElemBytes = 0;
};

struct Result {
  ir::Function Output;
  std::vector<LoopReport> Loops;

  bool anyVectorized() const {
    for (const LoopReport &R : Loops)
      if (R.Vectorized)
        return true;
    return false;
  }
};

/// Vectorizes \p Src (scalar source IR, must verify) into a split-layer
/// function. Loops that cannot be vectorized are copied unchanged, so the
/// output always computes the same function as the input.
Result vectorize(const ir::Function &Src, const Options &Opt = {});

} // namespace vectorizer
} // namespace vapor

#endif // VAPOR_VECTORIZER_VECTORIZER_H
