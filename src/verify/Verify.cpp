//===- verify/Verify.cpp - Static verifier for split bytecode -------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// The verifier runs after the offline vectorizer and before any online
// compiler. It abstract-interprets the module once per target over a
// symbolic residue domain (affine forms over symbols with congruence
// facts) and discharges one proof obligation per aligned access the JIT
// could materialize: the address is provably 0 mod VS in every scenario.
//
// Scenarios: min/max over non-constant scalars fork the abstract state
// (the peel-count clamp is a min/max chain); the fork's sign choice is
// memoized per state so later splits over the same quantity agree —
// otherwise infeasible paths (e.g. "peel loop empty" combined with "main
// loop not empty") would produce false alarms.
//
// Region lowering modes mirror the JIT's planner through the shared
// strategy model in jit/Jit.h, with two sound over-approximations: hints
// are treated optimistically (hintCouldProveAligned), so the verifier's
// vector-mode regions are a superset of any real run's, and alignment
// version guards are never folded — both arms are walked, the guarded arm
// under the guard's base-alignment assumption. That covers both compiler
// tiers and every runtime base assignment at once.
//
//===----------------------------------------------------------------------===//

#include "verify/Verify.h"

#include "analysis/Affine.h"
#include "analysis/Alignment.h"
#include "ir/Verifier.h"
#include "jit/Jit.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <sstream>

using namespace vapor;
using namespace vapor::ir;
using vapor::target::TargetDesc;

namespace vapor {
namespace verify {

const char *checkName(Check C) {
  switch (C) {
  case Check::Structure:
    return "structure";
  case Check::Alignment:
    return "alignment";
  case Check::HintConsistency:
    return "hint-consistency";
  case Check::Guards:
    return "guards";
  case Check::IdiomChains:
    return "idiom-chains";
  }
  return "?";
}

const char *severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << severityName(Sev) << " [" << checkName(Analysis) << "]";
  if (!Target.empty())
    OS << " (" << Target << ")";
  if (InstrIdx != NoInstr)
    OS << " instr #" << InstrIdx;
  OS << ": " << Why;
  return OS.str();
}

bool Report::ok() const { return count(Severity::Error) == 0; }

size_t Report::count(Severity S) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == S;
  return N;
}

std::string Report::str(bool IncludeNotes) const {
  std::ostringstream OS;
  OS << "verify: " << ObligationsProved << "/"
     << (ObligationsProved + ObligationsFailed)
     << " alignment obligations proved across " << TargetsChecked
     << " targets; " << count(Severity::Error) << " errors, "
     << count(Severity::Warning) << " warnings\n";
  for (const Diagnostic &D : Diags) {
    if (D.Sev == Severity::Note && !IncludeNotes)
      continue;
    OS << "  " << D.str() << "\n";
  }
  return OS.str();
}

} // namespace verify
} // namespace vapor

namespace {

using verify::Check;
using verify::Diagnostic;
using verify::NoInstr;
using verify::Report;
using verify::Severity;
using verify::VerifyOptions;

int64_t floorMod(int64_t X, int64_t M) {
  assert(M > 0);
  int64_t R = X % M;
  return R < 0 ? R + M : R;
}

bool isPow2(int64_t X) { return X > 0 && (X & (X - 1)) == 0; }

//===--- The abstract domain ----------------------------------------------===//

/// An affine form c0 + sum(ci * Sym_i) over verifier symbols.
struct Aff {
  int64_t C = 0;
  std::map<uint32_t, int64_t> T;

  bool isConst() const { return T.empty(); }
};

Aff affConst(int64_t C) {
  Aff A;
  A.C = C;
  return A;
}

Aff affSym(uint32_t S) {
  Aff A;
  A.T[S] = 1;
  return A;
}

Aff affAdd(const Aff &A, const Aff &B) {
  Aff R = A;
  R.C += B.C;
  for (const auto &[S, Co] : B.T) {
    auto It = R.T.find(S);
    int64_t N = (It == R.T.end() ? 0 : It->second) + Co;
    if (N)
      R.T[S] = N;
    else if (It != R.T.end())
      R.T.erase(It);
  }
  return R;
}

Aff affMulC(const Aff &A, int64_t K) {
  Aff R;
  if (K == 0)
    return R;
  R.C = A.C * K;
  for (const auto &[S, Co] : A.T)
    R.T[S] = Co * K;
  return R;
}

Aff affNeg(const Aff &A) { return affMulC(A, -1); }
Aff affSub(const Aff &A, const Aff &B) { return affAdd(A, affNeg(B)); }
bool affEq(const Aff &A, const Aff &B) { return A.C == B.C && A.T == B.T; }

/// What is known about one symbol.
struct SymInfo {
  enum class Kind : uint8_t {
    Opaque,    ///< Nothing.
    ArrayBase, ///< Base element index of Array; ≡ 0 mod its alignment.
    Congruent, ///< ≡ Rhs (mod Mod).
  };
  Kind K = Kind::Opaque;
  uint32_t Array = NoArray;
  int64_t Mod = 0;
  Aff Rhs;
};

/// One scenario of the abstract walk.
struct WalkState {
  std::map<ValueId, Aff> Env;
  /// Base alignment (bytes) assumed beyond the declared minimum, from the
  /// arm of an alignment version guard.
  std::map<uint32_t, uint32_t> AssumedAlign;
  /// Branch choices of min/max scenario splits: (A - B, sign), sign = +1
  /// meaning "A - B >= 0 on this path". Later splits over an equal (or
  /// negated) quantity reuse the choice, keeping scenarios feasible.
  std::vector<std::pair<Aff, int>> Signs;
  std::string Path; ///< Human-readable scenario path for diagnostics.
};

//===--- The verifier -----------------------------------------------------===//

class ModuleVerifier {
public:
  ModuleVerifier(const Function &Fn, const VerifyOptions &Options)
      : F(Fn), Opt(Options) {}

  Report run() {
    std::vector<std::string> StructErrs = ir::verify(F);
    for (const std::string &E : StructErrs)
      diag(Check::Structure, Severity::Error, "", NoInstr, E);
    if (!StructErrs.empty())
      return Rep; // Deeper analyses assume a well-formed module.

    buildUsers();
    hintSanity();
    checkLoopBounds();
    checkIdiomChains();
    checkMaxSafeVF();

    std::vector<TargetDesc> Targets =
        Opt.Targets.empty() ? target::allTargets() : Opt.Targets;
    checkGuardReachability(Targets);
    for (const TargetDesc &Td : Targets)
      targetPass(Td);
    Rep.TargetsChecked = (unsigned)Targets.size();
    return Rep;
  }

private:
  const Function &F;
  const VerifyOptions &Opt;
  Report Rep;

  std::map<ValueId, std::vector<uint32_t>> Users;
  std::set<std::tuple<int, int, std::string, uint32_t, std::string>> SeenDiag;

  // Per-target pass state.
  const TargetDesc *T = nullptr;
  std::map<ValueId, bool> DetFold; ///< Guards folding identically everywhere.
  std::map<const Region *, bool> RegionScalar;
  std::vector<SymInfo> Syms;
  std::vector<uint32_t> BaseSym; ///< Array -> its ArrayBase symbol.
  std::set<uint32_t> ObSeen, ObFail, ConsFail;
  bool BudgetNoted = false;
  /// Certificate facts under construction, keyed by instruction index.
  /// Align claims are recorded on every successful obligation discharge
  /// and withdrawn wholesale if any scenario fails; bounds claims come
  /// from a separate structural pass.
  std::map<uint32_t, analysis::AccessFact> CertFacts;

  //===--- Infrastructure -------------------------------------------------===//

  void diag(Check A, Severity S, const std::string &Tgt, uint32_t Idx,
            const std::string &Why) {
    auto Key = std::make_tuple((int)A, (int)S, Tgt, Idx, Why.substr(0, 48));
    if (!SeenDiag.insert(Key).second)
      return;
    Diagnostic D;
    D.Analysis = A;
    D.Sev = S;
    D.Target = Tgt;
    D.InstrIdx = Idx;
    D.Why = Why;
    Rep.Diags.push_back(std::move(D));
  }

  void buildUsers() {
    for (uint32_t Idx = 0; Idx < F.Instrs.size(); ++Idx)
      for (ValueId V : F.Instrs[Idx].Ops)
        Users[V].push_back(Idx);
  }

  const Instr *definingInstr(ValueId V) const {
    if (V >= F.Values.size() || F.Values[V].Def != ValueDef::Instr)
      return nullptr;
    return &F.Instrs[F.Values[V].A];
  }

  const Instr *guardOf(ValueId V) const {
    const Instr *I = definingInstr(V);
    return I && I->Op == Opcode::VersionGuard ? I : nullptr;
  }

  static bool takesHint(Opcode Op) {
    switch (Op) {
    case Opcode::ALoad:
    case Opcode::ULoad:
    case Opcode::AStore:
    case Opcode::UStore:
    case Opcode::AlignLoad:
    case Opcode::RealignLoad:
    case Opcode::GetRT:
      return true;
    default:
      return false;
    }
  }

  /// Index operand of a memory idiom.
  static ValueId memIndex(const Instr &I) {
    return I.Op == Opcode::RealignLoad ? I.Ops[3] : I.Ops[0];
  }

  std::string instrLabel(uint32_t Idx) const {
    return std::string(opcodeMnemonic(F.Instrs[Idx].Op)) + " #" +
           std::to_string(Idx);
  }

  std::string arrayLabel(uint32_t A) const {
    return A < F.Arrays.size() ? "'" + F.Arrays[A].Name + "'" : "<bad array>";
  }

  //===--- Target-independent structural checks ---------------------------===//

  /// mis/mod claims must use the reference modulus and an element-granular,
  /// in-range misalignment (paper Sec. III-B(c)).
  void hintSanity() {
    for (uint32_t Idx = 0; Idx < F.Instrs.size(); ++Idx) {
      const Instr &I = F.Instrs[Idx];
      if (!takesHint(I.Op))
        continue;
      const AlignHint &H = I.Hint;
      if (H.Mod == 0)
        continue; // Null hint: always admissible.
      if (H.Mod != analysis::AlignModBytes) {
        diag(Check::HintConsistency, Severity::Error, "", Idx,
             "hint modulus " + std::to_string(H.Mod) +
                 " is not the reference modulus " +
                 std::to_string(analysis::AlignModBytes));
        continue;
      }
      if (H.Mis < 0 || H.Mis >= H.Mod) {
        diag(Check::HintConsistency, Severity::Error, "", Idx,
             "hint misalignment " + std::to_string(H.Mis) +
                 " outside [0, " + std::to_string(H.Mod) + ")");
        continue;
      }
      if (I.Array < F.Arrays.size()) {
        int64_t ES = scalarSize(F.Arrays[I.Array].Elem);
        if (ES > 0 && H.Mis % ES != 0)
          diag(Check::HintConsistency, Severity::Error, "", Idx,
               "hint misalignment " + std::to_string(H.Mis) +
                   " is not a multiple of the element size " +
                   std::to_string(ES));
      }
    }
  }

  /// loop_bound pairs a vector-version trip count with the scalar-version
  /// count; the vectorizer always pairs with the literal 0 because scalar
  /// versions never peel.
  void checkLoopBounds() {
    for (uint32_t Idx = 0; Idx < F.Instrs.size(); ++Idx) {
      const Instr &I = F.Instrs[Idx];
      if (I.Op != Opcode::LoopBound)
        continue;
      const Instr *D = definingInstr(I.Ops[1]);
      if (!D || D->Op != Opcode::ConstInt || D->IntImm != 0)
        diag(Check::HintConsistency, Severity::Warning, "", Idx,
             "loop_bound scalar-version count is not the constant 0 "
             "(scalar versions must not peel)");
    }
  }

  //===--- max_safe_vf re-derivation --------------------------------------===//

  struct VecAccess {
    uint32_t Array = NoArray;
    ValueId Idx = NoValue;
    bool IsStore = false;
    uint32_t Instr = 0;
  };

  void collectVecAccesses(const Region &R, std::vector<VecAccess> &Out) const {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr: {
        const Instr &I = F.Instrs[N.Index];
        switch (I.Op) {
        case Opcode::ALoad:
        case Opcode::ULoad:
        case Opcode::AlignLoad:
        case Opcode::RealignLoad:
          Out.push_back({I.Array, memIndex(I), false, N.Index});
          break;
        case Opcode::AStore:
        case Opcode::UStore:
          Out.push_back({I.Array, memIndex(I), true, N.Index});
          break;
        default:
          break;
        }
        break;
      }
      case NodeKind::Loop:
        collectVecAccesses(F.Loops[N.Index].Body, Out);
        break;
      case NodeKind::If:
        collectVecAccesses(F.Ifs[N.Index].Then, Out);
        collectVecAccesses(F.Ifs[N.Index].Else, Out);
        break;
      }
    }
  }

  /// Re-derives the dependence-distance claim of every vector main loop
  /// from the bytecode: same-array (store, access) pairs whose index
  /// difference is a nonzero constant bound the safe VF exactly the way
  /// the offline analysis bounded it (min |distance|). Pairs whose
  /// difference carries symbolic terms (e.g. multi-part offsets of
  /// get_VF) are VF-spaced by construction and don't constrain.
  void checkMaxSafeVF() {
    analysis::AffineAnalysis AA(F);
    for (uint32_t LI = 0; LI < F.Loops.size(); ++LI) {
      const LoopStmt &L = F.Loops[LI];
      if (L.Role != LoopRole::VecMain) {
        if (L.MaxSafeVF != 0)
          diag(Check::HintConsistency, Severity::Warning, "", NoInstr,
               "loop " + std::to_string(LI) +
                   ": dependence-distance hint on a non-vectorized loop");
        continue;
      }
      std::vector<VecAccess> Acc;
      collectVecAccesses(L.Body, Acc);
      int64_t MinDist = 0;
      bool Any = false;
      for (const VecAccess &S : Acc) {
        if (!S.IsStore)
          continue;
        for (const VecAccess &A : Acc) {
          if (A.Instr == S.Instr || A.Array != S.Array)
            continue;
          analysis::AffineExpr D = AA.of(S.Idx).sub(AA.of(A.Idx));
          if (!D.isConstant() || D.Const == 0)
            continue;
          int64_t Dist = D.Const < 0 ? -D.Const : D.Const;
          MinDist = Any ? std::min(MinDist, Dist) : Dist;
          Any = true;
        }
      }
      std::string Loop = "loop " + std::to_string(LI);
      if (Any) {
        if (L.MaxSafeVF == 0)
          diag(Check::HintConsistency, Severity::Error, "", NoInstr,
               Loop + ": claims an unconstrained VF but carries a "
                      "same-array dependence at distance " +
                   std::to_string(MinDist));
        else if (L.MaxSafeVF > MinDist)
          diag(Check::HintConsistency, Severity::Error, "", NoInstr,
               Loop + ": claims max_safe_vf " + std::to_string(L.MaxSafeVF) +
                   " but a same-array dependence has distance " +
                   std::to_string(MinDist));
        else if (L.MaxSafeVF < MinDist)
          diag(Check::HintConsistency, Severity::Warning, "", NoInstr,
               Loop + ": max_safe_vf " + std::to_string(L.MaxSafeVF) +
                   " is more conservative than the derived distance " +
                   std::to_string(MinDist));
      } else if (L.MaxSafeVF != 0) {
        diag(Check::HintConsistency, Severity::Warning, "", NoInstr,
             Loop + ": claims max_safe_vf " + std::to_string(L.MaxSafeVF) +
                 " but no constant-distance dependence pair is derivable");
      }
    }
  }

  //===--- Idiom-chain discipline -----------------------------------------===//

  void checkIdiomChains() {
    for (uint32_t Idx = 0; Idx < F.Instrs.size(); ++Idx) {
      const Instr &I = F.Instrs[Idx];
      switch (I.Op) {
      case Opcode::RealignLoad:
        checkRealignChain(Idx, I);
        break;
      case Opcode::InitReduc:
        checkReductionChain(Idx, I);
        break;
      case Opcode::WidenMultLo:
        checkWidenPair(Idx, I, Opcode::WidenMultHi);
        break;
      case Opcode::WidenMultHi:
        checkWidenPair(Idx, I, Opcode::WidenMultLo);
        break;
      case Opcode::VersionGuard:
        checkGuardUses(Idx, I);
        break;
      default:
        break;
      }
    }
  }

  void checkRealignChain(uint32_t Idx, const Instr &I) {
    const Instr *RT = definingInstr(I.Ops[2]);
    if (!RT || RT->Op != Opcode::GetRT || RT->Array != I.Array)
      diag(Check::IdiomChains, Severity::Error, "", Idx,
           "realign_load realignment token is not a get_rt of array " +
               arrayLabel(I.Array));
    for (unsigned K = 0; K < 2; ++K) {
      ValueId P = I.Ops[K];
      if (P < F.Values.size() &&
          F.Values[P].Def == ValueDef::LoopCarried)
        continue; // The carried "previous chunk" of a software pipeline.
      const Instr *D = definingInstr(P);
      if (D && D->Op == Opcode::AlignLoad && D->Array == I.Array)
        continue;
      diag(Check::IdiomChains, Severity::Error, "", Idx,
           std::string("realign_load ") + (K == 0 ? "prev" : "next") +
               "-chunk operand is neither an align_load of array " +
               arrayLabel(I.Array) + " nor a loop-carried chunk");
    }
  }

  void checkReductionChain(uint32_t Idx, const Instr &I) {
    const LoopStmt::CarriedVar *CV = nullptr;
    for (const LoopStmt &L : F.Loops)
      for (const LoopStmt::CarriedVar &C : L.Carried)
        if (C.Init == I.Result)
          CV = &C;
    if (!CV) {
      diag(Check::IdiomChains, Severity::Warning, "", Idx,
           "init_reduc result does not initialize a loop-carried "
           "accumulator");
      return;
    }
    // Follow the accumulator's post-loop value through part-combining ops
    // until a collapsing idiom; the combiner family must agree with it.
    std::set<ValueId> Visited{CV->Result};
    std::deque<ValueId> Work{CV->Result};
    bool SawAdd = false, SawMin = false, SawMax = false, SawSat = false;
    bool Reached = false, Mismatch = false;
    while (!Work.empty()) {
      ValueId V = Work.front();
      Work.pop_front();
      auto It = Users.find(V);
      if (It == Users.end())
        continue;
      for (uint32_t U : It->second) {
        const Instr &UI = F.Instrs[U];
        switch (UI.Op) {
        case Opcode::Add:
          SawAdd = true;
          if (UI.hasResult() && Visited.insert(UI.Result).second)
            Work.push_back(UI.Result);
          break;
        case Opcode::AddSatS:
        case Opcode::AddSatU:
        case Opcode::SubSatS:
        case Opcode::SubSatU:
          // Saturating arithmetic is not associative, so it can never
          // legally combine partial accumulators, whatever the collapse.
          SawSat = true;
          if (UI.hasResult() && Visited.insert(UI.Result).second)
            Work.push_back(UI.Result);
          break;
        case Opcode::Min:
          SawMin = true;
          if (UI.hasResult() && Visited.insert(UI.Result).second)
            Work.push_back(UI.Result);
          break;
        case Opcode::Max:
          SawMax = true;
          if (UI.hasResult() && Visited.insert(UI.Result).second)
            Work.push_back(UI.Result);
          break;
        case Opcode::ReducPlus:
        case Opcode::DotProduct:
          Reached = true;
          Mismatch |= SawMin || SawMax;
          break;
        case Opcode::ReducMax:
          Reached = true;
          Mismatch |= SawAdd || SawMin;
          break;
        case Opcode::ReducMin:
          Reached = true;
          Mismatch |= SawAdd || SawMax;
          break;
        default:
          break;
        }
      }
    }
    if (!Reached)
      diag(Check::IdiomChains, Severity::Warning, "", Idx,
           "init_reduc accumulator is never collapsed by a reduc_* or "
           "dot_product idiom");
    else if (Mismatch || SawSat)
      diag(Check::IdiomChains, Severity::Warning, "", Idx,
           SawSat ? "saturating op combines reduction parts (saturating "
                    "arithmetic is not associative)"
                  : "part-combining operations disagree with the final "
                    "reduction idiom");
  }

  void checkWidenPair(uint32_t Idx, const Instr &I, Opcode Partner) {
    for (const Instr &J : F.Instrs)
      if (J.Op == Partner && J.Ops == I.Ops)
        return;
    diag(Check::IdiomChains, Severity::Warning, "", Idx,
         std::string(opcodeMnemonic(I.Op)) + " has no matching " +
             opcodeMnemonic(Partner) +
             " over the same operands (half the lanes are dropped)");
  }

  void checkGuardUses(uint32_t Idx, const Instr &I) {
    bool UsedAsCond = false;
    for (const IfStmt &S : F.Ifs)
      UsedAsCond |= S.Cond == I.Result;
    if (!UsedAsCond)
      diag(Check::Guards, Severity::Warning, "", Idx,
           "version_guard result is never an if condition (dangling "
           "version guard)");
    if (Users.count(I.Result))
      diag(Check::Guards, Severity::Warning, "", Idx,
           "version_guard result is used as a data operand");
  }

  //===--- Guard analysis -------------------------------------------------===//

  std::optional<bool> detFoldOf(const Instr &G, const TargetDesc &Td) const {
    // Weak tier + treated-as-nested + unknown bases: exactly the folds
    // that happen identically in every tier and runtime world.
    jit::RuntimeInfo RT = jit::RuntimeInfo::unknown(F.Arrays.size());
    return jit::foldGuardStatic(G, Td, RT, jit::Tier::Weak,
                                /*NestedInLoop=*/true);
  }

  /// Warns when a versioned body can never be compiled on any verified
  /// target (the guard folds the same way everywhere).
  void checkGuardReachability(const std::vector<TargetDesc> &Targets) {
    for (uint32_t IfIdx = 0; IfIdx < F.Ifs.size(); ++IfIdx) {
      const Instr *G = guardOf(F.Ifs[IfIdx].Cond);
      if (!G || (G->Guard != GuardKind::TypeSupported &&
                 G->Guard != GuardKind::PreferOuterLoop))
        continue;
      bool ThenLive = false, ElseLive = false;
      for (const TargetDesc &Td : Targets) {
        std::optional<bool> Fd = detFoldOf(*G, Td);
        if (!Fd) {
          ThenLive = ElseLive = true;
          break;
        }
        (*Fd ? ThenLive : ElseLive) = true;
      }
      if (!ThenLive)
        diag(Check::Guards, Severity::Warning, "", NoInstr,
             "if " + std::to_string(IfIdx) +
                 ": guarded version is unreachable on every verified "
                 "target");
      if (!ElseLive)
        diag(Check::Guards, Severity::Warning, "", NoInstr,
             "if " + std::to_string(IfIdx) +
                 ": fall-back version is unreachable on every verified "
                 "target");
    }
  }

  void guardNotes() {
    DetFold.clear();
    for (uint32_t Idx = 0; Idx < F.Instrs.size(); ++Idx) {
      const Instr &I = F.Instrs[Idx];
      if (I.Op != Opcode::VersionGuard)
        continue;
      if (std::optional<bool> Fd = detFoldOf(I, *T)) {
        DetFold[I.Result] = *Fd;
        diag(Check::Guards, Severity::Note, T->Name, Idx,
             std::string("version_guard folds to ") +
                 (*Fd ? "true" : "false") + " in every lowering");
        continue;
      }
      if (I.Guard == GuardKind::BasesAligned && T->VSBytes > 0 &&
          !I.GuardArgs.empty()) {
        bool AllStatic = true;
        for (uint32_t A : I.GuardArgs)
          AllStatic &= A < F.Arrays.size() &&
                       F.Arrays[A].BaseAlign >= T->VSBytes;
        if (AllStatic)
          diag(Check::Guards, Severity::Note, T->Name, Idx,
               "alignment guard is statically true (declared base "
               "alignments already satisfy it); fall-back version is "
               "dead");
      }
    }
  }

  //===--- Per-target region-mode planning --------------------------------===//
  //
  // Mirror of the JIT's planner (jit/Jit.cpp planRegion/planNodes) through
  // the shared strategy model, with optimistic hint decisions.

  bool regionScalar(const Region &R) const {
    auto It = RegionScalar.find(&R);
    return It == RegionScalar.end() ? true : It->second;
  }

  std::string vectorBlockerOpt(const Region &R) const {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr: {
        const Instr &I = F.Instrs[N.Index];
        std::string S = jit::vectorBlockReason(
            F, I, *T, jit::hintCouldProveAligned(I.Hint, *T));
        if (!S.empty())
          return S;
        break;
      }
      case NodeKind::Loop: {
        std::string S = vectorBlockerOpt(F.Loops[N.Index].Body);
        if (!S.empty())
          return S;
        break;
      }
      case NodeKind::If:
        break; // Arms decide for themselves.
      }
    }
    return "";
  }

  void planRegion(const Region &R, bool ParentScalar) {
    bool Scalar = ParentScalar;
    if (!Scalar && !vectorBlockerOpt(R).empty())
      Scalar = true;
    RegionScalar[&R] = Scalar;
    planNodes(R, Scalar);
  }

  void planNodes(const Region &R, bool Scalar) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        break;
      case NodeKind::Loop: {
        const LoopStmt &L = F.Loops[N.Index];
        bool LoopScalar = Scalar;
        if (!LoopScalar && L.MaxSafeVF > 0 &&
            jit::loopVF(F, L, *T) > L.MaxSafeVF)
          LoopScalar = true;
        if (!LoopScalar && !vectorBlockerOpt(L.Body).empty())
          LoopScalar = true;
        RegionScalar[&L.Body] = LoopScalar;
        planNodes(L.Body, LoopScalar);
        break;
      }
      case NodeKind::If: {
        const IfStmt &S = F.Ifs[N.Index];
        auto Folded = DetFold.find(S.Cond);
        if (Folded != DetFold.end()) {
          planRegion(Folded->second ? S.Then : S.Else, Scalar);
          RegionScalar[&(Folded->second ? S.Else : S.Then)] = Scalar;
        } else {
          planRegion(S.Then, Scalar);
          planRegion(S.Else, Scalar);
        }
        break;
      }
      }
    }
  }

  //===--- The abstract walk ----------------------------------------------===//

  uint32_t newSym(SymInfo::Kind K = SymInfo::Kind::Opaque,
                  uint32_t Array = NoArray) {
    SymInfo S;
    S.K = K;
    S.Array = Array;
    Syms.push_back(std::move(S));
    return (uint32_t)Syms.size() - 1;
  }

  Aff affOf(WalkState &S, ValueId V) {
    auto It = S.Env.find(V);
    if (It != S.Env.end())
      return It->second;
    Aff A = affSym(newSym());
    S.Env.emplace(V, A);
    return A;
  }

  int64_t assumedAlignBytes(const WalkState &S, uint32_t A,
                            uint32_t Bump32Array) const {
    int64_t Bytes = F.Arrays[A].BaseAlign;
    auto It = S.AssumedAlign.find(A);
    if (It != S.AssumedAlign.end())
      Bytes = std::max<int64_t>(Bytes, It->second);
    if (A == Bump32Array)
      Bytes = std::max<int64_t>(Bytes, analysis::AlignModBytes);
    return Bytes;
  }

  int64_t alignElems(const WalkState &S, uint32_t A,
                     uint32_t Bump32Array) const {
    int64_t ES = scalarSize(F.Arrays[A].Elem);
    if (ES <= 0)
      return 1;
    return std::max<int64_t>(assumedAlignBytes(S, A, Bump32Array) / ES, 1);
  }

  /// Reduces \p A modulo \p W by substituting congruence facts, highest
  /// symbol first (facts only reference older symbols, so this
  /// terminates). \returns the constant residue, or nullopt when some
  /// symbol without a usable fact survives. \p Bump32Array names an array
  /// whose base may additionally be assumed 32-byte aligned (the premise
  /// of an if-jit-aligns hint). When \p Reqs is non-null, every array-base
  /// alignment assumption the reduction consumes is appended to it — the
  /// derivation is only valid in worlds where all of them hold, and the
  /// certificate must say so.
  std::optional<int64_t> residueMod(const WalkState &S, Aff A, int64_t W,
                                    uint32_t Bump32Array,
                                    std::vector<analysis::BaseAlignReq>
                                        *Reqs = nullptr) const {
    if (W <= 1)
      return 0;
    for (int Iter = 0; Iter < 64; ++Iter) {
      uint32_t Sid = ~0u;
      int64_t Coef = 0;
      for (auto It = A.T.rbegin(); It != A.T.rend(); ++It)
        if (floorMod(It->second, W) != 0) {
          Sid = It->first;
          Coef = It->second;
          break;
        }
      if (Sid == ~0u)
        return floorMod(A.C, W);
      const SymInfo &SI = Syms[Sid];
      Aff Zero;
      int64_t M = 0;
      const Aff *Rhs = nullptr;
      if (SI.K == SymInfo::Kind::ArrayBase) {
        M = alignElems(S, SI.Array, Bump32Array);
        Rhs = &Zero;
        if (Reqs) {
          int64_t ES =
              std::max<int64_t>(scalarSize(F.Arrays[SI.Array].Elem), 1);
          Reqs->push_back(
              {SI.Array, static_cast<uint64_t>(M * ES)});
        }
      } else if (SI.K == SymInfo::Kind::Congruent) {
        M = SI.Mod;
        Rhs = &SI.Rhs;
      } else {
        return std::nullopt;
      }
      // Coef*Sym = Coef*Rhs + Coef*M*t; the t part must vanish mod W.
      if (M <= 0 || floorMod(Coef * M, W) != 0)
        return std::nullopt;
      A.T.erase(Sid);
      A = affAdd(A, affMulC(*Rhs, Coef));
    }
    return std::nullopt;
  }

  void targetPass(const TargetDesc &Td) {
    T = &Td;
    guardNotes(); // Also computes DetFold for the planner and walk.
    if (!Td.hasSimd())
      return; // Fully scalarized: scalar accesses never trap.
    RegionScalar.clear();
    planRegion(F.Body, /*ParentScalar=*/false);

    Syms.clear();
    ObSeen.clear();
    ObFail.clear();
    ConsFail.clear();
    CertFacts.clear();
    BudgetNoted = false;
    BaseSym.assign(F.Arrays.size(), 0);
    WalkState S0;
    for (uint32_t A = 0; A < F.Arrays.size(); ++A)
      BaseSym[A] = newSym(SymInfo::Kind::ArrayBase, A);
    for (ValueId P : F.Params)
      S0.Env[P] = affSym(newSym());
    if (!regionScalar(F.Body)) {
      std::vector<WalkState> States{std::move(S0)};
      walkRegionNodes(F.Body, States);
    }
    Rep.ObligationsFailed += ObFail.size();
    Rep.ObligationsProved += ObSeen.size() - ObFail.size();

    // Certificate assembly. Align facts survive only when *every* scenario
    // proved them — any failed obligation on the access withdraws the
    // claim. Bounds facts come from the structural pass.
    for (uint32_t Idx : ObFail) {
      auto It = CertFacts.find(Idx);
      if (It != CertFacts.end())
        It->second.HasAlign = false;
    }
    collectBoundsFacts(F.Body, /*LoopIdx=*/~0u);
    analysis::SafetyCertificate C;
    C.TargetName = Td.Name;
    C.VSBytes = Td.VSBytes;
    C.FnHash = ir::hashFunction(F);
    for (auto &[Idx, Fa] : CertFacts)
      if (Fa.HasAlign || Fa.HasBounds)
        C.Facts.push_back(Fa);
    if (!C.Facts.empty())
      Rep.Certificates.push_back(std::move(C));
  }

  void walkRegionNodes(const Region &R, std::vector<WalkState> &States) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        // evalInstr may fork States; forks already carry this
        // instruction's binding and join the walk at the next node.
        for (size_t SI = 0; SI < States.size(); ++SI)
          evalInstr(N.Index, States, SI);
        break;
      case NodeKind::Loop:
        for (WalkState &S : States)
          walkLoop(N.Index, S);
        break;
      case NodeKind::If:
        for (WalkState &S : States)
          walkIf(N.Index, S);
        break;
      }
    }
  }

  void walkLoop(uint32_t LoopIdx, WalkState &S) {
    const LoopStmt &L = F.Loops[LoopIdx];
    Aff Lo = affOf(S, L.Lower);
    Aff Up = affOf(S, L.Upper);
    Aff St = affOf(S, L.Step);
    Aff Span = affSub(Up, Lo);
    bool KnownEmpty = Span.isConst() && Span.C <= 0;
    if (!KnownEmpty && !regionScalar(L.Body)) {
      WalkState B = S;
      B.Path += "/L" + std::to_string(LoopIdx);
      // iv = Lower + Step * k for an opaque iteration count k.
      if (St.isConst() && St.C != 0)
        B.Env[L.IndVar] = affAdd(Lo, affMulC(affSym(newSym()), St.C));
      else
        B.Env[L.IndVar] = affSym(newSym());
      for (const LoopStmt::CarriedVar &CV : L.Carried)
        B.Env[CV.Phi] = affSym(newSym());
      std::vector<WalkState> Body{std::move(B)};
      walkRegionNodes(L.Body, Body);
      // Body-local scenario splits die here: nothing escapes a loop but
      // its carried results, and those are opaque below.
    }
    for (const LoopStmt::CarriedVar &CV : L.Carried)
      S.Env[CV.Result] = affSym(newSym());
  }

  void walkIf(uint32_t IfIdx, WalkState &S) {
    const IfStmt &If = F.Ifs[IfIdx];
    auto DF = DetFold.find(If.Cond);
    if (DF != DetFold.end()) {
      // The dead arm is never compiled on this target.
      walkArm(DF->second ? If.Then : If.Else, S,
              S.Path + (DF->second ? "/then" : "/else") +
                  std::to_string(IfIdx),
              nullptr);
      return;
    }
    const Instr *G = guardOf(If.Cond);
    if (G && G->Guard == GuardKind::BasesAligned) {
      // Both arms are reachable depending on tier and runtime bases; the
      // guarded arm may assume VS-aligned bases for the guarded arrays.
      walkArm(If.Then, S, S.Path + "/aligned" + std::to_string(IfIdx),
              &G->GuardArgs);
      walkArm(If.Else, S, S.Path + "/fallback" + std::to_string(IfIdx),
              nullptr);
      return;
    }
    walkArm(If.Then, S, S.Path + "/then" + std::to_string(IfIdx), nullptr);
    walkArm(If.Else, S, S.Path + "/else" + std::to_string(IfIdx), nullptr);
  }

  void walkArm(const Region &Arm, const WalkState &S, std::string Path,
               const std::vector<uint32_t> *AlignedArrays) {
    if (regionScalar(Arm))
      return; // Scalar lowering: per-lane accesses cannot trap.
    WalkState A = S;
    A.Path = std::move(Path);
    if (AlignedArrays)
      for (uint32_t Arr : *AlignedArrays) {
        uint32_t &Cur = A.AssumedAlign[Arr];
        Cur = std::max(Cur, T->VSBytes);
      }
    std::vector<WalkState> States{std::move(A)};
    walkRegionNodes(Arm, States);
  }

  int64_t machineConst(ScalarKind K) const {
    int64_t ES = scalarSize(K);
    return ES > 0 ? (int64_t)T->VSBytes / ES : 0;
  }

  void evalInstr(uint32_t Idx, std::vector<WalkState> &States, size_t SI) {
    const Instr &I = F.Instrs[Idx];
    checkMemoryInstr(Idx, I, States[SI]);
    if (!I.hasResult())
      return;
    WalkState &S = States[SI];
    switch (I.Op) {
    case Opcode::ConstInt:
      S.Env[I.Result] = affConst(I.IntImm);
      return;
    case Opcode::Add:
      S.Env[I.Result] = affAdd(affOf(S, I.Ops[0]), affOf(S, I.Ops[1]));
      return;
    case Opcode::Sub:
      S.Env[I.Result] = affSub(affOf(S, I.Ops[0]), affOf(S, I.Ops[1]));
      return;
    case Opcode::Neg:
      S.Env[I.Result] = affNeg(affOf(S, I.Ops[0]));
      return;
    case Opcode::Mul: {
      Aff A = affOf(S, I.Ops[0]), B = affOf(S, I.Ops[1]);
      if (A.isConst())
        S.Env[I.Result] = affMulC(B, A.C);
      else if (B.isConst())
        S.Env[I.Result] = affMulC(A, B.C);
      else
        S.Env[I.Result] = affSym(newSym());
      return;
    }
    case Opcode::Shl: {
      Aff A = affOf(S, I.Ops[0]), B = affOf(S, I.Ops[1]);
      if (B.isConst() && B.C >= 0 && B.C < 62)
        S.Env[I.Result] = affMulC(A, (int64_t)1 << B.C);
      else
        S.Env[I.Result] = affSym(newSym());
      return;
    }
    case Opcode::Div: {
      Aff A = affOf(S, I.Ops[0]), B = affOf(S, I.Ops[1]);
      if (B.isConst() && B.C != 0 && A.C % B.C == 0) {
        bool Exact = true;
        for (const auto &[Sy, Co] : A.T)
          Exact &= Co % B.C == 0;
        if (Exact) {
          Aff R;
          R.C = A.C / B.C;
          for (const auto &[Sy, Co] : A.T)
            R.T[Sy] = Co / B.C;
          S.Env[I.Result] = std::move(R);
          return;
        }
      }
      S.Env[I.Result] = affSym(newSym());
      return;
    }
    case Opcode::Rem: {
      Aff A = affOf(S, I.Ops[0]), B = affOf(S, I.Ops[1]);
      // Truncated C remainder still satisfies r ≡ x (mod m); keep only
      // power-of-two moduli so wrap-around cannot break the fact.
      if (B.isConst() && isPow2(B.C)) {
        uint32_t Sy = newSym(SymInfo::Kind::Congruent);
        Syms[Sy].Mod = B.C;
        Syms[Sy].Rhs = A;
        S.Env[I.Result] = affSym(Sy);
      } else {
        S.Env[I.Result] = affSym(newSym());
      }
      return;
    }
    case Opcode::Min:
    case Opcode::Max:
      evalMinMax(Idx, I, States, SI);
      return;
    case Opcode::GetVF:
    case Opcode::GetAlignLimit:
      // This instruction is only walked in vector-mode regions, where the
      // JIT materializes VS / sizeof(T).
      S.Env[I.Result] = affConst(machineConst(I.TyParam));
      return;
    case Opcode::GetMisalign: {
      int64_t AL = I.Array < F.Arrays.size()
                       ? machineConst(F.Arrays[I.Array].Elem)
                       : 0;
      if (AL <= 1) {
        S.Env[I.Result] = affConst(0);
      } else {
        // (base/ES + off) mod AL: congruent to BaseElems + off.
        uint32_t Sy = newSym(SymInfo::Kind::Congruent);
        Syms[Sy].Mod = AL;
        Syms[Sy].Rhs =
            affAdd(affSym(BaseSym[I.Array]), affConst(I.IntImm));
        S.Env[I.Result] = affSym(Sy);
      }
      return;
    }
    case Opcode::LoopBound:
      // Vector-mode lowering keeps the vector-version count.
      S.Env[I.Result] = affOf(S, I.Ops[0]);
      return;
    default:
      S.Env[I.Result] = affSym(newSym());
      return;
    }
  }

  void evalMinMax(uint32_t Idx, const Instr &I,
                  std::vector<WalkState> &States, size_t SI) {
    WalkState &S = States[SI];
    if (!I.Ty.isScalar() || !isIntKind(I.Ty.Elem)) {
      S.Env[I.Result] = affSym(newSym());
      return;
    }
    Aff A = affOf(S, I.Ops[0]);
    Aff B = affOf(S, I.Ops[1]);
    Aff D = affSub(A, B);
    bool IsMax = I.Op == Opcode::Max;
    int Sign = 0;
    if (D.isConst()) {
      Sign = D.C >= 0 ? 1 : -1;
    } else {
      for (const auto &[FD, FS] : S.Signs) {
        if (affEq(FD, D)) {
          Sign = FS;
          break;
        }
        if (affEq(FD, affNeg(D))) {
          Sign = -FS;
          break;
        }
      }
    }
    if (Sign != 0) {
      S.Env[I.Result] = (Sign > 0) == IsMax ? A : B;
      return;
    }
    if (States.size() >= Opt.ScenarioBudget) {
      if (!BudgetNoted) {
        BudgetNoted = true;
        diag(Check::Alignment, Severity::Note, T->Name, Idx,
             "scenario budget exhausted; min/max result treated as "
             "opaque (sound: proofs may fail, never pass wrongly)");
      }
      S.Env[I.Result] = affSym(newSym());
      return;
    }
    WalkState Other = S;
    S.Signs.push_back({D, 1});
    S.Env[I.Result] = IsMax ? A : B;
    S.Path += "/i" + std::to_string(Idx) + "+";
    Other.Signs.push_back({D, -1});
    Other.Env[I.Result] = IsMax ? B : A;
    Other.Path += "/i" + std::to_string(Idx) + "-";
    States.push_back(std::move(Other)); // Invalidates S; must be last.
  }

  //===--- Proof obligations and hint consistency -------------------------===//

  void checkMemoryInstr(uint32_t Idx, const Instr &I, WalkState &S) {
    switch (I.Op) {
    case Opcode::ALoad:
    case Opcode::AStore:
      // Always lowered aligned in vector-mode regions.
      obligation(Idx, I, S);
      hintConsistency(Idx, I, S);
      break;
    case Opcode::ULoad:
    case Opcode::UStore:
    case Opcode::RealignLoad:
      // Obligated only in the worlds where the hint promotes the access
      // to an aligned one.
      if (jit::hintCouldProveAligned(I.Hint, *T))
        obligation(Idx, I, S);
      hintConsistency(Idx, I, S);
      break;
    case Opcode::AlignLoad:
      // The JIT floors the address to a VS boundary: discharged by
      // construction.
      ObSeen.insert(Idx);
      break;
    case Opcode::GetRT:
      hintConsistency(Idx, I, S);
      break;
    default:
      break;
    }
  }

  void obligation(uint32_t Idx, const Instr &I, WalkState &S) {
    ObSeen.insert(Idx);
    if (I.Array >= F.Arrays.size())
      return; // ir::verify already rejected the module shape.
    int64_t ES = scalarSize(F.Arrays[I.Array].Elem);
    int64_t W = ES > 0 ? (int64_t)T->VSBytes / ES : 0;
    uint32_t Bump = I.Hint.known() && I.Hint.IfJitAligns ? I.Array : NoArray;
    Aff Addr = affAdd(affSym(BaseSym[I.Array]), affOf(S, memIndex(I)));
    std::vector<analysis::BaseAlignReq> Reqs;
    std::optional<int64_t> R = residueMod(S, Addr, W, Bump, &Reqs);
    if (R && *R == 0) {
      recordAlignFact(Idx, I, W, ES, Reqs);
      return;
    }
    if (!ObFail.insert(Idx).second)
      return;
    std::string Why = "cannot prove " + std::to_string(T->VSBytes) +
                      "B alignment of " + instrLabel(Idx) + " on array " +
                      arrayLabel(I.Array);
    if (R)
      Why += " (derived residue " + std::to_string(*R) + " of " +
             std::to_string(W) + " elements)";
    Why += "; scenario " + (S.Path.empty() ? std::string("<top>") : S.Path);
    diag(Check::Alignment, Severity::Error, T->Name, Idx, Why);
  }

  void hintConsistency(uint32_t Idx, const Instr &I, WalkState &S) {
    const AlignHint &H = I.Hint;
    if (!H.known() || I.Array >= F.Arrays.size())
      return;
    int64_t ES = scalarSize(F.Arrays[I.Array].Elem);
    if (ES <= 0 || H.Mod != analysis::AlignModBytes || H.Mis % ES != 0)
      return; // hintSanity already reported the malformed claim.
    int64_t W = (int64_t)T->VSBytes / ES;
    if (W <= 1)
      return;
    uint32_t Bump = H.IfJitAligns ? I.Array : NoArray;
    Aff Addr = affAdd(affSym(BaseSym[I.Array]), affOf(S, memIndex(I)));
    std::optional<int64_t> R = residueMod(S, Addr, W, Bump);
    int64_t Claim = floorMod(H.Mis / ES, W);
    if (R && *R == Claim)
      return;
    if (!ConsFail.insert(Idx).second)
      return;
    std::string Why;
    if (!R)
      Why = "mis/mod claim (mis=" + std::to_string(H.Mis) +
            "B) cannot be re-derived from the bytecode";
    else
      Why = "hint claims mis ≡ " + std::to_string(Claim * ES) + "B (mod " +
            std::to_string(T->VSBytes) + "B) but the derived residue is " +
            std::to_string(*R * ES) + "B";
    Why += "; scenario " + (S.Path.empty() ? std::string("<top>") : S.Path);
    diag(Check::HintConsistency, Severity::Error, T->Name, Idx, Why);
  }

  //===--- Certificate production -----------------------------------------===//

  /// Records a discharged alignment obligation as a certificate fact.
  /// Called once per scenario; requirements union across scenarios (the
  /// runtime execution is *some* scenario, so demanding all of them is
  /// sound), and any failing scenario withdraws the claim afterwards.
  void recordAlignFact(uint32_t Idx, const Instr &I, int64_t W, int64_t ES,
                       std::vector<analysis::BaseAlignReq> &Reqs) {
    if (I.Op == Opcode::RealignLoad || W < 1 || ES <= 0)
      return; // Realign chains keep their checks; no consumer elides them.
    // Element-granular addressing assumes the accessed base is a whole
    // number of elements; surface that as a checked runtime precondition
    // instead of a modeling assumption.
    Reqs.push_back({I.Array, static_cast<uint64_t>(ES)});
    analysis::AccessFact &Fa = CertFacts[Idx];
    Fa.InstrIdx = Idx;
    Fa.Array = I.Array;
    Fa.HasAlign = true;
    Fa.AlignElems = W;
    for (const analysis::BaseAlignReq &R : Reqs) {
      bool Merged = false;
      for (analysis::BaseAlignReq &E : Fa.BaseReqs)
        if (E.Array == R.Array) {
          E.Bytes = std::max(E.Bytes, R.Bytes);
          Merged = true;
        }
      if (!Merged)
        Fa.BaseReqs.push_back(R);
    }
  }

  /// Structural bounds pass: claims index ∈ [0, NumElems - Span] material
  /// for every access whose direct lowering the downstream consumers can
  /// cover. Vector accesses only count in vector-mode regions (scalar
  /// expansion re-emits them as per-lane accesses outside the
  /// certificate); scalar load/store count everywhere.
  void collectBoundsFacts(const Region &R, uint32_t LoopIdx) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr: {
        const Instr &I = F.Instrs[N.Index];
        switch (I.Op) {
        case Opcode::ALoad:
        case Opcode::ULoad:
        case Opcode::AStore:
        case Opcode::UStore:
          if (!regionScalar(R))
            addBoundsFact(N.Index, I, /*Vector=*/true, LoopIdx);
          break;
        case Opcode::Load:
        case Opcode::Store:
          addBoundsFact(N.Index, I, /*Vector=*/false, LoopIdx);
          break;
        default:
          break;
        }
        break;
      }
      case NodeKind::Loop:
        collectBoundsFacts(F.Loops[N.Index].Body, N.Index);
        break;
      case NodeKind::If:
        collectBoundsFacts(F.Ifs[N.Index].Then, LoopIdx);
        collectBoundsFacts(F.Ifs[N.Index].Else, LoopIdx);
        break;
      }
    }
  }

  void addBoundsFact(uint32_t Idx, const Instr &I, bool Vector,
                     uint32_t LoopIdx) {
    if (I.Array >= F.Arrays.size() || I.Ops.empty())
      return;
    int64_t ES = scalarSize(F.Arrays[I.Array].Elem);
    if (ES <= 0 || (Vector && (T->VSBytes % ES || T->VSBytes / ES == 0)))
      return;
    analysis::AccessFact &Fa = CertFacts[Idx];
    Fa.InstrIdx = Idx;
    Fa.Array = I.Array;
    Fa.LoopIdx = LoopIdx;
    Fa.HasBounds = true;
    Fa.SpanElems = Vector ? T->VSBytes / ES : 1;
    Fa.NumElems = F.Arrays[I.Array].NumElems;
    Fa.IndexVal = I.Ops[0];
    // Static range when derivable without parameter values; otherwise the
    // consumer evaluates the range with the run's concrete parameters.
    analysis::BoundsEvaluator BE(
        F, T->VSBytes,
        [](const std::string &) { return std::optional<int64_t>(); });
    if (std::optional<analysis::Interval> Rng = BE.eval(I.Ops[0])) {
      Fa.DynamicRange = false;
      Fa.MinIdx = Rng->Min;
      Fa.MaxIdx = Rng->Max;
    } else {
      Fa.DynamicRange = true;
    }
  }
};

} // namespace

namespace vapor {
namespace verify {

Report verifyModule(const ir::Function &F, const VerifyOptions &O) {
  Report R = ModuleVerifier(F, O).run();
  if (faultinject::shouldFire(faultinject::SiteClass::Verify)) {
    Diagnostic D;
    D.Analysis = Check::Structure;
    D.Sev = Severity::Error;
    D.Why = "fault-injection: forced verification finding";
    R.Diags.push_back(std::move(D));
  }
  return R;
}

} // namespace verify
} // namespace vapor
