//===- verify/Verify.h - Static verifier for split bytecode ----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vapor::verify statically checks a split-layer bytecode module *before*
/// any online compiler runs, proving that the vectorizer's claims are ones
/// no JIT lowering can turn into a trap or a miscompile:
///
///  - **Alignment safety.** Every aligned access the online compiler could
///    materialize (aload/astore directly; uload/ustore/realign_load
///    promoted by mis/mod hints) is proven VS-aligned by abstract
///    interpretation over a symbolic residue domain, for every vector size
///    in {8, 16, 32} and every lowering strategy of every target.
///  - **Hint consistency.** mis/mod claims, loop_bound pairs and maxvf
///    dependence limits are re-derived from the bytecode itself and
///    cross-checked against what the idioms claim.
///  - **Guard analysis.** Version guards that fold the same way on every
///    target, or whose arms are unreachable everywhere, are reported.
///  - **Idiom chains.** The structural discipline of the idiom set
///    (realign chains, reduction init/finish pairing, widening-multiply
///    hi/lo pairing) is checked VF-agnostically.
///
/// See src/verify/README.md for the abstract domains and the per-strategy
/// proof obligations.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VERIFY_VERIFY_H
#define VAPOR_VERIFY_VERIFY_H

#include "analysis/Certificate.h"
#include "ir/Function.h"
#include "target/Target.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vapor {
namespace verify {

/// The analysis a diagnostic came from.
enum class Check : uint8_t {
  Structure,       ///< ir::verify well-formedness (re-reported here).
  Alignment,       ///< Aligned-access proof obligations.
  HintConsistency, ///< mis/mod, loop_bound, maxvf claims re-derived.
  Guards,          ///< Dead / constant / always-true version guards.
  IdiomChains,     ///< Structural pairing rules of the idiom set.
};

enum class Severity : uint8_t {
  Error,   ///< A lowering exists that traps or miscompiles.
  Warning, ///< Suspicious but not unsafe (e.g. over-conservative claim).
  Note,    ///< Informational (per-target guard folds etc.).
};

const char *checkName(Check C);
const char *severityName(Severity S);

constexpr uint32_t NoInstr = ~0u;

struct Diagnostic {
  Check Analysis = Check::Structure;
  Severity Sev = Severity::Error;
  std::string Target;          ///< Target name; empty = target-independent.
  uint32_t InstrIdx = NoInstr; ///< Offending instruction, if any.
  std::string Why;             ///< One-line reason.

  std::string str() const;
};

struct Report {
  std::vector<Diagnostic> Diags;
  /// Aligned-access proof obligations, counted per (instruction, target).
  uint64_t ObligationsProved = 0;
  uint64_t ObligationsFailed = 0;
  unsigned TargetsChecked = 0;
  /// One proof-carrying certificate per SIMD target that produced any
  /// per-access facts (analysis/Certificate.h). Consumers must run the
  /// independent checker before acting on them — these records are the
  /// *untrusted producer* half of the elision pipeline.
  std::vector<analysis::SafetyCertificate> Certificates;

  bool ok() const; ///< True when no Error-severity diagnostic exists.
  size_t count(Severity S) const;
  std::string str(bool IncludeNotes = false) const;
};

struct VerifyOptions {
  /// Targets to instantiate the proofs for; empty = target::allTargets().
  std::vector<target::TargetDesc> Targets;
  /// Cap on simultaneous scenario states per abstract walk (min/max
  /// branch splits fork states). Overflow degrades soundly: obligations
  /// in dropped scenarios are reported unproven, never silently passed.
  unsigned ScenarioBudget = 256;
};

/// Verifies split-layer module \p F. Also accepts scalar source modules
/// (all split-layer analyses are then vacuous).
Report verifyModule(const ir::Function &F, const VerifyOptions &O = {});

} // namespace verify
} // namespace vapor

#endif // VAPOR_VERIFY_VERIFY_H
