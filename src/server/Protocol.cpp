//===- server/Protocol.cpp - Execution-service wire protocol ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "support/FaultInject.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace vapor;
using namespace vapor::server;
using vapor::status::Code;
using vapor::status::Layer;
using vapor::status::Status;

namespace {

Status malformed(const std::string &What) {
  return Status::error(Code::MalformedFrame, Layer::Server, What);
}

//===--- Little-endian primitives -----------------------------------------===//

class Writer {
public:
  std::vector<uint8_t> Bytes;

  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (I * 8)));
  }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }
  void blob(const std::vector<uint8_t> &B) {
    u32(static_cast<uint32_t>(B.size()));
    Bytes.insert(Bytes.end(), B.begin(), B.end());
  }
};

/// Bounds-checked reader: every getter fails sticky (Ok=false) on
/// overrun, so decoders check once at the end. Reading past the end
/// never touches memory outside [Data, Data+Len).
class Reader {
public:
  Reader(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}

  bool Ok = true;

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (I * 8);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (I * 8);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
  std::vector<uint8_t> blob() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::vector<uint8_t> B(Data + Pos, Data + Pos + N);
    Pos += N;
    return B;
  }

  bool atEnd() const { return Ok && Pos == Len; }

private:
  bool need(size_t N) {
    if (!Ok || Len - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
};

/// A hostile count field must not drive allocation: each counted element
/// is at least \p MinElemBytes on the wire, so any count claiming more
/// elements than the remaining payload could hold is malformed.
constexpr uint32_t MaxCount = MaxPayload;

bool saneCount(uint32_t N, size_t MinElemBytes) {
  return static_cast<uint64_t>(N) * MinElemBytes <= MaxCount;
}

} // namespace

bool server::isRequestKind(uint8_t K) {
  return K == static_cast<uint8_t>(FrameKind::RunReq) ||
         K == static_cast<uint8_t>(FrameKind::StatsReq) ||
         K == static_cast<uint8_t>(FrameKind::Ping);
}

//===--- RunRequest -------------------------------------------------------===//

std::vector<uint8_t> server::encodeRunRequest(const RunRequest &R) {
  Writer W;
  W.u64(R.RequestId);
  W.str(R.Tenant);
  W.str(R.Name);
  W.str(R.Target);
  uint8_t Flags = (R.UseNative ? 1u : 0u) | (R.VerifyBytecode ? 2u : 0u) |
                  (R.UseCodeCache ? 4u : 0u);
  W.u8(Flags);
  W.u8(R.Elide);
  W.u8(R.Inject);
  W.u64(R.DeadlineFuel);
  W.u64(R.FillSeed);
  W.u32(static_cast<uint32_t>(R.IntParams.size()));
  for (const auto &KV : R.IntParams) {
    W.str(KV.first);
    W.u64(static_cast<uint64_t>(KV.second));
  }
  W.u32(static_cast<uint32_t>(R.FPParams.size()));
  for (const auto &KV : R.FPParams) {
    W.str(KV.first);
    W.f64(KV.second);
  }
  W.blob(R.Bytecode);
  return std::move(W.Bytes);
}

Status server::decodeRunRequest(const uint8_t *Data, size_t Len,
                                RunRequest &Out) {
  Reader R(Data, Len);
  Out = RunRequest();
  Out.RequestId = R.u64();
  Out.Tenant = R.str();
  if (Out.Tenant.size() > MaxTenantBytes)
    return malformed("run request: tenant name exceeds " +
                     std::to_string(MaxTenantBytes) + " bytes");
  Out.Name = R.str();
  Out.Target = R.str();
  uint8_t Flags = R.u8();
  Out.UseNative = (Flags & 1u) != 0;
  Out.VerifyBytecode = (Flags & 2u) != 0;
  Out.UseCodeCache = (Flags & 4u) != 0;
  if ((Flags & ~7u) != 0)
    return malformed("run request: unknown flag bits");
  Out.Elide = R.u8();
  if (Out.Elide > 2)
    return malformed("run request: bad elision mode");
  Out.Inject = R.u8();
  if (Out.Inject != 0xff && Out.Inject >= faultinject::NumSiteClasses)
    return malformed("run request: bad inject class");
  Out.DeadlineFuel = R.u64();
  Out.FillSeed = R.u64();
  uint32_t NInt = R.u32();
  if (!saneCount(NInt, 12))
    return malformed("run request: int-param count exceeds payload");
  for (uint32_t I = 0; R.Ok && I < NInt; ++I) {
    std::string Name = R.str();
    int64_t V = static_cast<int64_t>(R.u64());
    if (R.Ok)
      Out.IntParams[Name] = V;
  }
  uint32_t NFp = R.u32();
  if (!saneCount(NFp, 12))
    return malformed("run request: fp-param count exceeds payload");
  for (uint32_t I = 0; R.Ok && I < NFp; ++I) {
    std::string Name = R.str();
    double V = R.f64();
    if (R.Ok)
      Out.FPParams[Name] = V;
  }
  Out.Bytecode = R.blob();
  if (!R.atEnd())
    return malformed("run request: truncated or oversized payload");
  return Status::okStatus();
}

//===--- RunResponse ------------------------------------------------------===//

std::vector<uint8_t> server::encodeRunResponse(const RunResponse &R) {
  Writer W;
  W.u64(R.RequestId);
  W.str(R.TraceId);
  W.u8(R.Code);
  W.u8(R.Layer);
  W.str(R.Message);
  W.u8(R.Tier);
  W.u32(R.Demotions);
  W.u32(R.Retries);
  W.u64(R.Cycles);
  W.u32(R.RetryAfterMs);
  W.u32(static_cast<uint32_t>(R.Arrays.size()));
  for (const ArrayDump &A : R.Arrays) {
    W.str(A.Name);
    W.u8(A.IsFP);
    W.u32(static_cast<uint32_t>(A.Lanes.size()));
    for (uint64_t L : A.Lanes)
      W.u64(L);
  }
  return std::move(W.Bytes);
}

Status server::decodeRunResponse(const uint8_t *Data, size_t Len,
                                 RunResponse &Out) {
  Reader R(Data, Len);
  Out = RunResponse();
  Out.RequestId = R.u64();
  Out.TraceId = R.str();
  Out.Code = R.u8();
  Out.Layer = R.u8();
  Out.Message = R.str();
  Out.Tier = R.u8();
  Out.Demotions = R.u32();
  Out.Retries = R.u32();
  Out.Cycles = R.u64();
  Out.RetryAfterMs = R.u32();
  uint32_t NArr = R.u32();
  if (!saneCount(NArr, 9))
    return malformed("run response: array count exceeds payload");
  Out.Arrays.reserve(R.Ok ? NArr : 0);
  for (uint32_t I = 0; R.Ok && I < NArr; ++I) {
    ArrayDump A;
    A.Name = R.str();
    A.IsFP = R.u8();
    uint32_t NL = R.u32();
    if (!saneCount(NL, 8))
      return malformed("run response: lane count exceeds payload");
    A.Lanes.reserve(R.Ok ? NL : 0);
    for (uint32_t L = 0; R.Ok && L < NL; ++L)
      A.Lanes.push_back(R.u64());
    if (R.Ok)
      Out.Arrays.push_back(std::move(A));
  }
  if (!R.atEnd())
    return malformed("run response: truncated or oversized payload");
  return Status::okStatus();
}

//===--- StatsResponse ----------------------------------------------------===//

std::vector<uint8_t> server::encodeStatsResponse(const StatsResponse &S) {
  Writer W;
  W.u64(S.Accepted);
  W.u64(S.Completed);
  W.u64(S.RejectedOverload);
  W.u64(S.RejectedQuota);
  W.u64(S.RejectedDuplicate);
  W.u64(S.RejectedMalformed);
  W.u64(S.RejectedUnavailable);
  W.u64(S.RejectedInvalid);
  W.u64(S.Deadlines);
  W.u64(S.QueueDepth);
  W.u64(S.Workers);
  W.u64(S.CacheBytesLive);
  W.u64(S.CacheCapacity);
  W.u64(S.CacheEvictions);
  W.u64(S.CacheHits);
  W.u64(S.CacheMisses);
  W.u64(S.RssBytes);
  W.u64(S.TierInvocations);
  W.u64(S.TierPromotions);
  W.u64(S.TierCompilesOk);
  W.u64(S.TierCompilesFailed);
  W.u64(S.TierQueueRejects);
  W.u64(S.TierPins);
  W.u32(static_cast<uint32_t>(S.Tenants.size()));
  for (const TenantLine &T : S.Tenants) {
    W.str(T.Tenant);
    W.u64(T.Active);
    W.u64(T.Completed);
    W.u64(T.Rejected);
    W.u64(T.CacheBytes);
    W.u64(T.CacheEvictions);
  }
  return std::move(W.Bytes);
}

Status server::decodeStatsResponse(const uint8_t *Data, size_t Len,
                                   StatsResponse &Out) {
  Reader R(Data, Len);
  Out = StatsResponse();
  Out.Accepted = R.u64();
  Out.Completed = R.u64();
  Out.RejectedOverload = R.u64();
  Out.RejectedQuota = R.u64();
  Out.RejectedDuplicate = R.u64();
  Out.RejectedMalformed = R.u64();
  Out.RejectedUnavailable = R.u64();
  Out.RejectedInvalid = R.u64();
  Out.Deadlines = R.u64();
  Out.QueueDepth = R.u64();
  Out.Workers = R.u64();
  Out.CacheBytesLive = R.u64();
  Out.CacheCapacity = R.u64();
  Out.CacheEvictions = R.u64();
  Out.CacheHits = R.u64();
  Out.CacheMisses = R.u64();
  Out.RssBytes = R.u64();
  Out.TierInvocations = R.u64();
  Out.TierPromotions = R.u64();
  Out.TierCompilesOk = R.u64();
  Out.TierCompilesFailed = R.u64();
  Out.TierQueueRejects = R.u64();
  Out.TierPins = R.u64();
  uint32_t NT = R.u32();
  if (!saneCount(NT, 44))
    return malformed("stats response: tenant count exceeds payload");
  for (uint32_t I = 0; R.Ok && I < NT; ++I) {
    TenantLine T;
    T.Tenant = R.str();
    T.Active = R.u64();
    T.Completed = R.u64();
    T.Rejected = R.u64();
    T.CacheBytes = R.u64();
    T.CacheEvictions = R.u64();
    if (R.Ok)
      Out.Tenants.push_back(std::move(T));
  }
  if (!R.atEnd())
    return malformed("stats response: truncated or oversized payload");
  return Status::okStatus();
}

//===--- Framing ----------------------------------------------------------===//

std::vector<uint8_t> server::frame(FrameKind K,
                                   const std::vector<uint8_t> &Payload) {
  Writer W;
  W.u32(FrameMagic);
  W.u8(static_cast<uint8_t>(K));
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.Bytes.insert(W.Bytes.end(), Payload.begin(), Payload.end());
  return std::move(W.Bytes);
}

Status server::decodeFrameHeader(const uint8_t *Hdr, FrameKind &Kind,
                                 uint32_t &Len) {
  Reader R(Hdr, FrameHeaderBytes);
  uint32_t Magic = R.u32();
  uint8_t K = R.u8();
  uint32_t L = R.u32();
  if (Magic != FrameMagic)
    return malformed("bad frame magic");
  if (L > MaxPayload)
    return malformed("frame length " + std::to_string(L) +
                     " exceeds the " + std::to_string(MaxPayload) +
                     "-byte cap");
  switch (K) {
  case static_cast<uint8_t>(FrameKind::RunReq):
  case static_cast<uint8_t>(FrameKind::StatsReq):
  case static_cast<uint8_t>(FrameKind::Ping):
  case static_cast<uint8_t>(FrameKind::RunResp):
  case static_cast<uint8_t>(FrameKind::StatsResp):
  case static_cast<uint8_t>(FrameKind::Pong):
    break;
  default:
    return malformed("unknown frame kind " + std::to_string(K));
  }
  Kind = static_cast<FrameKind>(K);
  Len = L;
  return Status::okStatus();
}

//===--- POSIX stream helpers ---------------------------------------------===//

bool server::readExact(int Fd, void *Buf, size_t N, bool *CleanEof) {
  if (CleanEof)
    *CleanEof = false;
  uint8_t *P = static_cast<uint8_t *>(Buf);
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, P + Got, N - Got);
    if (R > 0) {
      Got += static_cast<size_t>(R);
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    if (R == 0 && Got == 0 && CleanEof)
      *CleanEof = true; // Orderly close between frames.
    return false;
  }
  return true;
}

bool server::writeAll(int Fd, const void *Buf, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  size_t Sent = 0;
  while (Sent < N) {
    // MSG_NOSIGNAL: a vanished client must surface as a failed write,
    // not a SIGPIPE killing the whole service. With SO_SNDTIMEO set on
    // the fd (the server arms it on every accepted connection), a peer
    // that stops reading surfaces here as EAGAIN after the timeout and
    // the write fails -- a stalled client can never pin the writer.
    ssize_t R = ::send(Fd, P + Sent, N - Sent, MSG_NOSIGNAL);
    if (R >= 0) {
      Sent += static_cast<size_t>(R);
      continue;
    }
    if (errno == EINTR)
      continue;
    return false;
  }
  return true;
}

Status server::readFrame(int Fd, FrameKind &Kind,
                         std::vector<uint8_t> &Payload, bool &CleanEof) {
  uint8_t Hdr[FrameHeaderBytes];
  if (!readExact(Fd, Hdr, sizeof(Hdr), &CleanEof)) {
    if (CleanEof)
      return Status::okStatus(); // Caller checks CleanEof.
    return malformed("connection closed mid-frame");
  }
  uint32_t Len = 0;
  Status St = decodeFrameHeader(Hdr, Kind, Len);
  if (!St.ok())
    return St;
  Payload.resize(Len);
  if (Len != 0 && !readExact(Fd, Payload.data(), Len, nullptr))
    return malformed("connection closed mid-payload");
  return Status::okStatus();
}

bool server::writeFrame(int Fd, FrameKind K,
                        const std::vector<uint8_t> &Payload) {
  // Never emit a frame the peer's header check would reject: beyond the
  // cap the u32 length field may also have truncated. Failing here reads
  // as a dead peer to the caller, which tears the connection down
  // instead of desynchronizing the stream.
  if (Payload.size() > MaxPayload)
    return false;
  std::vector<uint8_t> F = frame(K, Payload);
  return writeAll(Fd, F.data(), F.size());
}
