//===- server/Server.cpp - Multi-tenant kernel-execution daemon -------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "jit/CodeCache.h"
#include "jit/Tiering.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "support/ThreadPool.h"
#include "target/Target.h"
#include "vapor/Pipeline.h"
#include "vapor/Sweep.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iterator>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace vapor;
using namespace vapor::server;
using vapor::status::Code;
using vapor::status::Layer;
using vapor::status::Status;

namespace {

/// One client connection. The fd is owned here and closed exactly once,
/// when the last reference (reader thread or in-flight job) drops --
/// a mid-request disconnect therefore never races a worker's response
/// write against a closed descriptor.
struct Conn {
  explicit Conn(int Fd) : Fd(Fd) {}
  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }
  Conn(const Conn &) = delete;
  Conn &operator=(const Conn &) = delete;

  int Fd;
  /// Serializes response frames: workers finish out of order, and an
  /// interleaved frame would desynchronize the client's stream.
  std::mutex WriteMu;
  /// Duplicate-id ledger (in-flight now + a bounded window of completed
  /// ids). Per connection: ids are a client-chosen namespace.
  std::mutex IdMu;
  std::set<uint64_t> InFlight;
  std::set<uint64_t> Recent;
  std::deque<uint64_t> RecentOrder;
};

struct TenantCounters {
  uint64_t Active = 0;
  uint64_t Completed = 0;
  uint64_t Rejected = 0;
};

} // namespace

struct Server::Impl {
  explicit Impl(ServerOptions O) : Opts(std::move(O)) {}

  ServerOptions Opts;
  std::vector<target::TargetDesc> Targets = target::allTargets();

  int ListenFd = -1;
  std::atomic<bool> Running{false};
  std::atomic<bool> Draining{false};
  std::unique_ptr<support::ThreadPool> Pool;
  std::thread Acceptor;

  std::mutex ConnMu;
  /// Live reader threads by id. A reader retires itself into
  /// DoneReaders on exit; the acceptor joins-and-drops that list on the
  /// next accept (and drain() joins whatever is left), so a long-lived
  /// daemon serving short-lived connections holds no per-dead-connection
  /// thread handles.
  std::map<uint64_t, std::thread> Readers;
  std::vector<std::thread> DoneReaders;
  uint64_t ReaderSeq = 0;
  /// Connections with a live reader. A reader removes its Conn here on
  /// exit; in-flight jobs keep the Conn (and its fd) alive through their
  /// own shared_ptrs, and the fd closes when the last one drops.
  std::vector<std::shared_ptr<Conn>> Conns;

  std::atomic<uint64_t> Accepted{0}, Completed{0}, Deadlines{0};
  std::atomic<uint64_t> RejOverload{0}, RejQuota{0}, RejDup{0},
      RejMalformed{0}, RejUnavail{0}, RejInvalid{0};
  std::atomic<uint64_t> QueueDepth{0}; ///< Admitted, not yet answered.
  std::atomic<uint64_t> TraceSeq{0};

  mutable std::mutex TenantMu;
  std::map<std::string, TenantCounters> Tenants;

  std::string nextTrace() {
    return "vs-" + std::to_string(TraceSeq.fetch_add(1) + 1);
  }

  /// Drops one tenant line with nothing in flight, together with the
  /// cache's matching stats line when it holds no live bytes. Called
  /// under TenantMu. \returns false when every line is active.
  bool retireIdleTenantLocked() {
    for (auto It = Tenants.begin(); It != Tenants.end(); ++It)
      if (It->second.Active == 0) {
        jit::cache::forgetTenant(It->first);
        Tenants.erase(It);
        return true;
      }
    return false;
  }

  void tenantReject(const std::string &T) {
    std::lock_guard<std::mutex> L(TenantMu);
    auto It = Tenants.find(T);
    if (It != Tenants.end()) {
      ++It->second.Rejected;
      return;
    }
    // A rejection alone must not mint a tenant line past the bound: the
    // global rejection counters already account it.
    if (Tenants.size() >= Opts.MaxTenants && !retireIdleTenantLocked())
      return;
    ++Tenants[T].Rejected;
  }

  /// Best-effort structured rejection/response write. A dead peer is a
  /// disconnect, not an error: the rejection was still accounted. A
  /// *stalled* peer (SO_SNDTIMEO expired mid-frame) is also a
  /// disconnect: the stream is desynchronized, so tear the connection
  /// down rather than let later writers block behind it.
  void sendRunResponse(Conn &C, const RunResponse &R) {
    std::vector<uint8_t> P = encodeRunResponse(R);
    std::lock_guard<std::mutex> L(C.WriteMu);
    if (!writeFrame(C.Fd, FrameKind::RunResp, P))
      ::shutdown(C.Fd, SHUT_RDWR);
  }

  void sendRunError(Conn &C, uint64_t Id, const std::string &Trace,
                    const Status &St, uint32_t RetryAfterMs = 0) {
    RunResponse R;
    R.RequestId = Id;
    R.TraceId = Trace;
    R.Code = static_cast<uint8_t>(St.code());
    R.Layer = static_cast<uint8_t>(St.layer());
    R.Message = St.context();
    R.RetryAfterMs = RetryAfterMs;
    sendRunResponse(C, R);
  }

  StatsResponse snapshot() const {
    StatsResponse S;
    S.Accepted = Accepted.load();
    S.Completed = Completed.load();
    S.RejectedOverload = RejOverload.load();
    S.RejectedQuota = RejQuota.load();
    S.RejectedDuplicate = RejDup.load();
    S.RejectedMalformed = RejMalformed.load();
    S.RejectedUnavailable = RejUnavail.load();
    S.RejectedInvalid = RejInvalid.load();
    S.Deadlines = Deadlines.load();
    S.QueueDepth = QueueDepth.load();
    S.Workers = Pool ? Pool->workerCount() : 0;
    jit::cache::Stats CS = jit::cache::stats();
    S.CacheBytesLive = CS.BytesLive;
    S.CacheCapacity = CS.CapacityBytes;
    S.CacheEvictions = CS.Evictions;
    S.CacheHits = CS.ModuleHits + CS.VerifyHits + CS.CompileHits +
                  CS.ProgramHits + CS.NativeHits;
    S.CacheMisses = CS.ModuleMisses + CS.VerifyMisses + CS.CompileMisses +
                    CS.ProgramMisses + CS.NativeMisses;
    S.RssBytes = processRssBytes();
    if (Opts.Tiered) {
      jit::tiering::EngineStats TS = jit::tiering::engine().stats();
      S.TierInvocations = TS.Invocations;
      S.TierPromotions = TS.Promotions;
      S.TierCompilesOk = TS.CompilesOk;
      S.TierCompilesFailed = TS.CompilesFailed;
      S.TierQueueRejects = TS.QueueRejects;
      S.TierPins = TS.Pins;
    }
    std::map<std::string, TenantLine> Lines;
    {
      std::lock_guard<std::mutex> L(TenantMu);
      for (const auto &KV : Tenants) {
        TenantLine &T = Lines[KV.first];
        T.Tenant = KV.first;
        T.Active = KV.second.Active;
        T.Completed = KV.second.Completed;
        T.Rejected = KV.second.Rejected;
      }
    }
    for (const jit::cache::TenantStats &T : jit::cache::tenantStats()) {
      TenantLine &L = Lines[T.Tenant];
      L.Tenant = T.Tenant;
      L.CacheBytes = T.BytesLive;
      L.CacheEvictions = T.Evictions;
    }
    for (auto &KV : Lines)
      S.Tenants.push_back(std::move(KV.second));
    return S;
  }

  /// Admission control + scheduling for one decoded run request. Runs on
  /// the connection's reader thread; every rejection is answered
  /// immediately so the bounded queue never holds doomed work.
  void handleRun(const std::shared_ptr<Conn> &C, RunRequest Req) {
    std::string Trace = nextTrace();

    if (Draining.load()) {
      ++RejUnavail;
      tenantReject(Req.Tenant);
      sendRunError(*C, Req.RequestId, Trace,
                   Status::error(Code::Unavailable, Layer::Server,
                                 "server is draining; resubmit elsewhere"));
      return;
    }

    {
      std::lock_guard<std::mutex> L(C->IdMu);
      if (C->InFlight.count(Req.RequestId) ||
          C->Recent.count(Req.RequestId)) {
        ++RejDup;
        tenantReject(Req.Tenant);
        sendRunError(*C, Req.RequestId, Trace,
                     Status::error(Code::DuplicateRequest, Layer::Server,
                                   "request id " +
                                       std::to_string(Req.RequestId) +
                                       " already seen on this connection"));
        return;
      }
    }

    const target::TargetDesc *TD =
        Req.Target.empty()
            ? &Targets.front()
            : sweep::targetByNameOrNull(Targets, Req.Target);
    if (!TD) {
      ++RejInvalid;
      tenantReject(Req.Tenant);
      sendRunError(*C, Req.RequestId, Trace,
                   Status::error(Code::InvalidArgument, Layer::Server,
                                 "unknown target '" + Req.Target + "'"));
      return;
    }

    // Admission gate. The injected QueueFull fault is scoped to this
    // request's thread so a test can exercise the Overloaded path
    // without actually filling the queue.
    bool QueueFull = false;
    {
      std::optional<faultinject::ScopedFault> F;
      if (Req.Inject ==
          static_cast<uint8_t>(faultinject::SiteClass::QueueFull))
        F.emplace(faultinject::SiteClass::QueueFull);
      QueueFull = faultinject::shouldFire(faultinject::SiteClass::QueueFull);
    }
    if (!QueueFull && QueueDepth.load() >= Opts.MaxQueue)
      QueueFull = true;
    if (QueueFull) {
      ++RejOverload;
      tenantReject(Req.Tenant);
      static obs::Counter Overloads("server.overloaded");
      Overloads.add(1);
      sendRunError(*C, Req.RequestId, Trace,
                   Status::error(Code::Overloaded, Layer::Server,
                                 "admission queue full (" +
                                     std::to_string(Opts.MaxQueue) +
                                     " in flight); retry after hint"),
                   Opts.RetryAfterMs);
      return;
    }

    // Quota decision under TenantMu, response write OUTSIDE it: the
    // write can block until the send timeout, and a client that stops
    // reading must stall only its own connection, never the global
    // admission/completion lock.
    std::optional<Status> QuotaReject;
    {
      std::lock_guard<std::mutex> L(TenantMu);
      auto It = Tenants.find(Req.Tenant);
      if (It == Tenants.end()) {
        if (Tenants.size() >= Opts.MaxTenants && !retireIdleTenantLocked())
          QuotaReject = Status::error(
              Code::QuotaExceeded, Layer::Server,
              "tenant table full (" + std::to_string(Opts.MaxTenants) +
                  " active tenants); retry after hint");
        else
          It = Tenants.emplace(Req.Tenant, TenantCounters{}).first;
      }
      if (!QuotaReject) {
        TenantCounters &T = It->second;
        if (T.Active >= Opts.MaxPerTenant) {
          ++T.Rejected;
          QuotaReject = Status::error(
              Code::QuotaExceeded, Layer::Server,
              "tenant '" + Req.Tenant + "' at its " +
                  std::to_string(Opts.MaxPerTenant) +
                  "-request in-flight cap");
        } else {
          ++T.Active;
        }
      }
    }
    if (QuotaReject) {
      ++RejQuota;
      sendRunError(*C, Req.RequestId, Trace, *QuotaReject,
                   Opts.RetryAfterMs);
      return;
    }
    ++QueueDepth;
    {
      std::lock_guard<std::mutex> L(C->IdMu);
      C->InFlight.insert(Req.RequestId);
    }
    ++Accepted;
    static obs::Counter Admitted("server.accepted");
    Admitted.add(1);

    Pool->submit(
        [this, C, TD, Trace = std::move(Trace),
         Req = std::move(Req)]() mutable { runJob(C, TD, Trace, Req); });
  }

  /// Executes one admitted request on a pool worker and writes (or, under
  /// an injected SocketIo fault, deliberately drops) the response.
  void runJob(const std::shared_ptr<Conn> &C, const target::TargetDesc *TD,
              const std::string &Trace, RunRequest &Req) {
    RunOptions RO;
    RO.Target = *TD;
    RO.UseNative = Req.UseNative;
    RO.VerifyBytecode = Req.VerifyBytecode;
    RO.UseCodeCache = Req.UseCodeCache;
    RO.Elide = static_cast<target::ElisionMode>(Req.Elide);
    uint64_t Fuel =
        Req.DeadlineFuel ? Req.DeadlineFuel : Opts.DefaultDeadlineFuel;
    if (Opts.MaxDeadlineFuel && Fuel > Opts.MaxDeadlineFuel)
      Fuel = Opts.MaxDeadlineFuel;
    RO.DeadlineFuel = Fuel;
    RO.Tiered = Opts.Tiered;

    ModuleWorkload W;
    W.Name = Req.Name;
    W.Bytecode = std::move(Req.Bytecode);
    W.IntParams = std::move(Req.IntParams);
    W.FPParams = std::move(Req.FPParams);
    W.FillSeed = Req.FillSeed;

    RunResponse Resp;
    Resp.RequestId = Req.RequestId;
    Resp.TraceId = Trace;

    bool DropWrite = false;
    {
      // Request-scoped fault injection (worker-side classes) and tenant
      // attribution for every cache insertion this run performs.
      std::optional<faultinject::ScopedFault> F;
      if (Req.Inject != 0xff &&
          Req.Inject !=
              static_cast<uint8_t>(faultinject::SiteClass::QueueFull))
        F.emplace(static_cast<faultinject::SiteClass>(Req.Inject));
      jit::cache::ScopedTenant Tenant(Req.Tenant);

      RunOutcome Out = runEncodedModule(W, RO);

      Resp.Tier = static_cast<uint8_t>(Out.Tier);
      Resp.Demotions = static_cast<uint32_t>(Out.Demotions.size());
      Resp.Retries = Out.Retries;
      Resp.Cycles = Out.Cycles;
      if (!Out.Terminal.ok()) {
        Resp.Code = static_cast<uint8_t>(Out.Terminal.code());
        Resp.Layer = static_cast<uint8_t>(Out.Terminal.layer());
        Resp.Message = Out.Terminal.context();
        if (Out.Terminal.code() == Code::DeadlineExceeded) {
          ++Deadlines;
          static obs::Counter DL("server.deadline_exceeded");
          DL.add(1);
        }
      } else if (Out.Mem) {
        // Every lane costs 8 bytes on the wire whatever the element
        // kind, so narrow-element modules inflate when dumped (an I8
        // array ships at 8x its memory size). Size the frame before
        // building it: an over-cap RunResp would fail the peer's
        // header length check and desynchronize the stream.
        uint64_t Wire = 64 + Trace.size();
        for (uint32_t A = 0; A < Out.Mem->arrayCount(); ++A) {
          const ir::ArrayInfo &AI = Out.Mem->info(A);
          Wire += 9 + AI.Name.size() + 8 * AI.NumElems;
        }
        if (Wire > MaxPayload) {
          Resp.Code = static_cast<uint8_t>(Code::InvalidArgument);
          Resp.Layer = static_cast<uint8_t>(status::Layer::Server);
          Resp.Message = "result arrays need " + std::to_string(Wire) +
                         " wire bytes, over the " +
                         std::to_string(MaxPayload) +
                         "-byte response cap";
        } else {
          for (uint32_t A = 0; A < Out.Mem->arrayCount(); ++A) {
            const ir::ArrayInfo &AI = Out.Mem->info(A);
            ArrayDump D;
            D.Name = AI.Name;
            D.IsFP = ir::isFloatKind(AI.Elem) ? 1 : 0;
            D.Lanes.reserve(AI.NumElems);
            for (uint64_t E = 0; E < AI.NumElems; ++E) {
              if (D.IsFP) {
                double V = Out.Mem->peekFP(A, E);
                uint64_t Bits;
                std::memcpy(&Bits, &V, sizeof(Bits));
                D.Lanes.push_back(Bits);
              } else {
                D.Lanes.push_back(
                    static_cast<uint64_t>(Out.Mem->peekInt(A, E)));
              }
            }
            Resp.Arrays.push_back(std::move(D));
          }
        }
      }

      // Injected response-write drop: the client sees a request that
      // never answers (its timeout/disconnect path), the server side
      // still completes and accounts the run.
      DropWrite = faultinject::shouldFire(faultinject::SiteClass::SocketIo);
    }

    if (!DropWrite)
      sendRunResponse(*C, Resp);

    {
      std::lock_guard<std::mutex> L(C->IdMu);
      C->InFlight.erase(Req.RequestId);
      C->Recent.insert(Req.RequestId);
      C->RecentOrder.push_back(Req.RequestId);
      while (C->RecentOrder.size() > Opts.DuplicateWindow) {
        C->Recent.erase(C->RecentOrder.front());
        C->RecentOrder.pop_front();
      }
    }
    {
      std::lock_guard<std::mutex> L(TenantMu);
      TenantCounters &T = Tenants[Req.Tenant];
      --T.Active;
      ++T.Completed;
    }
    --QueueDepth;
    ++Completed;
    static obs::Counter Done("server.completed");
    Done.add(1);
  }

  /// Per-connection frame loop. Any framing violation tears the
  /// connection down (a hostile length prefix makes the stream
  /// unrecoverable); payload-level garbage is answered and survives.
  /// On exit the reader retires its own Conn and thread-handle entries
  /// so neither grows with connection churn.
  void readerLoop(const std::shared_ptr<Conn> &C, uint64_t Id) {
    while (true) {
      FrameKind Kind;
      std::vector<uint8_t> Payload;
      bool CleanEof = false;
      Status St = readFrame(C->Fd, Kind, Payload, CleanEof);
      if (CleanEof)
        break; // Orderly close between frames.
      if (!St.ok()) {
        // Framing violation or mid-frame disconnect: answer best-effort
        // (the peer may still read) and drop the connection.
        ++RejMalformed;
        sendRunError(*C, 0, nextTrace(), St);
        break;
      }
      switch (Kind) {
      case FrameKind::Ping: {
        std::lock_guard<std::mutex> L(C->WriteMu);
        if (!writeFrame(C->Fd, FrameKind::Pong, Payload))
          ::shutdown(C->Fd, SHUT_RDWR); // Stalled/vanished peer.
        continue;
      }
      case FrameKind::StatsReq: {
        std::vector<uint8_t> P = encodeStatsResponse(snapshot());
        std::lock_guard<std::mutex> L(C->WriteMu);
        if (!writeFrame(C->Fd, FrameKind::StatsResp, P))
          ::shutdown(C->Fd, SHUT_RDWR); // Stalled/vanished peer.
        continue;
      }
      case FrameKind::RunReq: {
        RunRequest Req;
        Status DSt = decodeRunRequest(Payload.data(), Payload.size(), Req);
        if (!DSt.ok()) {
          // The payload was length-delimited, so the stream is still in
          // sync: answer and keep serving this connection. No per-tenant
          // accounting here -- the tenant field of a malformed request
          // is attacker-controlled garbage and must not mint map lines.
          ++RejMalformed;
          sendRunError(*C, Req.RequestId, nextTrace(), DSt);
          continue;
        }
        handleRun(C, std::move(Req));
        continue;
      }
      default:
        // A client sending response kinds is out of contract.
        ++RejMalformed;
        sendRunError(*C, 0, nextTrace(),
                     Status::error(Code::MalformedFrame, Layer::Server,
                                   "response frame kind from client"));
        break;
      }
      break;
    }
    ::shutdown(C->Fd, SHUT_RD);

    // Self-reap: drop the Conn from the live set (in-flight jobs keep it
    // alive; the fd closes on the last shared_ptr drop) and retire this
    // thread's handle for the acceptor or drain() to join. If drain()
    // already claimed the handle, the entry is simply gone.
    std::lock_guard<std::mutex> L(ConnMu);
    for (auto It = Conns.begin(); It != Conns.end(); ++It)
      if (It->get() == C.get()) {
        Conns.erase(It);
        break;
      }
    auto It = Readers.find(Id);
    if (It != Readers.end()) {
      DoneReaders.push_back(std::move(It->second));
      Readers.erase(It);
    }
  }

  void acceptLoop() {
    while (true) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        break; // Listener shut down: drain in progress.
      }
      if (Draining.load()) {
        ::close(Fd);
        continue;
      }
      // A peer that stops reading must become a failed write, not an
      // indefinitely blocked worker: see writeAll.
      if (Opts.WriteTimeoutMs) {
        timeval TV{};
        TV.tv_sec = Opts.WriteTimeoutMs / 1000;
        TV.tv_usec = static_cast<long>(Opts.WriteTimeoutMs % 1000) * 1000;
        (void)::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV));
      }
      auto C = std::make_shared<Conn>(Fd);
      std::lock_guard<std::mutex> L(ConnMu);
      // Join readers that already retired themselves, so churny clients
      // leave no finished-thread handles behind.
      for (std::thread &T : DoneReaders)
        T.join();
      DoneReaders.clear();
      uint64_t Id = ++ReaderSeq;
      Conns.push_back(C);
      Readers.emplace(Id,
                      std::thread([this, C, Id] { readerLoop(C, Id); }));
    }
  }
};

Server::Server(ServerOptions Opts)
    : I(std::make_unique<Impl>(std::move(Opts))) {}

Server::~Server() { drain(); }

Status Server::start() {
  if (I->Running.load())
    return Status::error(Code::Internal, Layer::Server, "already started");
  if (I->Opts.SocketPath.empty())
    return Status::error(Code::InvalidArgument, Layer::Server,
                         "empty socket path");

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (I->Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error(Code::InvalidArgument, Layer::Server,
                         "socket path too long: " + I->Opts.SocketPath);
  std::memcpy(Addr.sun_path, I->Opts.SocketPath.c_str(),
              I->Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error(Code::Internal, Layer::Server,
                         std::string("socket(): ") + std::strerror(errno));
  ::unlink(I->Opts.SocketPath.c_str()); // Stale path from a dead server.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int E = errno;
    ::close(Fd);
    return Status::error(Code::Internal, Layer::Server,
                         "bind(" + I->Opts.SocketPath +
                             "): " + std::strerror(E));
  }
  if (::listen(Fd, 128) < 0) {
    int E = errno;
    ::close(Fd);
    ::unlink(I->Opts.SocketPath.c_str());
    return Status::error(Code::Internal, Layer::Server,
                         std::string("listen(): ") + std::strerror(E));
  }

  if (I->Opts.CacheCapacityBytes)
    jit::cache::setCapacity(I->Opts.CacheCapacityBytes);
  I->Pool = std::make_unique<support::ThreadPool>(
      I->Opts.Workers ? I->Opts.Workers
                      : support::ThreadPool::defaultWorkerCount());
  if (I->Opts.Tiered)
    // Background compiles share the request pool's low-priority lane:
    // an otherwise-idle worker promotes; a loaded pool serves requests
    // first and compiles when the request queues drain.
    jit::tiering::engine().attachPool(I->Pool.get());
  I->ListenFd = Fd;
  I->Draining = false;
  I->Running = true;
  I->Acceptor = std::thread([this] { I->acceptLoop(); });
  return Status::okStatus();
}

void Server::drain() {
  bool Expected = true;
  if (!I->Running.compare_exchange_strong(Expected, false))
    return;
  I->Draining = true;

  // 1. Stop accepting connections (shutdown wakes the blocked accept).
  if (I->ListenFd >= 0)
    ::shutdown(I->ListenFd, SHUT_RDWR);
  if (I->Acceptor.joinable())
    I->Acceptor.join();
  if (I->ListenFd >= 0) {
    ::close(I->ListenFd);
    I->ListenFd = -1;
  }

  // 2. Stop reading new requests: wake every reader with a read-side
  // shutdown; in-flight jobs keep their write side.
  std::vector<std::thread> Readers;
  {
    std::lock_guard<std::mutex> L(I->ConnMu);
    for (const auto &C : I->Conns)
      ::shutdown(C->Fd, SHUT_RD);
    for (auto &KV : I->Readers)
      Readers.push_back(std::move(KV.second));
    I->Readers.clear();
    Readers.insert(Readers.end(),
                   std::make_move_iterator(I->DoneReaders.begin()),
                   std::make_move_iterator(I->DoneReaders.end()));
    I->DoneReaders.clear();
  }
  for (std::thread &T : Readers)
    T.join();

  // 3. Finish everything already admitted -- each job writes its
  // response before the connection objects are released. Tiered mode:
  // detach the hotness engine first (attachPool drains outstanding
  // background compiles) so nothing submits to the pool we are about to
  // destroy.
  if (I->Opts.Tiered)
    jit::tiering::engine().attachPool(nullptr);
  if (I->Pool)
    I->Pool->wait();
  I->Pool.reset();

  {
    std::lock_guard<std::mutex> L(I->ConnMu);
    I->Conns.clear(); // Last refs: fds close here.
  }
  if (!I->Opts.SocketPath.empty())
    ::unlink(I->Opts.SocketPath.c_str());
}

bool Server::running() const { return I->Running.load(); }

StatsResponse Server::statsSnapshot() const { return I->snapshot(); }

const ServerOptions &Server::options() const { return I->Opts; }

uint64_t server::processRssBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Size = 0, Resident = 0;
  int N = std::fscanf(F, "%llu %llu", &Size, &Resident);
  std::fclose(F);
  if (N != 2)
    return 0;
  long Page = ::sysconf(_SC_PAGESIZE);
  return Resident * static_cast<uint64_t>(Page > 0 ? Page : 4096);
}
