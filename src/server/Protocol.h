//===- server/Protocol.h - Execution-service wire protocol -----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/server/README.md for the
// framing rules, the admission-control semantics, and the tenant model.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed wire protocol between vapor-serve and its clients.
/// Everything here is PURE encode/decode over byte buffers -- no sockets,
/// no global state -- so the protocol fuzz tests can drive every parser
/// directly with hostile inputs. The thin POSIX read/write helpers at the
/// bottom are the only functions that touch a file descriptor.
///
/// Framing (all integers little-endian):
///
///   frame   := magic:u32  kind:u8  len:u32  payload[len]
///   magic   =  0x56535631 ("1VSV" on the wire)
///   len     <= MaxPayload (8 MiB) -- a larger prefix is a framing
///              violation and the connection is torn down, because the
///              stream cannot be resynchronized without trusting the
///              hostile length.
///
/// Payloads are structs of fixed-width integers and u32-length-prefixed
/// strings. Every decoder is total: any truncation, overrun, or bad enum
/// value yields a MalformedFrame Status, never UB and never an abort.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_SERVER_PROTOCOL_H
#define VAPOR_SERVER_PROTOCOL_H

#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vapor {
namespace server {

constexpr uint32_t FrameMagic = 0x56535631u;
constexpr uint32_t MaxPayload = 8u << 20;
constexpr size_t FrameHeaderBytes = 9; ///< magic + kind + len.
/// Tenant names are accounting keys (quota tables, per-tenant cache
/// lines), so their size is bounded at decode time: a longer name is a
/// malformed request, never a multi-kilobyte map key.
constexpr uint32_t MaxTenantBytes = 64;

/// Frame kinds. Responses set the high bit of the request they answer.
enum class FrameKind : uint8_t {
  RunReq = 1,   ///< RunRequest payload.
  StatsReq = 2, ///< Empty payload.
  Ping = 3,     ///< Arbitrary payload, echoed back.
  RunResp = 0x81,
  StatsResp = 0x82,
  Pong = 0x83,
};

/// Whether \p K is a kind a *client* may send (the server rejects
/// response kinds arriving on its read side as malformed).
bool isRequestKind(uint8_t K);

//===--- Payload structs --------------------------------------------------===//

/// One kernel-execution request: an already-vectorized bytecode module
/// plus everything the executor needs to run it. The server trusts no
/// field; the bytecode goes through the full decode/verify gate.
struct RunRequest {
  uint64_t RequestId = 0; ///< Client-chosen; unique per connection.
  std::string Tenant;     ///< Quota/cache accounting identity.
  std::string Name;       ///< Label for traces and error messages.
  std::string Target;     ///< Target model name ("sse", "avx", ...).
  bool UseNative = false;
  bool VerifyBytecode = true;
  bool UseCodeCache = true;
  uint8_t Elide = 1;        ///< target::ElisionMode value (validated).
  uint64_t DeadlineFuel = 0; ///< 0 = accept the server's default budget.
  uint64_t FillSeed = 7;
  /// Test-only fault injection scoped to THIS request: a
  /// faultinject::SiteClass value (0xff = none, the default). The server
  /// arms the class around this request's admission (QueueFull) or
  /// execution (everything else) on the handling thread only; other
  /// tenants' requests are untouched. The replay load driver uses this
  /// to exercise failure paths under real concurrency.
  uint8_t Inject = 0xff;
  std::map<std::string, int64_t> IntParams;
  std::map<std::string, double> FPParams;
  std::vector<uint8_t> Bytecode;
};

/// One output array of a successful run: element values as 64-bit lanes
/// (integer value, or the bit pattern of the double for FP arrays).
struct ArrayDump {
  std::string Name;
  uint8_t IsFP = 0;
  std::vector<uint64_t> Lanes;
};

/// The answer to a RunRequest. Status fields mirror status::Status; Ok
/// responses carry the executed tier, the demotion/retry counts, the
/// modeled cycles, and the full output arrays so clients can golden-check
/// results without trusting the server.
struct RunResponse {
  uint64_t RequestId = 0;
  std::string TraceId; ///< Server-assigned correlation id.
  uint8_t Code = 0;    ///< status::Code (0 = ok).
  uint8_t Layer = 0;   ///< status::Layer.
  std::string Message; ///< Status context (empty when ok).
  uint8_t Tier = 0;    ///< ExecTier that produced the results.
  uint32_t Demotions = 0;
  uint32_t Retries = 0;
  uint64_t Cycles = 0;
  uint32_t RetryAfterMs = 0; ///< Backoff hint; nonzero with Overloaded.
  std::vector<ArrayDump> Arrays;
};

/// Per-tenant service + cache accounting line.
struct TenantLine {
  std::string Tenant;
  uint64_t Active = 0;    ///< In-flight requests right now.
  uint64_t Completed = 0; ///< Lifetime completed runs.
  uint64_t Rejected = 0;  ///< Lifetime admission rejections.
  uint64_t CacheBytes = 0;
  uint64_t CacheEvictions = 0;
};

/// The answer to a StatsReq: service counters, code-cache telemetry, and
/// the per-tenant breakdown. The replay driver asserts bounded RSS and
/// observed evictions through this.
struct StatsResponse {
  uint64_t Accepted = 0;
  uint64_t Completed = 0;
  uint64_t RejectedOverload = 0;
  uint64_t RejectedQuota = 0;
  uint64_t RejectedDuplicate = 0;
  uint64_t RejectedMalformed = 0;
  uint64_t RejectedUnavailable = 0;
  uint64_t RejectedInvalid = 0; ///< Semantic rejections (bad target...).
  uint64_t Deadlines = 0;       ///< Runs stopped by budget exhaustion.
  uint64_t QueueDepth = 0;      ///< Queued-or-running right now.
  uint64_t Workers = 0;
  uint64_t CacheBytesLive = 0;
  uint64_t CacheCapacity = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CacheHits = 0;   ///< Sum across all five artifact kinds.
  uint64_t CacheMisses = 0;
  uint64_t RssBytes = 0;    ///< Resident set of the server process.
  /// Tiered-execution telemetry (jit/Tiering.h); all zero when the
  /// server runs without --tiered.
  uint64_t TierInvocations = 0; ///< Runs that ticked the hotness engine.
  uint64_t TierPromotions = 0;  ///< Ready-tier improvements applied.
  uint64_t TierCompilesOk = 0;  ///< Background compiles that landed.
  uint64_t TierCompilesFailed = 0;
  uint64_t TierQueueRejects = 0; ///< Compiles skipped: queue bound hit.
  uint64_t TierPins = 0;         ///< Demotion pins recorded.
  std::vector<TenantLine> Tenants;
};

//===--- Pure encode/decode -----------------------------------------------===//
// Encoders produce the *payload* only; frame() wraps it. Decoders take
// the payload bytes and return a MalformedFrame Status on any violation.

std::vector<uint8_t> encodeRunRequest(const RunRequest &R);
status::Status decodeRunRequest(const uint8_t *Data, size_t Len,
                                RunRequest &Out);

std::vector<uint8_t> encodeRunResponse(const RunResponse &R);
status::Status decodeRunResponse(const uint8_t *Data, size_t Len,
                                 RunResponse &Out);

std::vector<uint8_t> encodeStatsResponse(const StatsResponse &S);
status::Status decodeStatsResponse(const uint8_t *Data, size_t Len,
                                   StatsResponse &Out);

/// Wraps \p Payload in a frame header.
std::vector<uint8_t> frame(FrameKind K, const std::vector<uint8_t> &Payload);

/// Validates a frame header. On success sets \p Kind and \p Len.
status::Status decodeFrameHeader(const uint8_t *Hdr, FrameKind &Kind,
                                 uint32_t &Len);

//===--- POSIX stream helpers ---------------------------------------------===//

/// Reads exactly \p N bytes. \returns false on EOF or error (EINTR is
/// retried; a clean EOF before any byte sets \p CleanEof when non-null).
bool readExact(int Fd, void *Buf, size_t N, bool *CleanEof = nullptr);

/// Writes all \p N bytes (EINTR retried, SIGPIPE suppressed). \returns
/// false when the peer is gone -- the caller treats that as a
/// disconnect, never an error worth crashing over.
bool writeAll(int Fd, const void *Buf, size_t N);

/// Reads one frame. \p CleanEof distinguishes an orderly close between
/// frames from a mid-frame truncation (the latter is a protocol error).
status::Status readFrame(int Fd, FrameKind &Kind,
                         std::vector<uint8_t> &Payload, bool &CleanEof);

/// Frames and writes in one call. \returns false on a dead peer.
bool writeFrame(int Fd, FrameKind K, const std::vector<uint8_t> &Payload);

} // namespace server
} // namespace vapor

#endif // VAPOR_SERVER_PROTOCOL_H
