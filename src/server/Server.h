//===- server/Server.h - Multi-tenant kernel-execution daemon --*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/server/README.md for the
// wire protocol, deadline/backpressure semantics, and the tenant model.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vapor::server -- a long-running multi-tenant execution service over a
/// local AF_UNIX stream socket. Clients submit (bytecode module, target,
/// options, parameters); the server validates, admission-controls, and
/// schedules each accepted request onto the shared work-stealing
/// ThreadPool, then answers with the RunOutcome essentials: executed
/// tier, structured Status, modeled cycles, a trace id, and the full
/// output arrays for client-side golden checking.
///
/// Robustness contract (the reason this subsystem exists):
///
///  - Deadlines: every run carries a deterministic dispatch budget
///    (RunOptions::DeadlineFuel), checked in the VM dispatch loop and at
///    the native tier's shim boundary. A runaway kernel costs one
///    DeadlineExceeded response, never a wedged worker.
///  - Backpressure: the admission queue is bounded. Past the bound the
///    request is REJECTED immediately with Overloaded plus a retry-after
///    hint; work already admitted is never dropped.
///  - Tenant isolation: per-tenant in-flight caps (QuotaExceeded when
///    hit) and per-tenant code-cache accounting. One tenant's abusive
///    traffic degrades into that tenant's rejections, not global stalls.
///  - Fail closed: tenant bytecode runs under the executor's server mode
///    -- the chain stops after the forced-scalar JIT tier rather than
///    falling back to the checkpoint-free interpreter.
///  - Graceful drain: SIGTERM (vapor-serve) calls drain(): stop
///    accepting, answer queued work, reject new runs with Unavailable,
///    then tear down. In-flight requests always get a response.
///
/// Every failure an untrusted peer can cause -- truncated frames,
/// hostile length prefixes, garbage payloads, mid-request disconnects,
/// duplicate ids -- is answered (or logged) as a structured Status; no
/// input sequence may abort the process.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_SERVER_SERVER_H
#define VAPOR_SERVER_SERVER_H

#include "server/Protocol.h"
#include "support/Status.h"

#include <memory>
#include <string>

namespace vapor {
namespace server {

struct ServerOptions {
  std::string SocketPath; ///< AF_UNIX path; unlinked on bind and close.
  unsigned Workers = 0;   ///< Execution workers; 0 = host concurrency.
  /// Admission bound: queued-or-running requests past this are rejected
  /// with Overloaded (+RetryAfterMs hint).
  uint32_t MaxQueue = 256;
  uint32_t MaxPerTenant = 64; ///< Per-tenant in-flight cap.
  uint32_t RetryAfterMs = 50; ///< Backoff hint sent with Overloaded.
  /// Code-cache budget installed at start() (0 = leave unbounded).
  size_t CacheCapacityBytes = 64u << 20;
  /// Dispatch budget applied when a request asks for 0 ("server
  /// default"). A client-supplied budget is clamped to MaxDeadlineFuel
  /// (0 = no clamp). Never run unbounded tenant code.
  uint64_t DefaultDeadlineFuel = 50000000;
  uint64_t MaxDeadlineFuel = 0;
  /// Completed request ids remembered per connection for duplicate
  /// detection (in-flight ids are always checked).
  uint32_t DuplicateWindow = 4096;
  /// SO_SNDTIMEO installed on every accepted connection (0 = block
  /// forever). A peer that stops reading for longer than this while the
  /// server has a response to write is treated as a disconnect, so a
  /// slow reader can never pin a pool worker or the reader thread.
  uint32_t WriteTimeoutMs = 5000;
  /// Bound on distinct tenant accounting lines (quota counters plus the
  /// code cache's per-tenant stats). Past it, an idle line (nothing in
  /// flight) is retired to make room; when every line is active, runs
  /// from brand-new tenants are rejected with QuotaExceeded. Keeps a
  /// hostile unique-tenant flood from growing server memory unboundedly.
  uint32_t MaxTenants = 256;
  /// Tiered execution (jit/Tiering.h): run each request at the cheapest
  /// READY tier (cold modules enter at the forced-scalar JIT -- the
  /// fail-closed floor -- instead of paying the full verify+vector-JIT
  /// [+native] compile on the request path) and promote hot
  /// (module × target × options) cells off-thread on this server's own
  /// pool at background priority, so compiles never starve request
  /// execution. Promotion counters are reported in StatsResponse.
  bool Tiered = false;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server(); ///< Calls drain() if still running.

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket, installs the cache capacity, spawns the worker
  /// pool and the accept thread. Fails (Server layer) when the path
  /// cannot be bound.
  status::Status start();

  /// Graceful shutdown: stop accepting connections, answer everything
  /// already admitted, reject new run requests with Unavailable, join
  /// every thread, close every fd, unlink the socket. Idempotent.
  void drain();

  bool running() const;

  /// Point-in-time service counters (same data the StatsReq frame
  /// returns, minus nothing): tests assert on this without a socket.
  StatsResponse statsSnapshot() const;

  const ServerOptions &options() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Resident-set size of the calling process in bytes (Linux /proc; 0
/// when unavailable). Exposed for the replay driver's RSS bound.
uint64_t processRssBytes();

} // namespace server
} // namespace vapor

#endif // VAPOR_SERVER_SERVER_H
