//===- kernels/Polybench.cpp - Polybench kernel subset ----------------------===//
//
// Part of the Vapor SIMD reproduction.
//
// The 16 Polybench kernels of Fig. 6, rebuilt in scalar IR at matrix size
// 32 (paper: 128). As in the paper, the "manual transformations" that
// expose vectorization — loop interchange, array layout transposition,
// scalar promotion — are pre-applied to the source (Sec. IV-B); where our
// conservative dependence policy would reject the paper's in-place sweeps
// (adi), the sweep reads from a separate input plane, preserving the
// access pattern that is being measured. lu, ludcmp and seidel keep their
// loop-carried recurrences and (like the paper's) largely stay scalar.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include "ir/Builder.h"
#include "ir/Verifier.h"

using namespace vapor;
using namespace vapor::kernels;
using namespace vapor::ir;

namespace {

constexpr int64_t N = 32;
constexpr int64_t Slack = 64;

uint32_t mat(Function &F, const std::string &Name) {
  return F.addArray(Name, ScalarKind::F32, N * N + Slack, 4);
}

uint32_t vec(Function &F, const std::string &Name) {
  return F.addArray(Name, ScalarKind::F32, N + Slack, 4);
}

struct PB {
  Kernel K;
  IrBuilder B;
  ValueId NV;

  explicit PB(const std::string &Name) : B(K.Source) {
    K.Name = Name;
    K.Suite = "polybench";
    K.Source.Name = Name;
    K.Tolerance = 5e-2;
    NV = B.constIdx(N);
  }

  ValueId idx2(ValueId I, ValueId J) { return B.add(B.mul(I, NV), J); }

  Kernel finish() {
    verifyOrDie(K.Source);
    return std::move(K);
  }
};

/// C[i][j] += s * A[i][k] * B[k][j] over the whole matrix (ikj order).
void emitMatMulAcc(PB &P, uint32_t C, uint32_t A, uint32_t Bm,
                   ValueId Scale = NoValue) {
  IrBuilder &B = P.B;
  auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  auto LK = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Aik = B.load(A, P.idx2(LI.indVar(), LK.indVar()));
  if (Scale != NoValue)
    Aik = B.mul(Aik, Scale);
  auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId CIdx = P.idx2(LI.indVar(), LJ.indVar());
  ValueId BIdx = P.idx2(LK.indVar(), LJ.indVar());
  B.store(C, CIdx, B.add(B.load(C, CIdx), B.mul(Aik, B.load(Bm, BIdx))));
  B.endLoop(LJ);
  B.endLoop(LK);
  B.endLoop(LI);
}

/// out[i][j] = v for the whole matrix.
void emitMatFill(PB &P, uint32_t M, ValueId V) {
  IrBuilder &B = P.B;
  auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  B.store(M, P.idx2(LI.indVar(), LJ.indVar()), V);
  B.endLoop(LJ);
  B.endLoop(LI);
}

/// Row-dot: Dst[i] = Σ_j M[i][j] * V[j] for every i.
void emitMatVec(PB &P, uint32_t Dst, uint32_t M, uint32_t V) {
  IrBuilder &B = P.B;
  auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Zero = B.constFP(ScalarKind::F32, 0);
  auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Phi = B.addCarried(LJ, Zero);
  ValueId Prod = B.mul(B.load(M, P.idx2(LI.indVar(), LJ.indVar())),
                       B.load(V, LJ.indVar()));
  B.setCarriedNext(LJ, Phi, B.add(Phi, Prod));
  B.endLoop(LJ);
  B.store(Dst, LI.indVar(), B.carriedResult(LJ, Phi));
  B.endLoop(LI);
}

Kernel correlation() {
  PB P("correlation_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t D = mat(F, "data");
  uint32_t Mean = vec(F, "mean");
  uint32_t Std = vec(F, "stddev");
  uint32_t Corr = mat(F, "corr");
  ValueId InvN = B.constFP(ScalarKind::F32, 1.0 / N);

  // Per-row mean.
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Phi = B.addCarried(LJ, Zero);
    B.setCarriedNext(LJ, Phi,
                     B.add(Phi, B.load(D, P.idx2(LI.indVar(), LJ.indVar()))));
    B.endLoop(LJ);
    B.store(Mean, LI.indVar(), B.mul(B.carriedResult(LJ, Phi), InvN));
    B.endLoop(LI);
  }
  // Per-row stddev (with a stabilizer so random data never divides by 0).
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Mi = B.load(Mean, LI.indVar());
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Phi = B.addCarried(LJ, Zero);
    ValueId C = B.sub(B.load(D, P.idx2(LI.indVar(), LJ.indVar())), Mi);
    B.setCarriedNext(LJ, Phi, B.add(Phi, B.mul(C, C)));
    B.endLoop(LJ);
    ValueId Var = B.add(B.mul(B.carriedResult(LJ, Phi), InvN),
                        B.constFP(ScalarKind::F32, 0.1));
    B.store(Std, LI.indVar(), B.sqrtOp(Var));
    B.endLoop(LI);
  }
  // Normalize in place.
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Mi = B.load(Mean, LI.indVar());
    ValueId Si = B.load(Std, LI.indVar());
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
    B.store(D, Idx, B.div(B.sub(B.load(D, Idx), Mi), Si));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  // corr[i][j] = Σ_k d[i][k]*d[j][k] (row-major after the paper's layout
  // transposition).
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto LK = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Phi = B.addCarried(LK, Zero);
    ValueId Prod = B.mul(B.load(D, P.idx2(LI.indVar(), LK.indVar())),
                         B.load(D, P.idx2(LJ.indVar(), LK.indVar())));
    B.setCarriedNext(LK, Phi, B.add(Phi, Prod));
    B.endLoop(LK);
    B.store(Corr, P.idx2(LI.indVar(), LJ.indVar()),
            B.mul(B.carriedResult(LK, Phi), InvN));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  return P.finish();
}

Kernel covariance() {
  PB P("covariance_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t D = mat(F, "data");
  uint32_t Mean = vec(F, "mean");
  uint32_t Cov = mat(F, "cov");
  ValueId InvN = B.constFP(ScalarKind::F32, 1.0 / N);

  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Phi = B.addCarried(LJ, Zero);
    B.setCarriedNext(LJ, Phi,
                     B.add(Phi, B.load(D, P.idx2(LI.indVar(), LJ.indVar()))));
    B.endLoop(LJ);
    B.store(Mean, LI.indVar(), B.mul(B.carriedResult(LJ, Phi), InvN));
    B.endLoop(LI);
  }
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Mi = B.load(Mean, LI.indVar());
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
    B.store(D, Idx, B.sub(B.load(D, Idx), Mi));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto LK = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Phi = B.addCarried(LK, Zero);
    ValueId Prod = B.mul(B.load(D, P.idx2(LI.indVar(), LK.indVar())),
                         B.load(D, P.idx2(LJ.indVar(), LK.indVar())));
    B.setCarriedNext(LK, Phi, B.add(Phi, Prod));
    B.endLoop(LK);
    B.store(Cov, P.idx2(LI.indVar(), LJ.indVar()),
            B.mul(B.carriedResult(LK, Phi), InvN));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  return P.finish();
}

Kernel twoMM() {
  PB P("2mm_fp");
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A"), Bm = mat(F, "B"), C = mat(F, "C");
  uint32_t Tmp = mat(F, "tmp"), D = mat(F, "D");
  ValueId Zero = P.B.constFP(ScalarKind::F32, 0);
  emitMatFill(P, Tmp, Zero);
  emitMatMulAcc(P, Tmp, A, Bm);
  emitMatFill(P, D, Zero);
  emitMatMulAcc(P, D, Tmp, C);
  return P.finish();
}

Kernel threeMM() {
  PB P("3mm_fp");
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A"), Bm = mat(F, "B"), C = mat(F, "C"),
           D = mat(F, "D");
  uint32_t E = mat(F, "E"), Fm = mat(F, "F"), G = mat(F, "G");
  ValueId Zero = P.B.constFP(ScalarKind::F32, 0);
  emitMatFill(P, E, Zero);
  emitMatMulAcc(P, E, A, Bm);
  emitMatFill(P, Fm, Zero);
  emitMatMulAcc(P, Fm, C, D);
  emitMatFill(P, G, Zero);
  emitMatMulAcc(P, G, E, Fm);
  return P.finish();
}

Kernel atax() {
  PB P("atax_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A");
  uint32_t X = vec(F, "x"), Tmp = vec(F, "tmp"), Y = vec(F, "y");
  // y = 0.
  {
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    B.store(Y, LJ.indVar(), B.constFP(ScalarKind::F32, 0));
    B.endLoop(LJ);
  }
  emitMatVec(P, Tmp, A, X);
  // y[j] += A[i][j] * tmp[i].
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Ti = B.load(Tmp, LI.indVar());
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId YIdx = LJ.indVar();
    B.store(Y, YIdx,
            B.add(B.load(Y, YIdx),
                  B.mul(B.load(A, P.idx2(LI.indVar(), LJ.indVar())), Ti)));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  return P.finish();
}

Kernel gesummv() {
  PB P("gesummv_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A"), Bm = mat(F, "B");
  uint32_t X = vec(F, "x"), Y = vec(F, "y");
  ValueId Alpha = F.addParam("alpha", Type::scalar(ScalarKind::F32));
  ValueId Beta = F.addParam("beta", Type::scalar(ScalarKind::F32));
  auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Zero = B.constFP(ScalarKind::F32, 0);
  auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId P1 = B.addCarried(LJ, Zero);
  ValueId P2 = B.addCarried(LJ, Zero);
  ValueId Xj = B.load(X, LJ.indVar());
  B.setCarriedNext(
      LJ, P1,
      B.add(P1, B.mul(B.load(A, P.idx2(LI.indVar(), LJ.indVar())), Xj)));
  B.setCarriedNext(
      LJ, P2,
      B.add(P2, B.mul(B.load(Bm, P.idx2(LI.indVar(), LJ.indVar())), Xj)));
  B.endLoop(LJ);
  B.store(Y, LI.indVar(),
          B.add(B.mul(Alpha, B.carriedResult(LJ, P1)),
                B.mul(Beta, B.carriedResult(LJ, P2))));
  B.endLoop(LI);
  P.K.FPParams = {{"alpha", 1.5}, {"beta", 0.5}};
  return P.finish();
}

Kernel doitgen() {
  PB P("doitgen_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  constexpr int64_t R = 16;
  // A[r][q][s], C4T transposed (paper's layout transposition), sum[p].
  uint32_t A = F.addArray("A", ScalarKind::F32, R * R * R + Slack, 4);
  uint32_t C4 = F.addArray("C4T", ScalarKind::F32, R * R + Slack, 4);
  uint32_t Sum = F.addArray("sum", ScalarKind::F32, R + Slack, 4);
  ValueId RV = B.constIdx(R);
  auto LR = B.beginLoop(B.constIdx(0), RV, B.constIdx(1));
  auto LQ = B.beginLoop(B.constIdx(0), RV, B.constIdx(1));
  ValueId RowBase =
      B.mul(B.add(B.mul(LR.indVar(), RV), LQ.indVar()), RV);
  auto LP = B.beginLoop(B.constIdx(0), RV, B.constIdx(1));
  ValueId Zero = B.constFP(ScalarKind::F32, 0);
  auto LS = B.beginLoop(B.constIdx(0), RV, B.constIdx(1));
  ValueId Phi = B.addCarried(LS, Zero);
  ValueId Prod = B.mul(B.load(A, B.add(RowBase, LS.indVar())),
                       B.load(C4, B.add(B.mul(LP.indVar(), RV), LS.indVar())));
  B.setCarriedNext(LS, Phi, B.add(Phi, Prod));
  B.endLoop(LS);
  B.store(Sum, LP.indVar(), B.carriedResult(LS, Phi));
  B.endLoop(LP);
  auto LP2 = B.beginLoop(B.constIdx(0), RV, B.constIdx(1));
  B.store(A, B.add(RowBase, LP2.indVar()), B.load(Sum, LP2.indVar()));
  B.endLoop(LP2);
  B.endLoop(LQ);
  B.endLoop(LR);
  return P.finish();
}

Kernel gemm() {
  PB P("gemm_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A"), Bm = mat(F, "B"), C = mat(F, "C");
  ValueId Alpha = F.addParam("alpha", Type::scalar(ScalarKind::F32));
  ValueId Beta = F.addParam("beta", Type::scalar(ScalarKind::F32));
  // C *= beta.
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
    B.store(C, Idx, B.mul(B.load(C, Idx), Beta));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  emitMatMulAcc(P, C, A, Bm, Alpha);
  P.K.FPParams = {{"alpha", 1.0}, {"beta", 0.75}};
  return P.finish();
}

Kernel gemver() {
  PB P("gemver_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A");
  uint32_t U1 = vec(F, "u1"), V1 = vec(F, "v1");
  uint32_t U2 = vec(F, "u2"), V2 = vec(F, "v2");
  uint32_t X = vec(F, "x"), Y = vec(F, "y"), Z = vec(F, "z"),
           W = vec(F, "w");
  ValueId Alpha = F.addParam("alpha", Type::scalar(ScalarKind::F32));
  ValueId Beta = F.addParam("beta", Type::scalar(ScalarKind::F32));

  // A += u1 v1^T + u2 v2^T.
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId U1i = B.load(U1, LI.indVar());
    ValueId U2i = B.load(U2, LI.indVar());
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
    ValueId Upd = B.add(B.mul(U1i, B.load(V1, LJ.indVar())),
                        B.mul(U2i, B.load(V2, LJ.indVar())));
    B.store(A, Idx, B.add(B.load(A, Idx), Upd));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  // x[i] += beta * Σ_j A[i][j]*y[j] + z[i]  (row-major after transpose).
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Phi = B.addCarried(LJ, Zero);
    B.setCarriedNext(LJ, Phi,
                     B.add(Phi,
                           B.mul(B.load(A, P.idx2(LI.indVar(), LJ.indVar())),
                                 B.load(Y, LJ.indVar()))));
    B.endLoop(LJ);
    ValueId Acc = B.mul(Beta, B.carriedResult(LJ, Phi));
    B.store(X, LI.indVar(),
            B.add(B.load(X, LI.indVar()),
                  B.add(Acc, B.load(Z, LI.indVar()))));
    B.endLoop(LI);
  }
  // w[i] = alpha * Σ_j A[i][j]*x[j].
  {
    auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Phi = B.addCarried(LJ, Zero);
    B.setCarriedNext(LJ, Phi,
                     B.add(Phi,
                           B.mul(B.load(A, P.idx2(LI.indVar(), LJ.indVar())),
                                 B.load(X, LJ.indVar()))));
    B.endLoop(LJ);
    B.store(W, LI.indVar(), B.mul(Alpha, B.carriedResult(LJ, Phi)));
    B.endLoop(LI);
  }
  P.K.FPParams = {{"alpha", 1.2}, {"beta", 0.8}};
  return P.finish();
}

Kernel bicg() {
  PB P("bicg_fp");
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A"), AT = mat(F, "AT");
  uint32_t Rv = vec(F, "r"), Pv = vec(F, "p");
  uint32_t S = vec(F, "s"), Q = vec(F, "q");
  emitMatVec(P, S, AT, Rv);
  emitMatVec(P, Q, A, Pv);
  return P.finish();
}

Kernel gramschmidt() {
  PB P("gramschmidt_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A"), Q = mat(F, "Q"), R = mat(F, "R");

  auto LK = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  // nrm = sqrt(Σ_j A[k][j]^2 + eps); R[k][k] = nrm.
  ValueId Zero = B.constFP(ScalarKind::F32, 0);
  auto LJ1 = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Phi = B.addCarried(LJ1, Zero);
  ValueId Akj = B.load(A, P.idx2(LK.indVar(), LJ1.indVar()));
  B.setCarriedNext(LJ1, Phi, B.add(Phi, B.mul(Akj, Akj)));
  B.endLoop(LJ1);
  ValueId Nrm = B.sqrtOp(B.add(B.carriedResult(LJ1, Phi),
                               B.constFP(ScalarKind::F32, 0.5)));
  B.store(R, P.idx2(LK.indVar(), LK.indVar()), Nrm);
  // Q[k][j] = A[k][j] / nrm.
  auto LJ2 = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  B.store(Q, P.idx2(LK.indVar(), LJ2.indVar()),
          B.div(B.load(A, P.idx2(LK.indVar(), LJ2.indVar())), Nrm));
  B.endLoop(LJ2);
  // For i > k: R[k][i] = Σ_j Q[k][j]*A[i][j]; A[i][j] -= Q[k][j]*R[k][i].
  ValueId KPlus1 = B.add(LK.indVar(), B.constIdx(1));
  auto LI = B.beginLoop(KPlus1, P.NV, B.constIdx(1));
  ValueId Zero2 = B.constFP(ScalarKind::F32, 0);
  auto LJ3 = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Phi2 = B.addCarried(LJ3, Zero2);
  ValueId Prod = B.mul(B.load(Q, P.idx2(LK.indVar(), LJ3.indVar())),
                       B.load(A, P.idx2(LI.indVar(), LJ3.indVar())));
  B.setCarriedNext(LJ3, Phi2, B.add(Phi2, Prod));
  B.endLoop(LJ3);
  ValueId Rki = B.carriedResult(LJ3, Phi2);
  B.store(R, P.idx2(LK.indVar(), LI.indVar()), Rki);
  auto LJ4 = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId AIdx = P.idx2(LI.indVar(), LJ4.indVar());
  B.store(A, AIdx,
          B.sub(B.load(A, AIdx),
                B.mul(B.load(Q, P.idx2(LK.indVar(), LJ4.indVar())), Rki)));
  B.endLoop(LJ4);
  B.endLoop(LI);
  B.endLoop(LK);
  P.K.Tolerance = 0.1;
  return P.finish();
}

/// Boosts the diagonal so elimination never divides by (near) zero.
void diagDominantFill(FillSink &S, const Function &F, uint32_t MatArr) {
  defaultFill(S, F);
  for (int64_t I = 0; I < N; ++I)
    S.pokeFP(MatArr, I * N + I, 64.0 + I);
}

Kernel lu() {
  PB P("lu_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A");
  auto LK = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Akk = B.load(A, P.idx2(LK.indVar(), LK.indVar()));
  ValueId KPlus1 = B.add(LK.indVar(), B.constIdx(1));
  auto LI = B.beginLoop(KPlus1, P.NV, B.constIdx(1));
  ValueId AikIdx = P.idx2(LI.indVar(), LK.indVar());
  ValueId Lik = B.div(B.load(A, AikIdx), Akk);
  B.store(A, AikIdx, Lik);
  auto LJ = B.beginLoop(KPlus1, P.NV, B.constIdx(1));
  ValueId AijIdx = P.idx2(LI.indVar(), LJ.indVar());
  B.store(A, AijIdx,
          B.sub(B.load(A, AijIdx),
                B.mul(Lik, B.load(A, P.idx2(LK.indVar(), LJ.indVar())))));
  B.endLoop(LJ);
  B.endLoop(LI);
  B.endLoop(LK);
  P.K.Tolerance = 0.1;
  P.K.Fill = [A](FillSink &S, const Function &Fn) {
    diagDominantFill(S, Fn, A);
  };
  return P.finish();
}

Kernel ludcmp() {
  PB P("ludcmp_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A");
  uint32_t Bv = vec(F, "b"), Y = vec(F, "y"), X = vec(F, "x");
  // Forward substitution: y[i] = b[i] - Σ_{j<i} A[i][j]*y[j].
  auto LI = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Zero = B.constFP(ScalarKind::F32, 0);
  auto LJ = B.beginLoop(B.constIdx(0), LI.indVar(), B.constIdx(1));
  ValueId Phi = B.addCarried(LJ, Zero);
  B.setCarriedNext(LJ, Phi,
                   B.add(Phi,
                         B.mul(B.load(A, P.idx2(LI.indVar(), LJ.indVar())),
                               B.load(Y, LJ.indVar()))));
  B.endLoop(LJ);
  B.store(Y, LI.indVar(),
          B.sub(B.load(Bv, LI.indVar()), B.carriedResult(LJ, Phi)));
  B.endLoop(LI);
  // Back substitution with division by the diagonal, iterating rows in
  // reverse via index arithmetic (loops count upward by IR rule).
  auto LI2 = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
  ValueId Row = B.sub(B.constIdx(N - 1), LI2.indVar());
  ValueId RowP1 = B.add(Row, B.constIdx(1));
  ValueId Zero2 = B.constFP(ScalarKind::F32, 0);
  auto LJ2 = B.beginLoop(RowP1, P.NV, B.constIdx(1));
  ValueId Phi2 = B.addCarried(LJ2, Zero2);
  B.setCarriedNext(LJ2, Phi2,
                   B.add(Phi2, B.mul(B.load(A, P.idx2(Row, LJ2.indVar())),
                                     B.load(X, LJ2.indVar()))));
  B.endLoop(LJ2);
  ValueId Num = B.sub(B.load(Y, Row), B.carriedResult(LJ2, Phi2));
  B.store(X, Row, B.div(Num, B.load(A, P.idx2(Row, Row))));
  B.endLoop(LI2);
  P.K.Tolerance = 0.1;
  P.K.Fill = [A](FillSink &S, const Function &Fn) {
    diagDominantFill(S, Fn, A);
  };
  return P.finish();
}

Kernel adi() {
  PB P("adi_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  // Sweeps read the previous plane (paper applies skewing/transposition;
  // our conservative dependence policy needs the planes split).
  uint32_t X0 = mat(F, "Xprev"), X = mat(F, "X"), A = mat(F, "A");
  uint32_t Y0 = mat(F, "Yprev"), Y = mat(F, "Y"), Bc = mat(F, "Bc");
  ValueId One = B.constIdx(1);
  {
    auto LI = B.beginLoop(One, P.NV, B.constIdx(1));
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
    ValueId Up = P.idx2(B.sub(LI.indVar(), One), LJ.indVar());
    B.store(X, Idx,
            B.sub(B.load(X0, Idx), B.mul(B.load(A, Idx), B.load(X0, Up))));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  {
    auto LI = B.beginLoop(One, P.NV, B.constIdx(1));
    auto LJ = B.beginLoop(B.constIdx(0), P.NV, B.constIdx(1));
    ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
    ValueId Up = P.idx2(B.sub(LI.indVar(), One), LJ.indVar());
    B.store(Y, Idx,
            B.sub(B.load(Y0, Idx), B.mul(B.load(Bc, Idx), B.load(Y0, Up))));
    B.endLoop(LJ);
    B.endLoop(LI);
  }
  return P.finish();
}

Kernel jacobi() {
  PB P("jacobi_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A"), Bm = mat(F, "B");
  ValueId One = B.constIdx(1);
  ValueId NM1 = B.constIdx(N - 1);
  ValueId Fifth = B.constFP(ScalarKind::F32, 0.2);
  auto LI = B.beginLoop(One, NM1, B.constIdx(1));
  auto LJ = B.beginLoop(One, NM1, B.constIdx(1));
  ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
  ValueId Sum = B.load(A, Idx);
  Sum = B.add(Sum, B.load(A, B.sub(Idx, One)));
  Sum = B.add(Sum, B.load(A, B.add(Idx, One)));
  Sum = B.add(Sum, B.load(A, P.idx2(B.sub(LI.indVar(), One), LJ.indVar())));
  Sum = B.add(Sum, B.load(A, P.idx2(B.add(LI.indVar(), One), LJ.indVar())));
  B.store(Bm, Idx, B.mul(Sum, Fifth));
  B.endLoop(LJ);
  B.endLoop(LI);
  return P.finish();
}

Kernel seidel() {
  PB P("seidel_fp");
  IrBuilder &B = P.B;
  Function &F = P.K.Source;
  uint32_t A = mat(F, "A");
  ValueId One = B.constIdx(1);
  ValueId NM1 = B.constIdx(N - 1);
  ValueId Fifth = B.constFP(ScalarKind::F32, 0.2);
  // In-place: loop-carried distance 1 — stays scalar (as in the paper,
  // where seidel needs skewing the vectorizer cannot handle).
  auto LI = B.beginLoop(One, NM1, B.constIdx(1));
  auto LJ = B.beginLoop(One, NM1, B.constIdx(1));
  ValueId Idx = P.idx2(LI.indVar(), LJ.indVar());
  ValueId Sum = B.load(A, Idx);
  Sum = B.add(Sum, B.load(A, B.sub(Idx, One)));
  Sum = B.add(Sum, B.load(A, B.add(Idx, One)));
  Sum = B.add(Sum, B.load(A, P.idx2(B.sub(LI.indVar(), One), LJ.indVar())));
  Sum = B.add(Sum, B.load(A, P.idx2(B.add(LI.indVar(), One), LJ.indVar())));
  B.store(A, Idx, B.mul(Sum, Fifth));
  B.endLoop(LJ);
  B.endLoop(LI);
  return P.finish();
}

} // namespace

std::vector<Kernel> kernels::polybenchKernels() {
  std::vector<Kernel> Ks;
  Ks.push_back(correlation());
  Ks.push_back(covariance());
  Ks.push_back(twoMM());
  Ks.push_back(threeMM());
  Ks.push_back(atax());
  Ks.push_back(gesummv());
  Ks.push_back(doitgen());
  Ks.push_back(gemm());
  Ks.push_back(gemver());
  Ks.push_back(bicg());
  Ks.push_back(gramschmidt());
  Ks.push_back(lu());
  Ks.push_back(ludcmp());
  Ks.push_back(adi());
  Ks.push_back(jacobi());
  Ks.push_back(seidel());
  return Ks;
}
