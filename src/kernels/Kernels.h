//===- kernels/Kernels.h - The paper's benchmark kernels -------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar-IR builders for every kernel of paper Table 2 and the Polybench
/// subset of Fig. 6, plus deterministic workload construction.
///
/// Arrays are declared with *element-size* base alignment only: when
/// creating portable bytecode the offline compiler cannot assume the
/// runtime aligns arrays (paper Sec. III-B(c)), which is what triggers the
/// alignment-versioning machinery. The native baseline promotes the same
/// arrays to 32-byte alignment before vectorizing, as native GCC does.
///
/// Problem sizes are scaled down from the paper's (vectors 512 instead of
/// app-sized, matrices 32x32 instead of 128x128) because the targets are
/// interpreted cycle models rather than silicon; per-iteration behaviour,
/// which determines every reported ratio, is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_KERNELS_KERNELS_H
#define VAPOR_KERNELS_KERNELS_H

#include "ir/Function.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vapor {
namespace kernels {

/// Anything that can receive array element values (the VM's MemoryImage
/// and the golden evaluator both adapt to this).
class FillSink {
public:
  virtual ~FillSink() = default;
  virtual void pokeInt(uint32_t Arr, uint64_t Elem, int64_t V) = 0;
  virtual void pokeFP(uint32_t Arr, uint64_t Elem, double V) = 0;
};

/// Deterministic default fill: small values, identical across runs and
/// targets. Integer arrays get values in [-100, 100); float arrays in
/// [-4, 4).
void defaultFill(FillSink &Sink, const ir::Function &F, uint64_t Seed = 7);

struct Kernel {
  std::string Name;
  std::string Suite; ///< "kernel" (Table 2) or "polybench".
  ir::Function Source{""};
  std::vector<std::string> Features;
  /// Scalar parameter defaults (both maps may be consulted by name).
  std::map<std::string, int64_t> IntParams;
  std::map<std::string, double> FPParams;
  /// Comparison tolerance vs the golden model (0 = bit-exact; floats with
  /// reassociated reductions need slack).
  double Tolerance = 0;
  /// Arrays supplied by the embedding application: neither the native
  /// compiler nor the JIT runtime may force or assume their alignment.
  std::set<std::string> ExternalArrays;
  /// Custom workload construction; empty = defaultFill.
  std::function<void(FillSink &, const ir::Function &)> Fill;

  void fill(FillSink &Sink) const {
    if (Fill)
      Fill(Sink, Source);
    else
      defaultFill(Sink, Source);
  }
};

/// Total registry size (table2Kernels + polybenchKernels). The sweep
/// suites assert against this single constant so a kernel added to a
/// builder below cannot silently miss a kernel x target matrix.
inline constexpr size_t ExpectedKernelCount = 36;

/// Table 2 kernels (paper order), then the striped saturating-DP family.
std::vector<Kernel> table2Kernels();

/// The Polybench subset evaluated in Fig. 6.
std::vector<Kernel> polybenchKernels();

/// Both suites concatenated (the Fig. 6 x-axis).
std::vector<Kernel> allKernels();

/// \returns the kernel named \p Name (aborts if absent).
Kernel kernelByName(const std::string &Name);

} // namespace kernels
} // namespace vapor

#endif // VAPOR_KERNELS_KERNELS_H
