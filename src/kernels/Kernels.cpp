//===- kernels/Kernels.cpp - Table 2 kernels --------------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "support/Support.h"

using namespace vapor;
using namespace vapor::kernels;
using namespace vapor::ir;

namespace {

/// Vector length used by the 1-D kernels (paper kernels are app-sized;
/// see Kernels.h for the scaling note).
constexpr int64_t VecN = 512;
/// Extra tail so offset reads like a[i+16] stay in bounds.
constexpr int64_t Slack = 64;
/// Matrix dimension for the dense kernels.
constexpr int64_t MatN = 32;

/// Unknown base alignment: the portable-bytecode assumption.
uint32_t unknownAlign(ScalarKind K) { return scalarSize(K); }

uint32_t addArr(Function &F, const std::string &Name, ScalarKind K,
                uint64_t N) {
  return F.addArray(Name, K, N, unknownAlign(K));
}

void seal(Kernel &K) { verifyOrDie(K.Source); }

} // namespace

void kernels::defaultFill(FillSink &Sink, const Function &F, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (uint32_t A = 0; A < F.Arrays.size(); ++A) {
    const ArrayInfo &AI = F.Arrays[A];
    if (AI.Name.rfind("__vt", 0) == 0)
      continue; // Compiler scratch starts zeroed.
    for (uint64_t I = 0; I < AI.NumElems; ++I) {
      if (isFloatKind(AI.Elem))
        Sink.pokeFP(A, I, (Rng.nextUnit() - 0.5) * 8.0);
      else if (scalarSize(AI.Elem) == 1)
        Sink.pokeInt(A, I, static_cast<int64_t>(Rng.nextBelow(256)));
      else
        Sink.pokeInt(A, I, static_cast<int64_t>(Rng.nextBelow(200)) - 100);
    }
  }
}

namespace {

//===--- Integer kernels --------------------------------------------------===//

/// dissolve_s8: video dissolve with widening multiplication:
///   o[i] = (u8)((a[i]*w + b[i]*(256-w)) >> 8)
Kernel dissolveS8() {
  Kernel K;
  K.Name = "dissolve_s8";
  K.Suite = "kernel";
  K.Features = {"widening-mult", "pack"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t A = addArr(F, "a", ScalarKind::U8, VecN + Slack);
  uint32_t Bd = addArr(F, "b", ScalarKind::U8, VecN + Slack);
  uint32_t O = addArr(F, "o", ScalarKind::U8, VecN + Slack);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  ValueId W = F.addParam("w", Type::scalar(ScalarKind::U16));
  IrBuilder B(F);
  ValueId W2 = B.sub(B.constInt(ScalarKind::U16, 256), W);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  ValueId WA = B.mul(B.convert(ScalarKind::U16, B.load(A, L.indVar())), W);
  ValueId WB = B.mul(B.convert(ScalarKind::U16, B.load(Bd, L.indVar())), W2);
  // a*w + b*(256-w) <= 255*256 fits u16 only if the sum is taken shifted;
  // shift each product first to stay in range.
  ValueId Eight = B.constInt(ScalarKind::U16, 8);
  ValueId Mixed = B.add(B.shrl(WA, Eight), B.shrl(WB, Eight));
  B.store(O, L.indVar(), B.convert(ScalarKind::U8, Mixed));
  B.endLoop(L);
  K.IntParams = {{"n", VecN}, {"w", 77}};
  seal(K);
  return K;
}

/// sad_s8: sum of absolute differences (abs pattern + widening reduction):
///   s += |a[i] - b[i]|   (u8 data, i32 accumulator)
Kernel sadS8() {
  Kernel K;
  K.Name = "sad_s8";
  K.Suite = "kernel";
  K.Features = {"abs", "reduction", "unpack"};
  // SAD operates on externally supplied image blocks: the compiler cannot
  // force their alignment (drives the paper's sad versioning discussion).
  K.ExternalArrays = {"a", "b"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t A = addArr(F, "a", ScalarKind::U8, VecN + Slack);
  uint32_t Bd = addArr(F, "b", ScalarKind::U8, VecN + Slack);
  uint32_t O = addArr(F, "out", ScalarKind::I32, 4);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  IrBuilder B(F);
  ValueId Zero = B.constInt(ScalarKind::I32, 0);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  ValueId Phi = B.addCarried(L, Zero);
  ValueId X = B.load(A, L.indVar());
  ValueId Y = B.load(Bd, L.indVar());
  ValueId D = B.sub(B.smax(X, Y), B.smin(X, Y)); // |x-y| in u8.
  B.setCarriedNext(L, Phi, B.add(Phi, B.convert(ScalarKind::I32, D)));
  B.endLoop(L);
  B.store(O, B.constIdx(0), B.carriedResult(L, Phi));
  K.IntParams = {{"n", VecN}};
  seal(K);
  return K;
}

/// sfir_s16: single-sample FIR (dot product):
///   out = (Σ x[k]*c[k]) with s16 inputs and an i32 accumulator.
Kernel sfirS16() {
  Kernel K;
  K.Name = "sfir_s16";
  K.Suite = "kernel";
  K.Features = {"dot-product", "reduction"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t X = addArr(F, "x", ScalarKind::I16, VecN + Slack);
  uint32_t C = addArr(F, "c", ScalarKind::I16, VecN + Slack);
  uint32_t O = addArr(F, "out", ScalarKind::I32, 4);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  IrBuilder B(F);
  ValueId Zero = B.constInt(ScalarKind::I32, 0);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  ValueId Phi = B.addCarried(L, Zero);
  ValueId P = B.mul(B.convert(ScalarKind::I32, B.load(X, L.indVar())),
                    B.convert(ScalarKind::I32, B.load(C, L.indVar())));
  B.setCarriedNext(L, Phi, B.add(Phi, P));
  B.endLoop(L);
  B.store(O, B.constIdx(0), B.carriedResult(L, Phi));
  K.IntParams = {{"n", VecN}};
  seal(K);
  return K;
}

/// interp_s16: rate-2 interpolation (strided access + dot product):
///   out[p] = Σ_k x[k]*c[2k+p]   for p in {0, 1}.
Kernel interpS16() {
  Kernel K;
  K.Name = "interp_s16";
  K.Suite = "kernel";
  K.Features = {"strided", "dot-product"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t X = addArr(F, "x", ScalarKind::I16, VecN + Slack);
  uint32_t C = addArr(F, "c", ScalarKind::I16, 2 * VecN + Slack);
  uint32_t O = addArr(F, "out", ScalarKind::I32, 4);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  IrBuilder B(F);
  for (int P = 0; P < 2; ++P) {
    ValueId Zero = B.constInt(ScalarKind::I32, 0);
    auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
    ValueId Phi = B.addCarried(L, Zero);
    ValueId CIdx = B.add(B.mul(L.indVar(), B.constIdx(2)), B.constIdx(P));
    ValueId Prod = B.mul(B.convert(ScalarKind::I32, B.load(X, L.indVar())),
                         B.convert(ScalarKind::I32, B.load(C, CIdx)));
    B.setCarriedNext(L, Phi, B.add(Phi, Prod));
    B.endLoop(L);
    B.store(O, B.constIdx(P), B.carriedResult(L, Phi));
  }
  K.IntParams = {{"n", VecN}};
  seal(K);
  return K;
}

/// mix_streams_s16: mix four audio channels (SLP over the four unrolled
/// statements). Audio buffers come from the host: external arrays.
Kernel mixStreamsS16() {
  Kernel K;
  K.Name = "mix_streams_s16";
  K.Suite = "kernel";
  K.Features = {"slp"};
  K.ExternalArrays = {"a", "b", "o"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t A = addArr(F, "a", ScalarKind::I16, 4 * VecN + Slack);
  uint32_t Bd = addArr(F, "b", ScalarKind::I16, 4 * VecN + Slack);
  uint32_t O = addArr(F, "o", ScalarKind::I16, 4 * VecN + Slack);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  IrBuilder B(F);
  ValueId One = B.constInt(ScalarKind::I16, 1);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  ValueId I4 = B.mul(L.indVar(), B.constIdx(4));
  for (int Ch = 0; Ch < 4; ++Ch) {
    ValueId Idx = Ch == 0 ? I4 : B.add(I4, B.constIdx(Ch));
    ValueId Mixed =
        B.shra(B.add(B.load(A, Idx), B.load(Bd, Idx)), One);
    B.store(O, Idx, Mixed);
  }
  B.endLoop(L);
  K.IntParams = {{"n", VecN}};
  seal(K);
  return K;
}

/// convolve_s32: sliding-window convolution with an inner reduction loop
/// whose loads are misaligned by a loop-invariant (runtime) amount — the
/// realignment-with-runtime-token case.
Kernel convolveS32() {
  Kernel K;
  K.Name = "convolve_s32";
  K.Suite = "kernel";
  K.Features = {"reduction", "realign"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t In = addArr(F, "in", ScalarKind::I32, VecN + Slack);
  uint32_t H = addArr(F, "h", ScalarKind::I32, 64);
  uint32_t O = addArr(F, "o", ScalarKind::I32, VecN + Slack);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  ValueId Taps = F.addParam("taps", Type::scalar(ScalarKind::I64));
  IrBuilder B(F);
  auto LI = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  ValueId Zero = B.constInt(ScalarKind::I32, 0);
  auto LK = B.beginLoop(B.constIdx(0), Taps, B.constIdx(1));
  ValueId Phi = B.addCarried(LK, Zero);
  ValueId Prod = B.mul(B.load(In, B.add(LI.indVar(), LK.indVar())),
                       B.load(H, LK.indVar()));
  B.setCarriedNext(LK, Phi, B.add(Phi, Prod));
  B.endLoop(LK);
  B.store(O, LI.indVar(), B.carriedResult(LK, Phi));
  B.endLoop(LI);
  K.IntParams = {{"n", VecN / 4}, {"taps", 16}};
  seal(K);
  return K;
}

//===--- Mixed int/float kernels ------------------------------------------===//

/// alvinn_s32fp: neural-net hidden-unit accumulation — the paper's
/// outer-loop vectorization case. The inner loop reduces over inputs
/// while the weight matrix is walked with stride M, so only the *outer*
/// (unit) loop vectorizes:
///   for j: hidden[j] += eta * Σ_i cvt_fp(in[i]) * wT[i*M + j]
Kernel alvinnS32fp() {
  Kernel K;
  K.Name = "alvinn_s32fp";
  K.Suite = "kernel";
  K.Features = {"outer-loop", "int-fp"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t WT = addArr(F, "wT", ScalarKind::F32, MatN * MatN + Slack);
  uint32_t In = addArr(F, "in", ScalarKind::I32, MatN + Slack);
  uint32_t Hidden = addArr(F, "hidden", ScalarKind::F32, MatN + Slack);
  ValueId Eta = F.addParam("eta", Type::scalar(ScalarKind::F32));
  IrBuilder B(F);
  ValueId MatNV = B.constIdx(MatN);
  auto LJ = B.beginLoop(B.constIdx(0), MatNV, B.constIdx(1));
  ValueId Zero = B.constFP(ScalarKind::F32, 0);
  auto LI = B.beginLoop(B.constIdx(0), MatNV, B.constIdx(1));
  ValueId Acc = B.addCarried(LI, Zero);
  ValueId InVal = B.convert(ScalarKind::F32, B.load(In, LI.indVar()));
  ValueId WIdx = B.add(B.mul(LI.indVar(), MatNV), LJ.indVar());
  B.setCarriedNext(LI, Acc, B.add(Acc, B.mul(InVal, B.load(WT, WIdx))));
  B.endLoop(LI);
  ValueId Upd = B.mul(B.carriedResult(LI, Acc), Eta);
  B.store(Hidden, LJ.indVar(),
          B.add(B.load(Hidden, LJ.indVar()), Upd));
  B.endLoop(LJ);
  K.FPParams = {{"eta", 0.125}};
  K.Tolerance = 1e-3;
  seal(K);
  return K;
}

/// dct_s32fp: 8x8 DCT row pass over blocks (UTDSP): integer samples times
/// float cosine table, inner product unrolled over u.
Kernel dctS32fp() {
  Kernel K;
  K.Name = "dct_s32fp";
  K.Suite = "kernel";
  K.Features = {"outer-loop", "int-fp", "convert"};
  Function &F = K.Source;
  F.Name = K.Name;
  constexpr int64_t Blocks = 16;
  uint32_t In = addArr(F, "in", ScalarKind::I32, Blocks * 64 + Slack);
  uint32_t Cs = addArr(F, "cs", ScalarKind::F32, 64 + Slack);
  uint32_t O = addArr(F, "o", ScalarKind::F32, Blocks * 64 + Slack);
  IrBuilder B(F);
  ValueId Rows = B.constIdx(Blocks * 8);
  auto LR = B.beginLoop(B.constIdx(0), Rows, B.constIdx(1));
  ValueId RowBase = B.mul(LR.indVar(), B.constIdx(8));
  // Row samples, converted once per row (invariant in the k loop).
  std::vector<ValueId> Samples;
  for (int U = 0; U < 8; ++U)
    Samples.push_back(B.convert(
        ScalarKind::F32, B.load(In, B.add(RowBase, B.constIdx(U)))));
  auto LK = B.beginLoop(B.constIdx(0), B.constIdx(8), B.constIdx(1));
  ValueId Acc = NoValue;
  for (int U = 0; U < 8; ++U) {
    ValueId CsIdx = B.add(B.constIdx(U * 8), LK.indVar());
    ValueId Term = B.mul(Samples[U], B.load(Cs, CsIdx));
    Acc = U == 0 ? Term : B.add(Acc, Term);
  }
  B.store(O, B.add(RowBase, LK.indVar()), Acc);
  B.endLoop(LK);
  B.endLoop(LR);
  K.Tolerance = 1e-3;
  seal(K);
  return K;
}

//===--- Floating-point kernels --------------------------------------------===//

/// dissolve_fp: o[i] = a[i]*w + b[i]*(1-w).
Kernel dissolveFp() {
  Kernel K;
  K.Name = "dissolve_fp";
  K.Suite = "kernel";
  K.Features = {"elementwise"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t A = addArr(F, "a", ScalarKind::F32, VecN + Slack);
  uint32_t Bd = addArr(F, "b", ScalarKind::F32, VecN + Slack);
  uint32_t O = addArr(F, "o", ScalarKind::F32, VecN + Slack);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  ValueId W = F.addParam("w", Type::scalar(ScalarKind::F32));
  IrBuilder B(F);
  ValueId W2 = B.sub(B.constFP(ScalarKind::F32, 1.0), W);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  B.store(O, L.indVar(), B.add(B.mul(B.load(A, L.indVar()), W),
                               B.mul(B.load(Bd, L.indVar()), W2)));
  B.endLoop(L);
  K.IntParams = {{"n", VecN}};
  K.FPParams = {{"w", 0.3}};
  seal(K);
  return K;
}

/// sfir_fp: out = Σ x[k]*c[k] (f32 reduction).
Kernel sfirFp() {
  Kernel K;
  K.Name = "sfir_fp";
  K.Suite = "kernel";
  K.Features = {"reduction"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t X = addArr(F, "x", ScalarKind::F32, VecN + Slack);
  uint32_t C = addArr(F, "c", ScalarKind::F32, VecN + Slack);
  uint32_t O = addArr(F, "out", ScalarKind::F32, 4);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  IrBuilder B(F);
  ValueId Zero = B.constFP(ScalarKind::F32, 0);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  ValueId Phi = B.addCarried(L, Zero);
  B.setCarriedNext(
      L, Phi, B.add(Phi, B.mul(B.load(X, L.indVar()), B.load(C, L.indVar()))));
  B.endLoop(L);
  B.store(O, B.constIdx(0), B.carriedResult(L, Phi));
  K.IntParams = {{"n", VecN}};
  K.Tolerance = 1e-2;
  seal(K);
  return K;
}

/// interp_fp: strided access + f32 reduction.
Kernel interpFp() {
  Kernel K;
  K.Name = "interp_fp";
  K.Suite = "kernel";
  K.Features = {"strided", "reduction"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t X = addArr(F, "x", ScalarKind::F32, VecN + Slack);
  uint32_t C = addArr(F, "c", ScalarKind::F32, 2 * VecN + Slack);
  uint32_t O = addArr(F, "out", ScalarKind::F32, 4);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  IrBuilder B(F);
  for (int P = 0; P < 2; ++P) {
    ValueId Zero = B.constFP(ScalarKind::F32, 0);
    auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
    ValueId Phi = B.addCarried(L, Zero);
    ValueId CIdx = B.add(B.mul(L.indVar(), B.constIdx(2)), B.constIdx(P));
    B.setCarriedNext(
        L, Phi, B.add(Phi, B.mul(B.load(X, L.indVar()), B.load(C, CIdx))));
    B.endLoop(L);
    B.store(O, B.constIdx(P), B.carriedResult(L, Phi));
  }
  K.IntParams = {{"n", VecN}};
  K.Tolerance = 1e-2;
  seal(K);
  return K;
}

/// mmm_fp: dense matrix multiplication, ikj order (unit-stride inner).
Kernel mmmFp() {
  Kernel K;
  K.Name = "mmm_fp";
  K.Suite = "kernel";
  K.Features = {"nested", "elementwise"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t A = addArr(F, "A", ScalarKind::F32, MatN * MatN + Slack);
  uint32_t Bm = addArr(F, "B", ScalarKind::F32, MatN * MatN + Slack);
  uint32_t C = addArr(F, "C", ScalarKind::F32, MatN * MatN + Slack);
  IrBuilder B(F);
  ValueId NV = B.constIdx(MatN);
  auto LI = B.beginLoop(B.constIdx(0), NV, B.constIdx(1));
  auto LK = B.beginLoop(B.constIdx(0), NV, B.constIdx(1));
  ValueId Aik = B.load(A, B.add(B.mul(LI.indVar(), NV), LK.indVar()));
  auto LJ = B.beginLoop(B.constIdx(0), NV, B.constIdx(1));
  ValueId CIdx = B.add(B.mul(LI.indVar(), NV), LJ.indVar());
  ValueId BIdx = B.add(B.mul(LK.indVar(), NV), LJ.indVar());
  B.store(C, CIdx,
          B.add(B.load(C, CIdx), B.mul(Aik, B.load(Bm, BIdx))));
  B.endLoop(LJ);
  B.endLoop(LK);
  B.endLoop(LI);
  K.Tolerance = 1e-2;
  seal(K);
  return K;
}

/// dscal: x[i] *= alpha (BLAS), f32/f64 variants.
Kernel dscal(ScalarKind Kind, const std::string &Name) {
  Kernel K;
  K.Name = Name;
  K.Suite = "kernel";
  K.Features = {"elementwise", "blas"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t X = addArr(F, "x", Kind, VecN + Slack);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  ValueId Alpha = F.addParam("alpha", Type::scalar(Kind));
  IrBuilder B(F);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  B.store(X, L.indVar(), B.mul(B.load(X, L.indVar()), Alpha));
  B.endLoop(L);
  K.IntParams = {{"n", VecN}};
  K.FPParams = {{"alpha", 1.25}};
  seal(K);
  return K;
}

/// saxpy: y[i] += alpha*x[i] (BLAS), f32/f64 variants.
Kernel saxpy(ScalarKind Kind, const std::string &Name) {
  Kernel K;
  K.Name = Name;
  K.Suite = "kernel";
  K.Features = {"elementwise", "blas"};
  Function &F = K.Source;
  F.Name = K.Name;
  uint32_t X = addArr(F, "x", Kind, VecN + Slack);
  uint32_t Y = addArr(F, "y", Kind, VecN + Slack);
  ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
  ValueId Alpha = F.addParam("alpha", Type::scalar(Kind));
  IrBuilder B(F);
  auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
  B.store(Y, L.indVar(),
          B.add(B.load(Y, L.indVar()), B.mul(Alpha, B.load(X, L.indVar()))));
  B.endLoop(L);
  K.IntParams = {{"n", VecN}};
  K.FPParams = {{"alpha", 1.25}};
  seal(K);
  return K;
}

//===--- Striped saturating-DP kernels (hmmer SSV / Viterbi filters) ------===//

/// Stripe width of the striped-DP kernels, in elements. Chosen >= the
/// widest evaluated VF (AVX: 32 x u8) so that every target tiles a
/// stripe with whole vectors: the flat Q*W cell walk below visits the
/// same memory order for every V, which is what makes the kernels
/// VF-independent (golden-comparable) while still using the Farrar
/// striped layout Q = max(2, ceil(M/W)).
constexpr int64_t DpStripeW = 32;
/// Model length M before striping; Q = max(2, ceil(M/W)) stripes.
constexpr int64_t DpModelM = 100;
/// Sequence rows walked by the outer loop.
constexpr int64_t DpRows = 24;

constexpr int64_t dpQ() {
  int64_t Q = (DpModelM + DpStripeW - 1) / DpStripeW;
  return Q < 2 ? 2 : Q;
}

/// Workload for the 16-bit DP kernels: the default fill's small values
/// (|v| < 100) would never saturate a 16-bit lane, so scores span most
/// of the kind's range instead.
void wideDpFill(FillSink &Sink, const Function &F) {
  SplitMix64 Rng(11);
  for (uint32_t A = 0; A < F.Arrays.size(); ++A) {
    const ArrayInfo &AI = F.Arrays[A];
    if (AI.Name.rfind("__vt", 0) == 0)
      continue; // Compiler scratch starts zeroed.
    for (uint64_t I = 0; I < AI.NumElems; ++I) {
      int64_t V = static_cast<int64_t>(Rng.nextBelow(60000));
      Sink.pokeInt(A, I, isSignedKind(AI.Elem) ? V - 30000 : V);
    }
  }
}

/// Striped SSV-style filter (single-state): every row saturate-adds its
/// striped scores into the running cells, drains with a saturating bias
/// subtract, and collapses the row into a running best score through a
/// max reduction (the ReducMax epilogue).
///
///   for t in [0, rows):
///     for j in [0, qw):                  # qw = Q*W flat striped cells
///       v     = addsat(dp[j], sc[t*qw + j])
///       v     = subsat(v, bias)
///       dp[j] = v
///       m     = max(m, v)               # vectorized max reduction
///     best[0] = max(best[0], m)
Kernel ssvFilter(ScalarKind Kind, const std::string &Name) {
  Kernel K;
  K.Name = Name;
  K.Suite = "kernel";
  K.Features = {"saturating", "striped-dp", "reduction"};
  K.ExternalArrays = {"sc"}; // Scores stream in from the host.
  Function &F = K.Source;
  F.Name = K.Name;
  const int64_t QW = dpQ() * DpStripeW;
  bool S = isSignedKind(Kind);
  Opcode AddSat = S ? Opcode::AddSatS : Opcode::AddSatU;
  Opcode SubSat = S ? Opcode::SubSatS : Opcode::SubSatU;
  uint32_t Dp = addArr(F, "dp", Kind, QW + Slack);
  uint32_t Sc = addArr(F, "sc", Kind, DpRows * QW + Slack);
  uint32_t Best = addArr(F, "best", Kind, 4);
  ValueId Rows = F.addParam("rows", Type::scalar(ScalarKind::I64));
  ValueId QWv = F.addParam("qw", Type::scalar(ScalarKind::I64));
  ValueId Bias = F.addParam("bias", Type::scalar(Kind));
  IrBuilder B(F);
  // Max identity: the kind's smallest value.
  ValueId Ident = B.constInt(
      Kind, S ? -(static_cast<int64_t>(1) << (scalarSize(Kind) * 8 - 1))
              : 0);
  auto LT = B.beginLoop(B.constIdx(0), Rows, B.constIdx(1));
  ValueId RowBase = B.mul(LT.indVar(), QWv);
  auto LJ = B.beginLoop(B.constIdx(0), QWv, B.constIdx(1));
  ValueId M = B.addCarried(LJ, Ident);
  ValueId V = B.binop(AddSat, B.load(Dp, LJ.indVar()),
                      B.load(Sc, B.add(RowBase, LJ.indVar())));
  V = B.binop(SubSat, V, Bias);
  B.store(Dp, LJ.indVar(), V);
  B.setCarriedNext(LJ, M, B.smax(M, V));
  B.endLoop(LJ);
  B.store(Best, B.constIdx(0),
          B.smax(B.load(Best, B.constIdx(0)), B.carriedResult(LJ, M)));
  B.endLoop(LT);
  K.IntParams = {{"rows", DpRows}, {"qw", QW}, {"bias", 3}};
  if (scalarSize(Kind) == 2)
    K.Fill = wideDpFill;
  seal(K);
  return K;
}

/// Striped Viterbi-style filter (two-state): the row update takes the
/// better of the match/delete cells before the saturating score add, and
/// the delete cell decays by a saturating extension cost.
///
///   for t in [0, rows):
///     for j in [0, qw):
///       v      = addsat(max(dpM[j], dpD[j]), sc[t*qw + j])
///       dpD[j] = subsat(v, ext)
///       dpM[j] = v
///       m      = max(m, v)
///     best[0] = max(best[0], m)
Kernel vitFilter(ScalarKind Kind, const std::string &Name) {
  Kernel K;
  K.Name = Name;
  K.Suite = "kernel";
  K.Features = {"saturating", "striped-dp", "reduction"};
  K.ExternalArrays = {"sc"};
  Function &F = K.Source;
  F.Name = K.Name;
  const int64_t QW = dpQ() * DpStripeW;
  bool S = isSignedKind(Kind);
  Opcode AddSat = S ? Opcode::AddSatS : Opcode::AddSatU;
  Opcode SubSat = S ? Opcode::SubSatS : Opcode::SubSatU;
  uint32_t DpM = addArr(F, "dpM", Kind, QW + Slack);
  uint32_t DpD = addArr(F, "dpD", Kind, QW + Slack);
  uint32_t Sc = addArr(F, "sc", Kind, DpRows * QW + Slack);
  uint32_t Best = addArr(F, "best", Kind, 4);
  ValueId Rows = F.addParam("rows", Type::scalar(ScalarKind::I64));
  ValueId QWv = F.addParam("qw", Type::scalar(ScalarKind::I64));
  ValueId Ext = F.addParam("ext", Type::scalar(Kind));
  IrBuilder B(F);
  ValueId Ident = B.constInt(
      Kind, S ? -(static_cast<int64_t>(1) << (scalarSize(Kind) * 8 - 1))
              : 0);
  auto LT = B.beginLoop(B.constIdx(0), Rows, B.constIdx(1));
  ValueId RowBase = B.mul(LT.indVar(), QWv);
  auto LJ = B.beginLoop(B.constIdx(0), QWv, B.constIdx(1));
  ValueId M = B.addCarried(LJ, Ident);
  ValueId BestCell = B.smax(B.load(DpM, LJ.indVar()),
                            B.load(DpD, LJ.indVar()));
  ValueId V = B.binop(AddSat, BestCell,
                      B.load(Sc, B.add(RowBase, LJ.indVar())));
  B.store(DpD, LJ.indVar(), B.binop(SubSat, V, Ext));
  B.store(DpM, LJ.indVar(), V);
  B.setCarriedNext(LJ, M, B.smax(M, V));
  B.endLoop(LJ);
  B.store(Best, B.constIdx(0),
          B.smax(B.load(Best, B.constIdx(0)), B.carriedResult(LJ, M)));
  B.endLoop(LT);
  K.IntParams = {{"rows", DpRows}, {"qw", QW}, {"ext", 7}};
  if (scalarSize(Kind) == 2)
    K.Fill = wideDpFill;
  seal(K);
  return K;
}

} // namespace

std::vector<Kernel> kernels::table2Kernels() {
  std::vector<Kernel> Ks;
  Ks.push_back(dissolveS8());
  Ks.push_back(sadS8());
  Ks.push_back(sfirS16());
  Ks.push_back(interpS16());
  Ks.push_back(mixStreamsS16());
  Ks.push_back(convolveS32());
  Ks.push_back(alvinnS32fp());
  Ks.push_back(dctS32fp());
  Ks.push_back(dissolveFp());
  Ks.push_back(sfirFp());
  Ks.push_back(interpFp());
  Ks.push_back(mmmFp());
  Ks.push_back(dscal(ScalarKind::F32, "dscal_fp"));
  Ks.push_back(saxpy(ScalarKind::F32, "saxpy_fp"));
  Ks.push_back(dscal(ScalarKind::F64, "dscal_dp"));
  Ks.push_back(saxpy(ScalarKind::F64, "saxpy_dp"));
  Ks.push_back(ssvFilter(ScalarKind::U8, "ssv_u8"));
  Ks.push_back(ssvFilter(ScalarKind::I8, "ssv_s8"));
  Ks.push_back(vitFilter(ScalarKind::I16, "vit_s16"));
  Ks.push_back(vitFilter(ScalarKind::U16, "vit_u16"));
  return Ks;
}

std::vector<Kernel> kernels::allKernels() {
  std::vector<Kernel> Ks = table2Kernels();
  std::vector<Kernel> Poly = polybenchKernels();
  for (auto &K : Poly)
    Ks.push_back(std::move(K));
  return Ks;
}

Kernel kernels::kernelByName(const std::string &Name) {
  for (Kernel &K : allKernels())
    if (K.Name == Name)
      return std::move(K);
  fatalError("no kernel named " + Name);
}
