//===- target/VM.h - Cycle-model machine interpreter -----------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine behind every measured number in the repro: runs
/// a jit-compiled MFunction against a MemoryImage on one of the target
/// machine models and reports modeled cycles plus executed-instruction
/// counts. Executing 32 kernels x 4 flows x 5 targets per bench sweep
/// (counts verified against Pipeline.h's Flow enum and the kernel and
/// target registries) makes this the hot path of the repository, so it
/// is built as a pre-decoded threaded interpreter:
///
///  - construction decodes the structured machine code ONCE into a flat
///    array of fixed-size ops with resolved handler pointers, resolved
///    register-lane offsets, pre-encoded immediates, and the cycle cost
///    of each op baked in (loops and ifs become head/branch ops with
///    absolute jump targets);
///  - a post-decode macro-op fusion peephole (VMFuser, VM.cpp) rewrites
///    the dominant dynamic pairs -- address+load, load+arith, arith+
///    arith, arith+store, compare+branch, load+realign-permute, loop
///    plumbing copy+latch -- into single superops with summed cycle
///    costs and instruction counts, so the fused program models the
///    exact same cycles and instrsExecuted() in half the dispatches;
///  - the dispatch loop is `pc = op.Fn(vm, op, pc)` over that array --
///    no per-step name lookups, no maps, no allocation;
///  - all registers live in one flat preallocated file of 16-byte-
///    aligned 64-bit lanes; an op addresses lanes by precomputed offset;
///  - cycles and instruction counts accumulate as running integer adds.
///
/// The decoded (and fused) program is an immutable DecodedProgram that
/// many VMs can share: the content-addressed code cache (jit/CodeCache)
/// hands the same shared program to every sweep cell that compiles the
/// same function for the same target and placement, so repeated sweeps
/// skip decode+fuse entirely.
///
/// Aligned vector accesses (VLoadA/VStoreA) to a misaligned address are
/// a hard "alignment trap" abort: the machine models fault exactly where
/// real SSE movdqa / AltiVec lvx semantics would silently corrupt the
/// experiment. Traps report *pre-fusion* op indices: fusion keeps a side
/// table mapping each superop back to the original index of its (single)
/// trappable constituent, so TrapInfo attribution and the verifier's
/// mutation test stay exact with fusion on.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_TARGET_VM_H
#define VAPOR_TARGET_VM_H

#include "ir/Type.h"
#include "support/Status.h"
#include "target/Elision.h"
#include "target/MachineIR.h"
#include "target/MemoryImage.h"
#include "target/Target.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vapor {
namespace target {

/// Structured description of a recorded runtime trap. The executor's
/// deoptimization path and the verifier's mutation test assert on these
/// fields (op index, address, required alignment, target) instead of
/// parsing message strings.
struct TrapInfo {
  enum class Kind : uint8_t {
    None = 0,
    Alignment,   ///< Aligned vector access at a misaligned address.
    OutOfBounds, ///< Access outside the memory image.
  };
  Kind TrapKind = Kind::None;
  uint32_t OpIndex = ~0u;     ///< Faulting *pre-fusion* op PC (~0u unknown).
  uint64_t Address = 0;       ///< Faulting virtual address.
  uint32_t RequiredAlign = 0; ///< Bytes the access required (0 for bounds).
  bool IsStore = false;       ///< Store-side (vs load-side) fault.
  std::string Target;         ///< Name of the target model that trapped.

  /// One-line rendering, e.g. "alignment trap: aligned vector load at
  /// misaligned address 1048584 (requires 16B) on sse, op #12".
  std::string str() const;
};

class VM;

/// Structural class of a decoded op, written by the decoder so the
/// fusion peephole can pattern-match pairs without reverse-mapping
/// handler pointers. Runtime dispatch never reads it.
enum class OpCls : uint8_t {
  Other = 0,
  LoopHead, ///< Guarded loop entry; Imm = absolute exit target.
  Latch,    ///< iv += step; goto Imm (loop back-edge).
  Jump,     ///< Unconditional; Imm = absolute target.
  Branch,   ///< branch-if-zero; Imm = absolute target.
  Addr,     ///< base + (index << scale) address computation.
  LoadS,    ///< Scalar load; Sub = VMCheck state.
  StoreS,   ///< Scalar store; Sub = VMCheck state.
  VLoad,    ///< Vector load; Sub = VMCheck state (Align for VLoadA).
  VStore,   ///< Vector store; Sub = VMCheck state (Align for VStoreA).
  BinS,     ///< Scalar ALU binop; Sub = ir::Opcode.
  BinV,     ///< Vector ALU binop; Sub = ir::Opcode.
  CmpS,     ///< Scalar compare; Sub = ir::Opcode.
  VPerm,    ///< Two-source realignment permute.
  Copy,     ///< Synthetic whole-register copy (loop plumbing).
  Nop,      ///< Costed no-op (spill placeholder).
  Fused,    ///< Straight-line superop (fall-through).
  FusedBr,  ///< Control superop (cmp+branch, copy+latch); Imm = target.
};

/// Check state of a decoded memory op (DOp::Sub for the memory OpCls
/// values). The first two states are the historical defaults (Sub was a
/// bool "alignment-checked" flag); None/Audit* exist only when a checked
/// elision plan granted the access, so a null plan decodes byte-identical
/// programs to the pre-elision VM.
enum class VMCheck : uint8_t {
  Bounds = 0, ///< Image-bounds check only (unaligned vector / scalar).
  Align = 1,  ///< Alignment trap check, then bounds (VLoadA/VStoreA).
  None = 2,   ///< Every check elided by a checked certificate grant.
  /// Audit mode keeps the op's normal checks (including trapping!) but
  /// first counts *genuine* predicate fires into the VM's audit
  /// counters: each count is an instance an On-mode run would have
  /// elided. AuditAlign counts both predicates; AuditBounds only the
  /// bounds predicate.
  AuditAlign = 3,
  AuditBounds = 4,
};

/// An immutable decoded (and optionally fused) program: everything the
/// VM's dispatch loop needs except the mutable machine state (register
/// file, memory image, counters). Built once per (function, target,
/// placement, weak-tier) and shareable across any number of VMs running
/// concurrently -- the parallel sweep engine and the code cache rely on
/// that const-ness.
class DecodedProgram {
public:
  struct DOp;
  /// Executes one decoded op and \returns the next program counter.
  using Handler = uint32_t (*)(VM &, const DOp &, uint32_t);

  /// One pre-decoded op: handler, register-lane offsets (A..D), an
  /// immediate (pre-encoded constant, jump target, align mask, or shift
  /// depending on the handler), cost, and lane count. Superops pack both
  /// constituents' fields; their Cost/Counts are the pair's sums, so
  /// modeled cycles and instruction counts are fusion-invariant.
  struct DOp {
    Handler Fn = nullptr;
    uint32_t A = 0;
    uint32_t B = 0;
    uint32_t C = 0;
    uint32_t D = 0;
    int64_t Imm = 0;
    uint32_t Cost = 0;
    uint32_t Aux = 0;      ///< AuxLanes start (VExtract); superop lane off.
    uint16_t Lanes = 1;    ///< Lanes this op operates on.
    uint8_t Kind = 0;      ///< ir::ScalarKind of the operation.
    uint8_t SrcKind = 0;   ///< Source kind (converts); operand-order flag
                           ///< for superops (1 = fused value is the RHS).
    uint8_t Counts = 0;    ///< Contribution to instrsExecuted().
    OpCls Cls = OpCls::Other; ///< Structural class (fusion matching).
    uint8_t Sub = 0;       ///< Sub-opcode / checked flag (see OpCls).
  };

  /// Decodes \p F for target \p T with array bases resolved against
  /// \p Image's placement, then (when \p Fuse) runs the macro-op fusion
  /// peephole. \p Weak models the weak online tier (x87 scalar FP).
  /// \p Plan (may be null) grants per-access check elision: granted
  /// accesses decode to unchecked (or audit-counting) handlers. Cost and
  /// Counts never depend on the plan, so modeled cycles and
  /// instrsExecuted() are elision-invariant.
  static std::shared_ptr<const DecodedProgram>
  build(const MFunction &F, const TargetDesc &T, const MemoryImage &Image,
        bool Weak = false, bool Fuse = true,
        const ElisionPlan *Plan = nullptr);

  /// Maps a decoded-op PC back to the pre-fusion op index reported in
  /// TrapInfo::OpIndex: for a superop, the original index of its single
  /// trappable constituent. Identity when no fusion ran.
  uint32_t origIndex(uint32_t PC) const {
    return OrigIndex.empty() ? PC : OrigIndex[PC];
  }

  std::vector<DOp> Code;
  std::vector<uint32_t> AuxLanes; ///< Resolved lane offsets (VExtract).

  struct ParamSlot {
    std::string Name;
    uint32_t Off;
    ir::ScalarKind Kind;
  };
  std::vector<ParamSlot> Params;

  uint32_t LaneCount = 0; ///< 64-bit lanes in the register file.
  std::string TargetName; ///< For TrapInfo reporting.

  /// Per-superop original pre-fusion index (trappable constituent).
  /// Empty means identity (fusion off or nothing fused).
  std::vector<uint32_t> OrigIndex;
  uint32_t PreFusionOps = 0; ///< Op count before the peephole.
  uint32_t FusedOps = 0;     ///< Superops emitted by the peephole.
};

class VM {
public:
  /// Decodes \p F for execution on \p T against \p Image. \p Weak models
  /// the weak online tier's execution environment (x87 scalar FP);
  /// \p Fuse runs the macro-op fusion peephole (identical results, fewer
  /// dispatches). Arrays must already be placed in \p Image; bases are
  /// resolved here.
  VM(const MFunction &F, const TargetDesc &T, MemoryImage &Image,
     bool Weak = false, bool Fuse = true,
     const ElisionPlan *Plan = nullptr);

  /// Runs a prebuilt (typically cache-shared) program against \p Image.
  /// \p Image must use the placement the program's bases were resolved
  /// against.
  VM(std::shared_ptr<const DecodedProgram> Program, MemoryImage &Image);

  /// The immutable program this VM executes.
  const DecodedProgram &program() const { return *Prog; }

  /// Binds scalar parameter \p Name (aborts on unknown names).
  void setParamInt(const std::string &Name, int64_t V);
  void setParamFP(const std::string &Name, double V);

  /// Executes the function once. May be called repeatedly; cycle and
  /// instruction counters accumulate across runs. In trap-recording mode
  /// a runtime fault ends the run and comes back as a Vm-layer Status
  /// (with the structured details in trapInfo()); otherwise a fault is a
  /// hard abort, exactly where real movdqa/lvx semantics would corrupt
  /// the experiment. A successful run returns Ok either way.
  status::Status run();

  /// Modeled cycles consumed so far.
  uint64_t cycles() const { return Cycles; }
  /// Machine instructions executed so far (control flow not included).
  uint64_t instrsExecuted() const { return Instrs; }

  /// In trap-recording mode a runtime trap halts the current run()
  /// and is reported through trapped()/trapInfo() instead of aborting
  /// the process. The static verifier's tests use this as ground truth:
  /// a recorded trap is exactly the fault the verifier must have
  /// predicted. The executor's degradation chain runs every split-flow
  /// VM in this mode so it can deoptimize instead of dying.
  void setTrapRecording(bool On) { TrapRecording = On; }
  bool trapped() const { return Trapped; }

  /// Arms a per-run dispatch budget (the execution service's deadline):
  /// a run that dispatches more than \p MaxDispatches decoded ops halts
  /// with a DeadlineExceeded Status instead of wedging its worker. 0
  /// (the default) is unlimited and runs the exact pre-fuel dispatch
  /// loop -- the fueled loop is a separate copy, so unfueled callers pay
  /// nothing. The budget re-arms at every run() call.
  void setFuel(uint64_t MaxDispatches) { Fuel = MaxDispatches; }

  /// Audit-mode telemetry: genuine would-have-been-elided predicate fires
  /// accumulated across runs (VMCheck::AuditAlign/AuditBounds ops). Any
  /// nonzero count means a certificate grant was wrong -- the access also
  /// trapped normally, so audit runs never execute unsafely.
  uint64_t auditAlignFired() const { return AuditAlignFired; }
  uint64_t auditBoundsFired() const { return AuditBoundsFired; }
  /// Structured details of the recorded trap (TrapKind None if none).
  const TrapInfo &trapInfo() const { return Trap; }
  const std::string &trapMessage() const { return TrapMsg; }

private:
  using DOp = DecodedProgram::DOp;

  friend struct VMOps; ///< Handler implementations (VM.cpp).

  /// Sizes and aligns the register file for Prog and caches the aux-lane
  /// base pointer.
  void bindProgram();

  /// Bounds-fault site: aborts, or in trap-recording mode records the
  /// fault and \returns a zeroed scratch buffer the faulting op harmlessly
  /// operates on. The run then continues to its normal (register-driven)
  /// termination so the dispatch loop needs no per-op trap check; the
  /// recorded fault surfaces in run()'s Status.
  uint8_t *memFault(uint64_t Addr);

  /// Alignment-trap site: aborts, or in trap-recording mode records the
  /// fault (with \p PC mapped to its pre-fusion op index) and \returns a
  /// past-the-end PC that halts the run loop.
  uint32_t alignTrap(uint32_t PC, uint64_t Addr, uint32_t RequiredAlign,
                     bool IsStore);

  std::shared_ptr<const DecodedProgram> Prog;
  std::vector<uint64_t> RegStore; ///< Backing store for the lane file.
  uint64_t *R = nullptr;          ///< 16-byte-aligned lane file.
  const uint32_t *AuxBase = nullptr; ///< Prog->AuxLanes.data().

  MemoryImage &Mem;
  uint8_t *MemPtr = nullptr; ///< Cached image pointer during run().
  uint64_t MemLo = 0;
  uint64_t MemHi = 0;

  uint64_t Cycles = 0;
  uint64_t Instrs = 0;
  uint64_t Fuel = 0; ///< Per-run dispatch budget; 0 = unlimited.
  uint64_t AuditAlignFired = 0;
  uint64_t AuditBoundsFired = 0;

  bool TrapRecording = false;
  bool Trapped = false;
  TrapInfo Trap;
  std::string TrapMsg;
  alignas(16) uint8_t Scratch[64] = {}; ///< Sink for faulted accesses.
};

} // namespace target
} // namespace vapor

#endif // VAPOR_TARGET_VM_H
