//===- target/Iaca.h - Static port-model loop throughput -------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature IACA: a static throughput analysis of the vectorized main
/// loop in the style of Intel's Architecture Code Analyzer, which the
/// paper uses to report cycles-per-iteration for the AVX kernels
/// (Table 3). The model issues the loop body onto three port groups --
/// two load ports, one store port (which shares address generation with
/// the load pipes), three ALU/shuffle ports -- and reports the
/// steady-state bottleneck:
///
///   Cycles = max(1, Stores + ceil(Loads / 2), ceil(AluOps / 3))
///
/// Unaligned 32-byte accesses split into two port uops (as on Sandy
/// Bridge); 16-byte-or-narrower accesses occupy one port each.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_TARGET_IACA_H
#define VAPOR_TARGET_IACA_H

#include "target/MachineIR.h"
#include "target/Target.h"

namespace vapor {
namespace target {

/// Static throughput report for the vectorized main loop.
struct IacaReport {
  bool Found = false;   ///< A vector main loop was located.
  unsigned Cycles = 0;  ///< Bottleneck cycles per loop iteration.
  unsigned Loads = 0;   ///< Load-port uops per iteration.
  unsigned Stores = 0;  ///< Store-port uops per iteration.
  unsigned AluOps = 0;  ///< ALU/shuffle-port uops per iteration.
};

/// Analyzes the first vectorized main loop of \p F (pre-order) under
/// target \p T's port widths. \returns Found=false when \p F has no
/// vector main loop.
IacaReport analyzeVectorLoop(const MFunction &F, const TargetDesc &T);

} // namespace target
} // namespace vapor

#endif // VAPOR_TARGET_IACA_H
