//===- target/MachineIR.cpp - Machine code printer ------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "target/MachineIR.h"

#include "support/Support.h"

#include <sstream>

using namespace vapor;
using namespace vapor::target;

const char *target::mopMnemonic(MOp Op) {
  switch (Op) {
  case MOp::LdImm:
    return "ldimm";
  case MOp::LdFImm:
    return "ldfimm";
  case MOp::Mov:
    return "mov";
  case MOp::LoadBase:
    return "loadbase";
  case MOp::Addr:
    return "addr";
  case MOp::Alu:
    return "alu";
  case MOp::Load:
    return "load";
  case MOp::Store:
    return "store";
  case MOp::VLoadA:
    return "vload.a";
  case MOp::VLoadU:
    return "vload.u";
  case MOp::VStoreA:
    return "vstore.a";
  case MOp::VStoreU:
    return "vstore.u";
  case MOp::GetPerm:
    return "getperm";
  case MOp::VPerm:
    return "vperm";
  case MOp::VSplat:
    return "vsplat";
  case MOp::VAffine:
    return "vaffine";
  case MOp::VSetLane0:
    return "vsetlane0";
  case MOp::VExtract:
    return "vextract";
  case MOp::VIlvLo:
    return "vilv.lo";
  case MOp::VIlvHi:
    return "vilv.hi";
  case MOp::VWMulLo:
    return "vwmul.lo";
  case MOp::VWMulHi:
    return "vwmul.hi";
  case MOp::VPack:
    return "vpack";
  case MOp::VUnpackLo:
    return "vunpack.lo";
  case MOp::VUnpackHi:
    return "vunpack.hi";
  case MOp::VDot:
    return "vdot";
  case MOp::Reduce:
    return "reduce";
  case MOp::CallLib:
    return "calllib";
  case MOp::SpillLd:
    return "spill.ld";
  case MOp::SpillSt:
    return "spill.st";
  }
  vapor_unreachable("bad machine opcode");
}

namespace {

class Printer {
public:
  explicit Printer(const MFunction &Fn) : F(Fn) {}

  std::string print() {
    OS << "func " << F.Name << " vs=" << F.VSBytes << "\n";
    for (size_t A = 0; A < F.Arrays.size(); ++A) {
      const ir::ArrayInfo &AI = F.Arrays[A];
      OS << "  array " << A << ": " << AI.Name << " "
         << ir::scalarKindName(AI.Elem) << "[" << AI.NumElems << "] align "
         << AI.BaseAlign << "\n";
    }
    for (const MParam &P : F.Params)
      OS << "  param " << P.Name << " = " << reg(P.Reg) << "\n";
    region(F.Body, 1);
    return OS.str();
  }

private:
  const MFunction &F;
  std::ostringstream OS;

  std::string reg(MReg R) const {
    if (R == NoReg)
      return "r?";
    return "r" + std::to_string(R);
  }

  void indent(unsigned Depth) {
    for (unsigned I = 0; I < Depth; ++I)
      OS << "  ";
  }

  void region(const MRegion &R, unsigned Depth) {
    for (const MNodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case MNodeKind::Instr:
        instr(F.Instrs[N.Index], Depth);
        break;
      case MNodeKind::Loop:
        loop(F.Loops[N.Index], Depth);
        break;
      case MNodeKind::If: {
        const MIf &S = F.Ifs[N.Index];
        indent(Depth);
        OS << "if " << reg(S.Cond) << " {\n";
        region(S.Then, Depth + 1);
        indent(Depth);
        OS << "} else {\n";
        region(S.Else, Depth + 1);
        indent(Depth);
        OS << "}\n";
        break;
      }
      }
    }
  }

  void loop(const MLoop &L, unsigned Depth) {
    indent(Depth);
    OS << "for " << reg(L.IndVar) << " = " << reg(L.Lower) << " to "
       << reg(L.Upper) << " step " << reg(L.Step);
    if (L.IsVectorMain)
      OS << " [vec-main]";
    OS << " {\n";
    for (const MLoop::CarriedVar &C : L.Carried) {
      indent(Depth + 1);
      OS << reg(C.Phi) << " = phi(init " << reg(C.Init) << ", next "
         << reg(C.Next) << ")\n";
    }
    region(L.Body, Depth + 1);
    indent(Depth);
    OS << "}\n";
  }

  void instr(const MInstr &I, unsigned Depth) {
    indent(Depth);
    if (I.Dst != NoReg)
      OS << reg(I.Dst) << " = ";
    OS << mopMnemonic(I.Op);
    if (I.Op == MOp::Alu || I.Op == MOp::Reduce || I.Op == MOp::CallLib)
      OS << "." << ir::opcodeMnemonic(I.SubOp);
    if (I.Kind != ir::ScalarKind::None) {
      OS << "." << ir::scalarKindName(I.Kind);
      if (I.Vector)
        OS << "v";
    }
    switch (I.Op) {
    case MOp::LdImm:
      OS << " " << I.Imm;
      break;
    case MOp::LdFImm:
      OS << " " << I.FImm;
      break;
    case MOp::LoadBase:
      OS << " " << (I.Array < F.Arrays.size() ? F.Arrays[I.Array].Name
                                              : std::to_string(I.Array));
      break;
    case MOp::Addr:
      OS << " " << reg(I.Srcs[0]) << " + " << reg(I.Srcs[1]) << "*"
         << I.Scale;
      if (I.Folded)
        OS << " [folded]";
      break;
    case MOp::VExtract:
      for (MReg S : I.Srcs)
        OS << " " << reg(S);
      OS << " start " << I.Imm << " stride " << I.Imm2;
      break;
    default:
      for (size_t S = 0; S < I.Srcs.size(); ++S)
        OS << (S ? ", " : " ") << reg(I.Srcs[S]);
      break;
    }
    OS << "\n";
  }
};

} // namespace

std::string MFunction::str() const { return Printer(*this).print(); }
