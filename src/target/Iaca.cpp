//===- target/Iaca.cpp - Static port-model loop throughput ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "target/Iaca.h"

#include <algorithm>

namespace vapor {
namespace target {
namespace {

/// Port uops for one memory access of width \p VSBytes: misaligned
/// 32-byte accesses split in two on the modeled microarchitecture.
unsigned memUops(bool Unaligned, unsigned VSBytes) {
  return (Unaligned && VSBytes > 16) ? 2 : 1;
}

struct PortCounter {
  const MFunction &F;
  unsigned VSBytes;
  IacaReport R;

  void count(const MRegion &Body) {
    for (const MNodeRef &N : Body.Nodes) {
      switch (N.Kind) {
      case MNodeKind::Instr:
        instr(F.Instrs[N.Index]);
        break;
      case MNodeKind::Loop:
        count(F.Loops[N.Index].Body);
        break;
      case MNodeKind::If:
        count(F.Ifs[N.Index].Then);
        count(F.Ifs[N.Index].Else);
        break;
      }
    }
  }

  void instr(const MInstr &I) {
    switch (I.Op) {
    case MOp::Load:
    case MOp::SpillLd:
      R.Loads += 1;
      break;
    case MOp::VLoadA:
      R.Loads += 1;
      break;
    case MOp::VLoadU:
      R.Loads += memUops(true, VSBytes);
      break;
    case MOp::Store:
    case MOp::SpillSt:
      R.Stores += 1;
      break;
    case MOp::VStoreA:
      R.Stores += 1;
      break;
    case MOp::VStoreU:
      R.Stores += memUops(true, VSBytes);
      break;
    case MOp::LdImm:
    case MOp::LdFImm:
    case MOp::Mov:
    case MOp::LoadBase:
      break; // Register plumbing; eliminated by renaming.
    case MOp::Addr:
      if (!I.Folded)
        R.AluOps += 1;
      break;
    case MOp::CallLib:
      R.AluOps += 10; // Out-of-line helper; saturates the ALU ports.
      break;
    default:
      R.AluOps += 1; // ALU, shuffles, widening idioms, reductions.
      break;
    }
  }
};

bool hasVectorInstr(const MFunction &F, const MRegion &Body) {
  for (const MNodeRef &N : Body.Nodes) {
    switch (N.Kind) {
    case MNodeKind::Instr: {
      const MInstr &I = F.Instrs[N.Index];
      if (I.Vector || (I.Op >= MOp::VLoadA && I.Op <= MOp::Reduce))
        return true;
      break;
    }
    case MNodeKind::Loop:
      if (hasVectorInstr(F, F.Loops[N.Index].Body))
        return true;
      break;
    case MNodeKind::If:
      if (hasVectorInstr(F, F.Ifs[N.Index].Then) ||
          hasVectorInstr(F, F.Ifs[N.Index].Else))
        return true;
      break;
    }
  }
  return false;
}

/// Pre-order search for the first vectorized main loop.
const MLoop *findVectorMain(const MFunction &F, const MRegion &R) {
  for (const MNodeRef &N : R.Nodes) {
    switch (N.Kind) {
    case MNodeKind::Loop: {
      const MLoop &L = F.Loops[N.Index];
      if (L.IsVectorMain && hasVectorInstr(F, L.Body))
        return &L;
      if (const MLoop *Inner = findVectorMain(F, L.Body))
        return Inner;
      break;
    }
    case MNodeKind::If: {
      const MIf &S = F.Ifs[N.Index];
      if (const MLoop *Inner = findVectorMain(F, S.Then))
        return Inner;
      if (const MLoop *Inner = findVectorMain(F, S.Else))
        return Inner;
      break;
    }
    case MNodeKind::Instr:
      break;
    }
  }
  return nullptr;
}

unsigned ceilDiv(unsigned A, unsigned B) { return (A + B - 1) / B; }

} // namespace

IacaReport analyzeVectorLoop(const MFunction &F, const TargetDesc &T) {
  IacaReport R;
  const MLoop *L = findVectorMain(F, F.Body);
  if (!L)
    return R;

  PortCounter PC{F, T.VSBytes ? T.VSBytes : F.VSBytes, {}};
  PC.count(L->Body);
  R = PC.R;
  R.Found = true;
  R.Cycles =
      std::max({1u, R.Stores + ceilDiv(R.Loads, 2), ceilDiv(R.AluOps, 3)});
  return R;
}

} // namespace target
} // namespace vapor
