//===- target/Target.cpp - Per-target machine models ----------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "target/Target.h"

#include "support/Support.h"

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::target;

static_assert(static_cast<unsigned>(Opcode::LibCall) < 64,
              "UnsupportedOpMask needs one bit per opcode");

namespace {

constexpr uint16_t kindBit(ScalarKind K) {
  return static_cast<uint16_t>(1u << static_cast<unsigned>(K));
}

constexpr uint64_t opBit(Opcode Op) {
  return 1ull << static_cast<unsigned>(Op);
}

} // namespace

TargetDesc target::sseTarget() {
  TargetDesc T;
  T.Name = "sse";
  T.VSBytes = 16;
  T.HasMisaligned = true;
  T.HasPermRealign = false;
  T.X87ScalarFP = true;
  // x86: a small integer file (reuse keeps the effective count above the
  // architectural eight) and eight xmm registers.
  T.ScalarRegs = 12;
  T.VectorRegs = 8;
  return T;
}

TargetDesc target::altivecTarget() {
  TargetDesc T;
  T.Name = "altivec";
  T.VSBytes = 16;
  T.HasMisaligned = false;
  T.HasPermRealign = true;
  T.ScalarRegs = 32;
  T.VectorRegs = 32;
  T.UnsupportedKindMask = kindBit(ScalarKind::F64); // No vector doubles.
  return T;
}

TargetDesc target::neonTarget() {
  TargetDesc T;
  T.Name = "neon";
  T.VSBytes = 8; // 64-bit NEON, the paper's EfikaMX-era configuration.
  T.HasMisaligned = true;
  T.HasPermRealign = false;
  T.LibFallbackForOps = true; // dissolve/dct idioms via library support.
  T.ScalarRegs = 16;
  T.VectorRegs = 16;
  T.UnsupportedKindMask = kindBit(ScalarKind::F64);
  T.UnsupportedOpMask = opBit(Opcode::WidenMultLo) |
                        opBit(Opcode::WidenMultHi) |
                        opBit(Opcode::Convert);
  return T;
}

TargetDesc target::avxTarget() {
  TargetDesc T;
  T.Name = "avx";
  T.VSBytes = 32;
  T.HasMisaligned = true;
  T.HasPermRealign = false;
  T.X87ScalarFP = true;
  T.ScalarRegs = 16;
  T.VectorRegs = 16;
  return T;
}

TargetDesc target::scalarTarget() {
  TargetDesc T;
  T.Name = "scalar";
  T.VSBytes = 0;
  // A full modern integer file: scalar-expanded vector bytecode keeps a
  // whole virtual vector in scalar registers, and the paper's scalar
  // baselines (x86-64, PPC) have 16+ GPRs to hold it.
  T.ScalarRegs = 16;
  T.VectorRegs = 0;
  // No native saturating ALU: every lane pays an add + two-sided clamp.
  T.Costs.SatOp = 3;
  return T;
}

std::vector<TargetDesc> target::allTargets() {
  return {sseTarget(), altivecTarget(), neonTarget(), avxTarget(),
          scalarTarget()};
}

unsigned target::instrCost(const TargetDesc &T, const MInstr &I,
                           bool WeakTier) {
  const CostTable &C = T.Costs;
  switch (I.Op) {
  case MOp::LdImm:
  case MOp::LdFImm:
  case MOp::Mov:
  case MOp::LoadBase:
    return C.RegOp;
  case MOp::Addr:
    return I.Folded ? 0 : C.AddrOp;
  case MOp::Alu:
    switch (I.SubOp) {
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Sqrt:
      return C.DivOp;
    case Opcode::Convert:
      return C.ConvertOp;
    case Opcode::AddSatS:
    case Opcode::AddSatU:
    case Opcode::SubSatS:
    case Opcode::SubSatU:
      return C.SatOp;
    default:
      break;
    }
    if (isCompare(I.SubOp) || !isFloatKind(I.Kind))
      return C.IntOp;
    // Scalar FP on the weak tier runs on the x87 stack on x86 targets;
    // vector FP always uses the SIMD unit.
    if (!I.Vector && WeakTier && T.X87ScalarFP)
      return C.X87Op;
    return C.FpOp;
  case MOp::Load:
    return C.ScalarLoad;
  case MOp::Store:
    return C.ScalarStore;
  case MOp::VLoadA:
    return C.VecLoadA;
  case MOp::VLoadU:
    return C.VecLoadU;
  case MOp::VStoreA:
    return C.VecStoreA;
  case MOp::VStoreU:
    return C.VecStoreU;
  case MOp::GetPerm:
    return C.IntOp;
  case MOp::VPerm:
  case MOp::VSplat:
  case MOp::VAffine:
  case MOp::VSetLane0:
  case MOp::VExtract:
  case MOp::VIlvLo:
  case MOp::VIlvHi:
  case MOp::VPack:
  case MOp::VUnpackLo:
  case MOp::VUnpackHi:
    return C.Shuffle;
  case MOp::VWMulLo:
  case MOp::VWMulHi:
    return C.WideMul;
  case MOp::VDot:
    return C.DotOp;
  case MOp::Reduce:
    return C.ReduceOp;
  case MOp::CallLib:
    return C.LibCall;
  case MOp::SpillLd:
  case MOp::SpillSt:
    return C.SpillOp;
  }
  vapor_unreachable("bad machine opcode");
}
