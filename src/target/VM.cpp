//===- target/VM.cpp - Cycle-model machine interpreter --------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Two pieces live here:
//
//  VMDecoder -- walks the structured MFunction once and flattens it into
//      VM::Code, a dense array of DOps. Loops become
//        [iv=lower] [phi=init]... HEAD body... [phi=next]... IV+=STEP,goto HEAD
//      with absolute, patched jump targets; every op gets its handler
//      pointer, its registers resolved to lane-file offsets, and its
//      cycle cost from the target cost table.
//
//  VMOps -- the handler table. Handlers are function templates
//      instantiated per element size / sub-opcode so the per-step work
//      is a direct call with no inner dispatch. Lane arithmetic is
//      ir::applyBinop and friends: the exact same lane semantics as the
//      golden evaluator, which is what makes bit-exact cross-checking of
//      integer kernels possible.
//
//===----------------------------------------------------------------------===//

#include "target/VM.h"

#include "ir/ScalarOps.h"
#include "support/FaultInject.h"
#include "support/Support.h"

#include <cstring>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::target;

namespace vapor {
namespace target {

//===--- Handlers ---------------------------------------------------------===//

struct VMOps {
  using DOp = VM::DOp;

  static ScalarKind kindOf(const DOp &O) {
    return static_cast<ScalarKind>(O.Kind);
  }
  static ScalarKind srcKindOf(const DOp &O) {
    return static_cast<ScalarKind>(O.SrcKind);
  }

  /// Bounds-checked host pointer for [Addr, Addr+Size). An out-of-image
  /// access faults: abort, or (trap-recording) a recorded trap plus a
  /// scratch pointer so the op completes harmlessly before the halt.
  static uint8_t *mem(VM &Vm, uint64_t Addr, uint64_t Size) {
    if (Addr < Vm.MemLo || Addr + Size > Vm.MemHi)
      return Vm.memFault(Addr);
    return Vm.MemPtr + (Addr - Vm.MemLo);
  }

  template <unsigned ES> static uint64_t ld(const uint8_t *P) {
    if constexpr (ES == 1) {
      return *P;
    } else if constexpr (ES == 2) {
      uint16_t V;
      std::memcpy(&V, P, 2);
      return V;
    } else if constexpr (ES == 4) {
      uint32_t V;
      std::memcpy(&V, P, 4);
      return V;
    } else {
      uint64_t V;
      std::memcpy(&V, P, 8);
      return V;
    }
  }

  template <unsigned ES> static void st(uint8_t *P, uint64_t V) {
    std::memcpy(P, &V, ES);
  }

  //===--- Register setup -------------------------------------------------===//

  static uint32_t setImm(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = static_cast<uint64_t>(O.Imm);
    return PC + 1;
  }

  static uint32_t copyLanes(VM &Vm, const DOp &O, uint32_t PC) {
    std::memcpy(Vm.R + O.A, Vm.R + O.B, O.Lanes * sizeof(uint64_t));
    return PC + 1;
  }

  static uint32_t addr(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = Vm.R[O.B] + (Vm.R[O.C] << O.Imm);
    return PC + 1;
  }

  //===--- Control flow (synthetic; no instr count) -----------------------===//

  static uint32_t loopHead(VM &Vm, const DOp &O, uint32_t PC) {
    if (static_cast<int64_t>(Vm.R[O.A]) >= static_cast<int64_t>(Vm.R[O.B]))
      return static_cast<uint32_t>(O.Imm);
    return PC + 1;
  }

  static uint32_t ivAddJump(VM &Vm, const DOp &O, uint32_t) {
    Vm.R[O.A] += Vm.R[O.B];
    return static_cast<uint32_t>(O.Imm);
  }

  static uint32_t jump(VM &, const DOp &O, uint32_t) {
    return static_cast<uint32_t>(O.Imm);
  }

  static uint32_t branchIfZero(VM &Vm, const DOp &O, uint32_t PC) {
    if ((Vm.R[O.A] & 1) == 0)
      return static_cast<uint32_t>(O.Imm);
    return PC + 1;
  }

  static uint32_t nop(VM &, const DOp &, uint32_t PC) { return PC + 1; }

  //===--- Scalar and vector memory ---------------------------------------===//

  template <unsigned ES>
  static uint32_t loadScalar(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = ld<ES>(mem(Vm, Vm.R[O.B], ES));
    return PC + 1;
  }

  template <unsigned ES>
  static uint32_t storeScalar(VM &Vm, const DOp &O, uint32_t PC) {
    st<ES>(mem(Vm, Vm.R[O.A], ES), Vm.R[O.B]);
    return PC + 1;
  }

  template <unsigned ES, bool Checked>
  static uint32_t vload(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.B];
    if constexpr (Checked)
      if ((Addr & static_cast<uint64_t>(O.Imm)) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(O.Imm) + 1,
                            /*IsStore=*/false);
    const uint8_t *P = mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = ld<ES>(P + L * ES);
    return PC + 1;
  }

  template <unsigned ES, bool Checked>
  static uint32_t vstore(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.A];
    if constexpr (Checked)
      if ((Addr & static_cast<uint64_t>(O.Imm)) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(O.Imm) + 1,
                            /*IsStore=*/true);
    uint8_t *P = mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      st<ES>(P + L * ES, Vm.R[O.B + L]);
    return PC + 1;
  }

  //===--- ALU -------------------------------------------------------------===//

  template <Opcode Sub>
  static uint32_t binS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyBinop(Sub, kindOf(O), Vm.R[O.B], Vm.R[O.C]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t binV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyBinop(Sub, K, Vm.R[O.B + L], Vm.R[O.C + L]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t unS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyUnop(Sub, kindOf(O), Vm.R[O.B]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t unV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyUnop(Sub, K, Vm.R[O.B + L]);
    return PC + 1;
  }

  // Compares carry the I1 result kind in Kind; the comparison itself
  // runs at the operand kind (SrcKind), exactly like the evaluator.
  template <Opcode Sub>
  static uint32_t cmpS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyCompare(Sub, srcKindOf(O), Vm.R[O.B], Vm.R[O.C]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t cmpV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = srcKindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyCompare(Sub, K, Vm.R[O.B + L], Vm.R[O.C + L]);
    return PC + 1;
  }

  static uint32_t selS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = (Vm.R[O.B] & 1) ? Vm.R[O.C] : Vm.R[O.D];
    return PC + 1;
  }

  static uint32_t selV(VM &Vm, const DOp &O, uint32_t PC) {
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] =
          (Vm.R[O.B + L] & 1) ? Vm.R[O.C + L] : Vm.R[O.D + L];
    return PC + 1;
  }

  static uint32_t cvtS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyConvert(srcKindOf(O), kindOf(O), Vm.R[O.B]);
    return PC + 1;
  }

  static uint32_t cvtV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind SK = srcKindOf(O), DK = kindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyConvert(SK, DK, Vm.R[O.B + L]);
    return PC + 1;
  }

  //===--- Vector initialization and realignment --------------------------===//

  static uint32_t splat(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t V = Vm.R[O.B];
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = V;
    return PC + 1;
  }

  static uint32_t affine(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    uint64_t Cur = Vm.R[O.B], Inc = Vm.R[O.C];
    for (unsigned L = 0; L < O.Lanes; ++L) {
      Vm.R[O.A + L] = Cur;
      Cur = applyBinop(Opcode::Add, K, Cur, Inc);
    }
    return PC + 1;
  }

  static uint32_t setLane0(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Scalar = Vm.R[O.C];
    std::memcpy(Vm.R + O.A, Vm.R + O.B, O.Lanes * sizeof(uint64_t));
    Vm.R[O.A] = Scalar;
    return PC + 1;
  }

  static uint32_t getPerm(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = Vm.R[O.B] & static_cast<uint64_t>(O.Imm);
    return PC + 1;
  }

  /// Imm holds log2(element size); lanes select from the concatenation
  /// of the two source vectors starting at the realignment token.
  static uint32_t vperm(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Off = Vm.R[O.D] >> O.Imm;
    for (unsigned L = 0; L < O.Lanes; ++L) {
      uint64_t Pos = Off + L;
      Vm.R[O.A + L] = Pos < O.Lanes ? Vm.R[O.B + Pos]
                                    : Vm.R[O.C + Pos - O.Lanes];
    }
    return PC + 1;
  }

  //===--- Reorganization and widening idioms ------------------------------===//

  static uint32_t extract(VM &Vm, const DOp &O, uint32_t PC) {
    const uint32_t *Aux = Vm.AuxLanes.data() + O.Aux;
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = Vm.R[Aux[L]];
    return PC + 1;
  }

  /// Imm holds the source half offset (0 for Lo, Lanes/2 for Hi).
  static uint32_t ilv(VM &Vm, const DOp &O, uint32_t PC) {
    unsigned Half = O.Lanes / 2;
    uint64_t Off = static_cast<uint64_t>(O.Imm);
    for (unsigned L = 0; L < Half; ++L) {
      Vm.R[O.A + 2 * L] = Vm.R[O.B + Off + L];
      Vm.R[O.A + 2 * L + 1] = Vm.R[O.C + Off + L];
    }
    return PC + 1;
  }

  static uint32_t wmul(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind NK = srcKindOf(O), WK = kindOf(O);
    uint64_t Off = static_cast<uint64_t>(O.Imm);
    for (unsigned J = 0; J < O.Lanes; ++J)
      Vm.R[O.A + J] =
          applyBinop(Opcode::Mul, WK,
                     applyConvert(NK, WK, Vm.R[O.B + Off + J]),
                     applyConvert(NK, WK, Vm.R[O.C + Off + J]));
    return PC + 1;
  }

  static uint32_t pack(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind WK = srcKindOf(O), NK = kindOf(O);
    unsigned Half = O.Lanes / 2;
    for (unsigned L = 0; L < Half; ++L) {
      Vm.R[O.A + L] = applyConvert(WK, NK, Vm.R[O.B + L]);
      Vm.R[O.A + Half + L] = applyConvert(WK, NK, Vm.R[O.C + L]);
    }
    return PC + 1;
  }

  static uint32_t unpack(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind NK = srcKindOf(O), WK = kindOf(O);
    uint64_t Off = static_cast<uint64_t>(O.Imm);
    for (unsigned J = 0; J < O.Lanes; ++J)
      Vm.R[O.A + J] = applyConvert(NK, WK, Vm.R[O.B + Off + J]);
    return PC + 1;
  }

  static uint32_t dot(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind NK = srcKindOf(O), WK = kindOf(O);
    for (unsigned J = 0; J < O.Lanes; ++J) {
      uint64_t P0 =
          applyBinop(Opcode::Mul, WK,
                     applyConvert(NK, WK, Vm.R[O.B + 2 * J]),
                     applyConvert(NK, WK, Vm.R[O.C + 2 * J]));
      uint64_t P1 =
          applyBinop(Opcode::Mul, WK,
                     applyConvert(NK, WK, Vm.R[O.B + 2 * J + 1]),
                     applyConvert(NK, WK, Vm.R[O.C + 2 * J + 1]));
      Vm.R[O.A + J] = applyBinop(
          Opcode::Add, WK,
          applyBinop(Opcode::Add, WK, Vm.R[O.D + J], P0), P1);
    }
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t reduce(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    uint64_t Acc = Vm.R[O.B];
    for (unsigned L = 1; L < O.Lanes; ++L)
      Acc = applyBinop(Sub, K, Acc, Vm.R[O.B + L]);
    Vm.R[O.A] = Acc;
    return PC + 1;
  }
};

//===--- Decoder ----------------------------------------------------------===//

struct VMDecoder {
  VM &Vm;
  const MFunction &F;
  const TargetDesc &T;
  bool Weak;
  std::vector<uint32_t> Off;     ///< Lane-file offset per register.
  std::vector<uint16_t> RegLanes; ///< Lane count per register.

  using DOp = VM::DOp;
  using Handler = VM::Handler;

  VMDecoder(VM &TheVm, const MFunction &Fn, const TargetDesc &Target,
            bool WeakTier)
      : Vm(TheVm), F(Fn), T(Target), Weak(WeakTier) {}

  void decode() {
    // Lay out the flat lane file: vector registers get VS/ES lanes.
    Off.resize(F.Regs.size());
    RegLanes.resize(F.Regs.size());
    uint32_t Total = 0;
    for (size_t R = 0; R < F.Regs.size(); ++R) {
      unsigned Lanes = 1;
      if (F.Regs[R].Vector && F.VSBytes)
        Lanes = std::max(1u, F.VSBytes / scalarSize(F.Regs[R].Kind));
      Off[R] = Total;
      RegLanes[R] = static_cast<uint16_t>(Lanes);
      Total += Lanes;
    }
    Vm.RegStore.assign(Total + 1, 0);
    Vm.R = Vm.RegStore.data();
    if (reinterpret_cast<uintptr_t>(Vm.R) % 16 != 0)
      ++Vm.R; // 16-byte-align the lane file inside the padded store.

    for (const MParam &P : F.Params) {
      assert(P.Reg < F.Regs.size() && "bad param register");
      Vm.Params.push_back({P.Name, Off[P.Reg], F.Regs[P.Reg].Kind});
    }

    region(F.Body);
  }

  uint32_t emit(const DOp &O) {
    Vm.Code.push_back(O);
    return static_cast<uint32_t>(Vm.Code.size() - 1);
  }

  uint32_t here() const { return static_cast<uint32_t>(Vm.Code.size()); }

  void region(const MRegion &R) {
    for (const MNodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case MNodeKind::Instr:
        instr(F.Instrs[N.Index]);
        break;
      case MNodeKind::Loop:
        loop(F.Loops[N.Index]);
        break;
      case MNodeKind::If:
        ifStmt(F.Ifs[N.Index]);
        break;
      }
    }
  }

  void loop(const MLoop &L) {
    // iv = lower; phi = init...
    emitCopy(L.IndVar, L.Lower);
    for (const MLoop::CarriedVar &C : L.Carried)
      emitCopy(C.Phi, C.Init);
    // HEAD: if (iv >= upper) goto END.
    DOp Head;
    Head.Fn = &VMOps::loopHead;
    Head.A = Off[L.IndVar];
    Head.B = Off[L.Upper];
    Head.Cost = T.Costs.LoopIter;
    uint32_t HeadPC = emit(Head);

    region(L.Body);

    // phi = next...; iv += step; goto HEAD.
    for (const MLoop::CarriedVar &C : L.Carried)
      if (C.Next != NoReg)
        emitCopy(C.Phi, C.Next);
    DOp Latch;
    Latch.Fn = &VMOps::ivAddJump;
    Latch.A = Off[L.IndVar];
    Latch.B = Off[L.Step];
    Latch.Imm = HeadPC;
    emit(Latch);

    Vm.Code[HeadPC].Imm = here();
  }

  void ifStmt(const MIf &S) {
    DOp Br;
    Br.Fn = &VMOps::branchIfZero;
    Br.A = Off[S.Cond];
    Br.Cost = T.Costs.LoopIter; // One compare-and-branch.
    uint32_t BrPC = emit(Br);
    region(S.Then);
    DOp J;
    J.Fn = &VMOps::jump;
    uint32_t JumpPC = emit(J);
    Vm.Code[BrPC].Imm = here();
    region(S.Else);
    Vm.Code[JumpPC].Imm = here();
  }

  /// Synthetic full-register copy (loop plumbing): free, uncounted.
  void emitCopy(MReg Dst, MReg Src) {
    if (Dst == Src)
      return;
    DOp O;
    O.Fn = &VMOps::copyLanes;
    O.A = Off[Dst];
    O.B = Off[Src];
    O.Lanes = RegLanes[Dst];
    emit(O);
  }

  static unsigned log2Size(unsigned Bytes) {
    assert(isPowerOf2(Bytes) && "element size must be a power of two");
    return static_cast<unsigned>(__builtin_ctz(Bytes));
  }

  template <template <unsigned> class Pick>
  static Handler bySize(unsigned ES);

  void instr(const MInstr &I) {
    DOp O;
    O.Cost = instrCost(T, I, Weak);
    O.Counts = 1;
    O.Kind = static_cast<uint8_t>(I.Kind);
    if (I.Dst != NoReg) {
      O.A = Off[I.Dst];
      O.Lanes = RegLanes[I.Dst];
    }

    switch (I.Op) {
    case MOp::LdImm: {
      ScalarKind K = I.Kind == ScalarKind::None ? ScalarKind::I64 : I.Kind;
      O.Fn = &VMOps::setImm;
      O.Imm = static_cast<int64_t>(encodeInt(K, I.Imm));
      break;
    }
    case MOp::LdFImm:
      O.Fn = &VMOps::setImm;
      O.Imm = static_cast<int64_t>(encodeFP(I.Kind, I.FImm));
      break;
    case MOp::LoadBase:
      assert(I.Array < Vm.Mem.arrayCount() &&
             "loadbase of an array missing from the memory image");
      O.Fn = &VMOps::setImm;
      O.Imm = static_cast<int64_t>(Vm.Mem.base(I.Array));
      break;
    case MOp::Mov:
      O.Fn = &VMOps::copyLanes;
      O.B = Off[I.Srcs[0]];
      break;
    case MOp::Addr:
      O.Fn = &VMOps::addr;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.Imm = log2Size(I.Scale);
      break;
    case MOp::Alu:
      decodeAlu(I, O);
      break;
    case MOp::Load:
      O.Fn = pickLoad(scalarSize(I.Kind));
      O.B = Off[I.Srcs[0]];
      break;
    case MOp::Store:
      O.Fn = pickStore(scalarSize(I.Kind));
      O.A = Off[I.Srcs[0]];
      O.B = Off[I.Srcs[1]];
      O.Lanes = 1;
      break;
    case MOp::VLoadA:
    case MOp::VLoadU:
      O.Fn = pickVLoad(scalarSize(I.Kind), I.Op == MOp::VLoadA);
      O.B = Off[I.Srcs[0]];
      O.Imm = static_cast<int64_t>(F.VSBytes - 1);
      break;
    case MOp::VStoreA:
    case MOp::VStoreU:
      O.Fn = pickVStore(scalarSize(I.Kind), I.Op == MOp::VStoreA);
      O.A = Off[I.Srcs[0]];
      O.B = Off[I.Srcs[1]];
      O.Lanes = RegLanes[I.Srcs[1]];
      O.Imm = static_cast<int64_t>(F.VSBytes - 1);
      break;
    case MOp::GetPerm:
      O.Fn = &VMOps::getPerm;
      O.B = Off[I.Srcs[0]];
      O.Imm = static_cast<int64_t>(F.VSBytes - 1);
      break;
    case MOp::VPerm:
      O.Fn = &VMOps::vperm;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.D = Off[I.Srcs[2]];
      O.Imm = log2Size(scalarSize(I.Kind));
      break;
    case MOp::VSplat:
      O.Fn = &VMOps::splat;
      O.B = Off[I.Srcs[0]];
      break;
    case MOp::VAffine:
      O.Fn = &VMOps::affine;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      break;
    case MOp::VSetLane0:
      O.Fn = &VMOps::setLane0;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      break;
    case MOp::VExtract: {
      O.Fn = &VMOps::extract;
      O.Aux = static_cast<uint32_t>(Vm.AuxLanes.size());
      unsigned LC = RegLanes[I.Srcs[0]];
      for (unsigned L = 0; L < O.Lanes; ++L) {
        uint64_t Pos = static_cast<uint64_t>(I.Imm) +
                       static_cast<uint64_t>(L) * I.Imm2;
        assert(Pos / LC < I.Srcs.size() && "extract out of concat range");
        Vm.AuxLanes.push_back(Off[I.Srcs[Pos / LC]] +
                              static_cast<uint32_t>(Pos % LC));
      }
      break;
    }
    case MOp::VIlvLo:
    case MOp::VIlvHi:
      O.Fn = &VMOps::ilv;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.Imm = I.Op == MOp::VIlvHi ? O.Lanes / 2 : 0;
      break;
    case MOp::VWMulLo:
    case MOp::VWMulHi:
      decodeWMul(I, O, I.Op == MOp::VWMulHi);
      break;
    case MOp::VPack:
      O.Fn = &VMOps::pack;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      break;
    case MOp::VUnpackLo:
    case MOp::VUnpackHi:
      O.Fn = &VMOps::unpack;
      O.B = Off[I.Srcs[0]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      O.Imm = I.Op == MOp::VUnpackHi ? O.Lanes : 0;
      break;
    case MOp::VDot:
      O.Fn = &VMOps::dot;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.D = Off[I.Srcs[2]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      break;
    case MOp::Reduce:
      O.Fn = pickReduce(I.SubOp);
      O.B = Off[I.Srcs[0]];
      O.Lanes = RegLanes[I.Srcs[0]];
      break;
    case MOp::CallLib:
      // The library implements the idiom out of line; semantics match
      // the inline lowering, only the cost differs.
      switch (I.SubOp) {
      case Opcode::WidenMultLo:
        decodeWMul(I, O, false);
        break;
      case Opcode::WidenMultHi:
        decodeWMul(I, O, true);
        break;
      case Opcode::Convert:
        O.Fn = &VMOps::cvtV;
        O.B = Off[I.Srcs[0]];
        O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
        break;
      default:
        vapor_unreachable("unsupported library call");
      }
      break;
    case MOp::SpillLd:
    case MOp::SpillSt:
      O.Fn = &VMOps::nop;
      break;
    }
    emit(O);
  }

  void decodeWMul(const MInstr &I, DOp &O, bool Hi) {
    O.Fn = &VMOps::wmul;
    O.B = Off[I.Srcs[0]];
    O.C = Off[I.Srcs[1]];
    O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
    O.Imm = Hi ? O.Lanes : 0;
  }

  void decodeAlu(const MInstr &I, DOp &O) {
    bool V = I.Vector;
    if (isCompare(I.SubOp)) {
      O.Fn = pickCmp(I.SubOp, V);
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      // Compares produce I1 but iterate at the operand lane count and
      // compare at the operand kind.
      O.Lanes = RegLanes[I.Srcs[0]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      return;
    }
    switch (I.SubOp) {
    case Opcode::Select:
      O.Fn = V ? &VMOps::selV : &VMOps::selS;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.D = Off[I.Srcs[2]];
      return;
    case Opcode::Convert:
      O.Fn = V ? &VMOps::cvtV : &VMOps::cvtS;
      O.B = Off[I.Srcs[0]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      assert((!V || RegLanes[I.Srcs[0]] == O.Lanes) &&
             "vector converts keep the lane count");
      return;
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Sqrt:
      O.Fn = pickUnop(I.SubOp, V);
      O.B = Off[I.Srcs[0]];
      return;
    default:
      O.Fn = pickBinop(I.SubOp, V);
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      return;
    }
  }

  static Handler pickLoad(unsigned ES) {
    switch (ES) {
    case 1:
      return &VMOps::loadScalar<1>;
    case 2:
      return &VMOps::loadScalar<2>;
    case 4:
      return &VMOps::loadScalar<4>;
    default:
      return &VMOps::loadScalar<8>;
    }
  }

  static Handler pickStore(unsigned ES) {
    switch (ES) {
    case 1:
      return &VMOps::storeScalar<1>;
    case 2:
      return &VMOps::storeScalar<2>;
    case 4:
      return &VMOps::storeScalar<4>;
    default:
      return &VMOps::storeScalar<8>;
    }
  }

  static Handler pickVLoad(unsigned ES, bool Checked) {
    if (Checked)
      switch (ES) {
      case 1:
        return &VMOps::vload<1, true>;
      case 2:
        return &VMOps::vload<2, true>;
      case 4:
        return &VMOps::vload<4, true>;
      default:
        return &VMOps::vload<8, true>;
      }
    switch (ES) {
    case 1:
      return &VMOps::vload<1, false>;
    case 2:
      return &VMOps::vload<2, false>;
    case 4:
      return &VMOps::vload<4, false>;
    default:
      return &VMOps::vload<8, false>;
    }
  }

  static Handler pickVStore(unsigned ES, bool Checked) {
    if (Checked)
      switch (ES) {
      case 1:
        return &VMOps::vstore<1, true>;
      case 2:
        return &VMOps::vstore<2, true>;
      case 4:
        return &VMOps::vstore<4, true>;
      default:
        return &VMOps::vstore<8, true>;
      }
    switch (ES) {
    case 1:
      return &VMOps::vstore<1, false>;
    case 2:
      return &VMOps::vstore<2, false>;
    case 4:
      return &VMOps::vstore<4, false>;
    default:
      return &VMOps::vstore<8, false>;
    }
  }

  static Handler pickBinop(Opcode Sub, bool V) {
    switch (Sub) {
#define BINOP_CASE(OP)                                                    \
  case Opcode::OP:                                                        \
    return V ? static_cast<Handler>(&VMOps::binV<Opcode::OP>)             \
             : static_cast<Handler>(&VMOps::binS<Opcode::OP>);
      BINOP_CASE(Add)
      BINOP_CASE(Sub)
      BINOP_CASE(Mul)
      BINOP_CASE(Div)
      BINOP_CASE(Rem)
      BINOP_CASE(Min)
      BINOP_CASE(Max)
      BINOP_CASE(And)
      BINOP_CASE(Or)
      BINOP_CASE(Xor)
      BINOP_CASE(Shl)
      BINOP_CASE(ShrL)
      BINOP_CASE(ShrA)
#undef BINOP_CASE
    default:
      vapor_unreachable("bad ALU binop");
    }
  }

  static Handler pickUnop(Opcode Sub, bool V) {
    switch (Sub) {
#define UNOP_CASE(OP)                                                     \
  case Opcode::OP:                                                        \
    return V ? static_cast<Handler>(&VMOps::unV<Opcode::OP>)              \
             : static_cast<Handler>(&VMOps::unS<Opcode::OP>);
      UNOP_CASE(Neg)
      UNOP_CASE(Abs)
      UNOP_CASE(Sqrt)
#undef UNOP_CASE
    default:
      vapor_unreachable("bad ALU unop");
    }
  }

  static Handler pickCmp(Opcode Sub, bool V) {
    switch (Sub) {
#define CMP_CASE(OP)                                                      \
  case Opcode::OP:                                                        \
    return V ? static_cast<Handler>(&VMOps::cmpV<Opcode::OP>)             \
             : static_cast<Handler>(&VMOps::cmpS<Opcode::OP>);
      CMP_CASE(CmpEQ)
      CMP_CASE(CmpNE)
      CMP_CASE(CmpLT)
      CMP_CASE(CmpLE)
      CMP_CASE(CmpGT)
      CMP_CASE(CmpGE)
#undef CMP_CASE
    default:
      vapor_unreachable("bad compare");
    }
  }

  static Handler pickReduce(Opcode Sub) {
    switch (Sub) {
    case Opcode::Add:
      return &VMOps::reduce<Opcode::Add>;
    case Opcode::Max:
      return &VMOps::reduce<Opcode::Max>;
    case Opcode::Min:
      return &VMOps::reduce<Opcode::Min>;
    default:
      vapor_unreachable("bad reduction operator");
    }
  }
};

} // namespace target
} // namespace vapor

//===--- TrapInfo ---------------------------------------------------------===//

std::string TrapInfo::str() const {
  switch (TrapKind) {
  case Kind::None:
    return "no trap";
  case Kind::Alignment:
    return "alignment trap: aligned vector " +
           std::string(IsStore ? "store" : "load") +
           " at misaligned address " + std::to_string(Address) +
           " (requires " + std::to_string(RequiredAlign) + "B) on " + Target +
           ", op #" + std::to_string(OpIndex);
  case Kind::OutOfBounds:
    return "memory access out of image bounds at address " +
           std::to_string(Address) + " on " + Target;
  }
  vapor_unreachable("bad trap kind");
}

//===--- VM ---------------------------------------------------------------===//

VM::VM(const MFunction &F, const TargetDesc &T, MemoryImage &Image,
       bool Weak)
    : Mem(Image), TargetName(T.Name) {
  VMDecoder(*this, F, T, Weak).decode();
}

uint8_t *VM::memFault(uint64_t Addr) {
  if (!TrapRecording)
    fatalError("memory access out of image bounds at address " +
               std::to_string(Addr));
  if (!Trapped) { // First trap wins: it is the one the executor acts on.
    Trapped = true;
    Trap = TrapInfo{TrapInfo::Kind::OutOfBounds, ~0u, Addr, 0, false,
                    TargetName};
    TrapMsg = Trap.str();
  }
  // Hand the faulting op a zeroed sink so it completes harmlessly. The
  // run continues to normal termination (loop control is register-based,
  // never loaded from memory) so the dispatch loop stays branch-free; the
  // recorded trap surfaces in run()'s Status.
  std::memset(Scratch, 0, sizeof(Scratch));
  return Scratch;
}

uint32_t VM::alignTrap(uint32_t PC, uint64_t Addr, uint32_t RequiredAlign,
                       bool IsStore) {
  TrapInfo TI{TrapInfo::Kind::Alignment, PC, Addr, RequiredAlign, IsStore,
              TargetName};
  if (!TrapRecording)
    fatalError(TI.str());
  if (!Trapped) { // First trap wins.
    Trapped = true;
    Trap = TI;
    TrapMsg = Trap.str();
  }
  return static_cast<uint32_t>(Code.size()); // Halt the run loop.
}

void VM::setParamInt(const std::string &Name, int64_t V) {
  for (const ParamSlot &P : Params) {
    if (P.Name != Name)
      continue;
    R[P.Off] = isFloatKind(P.Kind) ? encodeFP(P.Kind, static_cast<double>(V))
                                   : encodeInt(P.Kind, V);
    return;
  }
  fatalError("unknown integer parameter '" + Name + "'");
}

void VM::setParamFP(const std::string &Name, double V) {
  for (const ParamSlot &P : Params) {
    if (P.Name != Name)
      continue;
    R[P.Off] = isFloatKind(P.Kind) ? encodeFP(P.Kind, V)
                                   : encodeInt(P.Kind, static_cast<int64_t>(V));
    return;
  }
  fatalError("unknown float parameter '" + Name + "'");
}

status::Status VM::run() {
  using status::Code;
  using status::Layer;
  if (Trapped) // A previous run already faulted; don't resume.
    return status::Status::error(Trap.TrapKind == TrapInfo::Kind::Alignment
                                     ? Code::AlignmentTrap
                                     : Code::OutOfBoundsAccess,
                                 Layer::Vm, Trap.str());

  MemPtr = Mem.data();
  MemLo = Mem.lowAddr();
  MemHi = Mem.highAddr();

  // The dispatch loop carries no trap check: an alignment trap halts by
  // returning a past-the-end PC, and a recorded bounds fault lets the run
  // finish against the scratch sink (termination is register-driven), so
  // the uninstrumented hot path is byte-for-byte the pre-fault-tolerance
  // loop.
  const DOp *Ops = this->Code.data();
  const uint32_t N = static_cast<uint32_t>(this->Code.size());
  uint64_t Cyc = 0, Ins = 0;
  uint32_t PC = 0;
  while (PC < N) {
    const DOp &O = Ops[PC];
    Cyc += O.Cost;
    Ins += O.Counts;
    PC = O.Fn(*this, O, PC);
  }
  Cycles += Cyc;
  Instrs += Ins;
  if (Trapped)
    return status::Status::error(Trap.TrapKind == TrapInfo::Kind::Alignment
                                     ? Code::AlignmentTrap
                                     : Code::OutOfBoundsAccess,
                                 Layer::Vm, Trap.str());
  return status::Status::okStatus();
}
