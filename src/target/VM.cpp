//===- target/VM.cpp - Cycle-model machine interpreter --------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Three pieces live here:
//
//  VMDecoder -- walks the structured MFunction once and flattens it into
//      DecodedProgram::Code, a dense array of DOps. Loops become
//        [iv=lower] [phi=init]... HEAD body... [phi=next]... IV+=STEP,goto HEAD
//      with absolute, patched jump targets; every op gets its handler
//      pointer, its registers resolved to lane-file offsets, its cycle
//      cost from the target cost table, and an OpCls structural tag for
//      the fuser.
//
//  VMFuser -- the macro-op fusion peephole. One greedy left-to-right
//      pass over the decoded array rewrites adjacent pairs into superops
//      (address+load, load+arith, arith+arith, arith+store, compare+
//      branch, load+realign-permute, copy+latch, costed-nop absorption),
//      remaps jump targets through an old->new index table, and records
//      the pre-fusion index of each superop's trappable constituent so
//      TrapInfo attribution stays exact. Fusion never fires into an op
//      that is a branch target, so control flow is preserved; Cost and
//      Counts are summed, so modeled cycles and instrsExecuted() are
//      fusion-invariant on non-trapping runs.
//
//  VMOps -- the handler table. Handlers are function templates
//      instantiated per element size / sub-opcode / scalar kind so the
//      per-step work is a direct call with no inner dispatch: with the
//      kind a template constant, ir::applyBinop's per-lane kind switches
//      (float-vs-int, lane mask, sign extension) constant-fold away.
//      Lane arithmetic is still textually ir::applyBinop and friends:
//      the exact same lane semantics as the golden evaluator, which is
//      what makes bit-exact cross-checking of integer kernels possible. Every fused handler executes its two
//      constituents' semantics verbatim in original order (sequential
//      loops, never interleaved), so the machine state after a superop
//      is bit-identical to the state after the pair it replaced for
//      every register-aliasing pattern.
//
//===----------------------------------------------------------------------===//

#include "target/VM.h"

#include "ir/ScalarOps.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "support/Support.h"

#include <cstring>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::target;

namespace vapor {
namespace target {

static_assert(sizeof(DecodedProgram::DOp) == 48,
              "DOp grew past its 48-byte dispatch-friendly footprint");

// The scalar kinds worth a per-kind handler instantiation: every lane kind
// the kernel suite touches. Ops on anything else (I1, None) fall back to
// the runtime-kind handlers, and the fuser simply declines to fuse them.
#define VAPOR_VM_FOREACH_KIND(X)                                          \
  X(I8) X(U8) X(I16) X(U16) X(I32) X(U32) X(I64) X(U64) X(F32) X(F64)

//===--- Handlers ---------------------------------------------------------===//

struct VMOps {
  using DOp = DecodedProgram::DOp;

  static ScalarKind kindOf(const DOp &O) {
    return static_cast<ScalarKind>(O.Kind);
  }
  static ScalarKind srcKindOf(const DOp &O) {
    return static_cast<ScalarKind>(O.SrcKind);
  }

  /// Bounds-checked host pointer for [Addr, Addr+Size). An out-of-image
  /// access faults: abort, or (trap-recording) a recorded trap plus a
  /// scratch pointer so the op completes harmlessly before the halt.
  /// Always inlined: this runs once per memory op, and the fault branch
  /// (an out-of-line call) never executes on healthy runs.
  VAPOR_ALWAYS_INLINE static uint8_t *mem(VM &Vm, uint64_t Addr,
                                          uint64_t Size) {
    if (__builtin_expect(Addr < Vm.MemLo || Addr + Size > Vm.MemHi, 0))
      return Vm.memFault(Addr);
    return Vm.MemPtr + (Addr - Vm.MemLo);
  }

  template <unsigned ES> static uint64_t ld(const uint8_t *P) {
    if constexpr (ES == 1) {
      return *P;
    } else if constexpr (ES == 2) {
      uint16_t V;
      std::memcpy(&V, P, 2);
      return V;
    } else if constexpr (ES == 4) {
      uint32_t V;
      std::memcpy(&V, P, 4);
      return V;
    } else {
      uint64_t V;
      std::memcpy(&V, P, 8);
      return V;
    }
  }

  template <unsigned ES> static void st(uint8_t *P, uint64_t V) {
    std::memcpy(P, &V, ES);
  }

  //===--- Register setup -------------------------------------------------===//

  static uint32_t setImm(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = static_cast<uint64_t>(O.Imm);
    return PC + 1;
  }

  static uint32_t copyLanes(VM &Vm, const DOp &O, uint32_t PC) {
    std::memcpy(Vm.R + O.A, Vm.R + O.B, O.Lanes * sizeof(uint64_t));
    return PC + 1;
  }

  static uint32_t addr(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = Vm.R[O.B] + (Vm.R[O.C] << O.Imm);
    return PC + 1;
  }

  //===--- Control flow (synthetic; no instr count) -----------------------===//

  static uint32_t loopHead(VM &Vm, const DOp &O, uint32_t PC) {
    if (static_cast<int64_t>(Vm.R[O.A]) >= static_cast<int64_t>(Vm.R[O.B]))
      return static_cast<uint32_t>(O.Imm);
    return PC + 1;
  }

  static uint32_t ivAddJump(VM &Vm, const DOp &O, uint32_t) {
    Vm.R[O.A] += Vm.R[O.B];
    return static_cast<uint32_t>(O.Imm);
  }

  static uint32_t jump(VM &, const DOp &O, uint32_t) {
    return static_cast<uint32_t>(O.Imm);
  }

  static uint32_t branchIfZero(VM &Vm, const DOp &O, uint32_t PC) {
    if ((Vm.R[O.A] & 1) == 0)
      return static_cast<uint32_t>(O.Imm);
    return PC + 1;
  }

  static uint32_t nop(VM &, const DOp &, uint32_t PC) { return PC + 1; }

  //===--- Scalar and vector memory ---------------------------------------===//

  /// Audit-mode telemetry preamble shared by the memory handlers: counts
  /// *genuine* predicate fires (never fault-injected ones) into the VM's
  /// audit counters. Runs before the normal checks, which stay live --
  /// an audit op still traps exactly like its checked form.
  template <unsigned ES, VMCheck CK>
  VAPOR_ALWAYS_INLINE static void auditCount(VM &Vm, const DOp &O,
                                             uint64_t Addr) {
    if constexpr (CK == VMCheck::AuditAlign)
      if (Addr & static_cast<uint64_t>(O.Imm))
        ++Vm.AuditAlignFired;
    if constexpr (CK == VMCheck::AuditAlign || CK == VMCheck::AuditBounds)
      if (Addr < Vm.MemLo || Addr + O.Lanes * uint64_t(ES) > Vm.MemHi)
        ++Vm.AuditBoundsFired;
  }

  template <unsigned ES, VMCheck CK = VMCheck::Bounds>
  static uint32_t loadScalar(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.B];
    auditCount<ES, CK>(Vm, O, Addr);
    if constexpr (CK == VMCheck::None)
      Vm.R[O.A] = ld<ES>(Vm.MemPtr + (Addr - Vm.MemLo));
    else
      Vm.R[O.A] = ld<ES>(mem(Vm, Addr, ES));
    return PC + 1;
  }

  template <unsigned ES, VMCheck CK = VMCheck::Bounds>
  static uint32_t storeScalar(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.A];
    auditCount<ES, CK>(Vm, O, Addr);
    if constexpr (CK == VMCheck::None)
      st<ES>(Vm.MemPtr + (Addr - Vm.MemLo), Vm.R[O.B]);
    else
      st<ES>(mem(Vm, Addr, ES), Vm.R[O.B]);
    return PC + 1;
  }

  template <unsigned ES, VMCheck CK>
  static uint32_t vload(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.B];
    auditCount<ES, CK>(Vm, O, Addr);
    if constexpr (CK == VMCheck::Align || CK == VMCheck::AuditAlign)
      if ((Addr & static_cast<uint64_t>(O.Imm)) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(O.Imm) + 1,
                            /*IsStore=*/false);
    const uint8_t *P = CK == VMCheck::None
                           ? Vm.MemPtr + (Addr - Vm.MemLo)
                           : mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = ld<ES>(P + L * ES);
    return PC + 1;
  }

  template <unsigned ES, VMCheck CK>
  static uint32_t vstore(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.A];
    auditCount<ES, CK>(Vm, O, Addr);
    if constexpr (CK == VMCheck::Align || CK == VMCheck::AuditAlign)
      if ((Addr & static_cast<uint64_t>(O.Imm)) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(O.Imm) + 1,
                            /*IsStore=*/true);
    uint8_t *P = CK == VMCheck::None ? Vm.MemPtr + (Addr - Vm.MemLo)
                                     : mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      st<ES>(P + L * ES, Vm.R[O.B + L]);
    return PC + 1;
  }

  //===--- ALU -------------------------------------------------------------===//

  // Runtime-kind ALU handlers: fallbacks for kinds outside the
  // instantiated set (see VAPOR_VM_FOREACH_KIND).
  template <Opcode Sub>
  static uint32_t binS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyBinop(Sub, kindOf(O), Vm.R[O.B], Vm.R[O.C]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t binV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyBinop(Sub, K, Vm.R[O.B + L], Vm.R[O.C + L]);
    return PC + 1;
  }

  // Kind-templated ALU handlers: with K a constant, applyBinop's kind
  // switches (float-vs-int dispatch, lane masking, sign extension) fold
  // at compile time and each lane becomes straight-line arithmetic.
  template <Opcode Sub, ScalarKind K>
  static uint32_t binSK(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyBinopT<Sub, K>(Vm.R[O.B], Vm.R[O.C]);
    return PC + 1;
  }

  template <Opcode Sub, ScalarKind K>
  static uint32_t binVK(VM &Vm, const DOp &O, uint32_t PC) {
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyBinopT<Sub, K>(Vm.R[O.B + L], Vm.R[O.C + L]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t unS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyUnop(Sub, kindOf(O), Vm.R[O.B]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t unV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyUnop(Sub, K, Vm.R[O.B + L]);
    return PC + 1;
  }

  template <Opcode Sub, ScalarKind K>
  static uint32_t unSK(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyUnop(Sub, K, Vm.R[O.B]);
    return PC + 1;
  }

  template <Opcode Sub, ScalarKind K>
  static uint32_t unVK(VM &Vm, const DOp &O, uint32_t PC) {
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyUnop(Sub, K, Vm.R[O.B + L]);
    return PC + 1;
  }

  // Compares carry the I1 result kind in Kind; the comparison itself
  // runs at the operand kind (SrcKind), exactly like the evaluator.
  template <Opcode Sub>
  static uint32_t cmpS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyCompare(Sub, srcKindOf(O), Vm.R[O.B], Vm.R[O.C]);
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t cmpV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = srcKindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyCompare(Sub, K, Vm.R[O.B + L], Vm.R[O.C + L]);
    return PC + 1;
  }

  template <Opcode Sub, ScalarKind K>
  static uint32_t cmpSK(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyCompare(Sub, K, Vm.R[O.B], Vm.R[O.C]);
    return PC + 1;
  }

  template <Opcode Sub, ScalarKind K>
  static uint32_t cmpVK(VM &Vm, const DOp &O, uint32_t PC) {
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyCompare(Sub, K, Vm.R[O.B + L], Vm.R[O.C + L]);
    return PC + 1;
  }

  static uint32_t selS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = (Vm.R[O.B] & 1) ? Vm.R[O.C] : Vm.R[O.D];
    return PC + 1;
  }

  static uint32_t selV(VM &Vm, const DOp &O, uint32_t PC) {
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] =
          (Vm.R[O.B + L] & 1) ? Vm.R[O.C + L] : Vm.R[O.D + L];
    return PC + 1;
  }

  static uint32_t cvtS(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyConvert(srcKindOf(O), kindOf(O), Vm.R[O.B]);
    return PC + 1;
  }

  static uint32_t cvtV(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind SK = srcKindOf(O), DK = kindOf(O);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyConvert(SK, DK, Vm.R[O.B + L]);
    return PC + 1;
  }

  template <ScalarKind SK, ScalarKind DK>
  static uint32_t cvtSK(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = applyConvert(SK, DK, Vm.R[O.B]);
    return PC + 1;
  }

  template <ScalarKind SK, ScalarKind DK>
  static uint32_t cvtVK(VM &Vm, const DOp &O, uint32_t PC) {
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyConvert(SK, DK, Vm.R[O.B + L]);
    return PC + 1;
  }

  //===--- Vector initialization and realignment --------------------------===//

  static uint32_t splat(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t V = Vm.R[O.B];
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = V;
    return PC + 1;
  }

  static uint32_t affine(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    uint64_t Cur = Vm.R[O.B], Inc = Vm.R[O.C];
    for (unsigned L = 0; L < O.Lanes; ++L) {
      Vm.R[O.A + L] = Cur;
      Cur = applyBinop(Opcode::Add, K, Cur, Inc);
    }
    return PC + 1;
  }

  static uint32_t setLane0(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Scalar = Vm.R[O.C];
    std::memcpy(Vm.R + O.A, Vm.R + O.B, O.Lanes * sizeof(uint64_t));
    Vm.R[O.A] = Scalar;
    return PC + 1;
  }

  static uint32_t getPerm(VM &Vm, const DOp &O, uint32_t PC) {
    Vm.R[O.A] = Vm.R[O.B] & static_cast<uint64_t>(O.Imm);
    return PC + 1;
  }

  /// Imm holds log2(element size); lanes select from the concatenation
  /// of the two source vectors starting at the realignment token.
  static uint32_t vperm(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Off = Vm.R[O.D] >> O.Imm;
    for (unsigned L = 0; L < O.Lanes; ++L) {
      uint64_t Pos = Off + L;
      Vm.R[O.A + L] = Pos < O.Lanes ? Vm.R[O.B + Pos]
                                    : Vm.R[O.C + Pos - O.Lanes];
    }
    return PC + 1;
  }

  //===--- Reorganization and widening idioms ------------------------------===//

  static uint32_t extract(VM &Vm, const DOp &O, uint32_t PC) {
    const uint32_t *Aux = Vm.AuxBase + O.Aux;
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = Vm.R[Aux[L]];
    return PC + 1;
  }

  /// Imm holds the source half offset (0 for Lo, Lanes/2 for Hi).
  static uint32_t ilv(VM &Vm, const DOp &O, uint32_t PC) {
    unsigned Half = O.Lanes / 2;
    uint64_t Off = static_cast<uint64_t>(O.Imm);
    for (unsigned L = 0; L < Half; ++L) {
      Vm.R[O.A + 2 * L] = Vm.R[O.B + Off + L];
      Vm.R[O.A + 2 * L + 1] = Vm.R[O.C + Off + L];
    }
    return PC + 1;
  }

  static uint32_t wmul(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind NK = srcKindOf(O), WK = kindOf(O);
    uint64_t Off = static_cast<uint64_t>(O.Imm);
    for (unsigned J = 0; J < O.Lanes; ++J)
      Vm.R[O.A + J] =
          applyBinop(Opcode::Mul, WK,
                     applyConvert(NK, WK, Vm.R[O.B + Off + J]),
                     applyConvert(NK, WK, Vm.R[O.C + Off + J]));
    return PC + 1;
  }

  static uint32_t pack(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind WK = srcKindOf(O), NK = kindOf(O);
    unsigned Half = O.Lanes / 2;
    for (unsigned L = 0; L < Half; ++L) {
      Vm.R[O.A + L] = applyConvert(WK, NK, Vm.R[O.B + L]);
      Vm.R[O.A + Half + L] = applyConvert(WK, NK, Vm.R[O.C + L]);
    }
    return PC + 1;
  }

  static uint32_t unpack(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind NK = srcKindOf(O), WK = kindOf(O);
    uint64_t Off = static_cast<uint64_t>(O.Imm);
    for (unsigned J = 0; J < O.Lanes; ++J)
      Vm.R[O.A + J] = applyConvert(NK, WK, Vm.R[O.B + Off + J]);
    return PC + 1;
  }

  static uint32_t dot(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind NK = srcKindOf(O), WK = kindOf(O);
    for (unsigned J = 0; J < O.Lanes; ++J) {
      uint64_t P0 =
          applyBinop(Opcode::Mul, WK,
                     applyConvert(NK, WK, Vm.R[O.B + 2 * J]),
                     applyConvert(NK, WK, Vm.R[O.C + 2 * J]));
      uint64_t P1 =
          applyBinop(Opcode::Mul, WK,
                     applyConvert(NK, WK, Vm.R[O.B + 2 * J + 1]),
                     applyConvert(NK, WK, Vm.R[O.C + 2 * J + 1]));
      Vm.R[O.A + J] = applyBinop(
          Opcode::Add, WK,
          applyBinop(Opcode::Add, WK, Vm.R[O.D + J], P0), P1);
    }
    return PC + 1;
  }

  template <Opcode Sub>
  static uint32_t reduce(VM &Vm, const DOp &O, uint32_t PC) {
    ScalarKind K = kindOf(O);
    uint64_t Acc = Vm.R[O.B];
    for (unsigned L = 1; L < O.Lanes; ++L)
      Acc = applyBinop(Sub, K, Acc, Vm.R[O.B + L]);
    Vm.R[O.A] = Acc;
    return PC + 1;
  }

  template <Opcode Sub, ScalarKind K>
  static uint32_t reduceK(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Acc = Vm.R[O.B];
    for (unsigned L = 1; L < O.Lanes; ++L)
      Acc = applyBinopT<Sub, K>(Acc, Vm.R[O.B + L]);
    Vm.R[O.A] = Acc;
    return PC + 1;
  }

  //===--- Fused superops --------------------------------------------------===//
  //
  // Each superop executes its constituents' semantics verbatim, in the
  // original order, as two sequential steps -- never interleaved. That
  // makes bit-exactness trivial for every aliasing pattern (in-place
  // binops, value==address registers, permutes reading their own
  // destination): the intermediate machine state is the same one the
  // unfused pair produced. The win is one eliminated dispatch iteration
  // per superop plus template-folded sub-opcodes and scalar kinds.
  //
  // Alignment checks replicate the unfused predicate exactly, including
  // the `(Addr & Mask) || shouldFire(...)` short-circuit -- the fault-
  // injection site counter must advance only when the address itself is
  // aligned, or the crashtest's deterministic site numbering would
  // shift. The mask is recomputed as Lanes*ES-1; the fuser only fuses
  // checked accesses whose decoded Imm mask equals that value.

  /// addr+load: A = load dst, B = base, C = index, D = addr dst,
  /// Imm = scale shift.
  template <unsigned ES, VMCheck CK>
  static uint32_t addrLoad(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.B] + (Vm.R[O.C] << O.Imm);
    Vm.R[O.D] = Addr;
    if constexpr (CK == VMCheck::Align) {
      const uint64_t Mask = uint64_t(O.Lanes) * ES - 1;
      if ((Addr & Mask) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(Mask) + 1,
                            /*IsStore=*/false);
    }
    const uint8_t *P = CK == VMCheck::None
                           ? Vm.MemPtr + (Addr - Vm.MemLo)
                           : mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = ld<ES>(P + L * ES);
    return PC + 1;
  }

  /// addr+store: A = addr dst, B = base, C = index, D = value,
  /// Imm = scale shift.
  template <unsigned ES, VMCheck CK>
  static uint32_t addrStore(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.B] + (Vm.R[O.C] << O.Imm);
    Vm.R[O.A] = Addr;
    if constexpr (CK == VMCheck::Align) {
      const uint64_t Mask = uint64_t(O.Lanes) * ES - 1;
      if ((Addr & Mask) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(Mask) + 1,
                            /*IsStore=*/true);
    }
    uint8_t *P = CK == VMCheck::None
                     ? Vm.MemPtr + (Addr - Vm.MemLo)
                     : mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      st<ES>(P + L * ES, Vm.R[O.D + L]);
    return PC + 1;
  }

  /// load+binop: A = load dst, B = address reg, C = other operand,
  /// D = binop dst; SrcKind = 1 when the loaded value is the RHS. The
  /// element size is derived from the kind template (the fuser only
  /// fuses pairs whose load element size equals scalarSize(bin kind)).
  template <Opcode Sub, ScalarKind K, VMCheck CK>
  static uint32_t loadBin(VM &Vm, const DOp &O, uint32_t PC) {
    constexpr unsigned ES = scalarSize(K);
    uint64_t Addr = Vm.R[O.B];
    if constexpr (CK == VMCheck::Align) {
      const uint64_t Mask = uint64_t(O.Lanes) * ES - 1;
      if ((Addr & Mask) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(Mask) + 1,
                            /*IsStore=*/false);
    }
    const uint8_t *P = CK == VMCheck::None
                           ? Vm.MemPtr + (Addr - Vm.MemLo)
                           : mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = ld<ES>(P + L * ES);
    if (O.SrcKind) {
      for (unsigned L = 0; L < O.Lanes; ++L)
        Vm.R[O.D + L] = applyBinopT<Sub, K>(Vm.R[O.C + L], Vm.R[O.A + L]);
    } else {
      for (unsigned L = 0; L < O.Lanes; ++L)
        Vm.R[O.D + L] = applyBinopT<Sub, K>(Vm.R[O.A + L], Vm.R[O.C + L]);
    }
    return PC + 1;
  }

  /// binop+store: A = binop dst, B/C = binop operands, D = address reg.
  /// The address register is read *after* the binop, matching the pair.
  /// The store element size is scalarSize(K) (fuser-checked).
  template <Opcode Sub, ScalarKind K, VMCheck CK>
  static uint32_t binStore(VM &Vm, const DOp &O, uint32_t PC) {
    constexpr unsigned ES = scalarSize(K);
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyBinopT<Sub, K>(Vm.R[O.B + L], Vm.R[O.C + L]);
    uint64_t Addr = Vm.R[O.D];
    if constexpr (CK == VMCheck::Align) {
      const uint64_t Mask = uint64_t(O.Lanes) * ES - 1;
      if ((Addr & Mask) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(Mask) + 1,
                            /*IsStore=*/true);
    }
    uint8_t *P = CK == VMCheck::None
                     ? Vm.MemPtr + (Addr - Vm.MemLo)
                     : mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      st<ES>(P + L * ES, Vm.R[O.A + L]);
    return PC + 1;
  }

  /// binop+binop: A = first dst, B/C = first operands, D = second dst,
  /// Aux = second op's other operand; SrcKind = 1 when the first dst is
  /// the second op's RHS. Both ops share Kind and Lanes (fuser checks).
  template <Opcode S1, Opcode S2, ScalarKind K>
  static uint32_t binBin(VM &Vm, const DOp &O, uint32_t PC) {
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.A + L] = applyBinopT<S1, K>(Vm.R[O.B + L], Vm.R[O.C + L]);
    const uint32_t Other = O.Aux;
    if (O.SrcKind) {
      for (unsigned L = 0; L < O.Lanes; ++L)
        Vm.R[O.D + L] = applyBinopT<S2, K>(Vm.R[Other + L], Vm.R[O.A + L]);
    } else {
      for (unsigned L = 0; L < O.Lanes; ++L)
        Vm.R[O.D + L] = applyBinopT<S2, K>(Vm.R[O.A + L], Vm.R[Other + L]);
    }
    return PC + 1;
  }

  /// compare+branch-if-zero: A = compare dst (still written -- later ops
  /// may read it), B/C = compare operands, Imm = branch target. K is the
  /// operand (source) kind.
  template <Opcode Sub, ScalarKind K>
  static uint32_t cmpBranch(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t V = applyCompare(Sub, K, Vm.R[O.B], Vm.R[O.C]);
    Vm.R[O.A] = V;
    if ((V & 1) == 0)
      return static_cast<uint32_t>(O.Imm);
    return PC + 1;
  }

  /// load+realign-permute: A = permute dst, B = address reg, C = the
  /// permute source that is not the loaded vector, D = realign token,
  /// Aux = load dst lane offset; SrcKind = 1 when the loaded vector is
  /// the second permute source. The element-size shift is folded into
  /// the template (fuser checks it matches the permute's decoded Imm).
  template <unsigned ES, VMCheck CK>
  static uint32_t loadPerm(VM &Vm, const DOp &O, uint32_t PC) {
    uint64_t Addr = Vm.R[O.B];
    if constexpr (CK == VMCheck::Align) {
      const uint64_t Mask = uint64_t(O.Lanes) * ES - 1;
      if ((Addr & Mask) ||
          faultinject::shouldFire(faultinject::SiteClass::VmAlign))
        return Vm.alignTrap(PC, Addr, static_cast<uint32_t>(Mask) + 1,
                            /*IsStore=*/false);
    }
    const uint8_t *P = CK == VMCheck::None
                           ? Vm.MemPtr + (Addr - Vm.MemLo)
                           : mem(Vm, Addr, O.Lanes * uint64_t(ES));
    for (unsigned L = 0; L < O.Lanes; ++L)
      Vm.R[O.Aux + L] = ld<ES>(P + L * ES);
    constexpr unsigned Shift = ES == 1 ? 0 : ES == 2 ? 1 : ES == 4 ? 2 : 3;
    const uint32_t F0 = O.SrcKind ? O.C : O.Aux;
    const uint32_t F1 = O.SrcKind ? O.Aux : O.C;
    uint64_t Off = Vm.R[O.D] >> Shift;
    for (unsigned L = 0; L < O.Lanes; ++L) {
      uint64_t Pos = Off + L;
      Vm.R[O.A + L] =
          Pos < O.Lanes ? Vm.R[F0 + Pos] : Vm.R[F1 + Pos - O.Lanes];
    }
    return PC + 1;
  }

  /// phi-copy+latch: A/B = copy dst/src (Lanes wide), C = induction
  /// variable, D = step, Imm = loop-head target.
  static uint32_t copyLatch(VM &Vm, const DOp &O, uint32_t) {
    std::memcpy(Vm.R + O.A, Vm.R + O.B, O.Lanes * sizeof(uint64_t));
    Vm.R[O.C] += Vm.R[O.D];
    return static_cast<uint32_t>(O.Imm);
  }
};

//===--- Decoder ----------------------------------------------------------===//

struct VMDecoder {
  DecodedProgram &P;
  const MFunction &F;
  const TargetDesc &T;
  const MemoryImage &Mem;
  bool Weak;
  const ElisionPlan *Plan;        ///< Checked elision grants (may be null).
  std::vector<uint32_t> Off;      ///< Lane-file offset per register.
  std::vector<uint16_t> RegLanes; ///< Lane count per register.

  using DOp = DecodedProgram::DOp;
  using Handler = DecodedProgram::Handler;

  VMDecoder(DecodedProgram &Prog, const MFunction &Fn, const TargetDesc &Target,
            const MemoryImage &Image, bool WeakTier,
            const ElisionPlan *Elide = nullptr)
      : P(Prog), F(Fn), T(Target), Mem(Image), Weak(WeakTier), Plan(Elide) {}

  /// Maps a memory instruction's elision grant to its decoded check
  /// state. \p Aligned = the op defaults to the alignment-trap check
  /// (VLoadA/VStoreA). On mode elides what the grant covers; Audit mode
  /// keeps every check live but selects the counting handler for grants
  /// an On-mode run would have elided.
  VMCheck checkFor(const MInstr &I, bool Aligned) const {
    VMCheck CK = Aligned ? VMCheck::Align : VMCheck::Bounds;
    uint8_t Bits = Plan ? Plan->provenBits(I.SrcInstr) : 0;
    if (!Bits)
      return CK;
    bool A = Bits & ElisionPlan::AlignBit;
    bool B = Bits & ElisionPlan::BoundsBit;
    if (Plan->Mode == ElisionMode::Audit) {
      if (Aligned)
        return A ? VMCheck::AuditAlign : CK;
      return B ? VMCheck::AuditBounds : CK;
    }
    if (Aligned) {
      if (A && B)
        return VMCheck::None;
      if (A)
        return VMCheck::Bounds;
      return VMCheck::Align; // Bounds-only grant on an aligned op: the
                             // align trap subsumes nothing, keep both.
    }
    return B ? VMCheck::None : VMCheck::Bounds;
  }

  void decode() {
    // Lay out the flat lane file: vector registers get VS/ES lanes.
    Off.resize(F.Regs.size());
    RegLanes.resize(F.Regs.size());
    uint32_t Total = 0;
    for (size_t R = 0; R < F.Regs.size(); ++R) {
      unsigned Lanes = 1;
      if (F.Regs[R].Vector && F.VSBytes)
        Lanes = std::max(1u, F.VSBytes / scalarSize(F.Regs[R].Kind));
      Off[R] = Total;
      RegLanes[R] = static_cast<uint16_t>(Lanes);
      Total += Lanes;
    }
    P.LaneCount = Total;

    for (const MParam &Prm : F.Params) {
      assert(Prm.Reg < F.Regs.size() && "bad param register");
      P.Params.push_back({Prm.Name, Off[Prm.Reg], F.Regs[Prm.Reg].Kind});
    }

    region(F.Body);
  }

  uint32_t emit(const DOp &O) {
    P.Code.push_back(O);
    return static_cast<uint32_t>(P.Code.size() - 1);
  }

  uint32_t here() const { return static_cast<uint32_t>(P.Code.size()); }

  void region(const MRegion &R) {
    for (const MNodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case MNodeKind::Instr:
        instr(F.Instrs[N.Index]);
        break;
      case MNodeKind::Loop:
        loop(F.Loops[N.Index]);
        break;
      case MNodeKind::If:
        ifStmt(F.Ifs[N.Index]);
        break;
      }
    }
  }

  void loop(const MLoop &L) {
    // iv = lower; phi = init...
    emitCopy(L.IndVar, L.Lower);
    for (const MLoop::CarriedVar &C : L.Carried)
      emitCopy(C.Phi, C.Init);
    // HEAD: if (iv >= upper) goto END.
    DOp Head;
    Head.Fn = &VMOps::loopHead;
    Head.A = Off[L.IndVar];
    Head.B = Off[L.Upper];
    Head.Cost = T.Costs.LoopIter;
    Head.Cls = OpCls::LoopHead;
    uint32_t HeadPC = emit(Head);

    region(L.Body);

    // phi = next...; iv += step; goto HEAD.
    for (const MLoop::CarriedVar &C : L.Carried)
      if (C.Next != NoReg)
        emitCopy(C.Phi, C.Next);
    DOp Latch;
    Latch.Fn = &VMOps::ivAddJump;
    Latch.A = Off[L.IndVar];
    Latch.B = Off[L.Step];
    Latch.Imm = HeadPC;
    Latch.Cls = OpCls::Latch;
    emit(Latch);

    P.Code[HeadPC].Imm = here();
  }

  void ifStmt(const MIf &S) {
    DOp Br;
    Br.Fn = &VMOps::branchIfZero;
    Br.A = Off[S.Cond];
    Br.Cost = T.Costs.LoopIter; // One compare-and-branch.
    Br.Cls = OpCls::Branch;
    uint32_t BrPC = emit(Br);
    region(S.Then);
    DOp J;
    J.Fn = &VMOps::jump;
    J.Cls = OpCls::Jump;
    uint32_t JumpPC = emit(J);
    P.Code[BrPC].Imm = here();
    region(S.Else);
    P.Code[JumpPC].Imm = here();
  }

  /// Synthetic full-register copy (loop plumbing): free, uncounted.
  void emitCopy(MReg Dst, MReg Src) {
    if (Dst == Src)
      return;
    DOp O;
    O.Fn = &VMOps::copyLanes;
    O.A = Off[Dst];
    O.B = Off[Src];
    O.Lanes = RegLanes[Dst];
    O.Cls = OpCls::Copy;
    emit(O);
  }

  static unsigned log2Size(unsigned Bytes) {
    assert(isPowerOf2(Bytes) && "element size must be a power of two");
    return static_cast<unsigned>(__builtin_ctz(Bytes));
  }

  void instr(const MInstr &I) {
    DOp O;
    O.Cost = instrCost(T, I, Weak);
    O.Counts = 1;
    O.Kind = static_cast<uint8_t>(I.Kind);
    if (I.Dst != NoReg) {
      O.A = Off[I.Dst];
      O.Lanes = RegLanes[I.Dst];
    }

    switch (I.Op) {
    case MOp::LdImm: {
      ScalarKind K = I.Kind == ScalarKind::None ? ScalarKind::I64 : I.Kind;
      O.Fn = &VMOps::setImm;
      O.Imm = static_cast<int64_t>(encodeInt(K, I.Imm));
      break;
    }
    case MOp::LdFImm:
      O.Fn = &VMOps::setImm;
      O.Imm = static_cast<int64_t>(encodeFP(I.Kind, I.FImm));
      break;
    case MOp::LoadBase:
      assert(I.Array < Mem.arrayCount() &&
             "loadbase of an array missing from the memory image");
      O.Fn = &VMOps::setImm;
      O.Imm = static_cast<int64_t>(Mem.base(I.Array));
      break;
    case MOp::Mov:
      O.Fn = &VMOps::copyLanes;
      O.B = Off[I.Srcs[0]];
      break;
    case MOp::Addr:
      O.Fn = &VMOps::addr;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.Imm = log2Size(I.Scale);
      O.Cls = OpCls::Addr;
      break;
    case MOp::Alu:
      decodeAlu(I, O);
      break;
    case MOp::Load: {
      VMCheck CK = checkFor(I, /*Aligned=*/false);
      O.Fn = pickLoad(scalarSize(I.Kind), CK);
      O.B = Off[I.Srcs[0]];
      O.Cls = OpCls::LoadS;
      O.Sub = static_cast<uint8_t>(CK);
      break;
    }
    case MOp::Store: {
      VMCheck CK = checkFor(I, /*Aligned=*/false);
      O.Fn = pickStore(scalarSize(I.Kind), CK);
      O.A = Off[I.Srcs[0]];
      O.B = Off[I.Srcs[1]];
      O.Lanes = 1;
      O.Cls = OpCls::StoreS;
      O.Sub = static_cast<uint8_t>(CK);
      break;
    }
    case MOp::VLoadA:
    case MOp::VLoadU: {
      VMCheck CK = checkFor(I, I.Op == MOp::VLoadA);
      O.Fn = pickVLoad(scalarSize(I.Kind), CK);
      O.B = Off[I.Srcs[0]];
      O.Imm = static_cast<int64_t>(F.VSBytes - 1);
      O.Cls = OpCls::VLoad;
      O.Sub = static_cast<uint8_t>(CK);
      break;
    }
    case MOp::VStoreA:
    case MOp::VStoreU: {
      VMCheck CK = checkFor(I, I.Op == MOp::VStoreA);
      O.Fn = pickVStore(scalarSize(I.Kind), CK);
      O.A = Off[I.Srcs[0]];
      O.B = Off[I.Srcs[1]];
      O.Lanes = RegLanes[I.Srcs[1]];
      O.Imm = static_cast<int64_t>(F.VSBytes - 1);
      O.Cls = OpCls::VStore;
      O.Sub = static_cast<uint8_t>(CK);
      break;
    }
    case MOp::GetPerm:
      O.Fn = &VMOps::getPerm;
      O.B = Off[I.Srcs[0]];
      O.Imm = static_cast<int64_t>(F.VSBytes - 1);
      break;
    case MOp::VPerm:
      O.Fn = &VMOps::vperm;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.D = Off[I.Srcs[2]];
      O.Imm = log2Size(scalarSize(I.Kind));
      O.Cls = OpCls::VPerm;
      break;
    case MOp::VSplat:
      O.Fn = &VMOps::splat;
      O.B = Off[I.Srcs[0]];
      break;
    case MOp::VAffine:
      O.Fn = &VMOps::affine;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      break;
    case MOp::VSetLane0:
      O.Fn = &VMOps::setLane0;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      break;
    case MOp::VExtract: {
      O.Fn = &VMOps::extract;
      O.Aux = static_cast<uint32_t>(P.AuxLanes.size());
      unsigned LC = RegLanes[I.Srcs[0]];
      for (unsigned L = 0; L < O.Lanes; ++L) {
        uint64_t Pos = static_cast<uint64_t>(I.Imm) +
                       static_cast<uint64_t>(L) * I.Imm2;
        assert(Pos / LC < I.Srcs.size() && "extract out of concat range");
        P.AuxLanes.push_back(Off[I.Srcs[Pos / LC]] +
                             static_cast<uint32_t>(Pos % LC));
      }
      break;
    }
    case MOp::VIlvLo:
    case MOp::VIlvHi:
      O.Fn = &VMOps::ilv;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.Imm = I.Op == MOp::VIlvHi ? O.Lanes / 2 : 0;
      break;
    case MOp::VWMulLo:
    case MOp::VWMulHi:
      decodeWMul(I, O, I.Op == MOp::VWMulHi);
      break;
    case MOp::VPack:
      O.Fn = &VMOps::pack;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      break;
    case MOp::VUnpackLo:
    case MOp::VUnpackHi:
      O.Fn = &VMOps::unpack;
      O.B = Off[I.Srcs[0]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      O.Imm = I.Op == MOp::VUnpackHi ? O.Lanes : 0;
      break;
    case MOp::VDot:
      O.Fn = &VMOps::dot;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.D = Off[I.Srcs[2]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      break;
    case MOp::Reduce:
      O.Fn = pickReduce(I.SubOp, I.Kind);
      O.B = Off[I.Srcs[0]];
      O.Lanes = RegLanes[I.Srcs[0]];
      break;
    case MOp::CallLib:
      // The library implements the idiom out of line; semantics match
      // the inline lowering, only the cost differs.
      switch (I.SubOp) {
      case Opcode::WidenMultLo:
        decodeWMul(I, O, false);
        break;
      case Opcode::WidenMultHi:
        decodeWMul(I, O, true);
        break;
      case Opcode::Convert:
        O.Fn = pickCvt(F.Regs[I.Srcs[0]].Kind, I.Kind, /*V=*/true);
        O.B = Off[I.Srcs[0]];
        O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
        break;
      default:
        vapor_unreachable("unsupported library call");
      }
      break;
    case MOp::SpillLd:
    case MOp::SpillSt:
      O.Fn = &VMOps::nop;
      O.Cls = OpCls::Nop;
      break;
    }
    emit(O);
  }

  void decodeWMul(const MInstr &I, DOp &O, bool Hi) {
    O.Fn = &VMOps::wmul;
    O.B = Off[I.Srcs[0]];
    O.C = Off[I.Srcs[1]];
    O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
    O.Imm = Hi ? O.Lanes : 0;
  }

  void decodeAlu(const MInstr &I, DOp &O) {
    bool V = I.Vector;
    if (isCompare(I.SubOp)) {
      O.Fn = pickCmp(I.SubOp, V, F.Regs[I.Srcs[0]].Kind);
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      // Compares produce I1 but iterate at the operand lane count and
      // compare at the operand kind.
      O.Lanes = RegLanes[I.Srcs[0]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      if (!V) {
        O.Cls = OpCls::CmpS;
        O.Sub = static_cast<uint8_t>(I.SubOp);
      }
      return;
    }
    switch (I.SubOp) {
    case Opcode::Select:
      O.Fn = V ? &VMOps::selV : &VMOps::selS;
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.D = Off[I.Srcs[2]];
      return;
    case Opcode::Convert:
      O.Fn = pickCvt(F.Regs[I.Srcs[0]].Kind, I.Kind, V);
      O.B = Off[I.Srcs[0]];
      O.SrcKind = static_cast<uint8_t>(F.Regs[I.Srcs[0]].Kind);
      assert((!V || RegLanes[I.Srcs[0]] == O.Lanes) &&
             "vector converts keep the lane count");
      return;
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Sqrt:
      O.Fn = pickUnop(I.SubOp, V, I.Kind);
      O.B = Off[I.Srcs[0]];
      return;
    default:
      O.Fn = pickBinop(I.SubOp, V, I.Kind);
      O.B = Off[I.Srcs[0]];
      O.C = Off[I.Srcs[1]];
      O.Cls = V ? OpCls::BinV : OpCls::BinS;
      O.Sub = static_cast<uint8_t>(I.SubOp);
      return;
    }
  }

  template <VMCheck CK> static Handler pickLoadES(unsigned ES) {
    switch (ES) {
    case 1:
      return &VMOps::loadScalar<1, CK>;
    case 2:
      return &VMOps::loadScalar<2, CK>;
    case 4:
      return &VMOps::loadScalar<4, CK>;
    default:
      return &VMOps::loadScalar<8, CK>;
    }
  }

  static Handler pickLoad(unsigned ES, VMCheck CK) {
    switch (CK) {
    case VMCheck::None:
      return pickLoadES<VMCheck::None>(ES);
    case VMCheck::AuditBounds:
      return pickLoadES<VMCheck::AuditBounds>(ES);
    default:
      return pickLoadES<VMCheck::Bounds>(ES);
    }
  }

  template <VMCheck CK> static Handler pickStoreES(unsigned ES) {
    switch (ES) {
    case 1:
      return &VMOps::storeScalar<1, CK>;
    case 2:
      return &VMOps::storeScalar<2, CK>;
    case 4:
      return &VMOps::storeScalar<4, CK>;
    default:
      return &VMOps::storeScalar<8, CK>;
    }
  }

  static Handler pickStore(unsigned ES, VMCheck CK) {
    switch (CK) {
    case VMCheck::None:
      return pickStoreES<VMCheck::None>(ES);
    case VMCheck::AuditBounds:
      return pickStoreES<VMCheck::AuditBounds>(ES);
    default:
      return pickStoreES<VMCheck::Bounds>(ES);
    }
  }

  template <VMCheck CK> static Handler pickVLoadES(unsigned ES) {
    switch (ES) {
    case 1:
      return &VMOps::vload<1, CK>;
    case 2:
      return &VMOps::vload<2, CK>;
    case 4:
      return &VMOps::vload<4, CK>;
    default:
      return &VMOps::vload<8, CK>;
    }
  }

  static Handler pickVLoad(unsigned ES, VMCheck CK) {
    switch (CK) {
    case VMCheck::Align:
      return pickVLoadES<VMCheck::Align>(ES);
    case VMCheck::None:
      return pickVLoadES<VMCheck::None>(ES);
    case VMCheck::AuditAlign:
      return pickVLoadES<VMCheck::AuditAlign>(ES);
    case VMCheck::AuditBounds:
      return pickVLoadES<VMCheck::AuditBounds>(ES);
    default:
      return pickVLoadES<VMCheck::Bounds>(ES);
    }
  }

  template <VMCheck CK> static Handler pickVStoreES(unsigned ES) {
    switch (ES) {
    case 1:
      return &VMOps::vstore<1, CK>;
    case 2:
      return &VMOps::vstore<2, CK>;
    case 4:
      return &VMOps::vstore<4, CK>;
    default:
      return &VMOps::vstore<8, CK>;
    }
  }

  static Handler pickVStore(unsigned ES, VMCheck CK) {
    switch (CK) {
    case VMCheck::Align:
      return pickVStoreES<VMCheck::Align>(ES);
    case VMCheck::None:
      return pickVStoreES<VMCheck::None>(ES);
    case VMCheck::AuditAlign:
      return pickVStoreES<VMCheck::AuditAlign>(ES);
    case VMCheck::AuditBounds:
      return pickVStoreES<VMCheck::AuditBounds>(ES);
    default:
      return pickVStoreES<VMCheck::Bounds>(ES);
    }
  }

  // Each pick* resolves (sub-opcode, scalar kind) to a fully templated
  // handler; kinds outside VAPOR_VM_FOREACH_KIND get the runtime-kind
  // fallback, so every decodable op still has a handler.

  template <Opcode Sub> static Handler pickBinK(ScalarKind K, bool V) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return V ? static_cast<Handler>(&VMOps::binVK<Sub, ScalarKind::KK>)   \
             : static_cast<Handler>(&VMOps::binSK<Sub, ScalarKind::KK>);
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return V ? static_cast<Handler>(&VMOps::binV<Sub>)
               : static_cast<Handler>(&VMOps::binS<Sub>);
    }
  }

  static Handler pickBinop(Opcode Sub, bool V, ScalarKind K) {
    switch (Sub) {
#define BINOP_CASE(OP)                                                    \
  case Opcode::OP:                                                        \
    return pickBinK<Opcode::OP>(K, V);
      BINOP_CASE(Add)
      BINOP_CASE(Sub)
      BINOP_CASE(Mul)
      BINOP_CASE(Div)
      BINOP_CASE(Rem)
      BINOP_CASE(Min)
      BINOP_CASE(Max)
      BINOP_CASE(And)
      BINOP_CASE(Or)
      BINOP_CASE(Xor)
      BINOP_CASE(Shl)
      BINOP_CASE(ShrL)
      BINOP_CASE(ShrA)
      BINOP_CASE(AddSatS)
      BINOP_CASE(AddSatU)
      BINOP_CASE(SubSatS)
      BINOP_CASE(SubSatU)
#undef BINOP_CASE
    default:
      vapor_unreachable("bad ALU binop");
    }
  }

  template <Opcode Sub> static Handler pickUnK(ScalarKind K, bool V) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return V ? static_cast<Handler>(&VMOps::unVK<Sub, ScalarKind::KK>)    \
             : static_cast<Handler>(&VMOps::unSK<Sub, ScalarKind::KK>);
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return V ? static_cast<Handler>(&VMOps::unV<Sub>)
               : static_cast<Handler>(&VMOps::unS<Sub>);
    }
  }

  static Handler pickUnop(Opcode Sub, bool V, ScalarKind K) {
    switch (Sub) {
    case Opcode::Neg:
      return pickUnK<Opcode::Neg>(K, V);
    case Opcode::Abs:
      return pickUnK<Opcode::Abs>(K, V);
    case Opcode::Sqrt:
      return pickUnK<Opcode::Sqrt>(K, V);
    default:
      vapor_unreachable("bad ALU unop");
    }
  }

  template <Opcode Sub> static Handler pickCmpK(ScalarKind K, bool V) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return V ? static_cast<Handler>(&VMOps::cmpVK<Sub, ScalarKind::KK>)   \
             : static_cast<Handler>(&VMOps::cmpSK<Sub, ScalarKind::KK>);
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return V ? static_cast<Handler>(&VMOps::cmpV<Sub>)
               : static_cast<Handler>(&VMOps::cmpS<Sub>);
    }
  }

  /// \p K is the operand (source) kind the comparison runs at.
  static Handler pickCmp(Opcode Sub, bool V, ScalarKind K) {
    switch (Sub) {
#define CMP_CASE(OP)                                                      \
  case Opcode::OP:                                                        \
    return pickCmpK<Opcode::OP>(K, V);
      CMP_CASE(CmpEQ)
      CMP_CASE(CmpNE)
      CMP_CASE(CmpLT)
      CMP_CASE(CmpLE)
      CMP_CASE(CmpGT)
      CMP_CASE(CmpGE)
#undef CMP_CASE
    default:
      vapor_unreachable("bad compare");
    }
  }

  template <ScalarKind SK> static Handler pickCvtDst(ScalarKind DK, bool V) {
    switch (DK) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return V ? static_cast<Handler>(&VMOps::cvtVK<SK, ScalarKind::KK>)    \
             : static_cast<Handler>(&VMOps::cvtSK<SK, ScalarKind::KK>);
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return V ? static_cast<Handler>(&VMOps::cvtV)
               : static_cast<Handler>(&VMOps::cvtS);
    }
  }

  static Handler pickCvt(ScalarKind SK, ScalarKind DK, bool V) {
    switch (SK) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return pickCvtDst<ScalarKind::KK>(DK, V);
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return V ? static_cast<Handler>(&VMOps::cvtV)
               : static_cast<Handler>(&VMOps::cvtS);
    }
  }

  template <Opcode Sub> static Handler pickReduceK(ScalarKind K) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return &VMOps::reduceK<Sub, ScalarKind::KK>;
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return &VMOps::reduce<Sub>;
    }
  }

  static Handler pickReduce(Opcode Sub, ScalarKind K) {
    switch (Sub) {
    case Opcode::Add:
      return pickReduceK<Opcode::Add>(K);
    case Opcode::Max:
      return pickReduceK<Opcode::Max>(K);
    case Opcode::Min:
      return pickReduceK<Opcode::Min>(K);
    default:
      vapor_unreachable("bad reduction operator");
    }
  }
};

//===--- Fuser ------------------------------------------------------------===//

struct VMFuser {
  using DOp = DecodedProgram::DOp;
  using Handler = DecodedProgram::Handler;

  static bool isControl(OpCls C) {
    return C == OpCls::LoopHead || C == OpCls::Latch || C == OpCls::Jump ||
           C == OpCls::Branch;
  }

  /// The binop sub-opcodes worth a template instantiation: the ones that
  /// dominate the kernel suite's dynamic op mix. Everything else stays
  /// unfused (still correct, just two dispatches).
  static bool fusibleBin(uint8_t Sub) {
    switch (static_cast<Opcode>(Sub)) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::AddSatS:
    case Opcode::AddSatU:
    case Opcode::SubSatS:
    case Opcode::SubSatU:
      return true;
    default:
      return false;
    }
  }

  static bool validES(unsigned ES) {
    return ES == 1 || ES == 2 || ES == 4 || ES == 8;
  }

  /// A checked access only fuses when its decoded alignment mask is the
  /// access footprint Lanes*ES-1 -- the fused handlers recompute the
  /// mask from Lanes and the template ES instead of carrying Imm.
  static bool maskMatches(const DOp &M, unsigned ES) {
    return uint64_t(M.Lanes) * ES == static_cast<uint64_t>(M.Imm) + 1;
  }

  /// Audit-counting ops never fuse: they are a soundness-verification
  /// mode, not a fast path, and keeping them as their own dispatch keeps
  /// the counting handlers simple. Everything else (Bounds/Align/None)
  /// has a fused instantiation.
  static bool fusibleCheck(uint8_t Sub) {
    return Sub < static_cast<uint8_t>(VMCheck::AuditAlign);
  }

  //===--- Fused-handler pickers ------------------------------------------===//

  template <template <unsigned, VMCheck> class H, VMCheck CK>
  static Handler pickByESK(unsigned ES) {
    switch (ES) {
    case 1:
      return &H<1, CK>::get;
    case 2:
      return &H<2, CK>::get;
    case 4:
      return &H<4, CK>::get;
    default:
      return &H<8, CK>::get;
    }
  }

  template <template <unsigned, VMCheck> class H>
  static Handler pickByES(unsigned ES, VMCheck CK) {
    switch (CK) {
    case VMCheck::Align:
      return pickByESK<H, VMCheck::Align>(ES);
    case VMCheck::None:
      return pickByESK<H, VMCheck::None>(ES);
    default:
      return pickByESK<H, VMCheck::Bounds>(ES);
    }
  }

// Wrapping the fused function templates in picker structs keeps the
// ES x check-state (x Sub) instantiation fan-out to one switch each.
#define FUSED_ES_PICKER(NAME, FN)                                         \
  template <unsigned ES, VMCheck CK> struct NAME##Wrap {                  \
    static uint32_t get(VM &Vm, const DOp &O, uint32_t PC) {              \
      return VMOps::FN<ES, CK>(Vm, O, PC);                                \
    }                                                                     \
  };                                                                      \
  static Handler NAME(unsigned ES, VMCheck CK) {                          \
    return pickByES<NAME##Wrap>(ES, CK);                                  \
  }

  FUSED_ES_PICKER(pickAddrLoad, addrLoad)
  FUSED_ES_PICKER(pickAddrStore, addrStore)
  FUSED_ES_PICKER(pickLoadPerm, loadPerm)
#undef FUSED_ES_PICKER

  // Kind-resolving pickers for the ALU-carrying superops. All of them
  // return nullptr for kinds outside VAPOR_VM_FOREACH_KIND (or for
  // non-dominant sub-opcodes): the pair simply stays unfused.

  template <Opcode Sub>
  static Handler pickLoadBinK(ScalarKind K, VMCheck CK) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    switch (CK) {                                                         \
    case VMCheck::Align:                                                  \
      return &VMOps::loadBin<Sub, ScalarKind::KK, VMCheck::Align>;        \
    case VMCheck::None:                                                   \
      return &VMOps::loadBin<Sub, ScalarKind::KK, VMCheck::None>;         \
    default:                                                              \
      return &VMOps::loadBin<Sub, ScalarKind::KK, VMCheck::Bounds>;      \
    }
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return nullptr;
    }
  }

  template <Opcode Sub>
  static Handler pickBinStoreK(ScalarKind K, VMCheck CK) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    switch (CK) {                                                         \
    case VMCheck::Align:                                                  \
      return &VMOps::binStore<Sub, ScalarKind::KK, VMCheck::Align>;       \
    case VMCheck::None:                                                   \
      return &VMOps::binStore<Sub, ScalarKind::KK, VMCheck::None>;        \
    default:                                                              \
      return &VMOps::binStore<Sub, ScalarKind::KK, VMCheck::Bounds>;     \
    }
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return nullptr;
    }
  }

#define FUSED_SUB_SWITCH(PICK, ...)                                       \
  switch (static_cast<Opcode>(Sub)) {                                     \
  case Opcode::Add:                                                       \
    return PICK<Opcode::Add>(__VA_ARGS__);                                \
  case Opcode::Sub:                                                       \
    return PICK<Opcode::Sub>(__VA_ARGS__);                                \
  case Opcode::Mul:                                                       \
    return PICK<Opcode::Mul>(__VA_ARGS__);                                \
  case Opcode::Min:                                                       \
    return PICK<Opcode::Min>(__VA_ARGS__);                                \
  case Opcode::Max:                                                       \
    return PICK<Opcode::Max>(__VA_ARGS__);                                \
  case Opcode::AddSatS:                                                   \
    return PICK<Opcode::AddSatS>(__VA_ARGS__);                            \
  case Opcode::AddSatU:                                                   \
    return PICK<Opcode::AddSatU>(__VA_ARGS__);                            \
  case Opcode::SubSatS:                                                   \
    return PICK<Opcode::SubSatS>(__VA_ARGS__);                            \
  case Opcode::SubSatU:                                                   \
    return PICK<Opcode::SubSatU>(__VA_ARGS__);                            \
  default:                                                                \
    return nullptr;                                                       \
  }

  static Handler pickLoadBin(uint8_t Sub, ScalarKind K, VMCheck CK) {
    FUSED_SUB_SWITCH(pickLoadBinK, K, CK)
  }

  static Handler pickBinStore(uint8_t Sub, ScalarKind K, VMCheck CK) {
    FUSED_SUB_SWITCH(pickBinStoreK, K, CK)
  }

  template <Opcode S1, Opcode S2>
  static Handler pickBinBinK(ScalarKind K) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return &VMOps::binBin<S1, S2, ScalarKind::KK>;
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return nullptr;
    }
  }

  template <Opcode S1>
  static Handler pickBinBin2(uint8_t S2, ScalarKind K) {
    switch (static_cast<Opcode>(S2)) {
    case Opcode::Add:
      return pickBinBinK<S1, Opcode::Add>(K);
    case Opcode::Sub:
      return pickBinBinK<S1, Opcode::Sub>(K);
    case Opcode::Mul:
      return pickBinBinK<S1, Opcode::Mul>(K);
    case Opcode::Min:
      return pickBinBinK<S1, Opcode::Min>(K);
    case Opcode::Max:
      return pickBinBinK<S1, Opcode::Max>(K);
    case Opcode::AddSatS:
      return pickBinBinK<S1, Opcode::AddSatS>(K);
    case Opcode::AddSatU:
      return pickBinBinK<S1, Opcode::AddSatU>(K);
    case Opcode::SubSatS:
      return pickBinBinK<S1, Opcode::SubSatS>(K);
    case Opcode::SubSatU:
      return pickBinBinK<S1, Opcode::SubSatU>(K);
    default:
      return nullptr;
    }
  }

  static Handler pickBinBin(uint8_t Sub, uint8_t S2, ScalarKind K) {
    FUSED_SUB_SWITCH(pickBinBin2, S2, K)
  }
#undef FUSED_SUB_SWITCH

  template <Opcode Sub> static Handler pickCmpBranchK(ScalarKind K) {
    switch (K) {
#define KIND_CASE(KK)                                                     \
  case ScalarKind::KK:                                                    \
    return &VMOps::cmpBranch<Sub, ScalarKind::KK>;
      VAPOR_VM_FOREACH_KIND(KIND_CASE)
#undef KIND_CASE
    default:
      return nullptr;
    }
  }

  static Handler pickCmpBranch(uint8_t Sub, ScalarKind K) {
    switch (static_cast<Opcode>(Sub)) {
    case Opcode::CmpEQ:
      return pickCmpBranchK<Opcode::CmpEQ>(K);
    case Opcode::CmpNE:
      return pickCmpBranchK<Opcode::CmpNE>(K);
    case Opcode::CmpLT:
      return pickCmpBranchK<Opcode::CmpLT>(K);
    case Opcode::CmpLE:
      return pickCmpBranchK<Opcode::CmpLE>(K);
    case Opcode::CmpGT:
      return pickCmpBranchK<Opcode::CmpGT>(K);
    case Opcode::CmpGE:
      return pickCmpBranchK<Opcode::CmpGE>(K);
    default:
      return nullptr;
    }
  }

  //===--- Pair matching --------------------------------------------------===//

  /// Seeds a superop from the pair (X, Y): summed cost/counts, class
  /// Fused unless a pattern overrides it to FusedBr.
  static DOp seed(const DOp &X, const DOp &Y) {
    DOp F;
    F.Cost = X.Cost + Y.Cost;
    F.Counts = static_cast<uint8_t>(X.Counts + Y.Counts);
    F.Cls = OpCls::Fused;
    return F;
  }

  /// Tries to fuse adjacent ops \p X then \p Y into \p F. \p TrapConst
  /// receives the index (0 or 1) of the constituent whose pre-fusion op
  /// index alignment traps must report; each pattern has at most one
  /// trappable constituent. \returns false to leave the pair unfused.
  static bool tryFuse(const DOp &X, const DOp &Y, DOp &F,
                      unsigned &TrapConst) {
    TrapConst = 0;

    // Costed-nop absorption (spill placeholders): the nop's cost and
    // count ride along on the neighbor. A nop after a control op is NOT
    // absorbed -- a taken branch would skip it, and its cost with it.
    if (X.Cls == OpCls::Nop) {
      F = Y;
      F.Cost = X.Cost + Y.Cost;
      F.Counts = static_cast<uint8_t>(X.Counts + Y.Counts);
      TrapConst = 1;
      return true;
    }
    if (Y.Cls == OpCls::Nop && !isControl(X.Cls)) {
      F = X;
      F.Cost = X.Cost + Y.Cost;
      F.Counts = static_cast<uint8_t>(X.Counts + Y.Counts);
      return true;
    }

    switch (X.Cls) {
    case OpCls::Addr: {
      // addr dst feeding a load's address -> addr+load.
      if ((Y.Cls == OpCls::VLoad || Y.Cls == OpCls::LoadS) && Y.B == X.A) {
        VMCheck CK = static_cast<VMCheck>(Y.Sub);
        unsigned ES = scalarSize(static_cast<ScalarKind>(Y.Kind));
        if (!fusibleCheck(Y.Sub) || !validES(ES) ||
            (CK == VMCheck::Align && !maskMatches(Y, ES)))
          return false;
        F = seed(X, Y);
        F.Fn = pickAddrLoad(ES, CK);
        F.A = Y.A;
        F.B = X.B;
        F.C = X.C;
        F.D = X.A;
        F.Imm = X.Imm;
        F.Lanes = Y.Lanes;
        F.Kind = Y.Kind;
        TrapConst = 1;
        return true;
      }
      // addr dst feeding a store's address -> addr+store.
      if ((Y.Cls == OpCls::VStore || Y.Cls == OpCls::StoreS) && Y.A == X.A) {
        VMCheck CK = static_cast<VMCheck>(Y.Sub);
        unsigned ES = scalarSize(static_cast<ScalarKind>(Y.Kind));
        if (!fusibleCheck(Y.Sub) || !validES(ES) ||
            (CK == VMCheck::Align && !maskMatches(Y, ES)))
          return false;
        F = seed(X, Y);
        F.Fn = pickAddrStore(ES, CK);
        F.A = X.A;
        F.B = X.B;
        F.C = X.C;
        F.D = Y.B;
        F.Imm = X.Imm;
        F.Lanes = Y.Lanes;
        F.Kind = Y.Kind;
        TrapConst = 1;
        return true;
      }
      return false;
    }

    case OpCls::VLoad:
    case OpCls::LoadS: {
      VMCheck CK = static_cast<VMCheck>(X.Sub);
      unsigned ES = scalarSize(static_cast<ScalarKind>(X.Kind));
      if (!fusibleCheck(X.Sub) || !validES(ES) ||
          (CK == VMCheck::Align && !maskMatches(X, ES)))
        return false;
      // load dst feeding one side of a binop -> load+binop. The fused
      // handler derives the element size from the binop kind, so the
      // load's element size must match it.
      OpCls WantBin = X.Cls == OpCls::VLoad ? OpCls::BinV : OpCls::BinS;
      if (Y.Cls == WantBin && fusibleBin(Y.Sub) && Y.Lanes == X.Lanes &&
          scalarSize(static_cast<ScalarKind>(Y.Kind)) == ES &&
          (Y.B == X.A || Y.C == X.A)) {
        Handler H =
            pickLoadBin(Y.Sub, static_cast<ScalarKind>(Y.Kind), CK);
        if (!H)
          return false;
        F = seed(X, Y);
        F.Fn = H;
        F.A = X.A;
        F.B = X.B;
        F.D = Y.A;
        if (Y.B == X.A) {
          F.C = Y.C;
          F.SrcKind = 0;
        } else {
          F.C = Y.B;
          F.SrcKind = 1;
        }
        F.Lanes = X.Lanes;
        F.Kind = Y.Kind;
        return true;
      }
      // load dst feeding a realign permute -> load+permute (the fused
      // handler folds the element-size shift into its template).
      if (X.Cls == OpCls::VLoad && Y.Cls == OpCls::VPerm &&
          Y.Lanes == X.Lanes && (Y.B == X.A || Y.C == X.A) &&
          static_cast<uint64_t>(Y.Imm) == VMDecoder::log2Size(ES)) {
        F = seed(X, Y);
        F.Fn = pickLoadPerm(ES, CK);
        F.A = Y.A;
        F.B = X.B;
        F.Aux = X.A;
        F.D = Y.D;
        if (Y.B == X.A) {
          F.C = Y.C;
          F.SrcKind = 0;
        } else {
          F.C = Y.B;
          F.SrcKind = 1;
        }
        F.Lanes = X.Lanes;
        F.Kind = X.Kind;
        return true;
      }
      return false;
    }

    case OpCls::BinV:
    case OpCls::BinS: {
      if (!fusibleBin(X.Sub))
        return false;
      // binop dst feeding one side of a same-kind binop -> binop+binop.
      if (Y.Cls == X.Cls && fusibleBin(Y.Sub) && Y.Lanes == X.Lanes &&
          Y.Kind == X.Kind && (Y.B == X.A || Y.C == X.A)) {
        Handler H =
            pickBinBin(X.Sub, Y.Sub, static_cast<ScalarKind>(X.Kind));
        if (!H)
          return false;
        F = seed(X, Y);
        F.Fn = H;
        F.A = X.A;
        F.B = X.B;
        F.C = X.C;
        F.D = Y.A;
        if (Y.B == X.A) {
          F.Aux = Y.C;
          F.SrcKind = 0;
        } else {
          F.Aux = Y.B;
          F.SrcKind = 1;
        }
        F.Lanes = X.Lanes;
        F.Kind = X.Kind;
        return true;
      }
      // binop dst feeding a store's value -> binop+store. The fused
      // handler derives the store element size from the binop kind, so
      // the store's element size must match it.
      OpCls WantSt = X.Cls == OpCls::BinV ? OpCls::VStore : OpCls::StoreS;
      if (Y.Cls == WantSt && Y.B == X.A && Y.Lanes == X.Lanes) {
        VMCheck CK = static_cast<VMCheck>(Y.Sub);
        unsigned ES = scalarSize(static_cast<ScalarKind>(Y.Kind));
        if (!fusibleCheck(Y.Sub) || !validES(ES) ||
            (CK == VMCheck::Align && !maskMatches(Y, ES)) ||
            scalarSize(static_cast<ScalarKind>(X.Kind)) != ES)
          return false;
        Handler H =
            pickBinStore(X.Sub, static_cast<ScalarKind>(X.Kind), CK);
        if (!H)
          return false;
        F = seed(X, Y);
        F.Fn = H;
        F.A = X.A;
        F.B = X.B;
        F.C = X.C;
        F.D = Y.A;
        F.Lanes = X.Lanes;
        F.Kind = X.Kind;
        TrapConst = 1;
        return true;
      }
      return false;
    }

    case OpCls::CmpS: {
      // scalar compare feeding a branch-if-zero -> compare+branch.
      if (Y.Cls == OpCls::Branch && Y.A == X.A) {
        Handler H =
            pickCmpBranch(X.Sub, static_cast<ScalarKind>(X.SrcKind));
        if (!H)
          return false;
        F = seed(X, Y);
        F.Fn = H;
        F.A = X.A;
        F.B = X.B;
        F.C = X.C;
        F.SrcKind = X.SrcKind;
        F.Imm = Y.Imm; // Old-index target; remapped after the pass.
        F.Cls = OpCls::FusedBr;
        return true;
      }
      return false;
    }

    case OpCls::Copy: {
      // last phi copy + loop latch -> copy+latch.
      if (Y.Cls == OpCls::Latch) {
        F = seed(X, Y);
        F.Fn = &VMOps::copyLatch;
        F.A = X.A;
        F.B = X.B;
        F.Lanes = X.Lanes;
        F.C = Y.A;
        F.D = Y.B;
        F.Imm = Y.Imm; // Old-index target; remapped after the pass.
        F.Cls = OpCls::FusedBr;
        return true;
      }
      return false;
    }

    default:
      return false;
    }
  }

  /// One greedy left-to-right pass: fuse (i, i+1) whenever i+1 is not a
  /// branch target and a pattern matches, then remap every absolute jump
  /// target through the old->new index table. i itself MAY be a branch
  /// target -- jumps land on the superop, which starts with i's
  /// semantics.
  static void run(DecodedProgram &P) {
    const std::vector<DOp> Old = std::move(P.Code);
    P.Code.clear();
    const uint32_t N = static_cast<uint32_t>(Old.size());
    if (N == 0)
      return;

    // Branch targets (absolute Imm of every control op; loop heads can
    // target one past the end).
    std::vector<bool> IsTarget(N + 1, false);
    for (const DOp &O : Old)
      if (isControl(O.Cls)) {
        assert(O.Imm >= 0 && static_cast<uint64_t>(O.Imm) <= N &&
               "control op with unpatched target");
        IsTarget[static_cast<uint32_t>(O.Imm)] = true;
      }

    std::vector<uint32_t> OldToNew(N + 1, 0);
    std::vector<DOp> New;
    New.reserve(N);
    std::vector<uint32_t> Orig;
    Orig.reserve(N);

    uint32_t I = 0;
    while (I < N) {
      DOp F;
      unsigned TrapConst = 0;
      if (I + 1 < N && !IsTarget[I + 1] &&
          tryFuse(Old[I], Old[I + 1], F, TrapConst)) {
        uint32_t NewIdx = static_cast<uint32_t>(New.size());
        OldToNew[I] = OldToNew[I + 1] = NewIdx;
        New.push_back(F);
        Orig.push_back(I + TrapConst);
        ++P.FusedOps;
        I += 2;
        continue;
      }
      OldToNew[I] = static_cast<uint32_t>(New.size());
      Orig.push_back(I);
      New.push_back(Old[I]);
      ++I;
    }
    OldToNew[N] = static_cast<uint32_t>(New.size());

    for (DOp &O : New)
      if (isControl(O.Cls) || O.Cls == OpCls::FusedBr)
        O.Imm = OldToNew[static_cast<uint32_t>(O.Imm)];

    P.Code = std::move(New);
    P.OrigIndex = std::move(Orig);
  }
};

//===--- DecodedProgram ---------------------------------------------------===//

std::shared_ptr<const DecodedProgram>
DecodedProgram::build(const MFunction &F, const TargetDesc &T,
                      const MemoryImage &Image, bool Weak, bool Fuse,
                      const ElisionPlan *Plan) {
  obs::Span S("vm", "decode+fuse");
  S.arg("function", F.Name);
  S.arg("target", T.Name);
  auto P = std::make_shared<DecodedProgram>();
  P->TargetName = T.Name;
  VMDecoder(*P, F, T, Image, Weak, Plan).decode();
  P->PreFusionOps = static_cast<uint32_t>(P->Code.size());
  if (Fuse)
    VMFuser::run(*P);
  static obs::Counter Built("vm.programs_built");
  static obs::Counter PreOps("vm.ops_prefusion");
  static obs::Counter Fused("vm.ops_fused");
  Built.add(1);
  PreOps.add(P->PreFusionOps);
  Fused.add(P->FusedOps);
  S.arg("ops_prefusion", static_cast<uint64_t>(P->PreFusionOps));
  S.arg("ops_fused", static_cast<uint64_t>(P->FusedOps));
  return P;
}

} // namespace target
} // namespace vapor

//===--- TrapInfo ---------------------------------------------------------===//

std::string TrapInfo::str() const {
  switch (TrapKind) {
  case Kind::None:
    return "no trap";
  case Kind::Alignment:
    return "alignment trap: aligned vector " +
           std::string(IsStore ? "store" : "load") +
           " at misaligned address " + std::to_string(Address) +
           " (requires " + std::to_string(RequiredAlign) + "B) on " + Target +
           ", op #" + std::to_string(OpIndex);
  case Kind::OutOfBounds:
    return "memory access out of image bounds at address " +
           std::to_string(Address) + " on " + Target;
  }
  vapor_unreachable("bad trap kind");
}

//===--- VM ---------------------------------------------------------------===//

VM::VM(const MFunction &F, const TargetDesc &T, MemoryImage &Image, bool Weak,
       bool Fuse, const ElisionPlan *Plan)
    : Prog(DecodedProgram::build(F, T, Image, Weak, Fuse, Plan)), Mem(Image) {
  bindProgram();
}

VM::VM(std::shared_ptr<const DecodedProgram> Program, MemoryImage &Image)
    : Prog(std::move(Program)), Mem(Image) {
  bindProgram();
}

void VM::bindProgram() {
  RegStore.assign(Prog->LaneCount + 1, 0);
  R = RegStore.data();
  if (reinterpret_cast<uintptr_t>(R) % 16 != 0)
    ++R; // 16-byte-align the lane file inside the padded store.
  AuxBase = Prog->AuxLanes.data();
}

uint8_t *VM::memFault(uint64_t Addr) {
  if (!TrapRecording)
    fatalError("memory access out of image bounds at address " +
               std::to_string(Addr));
  if (!Trapped) { // First trap wins: it is the one the executor acts on.
    Trapped = true;
    Trap = TrapInfo{TrapInfo::Kind::OutOfBounds, ~0u, Addr, 0, false,
                    Prog->TargetName};
    TrapMsg = Trap.str();
    static obs::Counter Faults("vm.mem_faults");
    Faults.add(1);
    if (obs::tracingActive())
      obs::event("vm", "mem_fault",
                 {{"target", obs::argStr(Prog->TargetName)},
                  {"address", obs::argStr(Addr)}});
  }
  // Hand the faulting op a zeroed sink so it completes harmlessly. The
  // run continues to normal termination (loop control is register-based,
  // never loaded from memory) so the dispatch loop stays branch-free; the
  // recorded trap surfaces in run()'s Status.
  std::memset(Scratch, 0, sizeof(Scratch));
  return Scratch;
}

uint32_t VM::alignTrap(uint32_t PC, uint64_t Addr, uint32_t RequiredAlign,
                       bool IsStore) {
  TrapInfo TI{TrapInfo::Kind::Alignment, Prog->origIndex(PC), Addr,
              RequiredAlign, IsStore, Prog->TargetName};
  if (!TrapRecording)
    fatalError(TI.str());
  if (!Trapped) { // First trap wins.
    Trapped = true;
    Trap = TI;
    TrapMsg = Trap.str();
    static obs::Counter Traps("vm.align_traps");
    Traps.add(1);
    if (obs::tracingActive())
      obs::event("vm", "align_trap",
                 {{"target", obs::argStr(Prog->TargetName)},
                  {"op", obs::argStr(static_cast<uint64_t>(TI.OpIndex))},
                  {"address", obs::argStr(TI.Address)},
                  {"required_align",
                   obs::argStr(static_cast<uint64_t>(TI.RequiredAlign))},
                  {"is_store", obs::argStr(TI.IsStore)}});
  }
  return static_cast<uint32_t>(Prog->Code.size()); // Halt the run loop.
}

void VM::setParamInt(const std::string &Name, int64_t V) {
  for (const DecodedProgram::ParamSlot &P : Prog->Params) {
    if (P.Name != Name)
      continue;
    R[P.Off] = isFloatKind(P.Kind) ? encodeFP(P.Kind, static_cast<double>(V))
                                   : encodeInt(P.Kind, V);
    return;
  }
  fatalError("unknown integer parameter '" + Name + "'");
}

void VM::setParamFP(const std::string &Name, double V) {
  for (const DecodedProgram::ParamSlot &P : Prog->Params) {
    if (P.Name != Name)
      continue;
    R[P.Off] = isFloatKind(P.Kind) ? encodeFP(P.Kind, V)
                                   : encodeInt(P.Kind, static_cast<int64_t>(V));
    return;
  }
  fatalError("unknown float parameter '" + Name + "'");
}

status::Status VM::run() {
  using status::Code;
  using status::Layer;
  if (Trapped) // A previous run already faulted; don't resume.
    return status::Status::error(Trap.TrapKind == TrapInfo::Kind::Alignment
                                     ? Code::AlignmentTrap
                                     : Code::OutOfBoundsAccess,
                                 Layer::Vm, Trap.str());

  MemPtr = Mem.data();
  MemLo = Mem.lowAddr();
  MemHi = Mem.highAddr();

  // The dispatch loop carries no trap check: an alignment trap halts by
  // returning a past-the-end PC, and a recorded bounds fault lets the run
  // finish against the scratch sink (termination is register-driven), so
  // the uninstrumented hot path is byte-for-byte the pre-fault-tolerance
  // loop.
  const DOp *Ops = Prog->Code.data();
  const uint32_t N = static_cast<uint32_t>(Prog->Code.size());
  uint64_t Cyc = 0, Ins = 0;
  uint32_t PC = 0;
  if (__builtin_expect(Fuel != 0, 0)) {
    // Fueled (deadline-bounded) run: a separate copy of the dispatch
    // loop, so the unfueled hot path below stays byte-identical to the
    // pre-fuel interpreter. The budget counts dispatched decoded ops --
    // the one quantity the loop already advances by exactly one per
    // iteration -- so exhaustion is detected within one dispatch of the
    // limit regardless of fusion or control flow.
    //
    // Fault-injection site: models a runaway kernel without needing one;
    // fires only on fueled runs, so the crashtest's classic sweeps never
    // count it.
    if (faultinject::shouldFire(faultinject::SiteClass::Deadline))
      return status::Status::error(
          Code::DeadlineExceeded, Layer::Vm,
          "injected fault: deadline exceeded before dispatch");
    uint64_t Left = Fuel;
    while (PC < N) {
      if (__builtin_expect(Left-- == 0, 0)) {
        Cycles += Cyc;
        Instrs += Ins;
        static obs::Counter Deadlines("vm.deadline_exceeded");
        Deadlines.add(1);
        return status::Status::error(
            Code::DeadlineExceeded, Layer::Vm,
            "deadline exceeded: dispatch budget of " + std::to_string(Fuel) +
                " ops exhausted on " + Prog->TargetName);
      }
      const DOp &O = Ops[PC];
      Cyc += O.Cost;
      Ins += O.Counts;
      PC = O.Fn(*this, O, PC);
    }
  } else {
    while (PC < N) {
      const DOp &O = Ops[PC];
      Cyc += O.Cost;
      Ins += O.Counts;
      PC = O.Fn(*this, O, PC);
    }
  }
  Cycles += Cyc;
  Instrs += Ins;
  // One relaxed add per *run*, never per dispatched op: the dispatch loop
  // above stays untouched, which is what keeps the ON-but-idle tracing
  // overhead inside the perf gate's 2% budget.
  static obs::Counter Runs("vm.runs");
  static obs::Counter Dispatched("vm.ops_dispatched");
  Runs.add(1);
  Dispatched.add(Ins);
  if (Trapped)
    return status::Status::error(Trap.TrapKind == TrapInfo::Kind::Alignment
                                     ? Code::AlignmentTrap
                                     : Code::OutOfBoundsAccess,
                                 Layer::Vm, Trap.str());
  return status::Status::okStatus();
}
