//===- target/MemoryImage.cpp - Byte-addressable runtime memory -----------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "target/MemoryImage.h"

#include "ir/ScalarOps.h"
#include "support/Support.h"

#include <cstring>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::target;

uint32_t MemoryImage::addArray(const ArrayInfo &AI, uint32_t BaseMisalign) {
  uint64_t Mis = BaseMisalign % 32;
  // Skip the guard pad, then land on the requested residue mod 32.
  uint64_t BaseAddr = alignUp(AddrBase + Bytes.size() + Pad, 32) + Mis;
  uint64_t BaseOff = BaseAddr - AddrBase;
  uint64_t DataBytes = AI.NumElems * scalarSize(AI.Elem);
  Bytes.resize(BaseOff + DataBytes + Pad, 0);
  Arrays.push_back({AI, BaseOff});
  return static_cast<uint32_t>(Arrays.size() - 1);
}

uint64_t MemoryImage::base(uint32_t Id) const {
  assert(Id < Arrays.size() && "bad array id");
  return AddrBase + Arrays[Id].BaseOff;
}

const ArrayInfo &MemoryImage::info(uint32_t Id) const {
  assert(Id < Arrays.size() && "bad array id");
  return Arrays[Id].Info;
}

const uint8_t *MemoryImage::at(uint64_t Addr, uint64_t Size) const {
  if (Addr < AddrBase || Addr - AddrBase + Size > Bytes.size())
    fatalError("memory access out of image bounds at address " +
               std::to_string(Addr));
  return Bytes.data() + (Addr - AddrBase);
}

uint8_t *MemoryImage::at(uint64_t Addr, uint64_t Size) {
  return const_cast<uint8_t *>(
      static_cast<const MemoryImage *>(this)->at(Addr, Size));
}

uint64_t MemoryImage::readLane(uint64_t Addr, ScalarKind K) const {
  unsigned ES = scalarSize(K);
  const uint8_t *P = at(Addr, ES);
  uint64_t Raw = 0;
  std::memcpy(&Raw, P, ES);
  return Raw;
}

void MemoryImage::writeLane(uint64_t Addr, ScalarKind K, uint64_t Raw) {
  unsigned ES = scalarSize(K);
  std::memcpy(at(Addr, ES), &Raw, ES);
}

void MemoryImage::pokeInt(uint32_t Arr, uint64_t Elem, int64_t V) {
  const Entry &E = Arrays[Arr];
  assert(Elem < E.Info.NumElems && "element out of range");
  writeLane(base(Arr) + Elem * scalarSize(E.Info.Elem), E.Info.Elem,
            encodeInt(E.Info.Elem, V));
}

void MemoryImage::pokeFP(uint32_t Arr, uint64_t Elem, double V) {
  const Entry &E = Arrays[Arr];
  assert(Elem < E.Info.NumElems && "element out of range");
  writeLane(base(Arr) + Elem * scalarSize(E.Info.Elem), E.Info.Elem,
            encodeFP(E.Info.Elem, V));
}

int64_t MemoryImage::peekInt(uint32_t Arr, uint64_t Elem) const {
  const Entry &E = Arrays[Arr];
  assert(Elem < E.Info.NumElems && "element out of range");
  return decodeInt(E.Info.Elem,
                   readLane(base(Arr) + Elem * scalarSize(E.Info.Elem),
                            E.Info.Elem));
}

double MemoryImage::peekFP(uint32_t Arr, uint64_t Elem) const {
  const Entry &E = Arrays[Arr];
  assert(Elem < E.Info.NumElems && "element out of range");
  return decodeFP(E.Info.Elem,
                  readLane(base(Arr) + Elem * scalarSize(E.Info.Elem),
                           E.Info.Elem));
}
