//===- target/Target.h - Per-target machine models -------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptions of the paper's evaluation targets (Sec. IV): SSE and AVX
/// on x86, AltiVec on PowerPC, 64-bit NEON on ARM, and a SIMD-less
/// scalar machine. A TargetDesc carries what the *online* compiler is
/// allowed to know -- vector width, misalignment support, the
/// permute-based realignment unit, vector type/op legality, register
/// file size -- plus the cycle cost table the VM charges per executed
/// instruction.
///
/// The cost model is calibrated qualitatively, not against silicon:
/// aligned < misaligned < realigned accesses, vector op ~ scalar op
/// (that is the whole point of vectorizing), folded addressing is free,
/// spill traffic is expensive, and the weak tier pays an x87 penalty for
/// scalar floating point on x86 targets (paper Sec. IV-C: Mono's FP
/// code runs on the x87 stack).
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_TARGET_TARGET_H
#define VAPOR_TARGET_TARGET_H

#include "ir/Opcode.h"
#include "ir/Type.h"
#include "target/MachineIR.h"

#include <string>
#include <vector>

namespace vapor {
namespace target {

/// Per-instruction-class cycle costs. Values are cycles per executed
/// machine instruction (vector instructions cost per *instruction*, not
/// per lane -- the vector speedup comes from doing VF lanes at once).
struct CostTable {
  unsigned RegOp = 1;      ///< ldimm/ldfimm/mov/loadbase.
  unsigned AddrOp = 1;     ///< Unfolded address arithmetic.
  unsigned IntOp = 1;      ///< Integer ALU, compares, selects.
  unsigned SatOp = 1;      ///< Saturating narrow-int add/sub (SIMD units
                           ///< have native forms; scalar clamps cost more).
  unsigned FpOp = 3;       ///< FP add/sub/mul (SIMD or FPU unit).
  unsigned X87Op = 9;      ///< Scalar FP on the x87 stack (weak tier).
  unsigned DivOp = 12;     ///< Divide/remainder/sqrt, any unit.
  unsigned ConvertOp = 1;  ///< Scalar or in-register vector converts.
  unsigned ScalarLoad = 3; ///< Scalar memory read.
  unsigned ScalarStore = 3;
  unsigned VecLoadA = 3;  ///< Aligned vector load.
  unsigned VecLoadU = 5;  ///< Misaligned vector load.
  unsigned VecStoreA = 3; ///< Aligned vector store.
  unsigned VecStoreU = 6; ///< Misaligned vector store.
  unsigned Shuffle = 2;   ///< Permute/splat/pack/unpack/interleave.
  unsigned WideMul = 3;   ///< Widening multiply halves.
  unsigned DotOp = 4;     ///< Fused dot-product step.
  unsigned ReduceOp = 4;  ///< Horizontal reduction.
  unsigned SpillOp = 4;   ///< One spill store or reload.
  unsigned LibCall = 24;  ///< Out-of-line library fallback.
  unsigned LoopIter = 1;  ///< Per-iteration loop control overhead.
};

/// Static description of one execution target.
struct TargetDesc {
  std::string Name;
  unsigned VSBytes = 0;          ///< Vector size in bytes (0 = no SIMD).
  bool HasMisaligned = false;    ///< Misaligned vector loads/stores exist.
  bool HasPermRealign = false;   ///< lvsr/vperm realignment unit exists.
  bool LibFallbackForOps = false; ///< Unsupported idioms call a library.
  bool X87ScalarFP = false;      ///< Weak-tier scalar FP runs on x87.
  unsigned ScalarRegs = 16;      ///< Allocatable scalar registers.
  unsigned VectorRegs = 16;      ///< Allocatable vector registers.
  uint16_t UnsupportedKindMask = 0; ///< Bit per ScalarKind value.
  uint64_t UnsupportedOpMask = 0;   ///< Bit per Opcode value.
  CostTable Costs;

  bool hasSimd() const { return VSBytes != 0; }

  /// \returns true if vectors of element kind \p K exist on this target.
  bool supportsVecKind(ir::ScalarKind K) const {
    if (!hasSimd() || K == ir::ScalarKind::None)
      return false;
    return (UnsupportedKindMask >> static_cast<unsigned>(K) & 1) == 0;
  }

  /// \returns true if \p Op has a direct vector lowering on this target.
  bool supportsVecOp(ir::Opcode Op) const {
    if (!hasSimd())
      return false;
    return (UnsupportedOpMask >> static_cast<unsigned>(Op) & 1) == 0;
  }
};

/// The five paper targets.
TargetDesc sseTarget();     ///< x86 SSE: 16B, misaligned ok, x87 legacy.
TargetDesc altivecTarget(); ///< PowerPC AltiVec: 16B, perm realign, no f64.
TargetDesc neonTarget();    ///< ARM NEON (64-bit): 8B, library fallbacks.
TargetDesc avxTarget();     ///< x86 AVX: 32B.
TargetDesc scalarTarget();  ///< No SIMD at all.

/// All five, in the order above.
std::vector<TargetDesc> allTargets();

/// \returns the cycle cost of one dynamic execution of \p I on \p T.
/// \p WeakTier selects the weak online compiler's execution environment
/// (x87 scalar FP on x86 targets).
unsigned instrCost(const TargetDesc &T, const MInstr &I, bool WeakTier);

} // namespace target
} // namespace vapor

#endif // VAPOR_TARGET_TARGET_H
