//===- target/MemoryImage.h - Byte-addressable runtime memory --*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory the VM executes against: one flat byte-addressable image
/// holding every array of a kernel at a *controlled* placement. The
/// placement knob is what makes the paper's alignment experiments
/// possible -- each array is placed at a chosen misalignment (bytes mod
/// 32), so the same machine code can be run against aligned and
/// misaligned layouts and an aligned vector access to a misaligned
/// address is a hard error, not a silent slowdown.
///
/// Every array is padded by a full maximum vector (32 bytes) on both
/// sides so the realignment scheme's flooring aligned loads may read up
/// to a vector before the base or past the end without faulting, exactly
/// like lvx on real AltiVec.
///
/// Addresses are virtual: they start at a fixed 32-byte-aligned base and
/// index the image directly, so the VM's address arithmetic is one
/// subtraction away from a host pointer.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_TARGET_MEMORYIMAGE_H
#define VAPOR_TARGET_MEMORYIMAGE_H

#include "ir/Function.h"
#include "ir/Type.h"

#include <cstdint>
#include <vector>

namespace vapor {
namespace target {

class MemoryImage {
public:
  /// First virtual address of the image (32-byte aligned, nonzero so a
  /// null-ish address is always out of bounds).
  static constexpr uint64_t AddrBase = 1024;
  /// Guard padding before and after every array's data.
  static constexpr uint64_t Pad = 32;

  /// Allocates \p AI at a base address congruent to \p BaseMisalign
  /// modulo 32. \returns the array id (ids are assigned in call order).
  uint32_t addArray(const ir::ArrayInfo &AI, uint32_t BaseMisalign);

  size_t arrayCount() const { return Arrays.size(); }

  /// \returns the virtual base address of array \p Id.
  uint64_t base(uint32_t Id) const;

  const ir::ArrayInfo &info(uint32_t Id) const;

  /// Element accessors (by array id and element index).
  void pokeInt(uint32_t Arr, uint64_t Elem, int64_t V);
  void pokeFP(uint32_t Arr, uint64_t Elem, double V);
  int64_t peekInt(uint32_t Arr, uint64_t Elem) const;
  double peekFP(uint32_t Arr, uint64_t Elem) const;

  /// Raw lane accessors (by virtual address). The returned/stored value
  /// is the canonical lane encoding of kind \p K (zero-extended raw
  /// bits). Out-of-image accesses abort.
  uint64_t readLane(uint64_t Addr, ir::ScalarKind K) const;
  void writeLane(uint64_t Addr, ir::ScalarKind K, uint64_t Raw);

  //===--- VM fast path ----------------------------------------------------===//
  // The VM caches these once per run; the image must not grow while
  // machine code executes (arrays are added before the VM is built).

  uint8_t *data() { return Bytes.data(); }
  const uint8_t *data() const { return Bytes.data(); }
  uint64_t lowAddr() const { return AddrBase; }
  uint64_t highAddr() const { return AddrBase + Bytes.size(); }

private:
  /// \returns a host pointer for [Addr, Addr+Size), aborting when the
  /// range leaves the image.
  const uint8_t *at(uint64_t Addr, uint64_t Size) const;
  uint8_t *at(uint64_t Addr, uint64_t Size);

  struct Entry {
    ir::ArrayInfo Info;
    uint64_t BaseOff; ///< Offset of element 0 inside Bytes.
  };
  std::vector<Entry> Arrays;
  std::vector<uint8_t> Bytes;
};

} // namespace target
} // namespace vapor

#endif // VAPOR_TARGET_MEMORYIMAGE_H
