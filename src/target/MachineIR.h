//===- target/MachineIR.h - Target machine code vocabulary -----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level IR the online JIT emits and the target VM executes.
/// It deliberately mirrors what era-accurate backends produced for the
/// paper's targets: explicit (mis)aligned vector memory ops, the
/// lvsr/vperm realignment pair, widening-multiply / pack / unpack /
/// interleave data reorganization, horizontal reductions, spill traffic
/// placeholders, and library-call fallbacks.
///
/// Like the source IR, machine code is *structured*: a function body is a
/// region tree of instructions, counted loops (with explicit loop-carried
/// slots), and two-armed ifs. Registers are virtual and infinite; the
/// register-pressure model in the JIT inserts SpillLd/SpillSt traffic
/// where a real allocator would, so the VM never needs a spill slot --
/// the cost model is what matters.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_TARGET_MACHINEIR_H
#define VAPOR_TARGET_MACHINEIR_H

#include "ir/Function.h"
#include "ir/Opcode.h"
#include "ir/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vapor {
namespace target {

/// Virtual machine register id.
using MReg = uint32_t;
constexpr MReg NoReg = ~0u;

/// Machine opcodes. `V`-prefixed ops operate on full vector registers.
enum class MOp : uint8_t {
  // Register setup.
  LdImm,    ///< Dst = Imm (integer immediate of Kind).
  LdFImm,   ///< Dst = FImm (float immediate of Kind).
  Mov,      ///< Dst = Srcs[0].
  LoadBase, ///< Dst = runtime base address of Array.
  Addr,     ///< Dst = Srcs[0] + Srcs[1] * Scale (folded => free).

  // Scalar ALU and memory.
  Alu,   ///< Dst = SubOp(Srcs...) on Kind lanes (Vector selects width).
  Load,  ///< Dst = scalar Kind load from address Srcs[0].
  Store, ///< Store scalar Srcs[1] (Kind) to address Srcs[0].

  // Vector memory and realignment.
  VLoadA,  ///< Aligned vector load; traps on a misaligned address.
  VLoadU,  ///< Misaligned-capable vector load.
  VStoreA, ///< Aligned vector store; traps on a misaligned address.
  VStoreU, ///< Misaligned-capable vector store.
  GetPerm, ///< Dst = Srcs[0] % VSBytes (the lvsr realignment token).
  VPerm,   ///< Dst = select VS bytes from Srcs[0]:Srcs[1] at token Srcs[2].

  // Vector initialization.
  VSplat,    ///< Broadcast scalar Srcs[0] to every lane.
  VAffine,   ///< Lane L = Srcs[0] + L * Srcs[1].
  VSetLane0, ///< Copy vector Srcs[0], replace lane 0 with scalar Srcs[1].

  // Data reorganization and widening idioms.
  VExtract,  ///< Lane L = concat(Srcs...)[Imm + L * Imm2].
  VIlvLo,    ///< Interleave low halves of Srcs[0], Srcs[1].
  VIlvHi,    ///< Interleave high halves.
  VWMulLo,   ///< Widening multiply of low narrow halves.
  VWMulHi,   ///< Widening multiply of high narrow halves.
  VPack,     ///< Narrow both wide sources into one vector.
  VUnpackLo, ///< Widen the low narrow half of Srcs[0].
  VUnpackHi, ///< Widen the high narrow half.
  VDot,      ///< Dst[J] = Srcs[2][J] + sum of widened pair products.
  Reduce,    ///< Horizontal SubOp (add/min/max) of Srcs[0] into a scalar.

  // Fallbacks and allocator traffic.
  CallLib, ///< Library routine implementing SubOp on vectors.
  SpillLd, ///< Register-allocator reload traffic (cost only).
  SpillSt, ///< Register-allocator spill traffic (cost only).
};

/// \returns the assembly mnemonic for \p Op ("vload.a", "getperm", ...).
const char *mopMnemonic(MOp Op);

/// One machine instruction. Which fields are meaningful depends on Op;
/// unset fields keep their defaults.
struct MInstr {
  MOp Op = MOp::LdImm;
  ir::Opcode SubOp = ir::Opcode::Add; ///< Alu / Reduce / CallLib operation.
  ir::ScalarKind Kind = ir::ScalarKind::None; ///< Element kind operated on.
  bool Vector = false; ///< Operates on vector registers.
  bool Folded = false; ///< Addr only: folded into the memory operand.
  MReg Dst = NoReg;
  std::vector<MReg> Srcs;
  int64_t Imm = 0;    ///< LdImm value; VExtract start offset.
  int64_t Imm2 = 0;   ///< VExtract stride.
  double FImm = 0;    ///< LdFImm value.
  uint32_t Array = 0; ///< LoadBase array id.
  unsigned Scale = 1; ///< Addr index scale (element size).
  /// Memory ops only: the bytecode instruction this access lowers, for
  /// looking up elision grants (target/Elision.h). ~0u = not a direct
  /// lowering of a certifiable access (scalar expansion, realign chains,
  /// permutes) — such accesses always keep their checks.
  uint32_t SrcInstr = ~0u;
};

enum class MNodeKind : uint8_t { Instr, Loop, If };

/// Reference to an instruction/loop/if in the owning MFunction's pools.
struct MNodeRef {
  MNodeKind Kind = MNodeKind::Instr;
  uint32_t Index = 0;
};

struct MRegion {
  std::vector<MNodeRef> Nodes;
};

/// Counted loop: for (iv = Lower; iv < Upper; iv += Step). Loop-carried
/// values enter as Phi (initialized from Init) and are replaced by Next
/// at the end of every iteration; after the loop the Phi registers hold
/// the final values.
struct MLoop {
  struct CarriedVar {
    MReg Phi = NoReg;
    MReg Init = NoReg;
    MReg Next = NoReg;
  };
  MReg IndVar = NoReg;
  MReg Lower = NoReg;
  MReg Upper = NoReg;
  MReg Step = NoReg;
  std::vector<CarriedVar> Carried;
  MRegion Body;
  bool IsVectorMain = false; ///< The vectorized main loop (IACA anchor).
};

struct MIf {
  MReg Cond = NoReg; ///< Scalar I1 register.
  MRegion Then;
  MRegion Else;
};

/// Static per-register metadata (lane kind and register class).
struct MRegInfo {
  ir::ScalarKind Kind = ir::ScalarKind::None;
  bool Vector = false;
};

struct MParam {
  std::string Name;
  MReg Reg = NoReg;
};

/// A compiled machine function: flat instruction/loop/if pools plus the
/// structured body referencing them, VSBytes of the target it was
/// compiled for, and the array table carried over from the source.
struct MFunction {
  std::string Name;
  unsigned VSBytes = 0;
  std::vector<ir::ArrayInfo> Arrays;
  std::vector<MParam> Params;
  std::vector<MRegInfo> Regs;
  std::vector<MInstr> Instrs;
  std::vector<MLoop> Loops;
  std::vector<MIf> Ifs;
  MRegion Body;

  MReg makeReg(ir::ScalarKind K, bool Vector) {
    Regs.push_back({K, Vector});
    return static_cast<MReg>(Regs.size() - 1);
  }

  /// Pretty-prints the function (used by tests to assert on lowering
  /// strategies, and by humans to read what the JIT produced).
  std::string str() const;
};

} // namespace target
} // namespace vapor

#endif // VAPOR_TARGET_MACHINEIR_H
