//===- target/Elision.h - Check-elision plan shared by consumers -*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of evaluating a safety certificate against one concrete run:
/// which bytecode accesses may drop their align/bounds checks, and in which
/// mode. Deliberately dependency-free (plain types only) so both execution
/// tiers — the VM pre-decoder in target/ and the native JIT in codegen/ —
/// can consume a plan without linking the analysis layer.
///
/// A plan is built by jit::buildElisionPlan (src/jit/Elision.h), which is
/// the ONLY component allowed to set Proven bits: it runs the independent
/// certificate checker first and then evaluates the residual runtime
/// preconditions (concrete array bases, concrete parameters). Consumers
/// treat the plan as ground truth; a null plan or Mode == Off means "emit
/// every check", which is always sound.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_TARGET_ELISION_H
#define VAPOR_TARGET_ELISION_H

#include <cstdint>
#include <string>
#include <vector>

namespace vapor {
namespace target {

enum class ElisionMode : uint8_t {
  Off,   ///< Emit every check (baseline; also the fault-injection stand-down).
  On,    ///< Skip checks proven redundant by a checked certificate.
  Audit, ///< Keep every check compiled, but count the instances an On-mode
         ///< run would have elided *and whose predicate fired* — the
         ///< soundness telemetry swept by vapor-crashtest --audit.
};

inline const char *elisionModeName(ElisionMode M) {
  switch (M) {
  case ElisionMode::Off:
    return "off";
  case ElisionMode::On:
    return "on";
  case ElisionMode::Audit:
    return "audit";
  }
  return "?";
}

/// Per-access elision grants, indexed by bytecode instruction index.
/// Bit 0 = alignment check proven redundant, bit 1 = bounds check proven
/// redundant. Machine instructions carry their source bytecode index
/// (MInstr::SrcInstr); consumers look the grant up at lowering time.
struct ElisionPlan {
  ElisionMode Mode = ElisionMode::Off;
  /// Proven[InstrIdx] = bit0 (align) | bit1 (bounds). Sized to the
  /// function's instruction count; anything out of range has no grant.
  std::vector<uint8_t> Proven;
  /// Deterministic hash over (Mode, Proven) for cache keying: artifacts
  /// compiled under one plan must never be reused under another.
  uint64_t Hash = 0;

  /// Human-readable per-access decisions ("#12 aload A: elide align
  /// (base%32==0), elide bounds (range [0,1016] ⊆ [0,1016])"), surfaced
  /// by vapor-explain and RunOutcome.
  std::vector<std::string> Decisions;

  // Plan-build statistics.
  uint32_t AlignElided = 0;  ///< Accesses whose align check is granted away.
  uint32_t BoundsElided = 0; ///< Accesses whose bounds check is granted away.
  uint32_t ChecksKept = 0;   ///< Certificate-covered accesses kept checked.
  uint32_t FactsRejected = 0; ///< Facts the independent checker rejected.
  /// Non-empty when the whole certificate failed structural validation;
  /// every fact was then treated as rejected.
  std::string CheckerError;

  static constexpr uint8_t AlignBit = 1;
  static constexpr uint8_t BoundsBit = 2;

  /// The grant bits for bytecode instruction \p Src; 0 when the plan is
  /// Off, the index is unmapped (~0u), or out of range.
  uint8_t provenBits(uint32_t Src) const {
    if (Mode == ElisionMode::Off || Src == ~0u || Src >= Proven.size())
      return 0;
    return Proven[Src];
  }
};

} // namespace target
} // namespace vapor

#endif // VAPOR_TARGET_ELISION_H
