//===- ir/Function.h - Structured loop-tree IR -----------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR shared by the offline compiler's input (scalar source level) and
/// output (split-layer vectorized bytecode).
///
/// Programs are structured loop trees, not general CFGs: a function body is
/// a region, a region is a sequence of instructions, counted loops, and
/// if-statements. Loops carry explicit loop-carried variables (init/next
/// pairs), which makes reduction detection and vectorization rewrites
/// direct. Memory is a set of named arrays with alignment attributes;
/// loads and stores address arrays by element index.
///
/// The same infrastructure hosts the split layer: vector types become
/// parametric (lane count = VS / sizeof(elem), VS unknown offline) and the
/// idiom opcodes of paper Table 1 become available.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_IR_FUNCTION_H
#define VAPOR_IR_FUNCTION_H

#include "ir/Opcode.h"
#include "ir/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vapor {
namespace ir {

using ValueId = uint32_t;
constexpr ValueId NoValue = ~0u;
constexpr uint32_t NoArray = ~0u;

/// How a value is defined.
enum class ValueDef : uint8_t {
  Param,       ///< Function scalar parameter.
  Instr,       ///< Result of the instruction Values[id].A.
  LoopInd,     ///< Induction variable of loop A.
  LoopCarried, ///< Carried variable B of loop A (the "phi" inside the body).
  LoopResult,  ///< Final value of carried variable B of loop A, after it.
};

struct ValueInfo {
  Type Ty;
  ValueDef Def = ValueDef::Instr;
  uint32_t A = 0; ///< Defining instruction / loop index.
  uint32_t B = 0; ///< Carried-variable index for LoopCarried/LoopResult.
  std::string Name; ///< Non-empty for parameters only.
};

/// A named array (the only memory objects in the IR). BaseAlign is the
/// *guaranteed minimum* base alignment in bytes known offline; runtimes may
/// in fact align more strictly, which is exactly what the alignment
/// version-guard machinery exploits (paper Sec. III-B(c)).
struct ArrayInfo {
  std::string Name;
  ScalarKind Elem = ScalarKind::None;
  uint64_t NumElems = 0;
  uint32_t BaseAlign = 1;
};

/// Hints attached to realignment idioms and unaligned accesses: the access
/// misalignment in bytes relative to a Mod-byte boundary (paper uses
/// Mod = 32, the largest SIMD width of the day). Mod == 0 means "no
/// information" — the nulled hint of the fall-back loop version.
/// IfJitAligns marks hints that are only valid when the online compiler can
/// force array bases to vector alignment.
struct AlignHint {
  int32_t Mis = -1;
  int32_t Mod = 0;
  bool IfJitAligns = false;

  bool known() const { return Mod > 0 && Mis >= 0; }
};

/// The condition classes a version_guard_COND can test. The offline
/// compiler emits the guard; the online compiler resolves it (statically
/// when it can).
enum class GuardKind : uint8_t {
  None,
  /// True iff every array listed in GuardArgs has its base aligned to the
  /// target vector size at run time.
  BasesAligned,
  /// True iff the target supports TyParam as a vector element type
  /// (e.g. AltiVec answers false for F64).
  TypeSupported,
  /// Cost-model question: should the outer loop of a nest be vectorized
  /// rather than the inner one on this target?
  PreferOuterLoop,
};

struct Instr {
  Opcode Op = Opcode::ConstInt;
  Type Ty;                     ///< Result type; Type::none() if no result.
  ValueId Result = NoValue;
  std::vector<ValueId> Ops;
  int64_t IntImm = 0;  ///< ConstInt value; Extract offset; GetMisalign
                       ///< element offset.
  int64_t IntImm2 = 0; ///< Extract stride.
  double FPImm = 0;    ///< ConstFP value.
  uint32_t Array = NoArray; ///< Memory idioms, GetMisalign, GetRT.
  ScalarKind TyParam = ScalarKind::None; ///< The idiom "T" parameter.
  AlignHint Hint;
  GuardKind Guard = GuardKind::None;
  std::vector<uint32_t> GuardArgs;

  bool hasResult() const { return Result != NoValue; }
};

enum class NodeKind : uint8_t { Instr, Loop, If };

struct NodeRef {
  NodeKind Kind = NodeKind::Instr;
  uint32_t Index = 0;
};

struct Region {
  std::vector<NodeRef> Nodes;
  bool empty() const { return Nodes.empty(); }
};

/// Roles the vectorizer assigns so the online compiler (and readers of the
/// printed bytecode) can identify the three-loop structure of paper
/// Sec. III-B(c): scalar peel, vector main loop, scalar epilogue.
enum class LoopRole : uint8_t { Plain, Peel, VecMain, Epilogue };

/// A counted loop: IndVar ranges over [Lower, Upper) stepping by Step.
/// Carried variables model loop-carried scalar/vector state: inside the
/// body the variable reads as Phi (init on entry, Next thereafter); after
/// the loop its final value is Result.
struct LoopStmt {
  ValueId IndVar = NoValue;
  ValueId Lower = NoValue;
  ValueId Upper = NoValue;
  ValueId Step = NoValue;

  struct CarriedVar {
    ValueId Phi = NoValue;
    ValueId Init = NoValue;
    ValueId Next = NoValue;
    ValueId Result = NoValue;
  };
  std::vector<CarriedVar> Carried;

  Region Body;
  LoopRole Role = LoopRole::Plain;
  /// Dependence-distance hint (paper Sec. III-B(b)'s extension): largest
  /// vectorization factor for which this loop's carried dependences stay
  /// safe. 0 = unconstrained. The online compiler scalarizes the loop
  /// when its VF would exceed this.
  int64_t MaxSafeVF = 0;
};

/// Two-armed conditional. At the split layer this hosts loop versioning:
/// Cond is a version_guard and the arms are the guarded / fall-back loop
/// versions. Results flow through memory, so arms have no out values.
struct IfStmt {
  ValueId Cond = NoValue;
  Region Then;
  Region Else;
};

/// A function: scalar parameters, arrays, and a body region. One Function
/// instance represents either scalar source IR (IsSplitLayer == false; only
/// base opcodes and scalar types) or split-layer vectorized bytecode.
class Function {
public:
  explicit Function(std::string FuncName) : Name(std::move(FuncName)) {}

  std::string Name;
  bool IsSplitLayer = false;

  std::vector<ValueInfo> Values;
  std::vector<Instr> Instrs;
  std::vector<LoopStmt> Loops;
  std::vector<IfStmt> Ifs;
  std::vector<ArrayInfo> Arrays;
  std::vector<ValueId> Params;
  Region Body;

  /// Declares a scalar parameter and \returns its value id.
  ValueId addParam(const std::string &ParamName, Type Ty);

  /// Declares an array. \p BaseAlign is the guaranteed base alignment in
  /// bytes (at least the element size). \returns the array id.
  uint32_t addArray(const std::string &ArrName, ScalarKind Elem,
                    uint64_t NumElems, uint32_t BaseAlign);

  uint32_t arrayIdByName(const std::string &ArrName) const;

  Type typeOf(ValueId V) const {
    assert(V < Values.size() && "value id out of range");
    return Values[V].Ty;
  }

  /// Creates a fresh value of type \p Ty with definition bookkeeping.
  ValueId makeValue(Type Ty, ValueDef Def, uint32_t A, uint32_t B = 0);

  const Instr &instrOf(ValueId V) const {
    assert(Values[V].Def == ValueDef::Instr && "value is not an instr result");
    return Instrs[Values[V].A];
  }

  /// Total node count (instructions + loops + ifs); a proxy for code size.
  size_t nodeCount() const {
    return Instrs.size() + Loops.size() + Ifs.size();
  }

  std::string str() const;
};

/// \returns a 64-bit structural content hash of \p F: every value,
/// instruction, loop, if, array, parameter, and region edge contributes,
/// so two functions hash equal iff they are structurally identical. This
/// is the function half of the content-addressed code cache's keys
/// (jit/CodeCache.h); it must stay deterministic across processes, so it
/// hashes field values only -- no pointers, no addresses.
uint64_t hashFunction(const Function &F);

} // namespace ir
} // namespace vapor

#endif // VAPOR_IR_FUNCTION_H
