//===- ir/Verifier.h - IR well-formedness checks ---------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type verification for IR functions. The verifier is run
/// on kernel inputs (scalar source rules: no idioms, no vector types) and
/// on vectorizer output (split-layer rules), and by the bytecode decoder
/// on anything it reads.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_IR_VERIFIER_H
#define VAPOR_IR_VERIFIER_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace vapor {
namespace ir {

/// Verifies \p F. \returns a list of diagnostics; empty means well-formed.
/// Checks: operand counts and types per opcode, definition-before-use along
/// the structured walk, region/node consistency (every instruction placed
/// exactly once), loop carried-variable completeness, and the level rule
/// (idioms and vector types only in split-layer functions).
std::vector<std::string> verify(const Function &F);

/// Convenience wrapper: aborts with the first diagnostic if \p F is
/// malformed. Used at pass boundaries in tests and tools.
void verifyOrDie(const Function &F);

} // namespace ir
} // namespace vapor

#endif // VAPOR_IR_VERIFIER_H
