//===- ir/Opcode.h - Instruction opcodes -----------------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opcode enumeration and its static property table. Base opcodes are
/// shared between scalar source IR and the split layer; idiom opcodes
/// (paper Table 1) may only appear in split-layer bytecode.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_IR_OPCODE_H
#define VAPOR_IR_OPCODE_H

#include <cstdint>

namespace vapor {
namespace ir {

enum OpcodeFlags : uint8_t {
  OF_None = 0,
  OF_BinArith = 1 << 0, ///< Two same-type operands, same-type result.
  OF_Cmp = 1 << 1,      ///< Two same-type operands, I1 result.
  OF_MemRead = 1 << 2,
  OF_MemWrite = 1 << 3,
  OF_Idiom = 1 << 4, ///< Split-layer only; never in scalar source IR.
};

enum class Opcode : uint8_t {
#define VAPOR_OPCODE(NAME, MNEMONIC, NOPS, FLAGS) NAME,
#include "ir/Opcode.def"
};

/// Number of opcodes; handy for dense tables.
constexpr unsigned NumOpcodes = 0
#define VAPOR_OPCODE(NAME, MNEMONIC, NOPS, FLAGS) +1
#include "ir/Opcode.def"
    ;

/// \returns the textual mnemonic of \p Op as used by the printer.
const char *opcodeMnemonic(Opcode Op);

/// \returns the fixed operand count of \p Op, or -1 if variadic.
int opcodeNumOperands(Opcode Op);

/// \returns the OF_* flags of \p Op.
uint8_t opcodeFlags(Opcode Op);

inline bool isIdiom(Opcode Op) { return opcodeFlags(Op) & OF_Idiom; }
inline bool isBinArith(Opcode Op) { return opcodeFlags(Op) & OF_BinArith; }

/// Saturating binops clamp to the element range instead of wrapping; they
/// are restricted to the 1/2-byte integer kinds whose signedness matches
/// the opcode suffix (checked by the IR verifier).
inline bool isSaturatingOp(Opcode Op) {
  return Op == Opcode::AddSatS || Op == Opcode::AddSatU ||
         Op == Opcode::SubSatS || Op == Opcode::SubSatU;
}
inline bool isCompare(Opcode Op) { return opcodeFlags(Op) & OF_Cmp; }
inline bool readsMemory(Opcode Op) { return opcodeFlags(Op) & OF_MemRead; }
inline bool writesMemory(Opcode Op) { return opcodeFlags(Op) & OF_MemWrite; }

} // namespace ir
} // namespace vapor

#endif // VAPOR_IR_OPCODE_H
