//===- ir/Interp.h - Golden-model IR evaluator -----------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for IR functions — the golden semantic model.
///
/// It executes scalar source functions, and it executes split-layer
/// bytecode at any chosen vector size VS, resolving the machine-parameter
/// idioms (get_VF, get_align_limit, get_misalign, version guards,
/// loop_bound) the way an online compiler would. This lets tests validate
/// the offline vectorizer's output against the scalar original for several
/// VS values *before* any JIT or target model is involved, and optionally
/// cross-checks the optimized realignment chains (paper Fig. 3a) against
/// direct memory reads.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_IR_INTERP_H
#define VAPOR_IR_INTERP_H

#include "ir/Function.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vapor {
namespace ir {

/// A value during evaluation: raw lane payloads of an element kind.
struct VVal {
  ScalarKind Kind = ScalarKind::None;
  std::vector<uint64_t> Lanes;
};

class Evaluator {
public:
  struct Options {
    /// Vector size in bytes; lane count of a vector of T is
    /// VSBytes / sizeof(T).
    unsigned VSBytes = 16;
    /// loop_bound(vect, scalar): picks the vect argument when true.
    bool UseVectorBound = true;
    /// Cross-check realign_load results against a direct read from its
    /// address operand; aborts on mismatch (catches bad va/vb chains).
    bool CheckRealign = true;
    /// Answer for version_guard(PreferOuterLoop).
    bool PreferOuterLoop = false;
    /// Element kinds for which version_guard(TypeSupported) answers false.
    std::vector<ScalarKind> UnsupportedVectorKinds;
  };

  Evaluator(const Function &Fn, Options Opts);

  /// Allocates backing store for one array with the requested base
  /// misalignment (bytes modulo 32; must be a multiple of the element
  /// size). Both ends are padded by 32 bytes so realignment loads that
  /// peek across the edges stay in bounds.
  void allocArray(uint32_t Id, uint32_t BaseMisalign = 0);
  void allocAllArrays(uint32_t BaseMisalign = 0);

  uint64_t arrayBaseAddr(uint32_t Id) const;

  void pokeInt(uint32_t Id, uint64_t Elem, int64_t V);
  void pokeFP(uint32_t Id, uint64_t Elem, double V);
  int64_t peekInt(uint32_t Id, uint64_t Elem) const;
  double peekFP(uint32_t Id, uint64_t Elem) const;

  void setParamInt(const std::string &Name, int64_t V);
  void setParamFP(const std::string &Name, double V);

  /// Executes the function body. Requires all arrays allocated and all
  /// parameters set.
  void run();

  /// Number of instructions executed by the last run (dynamic count).
  uint64_t dynamicOps() const { return DynOps; }

private:
  struct ArrayMem {
    std::vector<uint8_t> Storage; // Pad + data + Pad.
    uint64_t BaseAddr = 0;        // Virtual address of element 0.
    bool Allocated = false;
  };
  static constexpr uint32_t Pad = 32;

  unsigned lanesOf(Type Ty) const {
    return Ty.isVector() ? Opt.VSBytes / scalarSize(Ty.Elem) : 1;
  }

  uint8_t *memAt(uint32_t Arr, uint64_t Addr, uint64_t Bytes);
  const uint8_t *memAt(uint32_t Arr, uint64_t Addr, uint64_t Bytes) const;

  uint64_t readLane(uint32_t Arr, uint64_t Addr, ScalarKind K) const;
  void writeLane(uint32_t Arr, uint64_t Addr, ScalarKind K, uint64_t Raw);
  VVal readVector(uint32_t Arr, uint64_t Addr, ScalarKind K) const;
  void writeVector(uint32_t Arr, uint64_t Addr, const VVal &V);

  void execRegion(const Region &R);
  void execLoop(const LoopStmt &L);
  void execIf(const IfStmt &S);
  void execInstr(const Instr &I);

  VVal evalGuard(const Instr &I) const;

  int64_t scalarInt(ValueId V) const;
  uint64_t elemAddr(const Instr &I, ValueId IdxOp) const;

  const Function &F;
  Options Opt;
  std::vector<VVal> Env;
  std::vector<ArrayMem> Mem;
  uint64_t DynOps = 0;
  uint64_t NextBase = 1 << 20; // Virtual allocation cursor (32-aligned).
};

} // namespace ir
} // namespace vapor

#endif // VAPOR_IR_INTERP_H
