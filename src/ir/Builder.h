//===- ir/Builder.h - IR construction helper -------------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IrBuilder appends instructions and structured control flow to a
/// Function. It maintains an insertion stack so loops and if-statements
/// nest naturally:
///
/// \code
///   Function F("saxpy");
///   IrBuilder B(F);
///   ValueId N = F.addParam("n", Type::scalar(ScalarKind::I64));
///   auto L = B.beginLoop(B.constIdx(0), N, B.constIdx(1));
///   ValueId X = B.load(XArr, L.indVar());
///   ...
///   B.endLoop(L);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_IR_BUILDER_H
#define VAPOR_IR_BUILDER_H

#include "ir/Function.h"

#include <vector>

namespace vapor {
namespace ir {

class IrBuilder {
public:
  explicit IrBuilder(Function &Fn) : F(Fn) {}

  Function &function() { return F; }

  //===--- Constants ------------------------------------------------------===//

  ValueId constInt(ScalarKind K, int64_t V);
  ValueId constFP(ScalarKind K, double V);
  /// Index-typed (I64) constant; loop bounds and indices use this.
  ValueId constIdx(int64_t V) { return constInt(ScalarKind::I64, V); }

  //===--- Base operations ------------------------------------------------===//

  ValueId binop(Opcode Op, ValueId A, ValueId B);
  ValueId add(ValueId A, ValueId B) { return binop(Opcode::Add, A, B); }
  ValueId sub(ValueId A, ValueId B) { return binop(Opcode::Sub, A, B); }
  ValueId mul(ValueId A, ValueId B) { return binop(Opcode::Mul, A, B); }
  ValueId div(ValueId A, ValueId B) { return binop(Opcode::Div, A, B); }
  ValueId rem(ValueId A, ValueId B) { return binop(Opcode::Rem, A, B); }
  ValueId smin(ValueId A, ValueId B) { return binop(Opcode::Min, A, B); }
  ValueId smax(ValueId A, ValueId B) { return binop(Opcode::Max, A, B); }
  ValueId addSatS(ValueId A, ValueId B) {
    return binop(Opcode::AddSatS, A, B);
  }
  ValueId addSatU(ValueId A, ValueId B) {
    return binop(Opcode::AddSatU, A, B);
  }
  ValueId subSatS(ValueId A, ValueId B) {
    return binop(Opcode::SubSatS, A, B);
  }
  ValueId subSatU(ValueId A, ValueId B) {
    return binop(Opcode::SubSatU, A, B);
  }
  ValueId shl(ValueId A, ValueId B) { return binop(Opcode::Shl, A, B); }
  ValueId shra(ValueId A, ValueId B) { return binop(Opcode::ShrA, A, B); }
  ValueId shrl(ValueId A, ValueId B) { return binop(Opcode::ShrL, A, B); }

  ValueId neg(ValueId A);
  ValueId abs(ValueId A);
  ValueId sqrtOp(ValueId A);
  ValueId cmp(Opcode Op, ValueId A, ValueId B);
  ValueId select(ValueId Cond, ValueId TrueV, ValueId FalseV);
  /// Elementwise conversion to kind \p Dst (vectorness preserved).
  ValueId convert(ScalarKind Dst, ValueId V);

  ValueId load(uint32_t Arr, ValueId Idx);
  void store(uint32_t Arr, ValueId Idx, ValueId V);

  //===--- Split-layer idioms (paper Table 1) -----------------------------===//

  ValueId getVF(ScalarKind K);
  ValueId getAlignLimit(ScalarKind K);
  /// Misalignment, in elements modulo the target alignment limit, of the
  /// address \p Arr + \p OffElems. Materialized by the JIT.
  ValueId getMisalign(uint32_t Arr, int64_t OffElems);

  ValueId initUniform(ValueId Val);
  ValueId initAffine(ValueId Val, ValueId Inc);
  ValueId initReduc(ValueId Val, ValueId Default);

  ValueId reduc(Opcode Op, ValueId Vec);
  ValueId dotProduct(ValueId V1, ValueId V2, ValueId Acc);
  ValueId widenMultHi(ValueId V1, ValueId V2);
  ValueId widenMultLo(ValueId V1, ValueId V2);
  ValueId pack(ValueId V1, ValueId V2);
  ValueId unpackHi(ValueId V);
  ValueId unpackLo(ValueId V);

  ValueId extract(int64_t Stride, int64_t Off,
                  const std::vector<ValueId> &Vecs);
  ValueId interleaveHi(ValueId V1, ValueId V2);
  ValueId interleaveLo(ValueId V1, ValueId V2);

  /// Aligned accesses may carry the provenance hint that justified them
  /// (mis == 0 claims); the JIT ignores it, the static verifier checks it.
  ValueId aload(uint32_t Arr, ValueId Idx, AlignHint Hint = {});
  ValueId uload(uint32_t Arr, ValueId Idx, AlignHint Hint);
  void astore(uint32_t Arr, ValueId Idx, ValueId V, AlignHint Hint = {});
  void ustore(uint32_t Arr, ValueId Idx, ValueId V, AlignHint Hint);
  ValueId alignLoad(uint32_t Arr, ValueId Idx);
  ValueId getRT(uint32_t Arr, ValueId Idx, AlignHint Hint);
  ValueId realignLoad(ValueId V1, ValueId V2, ValueId RT, uint32_t Arr,
                      ValueId Idx, AlignHint Hint);

  ValueId loopBound(ValueId VectBound, ValueId ScalarBound);
  ValueId versionGuard(GuardKind Kind, std::vector<uint32_t> Args,
                       ScalarKind TyParam = ScalarKind::None);

  //===--- Structured control flow ----------------------------------------===//

  struct LoopHandle {
    uint32_t LoopIdx = ~0u;
    ValueId IndVar = NoValue;
    ValueId indVar() const { return IndVar; }
  };

  /// Opens a counted loop over [Lower, Upper) step Step and pushes its body
  /// as the insertion point.
  LoopHandle beginLoop(ValueId Lower, ValueId Upper, ValueId Step,
                       LoopRole Role = LoopRole::Plain);

  /// Adds a loop-carried variable initialized to \p Init; \returns the
  /// value readable inside the body. Must be called while \p L is the
  /// innermost open loop.
  ValueId addCarried(const LoopHandle &L, ValueId Init);

  /// Sets the next-iteration value of carried variable \p Phi.
  void setCarriedNext(const LoopHandle &L, ValueId Phi, ValueId Next);

  /// \returns the value holding the final value of \p Phi after the loop.
  ValueId carriedResult(const LoopHandle &L, ValueId Phi) const;

  /// Closes the loop; verifies every carried variable has a Next value.
  void endLoop(const LoopHandle &L);

  /// Opens an if-statement and pushes the then-region.
  uint32_t beginIf(ValueId Cond);
  /// Switches insertion to the else-region of the innermost open if.
  void beginElse(uint32_t IfIdx);
  void endIf(uint32_t IfIdx);

  //===--- Low-level escape hatch -----------------------------------------===//

  /// Appends \p I to the current region; creates the result value when
  /// \p I.Ty is not none. \returns the result value (or NoValue).
  ValueId emit(Instr I);

private:
  /// Addresses a region stably across vector reallocation.
  struct RegionRef {
    enum class Kind : uint8_t { FuncBody, LoopBody, IfThen, IfElse } K;
    uint32_t Index = 0;
  };

  Region &resolve(const RegionRef &R);
  Region &currentRegion();

  Function &F;
  std::vector<RegionRef> Stack{
      {RegionRef::Kind::FuncBody, 0}};
};

} // namespace ir
} // namespace vapor

#endif // VAPOR_IR_BUILDER_H
