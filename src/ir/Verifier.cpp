//===- ir/Verifier.cpp - IR well-formedness checks ------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/Support.h"

#include <sstream>

using namespace vapor;
using namespace vapor::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Function &Fn) : F(Fn) {
    Defined.assign(F.Values.size(), false);
    InstrPlaced.assign(F.Instrs.size(), 0);
    LoopPlaced.assign(F.Loops.size(), 0);
    IfPlaced.assign(F.Ifs.size(), 0);
  }

  std::vector<std::string> run() {
    checkTables();
    for (ValueId P : F.Params) {
      if (P >= F.Values.size()) {
        error("parameter value id out of range");
        continue;
      }
      if (F.Values[P].Def != ValueDef::Param)
        error("parameter %" + std::to_string(P) +
              " not defined as a parameter");
      if (!F.Values[P].Ty.isScalar())
        error("parameter %" + std::to_string(P) + " must be scalar");
      Defined[P] = true;
    }
    walkRegion(F.Body);
    for (size_t I = 0, E = F.Instrs.size(); I != E; ++I)
      if (InstrPlaced[I] != 1)
        error("instruction #" + std::to_string(I) + " placed " +
              std::to_string(InstrPlaced[I]) + " times");
    for (size_t I = 0, E = F.Loops.size(); I != E; ++I)
      if (LoopPlaced[I] != 1)
        error("loop #" + std::to_string(I) + " placed " +
              std::to_string(LoopPlaced[I]) + " times");
    for (size_t I = 0, E = F.Ifs.size(); I != E; ++I)
      if (IfPlaced[I] != 1)
        error("if #" + std::to_string(I) + " placed " +
              std::to_string(IfPlaced[I]) + " times");
    return std::move(Errors);
  }

private:
  void error(const std::string &Msg) { Errors.push_back(Msg); }

  static bool validKind(ScalarKind K) {
    return static_cast<uint8_t>(K) <= static_cast<uint8_t>(ScalarKind::F64);
  }

  /// Field-level sanity of the value/array tables. These can arrive from
  /// a decoder or hand-assembly, so nothing about them is trusted; the
  /// kind checks in particular keep garbage element kinds out of every
  /// kind-dispatched switch downstream.
  void checkTables() {
    for (size_t V = 0; V < F.Values.size(); ++V)
      if (!validKind(F.Values[V].Ty.Elem))
        error("value %" + std::to_string(V) + " has invalid element kind");
    for (size_t A = 0; A < F.Arrays.size(); ++A) {
      const ArrayInfo &AI = F.Arrays[A];
      std::string Where = "array '" + AI.Name + "'";
      if (!validKind(AI.Elem) || scalarSize(AI.Elem) == 0) {
        error(Where + ": invalid element kind");
        continue;
      }
      if (AI.NumElems == 0)
        error(Where + ": zero elements");
      if (AI.BaseAlign < scalarSize(AI.Elem) ||
          (AI.BaseAlign & (AI.BaseAlign - 1)) != 0)
        error(Where + ": base alignment must be a power of two >= "
                      "element size");
    }
  }

  bool checkUse(ValueId V, const char *What) {
    if (V == NoValue || V >= F.Values.size()) {
      error(std::string(What) + ": value id out of range");
      return false;
    }
    if (!Defined[V]) {
      error(std::string(What) + ": use of %" + std::to_string(V) +
            " before definition");
      return false;
    }
    return true;
  }

  void walkRegion(const Region &R) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        if (N.Index >= F.Instrs.size()) {
          error("region references out-of-range instruction");
          continue;
        }
        ++InstrPlaced[N.Index];
        checkInstr(F.Instrs[N.Index], N.Index);
        break;
      case NodeKind::Loop:
        if (N.Index >= F.Loops.size()) {
          error("region references out-of-range loop");
          continue;
        }
        ++LoopPlaced[N.Index];
        checkLoop(F.Loops[N.Index]);
        break;
      case NodeKind::If:
        if (N.Index >= F.Ifs.size()) {
          error("region references out-of-range if");
          continue;
        }
        ++IfPlaced[N.Index];
        checkIf(F.Ifs[N.Index]);
        break;
      }
    }
  }

  void checkLoop(const LoopStmt &L) {
    const char *Ctx = "loop";
    for (ValueId Bound : {L.Lower, L.Upper, L.Step})
      if (checkUse(Bound, Ctx) &&
          F.typeOf(Bound) != Type::scalar(ScalarKind::I64))
        error("loop bounds and step must be scalar i64");
    if (L.MaxSafeVF < 0)
      error("loop dependence-distance limit must be non-negative");
    for (const auto &C : L.Carried) {
      bool InitOk = checkUse(C.Init, "loop carried init");
      if (C.Next == NoValue)
        error("loop carried variable without next value");
      if (C.Phi == NoValue || C.Phi >= F.Values.size())
        error("loop carried variable without a phi value");
      else if (InitOk && F.typeOf(C.Phi) != F.typeOf(C.Init))
        error("loop carried phi/init type mismatch");
    }
    if (L.IndVar == NoValue || L.IndVar >= F.Values.size() ||
        F.typeOf(L.IndVar) != Type::scalar(ScalarKind::I64)) {
      error("loop induction variable must be i64");
      return;
    }
    // Values defined inside the body (including the induction variable and
    // carried phis) are scoped to the body: the loop may run zero times, so
    // nothing defined inside may be used after it. Only the carried
    // Results materialize at exit.
    std::vector<bool> Saved = Defined;
    Defined[L.IndVar] = true;
    for (const auto &C : L.Carried)
      if (C.Phi != NoValue && C.Phi < F.Values.size())
        Defined[C.Phi] = true;
    walkRegion(L.Body);
    for (const auto &C : L.Carried)
      if (C.Next != NoValue)
        checkUse(C.Next, "loop carried next");
    Defined = std::move(Saved);
    for (const auto &C : L.Carried)
      if (C.Result != NoValue && C.Result < F.Values.size())
        Defined[C.Result] = true;
  }

  void checkIf(const IfStmt &S) {
    if (checkUse(S.Cond, "if condition") &&
        F.typeOf(S.Cond) != Type::scalar(ScalarKind::I1))
      error("if condition must be scalar i1");
    // Each arm is a scope: its definitions are not visible afterwards
    // (versioned loops communicate results through memory).
    std::vector<bool> Saved = Defined;
    walkRegion(S.Then);
    Defined = Saved;
    walkRegion(S.Else);
    Defined = std::move(Saved);
  }

  void checkInstr(const Instr &I, uint32_t Idx) {
    std::string Where =
        std::string(opcodeMnemonic(I.Op)) + " #" + std::to_string(Idx);

    int NOps = opcodeNumOperands(I.Op);
    if (NOps >= 0 && static_cast<int>(I.Ops.size()) != NOps) {
      error(Where + ": expected " + std::to_string(NOps) + " operands, got " +
            std::to_string(I.Ops.size()));
      return; // checkTypes indexes operands positionally; don't run it.
    }
    bool OperandsOk = true;
    for (ValueId Op : I.Ops)
      OperandsOk &= checkUse(Op, Where.c_str());

    if (!F.IsSplitLayer) {
      if (isIdiom(I.Op))
        error(Where + ": idiom opcode in scalar-source function");
      if (I.Ty.isVector())
        error(Where + ": vector type in scalar-source function");
    }

    if (I.Hint.Mod < 0 || I.Hint.Mis < -1)
      error(Where + ": malformed alignment hint");
    if (!validKind(I.TyParam))
      error(Where + ": invalid element-kind parameter");

    if (I.hasResult()) {
      if (I.Result >= F.Values.size() ||
          F.Values[I.Result].Def != ValueDef::Instr ||
          F.Values[I.Result].A != Idx)
        error(Where + ": result value bookkeeping broken");
      else
        Defined[I.Result] = true;
    }

    if (!OperandsOk)
      return;
    checkTypes(I, Where);
  }

  void checkTypes(const Instr &I, const std::string &Where) {
    auto TyOf = [&](unsigned N) { return F.typeOf(I.Ops[N]); };
    if (isBinArith(I.Op) || isCompare(I.Op)) {
      if (TyOf(0) != TyOf(1))
        error(Where + ": operand type mismatch");
      if (isBinArith(I.Op) && I.Ty != TyOf(0))
        error(Where + ": result type mismatch");
      if (isCompare(I.Op) &&
          I.Ty != Type(ScalarKind::I1, TyOf(0).Vector))
        error(Where + ": comparison must produce i1");
      if (isSaturatingOp(I.Op)) {
        ScalarKind K = I.Ty.Elem;
        bool Narrow = isIntKind(K) && scalarSize(K) <= 2;
        bool WantSigned =
            I.Op == Opcode::AddSatS || I.Op == Opcode::SubSatS;
        if (!Narrow)
          error(Where + ": saturating op on a non-narrow-int kind");
        else if (isSignedKind(K) != WantSigned)
          error(Where + ": saturating op signedness does not match kind");
      }
      return;
    }
    switch (I.Op) {
    case Opcode::Select:
      if (TyOf(1) != TyOf(2) || I.Ty != TyOf(1))
        error(Where + ": select arm type mismatch");
      if (TyOf(0).Elem != ScalarKind::I1 || TyOf(0).Vector != I.Ty.Vector)
        error(Where + ": select condition must be matching i1");
      break;
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Sqrt:
      if (I.Ty != TyOf(0))
        error(Where + ": unary type mismatch");
      break;
    case Opcode::Convert:
      if (I.Ty.Vector != TyOf(0).Vector)
        error(Where + ": convert changes vectorness");
      break;
    case Opcode::Load:
      if (!checkArray(I, Where))
        break;
      if (I.Ty != Type::scalar(F.Arrays[I.Array].Elem))
        error(Where + ": load type does not match array element");
      checkIndex(I.Ops[0], Where);
      break;
    case Opcode::Store:
      if (!checkArray(I, Where))
        break;
      if (F.typeOf(I.Ops[1]) != Type::scalar(F.Arrays[I.Array].Elem))
        error(Where + ": store value does not match array element");
      checkIndex(I.Ops[0], Where);
      break;
    case Opcode::ALoad:
    case Opcode::ULoad:
    case Opcode::AlignLoad:
      if (!checkArray(I, Where))
        break;
      if (I.Ty != Type::vector(F.Arrays[I.Array].Elem))
        error(Where + ": vector load type does not match array element");
      checkIndex(I.Ops[0], Where);
      break;
    case Opcode::AStore:
    case Opcode::UStore:
      if (!checkArray(I, Where))
        break;
      if (F.typeOf(I.Ops[1]) != Type::vector(F.Arrays[I.Array].Elem))
        error(Where + ": vector store value does not match array element");
      checkIndex(I.Ops[0], Where);
      break;
    case Opcode::GetRT:
      checkArray(I, Where);
      checkIndex(I.Ops[0], Where);
      break;
    case Opcode::RealignLoad: {
      if (!checkArray(I, Where))
        break;
      Type VT = Type::vector(F.Arrays[I.Array].Elem);
      if (TyOf(0) != VT || TyOf(1) != VT || I.Ty != VT)
        error(Where + ": realign_load vector types inconsistent");
      checkIndex(I.Ops[3], Where);
      break;
    }
    case Opcode::InitUniform:
    case Opcode::InitAffine:
    case Opcode::InitReduc:
      if (!TyOf(0).isScalar() || I.Ty != Type::vector(TyOf(0).Elem))
        error(Where + ": init idiom type mismatch");
      break;
    case Opcode::ReducPlus:
    case Opcode::ReducMax:
    case Opcode::ReducMin:
      if (!TyOf(0).isVector() || I.Ty != Type::scalar(TyOf(0).Elem))
        error(Where + ": reduction type mismatch");
      break;
    case Opcode::DotProduct:
      if (TyOf(0) != TyOf(1) || !TyOf(0).isVector() ||
          I.Ty != Type::vector(widenKind(TyOf(0).Elem)) || TyOf(2) != I.Ty)
        error(Where + ": dot_product type mismatch");
      break;
    case Opcode::WidenMultHi:
    case Opcode::WidenMultLo:
      if (TyOf(0) != TyOf(1) || !TyOf(0).isVector() ||
          I.Ty != Type::vector(widenKind(TyOf(0).Elem)))
        error(Where + ": widen_mult type mismatch");
      break;
    case Opcode::UnpackHi:
    case Opcode::UnpackLo:
      if (!TyOf(0).isVector() || I.Ty != Type::vector(widenKind(TyOf(0).Elem)))
        error(Where + ": unpack type mismatch");
      break;
    case Opcode::Pack:
      if (TyOf(0) != TyOf(1) || !TyOf(0).isVector() ||
          I.Ty != Type::vector(narrowKind(TyOf(0).Elem)))
        error(Where + ": pack type mismatch");
      break;
    case Opcode::Extract:
      if (I.Ops.empty() || I.IntImm2 < 1 ||
          static_cast<int64_t>(I.Ops.size()) != I.IntImm2 || I.IntImm < 0 ||
          I.IntImm >= I.IntImm2)
        error(Where + ": extract stride/operand inconsistency");
      for (ValueId Op : I.Ops)
        if (F.typeOf(Op) != I.Ty)
          error(Where + ": extract operand type mismatch");
      break;
    case Opcode::InterleaveHi:
    case Opcode::InterleaveLo:
      if (TyOf(0) != TyOf(1) || I.Ty != TyOf(0) || !I.Ty.isVector())
        error(Where + ": interleave type mismatch");
      break;
    case Opcode::GetVF:
    case Opcode::GetAlignLimit:
      if (I.TyParam == ScalarKind::None)
        error(Where + ": missing element-kind parameter");
      break;
    case Opcode::GetMisalign:
      checkArray(I, Where);
      break;
    case Opcode::LoopBound:
      if (TyOf(0) != Type::scalar(ScalarKind::I64) ||
          TyOf(1) != Type::scalar(ScalarKind::I64))
        error(Where + ": loop_bound operands must be i64");
      break;
    case Opcode::VersionGuard:
      if (I.Guard == GuardKind::None)
        error(Where + ": version_guard without condition kind");
      if (I.Guard == GuardKind::BasesAligned && I.GuardArgs.empty())
        error(Where + ": bases_aligned guard without arrays");
      for (uint32_t A : I.GuardArgs)
        if (A >= F.Arrays.size())
          error(Where + ": guard references out-of-range array");
      break;
    default:
      break;
    }
  }

  bool checkArray(const Instr &I, const std::string &Where) {
    if (I.Array >= F.Arrays.size()) {
      error(Where + ": array id out of range");
      return false;
    }
    return true;
  }

  void checkIndex(ValueId Idx, const std::string &Where) {
    if (F.typeOf(Idx) != Type::scalar(ScalarKind::I64))
      error(Where + ": index must be scalar i64");
  }

  const Function &F;
  std::vector<std::string> Errors;
  std::vector<bool> Defined;
  std::vector<uint32_t> InstrPlaced;
  std::vector<uint32_t> LoopPlaced;
  std::vector<uint32_t> IfPlaced;
};

} // namespace

std::vector<std::string> ir::verify(const Function &F) {
  return VerifierImpl(F).run();
}

void ir::verifyOrDie(const Function &F) {
  std::vector<std::string> Errors = verify(F);
  if (Errors.empty())
    return;
  std::ostringstream OS;
  OS << "IR verification failed for '" << F.Name << "':\n";
  for (const std::string &E : Errors)
    OS << "  " << E << "\n";
  OS << F.str();
  fatalError(OS.str());
}
