//===- ir/ScalarOps.h - Lane-level arithmetic semantics --------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single definition of lane-level arithmetic used by both the IR
/// evaluator (golden model) and the target virtual machines. Lanes are
/// stored as raw 64-bit payloads; these helpers decode by element kind,
/// compute with two's-complement wraparound (ints) or IEEE (floats), and
/// re-encode with masking to the element width.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_IR_SCALAROPS_H
#define VAPOR_IR_SCALAROPS_H

#include "ir/Opcode.h"
#include "ir/Type.h"
#include "support/Support.h"

#include <bit>
#include <cmath>
#include <cstdint>

namespace vapor {
namespace ir {

/// \returns the lane payload mask for kind \p K.
constexpr uint64_t laneMask(ScalarKind K) {
  unsigned Bytes = scalarSize(K);
  if (K == ScalarKind::I1)
    return 1;
  return Bytes >= 8 ? ~0ULL : ((1ULL << (Bytes * 8)) - 1);
}

/// Decodes \p Raw as a signed 64-bit integer (sign- or zero-extending
/// according to the signedness of \p K).
inline int64_t decodeInt(ScalarKind K, uint64_t Raw) {
  assert(isIntKind(K) || K == ScalarKind::I1);
  Raw &= laneMask(K);
  if (!isSignedKind(K))
    return static_cast<int64_t>(Raw);
  unsigned Bits = scalarSize(K) * 8;
  if (Bits == 64)
    return static_cast<int64_t>(Raw);
  uint64_t SignBit = 1ULL << (Bits - 1);
  return static_cast<int64_t>((Raw ^ SignBit)) - static_cast<int64_t>(SignBit);
}

inline uint64_t encodeInt(ScalarKind K, int64_t V) {
  return static_cast<uint64_t>(V) & laneMask(K);
}

inline double decodeFP(ScalarKind K, uint64_t Raw) {
  assert(isFloatKind(K));
  if (K == ScalarKind::F32)
    return std::bit_cast<float>(static_cast<uint32_t>(Raw));
  return std::bit_cast<double>(Raw);
}

inline uint64_t encodeFP(ScalarKind K, double V) {
  assert(isFloatKind(K));
  if (K == ScalarKind::F32)
    return std::bit_cast<uint32_t>(static_cast<float>(V));
  return std::bit_cast<uint64_t>(V);
}

/// Applies binary arithmetic opcode \p Op on lanes of kind \p K.
inline uint64_t applyBinop(Opcode Op, ScalarKind K, uint64_t A, uint64_t B) {
  if (isFloatKind(K)) {
    double X = decodeFP(K, A), Y = decodeFP(K, B);
    double R;
    switch (Op) {
    case Opcode::Add:
      R = X + Y;
      break;
    case Opcode::Sub:
      R = X - Y;
      break;
    case Opcode::Mul:
      R = X * Y;
      break;
    case Opcode::Div:
      R = X / Y;
      break;
    case Opcode::Min:
      R = X < Y ? X : Y;
      break;
    case Opcode::Max:
      R = X > Y ? X : Y;
      break;
    default:
      vapor_unreachable("bad float binop");
    }
    // Compute in the element precision, not in double, so f32 kernels see
    // f32 rounding at every step (matches the hardware being modeled).
    if (K == ScalarKind::F32)
      R = static_cast<float>(R);
    return encodeFP(K, R);
  }
  int64_t X = decodeInt(K, A), Y = decodeInt(K, B);
  int64_t R;
  // Saturating range of kind K. Narrow kinds only (<= 2 bytes, verified),
  // so the clamp bounds always fit int64 with room to spare and the
  // unclamped sum/difference of two in-range values cannot overflow.
  auto SignedClamp = [&](int64_t V) {
    int64_t Hi = static_cast<int64_t>(laneMask(K) >> 1); // 2^(bits-1)-1
    int64_t Lo = -Hi - 1;
    return V < Lo ? Lo : (V > Hi ? Hi : V);
  };
  auto UnsignedClamp = [&](int64_t V) {
    int64_t Hi = static_cast<int64_t>(laneMask(K)); // 2^bits - 1
    return V < 0 ? 0 : (V > Hi ? Hi : V);
  };
  switch (Op) {
  case Opcode::AddSatS:
    return encodeInt(K, SignedClamp(X + Y));
  case Opcode::SubSatS:
    return encodeInt(K, SignedClamp(X - Y));
  case Opcode::AddSatU:
    // Unsigned kinds zero-extend in decodeInt, so X, Y are in [0, 2^bits).
    return encodeInt(K, UnsignedClamp(X + Y));
  case Opcode::SubSatU:
    return encodeInt(K, UnsignedClamp(X - Y));
  case Opcode::Add:
    R = static_cast<int64_t>(static_cast<uint64_t>(X) +
                             static_cast<uint64_t>(Y));
    break;
  case Opcode::Sub:
    R = static_cast<int64_t>(static_cast<uint64_t>(X) -
                             static_cast<uint64_t>(Y));
    break;
  case Opcode::Mul:
    R = static_cast<int64_t>(static_cast<uint64_t>(X) *
                             static_cast<uint64_t>(Y));
    break;
  case Opcode::Div:
    assert(Y != 0 && "integer division by zero");
    R = X / Y;
    break;
  case Opcode::Rem:
    assert(Y != 0 && "integer remainder by zero");
    R = X % Y;
    break;
  case Opcode::Min:
    R = X < Y ? X : Y;
    break;
  case Opcode::Max:
    R = X > Y ? X : Y;
    break;
  case Opcode::And:
    R = X & Y;
    break;
  case Opcode::Or:
    R = X | Y;
    break;
  case Opcode::Xor:
    R = X ^ Y;
    break;
  case Opcode::Shl:
    R = static_cast<int64_t>(static_cast<uint64_t>(X)
                             << (static_cast<uint64_t>(Y) &
                                 (scalarSize(K) * 8 - 1)));
    break;
  case Opcode::ShrL:
    R = static_cast<int64_t>((static_cast<uint64_t>(X) & laneMask(K)) >>
                             (static_cast<uint64_t>(Y) &
                              (scalarSize(K) * 8 - 1)));
    break;
  case Opcode::ShrA:
    R = X >> (static_cast<uint64_t>(Y) & (scalarSize(K) * 8 - 1));
    break;
  default:
    vapor_unreachable("bad int binop");
  }
  return encodeInt(K, R);
}

/// Compile-time-kind variant of applyBinop for hot interpreter loops.
/// Bit-identical to applyBinop(Op, K, A, B) for every input: the f32
/// arithmetic cases compute directly in float instead of taking the
/// float->double->float round trip. That is exact, not approximate --
/// f32 sums/products are exact in double (<= 48 significant bits), and
/// for sub/div the 53-bit intermediate is wide enough (>= 2p+2 = 50
/// bits) that the double rounding is innocuous [Figueroa 1995], so the
/// final float equals the one the double path produces. min/max select
/// an operand unchanged. Everything else forwards to applyBinop.
template <Opcode Op, ScalarKind K>
inline uint64_t applyBinopT(uint64_t A, uint64_t B) {
  if constexpr (K == ScalarKind::F32 &&
                (Op == Opcode::Add || Op == Opcode::Sub ||
                 Op == Opcode::Mul || Op == Opcode::Div ||
                 Op == Opcode::Min || Op == Opcode::Max)) {
    float X = std::bit_cast<float>(static_cast<uint32_t>(A));
    float Y = std::bit_cast<float>(static_cast<uint32_t>(B));
    float R;
    if constexpr (Op == Opcode::Add)
      R = X + Y;
    else if constexpr (Op == Opcode::Sub)
      R = X - Y;
    else if constexpr (Op == Opcode::Mul)
      R = X * Y;
    else if constexpr (Op == Opcode::Div)
      R = X / Y;
    else if constexpr (Op == Opcode::Min)
      R = X < Y ? X : Y;
    else
      R = X > Y ? X : Y;
    return std::bit_cast<uint32_t>(R);
  } else {
    return applyBinop(Op, K, A, B);
  }
}

inline uint64_t applyUnop(Opcode Op, ScalarKind K, uint64_t A) {
  if (isFloatKind(K)) {
    double X = decodeFP(K, A);
    switch (Op) {
    case Opcode::Neg:
      return encodeFP(K, -X);
    case Opcode::Abs:
      return encodeFP(K, std::fabs(X));
    case Opcode::Sqrt:
      return encodeFP(K, K == ScalarKind::F32
                             ? static_cast<double>(
                                   std::sqrt(static_cast<float>(X)))
                             : std::sqrt(X));
    default:
      vapor_unreachable("bad float unop");
    }
  }
  int64_t X = decodeInt(K, A);
  switch (Op) {
  case Opcode::Neg:
    return encodeInt(K, -X);
  case Opcode::Abs:
    return encodeInt(K, X < 0 ? -X : X);
  default:
    vapor_unreachable("bad int unop");
  }
}

/// \returns 1 or 0 for comparison \p Op on lanes of kind \p K. Unsigned
/// kinds compare unsigned; floats compare IEEE (no NaN ordering games).
inline uint64_t applyCompare(Opcode Op, ScalarKind K, uint64_t A, uint64_t B) {
  int Rel; // -1, 0, 1
  if (isFloatKind(K)) {
    double X = decodeFP(K, A), Y = decodeFP(K, B);
    Rel = X < Y ? -1 : (X > Y ? 1 : 0);
  } else if (isSignedKind(K) || K == ScalarKind::I1) {
    int64_t X = decodeInt(K, A), Y = decodeInt(K, B);
    Rel = X < Y ? -1 : (X > Y ? 1 : 0);
  } else {
    uint64_t X = A & laneMask(K), Y = B & laneMask(K);
    Rel = X < Y ? -1 : (X > Y ? 1 : 0);
  }
  switch (Op) {
  case Opcode::CmpEQ:
    return Rel == 0;
  case Opcode::CmpNE:
    return Rel != 0;
  case Opcode::CmpLT:
    return Rel < 0;
  case Opcode::CmpLE:
    return Rel <= 0;
  case Opcode::CmpGT:
    return Rel > 0;
  case Opcode::CmpGE:
    return Rel >= 0;
  default:
    vapor_unreachable("bad compare opcode");
  }
}

/// Converts one lane from kind \p Src to kind \p Dst with C semantics
/// (truncation, sign/zero extension, int<->fp, fp narrowing).
inline uint64_t applyConvert(ScalarKind Src, ScalarKind Dst, uint64_t Raw) {
  if (isFloatKind(Src) && isFloatKind(Dst))
    return encodeFP(Dst, decodeFP(Src, Raw));
  if (isFloatKind(Src)) {
    double X = decodeFP(Src, Raw);
    return encodeInt(Dst, static_cast<int64_t>(X));
  }
  if (isFloatKind(Dst)) {
    int64_t X = decodeInt(Src, Raw);
    if (isSignedKind(Src) || Src == ScalarKind::I1 ||
        Src == ScalarKind::I64)
      return encodeFP(Dst, static_cast<double>(X));
    return encodeFP(Dst, static_cast<double>(static_cast<uint64_t>(X) &
                                             laneMask(Src)));
  }
  return encodeInt(Dst, decodeInt(Src, Raw));
}

} // namespace ir
} // namespace vapor

#endif // VAPOR_IR_SCALAROPS_H
