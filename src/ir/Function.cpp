//===- ir/Function.cpp - IR core implementation --------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "support/Support.h"

#include <bit>

using namespace vapor;
using namespace vapor::ir;

namespace {

struct OpcodeInfo {
  const char *Mnemonic;
  int NumOperands;
  uint8_t Flags;
};

constexpr OpcodeInfo OpcodeTable[] = {
#define VAPOR_OPCODE(NAME, MNEMONIC, NOPS, FLAGS)                              \
  {MNEMONIC, NOPS, static_cast<uint8_t>(FLAGS)},
#include "ir/Opcode.def"
};

} // namespace

const char *ir::opcodeMnemonic(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Mnemonic;
}

int ir::opcodeNumOperands(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].NumOperands;
}

uint8_t ir::opcodeFlags(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Flags;
}

const char *ir::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::None:
    return "none";
  case ScalarKind::I1:
    return "i1";
  case ScalarKind::I8:
    return "i8";
  case ScalarKind::U8:
    return "u8";
  case ScalarKind::I16:
    return "i16";
  case ScalarKind::U16:
    return "u16";
  case ScalarKind::I32:
    return "i32";
  case ScalarKind::U32:
    return "u32";
  case ScalarKind::I64:
    return "i64";
  case ScalarKind::U64:
    return "u64";
  case ScalarKind::F32:
    return "f32";
  case ScalarKind::F64:
    return "f64";
  }
  vapor_unreachable("bad scalar kind");
}

std::string Type::str() const {
  if (isNone())
    return "void";
  std::string S = scalarKindName(Elem);
  if (Vector)
    return "v" + S;
  return S;
}

ValueId Function::addParam(const std::string &ParamName, Type Ty) {
  assert(Ty.isScalar() && "parameters are scalars");
  ValueId V = makeValue(Ty, ValueDef::Param, 0, 0);
  Values[V].Name = ParamName;
  Params.push_back(V);
  return V;
}

uint32_t Function::addArray(const std::string &ArrName, ScalarKind Elem,
                            uint64_t NumElems, uint32_t BaseAlign) {
  assert(BaseAlign >= scalarSize(Elem) && isPowerOf2(BaseAlign) &&
         "base alignment must be a power of two >= element size");
  ArrayInfo AI;
  AI.Name = ArrName;
  AI.Elem = Elem;
  AI.NumElems = NumElems;
  AI.BaseAlign = BaseAlign;
  Arrays.push_back(AI);
  return static_cast<uint32_t>(Arrays.size() - 1);
}

uint32_t Function::arrayIdByName(const std::string &ArrName) const {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Arrays.size()); I != E; ++I)
    if (Arrays[I].Name == ArrName)
      return I;
  vapor_unreachable("no array with that name");
}

ValueId Function::makeValue(Type Ty, ValueDef Def, uint32_t A, uint32_t B) {
  ValueInfo VI;
  VI.Ty = Ty;
  VI.Def = Def;
  VI.A = A;
  VI.B = B;
  Values.push_back(VI);
  return static_cast<ValueId>(Values.size() - 1);
}

namespace {

/// FNV-1a accumulator with a 64-bit word feed. Strings feed length first
/// so "ab","c" and "a","bc" cannot collide by concatenation.
struct StructHash {
  uint64_t H = 0xcbf29ce484222325ULL;

  void word(uint64_t W) {
    for (int I = 0; I < 8; ++I) {
      H ^= (W >> (I * 8)) & 0xff;
      H *= 0x100000001b3ULL;
    }
  }
  void str(const std::string &S) {
    word(S.size());
    for (char C : S) {
      H ^= static_cast<uint8_t>(C);
      H *= 0x100000001b3ULL;
    }
  }
  void type(Type T) {
    word((static_cast<uint64_t>(T.Elem) << 1) | (T.Vector ? 1 : 0));
  }
  void region(const Region &R) {
    word(R.Nodes.size());
    for (const NodeRef &N : R.Nodes)
      word((static_cast<uint64_t>(N.Kind) << 32) | N.Index);
  }
};

} // namespace

uint64_t ir::hashFunction(const Function &F) {
  StructHash S;
  S.str(F.Name);
  S.word(F.IsSplitLayer);

  S.word(F.Values.size());
  for (const ValueInfo &V : F.Values) {
    S.type(V.Ty);
    S.word((static_cast<uint64_t>(V.Def) << 32) | V.A);
    S.word(V.B);
    S.str(V.Name);
  }

  S.word(F.Instrs.size());
  for (const Instr &I : F.Instrs) {
    S.word(static_cast<uint64_t>(I.Op));
    S.type(I.Ty);
    S.word(I.Result);
    S.word(I.Ops.size());
    for (ValueId V : I.Ops)
      S.word(V);
    S.word(static_cast<uint64_t>(I.IntImm));
    S.word(static_cast<uint64_t>(I.IntImm2));
    S.word(std::bit_cast<uint64_t>(I.FPImm));
    S.word(I.Array);
    S.word(static_cast<uint64_t>(I.TyParam));
    S.word((static_cast<uint64_t>(static_cast<uint32_t>(I.Hint.Mis)) << 32) |
           static_cast<uint32_t>(I.Hint.Mod));
    S.word((static_cast<uint64_t>(I.Hint.IfJitAligns) << 8) |
           static_cast<uint64_t>(I.Guard));
    S.word(I.GuardArgs.size());
    for (uint32_t A : I.GuardArgs)
      S.word(A);
  }

  S.word(F.Loops.size());
  for (const LoopStmt &L : F.Loops) {
    S.word(L.IndVar);
    S.word(L.Lower);
    S.word(L.Upper);
    S.word(L.Step);
    S.word(L.Carried.size());
    for (const LoopStmt::CarriedVar &C : L.Carried) {
      S.word((static_cast<uint64_t>(C.Phi) << 32) | C.Init);
      S.word((static_cast<uint64_t>(C.Next) << 32) | C.Result);
    }
    S.region(L.Body);
    S.word(static_cast<uint64_t>(L.Role));
    S.word(static_cast<uint64_t>(L.MaxSafeVF));
  }

  S.word(F.Ifs.size());
  for (const IfStmt &I : F.Ifs) {
    S.word(I.Cond);
    S.region(I.Then);
    S.region(I.Else);
  }

  S.word(F.Arrays.size());
  for (const ArrayInfo &A : F.Arrays) {
    S.str(A.Name);
    S.word(static_cast<uint64_t>(A.Elem));
    S.word(A.NumElems);
    S.word(A.BaseAlign);
  }

  S.word(F.Params.size());
  for (ValueId P : F.Params)
    S.word(P);

  S.region(F.Body);
  return S.H;
}
