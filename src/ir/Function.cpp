//===- ir/Function.cpp - IR core implementation --------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "support/Support.h"

using namespace vapor;
using namespace vapor::ir;

namespace {

struct OpcodeInfo {
  const char *Mnemonic;
  int NumOperands;
  uint8_t Flags;
};

constexpr OpcodeInfo OpcodeTable[] = {
#define VAPOR_OPCODE(NAME, MNEMONIC, NOPS, FLAGS)                              \
  {MNEMONIC, NOPS, static_cast<uint8_t>(FLAGS)},
#include "ir/Opcode.def"
};

} // namespace

const char *ir::opcodeMnemonic(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Mnemonic;
}

int ir::opcodeNumOperands(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].NumOperands;
}

uint8_t ir::opcodeFlags(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Flags;
}

const char *ir::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::None:
    return "none";
  case ScalarKind::I1:
    return "i1";
  case ScalarKind::I8:
    return "i8";
  case ScalarKind::U8:
    return "u8";
  case ScalarKind::I16:
    return "i16";
  case ScalarKind::U16:
    return "u16";
  case ScalarKind::I32:
    return "i32";
  case ScalarKind::U32:
    return "u32";
  case ScalarKind::I64:
    return "i64";
  case ScalarKind::U64:
    return "u64";
  case ScalarKind::F32:
    return "f32";
  case ScalarKind::F64:
    return "f64";
  }
  vapor_unreachable("bad scalar kind");
}

std::string Type::str() const {
  if (isNone())
    return "void";
  std::string S = scalarKindName(Elem);
  if (Vector)
    return "v" + S;
  return S;
}

ValueId Function::addParam(const std::string &ParamName, Type Ty) {
  assert(Ty.isScalar() && "parameters are scalars");
  ValueId V = makeValue(Ty, ValueDef::Param, 0, 0);
  Values[V].Name = ParamName;
  Params.push_back(V);
  return V;
}

uint32_t Function::addArray(const std::string &ArrName, ScalarKind Elem,
                            uint64_t NumElems, uint32_t BaseAlign) {
  assert(BaseAlign >= scalarSize(Elem) && isPowerOf2(BaseAlign) &&
         "base alignment must be a power of two >= element size");
  ArrayInfo AI;
  AI.Name = ArrName;
  AI.Elem = Elem;
  AI.NumElems = NumElems;
  AI.BaseAlign = BaseAlign;
  Arrays.push_back(AI);
  return static_cast<uint32_t>(Arrays.size() - 1);
}

uint32_t Function::arrayIdByName(const std::string &ArrName) const {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Arrays.size()); I != E; ++I)
    if (Arrays[I].Name == ArrName)
      return I;
  vapor_unreachable("no array with that name");
}

ValueId Function::makeValue(Type Ty, ValueDef Def, uint32_t A, uint32_t B) {
  ValueInfo VI;
  VI.Ty = Ty;
  VI.Def = Def;
  VI.A = A;
  VI.B = B;
  Values.push_back(VI);
  return static_cast<ValueId>(Values.size() - 1);
}
