//===- ir/Interp.cpp - Golden-model IR evaluator ---------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "ir/ScalarOps.h"
#include "support/Support.h"

#include <cstring>

using namespace vapor;
using namespace vapor::ir;

Evaluator::Evaluator(const Function &Fn, Options Opts)
    : F(Fn), Opt(Opts) {
  assert(isPowerOf2(Opt.VSBytes) && Opt.VSBytes >= 1 && Opt.VSBytes <= 32 &&
         "vector size must be a power of two in [1, 32]");
  Env.resize(F.Values.size());
  Mem.resize(F.Arrays.size());
}

void Evaluator::allocArray(uint32_t Id, uint32_t BaseMisalign) {
  assert(Id < Mem.size());
  const ArrayInfo &A = F.Arrays[Id];
  assert(BaseMisalign < 32 && BaseMisalign % scalarSize(A.Elem) == 0 &&
         "misalignment must be a multiple of the element size");
  ArrayMem &M = Mem[Id];
  uint64_t Bytes = A.NumElems * scalarSize(A.Elem);
  M.Storage.assign(Bytes + 2 * Pad, 0);
  M.BaseAddr = alignUp(NextBase, 32) + BaseMisalign;
  NextBase = M.BaseAddr + Bytes + 2 * Pad;
  M.Allocated = true;
}

void Evaluator::allocAllArrays(uint32_t BaseMisalign) {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Mem.size()); I != E; ++I)
    allocArray(I, BaseMisalign);
}

uint64_t Evaluator::arrayBaseAddr(uint32_t Id) const {
  assert(Mem[Id].Allocated);
  return Mem[Id].BaseAddr;
}

uint8_t *Evaluator::memAt(uint32_t Arr, uint64_t Addr, uint64_t Bytes) {
  return const_cast<uint8_t *>(
      static_cast<const Evaluator *>(this)->memAt(Arr, Addr, Bytes));
}

const uint8_t *Evaluator::memAt(uint32_t Arr, uint64_t Addr,
                                uint64_t Bytes) const {
  const ArrayMem &M = Mem[Arr];
  assert(M.Allocated && "access to unallocated array");
  uint64_t Lo = M.BaseAddr - Pad;
  uint64_t Hi = M.BaseAddr + (M.Storage.size() - 2 * Pad) + Pad;
  if (Addr < Lo || Addr + Bytes > Hi)
    fatalError("out-of-bounds access to array " + F.Arrays[Arr].Name);
  return M.Storage.data() + (Addr - Lo);
}

uint64_t Evaluator::readLane(uint32_t Arr, uint64_t Addr,
                             ScalarKind K) const {
  unsigned ES = scalarSize(K);
  const uint8_t *P = memAt(Arr, Addr, ES);
  uint64_t Raw = 0;
  std::memcpy(&Raw, P, ES);
  return Raw;
}

void Evaluator::writeLane(uint32_t Arr, uint64_t Addr, ScalarKind K,
                          uint64_t Raw) {
  unsigned ES = scalarSize(K);
  uint8_t *P = memAt(Arr, Addr, ES);
  std::memcpy(P, &Raw, ES);
}

VVal Evaluator::readVector(uint32_t Arr, uint64_t Addr, ScalarKind K) const {
  unsigned ES = scalarSize(K);
  unsigned Lanes = Opt.VSBytes / ES;
  VVal V;
  V.Kind = K;
  V.Lanes.resize(Lanes);
  for (unsigned L = 0; L < Lanes; ++L)
    V.Lanes[L] = readLane(Arr, Addr + static_cast<uint64_t>(L) * ES, K);
  return V;
}

void Evaluator::writeVector(uint32_t Arr, uint64_t Addr, const VVal &V) {
  unsigned ES = scalarSize(V.Kind);
  for (unsigned L = 0; L < V.Lanes.size(); ++L)
    writeLane(Arr, Addr + static_cast<uint64_t>(L) * ES, V.Kind, V.Lanes[L]);
}

void Evaluator::pokeInt(uint32_t Id, uint64_t Elem, int64_t V) {
  ScalarKind K = F.Arrays[Id].Elem;
  writeLane(Id, Mem[Id].BaseAddr + Elem * scalarSize(K), K, encodeInt(K, V));
}

void Evaluator::pokeFP(uint32_t Id, uint64_t Elem, double V) {
  ScalarKind K = F.Arrays[Id].Elem;
  writeLane(Id, Mem[Id].BaseAddr + Elem * scalarSize(K), K, encodeFP(K, V));
}

int64_t Evaluator::peekInt(uint32_t Id, uint64_t Elem) const {
  ScalarKind K = F.Arrays[Id].Elem;
  return decodeInt(K, readLane(Id, Mem[Id].BaseAddr + Elem * scalarSize(K), K));
}

double Evaluator::peekFP(uint32_t Id, uint64_t Elem) const {
  ScalarKind K = F.Arrays[Id].Elem;
  return decodeFP(K, readLane(Id, Mem[Id].BaseAddr + Elem * scalarSize(K), K));
}

static ValueId findParam(const Function &F, const std::string &Name) {
  for (ValueId P : F.Params)
    if (F.Values[P].Name == Name)
      return P;
  fatalError("no parameter named " + Name);
}

void Evaluator::setParamInt(const std::string &Name, int64_t V) {
  ValueId P = findParam(F, Name);
  ScalarKind K = F.typeOf(P).Elem;
  assert(isIntKind(K));
  Env[P] = {K, {encodeInt(K, V)}};
}

void Evaluator::setParamFP(const std::string &Name, double V) {
  ValueId P = findParam(F, Name);
  ScalarKind K = F.typeOf(P).Elem;
  assert(isFloatKind(K));
  Env[P] = {K, {encodeFP(K, V)}};
}

int64_t Evaluator::scalarInt(ValueId V) const {
  const VVal &X = Env[V];
  assert(X.Lanes.size() == 1 && "expected scalar value");
  return decodeInt(X.Kind, X.Lanes[0]);
}

uint64_t Evaluator::elemAddr(const Instr &I, ValueId IdxOp) const {
  int64_t Idx = scalarInt(IdxOp);
  const ArrayMem &M = Mem[I.Array];
  return M.BaseAddr +
         static_cast<uint64_t>(Idx) * scalarSize(F.Arrays[I.Array].Elem);
}

void Evaluator::run() {
  DynOps = 0;
  execRegion(F.Body);
}

void Evaluator::execRegion(const Region &R) {
  for (const NodeRef &N : R.Nodes) {
    switch (N.Kind) {
    case NodeKind::Instr:
      execInstr(F.Instrs[N.Index]);
      break;
    case NodeKind::Loop:
      execLoop(F.Loops[N.Index]);
      break;
    case NodeKind::If:
      execIf(F.Ifs[N.Index]);
      break;
    }
  }
}

void Evaluator::execLoop(const LoopStmt &L) {
  int64_t I = scalarInt(L.Lower);
  int64_t Upper = scalarInt(L.Upper);
  int64_t Step = scalarInt(L.Step);
  assert(Step > 0 && "loops must count upward");

  for (const auto &C : L.Carried)
    Env[C.Phi] = Env[C.Init];

  while (I < Upper) {
    Env[L.IndVar] = {ScalarKind::I64, {static_cast<uint64_t>(I)}};
    execRegion(L.Body);
    for (const auto &C : L.Carried)
      Env[C.Phi] = Env[C.Next];
    I += Step;
  }

  for (const auto &C : L.Carried)
    Env[C.Result] = Env[C.Phi];
}

void Evaluator::execIf(const IfStmt &S) {
  const VVal &C = Env[S.Cond];
  assert(C.Lanes.size() == 1);
  execRegion(C.Lanes[0] ? S.Then : S.Else);
}

VVal Evaluator::evalGuard(const Instr &I) const {
  bool Result = false;
  switch (I.Guard) {
  case GuardKind::BasesAligned: {
    Result = true;
    for (uint32_t A : I.GuardArgs)
      Result &= isAligned(Mem[A].BaseAddr, Opt.VSBytes);
    break;
  }
  case GuardKind::TypeSupported: {
    Result = true;
    for (ScalarKind K : Opt.UnsupportedVectorKinds)
      if (K == I.TyParam)
        Result = false;
    break;
  }
  case GuardKind::PreferOuterLoop:
    Result = Opt.PreferOuterLoop;
    break;
  case GuardKind::None:
    vapor_unreachable("guard without kind");
  }
  return {ScalarKind::I1, {Result ? 1ULL : 0ULL}};
}

void Evaluator::execInstr(const Instr &I) {
  ++DynOps;
  auto Lanes = [&](ValueId V) -> const std::vector<uint64_t> & {
    return Env[V].Lanes;
  };
  auto Set = [&](VVal V) {
    assert(I.hasResult());
    Env[I.Result] = std::move(V);
  };

  if (isBinArith(I.Op)) {
    const auto &A = Lanes(I.Ops[0]);
    const auto &B = Lanes(I.Ops[1]);
    assert(A.size() == B.size());
    VVal R{I.Ty.Elem, std::vector<uint64_t>(A.size())};
    for (size_t L = 0; L < A.size(); ++L)
      R.Lanes[L] = applyBinop(I.Op, I.Ty.Elem, A[L], B[L]);
    Set(std::move(R));
    return;
  }
  if (isCompare(I.Op)) {
    const auto &A = Lanes(I.Ops[0]);
    const auto &B = Lanes(I.Ops[1]);
    ScalarKind OpK = F.typeOf(I.Ops[0]).Elem;
    VVal R{ScalarKind::I1, std::vector<uint64_t>(A.size())};
    for (size_t L = 0; L < A.size(); ++L)
      R.Lanes[L] = applyCompare(I.Op, OpK, A[L], B[L]);
    Set(std::move(R));
    return;
  }

  switch (I.Op) {
  case Opcode::ConstInt:
    Set({I.Ty.Elem, {encodeInt(I.Ty.Elem, I.IntImm)}});
    break;
  case Opcode::ConstFP:
    Set({I.Ty.Elem, {encodeFP(I.Ty.Elem, I.FPImm)}});
    break;
  case Opcode::Neg:
  case Opcode::Abs:
  case Opcode::Sqrt: {
    const auto &A = Lanes(I.Ops[0]);
    VVal R{I.Ty.Elem, std::vector<uint64_t>(A.size())};
    for (size_t L = 0; L < A.size(); ++L)
      R.Lanes[L] = applyUnop(I.Op, I.Ty.Elem, A[L]);
    Set(std::move(R));
    break;
  }
  case Opcode::Select: {
    const auto &C = Lanes(I.Ops[0]);
    const auto &A = Lanes(I.Ops[1]);
    const auto &B = Lanes(I.Ops[2]);
    VVal R{I.Ty.Elem, std::vector<uint64_t>(A.size())};
    for (size_t L = 0; L < A.size(); ++L)
      R.Lanes[L] = C[L] ? A[L] : B[L];
    Set(std::move(R));
    break;
  }
  case Opcode::Convert: {
    ScalarKind Src = F.typeOf(I.Ops[0]).Elem;
    const auto &A = Lanes(I.Ops[0]);
    // A scalar->scalar or vector->vector conversion keeps the lane count
    // of its operand. (Vector conversions between kinds of different
    // widths are expressed via pack/unpack in the split layer; the
    // vectorizer only emits same-width vector converts.)
    VVal R{I.Ty.Elem, std::vector<uint64_t>(A.size())};
    for (size_t L = 0; L < A.size(); ++L)
      R.Lanes[L] = applyConvert(Src, I.Ty.Elem, A[L]);
    Set(std::move(R));
    break;
  }
  case Opcode::Load:
    Set({I.Ty.Elem, {readLane(I.Array, elemAddr(I, I.Ops[0]), I.Ty.Elem)}});
    break;
  case Opcode::Store: {
    const VVal &V = Env[I.Ops[1]];
    writeLane(I.Array, elemAddr(I, I.Ops[0]), V.Kind, V.Lanes[0]);
    break;
  }

  //===--- Machine-parameter idioms --------------------------------------===//
  case Opcode::GetVF:
  case Opcode::GetAlignLimit: {
    int64_t V = Opt.VSBytes / scalarSize(I.TyParam);
    Set({ScalarKind::I64, {static_cast<uint64_t>(V)}});
    break;
  }
  case Opcode::GetMisalign: {
    unsigned ES = scalarSize(F.Arrays[I.Array].Elem);
    uint64_t AL = Opt.VSBytes / ES;
    uint64_t BaseElems = Mem[I.Array].BaseAddr / ES;
    Set({ScalarKind::I64,
         {(BaseElems + static_cast<uint64_t>(I.IntImm)) % AL}});
    break;
  }
  case Opcode::LoopBound:
    Set(Env[I.Ops[Opt.UseVectorBound ? 0 : 1]]);
    break;
  case Opcode::VersionGuard:
    Set(evalGuard(I));
    break;

  //===--- Vector initialization -----------------------------------------===//
  case Opcode::InitUniform: {
    unsigned N = lanesOf(I.Ty);
    Set({I.Ty.Elem, std::vector<uint64_t>(N, Lanes(I.Ops[0])[0])});
    break;
  }
  case Opcode::InitAffine: {
    unsigned N = lanesOf(I.Ty);
    VVal R{I.Ty.Elem, std::vector<uint64_t>(N)};
    uint64_t Val = Lanes(I.Ops[0])[0], Inc = Lanes(I.Ops[1])[0];
    uint64_t Cur = Val;
    for (unsigned L = 0; L < N; ++L) {
      R.Lanes[L] = Cur;
      Cur = applyBinop(Opcode::Add, I.Ty.Elem, Cur, Inc);
    }
    Set(std::move(R));
    break;
  }
  case Opcode::InitReduc: {
    unsigned N = lanesOf(I.Ty);
    VVal R{I.Ty.Elem, std::vector<uint64_t>(N, Lanes(I.Ops[1])[0])};
    R.Lanes[0] = Lanes(I.Ops[0])[0];
    Set(std::move(R));
    break;
  }

  //===--- Reductions and computational idioms ---------------------------===//
  case Opcode::ReducPlus:
  case Opcode::ReducMax:
  case Opcode::ReducMin: {
    const auto &A = Lanes(I.Ops[0]);
    Opcode K = I.Op == Opcode::ReducPlus
                   ? Opcode::Add
                   : (I.Op == Opcode::ReducMax ? Opcode::Max : Opcode::Min);
    uint64_t Acc = A[0];
    for (size_t L = 1; L < A.size(); ++L)
      Acc = applyBinop(K, I.Ty.Elem, Acc, A[L]);
    Set({I.Ty.Elem, {Acc}});
    break;
  }
  case Opcode::DotProduct: {
    ScalarKind Narrow = F.typeOf(I.Ops[0]).Elem;
    ScalarKind Wide = I.Ty.Elem;
    const auto &A = Lanes(I.Ops[0]);
    const auto &B = Lanes(I.Ops[1]);
    const auto &Acc = Lanes(I.Ops[2]);
    VVal R{Wide, std::vector<uint64_t>(Acc.size())};
    for (size_t J = 0; J < Acc.size(); ++J) {
      uint64_t P0 = applyBinop(Opcode::Mul, Wide,
                               applyConvert(Narrow, Wide, A[2 * J]),
                               applyConvert(Narrow, Wide, B[2 * J]));
      uint64_t P1 = applyBinop(Opcode::Mul, Wide,
                               applyConvert(Narrow, Wide, A[2 * J + 1]),
                               applyConvert(Narrow, Wide, B[2 * J + 1]));
      R.Lanes[J] = applyBinop(Opcode::Add, Wide,
                              applyBinop(Opcode::Add, Wide, Acc[J], P0), P1);
    }
    Set(std::move(R));
    break;
  }
  case Opcode::WidenMultHi:
  case Opcode::WidenMultLo: {
    ScalarKind Narrow = F.typeOf(I.Ops[0]).Elem;
    ScalarKind Wide = I.Ty.Elem;
    const auto &A = Lanes(I.Ops[0]);
    const auto &B = Lanes(I.Ops[1]);
    size_t Half = A.size() / 2;
    size_t Off = I.Op == Opcode::WidenMultHi ? Half : 0;
    VVal R{Wide, std::vector<uint64_t>(Half)};
    for (size_t L = 0; L < Half; ++L)
      R.Lanes[L] = applyBinop(Opcode::Mul, Wide,
                              applyConvert(Narrow, Wide, A[Off + L]),
                              applyConvert(Narrow, Wide, B[Off + L]));
    Set(std::move(R));
    break;
  }
  case Opcode::Pack: {
    ScalarKind Wide = F.typeOf(I.Ops[0]).Elem;
    ScalarKind Narrow = I.Ty.Elem;
    const auto &A = Lanes(I.Ops[0]);
    const auto &B = Lanes(I.Ops[1]);
    VVal R{Narrow, std::vector<uint64_t>(A.size() + B.size())};
    for (size_t L = 0; L < A.size(); ++L)
      R.Lanes[L] = applyConvert(Wide, Narrow, A[L]);
    for (size_t L = 0; L < B.size(); ++L)
      R.Lanes[A.size() + L] = applyConvert(Wide, Narrow, B[L]);
    Set(std::move(R));
    break;
  }
  case Opcode::UnpackHi:
  case Opcode::UnpackLo: {
    ScalarKind Narrow = F.typeOf(I.Ops[0]).Elem;
    ScalarKind Wide = I.Ty.Elem;
    const auto &A = Lanes(I.Ops[0]);
    size_t Half = A.size() / 2;
    size_t Off = I.Op == Opcode::UnpackHi ? Half : 0;
    VVal R{Wide, std::vector<uint64_t>(Half)};
    for (size_t L = 0; L < Half; ++L)
      R.Lanes[L] = applyConvert(Narrow, Wide, A[Off + L]);
    Set(std::move(R));
    break;
  }

  //===--- Data reorganization -------------------------------------------===//
  case Opcode::Extract: {
    unsigned N = lanesOf(I.Ty);
    VVal R{I.Ty.Elem, std::vector<uint64_t>(N)};
    for (unsigned L = 0; L < N; ++L) {
      uint64_t Pos = static_cast<uint64_t>(I.IntImm) +
                     static_cast<uint64_t>(L) * I.IntImm2;
      R.Lanes[L] = Lanes(I.Ops[Pos / N])[Pos % N];
    }
    Set(std::move(R));
    break;
  }
  case Opcode::InterleaveHi:
  case Opcode::InterleaveLo: {
    const auto &A = Lanes(I.Ops[0]);
    const auto &B = Lanes(I.Ops[1]);
    size_t Half = A.size() / 2;
    size_t Off = I.Op == Opcode::InterleaveHi ? Half : 0;
    VVal R{I.Ty.Elem, std::vector<uint64_t>(A.size())};
    for (size_t L = 0; L < Half; ++L) {
      R.Lanes[2 * L] = A[Off + L];
      R.Lanes[2 * L + 1] = B[Off + L];
    }
    Set(std::move(R));
    break;
  }

  //===--- Vector memory and realignment ---------------------------------===//
  case Opcode::ALoad: {
    uint64_t Addr = elemAddr(I, I.Ops[0]);
    if (!isAligned(Addr, Opt.VSBytes))
      fatalError("aload from misaligned address in " + F.Name);
    Set(readVector(I.Array, Addr, I.Ty.Elem));
    break;
  }
  case Opcode::ULoad:
    Set(readVector(I.Array, elemAddr(I, I.Ops[0]), I.Ty.Elem));
    break;
  case Opcode::AStore: {
    uint64_t Addr = elemAddr(I, I.Ops[0]);
    if (!isAligned(Addr, Opt.VSBytes))
      fatalError("astore to misaligned address in " + F.Name);
    writeVector(I.Array, Addr, Env[I.Ops[1]]);
    break;
  }
  case Opcode::UStore:
    writeVector(I.Array, elemAddr(I, I.Ops[0]), Env[I.Ops[1]]);
    break;
  case Opcode::AlignLoad: {
    uint64_t Addr = alignDown(elemAddr(I, I.Ops[0]), Opt.VSBytes);
    Set(readVector(I.Array, Addr, I.Ty.Elem));
    break;
  }
  case Opcode::GetRT: {
    uint64_t Addr = elemAddr(I, I.Ops[0]);
    Set({ScalarKind::U64, {Addr % Opt.VSBytes}});
    break;
  }
  case Opcode::RealignLoad: {
    uint64_t Addr = elemAddr(I, I.Ops[3]);
    VVal Direct = readVector(I.Array, Addr, I.Ty.Elem);
    if (Opt.CheckRealign) {
      const auto &V1 = Lanes(I.Ops[0]);
      const auto &V2 = Lanes(I.Ops[1]);
      uint64_t RT = Lanes(I.Ops[2])[0];
      unsigned ES = scalarSize(I.Ty.Elem);
      assert(RT % ES == 0 && "realignment token not element-granular");
      uint64_t Off = RT / ES;
      for (size_t L = 0; L < Direct.Lanes.size(); ++L) {
        uint64_t Pos = Off + L;
        uint64_t FromChain =
            Pos < V1.size() ? V1[Pos] : V2[Pos - V1.size()];
        if (FromChain != Direct.Lanes[L])
          fatalError("realign_load chain disagrees with memory in " + F.Name);
      }
    }
    Set(std::move(Direct));
    break;
  }

  case Opcode::LibCall:
    vapor_unreachable("libcall has no golden-model semantics at IR level");
  default:
    vapor_unreachable("opcode handled by an earlier dispatch group");
  }
}
