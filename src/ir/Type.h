//===- ir/Type.h - Scalar and parametric vector types ----------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Element kinds and the Type used throughout the IR. At the split-layer
/// (bytecode) level vector types are *parametric*: they name an element kind
/// but no lane count, because the lane count is VS/sizeof(elem) and the
/// vector size VS is only known to the online (JIT) compiler. See paper
/// Sec. III-A.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_IR_TYPE_H
#define VAPOR_IR_TYPE_H

#include "support/Support.h"

#include <cstdint>
#include <string>

namespace vapor {
namespace ir {

/// Element kinds mirror the data types exercised by the paper's kernel
/// suite (Table 2): signed/unsigned 8..64-bit integers and both float
/// precisions.
enum class ScalarKind : uint8_t {
  None, ///< "void"; the type of stores and other result-less operations.
  I1,   ///< Booleans produced by comparisons and version guards.
  I8,
  U8,
  I16,
  U16,
  I32,
  U32,
  I64,
  U64,
  F32,
  F64,
};

/// \returns the size of \p K in bytes (0 for None, 1 for I1).
constexpr unsigned scalarSize(ScalarKind K) {
  switch (K) {
  case ScalarKind::None:
    return 0;
  case ScalarKind::I1:
  case ScalarKind::I8:
  case ScalarKind::U8:
    return 1;
  case ScalarKind::I16:
  case ScalarKind::U16:
    return 2;
  case ScalarKind::I32:
  case ScalarKind::U32:
  case ScalarKind::F32:
    return 4;
  case ScalarKind::I64:
  case ScalarKind::U64:
  case ScalarKind::F64:
    return 8;
  }
  return 0;
}

constexpr bool isFloatKind(ScalarKind K) {
  return K == ScalarKind::F32 || K == ScalarKind::F64;
}

constexpr bool isIntKind(ScalarKind K) {
  return K != ScalarKind::None && !isFloatKind(K);
}

constexpr bool isSignedKind(ScalarKind K) {
  switch (K) {
  case ScalarKind::I8:
  case ScalarKind::I16:
  case ScalarKind::I32:
  case ScalarKind::I64:
    return true;
  default:
    return false;
  }
}

/// \returns the integer kind with twice the width of \p K, preserving
/// signedness. Widening multiplication and unpack promote to this kind.
constexpr ScalarKind widenKind(ScalarKind K) {
  switch (K) {
  case ScalarKind::I8:
    return ScalarKind::I16;
  case ScalarKind::U8:
    return ScalarKind::U16;
  case ScalarKind::I16:
    return ScalarKind::I32;
  case ScalarKind::U16:
    return ScalarKind::U32;
  case ScalarKind::I32:
    return ScalarKind::I64;
  case ScalarKind::U32:
    return ScalarKind::U64;
  case ScalarKind::F32:
    return ScalarKind::F64;
  default:
    return ScalarKind::None;
  }
}

/// \returns the integer kind with half the width of \p K (the pack idiom
/// demotes to this kind), or None if \p K cannot be narrowed.
constexpr ScalarKind narrowKind(ScalarKind K) {
  switch (K) {
  case ScalarKind::I16:
    return ScalarKind::I8;
  case ScalarKind::U16:
    return ScalarKind::U8;
  case ScalarKind::I32:
    return ScalarKind::I16;
  case ScalarKind::U32:
    return ScalarKind::U16;
  case ScalarKind::I64:
    return ScalarKind::I32;
  case ScalarKind::U64:
    return ScalarKind::U32;
  case ScalarKind::F64:
    return ScalarKind::F32;
  default:
    return ScalarKind::None;
  }
}

const char *scalarKindName(ScalarKind K);

/// A value type: either a scalar of kind Elem, or a parametric vector of
/// Elem whose lane count is VS / sizeof(Elem) for a vector size VS chosen
/// by the online compiler.
struct Type {
  ScalarKind Elem = ScalarKind::None;
  bool Vector = false;

  constexpr Type() = default;
  constexpr Type(ScalarKind K, bool Vec) : Elem(K), Vector(Vec) {}

  static constexpr Type scalar(ScalarKind K) { return Type(K, false); }
  static constexpr Type vector(ScalarKind K) { return Type(K, true); }
  static constexpr Type none() { return Type(); }

  bool isNone() const { return Elem == ScalarKind::None; }
  bool isScalar() const { return !Vector && !isNone(); }
  bool isVector() const { return Vector; }

  /// \returns the lane count of this type for vector size \p VSBytes.
  unsigned lanes(unsigned VSBytes) const {
    if (!Vector)
      return 1;
    assert(VSBytes % scalarSize(Elem) == 0 && "VS not a multiple of elem");
    return VSBytes / scalarSize(Elem);
  }

  bool operator==(const Type &O) const {
    return Elem == O.Elem && Vector == O.Vector;
  }
  bool operator!=(const Type &O) const { return !(*this == O); }

  std::string str() const;
};

} // namespace ir
} // namespace vapor

#endif // VAPOR_IR_TYPE_H
