//===- ir/Builder.cpp - IR construction helper ----------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "support/Support.h"

using namespace vapor;
using namespace vapor::ir;

Region &IrBuilder::resolve(const RegionRef &R) {
  switch (R.K) {
  case RegionRef::Kind::FuncBody:
    return F.Body;
  case RegionRef::Kind::LoopBody:
    return F.Loops[R.Index].Body;
  case RegionRef::Kind::IfThen:
    return F.Ifs[R.Index].Then;
  case RegionRef::Kind::IfElse:
    return F.Ifs[R.Index].Else;
  }
  vapor_unreachable("bad region ref");
}

Region &IrBuilder::currentRegion() { return resolve(Stack.back()); }

ValueId IrBuilder::emit(Instr I) {
  uint32_t Idx = static_cast<uint32_t>(F.Instrs.size());
  if (!I.Ty.isNone())
    I.Result = F.makeValue(I.Ty, ValueDef::Instr, Idx);
  ValueId Result = I.Result;
  F.Instrs.push_back(std::move(I));
  currentRegion().Nodes.push_back({NodeKind::Instr, Idx});
  return Result;
}

ValueId IrBuilder::constInt(ScalarKind K, int64_t V) {
  assert(isIntKind(K) || K == ScalarKind::I1);
  Instr I;
  I.Op = Opcode::ConstInt;
  I.Ty = Type::scalar(K);
  I.IntImm = V;
  return emit(std::move(I));
}

ValueId IrBuilder::constFP(ScalarKind K, double V) {
  assert(isFloatKind(K));
  Instr I;
  I.Op = Opcode::ConstFP;
  I.Ty = Type::scalar(K);
  I.FPImm = V;
  return emit(std::move(I));
}

ValueId IrBuilder::binop(Opcode Op, ValueId A, ValueId B) {
  assert(isBinArith(Op) && "not a binary arithmetic opcode");
  Type TA = F.typeOf(A);
  assert(TA == F.typeOf(B) && "binop operand type mismatch");
  Instr I;
  I.Op = Op;
  I.Ty = TA;
  I.Ops = {A, B};
  return emit(std::move(I));
}

ValueId IrBuilder::neg(ValueId A) {
  Instr I;
  I.Op = Opcode::Neg;
  I.Ty = F.typeOf(A);
  I.Ops = {A};
  return emit(std::move(I));
}

ValueId IrBuilder::abs(ValueId A) {
  Instr I;
  I.Op = Opcode::Abs;
  I.Ty = F.typeOf(A);
  I.Ops = {A};
  return emit(std::move(I));
}

ValueId IrBuilder::sqrtOp(ValueId A) {
  assert(isFloatKind(F.typeOf(A).Elem) && "sqrt is floating-point only");
  Instr I;
  I.Op = Opcode::Sqrt;
  I.Ty = F.typeOf(A);
  I.Ops = {A};
  return emit(std::move(I));
}

ValueId IrBuilder::cmp(Opcode Op, ValueId A, ValueId B) {
  assert(isCompare(Op) && "not a comparison opcode");
  Type TA = F.typeOf(A);
  assert(TA == F.typeOf(B) && "cmp operand type mismatch");
  Instr I;
  I.Op = Op;
  I.Ty = Type(ScalarKind::I1, TA.Vector);
  I.Ops = {A, B};
  return emit(std::move(I));
}

ValueId IrBuilder::select(ValueId Cond, ValueId TrueV, ValueId FalseV) {
  Type TT = F.typeOf(TrueV);
  assert(TT == F.typeOf(FalseV) && "select arm type mismatch");
  assert(F.typeOf(Cond).Elem == ScalarKind::I1 && "select needs i1 cond");
  Instr I;
  I.Op = Opcode::Select;
  I.Ty = TT;
  I.Ops = {Cond, TrueV, FalseV};
  return emit(std::move(I));
}

ValueId IrBuilder::convert(ScalarKind Dst, ValueId V) {
  Type TV = F.typeOf(V);
  Instr I;
  I.Op = Opcode::Convert;
  I.Ty = Type(Dst, TV.Vector);
  I.Ops = {V};
  return emit(std::move(I));
}

ValueId IrBuilder::load(uint32_t Arr, ValueId Idx) {
  assert(Arr < F.Arrays.size());
  Instr I;
  I.Op = Opcode::Load;
  I.Ty = Type::scalar(F.Arrays[Arr].Elem);
  I.Ops = {Idx};
  I.Array = Arr;
  return emit(std::move(I));
}

void IrBuilder::store(uint32_t Arr, ValueId Idx, ValueId V) {
  assert(Arr < F.Arrays.size());
  assert(F.typeOf(V) == Type::scalar(F.Arrays[Arr].Elem) &&
         "store value/element type mismatch");
  Instr I;
  I.Op = Opcode::Store;
  I.Ops = {Idx, V};
  I.Array = Arr;
  emit(std::move(I));
}

//===--- Idioms -------------------------------------------------------------//

ValueId IrBuilder::getVF(ScalarKind K) {
  Instr I;
  I.Op = Opcode::GetVF;
  I.Ty = Type::scalar(ScalarKind::I64);
  I.TyParam = K;
  return emit(std::move(I));
}

ValueId IrBuilder::getAlignLimit(ScalarKind K) {
  Instr I;
  I.Op = Opcode::GetAlignLimit;
  I.Ty = Type::scalar(ScalarKind::I64);
  I.TyParam = K;
  return emit(std::move(I));
}

ValueId IrBuilder::getMisalign(uint32_t Arr, int64_t OffElems) {
  Instr I;
  I.Op = Opcode::GetMisalign;
  I.Ty = Type::scalar(ScalarKind::I64);
  I.Array = Arr;
  I.IntImm = OffElems;
  I.TyParam = F.Arrays[Arr].Elem;
  return emit(std::move(I));
}

ValueId IrBuilder::initUniform(ValueId Val) {
  Type TV = F.typeOf(Val);
  assert(TV.isScalar());
  Instr I;
  I.Op = Opcode::InitUniform;
  I.Ty = Type::vector(TV.Elem);
  I.TyParam = TV.Elem;
  I.Ops = {Val};
  return emit(std::move(I));
}

ValueId IrBuilder::initAffine(ValueId Val, ValueId Inc) {
  Type TV = F.typeOf(Val);
  assert(TV.isScalar() && TV == F.typeOf(Inc));
  Instr I;
  I.Op = Opcode::InitAffine;
  I.Ty = Type::vector(TV.Elem);
  I.TyParam = TV.Elem;
  I.Ops = {Val, Inc};
  return emit(std::move(I));
}

ValueId IrBuilder::initReduc(ValueId Val, ValueId Default) {
  Type TV = F.typeOf(Val);
  assert(TV.isScalar() && TV == F.typeOf(Default));
  Instr I;
  I.Op = Opcode::InitReduc;
  I.Ty = Type::vector(TV.Elem);
  I.TyParam = TV.Elem;
  I.Ops = {Val, Default};
  return emit(std::move(I));
}

ValueId IrBuilder::reduc(Opcode Op, ValueId Vec) {
  assert(Op == Opcode::ReducPlus || Op == Opcode::ReducMax ||
         Op == Opcode::ReducMin);
  Type TV = F.typeOf(Vec);
  assert(TV.isVector());
  Instr I;
  I.Op = Op;
  I.Ty = Type::scalar(TV.Elem);
  I.TyParam = TV.Elem;
  I.Ops = {Vec};
  return emit(std::move(I));
}

ValueId IrBuilder::dotProduct(ValueId V1, ValueId V2, ValueId Acc) {
  Type T1 = F.typeOf(V1);
  assert(T1.isVector() && T1 == F.typeOf(V2));
  ScalarKind Wide = widenKind(T1.Elem);
  assert(F.typeOf(Acc) == Type::vector(Wide) && "dot accumulator kind");
  Instr I;
  I.Op = Opcode::DotProduct;
  I.Ty = Type::vector(Wide);
  I.TyParam = T1.Elem;
  I.Ops = {V1, V2, Acc};
  return emit(std::move(I));
}

static ValueId emitWiden(IrBuilder &B, Function &F, Opcode Op, ValueId V1,
                         ValueId V2) {
  Type T1 = F.typeOf(V1);
  assert(T1.isVector() && T1 == F.typeOf(V2));
  Instr I;
  I.Op = Op;
  I.Ty = Type::vector(widenKind(T1.Elem));
  I.TyParam = T1.Elem;
  I.Ops = {V1, V2};
  return B.emit(std::move(I));
}

ValueId IrBuilder::widenMultHi(ValueId V1, ValueId V2) {
  return emitWiden(*this, F, Opcode::WidenMultHi, V1, V2);
}

ValueId IrBuilder::widenMultLo(ValueId V1, ValueId V2) {
  return emitWiden(*this, F, Opcode::WidenMultLo, V1, V2);
}

ValueId IrBuilder::pack(ValueId V1, ValueId V2) {
  Type T1 = F.typeOf(V1);
  assert(T1.isVector() && T1 == F.typeOf(V2));
  ScalarKind Narrow = narrowKind(T1.Elem);
  assert(Narrow != ScalarKind::None && "pack cannot narrow this kind");
  Instr I;
  I.Op = Opcode::Pack;
  I.Ty = Type::vector(Narrow);
  I.TyParam = Narrow;
  I.Ops = {V1, V2};
  return emit(std::move(I));
}

static ValueId emitUnpack(IrBuilder &B, Function &F, Opcode Op, ValueId V) {
  Type TV = F.typeOf(V);
  assert(TV.isVector());
  Instr I;
  I.Op = Op;
  I.Ty = Type::vector(widenKind(TV.Elem));
  I.TyParam = TV.Elem;
  I.Ops = {V};
  return B.emit(std::move(I));
}

ValueId IrBuilder::unpackHi(ValueId V) {
  return emitUnpack(*this, F, Opcode::UnpackHi, V);
}

ValueId IrBuilder::unpackLo(ValueId V) {
  return emitUnpack(*this, F, Opcode::UnpackLo, V);
}

ValueId IrBuilder::extract(int64_t Stride, int64_t Off,
                           const std::vector<ValueId> &Vecs) {
  assert(!Vecs.empty() && Stride >= 1 && Off >= 0 && Off < Stride);
  assert(static_cast<int64_t>(Vecs.size()) == Stride &&
         "extract needs Stride input vectors to produce a full vector");
  Type TV = F.typeOf(Vecs.front());
  for (ValueId V : Vecs)
    assert(F.typeOf(V) == TV && "extract operand type mismatch");
  Instr I;
  I.Op = Opcode::Extract;
  I.Ty = TV;
  I.TyParam = TV.Elem;
  I.Ops = Vecs;
  I.IntImm = Off;
  I.IntImm2 = Stride;
  return emit(std::move(I));
}

static ValueId emitInterleave(IrBuilder &B, Function &F, Opcode Op, ValueId V1,
                              ValueId V2) {
  Type T1 = F.typeOf(V1);
  assert(T1.isVector() && T1 == F.typeOf(V2));
  Instr I;
  I.Op = Op;
  I.Ty = T1;
  I.TyParam = T1.Elem;
  I.Ops = {V1, V2};
  return B.emit(std::move(I));
}

ValueId IrBuilder::interleaveHi(ValueId V1, ValueId V2) {
  return emitInterleave(*this, F, Opcode::InterleaveHi, V1, V2);
}

ValueId IrBuilder::interleaveLo(ValueId V1, ValueId V2) {
  return emitInterleave(*this, F, Opcode::InterleaveLo, V1, V2);
}

static Instr makeVecMem(Function &F, Opcode Op, uint32_t Arr, ValueId Idx) {
  assert(Arr < F.Arrays.size());
  Instr I;
  I.Op = Op;
  I.Ty = Type::vector(F.Arrays[Arr].Elem);
  I.TyParam = F.Arrays[Arr].Elem;
  I.Ops = {Idx};
  I.Array = Arr;
  return I;
}

ValueId IrBuilder::aload(uint32_t Arr, ValueId Idx, AlignHint Hint) {
  Instr I = makeVecMem(F, Opcode::ALoad, Arr, Idx);
  I.Hint = Hint;
  return emit(std::move(I));
}

ValueId IrBuilder::uload(uint32_t Arr, ValueId Idx, AlignHint Hint) {
  Instr I = makeVecMem(F, Opcode::ULoad, Arr, Idx);
  I.Hint = Hint;
  return emit(std::move(I));
}

void IrBuilder::astore(uint32_t Arr, ValueId Idx, ValueId V,
                       AlignHint Hint) {
  assert(F.typeOf(V) == Type::vector(F.Arrays[Arr].Elem));
  Instr I;
  I.Op = Opcode::AStore;
  I.Ops = {Idx, V};
  I.Array = Arr;
  I.TyParam = F.Arrays[Arr].Elem;
  I.Hint = Hint;
  emit(std::move(I));
}

void IrBuilder::ustore(uint32_t Arr, ValueId Idx, ValueId V, AlignHint Hint) {
  assert(F.typeOf(V) == Type::vector(F.Arrays[Arr].Elem));
  Instr I;
  I.Op = Opcode::UStore;
  I.Ops = {Idx, V};
  I.Array = Arr;
  I.TyParam = F.Arrays[Arr].Elem;
  I.Hint = Hint;
  emit(std::move(I));
}

ValueId IrBuilder::alignLoad(uint32_t Arr, ValueId Idx) {
  return emit(makeVecMem(F, Opcode::AlignLoad, Arr, Idx));
}

ValueId IrBuilder::getRT(uint32_t Arr, ValueId Idx, AlignHint Hint) {
  Instr I;
  I.Op = Opcode::GetRT;
  I.Ty = Type::scalar(ScalarKind::U64);
  I.Ops = {Idx};
  I.Array = Arr;
  I.TyParam = F.Arrays[Arr].Elem;
  I.Hint = Hint;
  return emit(std::move(I));
}

ValueId IrBuilder::realignLoad(ValueId V1, ValueId V2, ValueId RT,
                               uint32_t Arr, ValueId Idx, AlignHint Hint) {
  assert(Arr < F.Arrays.size());
  Type VT = Type::vector(F.Arrays[Arr].Elem);
  assert(F.typeOf(V1) == VT && F.typeOf(V2) == VT);
  Instr I;
  I.Op = Opcode::RealignLoad;
  I.Ty = VT;
  I.TyParam = F.Arrays[Arr].Elem;
  I.Ops = {V1, V2, RT, Idx};
  I.Array = Arr;
  I.Hint = Hint;
  return emit(std::move(I));
}

ValueId IrBuilder::loopBound(ValueId VectBound, ValueId ScalarBound) {
  assert(F.typeOf(VectBound) == Type::scalar(ScalarKind::I64) &&
         F.typeOf(ScalarBound) == Type::scalar(ScalarKind::I64));
  Instr I;
  I.Op = Opcode::LoopBound;
  I.Ty = Type::scalar(ScalarKind::I64);
  I.Ops = {VectBound, ScalarBound};
  return emit(std::move(I));
}

ValueId IrBuilder::versionGuard(GuardKind Kind, std::vector<uint32_t> Args,
                                ScalarKind TyParam) {
  assert(Kind != GuardKind::None);
  Instr I;
  I.Op = Opcode::VersionGuard;
  I.Ty = Type::scalar(ScalarKind::I1);
  I.Guard = Kind;
  I.GuardArgs = std::move(Args);
  I.TyParam = TyParam;
  return emit(std::move(I));
}

//===--- Structured control flow ---------------------------------------------//

IrBuilder::LoopHandle IrBuilder::beginLoop(ValueId Lower, ValueId Upper,
                                           ValueId Step, LoopRole Role) {
  assert(F.typeOf(Lower) == Type::scalar(ScalarKind::I64) &&
         F.typeOf(Upper) == Type::scalar(ScalarKind::I64) &&
         F.typeOf(Step) == Type::scalar(ScalarKind::I64) &&
         "loop bounds must be index-typed (i64)");
  uint32_t Idx = static_cast<uint32_t>(F.Loops.size());
  F.Loops.emplace_back();
  LoopStmt &L = F.Loops.back();
  L.Lower = Lower;
  L.Upper = Upper;
  L.Step = Step;
  L.Role = Role;
  L.IndVar = F.makeValue(Type::scalar(ScalarKind::I64), ValueDef::LoopInd, Idx);
  currentRegion().Nodes.push_back({NodeKind::Loop, Idx});
  Stack.push_back({RegionRef::Kind::LoopBody, Idx});
  LoopHandle H;
  H.LoopIdx = Idx;
  H.IndVar = L.IndVar;
  return H;
}

ValueId IrBuilder::addCarried(const LoopHandle &L, ValueId Init) {
  assert(Stack.back().K == RegionRef::Kind::LoopBody &&
         Stack.back().Index == L.LoopIdx &&
         "addCarried outside the loop being built");
  LoopStmt &Loop = F.Loops[L.LoopIdx];
  uint32_t CIdx = static_cast<uint32_t>(Loop.Carried.size());
  LoopStmt::CarriedVar C;
  C.Init = Init;
  C.Phi = F.makeValue(F.typeOf(Init), ValueDef::LoopCarried, L.LoopIdx, CIdx);
  C.Result =
      F.makeValue(F.typeOf(Init), ValueDef::LoopResult, L.LoopIdx, CIdx);
  Loop.Carried.push_back(C);
  return C.Phi;
}

void IrBuilder::setCarriedNext(const LoopHandle &L, ValueId Phi,
                               ValueId Next) {
  LoopStmt &Loop = F.Loops[L.LoopIdx];
  for (auto &C : Loop.Carried) {
    if (C.Phi != Phi)
      continue;
    assert(F.typeOf(Next) == F.typeOf(Phi) && "carried next type mismatch");
    C.Next = Next;
    return;
  }
  vapor_unreachable("phi is not a carried variable of this loop");
}

ValueId IrBuilder::carriedResult(const LoopHandle &L, ValueId Phi) const {
  const LoopStmt &Loop = F.Loops[L.LoopIdx];
  for (const auto &C : Loop.Carried)
    if (C.Phi == Phi)
      return C.Result;
  vapor_unreachable("phi is not a carried variable of this loop");
}

void IrBuilder::endLoop(const LoopHandle &L) {
  assert(Stack.back().K == RegionRef::Kind::LoopBody &&
         Stack.back().Index == L.LoopIdx && "endLoop does not match");
  for ([[maybe_unused]] const auto &C : F.Loops[L.LoopIdx].Carried)
    assert(C.Next != NoValue && "carried variable without a next value");
  Stack.pop_back();
}

uint32_t IrBuilder::beginIf(ValueId Cond) {
  assert(F.typeOf(Cond) == Type::scalar(ScalarKind::I1) &&
         "if condition must be scalar i1");
  uint32_t Idx = static_cast<uint32_t>(F.Ifs.size());
  F.Ifs.emplace_back();
  F.Ifs[Idx].Cond = Cond;
  currentRegion().Nodes.push_back({NodeKind::If, Idx});
  Stack.push_back({RegionRef::Kind::IfThen, Idx});
  return Idx;
}

void IrBuilder::beginElse(uint32_t IfIdx) {
  assert(Stack.back().K == RegionRef::Kind::IfThen &&
         Stack.back().Index == IfIdx && "beginElse does not match");
  Stack.back().K = RegionRef::Kind::IfElse;
}

void IrBuilder::endIf(uint32_t IfIdx) {
  assert((Stack.back().K == RegionRef::Kind::IfThen ||
          Stack.back().K == RegionRef::Kind::IfElse) &&
         Stack.back().Index == IfIdx && "endIf does not match");
  Stack.pop_back();
}
