//===- ir/Printer.cpp - Textual IR dump -----------------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "support/Support.h"

#include <sstream>

using namespace vapor;
using namespace vapor::ir;

namespace {

class Printer {
public:
  Printer(const Function &Fn, std::ostringstream &Out) : F(Fn), OS(Out) {}

  void print() {
    OS << "func \"" << F.Name << "\""
       << (F.IsSplitLayer ? " split-layer" : " scalar-source") << " {\n";
    OS << "  params:";
    if (F.Params.empty())
      OS << " (none)";
    for (ValueId P : F.Params)
      OS << " " << valueName(P) << ":" << F.typeOf(P).str();
    OS << "\n";
    for (uint32_t I = 0, E = static_cast<uint32_t>(F.Arrays.size()); I != E;
         ++I) {
      const ArrayInfo &A = F.Arrays[I];
      OS << "  array @" << A.Name << ": " << scalarKindName(A.Elem) << "["
         << A.NumElems << "] align " << A.BaseAlign << "\n";
    }
    printRegion(F.Body, 1);
    OS << "}\n";
  }

private:
  std::string valueName(ValueId V) const {
    if (V == NoValue)
      return "<none>";
    const ValueInfo &VI = F.Values[V];
    if (!VI.Name.empty())
      return "%" + VI.Name;
    return "%" + std::to_string(V);
  }

  void indent(int Depth) {
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }

  void printRegion(const Region &R, int Depth) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        printInstr(F.Instrs[N.Index], Depth);
        break;
      case NodeKind::Loop:
        printLoop(F.Loops[N.Index], Depth);
        break;
      case NodeKind::If:
        printIf(F.Ifs[N.Index], Depth);
        break;
      }
    }
  }

  void printInstr(const Instr &I, int Depth) {
    indent(Depth);
    if (I.hasResult())
      OS << valueName(I.Result) << " = ";
    OS << opcodeMnemonic(I.Op);
    if (!I.Ty.isNone())
      OS << "." << I.Ty.str();
    else if (I.TyParam != ScalarKind::None)
      OS << "." << scalarKindName(I.TyParam);
    if (I.Array != NoArray)
      OS << " @" << F.Arrays[I.Array].Name;
    bool First = true;
    for (ValueId Op : I.Ops) {
      OS << (First ? " " : ", ") << valueName(Op);
      First = false;
    }
    switch (I.Op) {
    case Opcode::ConstInt:
      OS << " " << I.IntImm;
      break;
    case Opcode::ConstFP:
      OS << " " << I.FPImm;
      break;
    case Opcode::Extract:
      OS << " off=" << I.IntImm << " stride=" << I.IntImm2;
      break;
    case Opcode::GetMisalign:
      OS << " off=" << I.IntImm;
      break;
    case Opcode::VersionGuard:
      OS << " " << guardName(I.Guard);
      for (uint32_t A : I.GuardArgs)
        OS << " @" << F.Arrays[A].Name;
      break;
    default:
      break;
    }
    if (I.Hint.Mod != 0 || I.Hint.Mis >= 0 || I.Hint.IfJitAligns) {
      OS << " hint(mis=" << I.Hint.Mis << ",mod=" << I.Hint.Mod;
      if (I.Hint.IfJitAligns)
        OS << ",if-jit-aligns";
      OS << ")";
    }
    OS << "\n";
  }

  static const char *guardName(GuardKind G) {
    switch (G) {
    case GuardKind::None:
      return "none";
    case GuardKind::BasesAligned:
      return "bases_aligned";
    case GuardKind::TypeSupported:
      return "type_supported";
    case GuardKind::PreferOuterLoop:
      return "prefer_outer_loop";
    }
    vapor_unreachable("bad guard kind");
  }

  static const char *roleName(LoopRole R) {
    switch (R) {
    case LoopRole::Plain:
      return "plain";
    case LoopRole::Peel:
      return "peel";
    case LoopRole::VecMain:
      return "vec-main";
    case LoopRole::Epilogue:
      return "epilogue";
    }
    vapor_unreachable("bad loop role");
  }

  void printLoop(const LoopStmt &L, int Depth) {
    indent(Depth);
    OS << "loop " << valueName(L.IndVar) << " = [" << valueName(L.Lower)
       << ", " << valueName(L.Upper) << ") step " << valueName(L.Step)
       << " role=" << roleName(L.Role);
    if (L.MaxSafeVF > 0)
      OS << " maxvf=" << L.MaxSafeVF;
    for (const auto &C : L.Carried)
      OS << " carried " << valueName(C.Phi) << "(init=" << valueName(C.Init)
         << ", next=" << valueName(C.Next) << ", out=" << valueName(C.Result)
         << ")";
    OS << " {\n";
    printRegion(L.Body, Depth + 1);
    indent(Depth);
    OS << "}\n";
  }

  void printIf(const IfStmt &S, int Depth) {
    indent(Depth);
    OS << "if " << valueName(S.Cond) << " {\n";
    printRegion(S.Then, Depth + 1);
    indent(Depth);
    OS << "} else {\n";
    printRegion(S.Else, Depth + 1);
    indent(Depth);
    OS << "}\n";
  }

  const Function &F;
  std::ostringstream &OS;
};

} // namespace

std::string Function::str() const {
  std::ostringstream OS;
  Printer(*this, OS).print();
  return OS.str();
}
