//===- bytecode/Bytecode.h - Split-layer container format ------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialized form of the split layer — the role CLI bytecode plays in
/// the paper (Sec. III-A): a standard, strongly typed, verifiable format
/// that carries the vectorized program plus every hint the online compiler
/// needs (misalignment mis/mod pairs, loop_bound pairs, version guards).
///
/// Scalar source functions serialize through the same container (they are
/// simply functions with no idioms); the ratio of the two encoded sizes is
/// the paper's "bytecode compaction" metric.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_BYTECODE_BYTECODE_H
#define VAPOR_BYTECODE_BYTECODE_H

#include "ir/Function.h"
#include "support/Status.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vapor {
namespace bytecode {

/// Serializes \p F (either level) into the container format.
std::vector<uint8_t> encode(const ir::Function &F);

/// Size in bytes \p F would encode to, without materializing the buffer.
size_t encodedSize(const ir::Function &F);

/// Decodes a function. Never aborts: malformed input yields a Bytecode-layer
/// Status whose code distinguishes bad magic/version, truncation, structural
/// garbage, trailing bytes, and IR-verifier rejection of a structurally
/// valid module. A successfully decoded function has passed the IR verifier.
Expected<ir::Function> decode(const std::vector<uint8_t> &Bytes);

/// Back-compat shim over the Status-returning decode: \returns std::nullopt
/// and fills \p Err with Status::str() on failure.
std::optional<ir::Function> decode(const std::vector<uint8_t> &Bytes,
                                   std::string &Err);

} // namespace bytecode
} // namespace vapor

#endif // VAPOR_BYTECODE_BYTECODE_H
