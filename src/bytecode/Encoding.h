//===- bytecode/Encoding.h - LEB128 byte stream helpers --------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compact little-endian byte stream primitives for the split-layer
/// bytecode container: ULEB128 / zig-zag SLEB128 integers, raw 64-bit
/// floats, and length-prefixed strings. Compactness matters because the
/// paper reports bytecode-size growth of vectorized vs scalar bytecode
/// (about 5x) — we measure the same ratio on this encoding.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_BYTECODE_ENCODING_H
#define VAPOR_BYTECODE_ENCODING_H

#include "support/Support.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace vapor {
namespace bytecode {

class ByteWriter {
public:
  void writeU64(uint64_t V) {
    do {
      uint8_t Byte = V & 0x7f;
      V >>= 7;
      if (V)
        Byte |= 0x80;
      Bytes.push_back(Byte);
    } while (V);
  }

  void writeI64(int64_t V) {
    // Zig-zag so small negative numbers stay small.
    writeU64((static_cast<uint64_t>(V) << 1) ^
             static_cast<uint64_t>(V >> 63));
  }

  void writeU8(uint8_t V) { Bytes.push_back(V); }

  void writeF64(double V) {
    uint64_t Raw;
    std::memcpy(&Raw, &V, 8);
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(Raw >> (8 * I)));
  }

  void writeString(const std::string &S) {
    writeU64(S.size());
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }
  size_t size() const { return Bytes.size(); }

private:
  std::vector<uint8_t> Bytes;
};

/// Reader with explicit error state: decoding is the one place in the
/// system that consumes external data, so it must never abort on malformed
/// input.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Data)
      : ByteReader(Data.data(), Data.size()) {}

  bool failed() const { return Failed; }
  bool atEnd() const { return P == End; }

  uint64_t readU64() {
    uint64_t V = 0;
    unsigned Shift = 0;
    while (true) {
      if (P == End || Shift >= 64)
        return fail();
      uint8_t Byte = *P++;
      V |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return V;
      Shift += 7;
    }
  }

  int64_t readI64() {
    uint64_t Z = readU64();
    return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
  }

  uint8_t readU8() {
    if (P == End)
      return static_cast<uint8_t>(fail());
    return *P++;
  }

  double readF64() {
    if (End - P < 8) {
      fail();
      return 0;
    }
    uint64_t Raw = 0;
    for (int I = 0; I < 8; ++I)
      Raw |= static_cast<uint64_t>(*P++) << (8 * I);
    double V;
    std::memcpy(&V, &Raw, 8);
    return V;
  }

  std::string readString() {
    uint64_t Len = readU64();
    if (Failed || static_cast<uint64_t>(End - P) < Len) {
      fail();
      return {};
    }
    std::string S(reinterpret_cast<const char *>(P), Len);
    P += Len;
    return S;
  }

private:
  uint64_t fail() {
    Failed = true;
    return 0;
  }

  const uint8_t *P;
  const uint8_t *End;
  bool Failed = false;
};

} // namespace bytecode
} // namespace vapor

#endif // VAPOR_BYTECODE_ENCODING_H
