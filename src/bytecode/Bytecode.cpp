//===- bytecode/Bytecode.cpp - Split-layer container format ---------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"

#include "bytecode/Encoding.h"
#include "ir/Verifier.h"
#include "support/FaultInject.h"
#include "support/Support.h"

using namespace vapor;
using namespace vapor::bytecode;
using namespace vapor::ir;

namespace {

constexpr uint32_t Magic = 0x56534d44; // "VSMD"
constexpr uint32_t Version = 1;

void encodeType(ByteWriter &W, Type T) {
  W.writeU8(static_cast<uint8_t>(T.Elem) | (T.Vector ? 0x80 : 0));
}

bool validKind(uint8_t K) {
  return K <= static_cast<uint8_t>(ScalarKind::F64);
}

/// \returns false on an out-of-range element kind: a garbage kind must be
/// rejected here, before it can reach kind-dispatched code (widening
/// tables, size computations) downstream.
bool decodeType(ByteReader &R, Type &Out) {
  uint8_t B = R.readU8();
  if (!validKind(B & 0x7f))
    return false;
  Out = Type(static_cast<ScalarKind>(B & 0x7f), (B & 0x80) != 0);
  return !R.failed();
}

void encodeRegion(ByteWriter &W, const Region &R) {
  W.writeU64(R.Nodes.size());
  for (const NodeRef &N : R.Nodes) {
    W.writeU8(static_cast<uint8_t>(N.Kind));
    W.writeU64(N.Index);
  }
}

bool decodeRegion(ByteReader &R, Region &Out) {
  uint64_t N = R.readU64();
  if (R.failed() || N > (1u << 24))
    return false;
  Out.Nodes.resize(N);
  for (uint64_t I = 0; I < N; ++I) {
    uint8_t K = R.readU8();
    if (K > static_cast<uint8_t>(NodeKind::If))
      return false;
    Out.Nodes[I].Kind = static_cast<NodeKind>(K);
    Out.Nodes[I].Index = static_cast<uint32_t>(R.readU64());
  }
  return !R.failed();
}

void encodeInstr(ByteWriter &W, const Instr &I) {
  W.writeU8(static_cast<uint8_t>(I.Op));
  encodeType(W, I.Ty);
  W.writeU64(I.Result == NoValue ? 0 : I.Result + 1);
  W.writeU64(I.Ops.size());
  for (ValueId Op : I.Ops)
    W.writeU64(Op);

  // Optional payloads are flag-gated so common instructions stay small.
  uint8_t Flags = 0;
  if (I.IntImm)
    Flags |= 1;
  if (I.IntImm2)
    Flags |= 2;
  if (I.FPImm != 0)
    Flags |= 4;
  if (I.Array != NoArray)
    Flags |= 8;
  if (I.TyParam != ScalarKind::None)
    Flags |= 16;
  if (I.Hint.Mod != 0 || I.Hint.Mis != -1 || I.Hint.IfJitAligns)
    Flags |= 32;
  if (I.Guard != GuardKind::None)
    Flags |= 64;
  W.writeU8(Flags);
  if (Flags & 1)
    W.writeI64(I.IntImm);
  if (Flags & 2)
    W.writeI64(I.IntImm2);
  if (Flags & 4)
    W.writeF64(I.FPImm);
  if (Flags & 8)
    W.writeU64(I.Array);
  if (Flags & 16)
    W.writeU8(static_cast<uint8_t>(I.TyParam));
  if (Flags & 32) {
    W.writeI64(I.Hint.Mis);
    W.writeI64(I.Hint.Mod);
    W.writeU8(I.Hint.IfJitAligns);
  }
  if (Flags & 64) {
    W.writeU8(static_cast<uint8_t>(I.Guard));
    W.writeU64(I.GuardArgs.size());
    for (uint32_t A : I.GuardArgs)
      W.writeU64(A);
  }
}

bool decodeInstr(ByteReader &R, Instr &I) {
  uint8_t Op = R.readU8();
  if (Op >= NumOpcodes)
    return false;
  I.Op = static_cast<Opcode>(Op);
  if (!decodeType(R, I.Ty))
    return false;
  uint64_t Res = R.readU64();
  I.Result = Res == 0 ? NoValue : static_cast<ValueId>(Res - 1);
  uint64_t NOps = R.readU64();
  if (R.failed() || NOps > (1u << 16))
    return false;
  I.Ops.resize(NOps);
  for (uint64_t J = 0; J < NOps; ++J)
    I.Ops[J] = static_cast<ValueId>(R.readU64());

  uint8_t Flags = R.readU8();
  if (Flags & 1)
    I.IntImm = R.readI64();
  if (Flags & 2)
    I.IntImm2 = R.readI64();
  if (Flags & 4)
    I.FPImm = R.readF64();
  if (Flags & 8)
    I.Array = static_cast<uint32_t>(R.readU64());
  if (Flags & 16) {
    uint8_t K = R.readU8();
    if (!validKind(K))
      return false;
    I.TyParam = static_cast<ScalarKind>(K);
  }
  if (Flags & 32) {
    I.Hint.Mis = static_cast<int32_t>(R.readI64());
    I.Hint.Mod = static_cast<int32_t>(R.readI64());
    I.Hint.IfJitAligns = R.readU8() != 0;
    // A hint is a claim, not an instruction: garbage values must not be
    // able to smuggle negative or absurd moduli past the consumer.
    if (I.Hint.Mis < -1 || I.Hint.Mod < 0 || I.Hint.Mod > (1 << 20) ||
        I.Hint.Mis > (1 << 20))
      return false;
  }
  if (Flags & 64) {
    uint8_t G = R.readU8();
    if (G > static_cast<uint8_t>(GuardKind::PreferOuterLoop))
      return false;
    I.Guard = static_cast<GuardKind>(G);
    uint64_t NArgs = R.readU64();
    if (R.failed() || NArgs > (1u << 16))
      return false;
    I.GuardArgs.resize(NArgs);
    for (uint64_t J = 0; J < NArgs; ++J)
      I.GuardArgs[J] = static_cast<uint32_t>(R.readU64());
  }
  return !R.failed();
}

} // namespace

std::vector<uint8_t> bytecode::encode(const Function &F) {
  ByteWriter W;
  W.writeU64(Magic);
  W.writeU64(Version);
  W.writeString(F.Name);
  W.writeU8(F.IsSplitLayer);

  W.writeU64(F.Arrays.size());
  for (const ArrayInfo &A : F.Arrays) {
    W.writeString(A.Name);
    W.writeU8(static_cast<uint8_t>(A.Elem));
    W.writeU64(A.NumElems);
    W.writeU64(A.BaseAlign);
  }

  W.writeU64(F.Values.size());
  for (const ValueInfo &V : F.Values) {
    encodeType(W, V.Ty);
    W.writeU8(static_cast<uint8_t>(V.Def));
    W.writeU64(V.A);
    W.writeU64(V.B);
    W.writeString(V.Name);
  }

  W.writeU64(F.Params.size());
  for (ValueId P : F.Params)
    W.writeU64(P);

  W.writeU64(F.Instrs.size());
  for (const Instr &I : F.Instrs)
    encodeInstr(W, I);

  W.writeU64(F.Loops.size());
  for (const LoopStmt &L : F.Loops) {
    W.writeU64(L.IndVar);
    W.writeU64(L.Lower);
    W.writeU64(L.Upper);
    W.writeU64(L.Step);
    W.writeU8(static_cast<uint8_t>(L.Role));
    W.writeI64(L.MaxSafeVF);
    W.writeU64(L.Carried.size());
    for (const auto &C : L.Carried) {
      W.writeU64(C.Phi);
      W.writeU64(C.Init);
      W.writeU64(C.Next);
      W.writeU64(C.Result);
    }
    encodeRegion(W, L.Body);
  }

  W.writeU64(F.Ifs.size());
  for (const IfStmt &S : F.Ifs) {
    W.writeU64(S.Cond);
    encodeRegion(W, S.Then);
    encodeRegion(W, S.Else);
  }

  encodeRegion(W, F.Body);
  return W.take();
}

size_t bytecode::encodedSize(const Function &F) { return encode(F).size(); }

Expected<Function> bytecode::decode(const std::vector<uint8_t> &Bytes) {
  using status::Code;
  using status::Layer;

  if (faultinject::shouldFire(faultinject::SiteClass::Decode))
    return Status::error(Code::MalformedModule, Layer::Bytecode,
                         "fault-injection: forced decode failure");

  ByteReader R(Bytes);
  // Running out of bytes dominates any site-level diagnosis: a truncated
  // stream reports TruncatedModule even when the zero a failed read
  // returned would also have flunked a structural check.
  auto Fail = [&](Code C, const std::string &Msg) -> Expected<Function> {
    if (R.failed())
      C = Code::TruncatedModule;
    return Status::error(C, Layer::Bytecode, Msg);
  };

  if (R.readU64() != Magic)
    return Fail(Code::BadMagic, "bad magic number; not a vapor bytecode module");
  if (R.readU64() != Version)
    return Fail(Code::BadVersion, "unsupported bytecode version");

  Function F(R.readString());
  F.IsSplitLayer = R.readU8() != 0;

  uint64_t NArrays = R.readU64();
  if (R.failed() || NArrays > (1u << 16))
    return Fail(Code::MalformedModule, "truncated array table");
  for (uint64_t I = 0; I < NArrays; ++I) {
    ArrayInfo A;
    A.Name = R.readString();
    uint8_t Elem = R.readU8();
    if (!validKind(Elem))
      return Fail(Code::MalformedModule, "bad element kind for array " + A.Name);
    A.Elem = static_cast<ScalarKind>(Elem);
    A.NumElems = R.readU64();
    A.BaseAlign = static_cast<uint32_t>(R.readU64());
    if (scalarSize(A.Elem) == 0 || !isPowerOf2(A.BaseAlign) ||
        A.BaseAlign < scalarSize(A.Elem))
      return Fail(Code::MalformedModule, "malformed array declaration for " + A.Name);
    if (A.NumElems == 0 || A.NumElems > (1u << 28))
      return Fail(Code::MalformedModule, "implausible element count for array " + A.Name);
    F.Arrays.push_back(std::move(A));
  }

  uint64_t NValues = R.readU64();
  if (R.failed() || NValues > (1u << 24))
    return Fail(Code::MalformedModule, "truncated value table");
  for (uint64_t I = 0; I < NValues; ++I) {
    ValueInfo V;
    if (!decodeType(R, V.Ty))
      return Fail(Code::MalformedModule, "bad type for value #" + std::to_string(I));
    uint8_t D = R.readU8();
    if (D > static_cast<uint8_t>(ValueDef::LoopResult))
      return Fail(Code::MalformedModule, "bad value definition kind");
    V.Def = static_cast<ValueDef>(D);
    V.A = static_cast<uint32_t>(R.readU64());
    V.B = static_cast<uint32_t>(R.readU64());
    V.Name = R.readString();
    F.Values.push_back(std::move(V));
  }

  uint64_t NParams = R.readU64();
  if (R.failed() || NParams > NValues)
    return Fail(Code::MalformedModule, "truncated parameter list");
  for (uint64_t I = 0; I < NParams; ++I) {
    ValueId P = static_cast<ValueId>(R.readU64());
    if (P >= F.Values.size())
      return Fail(Code::MalformedModule, "parameter references out-of-range value");
    F.Params.push_back(P);
  }

  uint64_t NInstrs = R.readU64();
  if (R.failed() || NInstrs > (1u << 24))
    return Fail(Code::MalformedModule, "truncated instruction stream");
  for (uint64_t I = 0; I < NInstrs; ++I) {
    Instr In;
    if (!decodeInstr(R, In))
      return Fail(Code::MalformedModule, "malformed instruction #" + std::to_string(I));
    F.Instrs.push_back(std::move(In));
  }

  uint64_t NLoops = R.readU64();
  if (R.failed() || NLoops > (1u << 20))
    return Fail(Code::MalformedModule, "truncated loop table");
  for (uint64_t I = 0; I < NLoops; ++I) {
    LoopStmt L;
    L.IndVar = static_cast<ValueId>(R.readU64());
    L.Lower = static_cast<ValueId>(R.readU64());
    L.Upper = static_cast<ValueId>(R.readU64());
    L.Step = static_cast<ValueId>(R.readU64());
    uint8_t Role = R.readU8();
    if (Role > static_cast<uint8_t>(LoopRole::Epilogue))
      return Fail(Code::MalformedModule, "bad loop role");
    L.Role = static_cast<LoopRole>(Role);
    L.MaxSafeVF = R.readI64();
    // A negative limit would read as "unconstrained" to every consumer
    // that checks MaxSafeVF > 0 before clamping.
    if (L.MaxSafeVF < 0)
      return Fail(Code::MalformedModule, "negative dependence-distance limit");
    uint64_t NCarried = R.readU64();
    if (R.failed() || NCarried > (1u << 16))
      return Fail(Code::MalformedModule, "truncated carried-variable list");
    for (uint64_t J = 0; J < NCarried; ++J) {
      LoopStmt::CarriedVar C;
      C.Phi = static_cast<ValueId>(R.readU64());
      C.Init = static_cast<ValueId>(R.readU64());
      C.Next = static_cast<ValueId>(R.readU64());
      C.Result = static_cast<ValueId>(R.readU64());
      L.Carried.push_back(C);
    }
    if (!decodeRegion(R, L.Body))
      return Fail(Code::MalformedModule, "malformed loop body");
    F.Loops.push_back(std::move(L));
  }

  uint64_t NIfs = R.readU64();
  if (R.failed() || NIfs > (1u << 20))
    return Fail(Code::MalformedModule, "truncated if table");
  for (uint64_t I = 0; I < NIfs; ++I) {
    IfStmt S;
    S.Cond = static_cast<ValueId>(R.readU64());
    if (!decodeRegion(R, S.Then) || !decodeRegion(R, S.Else))
      return Fail(Code::MalformedModule, "malformed if arms");
    F.Ifs.push_back(std::move(S));
  }

  if (!decodeRegion(R, F.Body))
    return Fail(Code::MalformedModule, "malformed function body");
  if (R.failed())
    return Fail(Code::TruncatedModule, "truncated module");
  if (!R.atEnd())
    return Fail(Code::TrailingGarbage, "trailing garbage after function");

  // Everything structural decoded; semantic well-formedness is the
  // verifier's job. Decoded code must never crash the consumer.
  std::vector<std::string> Diags = ir::verify(F);
  if (!Diags.empty())
    return Fail(Code::RejectedByVerifier,
                "verifier rejected decoded function: " + Diags.front());
  return F;
}

std::optional<Function> bytecode::decode(const std::vector<uint8_t> &Bytes,
                                         std::string &Err) {
  Expected<Function> R = decode(Bytes);
  if (!R.ok()) {
    Err = R.status().str();
    return std::nullopt;
  }
  return R.take();
}
