//===- vapor/Pipeline.cpp - End-to-end compilation/execution ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "vapor/Pipeline.h"

#include "bytecode/Bytecode.h"
#include "ir/Interp.h"
#include "ir/ScalarOps.h"
#include "ir/Verifier.h"
#include "native/Native.h"
#include "support/Support.h"
#include "target/VM.h"
#include "verify/Verify.h"

#include <chrono>
#include <cmath>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::target;

const char *vapor::flowName(Flow F) {
  switch (F) {
  case Flow::SplitVectorized:
    return "split-vectorized";
  case Flow::SplitScalar:
    return "split-scalar";
  case Flow::NativeVectorized:
    return "native-vectorized";
  case Flow::NativeScalar:
    return "native-scalar";
  }
  vapor_unreachable("bad flow");
}

namespace {

/// FillSink adapter for the VM's memory image.
class MemFill : public kernels::FillSink {
public:
  explicit MemFill(MemoryImage &Image) : Mem(Image) {}
  void pokeInt(uint32_t Arr, uint64_t Elem, int64_t V) override {
    Mem.pokeInt(Arr, Elem, V);
  }
  void pokeFP(uint32_t Arr, uint64_t Elem, double V) override {
    Mem.pokeFP(Arr, Elem, V);
  }

private:
  MemoryImage &Mem;
};

/// FillSink adapter for the golden evaluator.
class EvalFill : public kernels::FillSink {
public:
  explicit EvalFill(Evaluator &Ev) : E(Ev) {}
  void pokeInt(uint32_t Arr, uint64_t Elem, int64_t V) override {
    E.pokeInt(Arr, Elem, V);
  }
  void pokeFP(uint32_t Arr, uint64_t Elem, double V) override {
    E.pokeFP(Arr, Elem, V);
  }

private:
  Evaluator &E;
};

void setParams(const kernels::Kernel &K, const Function &F,
               const std::function<void(const std::string &, int64_t)> &SetI,
               const std::function<void(const std::string &, double)> &SetF) {
  for (ValueId P : F.Params) {
    const std::string &Name = F.Values[P].Name;
    if (isFloatKind(F.typeOf(P).Elem)) {
      auto It = K.FPParams.find(Name);
      SetF(Name, It == K.FPParams.end() ? 1.0 : It->second);
    } else {
      auto It = K.IntParams.find(Name);
      SetI(Name, It == K.IntParams.end() ? 0 : It->second);
    }
  }
}

} // namespace

RunOutcome vapor::runKernel(const kernels::Kernel &K, Flow F,
                            const RunOptions &O) {
  RunOutcome Out;

  // --- Offline stage ---
  bool Native = F == Flow::NativeVectorized || F == Flow::NativeScalar;
  bool Vectorize =
      F == Flow::SplitVectorized || F == Flow::NativeVectorized;

  Function Source =
      Native ? native::forceArrayAlignment(K.Source, K.ExternalArrays)
             : K.Source;

  Function Bytecode("");
  if (Vectorize) {
    vectorizer::Options VO = O.VecOpts;
    if (Native)
      VO.SLPAlignmentVersioning = false; // Era-accurate native SLP.
    auto VR = vectorizer::vectorize(Source, VO);
    Out.AnyLoopVectorized = VR.anyVectorized();
    Bytecode = std::move(VR.Output);
  } else {
    Bytecode = Source;
  }

  // The split layer is a real interchange format: encode and decode what
  // the online compiler consumes (also yields the size statistic).
  std::vector<uint8_t> Encoded = bytecode::encode(Bytecode);
  Out.BytecodeBytes = Encoded.size();
  if (!Native) {
    std::string Err;
    auto Decoded = bytecode::decode(Encoded, Err);
    if (!Decoded)
      fatalError("bytecode round trip failed for " + K.Name + ": " + Err);
    Bytecode = std::move(*Decoded);

    // The split layer's contract: what crosses it must be provably safe
    // for every lowering the online compiler may pick on this target.
    if (O.VerifyBytecode) {
      verify::VerifyOptions VO;
      VO.Targets = {O.Target};
      verify::Report VR = verify::verifyModule(Bytecode, VO);
      if (!VR.ok())
        fatalError("bytecode verification failed for " + K.Name + ":\n" +
                   VR.str());
    }
  }

  // --- Runtime layout ---
  Out.Mem = std::make_unique<MemoryImage>();
  for (uint32_t A = 0; A < Bytecode.Arrays.size(); ++A) {
    const ArrayInfo &AI = Bytecode.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    Out.Mem->addArray(AI, External ? O.ExternalMisalign : 0);
  }

  // --- What the compiler knows about the runtime ---
  jit::RuntimeInfo RT;
  for (uint32_t A = 0; A < Bytecode.Arrays.size(); ++A) {
    const ArrayInfo &AI = Bytecode.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    // The JIT (and the native compiler for its own layout) knows the
    // bases of the arrays the runtime allocates; external buffers arrive
    // through pointers whose value is unknown at compile time.
    if (External)
      RT.Arrays.push_back({false, 0});
    else
      RT.Arrays.push_back({true, Out.Mem->base(A)});
  }

  // --- Online stage (timed: the paper's JIT-compile-time metric) ---
  jit::Options JO;
  JO.CompilerTier = Native ? jit::Tier::Strong : O.Tier;
  JO.FoldAddressing = O.FoldAddressing;
  JO.PromoteAccumulators = O.PromoteAccumulators;
  auto T0 = std::chrono::steady_clock::now();
  auto CR = jit::compile(Bytecode, O.Target, RT, JO);
  auto T1 = std::chrono::steady_clock::now();
  Out.CompileMicros =
      std::chrono::duration<double, std::micro>(T1 - T0).count();
  Out.Scalarized = CR.Scalarized;
  Out.Code = std::move(CR.Code);
  Out.Iaca = analyzeVectorLoop(Out.Code, O.Target);

  // --- Workload and execution ---
  MemFill Fill(*Out.Mem);
  K.fill(Fill);

  VM Machine(Out.Code, O.Target, *Out.Mem,
             JO.CompilerTier == jit::Tier::Weak);
  setParams(K, Bytecode,
            [&](const std::string &N, int64_t V) {
              Machine.setParamInt(N, V);
            },
            [&](const std::string &N, double V) {
              Machine.setParamFP(N, V);
            });
  Machine.run();
  Out.Cycles = Machine.cycles();
  return Out;
}

bool vapor::checkAgainstGolden(const kernels::Kernel &K,
                               const RunOutcome &Out, std::string &Err) {
  Evaluator E(K.Source, {});
  E.allocAllArrays();
  EvalFill Fill(E);
  K.fill(Fill);
  setParams(K, K.Source,
            [&](const std::string &N, int64_t V) { E.setParamInt(N, V); },
            [&](const std::string &N, double V) { E.setParamFP(N, V); });
  E.run();

  for (uint32_t A = 0; A < K.Source.Arrays.size(); ++A) {
    const ArrayInfo &AI = K.Source.Arrays[A];
    for (uint64_t I = 0; I < AI.NumElems; ++I) {
      if (isFloatKind(AI.Elem)) {
        double Want = E.peekFP(A, I);
        double Got = Out.Mem->peekFP(A, I);
        double Tol = K.Tolerance * std::max(1.0, std::fabs(Want));
        if (std::fabs(Want - Got) > Tol &&
            !(std::isnan(Want) && std::isnan(Got))) {
          Err = K.Name + ": " + AI.Name + "[" + std::to_string(I) +
                "] = " + std::to_string(Got) + ", golden " +
                std::to_string(Want);
          return false;
        }
      } else {
        int64_t Want = E.peekInt(A, I);
        int64_t Got = Out.Mem->peekInt(A, I);
        if (Want != Got) {
          Err = K.Name + ": " + AI.Name + "[" + std::to_string(I) +
                "] = " + std::to_string(Got) + ", golden " +
                std::to_string(Want);
          return false;
        }
      }
    }
  }
  return true;
}
