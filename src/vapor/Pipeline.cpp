//===- vapor/Pipeline.cpp - End-to-end compilation/execution ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "vapor/Pipeline.h"

#include "bytecode/Bytecode.h"
#include "ir/Interp.h"
#include "ir/ScalarOps.h"
#include "ir/Verifier.h"
#include "mono/Mono.h"
#include "support/Support.h"
#include "target/VM.h"
#include "vapor/Executor.h"
#include "vapor/FillAdapters.h"

#include <chrono>
#include <cmath>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::target;

const char *vapor::flowName(Flow F) {
  switch (F) {
  case Flow::SplitVectorized:
    return "split-vectorized";
  case Flow::SplitScalar:
    return "split-scalar";
  case Flow::NativeVectorized:
    return "native-vectorized";
  case Flow::NativeScalar:
    return "native-scalar";
  }
  vapor_unreachable("bad flow");
}

const char *vapor::tierName(ExecTier T) {
  switch (T) {
  case ExecTier::Native:
    return "native";
  case ExecTier::Vectorized:
    return "vectorized";
  case ExecTier::ScalarJit:
    return "scalar-jit";
  case ExecTier::ScalarBytecode:
    return "scalar-bytecode";
  case ExecTier::Interpreter:
    return "interpreter";
  }
  vapor_unreachable("bad tier");
}

/// The native flows: trusted offline compilation with full knowledge, no
/// interchange format, hard asserts. The split flows take the
/// fault-tolerant path through the Executor's degradation chain.
static RunOutcome runNative(const kernels::Kernel &K, Flow F,
                            const RunOptions &O) {
  RunOutcome Out;

  // --- Offline stage ---
  Function Source = mono::forceArrayAlignment(K.Source, K.ExternalArrays);

  Function Compiled("");
  if (F == Flow::NativeVectorized) {
    vectorizer::Options VO = O.VecOpts;
    VO.SLPAlignmentVersioning = false; // Era-accurate native SLP.
    auto VR = vectorizer::vectorize(Source, VO);
    Out.AnyLoopVectorized = VR.anyVectorized();
    Compiled = std::move(VR.Output);
  } else {
    Compiled = Source;
  }

  // Size statistic only: native flows don't cross the interchange format.
  Out.BytecodeBytes = bytecode::encode(Compiled).size();

  // --- Runtime layout ---
  Out.Mem = std::make_unique<MemoryImage>();
  for (uint32_t A = 0; A < Compiled.Arrays.size(); ++A) {
    const ArrayInfo &AI = Compiled.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    Out.Mem->addArray(AI, External ? O.ExternalMisalign : 0);
  }

  // --- What the compiler knows about the runtime ---
  jit::RuntimeInfo RT;
  for (uint32_t A = 0; A < Compiled.Arrays.size(); ++A) {
    const ArrayInfo &AI = Compiled.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    if (External)
      RT.Arrays.push_back({false, 0});
    else
      RT.Arrays.push_back({true, Out.Mem->base(A)});
  }

  // --- Codegen (timed for parity with the split flows) ---
  jit::Options JO;
  JO.CompilerTier = jit::Tier::Strong;
  JO.FoldAddressing = O.FoldAddressing;
  JO.PromoteAccumulators = O.PromoteAccumulators;
  auto T0 = std::chrono::steady_clock::now();
  auto CR = jit::compile(Compiled, O.Target, RT, JO);
  auto T1 = std::chrono::steady_clock::now();
  Out.CompileMicros =
      std::chrono::duration<double, std::micro>(T1 - T0).count();
  Out.Scalarized = CR.Scalarized;
  Out.Code = std::move(CR.Code);
  Out.Iaca = analyzeVectorLoop(Out.Code, O.Target);

  // --- Workload and execution (a native trap is a hard abort) ---
  detail::MemFill Fill(*Out.Mem);
  K.fill(Fill);

  VM Machine(Out.Code, O.Target, *Out.Mem, /*Weak=*/false);
  detail::setParams(
      K, Compiled,
      [&](const std::string &N, int64_t V) { Machine.setParamInt(N, V); },
      [&](const std::string &N, double V) { Machine.setParamFP(N, V); });
  Machine.run();
  Out.Cycles = Machine.cycles();
  Out.Tier = ExecTier::Vectorized;
  return Out;
}

RunOutcome vapor::runKernel(const kernels::Kernel &K, Flow F,
                            const RunOptions &O) {
  switch (F) {
  case Flow::SplitVectorized:
    return Executor(K, O).run(O.UseNative ? ExecTier::Native
                                          : ExecTier::Vectorized);
  case Flow::SplitScalar:
    return Executor(K, O).run(ExecTier::ScalarBytecode);
  case Flow::NativeVectorized:
  case Flow::NativeScalar:
    return runNative(K, F, O);
  }
  vapor_unreachable("bad flow");
}

bool vapor::checkAgainstGolden(const kernels::Kernel &K,
                               const RunOutcome &Out, std::string &Err) {
  Evaluator E(K.Source, {});
  E.allocAllArrays();
  detail::EvalFill Fill(E);
  K.fill(Fill);
  detail::setParams(
      K, K.Source,
      [&](const std::string &N, int64_t V) { E.setParamInt(N, V); },
      [&](const std::string &N, double V) { E.setParamFP(N, V); });
  E.run();

  // Name the producing tier in every mismatch so degraded runs can't
  // masquerade as vectorized ones in failure reports.
  const std::string Where =
      K.Name + " [tier " + tierName(Out.Tier) + "]: ";
  for (uint32_t A = 0; A < K.Source.Arrays.size(); ++A) {
    const ArrayInfo &AI = K.Source.Arrays[A];
    for (uint64_t I = 0; I < AI.NumElems; ++I) {
      if (isFloatKind(AI.Elem)) {
        double Want = E.peekFP(A, I);
        double Got = Out.Mem->peekFP(A, I);
        double Tol = K.Tolerance * std::max(1.0, std::fabs(Want));
        if (std::fabs(Want - Got) > Tol &&
            !(std::isnan(Want) && std::isnan(Got))) {
          Err = Where + AI.Name + "[" + std::to_string(I) +
                "] = " + std::to_string(Got) + ", golden " +
                std::to_string(Want);
          return false;
        }
      } else {
        int64_t Want = E.peekInt(A, I);
        int64_t Got = Out.Mem->peekInt(A, I);
        if (Want != Got) {
          Err = Where + AI.Name + "[" + std::to_string(I) +
                "] = " + std::to_string(Got) + ", golden " +
                std::to_string(Want);
          return false;
        }
      }
    }
  }
  return true;
}
