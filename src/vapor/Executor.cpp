//===- vapor/Executor.cpp - Fault-tolerant tiered execution -----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "vapor/Executor.h"

#include "bytecode/Bytecode.h"
#include "ir/Interp.h"
#include "support/Support.h"
#include "target/VM.h"
#include "vapor/FillAdapters.h"
#include "verify/Verify.h"

#include <chrono>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::status;
using namespace vapor::target;

RunOutcome Executor::run(ExecTier Entry) {
  RunOutcome Out;
  ExecTier T = Entry;
  while (true) {
    switch (T) {
    case ExecTier::Vectorized: {
      Status St = attemptVectorized(Out);
      if (St.ok()) {
        Out.Tier = ExecTier::Vectorized;
        return Out;
      }
      Out.Demotions.push_back(St);
      if (St.layer() == Layer::Verify) {
        T = ExecTier::ScalarJit; // Forced-scalar code is safe to run.
      } else if (St.layer() == Layer::Vm) {
        ++Out.Retries; // Deoptimize: recompile scalar after the trap.
        T = ExecTier::ScalarJit;
      } else {
        // Decode failures leave no module to re-JIT; JIT failures demote
        // past the vector bytecode entirely.
        T = ExecTier::ScalarBytecode;
      }
      break;
    }
    case ExecTier::ScalarJit: {
      if (!HaveVecModule) { // Nothing decoded to scalarize.
        T = ExecTier::ScalarBytecode;
        break;
      }
      Status St = attemptScalarJit(Out);
      if (St.ok()) {
        Out.Tier = ExecTier::ScalarJit;
        return Out;
      }
      Out.Demotions.push_back(St);
      T = ExecTier::ScalarBytecode;
      break;
    }
    case ExecTier::ScalarBytecode: {
      Status St = attemptScalarBytecode(Out);
      if (St.ok()) {
        Out.Tier = ExecTier::ScalarBytecode;
        return Out;
      }
      Out.Demotions.push_back(St);
      T = ExecTier::Interpreter;
      break;
    }
    case ExecTier::Interpreter:
      runInterpreter(Out);
      Out.Tier = ExecTier::Interpreter;
      return Out;
    }
  }
}

Status Executor::attemptVectorized(RunOutcome &Out) {
  // --- Offline stage (trusted: keeps its internal asserts) ---
  auto VR = vectorizer::vectorize(K.Source, O.VecOpts);
  Out.AnyLoopVectorized = VR.anyVectorized();

  // The split layer is a real interchange format: encode and decode what
  // the online compiler consumes (also yields the size statistic).
  std::vector<uint8_t> Encoded = bytecode::encode(VR.Output);
  Out.BytecodeBytes = Encoded.size();
  auto Decoded = bytecode::decode(Encoded);
  if (!Decoded)
    return Decoded.status();
  VecModule = Decoded.take();
  HaveVecModule = true;

  // The split layer's contract: what crosses it must be provably safe
  // for every lowering the online compiler may pick on this target.
  if (O.VerifyBytecode) {
    verify::VerifyOptions VO;
    VO.Targets = {O.Target};
    verify::Report Rep = verify::verifyModule(VecModule, VO);
    if (!Rep.ok())
      return Status::error(Code::VerificationFailed, Layer::Verify,
                           "bytecode verification failed for " + K.Name +
                               ":\n" + Rep.str());
  }

  return runModule(Out, VecModule, /*ForceScalarize=*/false);
}

Status Executor::attemptScalarJit(RunOutcome &Out) {
  return runModule(Out, VecModule, /*ForceScalarize=*/true);
}

Status Executor::attemptScalarBytecode(RunOutcome &Out) {
  std::vector<uint8_t> Encoded = bytecode::encode(K.Source);
  Out.BytecodeBytes = Encoded.size();
  auto Decoded = bytecode::decode(Encoded);
  if (!Decoded)
    return Decoded.status();
  ir::Function ScalarModule = Decoded.take();

  if (O.VerifyBytecode) {
    verify::VerifyOptions VO;
    VO.Targets = {O.Target};
    verify::Report Rep = verify::verifyModule(ScalarModule, VO);
    if (!Rep.ok())
      return Status::error(Code::VerificationFailed, Layer::Verify,
                           "scalar bytecode verification failed for " +
                               K.Name + ":\n" + Rep.str());
  }

  return runModule(Out, ScalarModule, /*ForceScalarize=*/false);
}

Status Executor::runModule(RunOutcome &Out, const ir::Function &Module,
                           bool ForceScalarize) {
  // --- Runtime layout: a fresh image per attempt, because a trapped run
  // may have partially written arrays. ---
  Out.Mem = std::make_unique<MemoryImage>();
  for (uint32_t A = 0; A < Module.Arrays.size(); ++A) {
    const ArrayInfo &AI = Module.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    Out.Mem->addArray(AI, External ? O.ExternalMisalign : 0);
  }

  // --- What the compiler knows about the runtime ---
  jit::RuntimeInfo RT;
  for (uint32_t A = 0; A < Module.Arrays.size(); ++A) {
    const ArrayInfo &AI = Module.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    if (External)
      RT.Arrays.push_back({false, 0});
    else
      RT.Arrays.push_back({true, Out.Mem->base(A)});
  }

  // --- Online stage (timed; CompileMicros sums across retries) ---
  jit::Options JO;
  JO.CompilerTier = O.Tier;
  JO.FoldAddressing = O.FoldAddressing;
  JO.PromoteAccumulators = O.PromoteAccumulators;
  JO.ForceScalarize = ForceScalarize;
  auto T0 = std::chrono::steady_clock::now();
  auto CR = jit::compileChecked(Module, O.Target, RT, JO);
  auto T1 = std::chrono::steady_clock::now();
  Out.CompileMicros +=
      std::chrono::duration<double, std::micro>(T1 - T0).count();
  if (!CR)
    return CR.status();
  jit::CompileResult R = CR.take();
  Out.Scalarized = R.Scalarized;
  Out.Code = std::move(R.Code);
  Out.Iaca = analyzeVectorLoop(Out.Code, O.Target);

  // --- Workload and execution ---
  detail::MemFill Fill(*Out.Mem);
  K.fill(Fill);

  VM Machine(Out.Code, O.Target, *Out.Mem,
             JO.CompilerTier == jit::Tier::Weak);
  Machine.setTrapRecording(true);
  detail::setParams(
      K, Module,
      [&](const std::string &N, int64_t V) { Machine.setParamInt(N, V); },
      [&](const std::string &N, double V) { Machine.setParamFP(N, V); });
  Status St = Machine.run();
  if (!St.ok())
    return St;
  Out.Cycles = Machine.cycles();
  return Status::okStatus();
}

void Executor::runInterpreter(RunOutcome &Out) {
  Evaluator E(K.Source, {});
  E.allocAllArrays();
  detail::EvalFill Fill(E);
  K.fill(Fill);
  detail::setParams(
      K, K.Source,
      [&](const std::string &N, int64_t V) { E.setParamInt(N, V); },
      [&](const std::string &N, double V) { E.setParamFP(N, V); });
  E.run();

  // Materialize the evaluator's results into a fresh memory image so
  // checkAgainstGolden inspects every tier the same way.
  Out.Mem = std::make_unique<MemoryImage>();
  for (uint32_t A = 0; A < K.Source.Arrays.size(); ++A) {
    const ArrayInfo &AI = K.Source.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    Out.Mem->addArray(AI, External ? O.ExternalMisalign : 0);
  }
  for (uint32_t A = 0; A < K.Source.Arrays.size(); ++A) {
    const ArrayInfo &AI = K.Source.Arrays[A];
    for (uint64_t I = 0; I < AI.NumElems; ++I) {
      if (isFloatKind(AI.Elem))
        Out.Mem->pokeFP(A, I, E.peekFP(A, I));
      else
        Out.Mem->pokeInt(A, I, E.peekInt(A, I));
    }
  }

  // No machine code ran: cost is the evaluator's dynamic-op count (a
  // cycle proxy), and the JIT consumed no bytecode.
  Out.Cycles = E.dynamicOps();
  Out.Scalarized = true;
  Out.BytecodeBytes = 0;
  Out.Code = MFunction();
  Out.Iaca = IacaReport();
}
