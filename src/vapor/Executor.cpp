//===- vapor/Executor.cpp - Fault-tolerant tiered execution -----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "vapor/Executor.h"

#include "bytecode/Bytecode.h"
#include "ir/Interp.h"
#include "jit/CodeCache.h"
#include "jit/Elision.h"
#include "jit/Tiering.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "support/Support.h"
#include "target/VM.h"
#include "vapor/FillAdapters.h"
#include "verify/Verify.h"

#include <chrono>
#include <map>
#include <set>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::status;
using namespace vapor::target;

namespace {

/// Every demoting Status becomes one trace event and one counter tick:
/// the degradation chain is exactly the thing a trace reader wants to see.
void recordDemotion(const kernels::Kernel &K, const RunOptions &O,
                    const Status &St, ExecTier From, ExecTier To) {
  static obs::Counter Demotions("executor.demotions");
  Demotions.add(1);
  if (!obs::tracingActive())
    return;
  obs::event("executor", "demote",
             {{"kernel", obs::argStr(K.Name)},
              {"target", obs::argStr(O.Target.Name)},
              {"from", obs::argStr(tierName(From))},
              {"to", obs::argStr(tierName(To))},
              {"status", obs::argStr(St.str())}});
}

} // namespace

RunOutcome Executor::run(ExecTier Entry) {
  if (O.Tiered)
    return runTiered(Entry);
  return runChain(Entry);
}

namespace {

/// One counter per lattice tier so "tier-at-execution" is readable off
/// a counter snapshot without parsing trace args.
void countExecTier(ExecTier T) {
  static obs::Counter Native("tiering.exec.native");
  static obs::Counter Vectorized("tiering.exec.vectorized");
  static obs::Counter ScalarJit("tiering.exec.scalar_jit");
  static obs::Counter ScalarBytecode("tiering.exec.scalar_bytecode");
  static obs::Counter Interp("tiering.exec.interpreter");
  switch (T) {
  case ExecTier::Native:
    Native.add(1);
    break;
  case ExecTier::Vectorized:
    Vectorized.add(1);
    break;
  case ExecTier::ScalarJit:
    ScalarJit.add(1);
    break;
  case ExecTier::ScalarBytecode:
    ScalarBytecode.add(1);
    break;
  case ExecTier::Interpreter:
    Interp.add(1);
    break;
  }
}

} // namespace

uint64_t Executor::tieringKey() {
  uint64_t H;
  if (VecModule) {
    // Server mode: the decoded module IS the function; its structural
    // hash is also what the cache keys compiles under.
    if (!VecModuleHash)
      VecModuleHash = ir::hashFunction(*VecModule);
    H = VecModuleHash;
  } else {
    // Kernel mode: names are unique in the registry and hashing one is
    // O(bytes-of-name), which keeps the per-invocation steady-state
    // cost of tiering negligible.
    H = jit::cache::hashBytes(K.Name.data(), K.Name.size());
  }
  H = jit::cache::hashCombine(H, jit::cache::hashTarget(O.Target));
  H = jit::cache::hashCombine(H, O.ExternalMisalign);
  uint64_t Flags = (O.UseNative ? 1u : 0u) | (FailClosed ? 2u : 0u) |
                   (O.FoldAddressing ? 4u : 0u) |
                   (O.PromoteAccumulators ? 8u : 0u) |
                   (O.FuseOps ? 16u : 0u) | (O.VerifyBytecode ? 32u : 0u) |
                   (O.UseCodeCache ? 64u : 0u) |
                   (static_cast<uint64_t>(O.Tier) << 8) |
                   (static_cast<uint64_t>(O.Elide) << 16);
  H = jit::cache::hashCombine(H, Flags);
  return jit::cache::hashCombine(H, O.TieringSalt);
}

RunOutcome Executor::runTiered(ExecTier Eager) {
  namespace tiering = jit::tiering;
  const uint8_t EagerV = static_cast<uint8_t>(Eager);
  // Fail-closed flows must not touch the checkpoint-free interpreter or
  // the (source-re-encoding) scalar-bytecode tier; their cheapest tier
  // is the forced-scalar JIT, which also skips the verify gate -- the
  // scalar lowering emits no checked vector access a bytecode lie could
  // trap, so it is safe-by-construction like the verify-fail demotion
  // edge. Trusted kernel flows start all the way down at the golden
  // interpreter: zero compilation before the first result.
  const uint8_t ColdV =
      static_cast<uint8_t>(FailClosed ? ExecTier::ScalarJit
                                      : ExecTier::Interpreter);
  if (EagerV >= ColdV)
    return runChain(Eager); // Nothing below the requested tier to tier.

  const uint64_t Key = tieringKey();
  tiering::Decision D = tiering::engine().onInvoke(Key, EagerV, ColdV);

  if (D.ShouldCompile) {
    // The background job is a fresh Executor over VALUE copies (this
    // one borrows K and O by reference and dies with the caller). It
    // runs the promotion target once with tiering off; success means
    // every artifact of that tier now sits in the content-addressed
    // cache under the exact keys the next foreground invocation will
    // look up -- placement is deterministic (MemoryImage::AddrBase), so
    // the swap-in is a warm hit, not a handoff.
    RunOptions O2 = O;
    O2.Tiered = false;
    kernels::Kernel K2 = K;
    std::shared_ptr<const ir::Function> Vec = VecModule;
    size_t PDB = PreDecodedBytes;
    bool FC = FailClosed;
    ExecTier CT = static_cast<ExecTier>(D.CompileTier);
    std::string Tenant = jit::cache::currentTenant();
    tiering::engine().enqueueCompile(
        Key, D.EntryTier, D.CompileTier,
        [K2, O2, Vec, PDB, FC, CT, Tenant]() -> bool {
          jit::cache::ScopedTenant Scope(Tenant);
          RunOutcome BG = FC ? Executor(K2, O2, Vec, PDB).runChain(CT)
                             : Executor(K2, O2).runChain(CT);
          return BG.Terminal.ok() &&
                 static_cast<uint8_t>(BG.Tier) <= static_cast<uint8_t>(CT);
        });
  }

  RunOutcome Out = runChain(static_cast<ExecTier>(D.EntryTier));
  countExecTier(Out.Tier);

  // Demotions feed back as pins so the engine never promotes into a
  // failing tier again (until cache invalidation). Deadline exhaustion
  // is exempt: the budget, not the tier, stopped the run.
  const bool Deadline =
      !Out.Terminal.ok() && Out.Terminal.code() == Code::DeadlineExceeded;
  const bool FinalFailed = !Out.Terminal.ok() && !Deadline;
  const bool TierFailure =
      !Out.Demotions.empty() || Out.Retries > 0 || FinalFailed;
  if (TierFailure) {
    uint8_t Pin = static_cast<uint8_t>(Out.Tier);
    if (FinalFailed)
      ++Pin; // Even the tier it ended on failed.
    tiering::engine().onOutcome(Key, Pin);
  }
  return Out;
}

RunOutcome Executor::runChain(ExecTier Entry) {
  obs::Span S("executor", "run");
  S.arg("kernel", K.Name);
  S.arg("target", O.Target.Name);
  RunOutcome Out;
  Out.EntryTier = Entry;
  ExecTier T = Entry;
  while (true) {
    switch (T) {
    case ExecTier::Native: {
      Status St = attemptNative(Out);
      if (St.ok()) {
        Out.Tier = ExecTier::Native;
        break;
      }
      if (St.code() == Code::DeadlineExceeded) {
        // Terminal, never a demotion: the fast tier already spent the
        // whole budget, so a slower tier cannot meet the deadline.
        Out.Tier = ExecTier::Native;
        Out.Terminal = St;
        break;
      }
      // Every native failure -- unsupported host, page allocation,
      // runtime trap -- demotes to the VM running the exact same
      // lowering. Not a Retry: the vector code is not suspect, only its
      // native binding, so no deoptimizing recompile happens.
      Out.Demotions.push_back(St);
      recordDemotion(K, O, St, T, ExecTier::Vectorized);
      T = ExecTier::Vectorized;
      continue;
    }
    case ExecTier::Vectorized: {
      Status St = attemptVectorized(Out);
      if (St.ok()) {
        Out.Tier = ExecTier::Vectorized;
        break;
      }
      if (St.code() == Code::DeadlineExceeded) {
        Out.Tier = ExecTier::Vectorized;
        Out.Terminal = St;
        break;
      }
      ExecTier Next;
      if (St.layer() == Layer::Verify) {
        Next = ExecTier::ScalarJit; // Forced-scalar code is safe to run.
      } else if (St.layer() == Layer::Vm) {
        ++Out.Retries; // Deoptimize: recompile scalar after the trap.
        Next = ExecTier::ScalarJit;
      } else if (FailClosed) {
        // Server mode has no ScalarBytecode tier (no trusted source to
        // re-encode); a lowering failure recovers on the forced-scalar
        // re-JIT of the same pre-decoded module instead. Decode cannot
        // fail here -- the module arrived decoded.
        Next = ExecTier::ScalarJit;
      } else {
        // Decode failures leave no module to re-JIT; JIT failures demote
        // past the vector bytecode entirely.
        Next = ExecTier::ScalarBytecode;
      }
      Out.Demotions.push_back(St);
      recordDemotion(K, O, St, T, Next);
      T = Next;
      continue;
    }
    case ExecTier::ScalarJit: {
      if (!VecModule) { // Nothing decoded to scalarize.
        T = ExecTier::ScalarBytecode;
        continue;
      }
      Status St = attemptScalarJit(Out);
      if (St.ok()) {
        Out.Tier = ExecTier::ScalarJit;
        break;
      }
      if (FailClosed || St.code() == Code::DeadlineExceeded) {
        // Fail closed: past ScalarJit lie only tiers that re-derive
        // from trusted kernel source or run the checkpoint-free
        // interpreter -- neither may see tenant-supplied input.
        Out.Tier = ExecTier::ScalarJit;
        Out.Terminal = St;
        break;
      }
      Out.Demotions.push_back(St);
      recordDemotion(K, O, St, T, ExecTier::ScalarBytecode);
      T = ExecTier::ScalarBytecode;
      continue;
    }
    case ExecTier::ScalarBytecode: {
      Status St = attemptScalarBytecode(Out);
      if (St.ok()) {
        Out.Tier = ExecTier::ScalarBytecode;
        break;
      }
      if (St.code() == Code::DeadlineExceeded) {
        Out.Tier = ExecTier::ScalarBytecode;
        Out.Terminal = St;
        break;
      }
      Out.Demotions.push_back(St);
      recordDemotion(K, O, St, T, ExecTier::Interpreter);
      T = ExecTier::Interpreter;
      continue;
    }
    case ExecTier::Interpreter:
      runInterpreter(Out);
      Out.Tier = ExecTier::Interpreter;
      break;
    }
    static obs::Counter Runs("executor.runs");
    Runs.add(1);
    if (!Out.Terminal.ok()) {
      static obs::Counter Terminals("executor.terminal");
      Terminals.add(1);
      S.arg("terminal", Out.Terminal.str());
    }
    S.arg("tier", tierName(Out.Tier));
    S.arg("demotions", static_cast<uint64_t>(Out.Demotions.size()));
    S.arg("retries", static_cast<uint64_t>(Out.Retries));
    S.arg("cycles", Out.Cycles);
    return Out;
  }
}

Status Executor::prepareVectorized(RunOutcome &Out) {
  if (FailClosed) {
    // Server mode: the module arrived pre-decoded (and pre-vectorized),
    // so there is no offline stage and no interchange round trip to run
    // here -- only the verify gate stands between the wire bytes and
    // the JIT.
    Out.BytecodeBytes = PreDecodedBytes;
    const bool Cached = O.UseCodeCache && jit::cache::enabled();
    if (Cached && !VecModuleHash)
      VecModuleHash = ir::hashFunction(*VecModule);
    if (O.VerifyBytecode)
      return verifyCached(*VecModule, VecModuleHash, Cached,
                          "bytecode verification failed for ");
    return Status::okStatus();
  }

  // --- Offline stage (trusted: keeps its internal asserts) ---
  auto VR = vectorizer::vectorize(K.Source, O.VecOpts);
  Out.AnyLoopVectorized = VR.anyVectorized();
  Out.LoopDecisions = VR.Loops;

  // The split layer is a real interchange format: encode and decode what
  // the online compiler consumes (also yields the size statistic). The
  // decode and verification verdicts are pure functions of the encoded
  // bytes (and target), so sweep re-runs take them from the cache.
  std::vector<uint8_t> Encoded = bytecode::encode(VR.Output);
  Out.BytecodeBytes = Encoded.size();
  if (obs::tracingActive())
    obs::event("bytecode", "encode",
               {{"kernel", obs::argStr(K.Name)},
                {"bytes", obs::argStr(static_cast<uint64_t>(Encoded.size()))}});
  const bool Cached = O.UseCodeCache && jit::cache::enabled();
  uint64_t BytesHash = 0;
  std::shared_ptr<const ir::Function> Module;
  if (Cached) {
    BytesHash = jit::cache::hashBytes(Encoded.data(), Encoded.size());
    Module = jit::cache::findModule(BytesHash);
  }
  if (!Module) {
    auto Decoded = bytecode::decode(Encoded);
    if (!Decoded)
      return Decoded.status();
    Module = Cached
                 ? jit::cache::putModule(BytesHash, Decoded.take(),
                                         Encoded.size())
                 : std::make_shared<const ir::Function>(Decoded.take());
  }
  VecModule = Module;
  VecModuleHash = Cached ? ir::hashFunction(*VecModule) : 0;

  // The split layer's contract: what crosses it must be provably safe
  // for every lowering the online compiler may pick on this target.
  if (O.VerifyBytecode) {
    Status St = verifyCached(*VecModule, VecModuleHash, Cached,
                             "bytecode verification failed for ");
    if (!St.ok())
      return St;
  }

  return Status::okStatus();
}

Status Executor::attemptNative(RunOutcome &Out) {
  // One gate for the whole tier: the encoding set (normally the host
  // CPUID probe, a forced subset in tests) must clear the x86-64 + SSE2
  // baseline. Jit-layer because it is a lowering capability, and the
  // demotion edge lands on the tier that can always lower: the VM.
  if (!codegen::supported(O.Native.Features))
    return Status::error(
        Code::UnsupportedIdiom, Layer::Jit,
        "native tier unsupported on this host (needs x86-64 + sse2; have '" +
            O.Native.Features.str() + "')");
  Status St = prepareVectorized(Out);
  if (!St.ok())
    return St;
  return runModule(Out, *VecModule, VecModuleHash, /*ForceScalarize=*/false,
                   RunEngine::Native);
}

Status Executor::attemptVectorized(RunOutcome &Out) {
  Status St = prepareVectorized(Out);
  if (!St.ok())
    return St;
  return runModule(Out, *VecModule, VecModuleHash, /*ForceScalarize=*/false);
}

Status Executor::attemptScalarJit(RunOutcome &Out) {
  return runModule(Out, *VecModule, VecModuleHash, /*ForceScalarize=*/true);
}

Status Executor::attemptScalarBytecode(RunOutcome &Out) {
  std::vector<uint8_t> Encoded = bytecode::encode(K.Source);
  Out.BytecodeBytes = Encoded.size();
  const bool Cached = O.UseCodeCache && jit::cache::enabled();
  uint64_t BytesHash = 0;
  std::shared_ptr<const ir::Function> Module;
  if (Cached) {
    BytesHash = jit::cache::hashBytes(Encoded.data(), Encoded.size());
    Module = jit::cache::findModule(BytesHash);
  }
  if (!Module) {
    auto Decoded = bytecode::decode(Encoded);
    if (!Decoded)
      return Decoded.status();
    Module = Cached
                 ? jit::cache::putModule(BytesHash, Decoded.take(),
                                         Encoded.size())
                 : std::make_shared<const ir::Function>(Decoded.take());
  }
  uint64_t FnHash = Cached ? ir::hashFunction(*Module) : 0;

  if (O.VerifyBytecode) {
    Status St = verifyCached(*Module, FnHash, Cached,
                             "scalar bytecode verification failed for ");
    if (!St.ok())
      return St;
  }

  return runModule(Out, *Module, FnHash, /*ForceScalarize=*/false);
}

Status Executor::verifyCached(const ir::Function &Module, uint64_t FnHash,
                              bool Cached, const char *FailPrefix) {
  Cert.reset(); // Never let a previous module's certificate leak forward.
  uint64_t TargetHash = Cached ? jit::cache::hashTarget(O.Target) : 0;
  std::optional<jit::cache::VerifyResult> VRes;
  if (Cached)
    VRes = jit::cache::findVerify(FnHash, TargetHash);
  if (!VRes) {
    obs::Span S("verify", "verifyModule");
    S.arg("kernel", K.Name);
    S.arg("target", O.Target.Name);
    verify::VerifyOptions VO;
    VO.Targets = {O.Target};
    verify::Report Rep = verify::verifyModule(Module, VO);
    static obs::Counter Proved("verify.obligations_proved");
    static obs::Counter Failed("verify.obligations_failed");
    Proved.add(Rep.ObligationsProved);
    Failed.add(Rep.ObligationsFailed);
    S.arg("ok", Rep.ok());
    S.arg("obligations_proved",
          static_cast<uint64_t>(Rep.ObligationsProved));
    S.arg("obligations_failed",
          static_cast<uint64_t>(Rep.ObligationsFailed));
    VRes = jit::cache::VerifyResult{Rep.ok(), Rep.ok() ? "" : Rep.str(), {}};
    // One target verified => at most one certificate.
    if (!Rep.Certificates.empty())
      VRes->Cert = std::make_shared<const analysis::SafetyCertificate>(
          std::move(Rep.Certificates.front()));
    if (Cached)
      jit::cache::putVerify(FnHash, TargetHash, *VRes);
  }
  Cert = VRes->Cert;
  if (!VRes->Ok)
    return Status::error(Code::VerificationFailed, Layer::Verify,
                         FailPrefix + K.Name + ":\n" + VRes->Report);
  return Status::okStatus();
}

Status Executor::runModule(RunOutcome &Out, const ir::Function &Module,
                           uint64_t FnHash, bool ForceScalarize,
                           RunEngine Engine) {
  // --- Runtime layout: a fresh image per attempt, because a trapped run
  // may have partially written arrays. ---
  Out.Mem = std::make_unique<MemoryImage>();
  for (uint32_t A = 0; A < Module.Arrays.size(); ++A) {
    const ArrayInfo &AI = Module.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    Out.Mem->addArray(AI, External ? O.ExternalMisalign : 0);
  }

  // --- What the compiler knows about the runtime ---
  jit::RuntimeInfo RT;
  for (uint32_t A = 0; A < Module.Arrays.size(); ++A) {
    const ArrayInfo &AI = Module.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    if (External)
      RT.Arrays.push_back({false, 0});
    else
      RT.Arrays.push_back({true, Out.Mem->base(A)});
  }

  // --- Online stage (timed; CompileMicros sums across retries, and a
  // warm cache hit reports the [near-zero] lookup time -- that is the
  // measurement, not an accounting gap) ---
  jit::Options JO;
  JO.CompilerTier = O.Tier;
  JO.FoldAddressing = O.FoldAddressing;
  JO.PromoteAccumulators = O.PromoteAccumulators;
  JO.ForceScalarize = ForceScalarize;
  const bool Cached = O.UseCodeCache && jit::cache::enabled();
  uint64_t CompKey = 0;
  std::shared_ptr<const jit::CompileResult> R;
  auto T0 = std::chrono::steady_clock::now();
  if (Cached) {
    if (!FnHash)
      FnHash = ir::hashFunction(Module);
    CompKey = jit::cache::compileKey(FnHash, O.Target, JO, RT);
    R = jit::cache::findCompile(CompKey);
  }
  if (!R) {
    auto CR = jit::compileChecked(Module, O.Target, RT, JO);
    if (!CR) {
      Out.CompileMicros += std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - T0)
                               .count();
      return CR.status();
    }
    R = Cached ? jit::cache::putCompile(CompKey, CR.take())
               : std::make_shared<const jit::CompileResult>(CR.take());
  }
  Out.CompileMicros += std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - T0)
                           .count();
  Out.Scalarized = R->Scalarized;
  Out.Code = R->Code;
  Out.Strategy = R->Strategy;
  Out.Iaca = analyzeVectorLoop(Out.Code, O.Target);

  // --- Proof-carrying check elision: replay the verifier's certificate
  // through the independent checker and evaluate its runtime
  // preconditions against this concrete placement. Fault-injected runs
  // stand down from On to Off -- an injected fault must never be masked
  // by an elided check (Audit keeps every check live, so it may pass
  // through). Forced-scalar recompiles run code the certificate does
  // not describe, so they never elide.
  target::ElisionMode EMode = O.Elide;
  if (EMode == target::ElisionMode::On && faultinject::controller().Active)
    EMode = target::ElisionMode::Off;
  if (ForceScalarize)
    EMode = target::ElisionMode::Off;
  target::ElisionPlan Plan;
  if (EMode != target::ElisionMode::Off && Cert) {
    // Mirror exactly the values the workload will bind below: ints get
    // their table value (absent => 0), FP-bound params have no integer
    // value the bounds evaluator may rely on.
    std::map<std::string, int64_t> IntVals;
    std::set<std::string> FpSet;
    detail::setParams(
        K, Module,
        [&](const std::string &N, int64_t V) { IntVals[N] = V; },
        [&](const std::string &N, double) { FpSet.insert(N); });
    analysis::ParamFn PF =
        [&IntVals, &FpSet](const std::string &N) -> std::optional<int64_t> {
      auto It = IntVals.find(N);
      if (It != IntVals.end())
        return It->second;
      return std::nullopt; // FP-bound or unknown: no integer value.
    };
    (void)FpSet;
    Plan = jit::buildElisionPlan(Module, Cert.get(), O.Target, *Out.Mem,
                                 EMode, PF);
  } else {
    Plan.Mode = target::ElisionMode::Off;
  }
  const target::ElisionPlan *PlanPtr =
      Plan.Mode != target::ElisionMode::Off ? &Plan : nullptr;
  Out.ElideMode = Plan.Mode;
  Out.AlignElided = Plan.AlignElided;
  Out.BoundsElided = Plan.BoundsElided;
  Out.ChecksKept = Plan.ChecksKept;
  Out.ElideFactsRejected = Plan.FactsRejected;
  Out.ElideCheckerError = Plan.CheckerError;
  Out.ElideDecisions = Plan.Decisions;
  // Audit counters are NOT reset here: they accumulate across the whole
  // demotion chain, so a genuine would-have-fired in a trapped attempt
  // survives the recovery rerun (the soundness sweep reads the total).

  // --- Workload and execution ---
  detail::MemFill Fill(*Out.Mem);
  K.fill(Fill);

  if (Engine == RunEngine::Native) {
    // Fault-injection site: pretend the native run took an alignment
    // trap, so the crashtest can sweep the Native -> Vectorized edge
    // without depending on a placement that actually traps.
    if (faultinject::shouldFire(faultinject::SiteClass::NativeTrap))
      return Status::error(Code::AlignmentTrap, Layer::Vm,
                           "injected fault: native trap");

    // The unit is placement-, feature-, and plan-keyed in the cache;
    // compile time joins CompileMicros like the JIT lowering above.
    codegen::NativeOptions NO = O.Native;
    NO.Plan = PlanPtr;
    auto N0 = std::chrono::steady_clock::now();
    auto NU = Cached ? jit::cache::nativeFor(CompKey, R->Code, O.Target,
                                             *Out.Mem, NO)
                     : codegen::compileNative(R->Code, O.Target, *Out.Mem,
                                              NO);
    Out.CompileMicros += std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - N0)
                             .count();
    if (!NU.ok())
      return NU.status();
    std::shared_ptr<const codegen::NativeUnit> Unit = NU.take();

    codegen::NativeExec Exec(Unit, *Out.Mem);
    if (O.DeadlineFuel)
      Exec.setFuel(O.DeadlineFuel);
    detail::setParams(
        K, Module,
        [&](const std::string &N, int64_t V) { Exec.setParamInt(N, V); },
        [&](const std::string &N, double V) { Exec.setParamFP(N, V); });
    Status St = Exec.run();
    Out.AuditAlignFired += Exec.auditAlignFired();
    Out.AuditBoundsFired += Exec.auditBoundsFired();
    if (!St.ok())
      return St;
    // No cycle model ran: the native tier is measured in wall time by
    // the benches, not in modeled cycles.
    Out.Cycles = 0;
    Out.NativeCode = Unit->Stats;
    return Status::okStatus();
  }

  // The pre-decoded (and fused) program is immutable and placement-keyed,
  // so every cell of a sweep that compiles the same code for the same
  // layout shares one program.
  const bool Weak = JO.CompilerTier == jit::Tier::Weak;
  std::shared_ptr<const DecodedProgram> Prog =
      Cached ? jit::cache::programFor(CompKey, R->Code, O.Target, *Out.Mem,
                                      Weak, O.FuseOps, PlanPtr)
             : DecodedProgram::build(R->Code, O.Target, *Out.Mem, Weak,
                                     O.FuseOps, PlanPtr);
  VM Machine(Prog, *Out.Mem);
  Machine.setTrapRecording(true);
  if (O.DeadlineFuel)
    Machine.setFuel(O.DeadlineFuel);
  detail::setParams(
      K, Module,
      [&](const std::string &N, int64_t V) { Machine.setParamInt(N, V); },
      [&](const std::string &N, double V) { Machine.setParamFP(N, V); });
  Status St = Machine.run();
  Out.AuditAlignFired += Machine.auditAlignFired();
  Out.AuditBoundsFired += Machine.auditBoundsFired();
  if (!St.ok())
    return St;
  Out.Cycles = Machine.cycles();
  return Status::okStatus();
}

void Executor::runInterpreter(RunOutcome &Out) {
  Evaluator E(K.Source, {});
  E.allocAllArrays();
  detail::EvalFill Fill(E);
  K.fill(Fill);
  detail::setParams(
      K, K.Source,
      [&](const std::string &N, int64_t V) { E.setParamInt(N, V); },
      [&](const std::string &N, double V) { E.setParamFP(N, V); });
  E.run();

  // Materialize the evaluator's results into a fresh memory image so
  // checkAgainstGolden inspects every tier the same way.
  Out.Mem = std::make_unique<MemoryImage>();
  for (uint32_t A = 0; A < K.Source.Arrays.size(); ++A) {
    const ArrayInfo &AI = K.Source.Arrays[A];
    bool External = K.ExternalArrays.count(AI.Name) != 0;
    Out.Mem->addArray(AI, External ? O.ExternalMisalign : 0);
  }
  for (uint32_t A = 0; A < K.Source.Arrays.size(); ++A) {
    const ArrayInfo &AI = K.Source.Arrays[A];
    for (uint64_t I = 0; I < AI.NumElems; ++I) {
      if (isFloatKind(AI.Elem))
        Out.Mem->pokeFP(A, I, E.peekFP(A, I));
      else
        Out.Mem->pokeInt(A, I, E.peekInt(A, I));
    }
  }

  // No machine code ran: cost is the evaluator's dynamic-op count (a
  // cycle proxy), and the JIT consumed no bytecode.
  Out.Cycles = E.dynamicOps();
  Out.Scalarized = true;
  Out.BytecodeBytes = 0;
  Out.Code = MFunction();
  Out.Iaca = IacaReport();
}

RunOutcome vapor::runEncodedModule(const ModuleWorkload &W,
                                   const RunOptions &O) {
  obs::Span S("executor", "runEncodedModule");
  S.arg("name", W.Name);
  S.arg("bytes", static_cast<uint64_t>(W.Bytecode.size()));

  // Decode first (through the cache when enabled): the bytes are the
  // only definition of the work, so a decode failure is terminal -- no
  // lower tier can synthesize a module the wire format rejected.
  const bool Cached = O.UseCodeCache && jit::cache::enabled();
  uint64_t BytesHash = 0;
  std::shared_ptr<const ir::Function> Module;
  if (Cached) {
    BytesHash = jit::cache::hashBytes(W.Bytecode.data(), W.Bytecode.size());
    Module = jit::cache::findModule(BytesHash);
  }
  if (!Module) {
    auto Decoded = bytecode::decode(W.Bytecode);
    if (!Decoded) {
      RunOutcome Out;
      Out.Terminal = Decoded.status();
      return Out;
    }
    Module = Cached ? jit::cache::putModule(BytesHash, Decoded.take(),
                                            W.Bytecode.size())
                    : std::make_shared<const ir::Function>(Decoded.take());
  }

  // Synthesize the workload the executor drives: the decoded module is
  // the source of truth for arrays and params; the fill is the
  // deterministic default (seeded), so a client that knows the original
  // source can recompute the golden result independently.
  kernels::Kernel K;
  K.Name = W.Name.empty() ? Module->Name : W.Name;
  K.Suite = "server";
  K.Source = *Module;
  K.IntParams = W.IntParams;
  K.FPParams = W.FPParams;
  const uint64_t Seed = W.FillSeed;
  K.Fill = [Seed](kernels::FillSink &Sink, const ir::Function &F) {
    kernels::defaultFill(Sink, F, Seed);
  };

  return Executor(K, O, Module, W.Bytecode.size())
      .run(O.UseNative ? ExecTier::Native : ExecTier::Vectorized);
}
