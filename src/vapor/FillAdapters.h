//===- vapor/FillAdapters.h - Shared workload-binding helpers --*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small adapters shared by the pipeline facade and the fault-tolerant
/// executor: FillSink bindings for the VM memory image and the golden
/// evaluator, and parameter binding from a kernel's workload.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VAPOR_FILLADAPTERS_H
#define VAPOR_VAPOR_FILLADAPTERS_H

#include "ir/Interp.h"
#include "kernels/Kernels.h"
#include "target/MemoryImage.h"

#include <functional>
#include <string>

namespace vapor {
namespace detail {

/// FillSink adapter for the VM's memory image.
class MemFill : public kernels::FillSink {
public:
  explicit MemFill(target::MemoryImage &Image) : Mem(Image) {}
  void pokeInt(uint32_t Arr, uint64_t Elem, int64_t V) override {
    Mem.pokeInt(Arr, Elem, V);
  }
  void pokeFP(uint32_t Arr, uint64_t Elem, double V) override {
    Mem.pokeFP(Arr, Elem, V);
  }

private:
  target::MemoryImage &Mem;
};

/// FillSink adapter for the golden evaluator.
class EvalFill : public kernels::FillSink {
public:
  explicit EvalFill(ir::Evaluator &Ev) : E(Ev) {}
  void pokeInt(uint32_t Arr, uint64_t Elem, int64_t V) override {
    E.pokeInt(Arr, Elem, V);
  }
  void pokeFP(uint32_t Arr, uint64_t Elem, double V) override {
    E.pokeFP(Arr, Elem, V);
  }

private:
  ir::Evaluator &E;
};

/// Binds every parameter of \p F from the kernel's workload tables
/// (defaults: 0 for ints, 1.0 for floats).
inline void
setParams(const kernels::Kernel &K, const ir::Function &F,
          const std::function<void(const std::string &, int64_t)> &SetI,
          const std::function<void(const std::string &, double)> &SetF) {
  for (ir::ValueId P : F.Params) {
    const std::string &Name = F.Values[P].Name;
    if (ir::isFloatKind(F.typeOf(P).Elem)) {
      auto It = K.FPParams.find(Name);
      SetF(Name, It == K.FPParams.end() ? 1.0 : It->second);
    } else {
      auto It = K.IntParams.find(Name);
      SetI(Name, It == K.IntParams.end() ? 0 : It->second);
    }
  }
}

} // namespace detail
} // namespace vapor

#endif // VAPOR_VAPOR_FILLADAPTERS_H
