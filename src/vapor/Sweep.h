//===- vapor/Sweep.h - Shared kernel x target sweep driver -----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The helpers shared by every driver that walks the kernel x target
/// matrix (the fig5/fig6/table3/vm_throughput benches and the crashtest
/// tool): registry lookups, the Fig. 6 split-over-native cell, and the
/// parallel cell map on top of the work-stealing pool
/// (support/ThreadPool.h).
///
/// Cells are independent by construction -- each evaluation builds its
/// own MemoryImage, the fault-injection controller is thread-local, and
/// the code cache is content-addressed -- so a parallel sweep computes
/// exactly the numbers the serial sweep does; only the merge order
/// differs, and every driver merges order-independently (sums, or
/// index-addressed result slots printed in registry order).
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VAPOR_SWEEP_H
#define VAPOR_VAPOR_SWEEP_H

#include "kernels/Kernels.h"
#include "target/Target.h"

#include <functional>
#include <string>
#include <vector>

namespace vapor {
namespace sweep {

/// Parses a --jobs/VAPOR_JOBS value. \returns false when \p Text is not
/// a plain decimal number (empty, trailing junk, out of range) — the
/// caller rejects it; silently treating garbage as 0 is how a zero-worker
/// pool request happens. On success \p Out is the parsed value clamped
/// to >= 1 (0 means "serial", which one worker is).
bool parseJobs(const char *Text, unsigned &Out);

/// Worker count for the sweep drivers: the VAPOR_JOBS environment
/// variable when it parses cleanly (clamped to >= 1; 1 forces serial),
/// else the host's hardware concurrency. A garbage or zero VAPOR_JOBS
/// never produces a zero-worker pool.
unsigned defaultJobs();

/// \returns the kernel named \p Name in \p All, or nullptr.
const kernels::Kernel *
kernelByNameOrNull(const std::vector<kernels::Kernel> &All,
                   const std::string &Name);

/// \returns the target named \p Name in \p All, or nullptr.
const target::TargetDesc *
targetByNameOrNull(const std::vector<target::TargetDesc> &All,
                   const std::string &Name);

/// One Fig. 6 cell: modeled cycles of the split-vectorized flow and the
/// natively-vectorized flow for (kernel, target) at the strong tier.
struct SplitNativeCell {
  uint64_t SplitCycles = 0;
  uint64_t NativeCycles = 0;
  bool Scalarized = false; ///< The online compiler scalarized the split
                           ///< code on this target.
  double ratio() const {
    return static_cast<double>(SplitCycles) /
           static_cast<double>(NativeCycles);
  }
};

/// Evaluates one Fig. 6 cell (each call on its own MemoryImage; safe to
/// run concurrently across cells).
SplitNativeCell splitOverNativeCell(const kernels::Kernel &K,
                                    const target::TargetDesc &T);

/// Runs \p Fn(0..N-1) across \p Jobs pool workers and returns when all
/// calls finished. Jobs <= 1 runs inline, byte-identical to the serial
/// drivers.
void forEachCell(unsigned Jobs, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace sweep
} // namespace vapor

#endif // VAPOR_VAPOR_SWEEP_H
