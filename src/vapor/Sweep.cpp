//===- vapor/Sweep.cpp - Shared kernel x target sweep driver ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "vapor/Sweep.h"

#include "support/ThreadPool.h"
#include "vapor/Pipeline.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

using namespace vapor;

bool sweep::parseJobs(const char *Text, unsigned &Out) {
  if (!Text || !*Text)
    return false;
  // strtol accepts leading whitespace and a sign; neither is a jobs
  // count. Reject everything but plain digits up front so "-1", " 4",
  // and "abc" all fail instead of folding to something surprising.
  for (const char *P = Text; *P; ++P)
    if (!std::isdigit(static_cast<unsigned char>(*P)))
      return false;
  errno = 0;
  char *End = nullptr;
  long N = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || N < 0 || N > INT_MAX)
    return false;
  Out = N == 0 ? 1u : static_cast<unsigned>(N);
  return true;
}

unsigned sweep::defaultJobs() {
  if (const char *Env = std::getenv("VAPOR_JOBS")) {
    unsigned N = 0;
    if (parseJobs(Env, N))
      return N;
  }
  return support::ThreadPool::defaultWorkerCount();
}

const kernels::Kernel *
sweep::kernelByNameOrNull(const std::vector<kernels::Kernel> &All,
                          const std::string &Name) {
  for (const kernels::Kernel &K : All)
    if (K.Name == Name)
      return &K;
  return nullptr;
}

const target::TargetDesc *
sweep::targetByNameOrNull(const std::vector<target::TargetDesc> &All,
                          const std::string &Name) {
  for (const target::TargetDesc &T : All)
    if (T.Name == Name)
      return &T;
  return nullptr;
}

sweep::SplitNativeCell
sweep::splitOverNativeCell(const kernels::Kernel &K,
                           const target::TargetDesc &T) {
  RunOptions O;
  O.Target = T;
  O.Tier = jit::Tier::Strong;
  RunOutcome Split = runKernel(K, Flow::SplitVectorized, O);
  RunOutcome Native = runKernel(K, Flow::NativeVectorized, O);
  SplitNativeCell C;
  C.SplitCycles = Split.Cycles;
  C.NativeCycles = Native.Cycles;
  C.Scalarized = Split.Scalarized;
  return C;
}

void sweep::forEachCell(unsigned Jobs, size_t N,
                        const std::function<void(size_t)> &Fn) {
  support::parallelFor(Jobs, N, Fn);
}
