//===- vapor/Sweep.cpp - Shared kernel x target sweep driver ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "vapor/Sweep.h"

#include "support/ThreadPool.h"
#include "vapor/Pipeline.h"

#include <cstdlib>

using namespace vapor;

unsigned sweep::defaultJobs() {
  if (const char *Env = std::getenv("VAPOR_JOBS")) {
    long N = std::strtol(Env, nullptr, 10);
    if (N >= 1)
      return static_cast<unsigned>(N);
  }
  return support::ThreadPool::defaultWorkerCount();
}

const kernels::Kernel *
sweep::kernelByNameOrNull(const std::vector<kernels::Kernel> &All,
                          const std::string &Name) {
  for (const kernels::Kernel &K : All)
    if (K.Name == Name)
      return &K;
  return nullptr;
}

const target::TargetDesc *
sweep::targetByNameOrNull(const std::vector<target::TargetDesc> &All,
                          const std::string &Name) {
  for (const target::TargetDesc &T : All)
    if (T.Name == Name)
      return &T;
  return nullptr;
}

sweep::SplitNativeCell
sweep::splitOverNativeCell(const kernels::Kernel &K,
                           const target::TargetDesc &T) {
  RunOptions O;
  O.Target = T;
  O.Tier = jit::Tier::Strong;
  RunOutcome Split = runKernel(K, Flow::SplitVectorized, O);
  RunOutcome Native = runKernel(K, Flow::NativeVectorized, O);
  SplitNativeCell C;
  C.SplitCycles = Split.Cycles;
  C.NativeCycles = Native.Cycles;
  C.Scalarized = Split.Scalarized;
  return C;
}

void sweep::forEachCell(unsigned Jobs, size_t N,
                        const std::function<void(size_t)> &Fn) {
  support::parallelFor(Jobs, N, Fn);
}
