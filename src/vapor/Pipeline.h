//===- vapor/Pipeline.h - End-to-end compilation/execution -----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The facade tying everything together: the four measurement points of
/// paper Fig. 4, executable on any kernel, target, and JIT tier.
///
///   SplitVectorized (A/D): offline vectorizer -> split bytecode (encoded
///       and decoded through the container) -> online JIT -> target VM.
///   SplitScalar     (C):   scalar bytecode -> online JIT -> target VM.
///   NativeVectorized(E):   arrays force-aligned, then the same vectorizer
///       + strong codegen with full compile-time knowledge.
///   NativeScalar    (F):   force-aligned scalar source -> strong codegen.
///
/// Every run reports cycles, compile (lowering) time, bytecode size, and
/// keeps the memory image so callers can verify outputs against the
/// golden IR evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VAPOR_PIPELINE_H
#define VAPOR_VAPOR_PIPELINE_H

#include "codegen/NativeJit.h"
#include "jit/Jit.h"
#include "kernels/Kernels.h"
#include "support/Status.h"
#include "target/Iaca.h"
#include "target/MemoryImage.h"
#include "target/Target.h"
#include "vectorizer/Vectorizer.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vapor {

enum class Flow : uint8_t {
  SplitVectorized,
  SplitScalar,
  NativeVectorized,
  NativeScalar,
};

const char *flowName(Flow F);

/// The tiers of the fault-tolerant executor's degradation chain, best
/// first. Every online-stage failure demotes one run down this chain;
/// the bottom tier (the golden IR interpreter) cannot fail.
enum class ExecTier : uint8_t {
  Native,         ///< Vector lowering compiled to host x86-64 (W^X pages).
  Vectorized,     ///< Split bytecode, vector lowering, target VM.
  ScalarJit,      ///< Same bytecode re-JITted with forced scalarization.
  ScalarBytecode, ///< Scalar split bytecode through the normal JIT + VM.
  Interpreter,    ///< Golden IR evaluator on the kernel source.
};

const char *tierName(ExecTier T);

struct RunOptions {
  target::TargetDesc Target = target::sseTarget();
  jit::Tier Tier = jit::Tier::Strong;
  /// Codegen profile knobs (Table 3's legacy split compiler).
  bool FoldAddressing = true;
  bool PromoteAccumulators = true;
  /// Offline-stage options (the alignment ablation switch lives here).
  vectorizer::Options VecOpts;
  /// Runtime placement: misalignment (bytes mod 32) of external arrays;
  /// internal arrays are allocated by our runtime, which aligns them.
  uint32_t ExternalMisalign = 0;
  uint64_t FillSeed = 7;
  /// Statically verify the decoded bytecode for the run's target before
  /// handing it to the JIT. A verification failure is not fatal: the
  /// executor records a Verify-layer Status in RunOutcome::Demotions and
  /// demotes the run to the forced-scalar JIT tier (scalar lowering emits
  /// no checked vector accesses, so no alignment lie can trap it). Split
  /// flows only (native flows bypass the interchange format).
  bool VerifyBytecode = true;
  /// Online-stage performance layer. FuseOps runs the VM's macro-op
  /// fusion peephole (bit-identical results and modeled cycles, fewer
  /// dispatches). UseCodeCache memoizes decode, verification, JIT
  /// lowering, and VM pre-decode through the content-addressed cache
  /// (jit/CodeCache.h); the cache stands down automatically while a
  /// fault-injection controller is active, so instrumented runs always
  /// execute every stage.
  bool FuseOps = true;
  bool UseCodeCache = true;
  /// Native execution tier: compile the vector lowering to host x86-64
  /// (src/codegen) instead of running the cycle-model VM. Bit-exact
  /// against the VM by contract; any native failure (unsupported host,
  /// page allocation, runtime trap) demotes cleanly to the Vectorized
  /// tier. The encoding set is chosen by a runtime CPUID probe.
  bool UseNative = false;
  /// Encoding-set override for the native tier (tests force SSE2-only
  /// subsets to check feature-gated selection). Defaults to the host.
  codegen::NativeOptions Native;
  /// Proof-carrying check elision (analysis/Certificate.h). On: replay
  /// the verifier's safety certificate through the independent checker,
  /// evaluate its runtime preconditions against the concrete placement,
  /// and drop the granted align/bounds checks from the VM pre-decode and
  /// the native code. Audit: keep every check live but count instances
  /// where an elidable check's predicate would genuinely have fired
  /// (the crashtest's soundness sweep). Off: consumer disabled. Elision
  /// requires the verify gate (VerifyBytecode) -- without it there is no
  /// certificate and every check stays. Fault-injected runs stand down
  /// from On to Off automatically so an injected fault can never be
  /// masked by an elided check.
  target::ElisionMode Elide = target::ElisionMode::On;
  /// Per-run execution deadline as a dispatch budget: the VM counts op
  /// dispatches, the native tier counts shim calls (its only recurring
  /// C++ checkpoints -- see codegen::NativeExec::setFuel). 0 = unlimited.
  /// A run that exhausts its budget stops mid-flight with a
  /// DeadlineExceeded Status, which is TERMINAL: the executor never
  /// demotes it (re-running heavier work on a slower tier cannot meet a
  /// deadline the fast tier missed) -- the outcome's Terminal field
  /// carries the Status and Mem holds partial results. The unit is
  /// deliberately deterministic work, not wall time, so deadline
  /// verdicts are reproducible across hosts and load.
  uint64_t DeadlineFuel = 0;
  /// Tiered execution (jit/Tiering.h): instead of compiling everything
  /// synchronously before the first result, enter each invocation at
  /// the cheapest READY tier -- the golden IR interpreter for trusted
  /// kernel flows, the forced-scalar JIT for fail-closed server flows
  /// -- and let the hotness engine promote the function off-thread: at
  /// the configured invocation thresholds a background job compiles the
  /// vectorized VM program (and, when UseNative, the native unit) into
  /// the CodeCache, and the NEXT invocation enters the better tier as a
  /// warm cache hit. The swap point is the run boundary: an in-flight
  /// run always finishes on the tier it started. The degradation chain
  /// is unchanged within a run; a run that demotes (or a background
  /// compile that fails) pins the function below the failing tier until
  /// the cache is invalidated (jit::cache::clear()).
  bool Tiered = false;
  /// Extra value folded into the tiering hotness key. The engine is
  /// process-global; sweep drivers (crashtest --tiered, tests, benches)
  /// give every case a distinct salt so cases cannot share hotness,
  /// promotions, or demotion pins.
  uint64_t TieringSalt = 0;
};

struct RunOutcome {
  uint64_t Cycles = 0;
  bool Scalarized = false;
  bool AnyLoopVectorized = false;
  double CompileMicros = 0;   ///< Lowering wall time, summed over retries.
  size_t BytecodeBytes = 0;   ///< Encoded size of what the JIT consumed
                              ///< at the executed tier (0 for Interpreter).
  target::MFunction Code;
  std::unique_ptr<target::MemoryImage> Mem;
  target::IacaReport Iaca;    ///< Static throughput of the vector loop.
  /// Per-target strategy decisions of the compile that produced Code
  /// (vapor-explain's online-stage record).
  jit::StrategyStats Strategy;
  /// The offline vectorizer's per-loop decision records for the bytecode
  /// the executed tier consumed. Split flows only; empty for Interpreter.
  std::vector<vectorizer::LoopReport> LoopDecisions;

  /// The native tier's code-shape record (per-op inline/helper counts,
  /// packed/VEX chunks, encoding set). Filled only when the executed
  /// tier is Native.
  codegen::NativeStats NativeCode;

  /// Proof-carrying check-elision record of the executed tier's run
  /// (split flows; Off when elision stood down or nothing was granted).
  target::ElisionMode ElideMode = target::ElisionMode::Off;
  uint32_t AlignElided = 0;        ///< Align grants applied to accesses.
  uint32_t BoundsElided = 0;       ///< Bounds grants applied.
  uint32_t ChecksKept = 0;         ///< Certified accesses left checked.
  uint32_t ElideFactsRejected = 0; ///< Facts the checker refused.
  std::string ElideCheckerError;   ///< Certificate-level rejection, if any.
  /// Per-access elide/keep/audit decision lines (vapor-explain).
  std::vector<std::string> ElideDecisions;
  /// Audit-mode telemetry: genuine would-have-fired check predicates.
  uint64_t AuditAlignFired = 0;
  uint64_t AuditBoundsFired = 0;

  /// Tier of the degradation chain that actually produced the results in
  /// Mem. Split flows only; mono flows always report Vectorized.
  ExecTier Tier = ExecTier::Vectorized;
  /// Tier the chain ENTERED at. Equals the flow's eager entry tier for
  /// plain runs; under RunOptions::Tiered it is the tier the hotness
  /// engine picked (the interesting signal: cold runs enter cheap,
  /// promoted runs enter where the background compile landed).
  ExecTier EntryTier = ExecTier::Vectorized;
  /// Every Status that demoted this run down the chain, in order. Empty
  /// for a clean run.
  std::vector<status::Status> Demotions;
  /// Deoptimizing re-JIT attempts (runtime trap -> forced-scalar recompile).
  uint32_t Retries = 0;
  /// Terminal failure, if any. ok() for every run that produced valid
  /// results (possibly after demotions). Not-ok only when the chain was
  /// stopped for good: a DeadlineExceeded budget exhaustion (any mode),
  /// or any unrecoverable failure of a fail-closed server-mode run
  /// (runEncodedModule), which must never fall back to the unbounded
  /// interpreter on tenant-supplied input. When set, Mem is partial or
  /// absent and must not be compared against the golden model.
  status::Status Terminal = status::Status::okStatus();
};

/// Compiles and executes \p K under \p Flow. Split flows run under the
/// fault-tolerant Executor (Executor.h): an online-stage failure demotes
/// the run down the tier chain instead of aborting, and the outcome
/// records the executed tier, every demoting Status, and the retry count.
/// Native flows bypass the interchange format and keep hard asserts for
/// their (offline, trusted) stages.
RunOutcome runKernel(const kernels::Kernel &K, Flow F, const RunOptions &O);

/// Runs the golden IR evaluator on the kernel source with the same
/// workload and compares every array element against \p Out's memory.
/// \returns true on match; otherwise fills \p Err, which names the tier
/// that produced the mismatching results.
bool checkAgainstGolden(const kernels::Kernel &K, const RunOutcome &Out,
                        std::string &Err);

/// A self-contained unit of work submitted to the execution service: an
/// already-vectorized bytecode module plus the scalar parameter bindings
/// its run needs. The service trusts NOTHING in here -- the bytes came
/// over a socket.
struct ModuleWorkload {
  std::string Name;              ///< Request label for traces and errors.
  std::vector<uint8_t> Bytecode; ///< Encoded module (bytecode::encode).
  std::map<std::string, int64_t> IntParams;
  std::map<std::string, double> FPParams;
  uint64_t FillSeed = 7; ///< Seed for the deterministic default fill.
};

/// Server-mode entry point: decodes and runs \p W under the
/// fault-tolerant executor with the chain FAIL-CLOSED at the JIT tiers
/// ([Native ->] Vectorized -> ScalarJit -> stop). Unlike runKernel there
/// is no trusted kernel source behind the bytes, so a run that cannot
/// complete on a JIT tier reports a Terminal Status instead of falling
/// back to ScalarBytecode/Interpreter -- the interpreter has no deadline
/// checkpoint, and an unbounded golden-model walk over tenant-supplied
/// input is exactly the wedged-worker failure mode the service exists to
/// prevent. Decode failures, verify failures after demotion, and
/// deadline exhaustion (O.DeadlineFuel) all land in Outcome::Terminal
/// with the demotion trail preserved.
RunOutcome runEncodedModule(const ModuleWorkload &W, const RunOptions &O);

} // namespace vapor

#endif // VAPOR_VAPOR_PIPELINE_H
