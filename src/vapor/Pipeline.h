//===- vapor/Pipeline.h - End-to-end compilation/execution -----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The facade tying everything together: the four measurement points of
/// paper Fig. 4, executable on any kernel, target, and JIT tier.
///
///   SplitVectorized (A/D): offline vectorizer -> split bytecode (encoded
///       and decoded through the container) -> online JIT -> target VM.
///   SplitScalar     (C):   scalar bytecode -> online JIT -> target VM.
///   NativeVectorized(E):   arrays force-aligned, then the same vectorizer
///       + strong codegen with full compile-time knowledge.
///   NativeScalar    (F):   force-aligned scalar source -> strong codegen.
///
/// Every run reports cycles, compile (lowering) time, bytecode size, and
/// keeps the memory image so callers can verify outputs against the
/// golden IR evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VAPOR_PIPELINE_H
#define VAPOR_VAPOR_PIPELINE_H

#include "jit/Jit.h"
#include "kernels/Kernels.h"
#include "target/Iaca.h"
#include "target/MemoryImage.h"
#include "target/Target.h"
#include "vectorizer/Vectorizer.h"

#include <memory>
#include <string>

namespace vapor {

enum class Flow : uint8_t {
  SplitVectorized,
  SplitScalar,
  NativeVectorized,
  NativeScalar,
};

const char *flowName(Flow F);

struct RunOptions {
  target::TargetDesc Target = target::sseTarget();
  jit::Tier Tier = jit::Tier::Strong;
  /// Codegen profile knobs (Table 3's legacy split compiler).
  bool FoldAddressing = true;
  bool PromoteAccumulators = true;
  /// Offline-stage options (the alignment ablation switch lives here).
  vectorizer::Options VecOpts;
  /// Runtime placement: misalignment (bytes mod 32) of external arrays;
  /// internal arrays are allocated by our runtime, which aligns them.
  uint32_t ExternalMisalign = 0;
  uint64_t FillSeed = 7;
  /// Statically verify the decoded bytecode for the run's target before
  /// handing it to the JIT; aborts on verification errors. Split flows
  /// only (native flows bypass the interchange format).
  bool VerifyBytecode = true;
};

struct RunOutcome {
  uint64_t Cycles = 0;
  bool Scalarized = false;
  bool AnyLoopVectorized = false;
  double CompileMicros = 0;   ///< Online-stage lowering wall time.
  size_t BytecodeBytes = 0;   ///< Encoded size of what the JIT consumed.
  target::MFunction Code;
  std::unique_ptr<target::MemoryImage> Mem;
  target::IacaReport Iaca;    ///< Static throughput of the vector loop.
};

/// Compiles and executes \p K under \p Flow. Aborts on internal errors;
/// never fails for representable configurations.
RunOutcome runKernel(const kernels::Kernel &K, Flow F, const RunOptions &O);

/// Runs the golden IR evaluator on the kernel source with the same
/// workload and compares every array element against \p Out's memory.
/// \returns true on match; otherwise fills \p Err.
bool checkAgainstGolden(const kernels::Kernel &K, const RunOutcome &Out,
                        std::string &Err);

} // namespace vapor

#endif // VAPOR_VAPOR_PIPELINE_H
