//===- vapor/Executor.h - Fault-tolerant tiered execution ------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-tolerant driver behind the split flows: instead of aborting
/// when an online stage fails, it walks a degradation chain until some
/// tier completes, and reports honestly which one did:
///
///   Native          the same split bytecode, decode, verify gate, and
///                   JIT lowering as Vectorized, but the MachineIR is
///                   compiled to host x86-64 (src/codegen) instead of
///                   running on the cycle-model VM;
///   Vectorized      split bytecode -> decode -> verify gate -> JIT ->
///                   target VM in trap-recording mode;
///   ScalarJit       the same decoded bytecode re-JITted with forced
///                   scalarization (no checked vector accesses can be
///                   emitted, so no alignment lie in the bytecode can
///                   trap it) -- also the *deoptimization* target when
///                   the vectorized tier takes a runtime alignment trap;
///   ScalarBytecode  freshly encoded scalar bytecode through the normal
///                   decode/verify/JIT/VM path;
///   Interpreter     the golden IR evaluator on the kernel source. This
///                   tier cannot fail: it shares no code with the stages
///                   that can.
///
/// Demotion edges (each carries the demoting Status into the outcome):
///   native fail     -> Vectorized (any failure: unsupported host, page
///                      allocation, runtime trap. The VM is the golden
///                      execution of the exact same lowering, so this
///                      edge is NOT a retry -- the vector code is not
///                      suspect, only its native binding);
///   decode fail     -> ScalarBytecode (-> Interpreter if decode fails
///                      again: the fault is in the interchange layer);
///   verify fail     -> ScalarJit (the gate rejected a vector lowering;
///                      forced-scalar code is safe by construction);
///   JIT lower fail  -> ScalarBytecode;
///   VM runtime trap -> ScalarJit, counted as a Retry (deoptimization).
///
/// Every VM at this level runs in trap-recording mode, so a runtime
/// fault comes back as a Vm-layer Status with structured TrapInfo rather
/// than killing the process. The offline stage (vectorizer, encoder) is
/// trusted and keeps its internal asserts.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_VAPOR_EXECUTOR_H
#define VAPOR_VAPOR_EXECUTOR_H

#include "analysis/Certificate.h"
#include "vapor/Pipeline.h"

namespace vapor {

class Executor {
public:
  Executor(const kernels::Kernel &K, const RunOptions &O) : K(K), O(O) {}

  /// Server-mode executor: \p PreDecoded is the already-decoded module
  /// the (untrusted) encoded bytes produced and \p EncodedBytes its wire
  /// size. The chain FAIL-CLOSES after ScalarJit: with no trusted kernel
  /// source behind the module, the ScalarBytecode re-encode is a no-op
  /// and the interpreter tier -- which has no deadline checkpoint --
  /// must never run tenant-supplied input. \p K still supplies the
  /// workload (params, fill, name); its Source is the decoded module.
  Executor(const kernels::Kernel &K, const RunOptions &O,
           std::shared_ptr<const ir::Function> PreDecoded,
           size_t EncodedBytes)
      : K(K), O(O), VecModule(std::move(PreDecoded)),
        PreDecodedBytes(EncodedBytes), FailClosed(true) {}

  /// Walks the chain starting at \p Entry (Vectorized for the
  /// SplitVectorized flow, ScalarBytecode for SplitScalar) until a tier
  /// completes. Never aborts for representable configurations -- also
  /// not under fault injection; the outcome records the executed tier,
  /// every demoting Status, and the retry count.
  ///
  /// Under RunOptions::Tiered, \p Entry is the EAGER entry tier (the
  /// best this run may reach); the actual entry is chosen by the
  /// hotness engine -- see runTiered.
  RunOutcome run(ExecTier Entry = ExecTier::Vectorized);

  /// The hotness key this workload ticks under RunOptions::Tiered:
  /// function identity (module hash in server mode, kernel name
  /// otherwise), target, external-array placement, every
  /// compilation-relevant option, and O.TieringSalt. Exposed so
  /// vapor-explain can look up the promotion timeline after a run.
  uint64_t tieringKey();

private:
  /// Which engine runModule hands the compiled MachineIR to.
  enum class RunEngine : uint8_t {
    Vm,     ///< Cycle-model target VM (trap-recording).
    Native, ///< Host x86-64 via codegen::compileNative.
  };

  /// The plain degradation chain starting at \p Entry (the body of
  /// run() before tiering existed).
  RunOutcome runChain(ExecTier Entry);

  /// Tiered execution: ticks the hotness engine, enters the chain at
  /// the cheapest READY tier, enqueues a claimed background compile
  /// (a fresh Executor over copies of K and O with Tiered off, run
  /// once at the promotion target so every artifact lands in the
  /// CodeCache), and reports demotions back as pins.
  RunOutcome runTiered(ExecTier Eager);

  /// The shared front of the Native and Vectorized tiers: offline
  /// vectorize, encode/decode through the interchange format, verify
  /// gate. On success VecModule/VecModuleHash are set. Re-running it is
  /// deterministic, so a Native -> Vectorized demotion simply prepares
  /// again (warm-cache runs memoize every stage anyway).
  status::Status prepareVectorized(RunOutcome &Out);

  /// prepareVectorized + vector JIT + native x86-64 execution.
  status::Status attemptNative(RunOutcome &Out);
  /// prepareVectorized + vector JIT + VM.
  status::Status attemptVectorized(RunOutcome &Out);
  /// Re-JIT the already-decoded module with Options::ForceScalarize.
  status::Status attemptScalarJit(RunOutcome &Out);
  /// Scalar source through the full split path (encode/decode/JIT/VM).
  status::Status attemptScalarBytecode(RunOutcome &Out);
  /// Golden evaluator; materializes results into a fresh MemoryImage so
  /// checkAgainstGolden works uniformly across tiers.
  void runInterpreter(RunOutcome &Out);

  /// The shared online tail of the JIT tiers: layout, compileChecked
  /// (through the code cache when enabled), fill, VM run
  /// (trap-recording). \p FnHash is ir::hashFunction(Module) when the
  /// caller already computed it, 0 to compute on demand. On success
  /// fills the outcome's Cycles/Code/Mem; on failure \returns the Jit-
  /// or Vm-layer Status.
  status::Status runModule(RunOutcome &Out, const ir::Function &Module,
                           uint64_t FnHash, bool ForceScalarize,
                           RunEngine Engine = RunEngine::Vm);

  /// Verification with the verdict memoized in the code cache (keyed on
  /// \p FnHash and the run's target). \p Cached gates cache use; the
  /// failure Status message starts with \p FailPrefix.
  status::Status verifyCached(const ir::Function &Module, uint64_t FnHash,
                              bool Cached, const char *FailPrefix);

  const kernels::Kernel &K;
  const RunOptions &O;
  /// Decoded vectorized module, if any; possibly shared with the code
  /// cache (immutable either way).
  std::shared_ptr<const ir::Function> VecModule;
  uint64_t VecModuleHash = 0; ///< ir::hashFunction(*VecModule), if cached.
  size_t PreDecodedBytes = 0; ///< Wire size of the server-mode module.
  /// Server mode: stop (RunOutcome::Terminal) instead of demoting past
  /// ScalarJit. Also skips the offline vectorize/encode in
  /// prepareVectorized -- VecModule arrived pre-decoded.
  bool FailClosed = false;
  /// Safety certificate the last verifyCached call captured for the
  /// module it verified (null when the verifier proved nothing or the
  /// verify gate is off). Always describes the module runModule runs
  /// next: each verify resets it.
  std::shared_ptr<const analysis::SafetyCertificate> Cert;
};

} // namespace vapor

#endif // VAPOR_VAPOR_EXECUTOR_H
