//===- jit/Tiering.h - Hotness-driven background promotion -----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/jit/README.md for the
// queue/threshold knobs and DESIGN.md §13 for the promotion lattice and
// the safe-point contract.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vapor::jit::tiering -- the asynchronous compile queue and promotion
/// policy behind RunOptions::Tiered. The executor's degradation chain
/// (PR 3) moves runs DOWN the tier lattice when something fails; this
/// engine moves functions UP it when they get hot:
///
///   - the first invocation of a (function × target × placement ×
///     options) cell runs at the cheapest ready tier (the golden IR
///     interpreter for trusted kernel flows, the forced-scalar JIT for
///     fail-closed server flows);
///   - every invocation ticks a hotness entry; at the configured
///     thresholds the engine claims ONE background compile slot per
///     entry and the caller enqueues an off-thread compile of the next
///     better tier (vectorized VM program first, then -- when the run
///     asks for it and the build has it -- the native unit);
///   - background compiles run at ThreadPool BACKGROUND priority
///     (support/ThreadPool.h: an idle-only lane), so they can never
///     starve foreground/request execution;
///   - a finished compile lands its artifacts in the CodeCache and
///     lowers the entry's ready tier; the NEXT invocation enters there
///     and hits warm cache. The swap-in point is the run boundary: an
///     in-flight run always completes on the tier it started.
///
/// Promotion never races demotion. Both mutate one mutex-guarded entry,
/// and a demotion pins the entry below the failing tier (numerically
/// above it -- ExecTier is best-first) until the CodeCache generation
/// changes (jit::cache::generation(), bumped by clear()): a function
/// that trapped at Vectorized is not re-promoted into Vectorized, and a
/// tier whose background compile failed is never entered at all.
///
/// The engine is tier-lattice-agnostic on purpose: it stores tiers as
/// raw uint8_t values of vapor::ExecTier (0 = Native ... 4 =
/// Interpreter, lower is better) so this layer needs no dependency on
/// the pipeline headers above it.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_JIT_TIERING_H
#define VAPOR_JIT_TIERING_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace vapor {
namespace support {
class ThreadPool;
} // namespace support

namespace jit {
namespace tiering {

/// Out-of-band tier value: "no tier" / "no pin".
constexpr uint8_t NoTier = 0xff;

struct Config {
  /// Invocation count at which the first promotion step (the vectorized
  /// VM program -- or the requested entry tier itself when that is
  /// worse than Vectorized) is queued for background compilation.
  uint32_t HotVectorized = 8;
  /// Invocation count at which the native unit is queued (only reached
  /// when the run asked for the native tier and the first step landed).
  uint32_t HotNative = 24;
  /// Bound on outstanding (queued or compiling) background jobs across
  /// all entries; past it a threshold crossing is rejected this
  /// invocation (counted in EngineStats::QueueRejects) and retried on
  /// the next one.
  uint32_t MaxQueue = 64;
  /// Bound on hotness-table entries; past it the least-recently-invoked
  /// entries without an in-flight compile are evicted.
  uint32_t MaxEntries = 4096;
  /// Worker count of the engine-owned background pool, created lazily
  /// when no external pool is attached (the server attaches its request
  /// pool instead, so compiles ride its background lane).
  unsigned OwnWorkers = 1;
};

/// What onInvoke tells the caller to do for this run.
struct Decision {
  uint8_t EntryTier = NoTier; ///< Tier this invocation should enter at.
  /// True when this call claimed the entry's background-compile slot:
  /// the caller MUST follow up with enqueueCompile for CompileTier.
  bool ShouldCompile = false;
  uint8_t CompileTier = NoTier;
  uint64_t Invocations = 0; ///< Count after this invocation's tick.
};

/// One row of a per-function promotion timeline (vapor-explain).
struct TransitionEvent {
  enum Kind : uint8_t {
    Promoted,      ///< Background compile succeeded; ready tier lowered.
    CompileFailed, ///< Background compile failed; pinned below ToTier.
    Demoted,       ///< A tiered run failed/demoted; pinned at ToTier.
  };
  Kind What = Promoted;
  uint64_t AtInvocation = 0; ///< Invocation count when the event's
                             ///< compile was queued (or the run ran).
  uint8_t FromTier = NoTier;
  uint8_t ToTier = NoTier;
  double QueueWaitMicros = 0; ///< Submission -> job start (compiles).
  double CompileMicros = 0;   ///< Job start -> finish (compiles).
};

/// Snapshot of one hotness entry.
struct KeyReport {
  uint64_t Key = 0;
  uint64_t Invocations = 0;
  uint8_t ReadyTier = NoTier; ///< Entry tier of the next invocation.
  uint8_t PinTier = NoTier;   ///< Best tier allowed by pins (NoTier = none).
  bool CompileInFlight = false;
  std::vector<TransitionEvent> Events;
};

struct EngineStats {
  uint64_t Invocations = 0;
  uint64_t Promotions = 0;     ///< Ready-tier improvements applied.
  uint64_t CompilesOk = 0;     ///< Background compiles that succeeded.
  uint64_t CompilesFailed = 0; ///< Background compiles that failed (pin).
  uint64_t QueueRejects = 0;   ///< Threshold crossings past MaxQueue.
  uint64_t Pins = 0;           ///< Demotion/compile-failure pins recorded.
  uint64_t QueueDepth = 0;     ///< Outstanding background jobs right now.
  uint64_t Entries = 0;        ///< Live hotness-table entries.
};

class Engine {
public:
  Engine();
  ~Engine(); ///< Drains outstanding compiles, then tears down the pool.

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Ticks \p Key's hotness entry and picks the entry tier for this
  /// invocation. \p EagerTier is the best tier this run is allowed to
  /// reach (the entry tier eager mode would use); \p ColdTier is the
  /// cheapest tier the flow may run (Interpreter for trusted flows,
  /// ScalarJit for fail-closed server flows). When a promotion
  /// threshold is crossed the returned Decision claims the compile slot
  /// -- the caller must then enqueueCompile exactly once.
  Decision onInvoke(uint64_t Key, uint8_t EagerTier, uint8_t ColdTier);

  /// Submits the background compile claimed by onInvoke. \p Compile
  /// returns true when the target tier's artifacts are ready (they must
  /// already be in the CodeCache); false pins the entry below
  /// \p ToTier. Runs at background priority on the attached pool (or
  /// the lazily created engine-owned one). Must not be called without a
  /// claiming Decision.
  void enqueueCompile(uint64_t Key, uint8_t FromTier, uint8_t ToTier,
                      std::function<bool()> Compile);

  /// Reports a tiered run that failed or demoted: the entry is pinned
  /// so later invocations never enter above \p PinTier (the tier the
  /// run actually ended on, one past it when even that tier failed).
  /// Deadline exhaustion is NOT a tier failure -- callers skip it.
  void onOutcome(uint64_t Key, uint8_t PinTier);

  /// Blocks until every enqueued background compile has finished. Safe
  /// from any thread that is not itself a background-compile job.
  void drain();

  /// Drains, then drops every hotness entry, timeline, and stat.
  /// Benches and tests use this for cold-start measurements.
  void reset();

  Config config() const;
  /// Drains, then installs \p C (thresholds apply to future ticks).
  void setConfig(const Config &C);

  /// Routes background compiles onto \p Pool's background lane instead
  /// of the engine-owned pool (the server shares its request pool this
  /// way). Null reverts to the owned pool. Drains first, so no job ever
  /// outlives the pool it was submitted to.
  void attachPool(support::ThreadPool *Pool);

  EngineStats stats() const;

  /// Timeline snapshot for \p Key (vapor-explain); nullopt when the
  /// entry does not exist (never invoked, or evicted).
  std::optional<KeyReport> keyReport(uint64_t Key) const;

private:
  struct Impl;
  Impl *I; ///< Intentionally leaked-safe pimpl (owned, deleted in dtor).
};

/// The process-wide engine every RunOptions::Tiered run goes through.
Engine &engine();

} // namespace tiering
} // namespace jit
} // namespace vapor

#endif // VAPOR_JIT_TIERING_H
