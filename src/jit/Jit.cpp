//===- jit/Jit.cpp - The online (JIT) compilation stage --------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Pipeline (each pass linear in bytecode size — the paper's constraint):
//
//   1. foldGuards      — resolve version_guard conditions that are static
//                        for this (target, runtime) pair.
//   2. planRegions     — per region (function top level and each if-arm),
//                        decide vector vs scalar-expansion lowering and a
//                        strategy for every memory idiom.
//   3. markLive        — dead-code analysis given those strategies: the
//                        realignment chains of paper Fig. 3a die here when
//                        the target uses plain (mis)aligned accesses.
//   4. emit            — one walk producing machine code. Vector values
//                        map to one vector register (vector regions) or to
//                        per-lane scalar registers at the granularity of
//                        the widest element type (scalar regions).
//   5. post passes     — strong tier: loop-invariant hoisting; both tiers:
//                        register-pressure spill modeling; legacy profile:
//                        unpromoted accumulators (Table 3).
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#include "ir/ScalarOps.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "support/Support.h"

#include <algorithm>
#include <map>
#include <set>

using namespace vapor;
using namespace vapor::jit;
using namespace vapor::ir;
using namespace vapor::target;

RuntimeInfo RuntimeInfo::fromMemory(const MemoryImage &Mem) {
  RuntimeInfo RT;
  for (size_t I = 0; I < Mem.arrayCount(); ++I)
    RT.Arrays.push_back({true, Mem.base(static_cast<uint32_t>(I))});
  return RT;
}

RuntimeInfo RuntimeInfo::unknown(size_t NumArrays) {
  RuntimeInfo RT;
  RT.Arrays.resize(NumArrays);
  return RT;
}

//===--- The per-target strategy model ------------------------------------===//

const char *jit::memStrategyName(MemStrategy S) {
  switch (S) {
  case MemStrategy::Aligned:
    return "aligned";
  case MemStrategy::Unaligned:
    return "unaligned";
  case MemStrategy::Perm:
    return "perm-realign";
  case MemStrategy::Scalar:
    return "scalarized";
  }
  vapor_unreachable("bad strategy");
}

bool jit::hintProvesAligned(const AlignHint &H, uint32_t Array,
                            const TargetDesc &T, const RuntimeInfo &RT) {
  if (!H.known() || T.VSBytes == 0 ||
      H.Mis % static_cast<int32_t>(T.VSBytes) != 0)
    return false;
  if (!H.IfJitAligns)
    return true;
  return Array < RT.Arrays.size() && RT.Arrays[Array].KnownBase &&
         isAligned(RT.Arrays[Array].Base, T.VSBytes);
}

bool jit::hintCouldProveAligned(const AlignHint &H, const TargetDesc &T) {
  return H.known() && T.VSBytes != 0 &&
         H.Mis % static_cast<int32_t>(T.VSBytes) == 0;
}

MemStrategy jit::memStrategy(Opcode Op, bool ScalarRegion, bool HintAligned,
                             const TargetDesc &T) {
  switch (Op) {
  case Opcode::ALoad:
  case Opcode::AStore:
    return ScalarRegion ? MemStrategy::Scalar : MemStrategy::Aligned;
  case Opcode::ULoad:
  case Opcode::UStore:
    if (ScalarRegion)
      return MemStrategy::Scalar;
    return HintAligned ? MemStrategy::Aligned : MemStrategy::Unaligned;
  case Opcode::RealignLoad:
    if (ScalarRegion)
      return MemStrategy::Scalar;
    if (HintAligned)
      return MemStrategy::Aligned;
    return T.HasMisaligned ? MemStrategy::Unaligned : MemStrategy::Perm;
  default:
    vapor_unreachable("opcode has no memory strategy");
  }
}

bool jit::isLibCallable(Opcode Op) {
  return Op == Opcode::WidenMultHi || Op == Opcode::WidenMultLo ||
         Op == Opcode::Convert;
}

std::string jit::vectorBlockReason(const Function &F, const Instr &I,
                                   const TargetDesc &T, bool HintAligned) {
  bool VectorInstr = I.Ty.isVector();
  for (ValueId Op : I.Ops)
    VectorInstr |= F.typeOf(Op).isVector();
  if (!VectorInstr)
    return "";
  ScalarKind K = I.Ty.isVector() ? I.Ty.Elem : ScalarKind::None;
  if (K != ScalarKind::None && K != ScalarKind::I1 && !T.supportsVecKind(K))
    return std::string("no vector support for ") + scalarKindName(K);
  if (!T.supportsVecOp(I.Op) &&
      !(T.LibFallbackForOps && isLibCallable(I.Op)))
    return std::string("no vector support for ") + opcodeMnemonic(I.Op);
  if ((I.Op == Opcode::ULoad || I.Op == Opcode::UStore) &&
      !T.HasMisaligned && !HintAligned)
    return "misaligned access unsupported";
  if (I.Op == Opcode::RealignLoad && !T.HasMisaligned &&
      !T.HasPermRealign && !HintAligned)
    return "no realignment mechanism";
  return "";
}

namespace {

void scanMinVecElemSize(const Function &F, const Region &R,
                        unsigned &MinSize) {
  for (const NodeRef &N : R.Nodes) {
    switch (N.Kind) {
    case NodeKind::Instr: {
      const Instr &I = F.Instrs[N.Index];
      if (I.Ty.isVector() && I.Ty.Elem != ScalarKind::I1)
        MinSize = std::min(MinSize, scalarSize(I.Ty.Elem));
      break;
    }
    case NodeKind::Loop:
      scanMinVecElemSize(F, F.Loops[N.Index].Body, MinSize);
      break;
    case NodeKind::If:
      scanMinVecElemSize(F, F.Ifs[N.Index].Then, MinSize);
      scanMinVecElemSize(F, F.Ifs[N.Index].Else, MinSize);
      break;
    }
  }
}

} // namespace

unsigned jit::minVectorElemSize(const Function &F, const Region &R) {
  unsigned MinSize = 16;
  scanMinVecElemSize(F, R, MinSize);
  return MinSize;
}

int64_t jit::loopVF(const Function &F, const LoopStmt &L,
                    const TargetDesc &T) {
  unsigned MinSize = minVectorElemSize(F, L.Body);
  if (MinSize == 16 || T.VSBytes == 0)
    return 1;
  return T.VSBytes / MinSize;
}

std::optional<bool> jit::foldGuardStatic(const Instr &I, const TargetDesc &T,
                                         const RuntimeInfo &RT,
                                         Tier CompilerTier,
                                         bool NestedInLoop) {
  assert(I.Op == Opcode::VersionGuard && "not a guard");
  switch (I.Guard) {
  case GuardKind::TypeSupported:
    // Static target capability; every online compiler folds this.
    return T.supportsVecKind(I.TyParam);
  case GuardKind::PreferOuterLoop:
    // Cost-model answer: short-SIMD in-order targets prefer outer-loop
    // vectorization of reduction nests (paper [18]).
    return T.VSBytes != 0 && T.VSBytes <= 16;
  case GuardKind::BasesAligned: {
    // The weak tier folds what simple local constant propagation can:
    // top-level guards. Nested ones (MMM's alignment test inside the
    // outer loop) stay as runtime checks — paper Sec. V-A(a).
    if (CompilerTier != Tier::Strong && NestedInLoop)
      return std::nullopt;
    bool AllAligned = true;
    for (uint32_t A : I.GuardArgs) {
      if (A >= RT.Arrays.size() || !RT.Arrays[A].KnownBase)
        return std::nullopt;
      AllAligned &=
          T.VSBytes == 0 || isAligned(RT.Arrays[A].Base, T.VSBytes);
    }
    return AllAligned;
  }
  case GuardKind::None:
    break;
  }
  return std::nullopt;
}

namespace {

class JitCompiler {
public:
  JitCompiler(const Function &Fn, const TargetDesc &Target,
              const RuntimeInfo &Runtime, const Options &Options_)
      : F(Fn), T(Target), RT(Runtime), Opt(Options_) {
    assert(RT.Arrays.size() >= F.Arrays.size() &&
           "runtime info must cover every array");
  }

  CompileResult run() {
    M.Name = F.Name;
    M.VSBytes = T.VSBytes;
    M.Arrays = F.Arrays;

    computeScalarExpansionSize();
    foldGuards();
    planRegion(F.Body, decideTopLevelMode());
    markLive();

    for (ValueId P : F.Params) {
      MReg R = M.makeReg(F.typeOf(P).Elem, false);
      M.Params.push_back({F.Values[P].Name, R});
      Map[P] = {R};
    }
    emitRegion(F.Body);

    if (Opt.CompilerTier == Tier::Strong)
      hoistInvariants(M.Body, nullptr, 0);
    modelRegisterPressure();
    if (!Opt.PromoteAccumulators)
      demoteAccumulators();

    CompileResult R;
    R.Code = std::move(M);
    R.Scalarized = TopLevelScalar;
    R.ScalarizeReason = ScalarizeReason;
    R.Strategy = tallyStrategy();
    return R;
  }

private:
  const Function &F;
  const TargetDesc &T;
  const RuntimeInfo &RT;
  Options Opt;
  MFunction M;

  unsigned VSEff = 1; ///< Scalar-expansion granularity (widest elem size).
  bool TopLevelScalar = false;
  std::string ScalarizeReason;

  std::map<ValueId, bool> FoldedGuards;
  std::map<uint32_t, MemStrategy> Strat;     ///< Per memory instruction.
  std::map<const Region *, bool> RegionScalar;
  std::vector<bool> InstrNeeded;
  std::vector<bool> ValueLive;
  std::vector<bool> LoopNeeded;

  std::map<ValueId, std::vector<MReg>> Map; ///< IR value -> lane registers.
  std::map<uint32_t, MReg> BaseReg;         ///< Array -> base-address reg.

  /// Summarizes the per-access and per-guard decisions this compile took
  /// (the observability layer's strategy record).
  StrategyStats tallyStrategy() const {
    StrategyStats S;
    for (const auto &Entry : Strat) {
      switch (Entry.second) {
      case MemStrategy::Aligned:
        ++S.MemAligned;
        break;
      case MemStrategy::Unaligned:
        ++S.MemUnaligned;
        break;
      case MemStrategy::Perm:
        ++S.MemPerm;
        break;
      case MemStrategy::Scalar:
        ++S.MemScalar;
        break;
      }
    }
    for (const auto &Entry : FoldedGuards)
      (Entry.second ? S.GuardsFoldedTrue : S.GuardsFoldedFalse) += 1;
    for (const Instr &I : F.Instrs)
      if (I.Op == Opcode::VersionGuard && !FoldedGuards.count(I.Result))
        ++S.GuardsRuntime;
    return S;
  }

  //===--- Pass 0: scalar-expansion granularity ---------------------------===//

  void computeScalarExpansionSize() {
    for (const ValueInfo &V : F.Values)
      if (V.Ty.isVector() && V.Ty.Elem != ScalarKind::I1)
        VSEff = std::max(VSEff, scalarSize(V.Ty.Elem));
  }

  //===--- Pass 1: guard folding -----------------------------------------===//

  void foldGuards() {
    std::set<uint32_t> NestedGuards;
    collectNestedGuards(F.Body, /*InLoop=*/false, NestedGuards);
    for (uint32_t Idx = 0; Idx < F.Instrs.size(); ++Idx) {
      const Instr &I = F.Instrs[Idx];
      if (I.Op != Opcode::VersionGuard)
        continue;
      auto Folded = foldGuardStatic(I, T, RT, Opt.CompilerTier,
                                    NestedGuards.count(Idx) != 0);
      if (Folded)
        FoldedGuards[I.Result] = *Folded;
    }
  }

  void collectNestedGuards(const Region &R, bool InLoop,
                           std::set<uint32_t> &Out) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        if (InLoop && F.Instrs[N.Index].Op == Opcode::VersionGuard)
          Out.insert(N.Index);
        break;
      case NodeKind::Loop:
        collectNestedGuards(F.Loops[N.Index].Body, true, Out);
        break;
      case NodeKind::If:
        collectNestedGuards(F.Ifs[N.Index].Then, InLoop, Out);
        collectNestedGuards(F.Ifs[N.Index].Else, InLoop, Out);
        break;
      }
    }
  }

  //===--- Pass 2: region modes and memory strategies ---------------------===//

  bool decideTopLevelMode() {
    if (Opt.ForceScalarize) {
      TopLevelScalar = true;
      ScalarizeReason = "scalarization forced (executor deoptimization)";
      return true;
    }
    if (!T.hasSimd()) {
      TopLevelScalar = true;
      ScalarizeReason = "target has no SIMD support";
      return true;
    }
    return false;
  }

  /// \returns a reason string if the vector code in \p R (its own scope,
  /// excluding folded-off arms) cannot be lowered vectorially.
  std::string vectorBlocker(const Region &R) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr: {
        const Instr &I = F.Instrs[N.Index];
        std::string S =
            vectorBlockReason(F, I, T, hintAligned(I.Hint, I.Array));
        if (!S.empty())
          return S;
        break;
      }
      case NodeKind::Loop: {
        std::string S = vectorBlocker(F.Loops[N.Index].Body);
        if (!S.empty())
          return S;
        break;
      }
      case NodeKind::If: {
        // Arms get their own mode; nothing to check here.
        break;
      }
      }
    }
    return "";
  }

  /// Whether the hint proves VS-alignment of the access (paper
  /// Sec. III-B(c), the single-version alternative to versioning).
  bool hintAligned(const AlignHint &H, uint32_t Array) const {
    return hintProvesAligned(H, Array, T, RT);
  }

  /// Decides the lowering mode of \p R and the strategy of every memory
  /// idiom directly or transitively inside it (stopping at if-arms, which
  /// decide for themselves).
  void planRegion(const Region &R, bool ParentScalar) {
    bool Scalar = ParentScalar;
    if (!Scalar) {
      std::string Blocker = vectorBlocker(R);
      if (!Blocker.empty()) {
        Scalar = true;
        if (&R == &F.Body) {
          TopLevelScalar = true;
          ScalarizeReason = Blocker;
        }
      }
    }
    RegionScalar[&R] = Scalar;
    planNodes(R, Scalar);
  }

  void planNodes(const Region &R, bool Scalar) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        planInstr(F.Instrs[N.Index], N.Index, Scalar);
        break;
      case NodeKind::Loop: {
        const LoopStmt &L = F.Loops[N.Index];
        bool LoopScalar = Scalar;
        if (!LoopScalar && L.MaxSafeVF > 0 &&
            loopVF(L) > L.MaxSafeVF)
          LoopScalar = true; // Dependence hint: this VF is too wide.
        if (!LoopScalar) {
          std::string Blocker = vectorBlocker(L.Body);
          if (!Blocker.empty())
            LoopScalar = true;
        }
        RegionScalar[&L.Body] = LoopScalar;
        planNodes(L.Body, LoopScalar);
        break;
      }
      case NodeKind::If: {
        const IfStmt &S = F.Ifs[N.Index];
        auto Folded = FoldedGuards.find(S.Cond);
        if (Folded != FoldedGuards.end()) {
          // Only the surviving arm is compiled at all.
          planRegion(Folded->second ? S.Then : S.Else, Scalar);
          RegionScalar[&(Folded->second ? S.Else : S.Then)] = Scalar;
        } else {
          planRegion(S.Then, Scalar);
          planRegion(S.Else, Scalar);
        }
        break;
      }
      }
    }
  }

  /// This target's vectorization factor for loop \p L.
  int64_t loopVF(const LoopStmt &L) const { return jit::loopVF(F, L, T); }

  void planInstr(const Instr &I, uint32_t Idx, bool Scalar) {
    switch (I.Op) {
    case Opcode::ALoad:
    case Opcode::AStore:
    case Opcode::ULoad:
    case Opcode::UStore:
    case Opcode::RealignLoad:
      Strat[Idx] =
          memStrategy(I.Op, Scalar, hintAligned(I.Hint, I.Array), T);
      break;
    default:
      break;
    }
  }

  //===--- Pass 3: liveness / dead-code analysis --------------------------===//

  /// Operands that remain live under the chosen strategy. The whole point
  /// of the split-layer realignment design: when a target does not need
  /// the chain, realign_load keeps only its address operand and the chain
  /// dies (paper Sec. III-C(b,c,d)).
  std::vector<ValueId> keptOperands(const Instr &I, uint32_t Idx) const {
    if (I.Op == Opcode::RealignLoad) {
      auto It = Strat.find(Idx);
      if (It != Strat.end() && It->second != MemStrategy::Perm)
        return {I.Ops[3]};
    }
    if (I.Op == Opcode::LoopBound) {
      // Only the bound selected by the region's lowering mode stays live.
      return {I.Ops[loopBoundScalar(Idx) ? 1 : 0]};
    }
    return I.Ops;
  }

  /// Whether the loop_bound at \p Idx resolves to its scalar argument.
  /// True only in scalar-expansion regions... which for loop_bound's
  /// semantics (paper Table 1) means: scalar peel loops must not run.
  bool loopBoundScalar(uint32_t Idx) const {
    auto It = InstrRegionScalar.find(Idx);
    return It != InstrRegionScalar.end() && It->second;
  }

  std::map<uint32_t, bool> InstrRegionScalar;

  void markLive() {
    InstrNeeded.assign(F.Instrs.size(), false);
    ValueLive.assign(F.Values.size(), false);
    LoopNeeded.assign(F.Loops.size(), false);

    // Record each instruction's region mode (needed by loop_bound).
    recordModes(F.Body, RegionScalar.at(&F.Body));

    std::vector<ValueId> Work;
    auto LiveValue = [&](ValueId V) {
      if (V == NoValue || ValueLive[V])
        return;
      ValueLive[V] = true;
      Work.push_back(V);
    };

    // Roots: every store that can execute.
    rootRegion(F.Body, LiveValue);

    // Propagate.
    while (!Work.empty()) {
      ValueId V = Work.back();
      Work.pop_back();
      const ValueInfo &VI = F.Values[V];
      switch (VI.Def) {
      case ValueDef::Param:
        break;
      case ValueDef::Instr: {
        uint32_t Idx = VI.A;
        if (!InstrNeeded[Idx]) {
          InstrNeeded[Idx] = true;
          for (ValueId Op : keptOperands(F.Instrs[Idx], Idx))
            LiveValue(Op);
        }
        break;
      }
      case ValueDef::LoopInd:
      case ValueDef::LoopCarried:
      case ValueDef::LoopResult: {
        const LoopStmt &L = F.Loops[VI.A];
        LoopNeeded[VI.A] = true;
        LiveValue(L.Lower);
        LiveValue(L.Upper);
        LiveValue(L.Step);
        if (VI.Def != ValueDef::LoopInd) {
          const auto &C = L.Carried[VI.B];
          LiveValue(C.Init);
          LiveValue(C.Next);
          // The phi must survive so the carried slot exists.
          if (!ValueLive[C.Phi]) {
            ValueLive[C.Phi] = true;
          }
        }
        break;
      }
      }
    }
  }

  void recordModes(const Region &R, bool Scalar) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        InstrRegionScalar[N.Index] = Scalar;
        break;
      case NodeKind::Loop: {
        const Region &Body = F.Loops[N.Index].Body;
        recordModes(Body, RegionScalar.count(&Body)
                              ? RegionScalar.at(&Body)
                              : Scalar);
        break;
      }
      case NodeKind::If: {
        const IfStmt &S = F.Ifs[N.Index];
        recordModes(S.Then, RegionScalar.count(&S.Then)
                                ? RegionScalar.at(&S.Then)
                                : Scalar);
        recordModes(S.Else, RegionScalar.count(&S.Else)
                                ? RegionScalar.at(&S.Else)
                                : Scalar);
        break;
      }
      }
    }
  }

  template <typename LiveFn> void rootRegion(const Region &R, LiveFn Live) {
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr: {
        const Instr &I = F.Instrs[N.Index];
        if (!writesMemory(I.Op))
          break;
        InstrNeeded[N.Index] = true;
        for (ValueId Op : keptOperands(I, N.Index))
          Live(Op);
        break;
      }
      case NodeKind::Loop: {
        const LoopStmt &L = F.Loops[N.Index];
        rootRegion(L.Body, Live);
        if (regionHasNeeded(L.Body)) {
          LoopNeeded[N.Index] = true;
          Live(L.Lower);
          Live(L.Upper);
          Live(L.Step);
        }
        break;
      }
      case NodeKind::If: {
        const IfStmt &S = F.Ifs[N.Index];
        auto Folded = FoldedGuards.find(S.Cond);
        if (Folded != FoldedGuards.end()) {
          rootRegion(Folded->second ? S.Then : S.Else, Live);
        } else {
          rootRegion(S.Then, Live);
          rootRegion(S.Else, Live);
          Live(S.Cond);
        }
        break;
      }
      }
    }
  }

  bool regionHasNeeded(const Region &R) const {
    for (const NodeRef &N : R.Nodes) {
      if (N.Kind == NodeKind::Instr && InstrNeeded[N.Index])
        return true;
      if (N.Kind == NodeKind::Loop &&
          (LoopNeeded[N.Index] || regionHasNeeded(F.Loops[N.Index].Body)))
        return true;
      if (N.Kind == NodeKind::If &&
          (regionHasNeeded(F.Ifs[N.Index].Then) ||
           regionHasNeeded(F.Ifs[N.Index].Else)))
        return true;
    }
    return false;
  }

  //===--- Pass 4: emission -----------------------------------------------===//

  // Machine-region insertion stack (stable across vector reallocation).
  struct MRef {
    enum class K : uint8_t { Body, LoopBody, IfThen, IfElse } Kind;
    uint32_t Idx = 0;
  };
  std::vector<MRef> MStack{{MRef::K::Body, 0}};

  MRegion &curRegion() {
    const MRef &R = MStack.back();
    switch (R.Kind) {
    case MRef::K::Body:
      return M.Body;
    case MRef::K::LoopBody:
      return M.Loops[R.Idx].Body;
    case MRef::K::IfThen:
      return M.Ifs[R.Idx].Then;
    case MRef::K::IfElse:
      return M.Ifs[R.Idx].Else;
    }
    vapor_unreachable("bad machine region ref");
  }

  MReg emit(MInstr I) {
    MReg Dst = I.Dst;
    M.Instrs.push_back(std::move(I));
    curRegion().Nodes.push_back(
        {MNodeKind::Instr, static_cast<uint32_t>(M.Instrs.size() - 1)});
    return Dst;
  }

  MReg ldImm(int64_t V, ScalarKind K = ScalarKind::I64) {
    MInstr I;
    I.Op = MOp::LdImm;
    I.Kind = K;
    I.Imm = V;
    I.Dst = M.makeReg(K, false);
    return emit(std::move(I));
  }

  MReg alu(Opcode SubOp, ScalarKind K, bool Vector, std::vector<MReg> Srcs) {
    MInstr I;
    I.Op = MOp::Alu;
    I.SubOp = SubOp;
    I.Kind = K;
    I.Vector = Vector;
    I.Srcs = std::move(Srcs);
    I.Dst = M.makeReg(isCompare(SubOp) ? ScalarKind::I1 : K, Vector);
    return emit(std::move(I));
  }

  MReg baseOf(uint32_t Array) {
    auto It = BaseReg.find(Array);
    if (It != BaseReg.end())
      return It->second;
    // Bases load once at entry; emit into the function body start.
    MInstr I;
    I.Op = MOp::LoadBase;
    I.Array = Array;
    I.Dst = M.makeReg(ScalarKind::I64, false);
    MReg R = I.Dst;
    M.Instrs.push_back(std::move(I));
    M.Body.Nodes.insert(M.Body.Nodes.begin(),
                        {MNodeKind::Instr,
                         static_cast<uint32_t>(M.Instrs.size() - 1)});
    return BaseReg[Array] = R;
  }

  /// Byte address of element \p IdxReg of \p Array, plus \p LaneOff lanes.
  MReg addrOf(uint32_t Array, MReg IdxReg, ScalarKind K, unsigned LaneOff) {
    MReg Idx = IdxReg;
    if (LaneOff != 0) {
      MReg Off = ldImm(LaneOff);
      Idx = alu(Opcode::Add, ScalarKind::I64, false, {IdxReg, Off});
    }
    MInstr I;
    I.Op = MOp::Addr;
    I.Srcs = {baseOf(Array), Idx};
    I.Scale = scalarSize(K);
    I.Folded = Opt.FoldAddressing;
    I.Dst = M.makeReg(ScalarKind::I64, false);
    return emit(std::move(I));
  }

  const std::vector<MReg> &lanesOf(ValueId V) {
    auto It = Map.find(V);
    assert(It != Map.end() && "IR value not yet lowered");
    return It->second;
  }

  unsigned scalarLaneCount(ScalarKind K) const {
    return std::max(1u, VSEff / scalarSize(K));
  }

  void emitRegion(const Region &R) {
    bool Scalar = RegionScalar.count(&R) ? RegionScalar.at(&R)
                                         : TopLevelScalar;
    for (const NodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case NodeKind::Instr:
        if (InstrNeeded[N.Index])
          emitInstr(F.Instrs[N.Index], N.Index, Scalar);
        break;
      case NodeKind::Loop:
        if (LoopNeeded[N.Index] ||
            regionHasNeeded(F.Loops[N.Index].Body))
          emitLoop(F.Loops[N.Index],
                   RegionScalar.count(&F.Loops[N.Index].Body)
                       ? RegionScalar.at(&F.Loops[N.Index].Body)
                       : Scalar);
        break;
      case NodeKind::If:
        emitIf(F.Ifs[N.Index], Scalar);
        break;
      }
    }
  }

  void emitLoop(const LoopStmt &L, bool Scalar) {
    // A vector main loop whose body is scalar-expanded (dependence hint or
    // per-loop capability fallback) consumes fewer elements per iteration
    // than the get_VF its enclosing (vector) region materialized: its step
    // must be re-materialized at the scalar-expansion granularity. The
    // scalar step always divides the vector one (both powers of two), so
    // the precomputed main bound stays exact.
    MReg StepReg = lanesOf(L.Step)[0];
    if (Scalar && L.Role == LoopRole::VecMain) {
      unsigned MinSize = minVectorElemSize(F, L.Body);
      int64_t ScalarStep =
          MinSize == 16 ? 1
                        : std::max<int64_t>(1, VSEff / MinSize);
      StepReg = ldImm(ScalarStep);
    }
    M.Loops.emplace_back();
    uint32_t LoopIdx = static_cast<uint32_t>(M.Loops.size() - 1);
    {
      MLoop &ML = M.Loops[LoopIdx];
      ML.Lower = lanesOf(L.Lower)[0];
      ML.Upper = lanesOf(L.Upper)[0];
      ML.Step = StepReg;
      ML.IsVectorMain = L.Role == LoopRole::VecMain && !Scalar;
    }
    MReg Iv = M.makeReg(ScalarKind::I64, false);
    M.Loops[LoopIdx].IndVar = Iv;
    Map[L.IndVar] = {Iv};

    // Live carried variables become per-lane machine carried slots.
    struct CarriedLanes {
      const LoopStmt::CarriedVar *C;
      std::vector<MReg> Phis;
    };
    std::vector<CarriedLanes> LiveCarried;
    for (const auto &C : L.Carried) {
      if (!ValueLive[C.Phi] && !ValueLive[C.Result])
        continue;
      CarriedLanes CL;
      CL.C = &C;
      const std::vector<MReg> &Inits = lanesOf(C.Init);
      for (MReg Init : Inits) {
        MReg Phi = M.makeReg(M.Regs[Init].Kind, M.Regs[Init].Vector);
        M.Loops[LoopIdx].Carried.push_back({Phi, Init, NoReg});
        CL.Phis.push_back(Phi);
      }
      Map[C.Phi] = CL.Phis;
      LiveCarried.push_back(std::move(CL));
    }

    curRegion().Nodes.push_back({MNodeKind::Loop, LoopIdx});
    MStack.push_back({MRef::K::LoopBody, LoopIdx});
    emitRegion(L.Body);
    MStack.pop_back();

    // Wire carried nexts and expose results.
    size_t Slot = 0;
    for (const auto &CL : LiveCarried) {
      const std::vector<MReg> &Nexts = lanesOf(CL.C->Next);
      for (size_t LIdx = 0; LIdx < CL.Phis.size(); ++LIdx)
        M.Loops[LoopIdx].Carried[Slot + LIdx].Next = Nexts[LIdx];
      // After the loop the phi registers hold the final values.
      Map[CL.C->Result] = CL.Phis;
      Slot += CL.Phis.size();
    }
  }

  void emitIf(const IfStmt &S, bool Scalar) {
    auto Folded = FoldedGuards.find(S.Cond);
    if (Folded != FoldedGuards.end()) {
      emitRegion(Folded->second ? S.Then : S.Else);
      return;
    }
    if (!regionHasNeeded(S.Then) && !regionHasNeeded(S.Else))
      return;
    (void)Scalar;
    M.Ifs.emplace_back();
    uint32_t IfIdx = static_cast<uint32_t>(M.Ifs.size() - 1);
    M.Ifs[IfIdx].Cond = lanesOf(S.Cond)[0];
    curRegion().Nodes.push_back({MNodeKind::If, IfIdx});
    MStack.push_back({MRef::K::IfThen, IfIdx});
    emitRegion(S.Then);
    MStack.back().Kind = MRef::K::IfElse;
    emitRegion(S.Else);
    MStack.pop_back();
  }

  void emitInstr(const Instr &I, uint32_t Idx, bool Scalar);

  // Per-op emission helpers (defined below, out of line for readability).
  std::vector<MReg> lowerVectorLoad(const Instr &I, uint32_t Idx,
                                    bool Scalar);
  void lowerVectorStore(const Instr &I, uint32_t Idx, bool Scalar);
  std::vector<MReg> lowerGuardRuntime(const Instr &I);

  //===--- Pass 5: post passes --------------------------------------------===//

  void collectDefined(const MRegion &R, std::set<MReg> &Out) {
    for (const MNodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case MNodeKind::Instr:
        if (M.Instrs[N.Index].Dst != NoReg)
          Out.insert(M.Instrs[N.Index].Dst);
        break;
      case MNodeKind::Loop: {
        const MLoop &L = M.Loops[N.Index];
        Out.insert(L.IndVar);
        for (const auto &C : L.Carried)
          Out.insert(C.Phi);
        collectDefined(L.Body, Out);
        break;
      }
      case MNodeKind::If:
        collectDefined(M.Ifs[N.Index].Then, Out);
        collectDefined(M.Ifs[N.Index].Else, Out);
        break;
      }
    }
  }

  static bool hoistable(const MInstr &I) {
    switch (I.Op) {
    case MOp::LdImm:
    case MOp::LdFImm:
    case MOp::Mov:
    case MOp::LoadBase:
    case MOp::Alu:
    case MOp::Addr:
    case MOp::VSplat:
    case MOp::VAffine:
    case MOp::VSetLane0:
    case MOp::GetPerm:
      return true;
    default:
      return false; // Loads/stores and lane ops stay put.
    }
  }

  /// Strong-tier loop-invariant code motion: hoists pure instructions
  /// whose sources are defined outside the loop.
  void hoistInvariants(MRegion &R, MRegion *Parent, size_t MyNodePos) {
    (void)Parent;
    (void)MyNodePos;
    for (size_t NIdx = 0; NIdx < R.Nodes.size(); ++NIdx) {
      MNodeRef N = R.Nodes[NIdx];
      if (N.Kind == MNodeKind::If) {
        hoistInvariants(M.Ifs[N.Index].Then, &R, NIdx);
        hoistInvariants(M.Ifs[N.Index].Else, &R, NIdx);
        continue;
      }
      if (N.Kind != MNodeKind::Loop)
        continue;
      MLoop &L = M.Loops[N.Index];
      hoistInvariants(L.Body, &R, NIdx);
      bool Changed = true;
      while (Changed) {
        Changed = false;
        std::set<MReg> DefinedIn;
        collectDefined(L.Body, DefinedIn);
        DefinedIn.insert(L.IndVar);
        for (const auto &C : L.Carried)
          DefinedIn.insert(C.Phi);
        for (size_t BIdx = 0; BIdx < L.Body.Nodes.size(); ++BIdx) {
          MNodeRef BN = L.Body.Nodes[BIdx];
          if (BN.Kind != MNodeKind::Instr)
            continue;
          const MInstr &BI = M.Instrs[BN.Index];
          if (!hoistable(BI))
            continue;
          bool Invariant = true;
          for (MReg S : BI.Srcs)
            Invariant &= !DefinedIn.count(S);
          if (!Invariant)
            continue;
          // Move the node just before the loop in the parent region.
          L.Body.Nodes.erase(L.Body.Nodes.begin() + BIdx);
          auto Pos = std::find_if(R.Nodes.begin(), R.Nodes.end(),
                                  [&](const MNodeRef &X) {
                                    return X.Kind == MNodeKind::Loop &&
                                           X.Index == N.Index;
                                  });
          R.Nodes.insert(Pos, BN);
          Changed = true;
          break; // Restart: indices shifted.
        }
      }
    }
  }

  /// Linearizes the instructions of a region subtree in execution order.
  void linearize(const MRegion &R, std::vector<const MInstr *> &Out) {
    for (const MNodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case MNodeKind::Instr:
        Out.push_back(&M.Instrs[N.Index]);
        break;
      case MNodeKind::Loop:
        linearize(M.Loops[N.Index].Body, Out);
        break;
      case MNodeKind::If:
        linearize(M.Ifs[N.Index].Then, Out);
        linearize(M.Ifs[N.Index].Else, Out);
        break;
      }
    }
  }

  /// Maximum number of simultaneously live registers (per class) over the
  /// linearized body of \p L — a linear-scan allocator's demand. Carried
  /// phis and externally defined values live across the whole body.
  void maxLivePressure(const MLoop &L, unsigned &ScalarPeak,
                       unsigned &VecPeak) {
    std::vector<const MInstr *> Seq;
    linearize(L.Body, Seq);
    std::map<MReg, std::pair<int, int>> Range; // reg -> [def, last use]
    int End = static_cast<int>(Seq.size());
    auto NoteUse = [&](MReg Reg, int Pos) {
      if (Reg == NoReg)
        return;
      auto It = Range.find(Reg);
      if (It == Range.end())
        Range[Reg] = {0, Pos}; // Defined outside: live from entry.
      else
        It->second.second = std::max(It->second.second, Pos);
    };
    for (int Pos = 0; Pos < End; ++Pos) {
      for (MReg S : Seq[Pos]->Srcs)
        NoteUse(S, Pos);
      if (Seq[Pos]->Dst != NoReg && !Range.count(Seq[Pos]->Dst))
        Range[Seq[Pos]->Dst] = {Pos, Pos};
    }
    // Loop-carried state lives across the back edge: whole body.
    for (const auto &C : L.Carried) {
      Range[C.Phi] = {0, End};
      NoteUse(C.Next, End);
    }
    Range[L.IndVar] = {0, End};

    std::vector<std::pair<int, int>> Events; // (pos, +1/-1) per class tag
    std::vector<std::pair<int, int>> VEvents;
    for (const auto &[Reg, RangePair] : Range) {
      auto &Evs = M.Regs[Reg].Vector ? VEvents : Events;
      Evs.push_back({RangePair.first, +1});
      Evs.push_back({RangePair.second + 1, -1});
    }
    auto Peak = [](std::vector<std::pair<int, int>> &Evs) {
      std::sort(Evs.begin(), Evs.end());
      int Cur = 0, Max = 0;
      for (const auto &[Pos, Delta] : Evs) {
        (void)Pos;
        Cur += Delta;
        Max = std::max(Max, Cur);
      }
      return static_cast<unsigned>(Max);
    };
    ScalarPeak = Peak(Events);
    VecPeak = Peak(VEvents);
  }

  /// Inserts spill traffic into loop bodies whose peak register demand
  /// exceeds the (tier-adjusted) register file. The weak tier wastes half
  /// the file (paper: Mono's "lack of proper global register allocation").
  void modelRegisterPressure() {
    bool Weak = Opt.CompilerTier == Tier::Weak;
    unsigned SAvail = Weak ? std::max(3u, T.ScalarRegs / 2) : T.ScalarRegs;
    unsigned VAvail = Weak ? std::max(3u, T.VectorRegs / 2) : T.VectorRegs;
    for (MLoop &L : M.Loops) {
      unsigned SPeak = 0, VPeak = 0;
      maxLivePressure(L, SPeak, VPeak);
      unsigned Excess = 0;
      if (SPeak > SAvail)
        Excess += SPeak - SAvail;
      if (VPeak > VAvail)
        Excess += VPeak - VAvail;
      for (unsigned E = 0; E < Excess; ++E) {
        for (MOp Op : {MOp::SpillSt, MOp::SpillLd}) {
          MInstr SP;
          SP.Op = Op;
          M.Instrs.push_back(SP);
          L.Body.Nodes.insert(L.Body.Nodes.begin(),
                              {MNodeKind::Instr,
                               static_cast<uint32_t>(M.Instrs.size() - 1)});
        }
      }
    }
  }

  /// Legacy-codegen profile: accumulators live in memory (one spill store
  /// and reload per carried variable per iteration) — the Table 3 "lack
  /// of register promotion of the accumulator in reduction kernels".
  void demoteAccumulators() {
    for (MLoop &L : M.Loops) {
      for (size_t C = 0; C < L.Carried.size(); ++C) {
        for (MOp Op : {MOp::SpillLd, MOp::SpillSt}) {
          MInstr SP;
          SP.Op = Op;
          M.Instrs.push_back(SP);
          L.Body.Nodes.insert(L.Body.Nodes.begin(),
                              {MNodeKind::Instr,
                               static_cast<uint32_t>(M.Instrs.size() - 1)});
        }
      }
    }
  }
};

//===--- Instruction emission --------------------------------------------===//

void JitCompiler::emitInstr(const Instr &I, uint32_t Idx, bool Scalar) {
  auto SetLanes = [&](std::vector<MReg> Lanes) {
    if (I.hasResult())
      Map[I.Result] = std::move(Lanes);
  };

  switch (I.Op) {
  //===--- Constants and scalar arithmetic --------------------------------===//
  case Opcode::ConstInt:
    SetLanes({ldImm(I.IntImm, I.Ty.Elem)});
    return;
  case Opcode::ConstFP: {
    MInstr C;
    C.Op = MOp::LdFImm;
    C.Kind = I.Ty.Elem;
    C.FImm = I.FPImm;
    C.Dst = M.makeReg(I.Ty.Elem, false);
    SetLanes({emit(std::move(C))});
    return;
  }

  //===--- Machine-parameter idioms ---------------------------------------===//
  case Opcode::GetVF:
  case Opcode::GetAlignLimit: {
    unsigned Bytes = Scalar ? VSEff : T.VSBytes;
    SetLanes({ldImm(Bytes / scalarSize(I.TyParam))});
    return;
  }
  case Opcode::GetMisalign: {
    unsigned ES = scalarSize(F.Arrays[I.Array].Elem);
    unsigned AL = (Scalar ? VSEff : T.VSBytes) / ES;
    if (Opt.CompilerTier == Tier::Strong && RT.Arrays[I.Array].KnownBase) {
      uint64_t BaseElems = RT.Arrays[I.Array].Base / ES;
      SetLanes({ldImm((BaseElems + static_cast<uint64_t>(I.IntImm)) % AL)});
      return;
    }
    // Runtime computation: ((base / es) + off) & (AL - 1).
    MReg Base = baseOf(I.Array);
    MReg EsShift = ldImm(static_cast<int64_t>(63 - __builtin_clzll(ES)));
    MReg Elems = alu(Opcode::ShrL, ScalarKind::I64, false, {Base, EsShift});
    MReg Off = ldImm(I.IntImm);
    MReg Sum = alu(Opcode::Add, ScalarKind::I64, false, {Elems, Off});
    MReg Mask = ldImm(static_cast<int64_t>(AL) - 1);
    SetLanes({alu(Opcode::And, ScalarKind::I64, false, {Sum, Mask})});
    return;
  }
  case Opcode::LoopBound:
    SetLanes(lanesOf(I.Ops[loopBoundScalar(Idx) ? 1 : 0]));
    return;
  case Opcode::VersionGuard:
    // Folded guards never reach emission (their ifs were resolved).
    SetLanes(lowerGuardRuntime(I));
    return;

  //===--- Scalar memory --------------------------------------------------===//
  case Opcode::Load: {
    MReg Addr = addrOf(I.Array, lanesOf(I.Ops[0])[0], I.Ty.Elem, 0);
    MInstr L;
    L.Op = MOp::Load;
    L.Kind = I.Ty.Elem;
    L.Srcs = {Addr};
    L.Dst = M.makeReg(I.Ty.Elem, false);
    L.SrcInstr = Idx;
    SetLanes({emit(std::move(L))});
    return;
  }
  case Opcode::Store: {
    ScalarKind K = F.Arrays[I.Array].Elem;
    MReg Addr = addrOf(I.Array, lanesOf(I.Ops[0])[0], K, 0);
    MInstr S;
    S.Op = MOp::Store;
    S.Kind = K;
    S.Srcs = {Addr, lanesOf(I.Ops[1])[0]};
    S.SrcInstr = Idx;
    emit(std::move(S));
    return;
  }

  //===--- Vector memory and realignment ----------------------------------===//
  case Opcode::ALoad:
  case Opcode::ULoad:
  case Opcode::AlignLoad:
  case Opcode::RealignLoad:
    SetLanes(lowerVectorLoad(I, Idx, Scalar));
    return;
  case Opcode::AStore:
  case Opcode::UStore:
    lowerVectorStore(I, Idx, Scalar);
    return;
  case Opcode::GetRT: {
    // Live only when a realign_load keeps its chain (perm strategy).
    MReg Addr = addrOf(I.Array, lanesOf(I.Ops[0])[0],
                       F.Arrays[I.Array].Elem, 0);
    MInstr G;
    G.Op = MOp::GetPerm;
    G.Srcs = {Addr};
    G.Dst = M.makeReg(ScalarKind::U64, false);
    SetLanes({emit(std::move(G))});
    return;
  }

  //===--- Vector initialization ------------------------------------------===//
  case Opcode::InitUniform: {
    MReg V = lanesOf(I.Ops[0])[0];
    if (Scalar) {
      SetLanes(std::vector<MReg>(scalarLaneCount(I.Ty.Elem), V));
      return;
    }
    MInstr S;
    S.Op = MOp::VSplat;
    S.Kind = I.Ty.Elem;
    S.Vector = true;
    S.Srcs = {V};
    S.Dst = M.makeReg(I.Ty.Elem, true);
    SetLanes({emit(std::move(S))});
    return;
  }
  case Opcode::InitAffine: {
    MReg Val = lanesOf(I.Ops[0])[0];
    MReg Inc = lanesOf(I.Ops[1])[0];
    if (Scalar) {
      unsigned N = scalarLaneCount(I.Ty.Elem);
      std::vector<MReg> Lanes{Val};
      MReg Cur = Val;
      for (unsigned LIdx = 1; LIdx < N; ++LIdx) {
        Cur = alu(Opcode::Add, I.Ty.Elem, false, {Cur, Inc});
        Lanes.push_back(Cur);
      }
      SetLanes(std::move(Lanes));
      return;
    }
    MInstr A;
    A.Op = MOp::VAffine;
    A.Kind = I.Ty.Elem;
    A.Vector = true;
    A.Srcs = {Val, Inc};
    A.Dst = M.makeReg(I.Ty.Elem, true);
    SetLanes({emit(std::move(A))});
    return;
  }
  case Opcode::InitReduc: {
    MReg Val = lanesOf(I.Ops[0])[0];
    MReg Default = lanesOf(I.Ops[1])[0];
    if (Scalar) {
      unsigned N = scalarLaneCount(I.Ty.Elem);
      std::vector<MReg> Lanes{Val};
      for (unsigned LIdx = 1; LIdx < N; ++LIdx)
        Lanes.push_back(Default);
      SetLanes(std::move(Lanes));
      return;
    }
    MInstr S;
    S.Op = MOp::VSplat;
    S.Kind = I.Ty.Elem;
    S.Vector = true;
    S.Srcs = {Default};
    S.Dst = M.makeReg(I.Ty.Elem, true);
    MReg Spl = emit(std::move(S));
    MInstr L0;
    L0.Op = MOp::VSetLane0;
    L0.Kind = I.Ty.Elem;
    L0.Vector = true;
    L0.Srcs = {Spl, Val};
    L0.Dst = M.makeReg(I.Ty.Elem, true);
    SetLanes({emit(std::move(L0))});
    return;
  }

  //===--- Reductions and computational idioms ----------------------------===//
  case Opcode::ReducPlus:
  case Opcode::ReducMax:
  case Opcode::ReducMin: {
    Opcode K = I.Op == Opcode::ReducPlus
                   ? Opcode::Add
                   : (I.Op == Opcode::ReducMax ? Opcode::Max : Opcode::Min);
    const auto &Src = lanesOf(I.Ops[0]);
    if (Scalar) {
      MReg Acc = Src[0];
      for (size_t LIdx = 1; LIdx < Src.size(); ++LIdx)
        Acc = alu(K, I.Ty.Elem, false, {Acc, Src[LIdx]});
      SetLanes({Acc});
      return;
    }
    MInstr R;
    R.Op = MOp::Reduce;
    R.SubOp = K;
    R.Kind = I.Ty.Elem;
    R.Srcs = {Src[0]};
    R.Dst = M.makeReg(I.Ty.Elem, false);
    SetLanes({emit(std::move(R))});
    return;
  }

  case Opcode::DotProduct: {
    ScalarKind Narrow = F.typeOf(I.Ops[0]).Elem;
    ScalarKind Wide = I.Ty.Elem;
    const auto &A = lanesOf(I.Ops[0]);
    const auto &B = lanesOf(I.Ops[1]);
    const auto &Acc = lanesOf(I.Ops[2]);
    if (Scalar) {
      std::vector<MReg> Out;
      for (size_t J = 0; J < Acc.size(); ++J) {
        MReg A0 = alu(Opcode::Convert, Wide, false, {A[2 * J]});
        MReg B0 = alu(Opcode::Convert, Wide, false, {B[2 * J]});
        MReg P0 = alu(Opcode::Mul, Wide, false, {A0, B0});
        MReg A1 = alu(Opcode::Convert, Wide, false, {A[2 * J + 1]});
        MReg B1 = alu(Opcode::Convert, Wide, false, {B[2 * J + 1]});
        MReg P1 = alu(Opcode::Mul, Wide, false, {A1, B1});
        MReg S0 = alu(Opcode::Add, Wide, false, {Acc[J], P0});
        Out.push_back(alu(Opcode::Add, Wide, false, {S0, P1}));
      }
      SetLanes(std::move(Out));
      return;
    }
    (void)Narrow;
    MInstr D;
    D.Op = MOp::VDot;
    D.Kind = Wide;
    D.Vector = true;
    D.Srcs = {A[0], B[0], Acc[0]};
    D.Dst = M.makeReg(Wide, true);
    SetLanes({emit(std::move(D))});
    return;
  }

  case Opcode::WidenMultLo:
  case Opcode::WidenMultHi: {
    ScalarKind Wide = I.Ty.Elem;
    const auto &A = lanesOf(I.Ops[0]);
    const auto &B = lanesOf(I.Ops[1]);
    if (Scalar) {
      size_t Half = A.size() / 2;
      size_t Off = I.Op == Opcode::WidenMultHi ? Half : 0;
      std::vector<MReg> Out;
      for (size_t LIdx = 0; LIdx < Half; ++LIdx) {
        MReg WA = alu(Opcode::Convert, Wide, false, {A[Off + LIdx]});
        MReg WB = alu(Opcode::Convert, Wide, false, {B[Off + LIdx]});
        Out.push_back(alu(Opcode::Mul, Wide, false, {WA, WB}));
      }
      SetLanes(std::move(Out));
      return;
    }
    MInstr W;
    W.Op = T.supportsVecOp(I.Op)
               ? (I.Op == Opcode::WidenMultLo ? MOp::VWMulLo : MOp::VWMulHi)
               : MOp::CallLib;
    W.SubOp = I.Op;
    W.Kind = Wide;
    W.Vector = true;
    W.Srcs = {A[0], B[0]};
    W.Dst = M.makeReg(Wide, true);
    SetLanes({emit(std::move(W))});
    return;
  }

  case Opcode::Pack: {
    ScalarKind Narrow = I.Ty.Elem;
    const auto &A = lanesOf(I.Ops[0]);
    const auto &B = lanesOf(I.Ops[1]);
    if (Scalar) {
      std::vector<MReg> Out;
      for (MReg S : A)
        Out.push_back(alu(Opcode::Convert, Narrow, false, {S}));
      for (MReg S : B)
        Out.push_back(alu(Opcode::Convert, Narrow, false, {S}));
      SetLanes(std::move(Out));
      return;
    }
    MInstr P;
    P.Op = MOp::VPack;
    P.Kind = Narrow;
    P.Vector = true;
    P.Srcs = {A[0], B[0]};
    P.Dst = M.makeReg(Narrow, true);
    SetLanes({emit(std::move(P))});
    return;
  }
  case Opcode::UnpackLo:
  case Opcode::UnpackHi: {
    ScalarKind Wide = I.Ty.Elem;
    const auto &A = lanesOf(I.Ops[0]);
    if (Scalar) {
      size_t Half = A.size() / 2;
      size_t Off = I.Op == Opcode::UnpackHi ? Half : 0;
      std::vector<MReg> Out;
      for (size_t LIdx = 0; LIdx < Half; ++LIdx)
        Out.push_back(alu(Opcode::Convert, Wide, false, {A[Off + LIdx]}));
      SetLanes(std::move(Out));
      return;
    }
    MInstr U;
    U.Op = I.Op == Opcode::UnpackLo ? MOp::VUnpackLo : MOp::VUnpackHi;
    U.Kind = Wide;
    U.Vector = true;
    U.Srcs = {A[0]};
    U.Dst = M.makeReg(Wide, true);
    SetLanes({emit(std::move(U))});
    return;
  }

  //===--- Data reorganization --------------------------------------------===//
  case Opcode::Extract: {
    if (Scalar) {
      // Pure register renaming: no machine code at all.
      std::vector<MReg> Concat;
      for (ValueId Op : I.Ops)
        for (MReg R : lanesOf(Op))
          Concat.push_back(R);
      unsigned N = scalarLaneCount(I.Ty.Elem);
      std::vector<MReg> Out;
      for (unsigned LIdx = 0; LIdx < N; ++LIdx)
        Out.push_back(Concat[I.IntImm + static_cast<uint64_t>(LIdx) *
                                            I.IntImm2]);
      SetLanes(std::move(Out));
      return;
    }
    MInstr E;
    E.Op = MOp::VExtract;
    E.Kind = I.Ty.Elem;
    E.Vector = true;
    for (ValueId Op : I.Ops)
      E.Srcs.push_back(lanesOf(Op)[0]);
    E.Imm = I.IntImm;
    E.Imm2 = I.IntImm2;
    E.Dst = M.makeReg(I.Ty.Elem, true);
    SetLanes({emit(std::move(E))});
    return;
  }
  case Opcode::InterleaveLo:
  case Opcode::InterleaveHi: {
    const auto &A = lanesOf(I.Ops[0]);
    const auto &B = lanesOf(I.Ops[1]);
    if (Scalar) {
      size_t Half = A.size() / 2;
      size_t Off = I.Op == Opcode::InterleaveHi ? Half : 0;
      std::vector<MReg> Out(A.size());
      for (size_t LIdx = 0; LIdx < Half; ++LIdx) {
        Out[2 * LIdx] = A[Off + LIdx];
        Out[2 * LIdx + 1] = B[Off + LIdx];
      }
      SetLanes(std::move(Out));
      return;
    }
    MInstr V;
    V.Op = I.Op == Opcode::InterleaveLo ? MOp::VIlvLo : MOp::VIlvHi;
    V.Kind = I.Ty.Elem;
    V.Vector = true;
    V.Srcs = {A[0], B[0]};
    V.Dst = M.makeReg(I.Ty.Elem, true);
    SetLanes({emit(std::move(V))});
    return;
  }

  case Opcode::LibCall:
    vapor_unreachable("libcall appears only in machine code");

  //===--- Everything else: elementwise ALU -------------------------------===//
  default: {
    bool VectorInstr = I.Ty.isVector();
    for (ValueId Op : I.Ops)
      VectorInstr |= F.typeOf(Op).isVector();
    if (!VectorInstr) {
      std::vector<MReg> Srcs;
      for (ValueId Op : I.Ops)
        Srcs.push_back(lanesOf(Op)[0]);
      SetLanes({alu(I.Op, I.Ty.Elem, false, std::move(Srcs))});
      return;
    }
    if (Scalar) {
      size_t N = 0;
      for (ValueId Op : I.Ops)
        N = std::max(N, lanesOf(Op).size());
      std::vector<MReg> Out;
      for (size_t LIdx = 0; LIdx < N; ++LIdx) {
        std::vector<MReg> Srcs;
        for (ValueId Op : I.Ops) {
          const auto &Lanes = lanesOf(Op);
          Srcs.push_back(Lanes[Lanes.size() == 1 ? 0 : LIdx]);
        }
        Out.push_back(alu(I.Op, I.Ty.Elem, false, std::move(Srcs)));
      }
      SetLanes(std::move(Out));
      return;
    }
    // Vector ALU (or NEON library fallback for vector converts).
    std::vector<MReg> Srcs;
    for (ValueId Op : I.Ops)
      Srcs.push_back(lanesOf(Op)[0]);
    if (I.Op == Opcode::Convert && !T.supportsVecOp(Opcode::Convert)) {
      MInstr C;
      C.Op = MOp::CallLib;
      C.SubOp = Opcode::Convert;
      C.Kind = I.Ty.Elem;
      C.Vector = true;
      C.Srcs = std::move(Srcs);
      C.Dst = M.makeReg(I.Ty.Elem, true);
      SetLanes({emit(std::move(C))});
      return;
    }
    MInstr A;
    A.Op = MOp::Alu;
    A.SubOp = I.Op;
    A.Kind = I.Ty.Elem;
    A.Vector = true;
    A.Srcs = std::move(Srcs);
    A.Dst = M.makeReg(isCompare(I.Op) ? ScalarKind::I1 : I.Ty.Elem, true);
    SetLanes({emit(std::move(A))});
    return;
  }
  }
}

std::vector<MReg> JitCompiler::lowerVectorLoad(const Instr &I, uint32_t Idx,
                                               bool Scalar) {
  ScalarKind K = F.Arrays[I.Array].Elem;
  ValueId IdxOp = I.Op == Opcode::RealignLoad ? I.Ops[3] : I.Ops[0];
  MReg IdxReg = lanesOf(IdxOp)[0];

  if (Scalar) {
    unsigned N = scalarLaneCount(K);
    std::vector<MReg> Out;
    for (unsigned LIdx = 0; LIdx < N; ++LIdx) {
      MReg Addr = addrOf(I.Array, IdxReg, K, LIdx);
      MInstr L;
      L.Op = MOp::Load;
      L.Kind = K;
      L.Srcs = {Addr};
      L.Dst = M.makeReg(K, false);
      Out.push_back(emit(std::move(L)));
    }
    return Out;
  }

  MemStrategy S = MemStrategy::Aligned;
  if (I.Op == Opcode::ULoad || I.Op == Opcode::RealignLoad)
    S = Strat.at(Idx);

  if (I.Op == Opcode::RealignLoad && S == MemStrategy::Perm) {
    MInstr P;
    P.Op = MOp::VPerm;
    P.Kind = K;
    P.Vector = true;
    P.Srcs = {lanesOf(I.Ops[0])[0], lanesOf(I.Ops[1])[0],
              lanesOf(I.Ops[2])[0]};
    P.Dst = M.makeReg(K, true);
    return {emit(std::move(P))};
  }

  MReg Addr = addrOf(I.Array, IdxReg, K, 0);
  if (I.Op == Opcode::AlignLoad) {
    // Floor the address to a vector boundary, then an aligned load.
    MReg Mask = ldImm(~static_cast<int64_t>(T.VSBytes - 1));
    Addr = alu(Opcode::And, ScalarKind::I64, false, {Addr, Mask});
  }
  MInstr L;
  L.Op = (I.Op == Opcode::ALoad || I.Op == Opcode::AlignLoad ||
          S == MemStrategy::Aligned)
             ? MOp::VLoadA
             : MOp::VLoadU;
  L.Kind = K;
  L.Vector = true;
  L.Srcs = {Addr};
  L.Dst = M.makeReg(K, true);
  // Only plain vector loads are certificate-covered; align_load floors
  // its address and realign chains read out-of-range on purpose.
  if (I.Op != Opcode::AlignLoad && I.Op != Opcode::RealignLoad)
    L.SrcInstr = Idx;
  return {emit(std::move(L))};
}

void JitCompiler::lowerVectorStore(const Instr &I, uint32_t Idx,
                                   bool Scalar) {
  ScalarKind K = F.Arrays[I.Array].Elem;
  MReg IdxReg = lanesOf(I.Ops[0])[0];
  const auto &Vals = lanesOf(I.Ops[1]);

  if (Scalar) {
    for (unsigned LIdx = 0; LIdx < Vals.size(); ++LIdx) {
      MReg Addr = addrOf(I.Array, IdxReg, K, LIdx);
      MInstr S;
      S.Op = MOp::Store;
      S.Kind = K;
      S.Srcs = {Addr, Vals[LIdx]};
      emit(std::move(S));
    }
    return;
  }

  MemStrategy S = I.Op == Opcode::AStore ? MemStrategy::Aligned
                                         : Strat.at(Idx);
  MReg Addr = addrOf(I.Array, IdxReg, K, 0);
  MInstr St;
  St.Op = S == MemStrategy::Aligned ? MOp::VStoreA : MOp::VStoreU;
  St.Kind = K;
  St.Vector = true;
  St.Srcs = {Addr, Vals[0]};
  St.SrcInstr = Idx;
  emit(std::move(St));
}

std::vector<MReg> JitCompiler::lowerGuardRuntime(const Instr &I) {
  switch (I.Guard) {
  case GuardKind::BasesAligned: {
    // or-together (base & (VS-1)) for each array, compare against zero.
    unsigned VS = T.VSBytes ? T.VSBytes : VSEff;
    MReg Mask = ldImm(static_cast<int64_t>(VS) - 1);
    MReg Acc = NoReg;
    for (uint32_t A : I.GuardArgs) {
      MReg Bits = alu(Opcode::And, ScalarKind::I64, false,
                      {baseOf(A), Mask});
      Acc = Acc == NoReg
                ? Bits
                : alu(Opcode::Or, ScalarKind::I64, false, {Acc, Bits});
    }
    MReg Zero = ldImm(0);
    return {alu(Opcode::CmpEQ, ScalarKind::I64, false, {Acc, Zero})};
  }
  case GuardKind::TypeSupported:
  case GuardKind::PreferOuterLoop:
    // Always folded in foldGuards(); reaching here means the guard's if
    // was live with a folded condition value used elsewhere.
    return {ldImm(FoldedGuards.at(I.Result) ? 1 : 0, ScalarKind::I1)};
  case GuardKind::None:
    break;
  }
  vapor_unreachable("guard without kind reached emission");
}

} // namespace

CompileResult jit::compile(const Function &F, const TargetDesc &T,
                           const RuntimeInfo &RT, const Options &Opt) {
  obs::Span S("jit", "compile");
  S.arg("function", F.Name);
  S.arg("target", T.Name);
  S.arg("tier", Opt.CompilerTier == Tier::Strong ? "strong" : "weak");
  CompileResult R = JitCompiler(F, T, RT, Opt).run();
  static obs::Counter Compiles("jit.compiles");
  static obs::Counter Scalarized("jit.scalarized");
  Compiles.add(1);
  if (R.Scalarized)
    Scalarized.add(1);
  S.arg("scalarized", R.Scalarized);
  S.arg("mem_aligned", static_cast<uint64_t>(R.Strategy.MemAligned));
  S.arg("mem_unaligned", static_cast<uint64_t>(R.Strategy.MemUnaligned));
  S.arg("mem_perm", static_cast<uint64_t>(R.Strategy.MemPerm));
  S.arg("mem_scalar", static_cast<uint64_t>(R.Strategy.MemScalar));
  S.arg("guards_runtime", static_cast<uint64_t>(R.Strategy.GuardsRuntime));
  return R;
}

Expected<CompileResult> jit::compileChecked(const Function &F,
                                            const TargetDesc &T,
                                            const RuntimeInfo &RT,
                                            const Options &Opt) {
  if (faultinject::shouldFire(faultinject::SiteClass::JitLower))
    return Status::error(status::Code::UnsupportedIdiom, status::Layer::Jit,
                         "fault-injection: forced unsupported-idiom failure "
                         "lowering " + F.Name + " for " + T.Name);
  return compile(F, T, RT, Opt);
}
