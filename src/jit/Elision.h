//===- jit/Elision.h - Certificate-driven check elision planner -*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consumer half of the proof-carrying pipeline: turns a verifier-
/// produced SafetyCertificate into a target::ElisionPlan for one concrete
/// run. Zero trust in the producer — every fact is replayed by the
/// independent checker (analysis/Certificate.h) first, and the residual
/// runtime preconditions (concrete array base addresses, concrete
/// parameter values) are evaluated here against the actual MemoryImage.
/// Anything that cannot be re-proven keeps its checks; the plan only ever
/// removes checks the checker *and* the runtime preconditions both
/// discharge.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_JIT_ELISION_H
#define VAPOR_JIT_ELISION_H

#include "analysis/Certificate.h"
#include "ir/Function.h"
#include "target/Elision.h"
#include "target/MemoryImage.h"
#include "target/Target.h"

namespace vapor {
namespace jit {

/// Builds the elision plan for running \p F on \p T against \p Image with
/// the parameter bindings \p Params (absent integer parameters default to
/// 0, mirroring FillAdapters::setParams).
///
/// \p Cert may be null (no certificate: the plan grants nothing). The
/// returned plan carries \p Mode verbatim — in Audit mode the Proven bits
/// describe what On mode *would* elide, and consumers compile counting
/// checks instead of removing them.
target::ElisionPlan buildElisionPlan(const ir::Function &F,
                                     const analysis::SafetyCertificate *Cert,
                                     const target::TargetDesc &T,
                                     const target::MemoryImage &Image,
                                     target::ElisionMode Mode,
                                     const analysis::ParamFn &Params);

} // namespace jit
} // namespace vapor

#endif // VAPOR_JIT_ELISION_H
