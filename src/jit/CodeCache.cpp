//===- jit/CodeCache.cpp - Content-addressed online-stage cache -------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"

#include "obs/Obs.h"
#include "support/FaultInject.h"

#include <atomic>
#include <algorithm>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>

using namespace vapor;
using namespace vapor::jit;
using namespace vapor::jit::cache;

namespace {

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

/// Which of the five maps an LRU node's key lives in (eviction needs to
/// erase from the right one).
enum class EKind : uint8_t { Module, Verify, Compile, Program, Native };

/// One node of the unified recency list: enough to erase the entry and
/// refund its charge when it falls off the cold end.
struct LruNode {
  EKind Kind;
  uint64_t Key;
  size_t Cost;
  std::string Tenant;
};
using LruList = std::list<LruNode>;
using LruIt = LruList::iterator;

/// Map values wrap the artifact with its recency-list position so finds
/// can splice to the hot end and evictions can refund the exact charge.
template <typename T> struct Entry {
  T Value;
  LruIt It;
};

struct TenantUsage {
  uint64_t BytesLive = 0;
  uint64_t Entries = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
};

/// One mutex-guarded store for all five maps plus the recency list and
/// the capacity accounting: lookups are a hash plus a map probe, far off
/// any per-dispatch hot path, so a single lock is simpler than six and
/// contention is irrelevant at sweep granularity.
struct Store {
  std::mutex Mu;
  std::unordered_map<uint64_t, Entry<std::shared_ptr<const ir::Function>>>
      Modules;
  std::unordered_map<uint64_t, Entry<VerifyResult>> Verifies;
  std::unordered_map<uint64_t, Entry<std::shared_ptr<const CompileResult>>>
      Compiles;
  std::unordered_map<uint64_t,
                     Entry<std::shared_ptr<const target::DecodedProgram>>>
      Programs;
  std::unordered_map<uint64_t,
                     Entry<std::shared_ptr<const codegen::NativeUnit>>>
      Natives;

  LruList Lru;            ///< Front = most recently used.
  size_t BytesLive = 0;   ///< Sum of resident entry costs.
  size_t Capacity = 0;    ///< 0 = unbounded.
  std::map<std::string, TenantUsage> Tenants;
};

Store &store() {
  static Store S;
  return S;
}

/// Hit/miss tallies live outside the store mutex as relaxed atomics:
/// they feed obs::Counter-style metrics and stats() must be readable
/// without taking the cache lock. A stats() snapshot concurrent with
/// lookups may be mid-update across fields; per-field totals are exact.
struct AtomicStats {
  std::atomic<uint64_t> ModuleHits{0}, ModuleMisses{0};
  std::atomic<uint64_t> VerifyHits{0}, VerifyMisses{0};
  std::atomic<uint64_t> CompileHits{0}, CompileMisses{0};
  std::atomic<uint64_t> ProgramHits{0}, ProgramMisses{0};
  std::atomic<uint64_t> NativeHits{0}, NativeMisses{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> BytesLive{0}; ///< Mirror of Store::BytesLive.
  std::atomic<uint64_t> Capacity{0};  ///< Mirror of Store::Capacity.
};

AtomicStats &counts() {
  static AtomicStats C;
  return C;
}

/// Bumps one cache tally and mirrors it into the named obs counter.
void bump(std::atomic<uint64_t> &Slot, obs::Counter &Obs) {
  Slot.fetch_add(1, std::memory_order_relaxed);
  Obs.add(1);
}

std::atomic<bool> GlobalSwitch{true};

/// The thread's ambient tenant attribution (empty = anonymous).
thread_local std::string CurrentTenantName;

//===--- Approximate entry costs ------------------------------------------===//
// Coarse but monotone-in-reality byte estimates; the bound is a memory
// *budget*, not an allocator audit, so each entry pays its dominant
// arrays plus a fixed overhead for the map/list/node bookkeeping.

constexpr size_t EntryOverhead = 256;

size_t costModule(const ir::Function &F) {
  size_t C = EntryOverhead + F.Name.size();
  C += F.Arrays.size() * 64;
  return C + 1024; // Body shape unknown here; callers pass encoded size.
}

size_t costVerify(const VerifyResult &R) {
  return EntryOverhead + R.Report.size() + (R.Cert ? 4096 : 0);
}

size_t costCompile(const CompileResult &R) {
  return EntryOverhead + R.Code.Instrs.size() * sizeof(target::MInstr) +
         R.Code.Regs.size() * sizeof(target::MRegInfo) +
         R.ScalarizeReason.size();
}

size_t costProgram(const target::DecodedProgram &P) {
  return EntryOverhead +
         P.Code.size() * sizeof(target::DecodedProgram::DOp) +
         P.AuxLanes.size() * sizeof(uint32_t) +
         P.OrigIndex.size() * sizeof(uint32_t);
}

size_t costNative(const codegen::NativeUnit &U) {
  return EntryOverhead + U.Stats.CodeBytes +
         U.Shims.size() * sizeof(codegen::NOp);
}

//===--- LRU plumbing (all called under Store::Mu) ------------------------===//

void touch(Store &S, LruIt It) {
  if (It != S.Lru.begin())
    S.Lru.splice(S.Lru.begin(), S.Lru, It);
}

/// Erases the map entry a cold-end node points at. The artifact itself
/// survives through any shared_ptrs already handed out.
void eraseEntry(Store &S, const LruNode &N) {
  switch (N.Kind) {
  case EKind::Module:
    S.Modules.erase(N.Key);
    break;
  case EKind::Verify:
    S.Verifies.erase(N.Key);
    break;
  case EKind::Compile:
    S.Compiles.erase(N.Key);
    break;
  case EKind::Program:
    S.Programs.erase(N.Key);
    break;
  case EKind::Native:
    S.Natives.erase(N.Key);
    break;
  }
}

/// Evicts from the cold end until BytesLive is under the capacity.
/// No-op with capacity 0. Maintains the per-tenant refunds and the
/// eviction tallies (obs + atomic stats).
void evictOverCapacity(Store &S) {
  if (S.Capacity == 0)
    return;
  static obs::Counter Evicted("cache.evictions");
  while (S.BytesLive > S.Capacity && !S.Lru.empty()) {
    const LruNode &N = S.Lru.back();
    eraseEntry(S, N);
    S.BytesLive -= std::min(S.BytesLive, N.Cost);
    TenantUsage &T = S.Tenants[N.Tenant];
    T.BytesLive -= std::min(T.BytesLive, static_cast<uint64_t>(N.Cost));
    if (T.Entries)
      --T.Entries;
    ++T.Evictions;
    S.Lru.pop_back();
    bump(counts().Evictions, Evicted);
  }
  counts().BytesLive.store(S.BytesLive, std::memory_order_relaxed);
}

/// Charges a fresh insertion: pushes the hot-end node, attributes the
/// cost to the calling thread's tenant, then enforces the bound.
/// \returns the node's iterator for the map entry.
LruIt charge(Store &S, EKind Kind, uint64_t Key, size_t Cost) {
  S.Lru.push_front(LruNode{Kind, Key, Cost, CurrentTenantName});
  S.BytesLive += Cost;
  TenantUsage &T = S.Tenants[CurrentTenantName];
  T.BytesLive += Cost;
  ++T.Entries;
  ++T.Insertions;
  counts().BytesLive.store(S.BytesLive, std::memory_order_relaxed);
  return S.Lru.begin();
}

} // namespace

bool cache::enabled() {
  return GlobalSwitch.load(std::memory_order_relaxed) &&
         !faultinject::controller().Active;
}

bool cache::setEnabled(bool On) {
  return GlobalSwitch.exchange(On, std::memory_order_relaxed);
}

namespace {
/// Bumped by every clear(). The tiering engine stamps demotion pins with
/// the generation they were recorded under; a pin from an older
/// generation has expired ("pinned below the failing tier until cache
/// invalidation"), and cached-artifact readiness expires with it.
std::atomic<uint64_t> Generation{1};
} // namespace

uint64_t cache::generation() {
  return Generation.load(std::memory_order_acquire);
}

void cache::clear() {
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  Generation.fetch_add(1, std::memory_order_acq_rel);
  S.Modules.clear();
  S.Verifies.clear();
  S.Compiles.clear();
  S.Programs.clear();
  S.Natives.clear();
  S.Lru.clear();
  S.BytesLive = 0;
  counts().BytesLive.store(0, std::memory_order_relaxed);
  // Residency resets; lifetime insert/evict tallies survive (clear() is
  // not an eviction).
  for (auto &KV : S.Tenants) {
    KV.second.BytesLive = 0;
    KV.second.Entries = 0;
  }
}

size_t cache::setCapacity(size_t Bytes) {
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  size_t Prev = S.Capacity;
  S.Capacity = Bytes;
  counts().Capacity.store(Bytes, std::memory_order_relaxed);
  evictOverCapacity(S); // Shrinking evicts immediately.
  return Prev;
}

size_t cache::capacity() {
  return counts().Capacity.load(std::memory_order_relaxed);
}

std::vector<TenantStats> cache::tenantStats() {
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  std::vector<TenantStats> Out;
  Out.reserve(S.Tenants.size());
  for (const auto &KV : S.Tenants)
    Out.push_back({KV.first, KV.second.BytesLive, KV.second.Entries,
                   KV.second.Insertions, KV.second.Evictions});
  return Out; // std::map iteration is already name-sorted.
}

bool cache::forgetTenant(const std::string &Tenant) {
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Tenants.find(Tenant);
  if (It == S.Tenants.end())
    return true;
  if (It->second.BytesLive != 0 || It->second.Entries != 0)
    return false; // Still resident: the eviction refund needs the line.
  S.Tenants.erase(It);
  return true;
}

const std::string &cache::currentTenant() { return CurrentTenantName; }

cache::ScopedTenant::ScopedTenant(std::string Name)
    : Prev(std::move(CurrentTenantName)) {
  CurrentTenantName = std::move(Name);
}

cache::ScopedTenant::~ScopedTenant() { CurrentTenantName = std::move(Prev); }

Stats cache::stats() {
  AtomicStats &C = counts();
  Stats S;
  S.ModuleHits = C.ModuleHits.load(std::memory_order_relaxed);
  S.ModuleMisses = C.ModuleMisses.load(std::memory_order_relaxed);
  S.VerifyHits = C.VerifyHits.load(std::memory_order_relaxed);
  S.VerifyMisses = C.VerifyMisses.load(std::memory_order_relaxed);
  S.CompileHits = C.CompileHits.load(std::memory_order_relaxed);
  S.CompileMisses = C.CompileMisses.load(std::memory_order_relaxed);
  S.ProgramHits = C.ProgramHits.load(std::memory_order_relaxed);
  S.ProgramMisses = C.ProgramMisses.load(std::memory_order_relaxed);
  S.NativeHits = C.NativeHits.load(std::memory_order_relaxed);
  S.NativeMisses = C.NativeMisses.load(std::memory_order_relaxed);
  S.Evictions = C.Evictions.load(std::memory_order_relaxed);
  S.BytesLive = C.BytesLive.load(std::memory_order_relaxed);
  S.CapacityBytes = C.Capacity.load(std::memory_order_relaxed);
  return S;
}

void cache::resetStats() {
  AtomicStats &C = counts();
  C.ModuleHits = 0;
  C.ModuleMisses = 0;
  C.VerifyHits = 0;
  C.VerifyMisses = 0;
  C.CompileHits = 0;
  C.CompileMisses = 0;
  C.ProgramHits = 0;
  C.ProgramMisses = 0;
  C.NativeHits = 0;
  C.NativeMisses = 0;
  C.Evictions = 0;
  // BytesLive/Capacity are state mirrors, not tallies: they survive.
}

uint64_t cache::hashBytes(const void *Data, size_t Len, uint64_t Seed) {
  uint64_t H = Seed ^ FnvOffset;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t cache::hashCombine(uint64_t Seed, uint64_t W) {
  uint64_t H = Seed;
  for (int I = 0; I < 8; ++I) {
    H ^= (W >> (I * 8)) & 0xff;
    H *= FnvPrime;
  }
  return H;
}

uint64_t cache::hashTarget(const target::TargetDesc &T) {
  uint64_t H = hashBytes(T.Name.data(), T.Name.size(), 0x7a67);
  H = hashCombine(H, T.VSBytes);
  H = hashCombine(H, (uint64_t(T.HasMisaligned) << 3) |
                         (uint64_t(T.HasPermRealign) << 2) |
                         (uint64_t(T.LibFallbackForOps) << 1) |
                         uint64_t(T.X87ScalarFP));
  H = hashCombine(H, (uint64_t(T.ScalarRegs) << 32) | T.VectorRegs);
  H = hashCombine(H, T.UnsupportedKindMask);
  H = hashCombine(H, T.UnsupportedOpMask);
  const target::CostTable &C = T.Costs;
  const unsigned Cs[] = {C.RegOp,      C.AddrOp,    C.IntOp,     C.FpOp,
                         C.X87Op,      C.DivOp,     C.ConvertOp, C.ScalarLoad,
                         C.ScalarStore, C.VecLoadA, C.VecLoadU,  C.VecStoreA,
                         C.VecStoreU,  C.Shuffle,   C.WideMul,   C.DotOp,
                         C.ReduceOp,   C.SpillOp,   C.LibCall,   C.LoopIter};
  for (unsigned V : Cs)
    H = hashCombine(H, V);
  return H;
}

uint64_t cache::hashOptions(const Options &O) {
  return hashCombine(0x6f70, (uint64_t(O.CompilerTier == Tier::Weak) << 3) |
                                 (uint64_t(O.FoldAddressing) << 2) |
                                 (uint64_t(O.PromoteAccumulators) << 1) |
                                 uint64_t(O.ForceScalarize));
}

uint64_t cache::hashRuntime(const RuntimeInfo &RT) {
  uint64_t H = hashCombine(0x7274, RT.Arrays.size());
  for (const RuntimeInfo::ArrayRT &A : RT.Arrays) {
    H = hashCombine(H, A.KnownBase);
    H = hashCombine(H, A.Base);
  }
  return H;
}

uint64_t cache::hashPlacement(const target::MemoryImage &Image) {
  uint64_t H = hashCombine(0x706c, Image.arrayCount());
  for (uint32_t A = 0; A < Image.arrayCount(); ++A) {
    const ir::ArrayInfo &AI = Image.info(A);
    H = hashCombine(H, static_cast<uint64_t>(AI.Elem));
    H = hashCombine(H, AI.NumElems);
    H = hashCombine(H, Image.base(A));
  }
  H = hashCombine(H, Image.highAddr());
  return H;
}

uint64_t cache::compileKey(uint64_t FnHash, const target::TargetDesc &T,
                           const Options &O, const RuntimeInfo &RT) {
  uint64_t H = hashCombine(0x636b, FnHash);
  H = hashCombine(H, hashTarget(T));
  H = hashCombine(H, hashOptions(O));
  H = hashCombine(H, hashRuntime(RT));
  return H;
}

std::shared_ptr<const ir::Function> cache::findModule(uint64_t BytesHash) {
  static obs::Counter Hits("cache.module_hits"),
      Misses("cache.module_misses");
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Modules.find(BytesHash);
  if (It == S.Modules.end()) {
    bump(counts().ModuleMisses, Misses);
    return nullptr;
  }
  touch(S, It->second.It);
  bump(counts().ModuleHits, Hits);
  return It->second.Value;
}

std::shared_ptr<const ir::Function>
cache::putModule(uint64_t BytesHash, ir::Function Module, size_t Cost) {
  if (Cost == 0)
    Cost = costModule(Module);
  auto P = std::make_shared<const ir::Function>(std::move(Module));
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  // First writer wins: under the thread pool two workers may decode the
  // same bytes concurrently; both results are identical, keep one.
  auto It = S.Modules.find(BytesHash);
  if (It != S.Modules.end()) {
    touch(S, It->second.It);
    return It->second.Value;
  }
  LruIt N = charge(S, EKind::Module, BytesHash, Cost);
  auto &E = S.Modules[BytesHash];
  E.Value = std::move(P);
  E.It = N;
  // Copy the artifact out before enforcing the bound: an entry costlier
  // than the whole capacity is evicted immediately (served but never
  // resident), which erases the map node `E` refers into.
  auto Ret = E.Value;
  evictOverCapacity(S);
  return Ret;
}

std::optional<VerifyResult> cache::findVerify(uint64_t FnHash,
                                              uint64_t TargetHash) {
  uint64_t Key = hashCombine(hashCombine(0x7666, FnHash), TargetHash);
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  static obs::Counter Hits("cache.verify_hits"),
      Misses("cache.verify_misses");
  auto It = S.Verifies.find(Key);
  if (It == S.Verifies.end()) {
    bump(counts().VerifyMisses, Misses);
    return std::nullopt;
  }
  touch(S, It->second.It);
  bump(counts().VerifyHits, Hits);
  return It->second.Value;
}

void cache::putVerify(uint64_t FnHash, uint64_t TargetHash, VerifyResult R) {
  uint64_t Key = hashCombine(hashCombine(0x7666, FnHash), TargetHash);
  size_t Cost = costVerify(R);
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Verifies.find(Key);
  if (It != S.Verifies.end()) {
    touch(S, It->second.It);
    return;
  }
  LruIt N = charge(S, EKind::Verify, Key, Cost);
  auto &E = S.Verifies[Key];
  E.Value = std::move(R);
  E.It = N;
  evictOverCapacity(S);
}

std::shared_ptr<const CompileResult> cache::findCompile(uint64_t Key) {
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  static obs::Counter Hits("cache.compile_hits"),
      Misses("cache.compile_misses");
  auto It = S.Compiles.find(Key);
  if (It == S.Compiles.end()) {
    bump(counts().CompileMisses, Misses);
    return nullptr;
  }
  touch(S, It->second.It);
  bump(counts().CompileHits, Hits);
  return It->second.Value;
}

std::shared_ptr<const CompileResult> cache::putCompile(uint64_t Key,
                                                       CompileResult R) {
  size_t Cost = costCompile(R);
  auto P = std::make_shared<const CompileResult>(std::move(R));
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Compiles.find(Key);
  if (It != S.Compiles.end()) {
    touch(S, It->second.It);
    return It->second.Value;
  }
  LruIt N = charge(S, EKind::Compile, Key, Cost);
  auto &E = S.Compiles[Key];
  E.Value = std::move(P);
  E.It = N;
  // As in putModule: eviction may erase this very entry (oversized
  // case), so copy out before enforcing the bound.
  auto Ret = E.Value;
  evictOverCapacity(S);
  return Ret;
}

namespace {

/// Key contribution of an elision plan. Null and Off-mode plans hash
/// alike (both decode/compile to the unelided artifact).
uint64_t planKey(const target::ElisionPlan *Plan) {
  if (!Plan || Plan->Mode == target::ElisionMode::Off)
    return 0;
  return cache::hashCombine(static_cast<uint64_t>(Plan->Mode), Plan->Hash);
}

} // namespace

std::shared_ptr<const target::DecodedProgram>
cache::programFor(uint64_t CompKey, const target::MFunction &Code,
                  const target::TargetDesc &T,
                  const target::MemoryImage &Image, bool Weak, bool Fuse,
                  const target::ElisionPlan *Plan) {
  uint64_t Key = hashCombine(0x7067, CompKey);
  Key = hashCombine(Key, hashPlacement(Image));
  Key = hashCombine(Key, (uint64_t(Weak) << 1) | uint64_t(Fuse));
  Key = hashCombine(Key, planKey(Plan));
  static obs::Counter Hits("cache.program_hits"),
      Misses("cache.program_misses");
  Store &S = store();
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Programs.find(Key);
    if (It != S.Programs.end()) {
      touch(S, It->second.It);
      bump(counts().ProgramHits, Hits);
      return It->second.Value;
    }
    bump(counts().ProgramMisses, Misses);
  }
  // Build outside the lock (decode+fusion is the expensive part); ties
  // between concurrent builders of the same key resolve first-writer-wins
  // and the artifacts are identical anyway.
  auto P = target::DecodedProgram::build(Code, T, Image, Weak, Fuse, Plan);
  size_t Cost = costProgram(*P);
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Programs.find(Key);
  if (It != S.Programs.end()) {
    touch(S, It->second.It);
    return It->second.Value;
  }
  LruIt N = charge(S, EKind::Program, Key, Cost);
  auto &E = S.Programs[Key];
  E.Value = std::move(P);
  E.It = N;
  // As in putModule: eviction may erase this very entry (oversized
  // case), so copy out before enforcing the bound.
  auto Ret = E.Value;
  evictOverCapacity(S);
  return Ret;
}

Expected<std::shared_ptr<const codegen::NativeUnit>>
cache::nativeFor(uint64_t CompKey, const target::MFunction &Code,
                 const target::TargetDesc &T,
                 const target::MemoryImage &Image,
                 const codegen::NativeOptions &NO) {
  // The unit bakes array base addresses (placement) and its encodings
  // depend on the feature mask, so both join the key alongside the
  // compile key that already covers function/target/options/runtime.
  uint64_t Key = hashCombine(0x6e76, CompKey);
  Key = hashCombine(Key, hashPlacement(Image));
  Key = hashCombine(Key, NO.Features.bits());
  Key = hashCombine(Key, planKey(NO.Plan));
  static obs::Counter Hits("cache.native_hits"),
      Misses("cache.native_misses");
  Store &S = store();
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Natives.find(Key);
    if (It != S.Natives.end()) {
      touch(S, It->second.It);
      bump(counts().NativeHits, Hits);
      return Expected<std::shared_ptr<const codegen::NativeUnit>>(
          It->second.Value);
    }
    bump(counts().NativeMisses, Misses);
  }
  // Compile outside the lock; first writer wins as with programFor.
  auto R = codegen::compileNative(Code, T, Image, NO);
  if (!R.ok())
    return R;
  std::shared_ptr<const codegen::NativeUnit> U = R.take();
  size_t Cost = costNative(*U);
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Natives.find(Key);
  if (It != S.Natives.end()) {
    touch(S, It->second.It);
    return Expected<std::shared_ptr<const codegen::NativeUnit>>(
        It->second.Value);
  }
  LruIt N = charge(S, EKind::Native, Key, Cost);
  auto &E = S.Natives[Key];
  E.Value = std::move(U);
  E.It = N;
  // As in putModule: eviction may erase this very entry (oversized
  // case), so copy out before enforcing the bound.
  auto Ret = E.Value;
  evictOverCapacity(S);
  return Expected<std::shared_ptr<const codegen::NativeUnit>>(
      std::move(Ret));
}
