//===- jit/CodeCache.cpp - Content-addressed online-stage cache -------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"

#include "obs/Obs.h"
#include "support/FaultInject.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

using namespace vapor;
using namespace vapor::jit;
using namespace vapor::jit::cache;

namespace {

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

/// One mutex-guarded store for all four maps: lookups are a hash plus a
/// map probe, far off any per-dispatch hot path, so a single lock is
/// simpler than four and contention is irrelevant at sweep granularity.
struct Store {
  std::mutex Mu;
  std::unordered_map<uint64_t, std::shared_ptr<const ir::Function>> Modules;
  std::unordered_map<uint64_t, VerifyResult> Verifies;
  std::unordered_map<uint64_t, std::shared_ptr<const CompileResult>> Compiles;
  std::unordered_map<uint64_t, std::shared_ptr<const target::DecodedProgram>>
      Programs;
  std::unordered_map<uint64_t, std::shared_ptr<const codegen::NativeUnit>>
      Natives;
};

Store &store() {
  static Store S;
  return S;
}

/// Hit/miss tallies live outside the store mutex as relaxed atomics:
/// they feed obs::Counter-style metrics and stats() must be readable
/// without taking the cache lock. A stats() snapshot concurrent with
/// lookups may be mid-update across fields; per-field totals are exact.
struct AtomicStats {
  std::atomic<uint64_t> ModuleHits{0}, ModuleMisses{0};
  std::atomic<uint64_t> VerifyHits{0}, VerifyMisses{0};
  std::atomic<uint64_t> CompileHits{0}, CompileMisses{0};
  std::atomic<uint64_t> ProgramHits{0}, ProgramMisses{0};
  std::atomic<uint64_t> NativeHits{0}, NativeMisses{0};
};

AtomicStats &counts() {
  static AtomicStats C;
  return C;
}

/// Bumps one cache tally and mirrors it into the named obs counter.
void bump(std::atomic<uint64_t> &Slot, obs::Counter &Obs) {
  Slot.fetch_add(1, std::memory_order_relaxed);
  Obs.add(1);
}

std::atomic<bool> GlobalSwitch{true};

} // namespace

bool cache::enabled() {
  return GlobalSwitch.load(std::memory_order_relaxed) &&
         !faultinject::controller().Active;
}

bool cache::setEnabled(bool On) {
  return GlobalSwitch.exchange(On, std::memory_order_relaxed);
}

void cache::clear() {
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  S.Modules.clear();
  S.Verifies.clear();
  S.Compiles.clear();
  S.Programs.clear();
  S.Natives.clear();
}

Stats cache::stats() {
  AtomicStats &C = counts();
  Stats S;
  S.ModuleHits = C.ModuleHits.load(std::memory_order_relaxed);
  S.ModuleMisses = C.ModuleMisses.load(std::memory_order_relaxed);
  S.VerifyHits = C.VerifyHits.load(std::memory_order_relaxed);
  S.VerifyMisses = C.VerifyMisses.load(std::memory_order_relaxed);
  S.CompileHits = C.CompileHits.load(std::memory_order_relaxed);
  S.CompileMisses = C.CompileMisses.load(std::memory_order_relaxed);
  S.ProgramHits = C.ProgramHits.load(std::memory_order_relaxed);
  S.ProgramMisses = C.ProgramMisses.load(std::memory_order_relaxed);
  S.NativeHits = C.NativeHits.load(std::memory_order_relaxed);
  S.NativeMisses = C.NativeMisses.load(std::memory_order_relaxed);
  return S;
}

void cache::resetStats() {
  AtomicStats &C = counts();
  C.ModuleHits = 0;
  C.ModuleMisses = 0;
  C.VerifyHits = 0;
  C.VerifyMisses = 0;
  C.CompileHits = 0;
  C.CompileMisses = 0;
  C.ProgramHits = 0;
  C.ProgramMisses = 0;
  C.NativeHits = 0;
  C.NativeMisses = 0;
}

uint64_t cache::hashBytes(const void *Data, size_t Len, uint64_t Seed) {
  uint64_t H = Seed ^ FnvOffset;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t cache::hashCombine(uint64_t Seed, uint64_t W) {
  uint64_t H = Seed;
  for (int I = 0; I < 8; ++I) {
    H ^= (W >> (I * 8)) & 0xff;
    H *= FnvPrime;
  }
  return H;
}

uint64_t cache::hashTarget(const target::TargetDesc &T) {
  uint64_t H = hashBytes(T.Name.data(), T.Name.size(), 0x7a67);
  H = hashCombine(H, T.VSBytes);
  H = hashCombine(H, (uint64_t(T.HasMisaligned) << 3) |
                         (uint64_t(T.HasPermRealign) << 2) |
                         (uint64_t(T.LibFallbackForOps) << 1) |
                         uint64_t(T.X87ScalarFP));
  H = hashCombine(H, (uint64_t(T.ScalarRegs) << 32) | T.VectorRegs);
  H = hashCombine(H, T.UnsupportedKindMask);
  H = hashCombine(H, T.UnsupportedOpMask);
  const target::CostTable &C = T.Costs;
  const unsigned Cs[] = {C.RegOp,      C.AddrOp,    C.IntOp,     C.FpOp,
                         C.X87Op,      C.DivOp,     C.ConvertOp, C.ScalarLoad,
                         C.ScalarStore, C.VecLoadA, C.VecLoadU,  C.VecStoreA,
                         C.VecStoreU,  C.Shuffle,   C.WideMul,   C.DotOp,
                         C.ReduceOp,   C.SpillOp,   C.LibCall,   C.LoopIter};
  for (unsigned V : Cs)
    H = hashCombine(H, V);
  return H;
}

uint64_t cache::hashOptions(const Options &O) {
  return hashCombine(0x6f70, (uint64_t(O.CompilerTier == Tier::Weak) << 3) |
                                 (uint64_t(O.FoldAddressing) << 2) |
                                 (uint64_t(O.PromoteAccumulators) << 1) |
                                 uint64_t(O.ForceScalarize));
}

uint64_t cache::hashRuntime(const RuntimeInfo &RT) {
  uint64_t H = hashCombine(0x7274, RT.Arrays.size());
  for (const RuntimeInfo::ArrayRT &A : RT.Arrays) {
    H = hashCombine(H, A.KnownBase);
    H = hashCombine(H, A.Base);
  }
  return H;
}

uint64_t cache::hashPlacement(const target::MemoryImage &Image) {
  uint64_t H = hashCombine(0x706c, Image.arrayCount());
  for (uint32_t A = 0; A < Image.arrayCount(); ++A) {
    const ir::ArrayInfo &AI = Image.info(A);
    H = hashCombine(H, static_cast<uint64_t>(AI.Elem));
    H = hashCombine(H, AI.NumElems);
    H = hashCombine(H, Image.base(A));
  }
  H = hashCombine(H, Image.highAddr());
  return H;
}

uint64_t cache::compileKey(uint64_t FnHash, const target::TargetDesc &T,
                           const Options &O, const RuntimeInfo &RT) {
  uint64_t H = hashCombine(0x636b, FnHash);
  H = hashCombine(H, hashTarget(T));
  H = hashCombine(H, hashOptions(O));
  H = hashCombine(H, hashRuntime(RT));
  return H;
}

std::shared_ptr<const ir::Function> cache::findModule(uint64_t BytesHash) {
  static obs::Counter Hits("cache.module_hits"),
      Misses("cache.module_misses");
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Modules.find(BytesHash);
  if (It == S.Modules.end()) {
    bump(counts().ModuleMisses, Misses);
    return nullptr;
  }
  bump(counts().ModuleHits, Hits);
  return It->second;
}

std::shared_ptr<const ir::Function> cache::putModule(uint64_t BytesHash,
                                                     ir::Function Module) {
  auto P = std::make_shared<const ir::Function>(std::move(Module));
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  // First writer wins: under the thread pool two workers may decode the
  // same bytes concurrently; both results are identical, keep one.
  return S.Modules.emplace(BytesHash, std::move(P)).first->second;
}

std::optional<VerifyResult> cache::findVerify(uint64_t FnHash,
                                              uint64_t TargetHash) {
  uint64_t Key = hashCombine(hashCombine(0x7666, FnHash), TargetHash);
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  static obs::Counter Hits("cache.verify_hits"),
      Misses("cache.verify_misses");
  auto It = S.Verifies.find(Key);
  if (It == S.Verifies.end()) {
    bump(counts().VerifyMisses, Misses);
    return std::nullopt;
  }
  bump(counts().VerifyHits, Hits);
  return It->second;
}

void cache::putVerify(uint64_t FnHash, uint64_t TargetHash, VerifyResult R) {
  uint64_t Key = hashCombine(hashCombine(0x7666, FnHash), TargetHash);
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  S.Verifies.emplace(Key, std::move(R));
}

std::shared_ptr<const CompileResult> cache::findCompile(uint64_t Key) {
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  static obs::Counter Hits("cache.compile_hits"),
      Misses("cache.compile_misses");
  auto It = S.Compiles.find(Key);
  if (It == S.Compiles.end()) {
    bump(counts().CompileMisses, Misses);
    return nullptr;
  }
  bump(counts().CompileHits, Hits);
  return It->second;
}

std::shared_ptr<const CompileResult> cache::putCompile(uint64_t Key,
                                                       CompileResult R) {
  auto P = std::make_shared<const CompileResult>(std::move(R));
  Store &S = store();
  std::lock_guard<std::mutex> L(S.Mu);
  return S.Compiles.emplace(Key, std::move(P)).first->second;
}

namespace {

/// Key contribution of an elision plan. Null and Off-mode plans hash
/// alike (both decode/compile to the unelided artifact).
uint64_t planKey(const target::ElisionPlan *Plan) {
  if (!Plan || Plan->Mode == target::ElisionMode::Off)
    return 0;
  return cache::hashCombine(static_cast<uint64_t>(Plan->Mode), Plan->Hash);
}

} // namespace

std::shared_ptr<const target::DecodedProgram>
cache::programFor(uint64_t CompKey, const target::MFunction &Code,
                  const target::TargetDesc &T,
                  const target::MemoryImage &Image, bool Weak, bool Fuse,
                  const target::ElisionPlan *Plan) {
  uint64_t Key = hashCombine(0x7067, CompKey);
  Key = hashCombine(Key, hashPlacement(Image));
  Key = hashCombine(Key, (uint64_t(Weak) << 1) | uint64_t(Fuse));
  Key = hashCombine(Key, planKey(Plan));
  static obs::Counter Hits("cache.program_hits"),
      Misses("cache.program_misses");
  Store &S = store();
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Programs.find(Key);
    if (It != S.Programs.end()) {
      bump(counts().ProgramHits, Hits);
      return It->second;
    }
    bump(counts().ProgramMisses, Misses);
  }
  // Build outside the lock (decode+fusion is the expensive part); ties
  // between concurrent builders of the same key resolve first-writer-wins
  // and the artifacts are identical anyway.
  auto P = target::DecodedProgram::build(Code, T, Image, Weak, Fuse, Plan);
  std::lock_guard<std::mutex> L(S.Mu);
  return S.Programs.emplace(Key, std::move(P)).first->second;
}

Expected<std::shared_ptr<const codegen::NativeUnit>>
cache::nativeFor(uint64_t CompKey, const target::MFunction &Code,
                 const target::TargetDesc &T,
                 const target::MemoryImage &Image,
                 const codegen::NativeOptions &NO) {
  // The unit bakes array base addresses (placement) and its encodings
  // depend on the feature mask, so both join the key alongside the
  // compile key that already covers function/target/options/runtime.
  uint64_t Key = hashCombine(0x6e76, CompKey);
  Key = hashCombine(Key, hashPlacement(Image));
  Key = hashCombine(Key, NO.Features.bits());
  Key = hashCombine(Key, planKey(NO.Plan));
  static obs::Counter Hits("cache.native_hits"),
      Misses("cache.native_misses");
  Store &S = store();
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Natives.find(Key);
    if (It != S.Natives.end()) {
      bump(counts().NativeHits, Hits);
      return Expected<std::shared_ptr<const codegen::NativeUnit>>(It->second);
    }
    bump(counts().NativeMisses, Misses);
  }
  // Compile outside the lock; first writer wins as with programFor.
  auto R = codegen::compileNative(Code, T, Image, NO);
  if (!R.ok())
    return R;
  std::lock_guard<std::mutex> L(S.Mu);
  return Expected<std::shared_ptr<const codegen::NativeUnit>>(
      S.Natives.emplace(Key, R.take()).first->second);
}
