//===- jit/CodeCache.h - Content-addressed online-stage cache --*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide content-addressed cache for every deterministic product
/// of the online stage. The bench sweeps and the parallel crashtest
/// driver run the same (kernel, target, placement) cell over and over;
/// each cell's decode, verify, JIT lowering, and VM pre-decode+fusion are
/// pure functions of their inputs, so the cache memoizes all four:
///
///   module   key = hash(encoded bytecode bytes)
///            -> the decoded ir::Function;
///   verify   key = (ir::hashFunction, target hash)
///            -> the verifier's verdict and rendered report;
///   compile  key = (ir::hashFunction, target hash, jit::Options hash,
///                   RuntimeInfo hash)
///            -> the CompileResult (machine code + scalarization info);
///   program  key = (compile key, placement hash, weak-tier, fuse)
///            -> the VM's immutable DecodedProgram, shared by every VM
///               that runs that code against that placement.
///
/// Keys are structural hashes of VALUES only -- no pointers -- so a hit
/// is exactly "same bytes in, same artifact out", and results are
/// identical whether the sweep runs serial or across the thread pool.
///
/// The cache stands down (enabled() == false) whenever this thread's
/// fault-injection controller is active: instrumented runs must actually
/// execute every stage so site counters stay deterministic, and a result
/// produced under an injected fault must never be memoized. This keeps
/// the crashtest's fault counts bit-identical with the cache compiled in.
///
/// All entries are immutable once inserted and handed out as
/// shared_ptr-to-const; a mutex guards the maps, so sweep workers share
/// one cache safely.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_JIT_CODECACHE_H
#define VAPOR_JIT_CODECACHE_H

#include "analysis/Certificate.h"
#include "codegen/NativeJit.h"
#include "jit/Jit.h"
#include "target/VM.h"

#include <memory>
#include <optional>
#include <string>

namespace vapor {
namespace jit {
namespace cache {

/// Whether lookups/insertions are live: the global switch (on by
/// default) AND no active fault-injection controller on this thread.
bool enabled();

/// Flips the global switch. \returns the previous value. Benches use
/// this to measure cold compiles; tests use it to force both paths.
bool setEnabled(bool On);

/// Drops every entry (all four maps). Entries already handed out stay
/// alive through their shared_ptrs.
void clear();

struct Stats {
  uint64_t ModuleHits = 0, ModuleMisses = 0;
  uint64_t VerifyHits = 0, VerifyMisses = 0;
  uint64_t CompileHits = 0, CompileMisses = 0;
  uint64_t ProgramHits = 0, ProgramMisses = 0;
  uint64_t NativeHits = 0, NativeMisses = 0;
};
Stats stats();
void resetStats();

//===--- Key ingredients --------------------------------------------------===//
// Combine with ir::hashFunction(F) (Function.h). Every hash covers all
// semantically relevant fields of its input; none reads a pointer.

/// FNV-1a over \p Len raw bytes, folded into \p Seed.
uint64_t hashBytes(const void *Data, size_t Len, uint64_t Seed = 0);

/// Hash of everything the JIT and VM read from a TargetDesc (name,
/// widths, feature flags, register counts, legality masks, cost table).
uint64_t hashTarget(const target::TargetDesc &T);

/// Hash of the jit::Options knobs (tier, codegen profile, forced
/// scalarization).
uint64_t hashOptions(const Options &O);

/// Hash of what the JIT knows about the runtime (per-array known-base
/// flag and base address).
uint64_t hashRuntime(const RuntimeInfo &RT);

/// Hash of \p Image's placement: per-array element kind, length, and
/// resolved base address, plus the image bounds. Two images with equal
/// placement hashes can share one DecodedProgram (its baked bases are
/// valid for both).
uint64_t hashPlacement(const target::MemoryImage &Image);

/// Folds \p W into \p Seed (same mixing as hashBytes).
uint64_t hashCombine(uint64_t Seed, uint64_t W);

//===--- Module (decode) memo ---------------------------------------------===//

std::shared_ptr<const ir::Function> findModule(uint64_t BytesHash);
/// Inserts (first writer wins) and \returns the cached module.
std::shared_ptr<const ir::Function> putModule(uint64_t BytesHash,
                                              ir::Function Module);

//===--- Verify memo ------------------------------------------------------===//

struct VerifyResult {
  bool Ok = false;
  std::string Report; ///< Rendered findings (empty when Ok).
  /// The per-target safety certificate the verifier emitted (null when
  /// it proved nothing). Cached alongside the verdict so elision plans
  /// can be rebuilt per placement without re-running the verifier.
  std::shared_ptr<const analysis::SafetyCertificate> Cert;
};
std::optional<VerifyResult> findVerify(uint64_t FnHash, uint64_t TargetHash);
void putVerify(uint64_t FnHash, uint64_t TargetHash, VerifyResult R);

//===--- Compile memo -----------------------------------------------------===//

/// The full compile key for (\p FnHash, target \p T, options \p O,
/// runtime \p RT). Also the prefix of the program key.
uint64_t compileKey(uint64_t FnHash, const target::TargetDesc &T,
                    const Options &O, const RuntimeInfo &RT);

std::shared_ptr<const CompileResult> findCompile(uint64_t Key);
std::shared_ptr<const CompileResult> putCompile(uint64_t Key,
                                                CompileResult R);

//===--- Decoded-program memo ---------------------------------------------===//

/// Looks up the pre-decoded (and fused) program for \p CompKey's machine
/// code at \p Image's placement; on miss builds it with
/// target::DecodedProgram::build and memoizes. Never returns null. The
/// elision plan (mode + grant hash) joins the key: decoded check states
/// are baked into the program.
std::shared_ptr<const target::DecodedProgram>
programFor(uint64_t CompKey, const target::MFunction &Code,
           const target::TargetDesc &T, const target::MemoryImage &Image,
           bool Weak, bool Fuse, const target::ElisionPlan *Plan = nullptr);

//===--- Native-unit memo -------------------------------------------------===//

/// Looks up the native compilation of \p CompKey's machine code for \p
/// Image's placement under \p NO's encoding set; on miss runs
/// codegen::compileNative and memoizes the unit. Only successful compiles
/// are cached -- a failing Status is returned uncached so the executor's
/// demotion path re-evaluates it every attempt (the failure may be
/// environmental, e.g. page allocation).
Expected<std::shared_ptr<const codegen::NativeUnit>>
nativeFor(uint64_t CompKey, const target::MFunction &Code,
          const target::TargetDesc &T, const target::MemoryImage &Image,
          const codegen::NativeOptions &NO);

} // namespace cache
} // namespace jit
} // namespace vapor

#endif // VAPOR_JIT_CODECACHE_H
