//===- jit/CodeCache.h - Content-addressed online-stage cache --*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide content-addressed cache for every deterministic product
/// of the online stage. The bench sweeps and the parallel crashtest
/// driver run the same (kernel, target, placement) cell over and over;
/// each cell's decode, verify, JIT lowering, and VM pre-decode+fusion are
/// pure functions of their inputs, so the cache memoizes all four:
///
///   module   key = hash(encoded bytecode bytes)
///            -> the decoded ir::Function;
///   verify   key = (ir::hashFunction, target hash)
///            -> the verifier's verdict and rendered report;
///   compile  key = (ir::hashFunction, target hash, jit::Options hash,
///                   RuntimeInfo hash)
///            -> the CompileResult (machine code + scalarization info);
///   program  key = (compile key, placement hash, weak-tier, fuse)
///            -> the VM's immutable DecodedProgram, shared by every VM
///               that runs that code against that placement.
///
/// Keys are structural hashes of VALUES only -- no pointers -- so a hit
/// is exactly "same bytes in, same artifact out", and results are
/// identical whether the sweep runs serial or across the thread pool.
///
/// The cache stands down (enabled() == false) whenever this thread's
/// fault-injection controller is active: instrumented runs must actually
/// execute every stage so site counters stay deterministic, and a result
/// produced under an injected fault must never be memoized. This keeps
/// the crashtest's fault counts bit-identical with the cache compiled in.
///
/// All entries are immutable once inserted and handed out as
/// shared_ptr-to-const; a mutex guards the maps, so sweep workers share
/// one cache safely.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_JIT_CODECACHE_H
#define VAPOR_JIT_CODECACHE_H

#include "analysis/Certificate.h"
#include "codegen/NativeJit.h"
#include "jit/Jit.h"
#include "target/VM.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace vapor {
namespace jit {
namespace cache {

/// Whether lookups/insertions are live: the global switch (on by
/// default) AND no active fault-injection controller on this thread.
bool enabled();

/// Flips the global switch. \returns the previous value. Benches use
/// this to measure cold compiles; tests use it to force both paths.
bool setEnabled(bool On);

/// Drops every entry (all five maps), the LRU list, and the live-byte
/// charges (global and per-tenant). Entries already handed out stay
/// alive through their shared_ptrs. Eviction/insertion counters keep
/// their totals (clear() is not an eviction).
void clear();

/// Monotonic invalidation generation: starts at 1 and is bumped by every
/// clear(). The tiering engine (jit/Tiering.h) stamps its promotion
/// state and demotion pins with this, so a full cache invalidation also
/// expires "function is ready at tier X" claims and "never re-promote
/// into tier Y" pins -- both describe artifacts/failures of the cleared
/// generation.
uint64_t generation();

struct Stats {
  uint64_t ModuleHits = 0, ModuleMisses = 0;
  uint64_t VerifyHits = 0, VerifyMisses = 0;
  uint64_t CompileHits = 0, CompileMisses = 0;
  uint64_t ProgramHits = 0, ProgramMisses = 0;
  uint64_t NativeHits = 0, NativeMisses = 0;
  /// Memory-bound telemetry (capacity-driven LRU eviction; see
  /// setCapacity). BytesLive counts the approximate cost of resident
  /// entries; Evictions counts entries dropped to stay under the bound.
  uint64_t Evictions = 0;
  uint64_t BytesLive = 0;
  uint64_t CapacityBytes = 0; ///< 0 = unbounded.
};
Stats stats();
void resetStats();

//===--- Memory bound + cost-aware LRU ------------------------------------===//
//
// Every entry carries an approximate byte cost (machine-code bytes,
// decoded-op array sizes, report lengths -- see the cost functions in
// CodeCache.cpp). With a nonzero capacity the cache maintains one
// recency list across all five maps and evicts from the cold end,
// cheapest-to-keep last: a find refreshes recency, an insert charges its
// cost and then evicts least-recently-used entries (of any kind) until
// the total is back under the bound. Capacity 0 (the default) disables
// eviction entirely and is byte-identical to the unbounded cache.
//
// The invariant with a nonzero capacity is BytesLive <= CapacityBytes at
// every return -- an entry larger than the whole capacity is evicted
// immediately after insertion (its caller keeps it via the returned
// shared_ptr; it is simply never resident).

/// Sets the total-cost budget in approximate bytes (0 = unbounded) and
/// \returns the previous capacity. Shrinking evicts immediately.
size_t setCapacity(size_t Bytes);
size_t capacity();

//===--- Per-tenant accounting --------------------------------------------===//
//
// The execution service attributes cache residency to the tenant whose
// request inserted each entry. Attribution is ambient (a thread-local
// tenant name) so the five insert paths need no signature change; the
// empty name is the anonymous/default tenant every non-server caller
// charges to.

struct TenantStats {
  std::string Tenant;
  uint64_t BytesLive = 0;   ///< Resident cost attributed to this tenant.
  uint64_t Entries = 0;     ///< Resident entry count.
  uint64_t Insertions = 0;  ///< Lifetime inserts attributed.
  uint64_t Evictions = 0;   ///< Lifetime evictions of this tenant's entries.
};
/// Snapshot of every tenant ever charged, sorted by name.
std::vector<TenantStats> tenantStats();

/// Drops \p Tenant's accounting line (lifetime tallies included) iff it
/// has no resident bytes or entries; \returns true when the line is
/// gone (or never existed). The execution service retires idle tenants
/// through this so the per-tenant map stays bounded when hostile
/// clients invent unique tenant names.
bool forgetTenant(const std::string &Tenant);

/// The tenant name new insertions are attributed to on this thread.
const std::string &currentTenant();

/// RAII tenant attribution: sets the thread's tenant for the scope,
/// restoring the previous one (scopes nest).
class ScopedTenant {
public:
  explicit ScopedTenant(std::string Name);
  ~ScopedTenant();
  ScopedTenant(const ScopedTenant &) = delete;
  ScopedTenant &operator=(const ScopedTenant &) = delete;

private:
  std::string Prev;
};

//===--- Key ingredients --------------------------------------------------===//
// Combine with ir::hashFunction(F) (Function.h). Every hash covers all
// semantically relevant fields of its input; none reads a pointer.

/// FNV-1a over \p Len raw bytes, folded into \p Seed.
uint64_t hashBytes(const void *Data, size_t Len, uint64_t Seed = 0);

/// Hash of everything the JIT and VM read from a TargetDesc (name,
/// widths, feature flags, register counts, legality masks, cost table).
uint64_t hashTarget(const target::TargetDesc &T);

/// Hash of the jit::Options knobs (tier, codegen profile, forced
/// scalarization).
uint64_t hashOptions(const Options &O);

/// Hash of what the JIT knows about the runtime (per-array known-base
/// flag and base address).
uint64_t hashRuntime(const RuntimeInfo &RT);

/// Hash of \p Image's placement: per-array element kind, length, and
/// resolved base address, plus the image bounds. Two images with equal
/// placement hashes can share one DecodedProgram (its baked bases are
/// valid for both).
uint64_t hashPlacement(const target::MemoryImage &Image);

/// Folds \p W into \p Seed (same mixing as hashBytes).
uint64_t hashCombine(uint64_t Seed, uint64_t W);

//===--- Module (decode) memo ---------------------------------------------===//

std::shared_ptr<const ir::Function> findModule(uint64_t BytesHash);
/// Inserts (first writer wins) and \returns the cached module. \p Cost
/// is the entry's approximate byte cost for the capacity bound; 0 asks
/// the cache to estimate from the function's shape (callers that know
/// the encoded size should pass it -- it is the honest decode cost).
std::shared_ptr<const ir::Function>
putModule(uint64_t BytesHash, ir::Function Module, size_t Cost = 0);

//===--- Verify memo ------------------------------------------------------===//

struct VerifyResult {
  bool Ok = false;
  std::string Report; ///< Rendered findings (empty when Ok).
  /// The per-target safety certificate the verifier emitted (null when
  /// it proved nothing). Cached alongside the verdict so elision plans
  /// can be rebuilt per placement without re-running the verifier.
  std::shared_ptr<const analysis::SafetyCertificate> Cert;
};
std::optional<VerifyResult> findVerify(uint64_t FnHash, uint64_t TargetHash);
void putVerify(uint64_t FnHash, uint64_t TargetHash, VerifyResult R);

//===--- Compile memo -----------------------------------------------------===//

/// The full compile key for (\p FnHash, target \p T, options \p O,
/// runtime \p RT). Also the prefix of the program key.
uint64_t compileKey(uint64_t FnHash, const target::TargetDesc &T,
                    const Options &O, const RuntimeInfo &RT);

std::shared_ptr<const CompileResult> findCompile(uint64_t Key);
std::shared_ptr<const CompileResult> putCompile(uint64_t Key,
                                                CompileResult R);

//===--- Decoded-program memo ---------------------------------------------===//

/// Looks up the pre-decoded (and fused) program for \p CompKey's machine
/// code at \p Image's placement; on miss builds it with
/// target::DecodedProgram::build and memoizes. Never returns null. The
/// elision plan (mode + grant hash) joins the key: decoded check states
/// are baked into the program.
std::shared_ptr<const target::DecodedProgram>
programFor(uint64_t CompKey, const target::MFunction &Code,
           const target::TargetDesc &T, const target::MemoryImage &Image,
           bool Weak, bool Fuse, const target::ElisionPlan *Plan = nullptr);

//===--- Native-unit memo -------------------------------------------------===//

/// Looks up the native compilation of \p CompKey's machine code for \p
/// Image's placement under \p NO's encoding set; on miss runs
/// codegen::compileNative and memoizes the unit. Only successful compiles
/// are cached -- a failing Status is returned uncached so the executor's
/// demotion path re-evaluates it every attempt (the failure may be
/// environmental, e.g. page allocation).
Expected<std::shared_ptr<const codegen::NativeUnit>>
nativeFor(uint64_t CompKey, const target::MFunction &Code,
          const target::TargetDesc &T, const target::MemoryImage &Image,
          const codegen::NativeOptions &NO);

} // namespace cache
} // namespace jit
} // namespace vapor

#endif // VAPOR_JIT_CODECACHE_H
