//===- jit/Elision.cpp - Certificate-driven check elision planner ---------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "jit/Elision.h"

#include <sstream>

namespace vapor {
namespace jit {

using target::ElisionMode;
using target::ElisionPlan;

namespace {

uint64_t mix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

uint64_t planHash(const ElisionPlan &P) {
  uint64_t H = 0x454c49444eULL; // "ELIDN"
  H = mix(H, static_cast<uint64_t>(P.Mode));
  H = mix(H, P.Proven.size());
  for (uint8_t B : P.Proven)
    H = mix(H, B);
  return H;
}

std::string arrayName(const ir::Function &F, uint32_t A) {
  if (A < F.Arrays.size() && !F.Arrays[A].Name.empty())
    return F.Arrays[A].Name;
  return "arr" + std::to_string(A);
}

} // namespace

ElisionPlan buildElisionPlan(const ir::Function &F,
                             const analysis::SafetyCertificate *Cert,
                             const target::TargetDesc &T,
                             const target::MemoryImage &Image,
                             ElisionMode Mode,
                             const analysis::ParamFn &Params) {
  ElisionPlan P;
  P.Mode = Mode;
  if (Mode == ElisionMode::Off || !Cert) {
    P.Hash = planHash(P);
    return P;
  }

  // Machine-parameter binding: a certificate instantiated for a different
  // target's vector size proves nothing about this lowering.
  if (Cert->TargetName != T.Name || Cert->VSBytes != T.VSBytes) {
    P.CheckerError = "certificate bound to target '" + Cert->TargetName +
                     "' (VS=" + std::to_string(Cert->VSBytes) +
                     "), lowering for '" + T.Name +
                     "' (VS=" + std::to_string(T.VSBytes) + ")";
    P.FactsRejected = static_cast<uint32_t>(Cert->Facts.size());
    P.Hash = planHash(P);
    return P;
  }

  // Independent structural validation: content hash, access identity,
  // claimed shapes, static-range recomputation. Fails closed.
  if (std::string Err = analysis::checkCertificate(F, *Cert); !Err.empty()) {
    P.CheckerError = Err;
    P.FactsRejected = static_cast<uint32_t>(Cert->Facts.size());
    P.Hash = planHash(P);
    return P;
  }

  P.Proven.assign(F.Instrs.size(), 0);

  for (const analysis::AccessFact &Fact : Cert->Facts) {
    const ir::Instr &I = F.Instrs[Fact.InstrIdx];
    std::ostringstream D;
    D << "#" << Fact.InstrIdx << " " << ir::opcodeMnemonic(I.Op) << " "
      << arrayName(F, Fact.Array) << ":";
    bool AnyElide = false, AnyKeep = false, AnyReject = false;

    if (Fact.HasAlign) {
      if (analysis::checkAlignFact(F, *Cert, Fact) !=
          analysis::FactVerdict::Confirmed) {
        AnyReject = true;
        D << " align=reject(checker)";
      } else {
        // The checked congruence is conditional on every named base
        // alignment; test them against the concrete placement.
        bool BasesOk = true;
        uint32_t BadArray = ir::NoArray;
        for (const analysis::BaseAlignReq &R : Fact.BaseReqs) {
          if (R.Array >= Image.arrayCount() || R.Bytes == 0 ||
              Image.base(R.Array) % R.Bytes != 0) {
            BasesOk = false;
            BadArray = R.Array;
            break;
          }
        }
        if (BasesOk) {
          P.Proven[Fact.InstrIdx] |= ElisionPlan::AlignBit;
          AnyElide = true;
          D << " align=elide(mod" << Fact.AlignElems << " proven, "
            << Fact.BaseReqs.size() << " base req"
            << (Fact.BaseReqs.size() == 1 ? "" : "s") << " hold)";
        } else {
          AnyKeep = true;
          D << " align=keep(base(" << arrayName(F, BadArray)
            << ") misaligned at runtime)";
        }
      }
    }

    if (Fact.HasBounds) {
      // Extent always from the bytecode, never the certificate: the
      // checker verified they agree, but bounds trust must not rest on
      // producer data.
      int64_t Limit =
          static_cast<int64_t>(F.Arrays[Fact.Array].NumElems) -
          static_cast<int64_t>(Fact.SpanElems);
      analysis::BoundsEvaluator BE(F, T.VSBytes, Params);
      std::optional<analysis::Interval> Rng = BE.eval(Fact.IndexVal);
      if (Rng && Limit >= 0 && Rng->Min >= 0 && Rng->Max <= Limit) {
        P.Proven[Fact.InstrIdx] |= ElisionPlan::BoundsBit;
        AnyElide = true;
        D << " bounds=elide([" << Rng->Min << "," << Rng->Max << "] in [0,"
          << Limit << "])";
      } else if (!Rng) {
        AnyKeep = true;
        D << " bounds=keep(range not derivable with run parameters)";
      } else {
        AnyKeep = true;
        D << " bounds=keep([" << Rng->Min << "," << Rng->Max
          << "] not in [0," << Limit << "])";
      }
    }

    if (AnyReject)
      ++P.FactsRejected;
    if (P.Proven[Fact.InstrIdx] & ElisionPlan::AlignBit)
      ++P.AlignElided;
    if (P.Proven[Fact.InstrIdx] & ElisionPlan::BoundsBit)
      ++P.BoundsElided;
    if (AnyKeep || (AnyReject && !AnyElide))
      ++P.ChecksKept;
    P.Decisions.push_back(D.str());
  }

  P.Hash = planHash(P);
  return P;
}

} // namespace jit
} // namespace vapor
