//===- jit/Jit.h - The online (JIT) compilation stage ----------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The last, online compilation stage (paper Sec. III-C): translates
/// split-layer bytecode into target machine code in time linear in the
/// bytecode size, with no loop-level analysis. All decisions are local:
///
///  - realign_load is lowered per the target: explicit realignment
///    (lvsr/vperm) where supported, a misaligned load where supported, an
///    aligned load when the mis/mod hints prove alignment, and a scalar
///    load when scalarizing — the rest of the chain dies as dead code;
///  - version guards are resolved statically when the runtime base
///    addresses are known (strong tier), or lowered to runtime checks;
///  - get_VF / get_align_limit / loop_bound / get_misalign materialize;
///  - when the target has no (suitable) SIMD, vector code is *scalarized*
///    by per-lane expansion at the granularity of the widest element type,
///    producing plain scalar loops with no vector-era overheads.
///
/// Two quality tiers reproduce the paper's two online compilers:
///  - Strong ("gcc4cli"): constant folding of guards and machine
///    parameters, loop-invariant hoisting, folded addressing, generous
///    register allocation.
///  - Weak ("mono"): no guard folding (alignment tests execute where the
///    bytecode put them — per outer-loop iteration in nested loops), no
///    hoisting, tight register file with spill traffic, and x87 execution
///    of scalar floating point on x86.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_JIT_JIT_H
#define VAPOR_JIT_JIT_H

#include "ir/Function.h"
#include "target/MachineIR.h"
#include "target/MemoryImage.h"
#include "target/Target.h"

namespace vapor {
namespace jit {

enum class Tier : uint8_t {
  Weak,   ///< Mono-like.
  Strong, ///< gcc4cli-like.
};

/// What the JIT knows about the runtime environment when it compiles.
struct RuntimeInfo {
  struct ArrayRT {
    bool KnownBase = false; ///< JIT knows the base address (can fold).
    uint64_t Base = 0;
  };
  std::vector<ArrayRT> Arrays;

  /// Runtime info for a fully bound memory image: every base known.
  static RuntimeInfo fromMemory(const target::MemoryImage &Mem);
  /// Runtime info for externally supplied arrays: nothing known.
  static RuntimeInfo unknown(size_t NumArrays);
};

struct Options {
  Tier CompilerTier = Tier::Strong;
  /// Table 3 "legacy" codegen profile (the older GCC used for split AVX):
  /// no scaled-index addressing and no accumulator register promotion.
  bool FoldAddressing = true;
  bool PromoteAccumulators = true;
};

struct CompileResult {
  target::MFunction Code;
  bool Scalarized = false; ///< The whole function was scalar-expanded.
  std::string ScalarizeReason;
};

/// Compiles split-layer bytecode \p F for \p T. Never fails: targets that
/// cannot execute the vector code get scalarized code.
CompileResult compile(const ir::Function &F, const target::TargetDesc &T,
                      const RuntimeInfo &RT, const Options &Opt = {});

} // namespace jit
} // namespace vapor

#endif // VAPOR_JIT_JIT_H
