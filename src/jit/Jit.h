//===- jit/Jit.h - The online (JIT) compilation stage ----------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The last, online compilation stage (paper Sec. III-C): translates
/// split-layer bytecode into target machine code in time linear in the
/// bytecode size, with no loop-level analysis. All decisions are local:
///
///  - realign_load is lowered per the target: explicit realignment
///    (lvsr/vperm) where supported, a misaligned load where supported, an
///    aligned load when the mis/mod hints prove alignment, and a scalar
///    load when scalarizing — the rest of the chain dies as dead code;
///  - version guards are resolved statically when the runtime base
///    addresses are known (strong tier), or lowered to runtime checks;
///  - get_VF / get_align_limit / loop_bound / get_misalign materialize;
///  - when the target has no (suitable) SIMD, vector code is *scalarized*
///    by per-lane expansion at the granularity of the widest element type,
///    producing plain scalar loops with no vector-era overheads.
///
/// Two quality tiers reproduce the paper's two online compilers:
///  - Strong ("gcc4cli"): constant folding of guards and machine
///    parameters, loop-invariant hoisting, folded addressing, generous
///    register allocation.
///  - Weak ("mono"): no guard folding (alignment tests execute where the
///    bytecode put them — per outer-loop iteration in nested loops), no
///    hoisting, tight register file with spill traffic, and x87 execution
///    of scalar floating point on x86.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_JIT_JIT_H
#define VAPOR_JIT_JIT_H

#include "ir/Function.h"
#include "support/Status.h"
#include "target/MachineIR.h"
#include "target/MemoryImage.h"
#include "target/Target.h"

#include <optional>
#include <string>

namespace vapor {
namespace jit {

enum class Tier : uint8_t {
  Weak,   ///< Mono-like.
  Strong, ///< gcc4cli-like.
};

/// What the JIT knows about the runtime environment when it compiles.
struct RuntimeInfo {
  struct ArrayRT {
    bool KnownBase = false; ///< JIT knows the base address (can fold).
    uint64_t Base = 0;
  };
  std::vector<ArrayRT> Arrays;

  /// Runtime info for a fully bound memory image: every base known.
  static RuntimeInfo fromMemory(const target::MemoryImage &Mem);
  /// Runtime info for externally supplied arrays: nothing known.
  static RuntimeInfo unknown(size_t NumArrays);
};

struct Options {
  Tier CompilerTier = Tier::Strong;
  /// Table 3 "legacy" codegen profile (the older GCC used for split AVX):
  /// no scaled-index addressing and no accumulator register promotion.
  bool FoldAddressing = true;
  bool PromoteAccumulators = true;
  /// Lower the whole function scalar regardless of target SIMD support.
  /// The executor's deoptimization path uses this to re-enter at the
  /// scalar tier after a runtime alignment trap or a verifier rejection:
  /// scalar lowering emits no checked vector accesses, so no alignment
  /// lie in the bytecode can trap it.
  bool ForceScalarize = false;
};

/// Tally of the local strategy decisions one compile() took — the
/// observability layer's per-target record (vapor-explain prints it, the
/// executor forwards it through RunOutcome).
struct StrategyStats {
  uint32_t MemAligned = 0;   ///< Accesses lowered VLoadA/VStoreA.
  uint32_t MemUnaligned = 0; ///< Accesses lowered VLoadU/VStoreU.
  uint32_t MemPerm = 0;      ///< Explicit realignment chains kept.
  uint32_t MemScalar = 0;    ///< Accesses in scalar-expansion regions.
  uint32_t GuardsFoldedTrue = 0;  ///< version_guards folded to taken.
  uint32_t GuardsFoldedFalse = 0; ///< ... folded to not-taken.
  uint32_t GuardsRuntime = 0;     ///< ... left as runtime checks.
};

struct CompileResult {
  target::MFunction Code;
  bool Scalarized = false; ///< The whole function was scalar-expanded.
  std::string ScalarizeReason;
  StrategyStats Strategy;
};

//===--- The per-target strategy model ------------------------------------===//
//
// Every decision the online compiler takes locally is exposed here as a
// pure function of (instruction, target, runtime knowledge), so that the
// offline verifier can enumerate exactly the lowerings this JIT could
// materialize. The compiler itself calls the same functions; there is a
// single source of truth for the strategy table.

/// How one memory idiom will be lowered.
enum class MemStrategy : uint8_t {
  Aligned,   ///< VLoadA / VStoreA.
  Unaligned, ///< VLoadU / VStoreU.
  Perm,      ///< Keep the explicit realignment chain (lvsr + vperm).
  Scalar,    ///< Per-lane scalar accesses (scalar-expansion region).
};

const char *memStrategyName(MemStrategy S);

/// Whether the hint proves T.VSBytes-alignment of the access. A hint
/// marked IfJitAligns is only valid when this compiler knows the runtime
/// base and that base is vector-aligned (paper Sec. III-B(c)).
bool hintProvesAligned(const ir::AlignHint &H, uint32_t Array,
                       const target::TargetDesc &T, const RuntimeInfo &RT);

/// Whether \p H could prove alignment in *some* runtime world: like
/// hintProvesAligned but optimistic about IfJitAligns bases. The verifier
/// uses this to make its region modes a superset of any actual run.
bool hintCouldProveAligned(const ir::AlignHint &H,
                           const target::TargetDesc &T);

/// The strategy chosen for memory idiom \p Op given the region lowering
/// mode and the hint decision. Non-memory opcodes have no strategy.
MemStrategy memStrategy(ir::Opcode Op, bool ScalarRegion, bool HintAligned,
                        const target::TargetDesc &T);

/// Idioms a LibFallbackForOps target can route to a library call.
bool isLibCallable(ir::Opcode Op);

/// \returns a reason string if instruction \p I (assumed to sit in a
/// vector-mode region) cannot be lowered vectorially on \p T, given the
/// hint-alignment decision for its access; "" when it can.
std::string vectorBlockReason(const ir::Function &F, const ir::Instr &I,
                              const target::TargetDesc &T, bool HintAligned);

/// The smallest vector element size (bytes) used inside \p R, or 16 when
/// the region holds no vector code.
unsigned minVectorElemSize(const ir::Function &F, const ir::Region &R);

/// This target's vectorization factor for loop \p L: vector size over the
/// smallest vector element kind used inside (1 when not vectorizable).
int64_t loopVF(const ir::Function &F, const ir::LoopStmt &L,
               const target::TargetDesc &T);

/// Statically folds the version_guard \p I the way tier \p CompilerTier
/// with knowledge \p RT does. \p NestedInLoop marks guards inside loops,
/// which the weak tier leaves as runtime checks (paper Sec. V-A(a)).
/// \returns nullopt when the guard stays a runtime check.
std::optional<bool> foldGuardStatic(const ir::Instr &I,
                                    const target::TargetDesc &T,
                                    const RuntimeInfo &RT, Tier CompilerTier,
                                    bool NestedInLoop);

/// Compiles split-layer bytecode \p F for \p T. Never fails: targets that
/// cannot execute the vector code get scalarized code.
CompileResult compile(const ir::Function &F, const target::TargetDesc &T,
                      const RuntimeInfo &RT, const Options &Opt = {});

/// The fault-tolerant pipeline's lowering surface: like compile(), but
/// lowering failures are *representable* — a Jit-layer Status comes back
/// instead of an abort. Organic failures cannot currently occur (every
/// idiom has at least a scalar expansion), so errors surface only under
/// fault injection (SiteClass::JitLower) — which is exactly what keeps the
/// executor's JIT-demotion edge honest and tested.
Expected<CompileResult> compileChecked(const ir::Function &F,
                                       const target::TargetDesc &T,
                                       const RuntimeInfo &RT,
                                       const Options &Opt = {});

} // namespace jit
} // namespace vapor

#endif // VAPOR_JIT_JIT_H
