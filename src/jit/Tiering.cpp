//===- jit/Tiering.cpp - Hotness-driven background promotion ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "jit/Tiering.h"

#include "jit/CodeCache.h"
#include "obs/Obs.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

using namespace vapor;
using namespace vapor::jit;
using namespace vapor::jit::tiering;

namespace {

using Clock = std::chrono::steady_clock;

double microsBetween(Clock::time_point A, Clock::time_point B) {
  return std::chrono::duration<double, std::micro>(B - A).count();
}

constexpr size_t MaxEventsPerKey = 32;

/// One hotness-table row. All fields are guarded by Impl::Mu.
struct HotEntry {
  uint64_t Invocations = 0;
  uint64_t LastTouch = 0;  ///< Global tick of the latest invocation.
  uint64_t Gen = 0;        ///< cache::generation() the state is valid for.
  uint8_t Ready = NoTier;  ///< Entry tier of the next invocation.
  uint8_t Cold = NoTier;   ///< Cheapest tier of this entry's flow.
  uint8_t Pin = NoTier;    ///< Best tier allowed (NoTier = unpinned).
  bool CompileInFlight = false;
  uint64_t QueuedAtInvocation = 0;
  std::vector<TransitionEvent> Events;

  void pushEvent(TransitionEvent E) {
    if (Events.size() < MaxEventsPerKey)
      Events.push_back(std::move(E));
  }
};

} // namespace

struct Engine::Impl {
  mutable std::mutex Mu;
  std::condition_variable DrainCV; ///< Signals Outstanding reaching zero.
  std::unordered_map<uint64_t, HotEntry> Table;
  Config Cfg;
  uint64_t Tick = 0;        ///< Recency clock for MaxEntries eviction.
  uint64_t Outstanding = 0; ///< Background jobs queued or running.

  // Lifetime tallies (EngineStats; obs counters tick alongside).
  uint64_t Invocations = 0;
  uint64_t Promotions = 0;
  uint64_t CompilesOk = 0;
  uint64_t CompilesFailed = 0;
  uint64_t QueueRejects = 0;
  uint64_t Pins = 0;

  /// Background execution: an attached pool's background lane when the
  /// server shares its request pool, else a lazily created owned pool.
  support::ThreadPool *Attached = nullptr;
  std::unique_ptr<support::ThreadPool> Own;

  support::ThreadPool &pool() { // Caller holds Mu.
    if (Attached)
      return *Attached;
    if (!Own)
      Own = std::make_unique<support::ThreadPool>(Cfg.OwnWorkers);
    return *Own;
  }

  /// Refreshes \p E against the current cache generation: a clear()
  /// dropped the promoted artifacts AND expired every pin, so readiness
  /// falls back to the cold tier and pins lift. Hotness survives -- the
  /// function is still hot, it just has to recompile.
  void refreshGeneration(HotEntry &E, uint64_t Gen) {
    if (E.Gen == Gen)
      return;
    E.Gen = Gen;
    E.Ready = E.Cold;
    E.Pin = NoTier;
  }

  /// Evicts the least-recently-invoked idle entries once the table
  /// outgrows the bound. Entries with an in-flight compile are never
  /// evicted (the finishing job must find its row).
  void enforceEntryBound() { // Caller holds Mu.
    if (Table.size() <= Cfg.MaxEntries)
      return;
    std::vector<std::pair<uint64_t, uint64_t>> Idle; // (LastTouch, Key)
    Idle.reserve(Table.size());
    for (const auto &KV : Table)
      if (!KV.second.CompileInFlight)
        Idle.push_back({KV.second.LastTouch, KV.first});
    size_t Want = Cfg.MaxEntries - Cfg.MaxEntries / 8; // Evict in batch.
    if (Table.size() - Idle.size() >= Want)
      return; // Everything evictable still would not get us under.
    size_t Drop = std::min(Idle.size(), Table.size() - Want);
    std::nth_element(Idle.begin(), Idle.begin() + Drop, Idle.end());
    for (size_t I = 0; I < Drop; ++I)
      Table.erase(Idle[I].second);
  }
};

Engine::Engine() : I(new Impl) {}

Engine::~Engine() {
  drain();
  delete I;
}

Decision Engine::onInvoke(uint64_t Key, uint8_t EagerTier,
                          uint8_t ColdTier) {
  static obs::Counter Invokes("tiering.invocations");
  Invokes.add(1);
  const uint64_t Gen = cache::generation();
  std::lock_guard<std::mutex> Lock(I->Mu);
  ++I->Invocations;
  HotEntry &E = I->Table[Key];
  if (E.Ready == NoTier) { // Fresh row.
    E.Ready = ColdTier;
    E.Cold = ColdTier;
    E.Gen = Gen;
  }
  I->refreshGeneration(E, Gen);
  ++E.Invocations;
  E.LastTouch = ++I->Tick;

  Decision D;
  D.Invocations = E.Invocations;
  // Never better than what this run asked for, never worse than cold.
  D.EntryTier = std::min<uint8_t>(std::max(E.Ready, EagerTier), ColdTier);

  // Promotion ladder: first the vectorized VM program (or the eager
  // tier itself when that is worse than Vectorized -- e.g. a tiered
  // SplitScalar flow), then the native unit. A pin caps how high the
  // ladder reaches; a claimed-but-unfinished compile blocks reclaiming.
  const uint8_t Floor = E.Pin == NoTier ? 0 : E.Pin;
  const uint8_t Step1 = std::max<uint8_t>(EagerTier, 1);
  uint8_t Target = NoTier;
  if (E.Ready > Step1 && Step1 >= Floor &&
      E.Invocations >= I->Cfg.HotVectorized)
    Target = Step1;
  else if (E.Ready <= Step1 && EagerTier < E.Ready && EagerTier >= Floor &&
           E.Invocations >= I->Cfg.HotNative)
    Target = EagerTier;
  if (Target != NoTier && !E.CompileInFlight) {
    if (I->Outstanding >= I->Cfg.MaxQueue) {
      static obs::Counter Rejects("tiering.queue_rejects");
      Rejects.add(1);
      ++I->QueueRejects; // Retried on the next invocation.
    } else {
      E.CompileInFlight = true;
      E.QueuedAtInvocation = E.Invocations;
      D.ShouldCompile = true;
      D.CompileTier = Target;
    }
  }
  I->enforceEntryBound();
  return D;
}

void Engine::enqueueCompile(uint64_t Key, uint8_t FromTier, uint8_t ToTier,
                            std::function<bool()> Compile) {
  const uint64_t GenAtQueue = cache::generation();
  const Clock::time_point Queued = Clock::now();
  support::ThreadPool *Pool;
  {
    std::lock_guard<std::mutex> Lock(I->Mu);
    ++I->Outstanding;
    Pool = &I->pool();
  }
  Pool->submitBackground([this, Key, FromTier, ToTier, GenAtQueue, Queued,
                          Job = std::move(Compile)] {
    const Clock::time_point Start = Clock::now();
    bool Ok;
    {
      obs::Span S("tiering", "compile");
      S.arg("key", Key);
      S.arg("to_tier", static_cast<uint64_t>(ToTier));
      Ok = Job();
      S.arg("ok", Ok);
    }
    const Clock::time_point Done = Clock::now();

    std::lock_guard<std::mutex> Lock(I->Mu);
    if (--I->Outstanding == 0)
      I->DrainCV.notify_all();
    auto It = I->Table.find(Key);
    if (It == I->Table.end())
      return; // Row evicted? (Cannot happen while in flight; be safe.)
    HotEntry &E = It->second;
    E.CompileInFlight = false;
    if (cache::generation() != GenAtQueue)
      return; // The cache was invalidated underneath; result is stale.
    TransitionEvent Ev;
    Ev.AtInvocation = E.QueuedAtInvocation;
    Ev.FromTier = FromTier;
    Ev.ToTier = ToTier;
    Ev.QueueWaitMicros = microsBetween(Queued, Start);
    Ev.CompileMicros = microsBetween(Start, Done);
    if (Ok) {
      static obs::Counter Oks("tiering.compiles_ok");
      static obs::Counter Promos("tiering.promotions");
      Oks.add(1);
      ++I->CompilesOk;
      uint8_t NewReady = std::min(E.Ready, ToTier);
      if (E.Pin != NoTier)
        NewReady = std::max(NewReady, E.Pin);
      if (NewReady < E.Ready) {
        Promos.add(1);
        ++I->Promotions;
        E.Ready = NewReady;
      }
      Ev.What = TransitionEvent::Promoted;
    } else {
      static obs::Counter Fails("tiering.compiles_failed");
      static obs::Counter PinsC("tiering.pins");
      Fails.add(1);
      ++I->CompilesFailed;
      ++I->Pins;
      // The tier does not compile for this function: pin strictly below
      // it so the ladder never re-claims the same doomed step.
      uint8_t Pin = std::min<uint8_t>(ToTier + 1, E.Cold);
      E.Pin = E.Pin == NoTier ? Pin : std::max(E.Pin, Pin);
      E.Ready = std::max(E.Ready, E.Pin);
      Ev.What = TransitionEvent::CompileFailed;
      Ev.ToTier = E.Pin;
      PinsC.add(1);
    }
    E.pushEvent(std::move(Ev));
  });
}

void Engine::onOutcome(uint64_t Key, uint8_t PinTier) {
  static obs::Counter PinsC("tiering.pins");
  const uint64_t Gen = cache::generation();
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Table.find(Key);
  if (It == I->Table.end())
    return;
  HotEntry &E = It->second;
  I->refreshGeneration(E, Gen);
  uint8_t Pin = std::min(PinTier, E.Cold);
  if (E.Pin != NoTier && Pin <= E.Pin)
    return; // Already pinned at least this low.
  PinsC.add(1);
  ++I->Pins;
  TransitionEvent Ev;
  Ev.What = TransitionEvent::Demoted;
  Ev.AtInvocation = E.Invocations;
  Ev.FromTier = E.Ready;
  Ev.ToTier = Pin;
  E.Pin = Pin;
  E.Ready = std::max(E.Ready, E.Pin);
  E.pushEvent(std::move(Ev));
}

void Engine::drain() {
  std::unique_lock<std::mutex> Lock(I->Mu);
  I->DrainCV.wait(Lock, [this] { return I->Outstanding == 0; });
}

void Engine::reset() {
  drain();
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Table.clear();
  I->Tick = 0;
  I->Invocations = I->Promotions = I->CompilesOk = I->CompilesFailed =
      I->QueueRejects = I->Pins = 0;
}

Config Engine::config() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->Cfg;
}

void Engine::setConfig(const Config &C) {
  drain();
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Cfg = C;
}

void Engine::attachPool(support::ThreadPool *Pool) {
  drain(); // No job may outlive the pool it was submitted to.
  std::lock_guard<std::mutex> Lock(I->Mu);
  I->Attached = Pool;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  EngineStats S;
  S.Invocations = I->Invocations;
  S.Promotions = I->Promotions;
  S.CompilesOk = I->CompilesOk;
  S.CompilesFailed = I->CompilesFailed;
  S.QueueRejects = I->QueueRejects;
  S.Pins = I->Pins;
  S.QueueDepth = I->Outstanding;
  S.Entries = I->Table.size();
  return S;
}

std::optional<KeyReport> Engine::keyReport(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Table.find(Key);
  if (It == I->Table.end())
    return std::nullopt;
  const HotEntry &E = It->second;
  KeyReport R;
  R.Key = Key;
  R.Invocations = E.Invocations;
  R.ReadyTier = E.Ready;
  R.PinTier = E.Pin;
  R.CompileInFlight = E.CompileInFlight;
  R.Events = E.Events;
  return R;
}

Engine &tiering::engine() {
  static Engine E;
  return E;
}
