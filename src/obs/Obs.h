//===- obs/Obs.h - Pipeline observability layer ----------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/obs/README.md for the
// design notes and the event taxonomy.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vapor::obs — low-overhead, thread-aware tracing and metrics for the
/// whole split pipeline. Every stage that takes a decision the paper
/// argues about (which JIT strategy per target, why a kernel deopted,
/// where compile time goes) reports it here, three ways:
///
///  - RAII Span / Counter primitives. A Span brackets one stage (offline
///    vectorize, encode/decode, verify, JIT lowering, VM run, executor
///    tier attempt) and carries string/number args; a Counter is a named
///    process-wide atomic. Both compile to nothing when the CMake option
///    VAPOR_OBS is OFF, and when ON-but-idle (no sink installed) a Span
///    costs one relaxed atomic load — scripts/perf_gate.py gates the
///    idle overhead on the VM dispatch headline at <= 2%.
///  - A Chrome-trace-format JSON exporter (TraceSink): one file per run,
///    loadable in chrome://tracing / Perfetto. Thread ids come from
///    support::currentWorkerId(), so parallel sweep cells trace onto
///    their pool worker's line. Validated in CI by scripts/check_trace.py.
///  - The vapor-explain CLI (tools/), which assembles the per-kernel
///    end-to-end decision report from the structured records the stages
///    publish (vectorizer::LoopReport, jit::StrategyStats, verify::Report,
///    RunOutcome demotions) plus these counters.
///
/// Threading model: counters are relaxed atomics; the sink serializes
/// event appends behind one mutex (events are stage-granular, never
/// per-dispatch, so contention is irrelevant). Within one thread, events
/// append in completion order, which makes per-thread end timestamps
/// monotonic — the property check_trace.py asserts.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_OBS_OBS_H
#define VAPOR_OBS_OBS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef VAPOR_OBS_ENABLED
#define VAPOR_OBS_ENABLED 1
#endif

namespace vapor {
namespace obs {

/// One recorded trace event (Chrome trace "X", "i", or "C" phase).
struct Event {
  enum class Phase : uint8_t {
    Complete, ///< "X": a span with ts + dur.
    Instant,  ///< "i": a point event (demotion, trap, deopt).
    Counter,  ///< "C": a counter value sample.
  };
  Phase Ph = Phase::Complete;
  std::string Cat;    ///< Category ("vectorizer", "jit", "vm", ...).
  std::string Name;
  uint32_t Tid = 0;   ///< support::currentWorkerId() at record time.
  uint64_t TsNs = 0;  ///< Start, ns since sink installation.
  uint64_t DurNs = 0; ///< Complete events only.
  /// Key -> pre-rendered JSON value ("\"sse\"", "42", "true").
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Renders a value as the JSON fragment an Event arg stores.
std::string argStr(const std::string &V);
std::string argStr(const char *V);
std::string argStr(uint64_t V);
std::string argStr(int64_t V);
std::string argStr(double V);
std::string argStr(bool V);

#if VAPOR_OBS_ENABLED

/// Runtime master switch (default on). When off, Spans, Counters, and
/// events are suppressed even if a sink is installed — the benches use
/// this to measure the fully-dark configuration next to ON-but-idle.
bool enabled();
/// Flips the master switch; \returns the previous value.
bool setEnabled(bool On);
/// True when the master switch is on AND a TraceSink is installed: the
/// single test every recording site performs first.
bool tracingActive();

//===--- Counters ---------------------------------------------------------===//

/// A named process-wide counter. Construction resolves the name to a
/// registry slot once (make Counter objects static at the use site);
/// add() is a relaxed atomic increment behind the master switch.
class Counter {
public:
  explicit Counter(const char *Name);
  void add(uint64_t N = 1) {
    if (enabled())
      Slot->fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const { return Slot->load(std::memory_order_relaxed); }
  const char *name() const { return Name; }

private:
  const char *Name;
  std::atomic<uint64_t> *Slot;
};

/// Snapshot of every registered counter (name, current value), sorted by
/// name. Counters register lazily, so only ones that were constructed
/// (i.e. whose code path ran at least once) appear.
std::vector<std::pair<std::string, uint64_t>> counterSnapshot();
/// \returns the value of counter \p Name, 0 if never registered.
uint64_t counterValue(const std::string &Name);
/// Zeroes every registered counter (tests and explain-style deltas).
void resetCounters();

//===--- Spans and instant events -----------------------------------------===//

/// RAII complete-event recorder. Construction samples the clock only
/// when tracing is active; destruction appends the event to the sink.
/// arg() attaches key/value pairs rendered into the trace JSON.
class Span {
public:
  Span(const char *Cat, std::string Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  bool live() const { return Live; }
  template <typename T> void arg(const char *Key, const T &V) {
    if (Live)
      Args.emplace_back(Key, argStr(V));
  }

private:
  bool Live;
  const char *Cat;
  std::string Name;
  uint64_t StartNs = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Appends one instant event (phase "i") when tracing is active.
void event(const char *Cat, std::string Name,
           std::vector<std::pair<std::string, std::string>> Args = {});

//===--- TraceSink --------------------------------------------------------===//

/// Collects events process-wide and writes one Chrome-trace JSON file.
/// At most one sink is installed at a time (the constructor installs,
/// the destructor uninstalls and writes). An empty path collects without
/// writing — vapor-explain and the tests use that to inspect events.
class TraceSink {
public:
  /// Installs this sink. \p Path is the JSON output file ("" = collect
  /// only). \p MaxEvents bounds memory; past it events are counted as
  /// dropped instead of stored.
  explicit TraceSink(std::string Path, size_t MaxEvents = 1u << 20);
  ~TraceSink();
  TraceSink(const TraceSink &) = delete;
  TraceSink &operator=(const TraceSink &) = delete;

  /// Writes the trace file now (no-op for an empty path). \returns false
  /// when the file cannot be written. Idempotent; the destructor calls it.
  bool write();

  size_t eventCount() const;
  uint64_t droppedCount() const;
  /// Copy of everything recorded so far (tests / explain rendering).
  std::vector<Event> events() const;

  /// If the environment variable \p EnvVar is set and non-empty,
  /// \returns a sink writing to its value, else null. The benches use
  /// this (VAPOR_TRACE=trace.json ./bench/...).
  static TraceSink *fromEnv(const char *EnvVar);

  /// Internal state; Impl objects live for the process lifetime so a
  /// recorder racing uninstallation never touches freed memory.
  struct Impl;

private:
  Impl *I;
};

#else // !VAPOR_OBS_ENABLED — every primitive compiles to nothing.

inline bool enabled() { return false; }
inline bool setEnabled(bool) { return false; }
inline bool tracingActive() { return false; }

class Counter {
public:
  explicit Counter(const char *N) : Name(N) {}
  void add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  const char *name() const { return Name; }

private:
  const char *Name;
};

inline std::vector<std::pair<std::string, uint64_t>> counterSnapshot() {
  return {};
}
inline uint64_t counterValue(const std::string &) { return 0; }
inline void resetCounters() {}

class Span {
public:
  Span(const char *, std::string) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  bool live() const { return false; }
  template <typename T> void arg(const char *, const T &) {}
};

inline void event(const char *, std::string,
                  std::vector<std::pair<std::string, std::string>> = {}) {}

/// OFF-build sink: records nothing but still writes a valid (empty)
/// trace so tools behave uniformly under -DVAPOR_OBS=OFF.
class TraceSink {
public:
  explicit TraceSink(std::string Path, size_t = 0) : Path(std::move(Path)) {}
  ~TraceSink() { write(); }
  TraceSink(const TraceSink &) = delete;
  TraceSink &operator=(const TraceSink &) = delete;
  bool write();
  size_t eventCount() const { return 0; }
  uint64_t droppedCount() const { return 0; }
  std::vector<Event> events() const { return {}; }
  static TraceSink *fromEnv(const char *EnvVar);

private:
  std::string Path;
  bool Written = false;
};

#endif // VAPOR_OBS_ENABLED

} // namespace obs
} // namespace vapor

#endif // VAPOR_OBS_OBS_H
