//===- obs/Obs.cpp - Pipeline observability layer ---------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

using namespace vapor;
using namespace vapor::obs;

//===--- JSON helpers (shared by both build configurations) ----------------===//

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string obs::argStr(const std::string &V) {
  return "\"" + jsonEscape(V) + "\"";
}
std::string obs::argStr(const char *V) { return argStr(std::string(V)); }
std::string obs::argStr(uint64_t V) { return std::to_string(V); }
std::string obs::argStr(int64_t V) { return std::to_string(V); }
std::string obs::argStr(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}
std::string obs::argStr(bool V) { return V ? "true" : "false"; }

#if VAPOR_OBS_ENABLED

namespace {

/// ns since a process-wide steady epoch (first call wins).
uint64_t nowNs() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

std::atomic<bool> MasterSwitch{true};

//===--- Counter registry --------------------------------------------------===//

struct CounterRegistry {
  std::mutex Mu;
  /// Name -> slot. Slots are never freed: Counter objects hold raw
  /// pointers into this map for the process lifetime.
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>> Slots;
};

CounterRegistry &counters() {
  static CounterRegistry R;
  return R;
}

} // namespace

bool obs::enabled() { return MasterSwitch.load(std::memory_order_relaxed); }

bool obs::setEnabled(bool On) {
  return MasterSwitch.exchange(On, std::memory_order_relaxed);
}

Counter::Counter(const char *Name) : Name(Name) {
  CounterRegistry &R = counters();
  std::lock_guard<std::mutex> L(R.Mu);
  auto &S = R.Slots[Name];
  if (!S)
    S = std::make_unique<std::atomic<uint64_t>>(0);
  Slot = S.get();
}

std::vector<std::pair<std::string, uint64_t>> obs::counterSnapshot() {
  CounterRegistry &R = counters();
  std::lock_guard<std::mutex> L(R.Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(R.Slots.size());
  for (const auto &[Name, Slot] : R.Slots)
    Out.emplace_back(Name, Slot->load(std::memory_order_relaxed));
  return Out;
}

uint64_t obs::counterValue(const std::string &Name) {
  CounterRegistry &R = counters();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.Slots.find(Name);
  return It == R.Slots.end() ? 0
                             : It->second->load(std::memory_order_relaxed);
}

void obs::resetCounters() {
  CounterRegistry &R = counters();
  std::lock_guard<std::mutex> L(R.Mu);
  for (auto &[Name, Slot] : R.Slots)
    Slot->store(0, std::memory_order_relaxed);
}

//===--- TraceSink ---------------------------------------------------------===//

struct TraceSink::Impl {
  std::string Path;
  size_t MaxEvents;
  bool Installed = false;
  bool Written = false;

  mutable std::mutex Mu;
  std::vector<Event> Events;
  uint64_t Dropped = 0;
};

namespace {

/// The installed sink's state. Impl objects are intentionally kept alive
/// for the process lifetime (see sinkKeepAlive) so a racing recorder that
/// loaded the pointer just before uninstallation never touches freed
/// memory; the handful of sinks a process creates makes this free.
std::atomic<TraceSink::Impl *> ActiveSink{nullptr};

std::vector<std::unique_ptr<TraceSink::Impl>> &sinkKeepAlive() {
  static std::vector<std::unique_ptr<TraceSink::Impl>> V;
  return V;
}

std::mutex SinkLifecycleMu;

void pushEvent(Event E) {
  TraceSink::Impl *S = ActiveSink.load(std::memory_order_acquire);
  if (!S)
    return;
  std::lock_guard<std::mutex> L(S->Mu);
  if (S->Events.size() >= S->MaxEvents) {
    ++S->Dropped;
    return;
  }
  S->Events.push_back(std::move(E));
}

} // namespace

bool obs::tracingActive() {
  return ActiveSink.load(std::memory_order_relaxed) != nullptr && enabled();
}

TraceSink::TraceSink(std::string Path, size_t MaxEvents) {
  auto Owned = std::make_unique<Impl>();
  I = Owned.get();
  I->Path = std::move(Path);
  I->MaxEvents = MaxEvents;
  {
    std::lock_guard<std::mutex> L(SinkLifecycleMu);
    sinkKeepAlive().push_back(std::move(Owned));
    TraceSink::Impl *Expected = nullptr;
    // One sink at a time: a second concurrent sink stays inert (it
    // records nothing and writes an empty trace) rather than stealing
    // the stream mid-run.
    I->Installed = ActiveSink.compare_exchange_strong(
        Expected, I, std::memory_order_release, std::memory_order_relaxed);
  }
}

TraceSink::~TraceSink() {
  {
    std::lock_guard<std::mutex> L(SinkLifecycleMu);
    if (I->Installed) {
      TraceSink::Impl *Self = I;
      ActiveSink.compare_exchange_strong(Self, nullptr,
                                         std::memory_order_release,
                                         std::memory_order_relaxed);
      I->Installed = false;
    }
  }
  write();
  // I stays alive in sinkKeepAlive(); see the comment there.
}

size_t TraceSink::eventCount() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->Events.size();
}

uint64_t TraceSink::droppedCount() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->Dropped;
}

std::vector<Event> TraceSink::events() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->Events;
}

bool TraceSink::write() {
  std::lock_guard<std::mutex> L(I->Mu);
  if (I->Path.empty() || I->Written)
    return true;

  std::FILE *F = std::fopen(I->Path.c_str(), "w");
  if (!F)
    return false;

  auto writeArgs =
      [&](const std::vector<std::pair<std::string, std::string>> &Args) {
        std::fprintf(F, "\"args\": {");
        for (size_t A = 0; A < Args.size(); ++A)
          std::fprintf(F, "%s\"%s\": %s", A ? ", " : "",
                       jsonEscape(Args[A].first).c_str(),
                       Args[A].second.c_str());
        std::fprintf(F, "}");
      };

  std::fprintf(F, "{\n\"traceEvents\": [\n");
  bool First = true;
  auto emitPrefix = [&](const Event &E, const char *Ph) {
    std::fprintf(F,
                 "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
                 "\"pid\": 1, \"tid\": %u, \"ts\": %.3f",
                 First ? "" : ",\n", jsonEscape(E.Name).c_str(),
                 jsonEscape(E.Cat).c_str(), Ph, E.Tid,
                 static_cast<double>(E.TsNs) / 1000.0);
    First = false;
  };
  for (const Event &E : I->Events) {
    switch (E.Ph) {
    case Event::Phase::Complete:
      emitPrefix(E, "X");
      std::fprintf(F, ", \"dur\": %.3f, ",
                   static_cast<double>(E.DurNs) / 1000.0);
      writeArgs(E.Args);
      break;
    case Event::Phase::Instant:
      emitPrefix(E, "i");
      std::fprintf(F, ", \"s\": \"t\", ");
      writeArgs(E.Args);
      break;
    case Event::Phase::Counter:
      emitPrefix(E, "C");
      std::fprintf(F, ", ");
      writeArgs(E.Args);
      break;
    }
    std::fprintf(F, "}");
  }
  // Final counter samples: one "C" event per registered counter, so the
  // trace carries the aggregate picture next to the spans.
  uint64_t Ts = nowNs();
  for (const auto &[Name, Value] : counterSnapshot()) {
    std::fprintf(F,
                 "%s{\"name\": \"%s\", \"cat\": \"counter\", \"ph\": \"C\", "
                 "\"pid\": 1, \"tid\": 0, \"ts\": %.3f, \"args\": "
                 "{\"value\": %llu}}",
                 First ? "" : ",\n", jsonEscape(Name).c_str(),
                 static_cast<double>(Ts) / 1000.0,
                 static_cast<unsigned long long>(Value));
    First = false;
  }
  std::fprintf(F,
               "\n],\n\"displayTimeUnit\": \"ms\",\n"
               "\"otherData\": {\"tool\": \"vapor-obs\", "
               "\"dropped\": %llu}\n}\n",
               static_cast<unsigned long long>(I->Dropped));
  std::fclose(F);
  I->Written = true;
  return true;
}

TraceSink *TraceSink::fromEnv(const char *EnvVar) {
  const char *Path = std::getenv(EnvVar);
  if (!Path || !*Path)
    return nullptr;
  return new TraceSink(Path);
}

//===--- Span / instant events ---------------------------------------------===//

Span::Span(const char *Cat, std::string Name)
    : Live(tracingActive()), Cat(Cat), Name(std::move(Name)) {
  if (Live)
    StartNs = nowNs();
}

Span::~Span() {
  if (!Live)
    return;
  Event E;
  E.Ph = Event::Phase::Complete;
  E.Cat = Cat;
  E.Name = std::move(Name);
  E.Tid = support::currentWorkerId();
  E.TsNs = StartNs;
  E.DurNs = nowNs() - StartNs;
  E.Args = std::move(Args);
  pushEvent(std::move(E));
}

void obs::event(const char *Cat, std::string Name,
                std::vector<std::pair<std::string, std::string>> Args) {
  if (!tracingActive())
    return;
  Event E;
  E.Ph = Event::Phase::Instant;
  E.Cat = Cat;
  E.Name = std::move(Name);
  E.Tid = support::currentWorkerId();
  E.TsNs = nowNs();
  E.Args = std::move(Args);
  pushEvent(std::move(E));
}

#else // !VAPOR_OBS_ENABLED

bool TraceSink::write() {
  if (Path.empty() || Written)
    return true;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F, "{\n\"traceEvents\": [],\n\"displayTimeUnit\": \"ms\",\n"
                  "\"otherData\": {\"tool\": \"vapor-obs\", \"obs\": "
                  "\"compiled-out\", \"dropped\": 0}\n}\n");
  std::fclose(F);
  Written = true;
  return true;
}

TraceSink *TraceSink::fromEnv(const char *EnvVar) {
  const char *Path = std::getenv(EnvVar);
  if (!Path || !*Path)
    return nullptr;
  return new TraceSink(Path);
}

#endif // VAPOR_OBS_ENABLED
