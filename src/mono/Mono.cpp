//===- mono/Mono.cpp - Monolithic offline baseline --------------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "mono/Mono.h"

using namespace vapor;
using namespace vapor::mono;

ir::Function mono::forceArrayAlignment(
    const ir::Function &F, const std::set<std::string> &External) {
  ir::Function G = F;
  for (ir::ArrayInfo &A : G.Arrays)
    if (!External.count(A.Name) && A.BaseAlign < ForcedAlign)
      A.BaseAlign = ForcedAlign;
  return G;
}
