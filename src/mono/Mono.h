//===- mono/Mono.h - Monolithic offline baseline ---------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline every figure normalizes against: classic monolithic,
/// fixed-target compilation. It runs the *same* vectorizer and code
/// generator as the split flow, but with the privileges a monolithic offline
/// compiler has and a JIT does not (paper Sec. III-B(c)):
///
///  - it controls data layout, so it forces the alignment of every array
///    it owns ("GCC indeed forces the alignment of global and local
///    arrays") — external arrays stay unknown;
///  - it knows the target, so guards and machine parameters fold at
///    compile time and a single loop version survives.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_MONO_MONO_H
#define VAPOR_MONO_MONO_H

#include "ir/Function.h"

#include <set>
#include <string>

namespace vapor {
namespace mono {

/// Alignment a monolithic compiler forces on arrays it lays out.
constexpr uint32_t ForcedAlign = 32;

/// \returns a copy of \p F whose arrays are promoted to ForcedAlign,
/// except those named in \p External (caller-owned buffers the compiler
/// cannot re-align).
ir::Function forceArrayAlignment(const ir::Function &F,
                                 const std::set<std::string> &External);

} // namespace mono
} // namespace vapor

#endif // VAPOR_MONO_MONO_H
