//===- analysis/Affine.cpp - Affine scalar evolution -----------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Affine.h"

#include "support/Support.h"

#include <sstream>

using namespace vapor;
using namespace vapor::analysis;
using namespace vapor::ir;

AffineExpr AffineExpr::dropTerm(ValueId V) const {
  AffineExpr R = *this;
  R.Terms.erase(V);
  return R;
}

AffineExpr AffineExpr::add(const AffineExpr &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  AffineExpr R = *this;
  R.Const += O.Const;
  for (const auto &[V, C] : O.Terms) {
    int64_t &Slot = R.Terms[V];
    Slot += C;
    if (Slot == 0)
      R.Terms.erase(V);
  }
  return R;
}

AffineExpr AffineExpr::negate() const { return mulConst(-1); }

AffineExpr AffineExpr::sub(const AffineExpr &O) const {
  return add(O.negate());
}

AffineExpr AffineExpr::mulConst(int64_t C) const {
  if (!Valid)
    return invalid();
  if (C == 0)
    return constant(0);
  AffineExpr R = *this;
  R.Const *= C;
  for (auto &[V, Coeff] : R.Terms)
    Coeff *= C;
  return R;
}

std::string AffineExpr::str() const {
  if (!Valid)
    return "<invalid>";
  std::ostringstream OS;
  OS << Const;
  for (const auto &[V, C] : Terms)
    OS << (C >= 0 ? " + " : " - ") << (C >= 0 ? C : -C) << "*%" << V;
  return OS.str();
}

const AffineExpr &AffineAnalysis::of(ValueId V) {
  auto It = Cache.find(V);
  if (It != Cache.end())
    return It->second;
  // Insert a placeholder symbol first so (malformed) cycles terminate.
  Cache.emplace(V, AffineExpr::term(V));
  AffineExpr E = compute(V);
  return Cache[V] = E;
}

AffineExpr AffineAnalysis::compute(ValueId V) {
  const ValueInfo &VI = F.Values[V];
  // Induction variables, params, carried variables: their own term.
  if (VI.Def != ValueDef::Instr)
    return AffineExpr::term(V);
  if (VI.Ty != Type::scalar(ScalarKind::I64))
    return AffineExpr::term(V);

  const Instr &I = F.instrOf(V);
  switch (I.Op) {
  case Opcode::ConstInt:
    return AffineExpr::constant(I.IntImm);
  case Opcode::Add:
    return of(I.Ops[0]).add(of(I.Ops[1]));
  case Opcode::Sub:
    return of(I.Ops[0]).sub(of(I.Ops[1]));
  case Opcode::Neg:
    return of(I.Ops[0]).negate();
  case Opcode::Mul: {
    AffineExpr A = of(I.Ops[0]);
    AffineExpr B = of(I.Ops[1]);
    if (A.isConstant())
      return B.mulConst(A.Const);
    if (B.isConstant())
      return A.mulConst(B.Const);
    return AffineExpr::term(V);
  }
  case Opcode::Shl: {
    AffineExpr A = of(I.Ops[0]);
    AffineExpr B = of(I.Ops[1]);
    if (B.isConstant() && B.Const >= 0 && B.Const < 63)
      return A.mulConst(int64_t(1) << B.Const);
    return AffineExpr::term(V);
  }
  default:
    // Division, remainder, loads, idioms (get_VF, loop_bound, ...):
    // opaque symbols. Subtraction still cancels equal symbols.
    return AffineExpr::term(V);
  }
}
