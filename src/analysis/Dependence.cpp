//===- analysis/Dependence.cpp - Data-dependence testing -------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"

using namespace vapor;
using namespace vapor::analysis;
using namespace vapor::ir;

DepPair analysis::classifyPair(const Function &F, AffineAnalysis &AA,
                               const LoopNestInfo &Nest, uint32_t LoopIdx,
                               const MemAccess &A, const MemAccess &B) {
  DepPair P;
  P.A = A;
  P.B = B;

  if (A.Array != B.Array || (!A.IsWrite && !B.IsWrite)) {
    P.Kind = DepKind::Independent;
    return P;
  }

  ValueId Iv = F.Loops[LoopIdx].IndVar;
  const AffineExpr &FA = AA.of(A.Index);
  const AffineExpr &FB = AA.of(B.Index);

  // Every non-iv term must be invariant with respect to the candidate
  // loop; a loop-variant symbol (e.g. another value recomputed per
  // iteration) makes the distance unanalyzable.
  for (const AffineExpr *E : {&FA, &FB}) {
    for (const auto &[V, C] : E->Terms) {
      (void)C;
      if (V != Iv && Nest.definesValue(LoopIdx, V)) {
        P.Kind = DepKind::Unknown;
        return P;
      }
    }
  }

  int64_t CoeffA = FA.coeff(Iv);
  int64_t CoeffB = FB.coeff(Iv);
  if (CoeffA != CoeffB) {
    // General SIV with distinct coefficients: out of scope, conservative.
    P.Kind = DepKind::Unknown;
    return P;
  }

  AffineExpr Diff = FA.dropTerm(Iv).sub(FB.dropTerm(Iv));
  if (!Diff.Terms.empty()) {
    // Symbolic difference (e.g. a[i] vs a[i+n]): unknown distance.
    P.Kind = DepKind::Unknown;
    return P;
  }

  int64_t C = Diff.Const; // fA(i) - fB(i) == C for all i.
  if (CoeffA == 0) {
    // ZIV: both indexes invariant in the loop.
    P.Kind = C == 0 ? DepKind::Carried : DepKind::Independent;
    if (C == 0 && &A != &B)
      P.Distance = 0; // Same location touched by every iteration.
    if (C == 0)
      P.Kind = DepKind::Carried; // Every-iteration conflict.
    return P;
  }

  // fA(i1) == fB(i2)  <=>  Coeff*(i1 - i2) == -C.
  if (C % CoeffA != 0) {
    P.Kind = DepKind::Independent;
    return P;
  }
  int64_t D = -C / CoeffA; // i2 = i1 + D.
  if (D == 0) {
    P.Kind = DepKind::SameIteration;
    return P;
  }
  P.Kind = DepKind::Carried;
  P.Distance = D;
  return P;
}

DependenceResult analysis::analyzeDependences(const Function &F,
                                              AffineAnalysis &AA,
                                              const LoopNestInfo &Nest,
                                              uint32_t LoopIdx) {
  DependenceResult R;
  std::vector<MemAccess> Accs = collectAccesses(F, F.Loops[LoopIdx].Body);
  for (size_t I = 0; I < Accs.size(); ++I) {
    for (size_t J = I; J < Accs.size(); ++J) {
      // An access paired with itself still matters: a store revisiting the
      // same address across iterations is an output dependence.
      if (I == J && !Accs[I].IsWrite)
        continue;
      DepPair P = classifyPair(F, AA, Nest, LoopIdx, Accs[I], Accs[J]);
      if (I == J && P.Kind == DepKind::SameIteration) {
        // The access versus itself in the same iteration is trivially the
        // same operation, not a conflict.
        P.Kind = DepKind::Independent;
      }
      R.Pairs.push_back(P);
      if (P.Kind == DepKind::Carried || P.Kind == DepKind::Unknown) {
        R.Vectorizable = false;
        R.Blockers.push_back(P);
      }
    }
  }
  return R;
}
