//===- analysis/Alignment.cpp - Access alignment analysis ------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Alignment.h"

using namespace vapor;
using namespace vapor::analysis;
using namespace vapor::ir;

AccessShape analysis::accessShape(const Function &F, AffineAnalysis &AA,
                                  const LoopNestInfo &Nest, uint32_t LoopIdx,
                                  ValueId Index) {
  (void)F;
  AccessShape S;
  ValueId Iv = F.Loops[LoopIdx].IndVar;
  const AffineExpr &E = AA.of(Index);
  S.IvCoeff = E.coeff(Iv);
  AffineExpr Off = E.dropTerm(Iv);
  S.OffsetConst = Off.Terms.empty();
  S.OffsetElems = Off.Const;
  S.OffsetTerms = Off.Terms;
  S.OffsetInvariant = true;
  for (const auto &[V, C] : Off.Terms) {
    (void)C;
    if (Nest.definesValue(LoopIdx, V))
      S.OffsetInvariant = false;
  }
  return S;
}

AlignmentInfo analysis::alignmentOf(const Function &F, uint32_t Array,
                                    const AccessShape &Shape) {
  assert(Shape.IvCoeff == 1 && "alignment hints apply to contiguous access");
  const ArrayInfo &A = F.Arrays[Array];
  unsigned ES = scalarSize(A.Elem);

  AlignmentInfo Info;
  int64_t ModElems = AlignModBytes / ES;
  if (!Shape.offsetKnownMod(ModElems)) {
    // Variable residue: nothing can be said (mod = 0, the nulled hint).
    Info.Hint.Mis = -1;
    Info.Hint.Mod = 0;
    return Info;
  }

  int64_t MisBytes = ((Shape.OffsetElems * ES) % AlignModBytes +
                      AlignModBytes) %
                     AlignModBytes;
  if (A.BaseAlign >= static_cast<uint32_t>(AlignModBytes)) {
    Info.Hint.Mis = static_cast<int32_t>(MisBytes);
    Info.Hint.Mod = AlignModBytes;
    Info.Hint.IfJitAligns = false;
    return Info;
  }

  // Base alignment unknown offline: the hint is valid only if the online
  // compiler can force the base to vector alignment (paper Sec. III-B(c),
  // the "alternative approach" extra hint).
  Info.Hint.Mis = static_cast<int32_t>(MisBytes);
  Info.Hint.Mod = AlignModBytes;
  Info.Hint.IfJitAligns = true;
  return Info;
}
