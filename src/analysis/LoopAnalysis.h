//===- analysis/LoopAnalysis.h - Loop nest utilities -----------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural facts about the loop forest of a function: parent/child
/// relations, the set of values defined inside each loop subtree, memory
/// access collection, and use counting — the shared substrate of the
/// dependence, reduction, and alignment analyses.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_ANALYSIS_LOOPANALYSIS_H
#define VAPOR_ANALYSIS_LOOPANALYSIS_H

#include "ir/Function.h"

#include <set>
#include <vector>

namespace vapor {
namespace analysis {

/// One memory access (scalar load/store) found in a region subtree.
struct MemAccess {
  uint32_t InstrIdx = 0;
  uint32_t Array = 0;
  bool IsWrite = false;
  ir::ValueId Index = ir::NoValue;
};

class LoopNestInfo {
public:
  explicit LoopNestInfo(const ir::Function &Fn);

  /// Parent loop index of loop \p L, or -1 at top level.
  int parent(uint32_t L) const { return Parents[L]; }

  /// Loops directly nested inside \p L.
  const std::vector<uint32_t> &children(uint32_t L) const {
    return Children[L];
  }

  /// Loops at the top level of the function body.
  const std::vector<uint32_t> &topLevelLoops() const { return TopLevel; }

  bool isInnermost(uint32_t L) const { return Children[L].empty(); }

  /// Nesting depth (top level = 0).
  unsigned depth(uint32_t L) const { return Depths[L]; }

  /// True if \p V is defined inside the subtree of loop \p L: instruction
  /// results in the body, induction variables and carried phis of \p L and
  /// of nested loops, and results of loops strictly inside \p L. The
  /// results of \p L itself are *not* inside (they materialize at exit).
  bool definesValue(uint32_t L, ir::ValueId V) const {
    return DefinedIn[L].count(V) != 0;
  }

private:
  void walk(const ir::Region &R, int ParentLoop);

  const ir::Function &F;
  std::vector<int> Parents;
  std::vector<unsigned> Depths;
  std::vector<std::vector<uint32_t>> Children;
  std::vector<uint32_t> TopLevel;
  std::vector<std::set<ir::ValueId>> DefinedIn;
};

/// Collects every scalar load/store in \p R (recursing into nested loops
/// and both if arms).
std::vector<MemAccess> collectAccesses(const ir::Function &F,
                                       const ir::Region &R);

/// Number of uses of \p V as an operand anywhere in region \p R
/// (instruction operands, nested loop bounds and carried inits/nexts,
/// if conditions).
unsigned countUses(const ir::Function &F, const ir::Region &R, ir::ValueId V);

/// True if the value \p Root transitively depends on \p Target through
/// instruction operands (stops at params / loop phis other than Target).
bool dependsOn(const ir::Function &F, ir::ValueId Root, ir::ValueId Target);

} // namespace analysis
} // namespace vapor

#endif // VAPOR_ANALYSIS_LOOPANALYSIS_H
