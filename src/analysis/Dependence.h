//===- analysis/Dependence.h - Data-dependence testing ---------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence analysis with distance abstraction (paper Sec. II(a)): for a
/// candidate loop, every pair of accesses to the same array (at least one
/// a write) is classified as independent, same-iteration, loop-carried
/// with a constant distance, or unknown.
///
/// The offline compiler follows the paper's conservative policy: a loop
/// with any carried or unknown dependence is not vectorized, because the
/// vectorization factor is not known offline (Sec. III-B(b)). The distance
/// is still reported, so the dependence-hint extension described there
/// could be layered on without reworking the analysis.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_ANALYSIS_DEPENDENCE_H
#define VAPOR_ANALYSIS_DEPENDENCE_H

#include "analysis/Affine.h"
#include "analysis/LoopAnalysis.h"

#include <string>
#include <vector>

namespace vapor {
namespace analysis {

enum class DepKind : uint8_t {
  Independent,   ///< Never the same address.
  SameIteration, ///< Same address only within one iteration (distance 0).
  Carried,       ///< Constant nonzero iteration distance.
  Unknown,       ///< Could not be analyzed.
};

struct DepPair {
  MemAccess A;
  MemAccess B;
  DepKind Kind = DepKind::Unknown;
  int64_t Distance = 0; ///< Meaningful for Carried.
};

struct DependenceResult {
  /// True iff every pair is Independent or SameIteration.
  bool Vectorizable = true;
  /// Pairs that block vectorization (Carried/Unknown with a write).
  std::vector<DepPair> Blockers;
  /// All classified pairs (for diagnostics and tests).
  std::vector<DepPair> Pairs;
};

/// Classifies one pair of accesses with respect to the induction variable
/// \p Iv of candidate loop \p LoopIdx.
DepPair classifyPair(const ir::Function &F, AffineAnalysis &AA,
                     const LoopNestInfo &Nest, uint32_t LoopIdx,
                     const MemAccess &A, const MemAccess &B);

/// Tests every access pair in the body of loop \p LoopIdx.
DependenceResult analyzeDependences(const ir::Function &F, AffineAnalysis &AA,
                                    const LoopNestInfo &Nest,
                                    uint32_t LoopIdx);

} // namespace analysis
} // namespace vapor

#endif // VAPOR_ANALYSIS_DEPENDENCE_H
