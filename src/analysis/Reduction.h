//===- analysis/Reduction.h - Reduction and idiom matching -----*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recognition of reduction cycles on loop-carried variables (paper
/// Sec. II(a)) and of the computational idioms the split layer can express
/// specially: widening multiply-accumulate (dot_product), widening
/// multiplication, and the abs-difference pattern of SAD.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_ANALYSIS_REDUCTION_H
#define VAPOR_ANALYSIS_REDUCTION_H

#include "ir/Function.h"

#include <optional>

namespace vapor {
namespace analysis {

enum class ReductionKind : uint8_t { Plus, Min, Max };

struct ReductionInfo {
  ReductionKind Kind = ReductionKind::Plus;
  uint32_t CarriedIdx = 0;
  /// The update instruction (its result is the carried Next value).
  uint32_t UpdateInstr = 0;
  /// The per-iteration contribution X in  phi' = phi op X.
  ir::ValueId Contribution = ir::NoValue;
};

/// Matches carried variable \p CarriedIdx of \p LoopIdx as a reduction:
/// its next value must be  op(phi, X)  with op in {add, min, max}, X must
/// not depend on phi, and phi must have no other use in the loop body.
/// Floating-point additions are accepted (reassociation is permitted, as
/// in the paper's use of GCC's vectorizer).
std::optional<ReductionInfo> matchReduction(const ir::Function &F,
                                            uint32_t LoopIdx,
                                            uint32_t CarriedIdx);

/// A widening multiplication: Mul(Convert(a), Convert(b)) where both
/// conversions promote from the same kind K to widen(K).
struct WideningMul {
  ir::ValueId NarrowA = ir::NoValue;
  ir::ValueId NarrowB = ir::NoValue;
  ir::ScalarKind NarrowKind = ir::ScalarKind::None;
};

/// Matches \p V as a widening multiplication (the dot_product /
/// widen_mult enabling pattern).
std::optional<WideningMul> matchWideningMul(const ir::Function &F,
                                            ir::ValueId V);

} // namespace analysis
} // namespace vapor

#endif // VAPOR_ANALYSIS_REDUCTION_H
