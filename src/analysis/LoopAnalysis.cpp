//===- analysis/LoopAnalysis.cpp - Loop nest utilities ---------------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopAnalysis.h"

#include "support/Support.h"

using namespace vapor;
using namespace vapor::analysis;
using namespace vapor::ir;

LoopNestInfo::LoopNestInfo(const Function &Fn) : F(Fn) {
  size_t N = F.Loops.size();
  Parents.assign(N, -1);
  Depths.assign(N, 0);
  Children.assign(N, {});
  DefinedIn.assign(N, {});
  walk(F.Body, -1);
}

void LoopNestInfo::walk(const Region &R, int ParentLoop) {
  auto noteDef = [&](ValueId V) {
    // A definition belongs to the enclosing loop and every ancestor.
    for (int L = ParentLoop; L != -1; L = Parents[L])
      DefinedIn[L].insert(V);
  };

  for (const NodeRef &N : R.Nodes) {
    switch (N.Kind) {
    case NodeKind::Instr: {
      const Instr &I = F.Instrs[N.Index];
      if (I.hasResult())
        noteDef(I.Result);
      break;
    }
    case NodeKind::Loop: {
      uint32_t L = N.Index;
      const LoopStmt &Loop = F.Loops[L];
      Parents[L] = ParentLoop;
      if (ParentLoop == -1) {
        TopLevel.push_back(L);
        Depths[L] = 0;
      } else {
        Children[ParentLoop].push_back(L);
        Depths[L] = Depths[ParentLoop] + 1;
      }
      // The loop's exit results belong to the *parent* context; its
      // induction variable and phis live inside (added below).
      for (const auto &C : Loop.Carried)
        noteDef(C.Result);
      walk(Loop.Body, static_cast<int>(L));
      // After walking the body, DefinedIn[L] has the body definitions;
      // add the loop-local values (iv, phis) to L and its ancestors.
      DefinedIn[L].insert(Loop.IndVar);
      for (const auto &C : Loop.Carried)
        DefinedIn[L].insert(C.Phi);
      for (int A = ParentLoop; A != -1; A = Parents[A]) {
        DefinedIn[A].insert(Loop.IndVar);
        for (const auto &C : Loop.Carried)
          DefinedIn[A].insert(C.Phi);
      }
      break;
    }
    case NodeKind::If:
      walk(F.Ifs[N.Index].Then, ParentLoop);
      walk(F.Ifs[N.Index].Else, ParentLoop);
      break;
    }
  }
}

std::vector<MemAccess> analysis::collectAccesses(const Function &F,
                                                 const Region &R) {
  std::vector<MemAccess> Out;
  for (const NodeRef &N : R.Nodes) {
    switch (N.Kind) {
    case NodeKind::Instr: {
      const Instr &I = F.Instrs[N.Index];
      if (I.Op == Opcode::Load)
        Out.push_back({N.Index, I.Array, false, I.Ops[0]});
      else if (I.Op == Opcode::Store)
        Out.push_back({N.Index, I.Array, true, I.Ops[0]});
      break;
    }
    case NodeKind::Loop: {
      auto Sub = collectAccesses(F, F.Loops[N.Index].Body);
      Out.insert(Out.end(), Sub.begin(), Sub.end());
      break;
    }
    case NodeKind::If: {
      auto T = collectAccesses(F, F.Ifs[N.Index].Then);
      auto E = collectAccesses(F, F.Ifs[N.Index].Else);
      Out.insert(Out.end(), T.begin(), T.end());
      Out.insert(Out.end(), E.begin(), E.end());
      break;
    }
    }
  }
  return Out;
}

unsigned analysis::countUses(const Function &F, const Region &R, ValueId V) {
  unsigned Count = 0;
  auto Tally = [&](ValueId U) {
    if (U == V)
      ++Count;
  };
  for (const NodeRef &N : R.Nodes) {
    switch (N.Kind) {
    case NodeKind::Instr:
      for (ValueId Op : F.Instrs[N.Index].Ops)
        Tally(Op);
      break;
    case NodeKind::Loop: {
      const LoopStmt &L = F.Loops[N.Index];
      Tally(L.Lower);
      Tally(L.Upper);
      Tally(L.Step);
      for (const auto &C : L.Carried) {
        Tally(C.Init);
        Tally(C.Next);
      }
      Count += countUses(F, L.Body, V);
      break;
    }
    case NodeKind::If:
      Tally(F.Ifs[N.Index].Cond);
      Count += countUses(F, F.Ifs[N.Index].Then, V);
      Count += countUses(F, F.Ifs[N.Index].Else, V);
      break;
    }
  }
  return Count;
}

namespace {

bool dependsOnImpl(const Function &F, ValueId Root, ValueId Target,
                   std::set<ValueId> &Visited) {
  if (Root == Target)
    return true;
  if (!Visited.insert(Root).second)
    return false;
  const ValueInfo &VI = F.Values[Root];
  if (VI.Def != ValueDef::Instr)
    return false;
  for (ValueId Op : F.Instrs[VI.A].Ops)
    if (dependsOnImpl(F, Op, Target, Visited))
      return true;
  return false;
}

} // namespace

bool analysis::dependsOn(const Function &F, ValueId Root, ValueId Target) {
  std::set<ValueId> Visited;
  return dependsOnImpl(F, Root, Target, Visited);
}
