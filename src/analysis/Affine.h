//===- analysis/Affine.h - Affine scalar evolution -------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight scalar evolution: expresses integer IR values as affine
/// forms  c0 + sum(ci * term_i)  where terms are loop induction variables,
/// parameters, or opaque symbols (any value the analysis cannot see
/// through becomes its own symbol). Symbolic terms cancel under
/// subtraction, which is what the dependence and alignment analyses need:
/// a[i+2] and a[i] differ by the constant 2 even when the surrounding
/// expressions are built from unknown parameters.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_ANALYSIS_AFFINE_H
#define VAPOR_ANALYSIS_AFFINE_H

#include "ir/Function.h"

#include <map>
#include <optional>
#include <string>

namespace vapor {
namespace analysis {

/// An affine form over value-id terms. Invalid means "not affine".
struct AffineExpr {
  bool Valid = false;
  int64_t Const = 0;
  /// Coefficient per term value (induction variables, params, opaque
  /// symbols). Zero coefficients are never stored.
  std::map<ir::ValueId, int64_t> Terms;

  static AffineExpr invalid() { return AffineExpr(); }
  static AffineExpr constant(int64_t C) {
    AffineExpr E;
    E.Valid = true;
    E.Const = C;
    return E;
  }
  static AffineExpr term(ir::ValueId V, int64_t Coeff = 1) {
    AffineExpr E;
    E.Valid = true;
    if (Coeff)
      E.Terms[V] = Coeff;
    return E;
  }

  bool isConstant() const { return Valid && Terms.empty(); }

  /// Coefficient of \p V (0 if absent).
  int64_t coeff(ir::ValueId V) const {
    auto It = Terms.find(V);
    return It == Terms.end() ? 0 : It->second;
  }

  /// This expression with the \p V term removed.
  AffineExpr dropTerm(ir::ValueId V) const;

  AffineExpr add(const AffineExpr &O) const;
  AffineExpr sub(const AffineExpr &O) const;
  AffineExpr negate() const;
  AffineExpr mulConst(int64_t C) const;

  std::string str() const;
  bool operator==(const AffineExpr &O) const {
    return Valid == O.Valid && Const == O.Const && Terms == O.Terms;
  }
};

/// Memoizing affine analysis over one function. Only I64-typed scalar
/// values get non-trivial forms (index arithmetic is all I64 by IR rule);
/// everything else becomes an opaque symbol.
class AffineAnalysis {
public:
  explicit AffineAnalysis(const ir::Function &Fn) : F(Fn) {}

  /// \returns the affine form of \p V. Always Valid: unanalyzable values
  /// are returned as single-symbol forms, so callers detect "unknown" by
  /// the presence of symbol terms they cannot interpret, not by Valid.
  const AffineExpr &of(ir::ValueId V);

private:
  AffineExpr compute(ir::ValueId V);

  const ir::Function &F;
  std::map<ir::ValueId, AffineExpr> Cache;
};

} // namespace analysis
} // namespace vapor

#endif // VAPOR_ANALYSIS_AFFINE_H
