//===- analysis/Reduction.cpp - Reduction and idiom matching ---------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "analysis/Reduction.h"

#include "analysis/LoopAnalysis.h"

using namespace vapor;
using namespace vapor::analysis;
using namespace vapor::ir;

std::optional<ReductionInfo> analysis::matchReduction(const Function &F,
                                                      uint32_t LoopIdx,
                                                      uint32_t CarriedIdx) {
  const LoopStmt &L = F.Loops[LoopIdx];
  const LoopStmt::CarriedVar &C = L.Carried[CarriedIdx];

  const ValueInfo &NextInfo = F.Values[C.Next];
  if (NextInfo.Def != ValueDef::Instr)
    return std::nullopt;
  const Instr &Update = F.Instrs[NextInfo.A];

  ReductionKind Kind;
  switch (Update.Op) {
  case Opcode::Add:
    Kind = ReductionKind::Plus;
    break;
  case Opcode::Min:
    Kind = ReductionKind::Min;
    break;
  case Opcode::Max:
    Kind = ReductionKind::Max;
    break;
  default:
    return std::nullopt;
  }

  ValueId Contribution;
  if (Update.Ops[0] == C.Phi)
    Contribution = Update.Ops[1];
  else if (Update.Ops[1] == C.Phi)
    Contribution = Update.Ops[0];
  else
    return std::nullopt;

  // The contribution must not feed from the accumulator, and the
  // accumulator must have no use other than the update itself; otherwise
  // partial sums in vector lanes would be observable.
  if (dependsOn(F, Contribution, C.Phi))
    return std::nullopt;
  if (countUses(F, L.Body, C.Phi) != 1)
    return std::nullopt;

  ReductionInfo R;
  R.Kind = Kind;
  R.CarriedIdx = CarriedIdx;
  R.UpdateInstr = NextInfo.A;
  R.Contribution = Contribution;
  return R;
}

std::optional<WideningMul> analysis::matchWideningMul(const Function &F,
                                                      ValueId V) {
  const ValueInfo &VI = F.Values[V];
  if (VI.Def != ValueDef::Instr)
    return std::nullopt;
  const Instr &Mul = F.Instrs[VI.A];
  if (Mul.Op != Opcode::Mul)
    return std::nullopt;

  auto StripWiden = [&](ValueId Op) -> std::optional<ValueId> {
    const ValueInfo &OI = F.Values[Op];
    if (OI.Def != ValueDef::Instr)
      return std::nullopt;
    const Instr &Cvt = F.Instrs[OI.A];
    if (Cvt.Op != Opcode::Convert)
      return std::nullopt;
    ScalarKind Src = F.typeOf(Cvt.Ops[0]).Elem;
    if (widenKind(Src) != Cvt.Ty.Elem)
      return std::nullopt;
    return Cvt.Ops[0];
  };

  auto A = StripWiden(Mul.Ops[0]);
  auto B = StripWiden(Mul.Ops[1]);
  if (!A || !B)
    return std::nullopt;
  ScalarKind KA = F.typeOf(*A).Elem;
  ScalarKind KB = F.typeOf(*B).Elem;
  if (KA != KB)
    return std::nullopt;

  WideningMul W;
  W.NarrowA = *A;
  W.NarrowB = *B;
  W.NarrowKind = KA;
  return W;
}
