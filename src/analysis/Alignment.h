//===- analysis/Alignment.h - Access alignment analysis --------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the paper's misalignment hints (Sec. III-B(c)): for each
/// contiguous access in a candidate loop, the misalignment of its first
/// address relative to a Mod-byte boundary (Mod = 32, the largest SIMD
/// width considered). Three outcomes:
///
///  - base alignment >= Mod and constant offset: mis known outright;
///  - base alignment unknown but offset constant: mis known *conditional
///    on the online compiler aligning array bases* (the IfJitAligns hint);
///  - otherwise: unknown (mod = 0 — the nulled hint of fallback versions).
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_ANALYSIS_ALIGNMENT_H
#define VAPOR_ANALYSIS_ALIGNMENT_H

#include "analysis/Affine.h"
#include "analysis/LoopAnalysis.h"

namespace vapor {
namespace analysis {

/// The paper's reference modulo: 32 bytes, the largest SIMD width of any
/// target in the study (AVX).
constexpr int32_t AlignModBytes = 32;

struct AccessShape {
  /// Coefficient of the candidate loop's induction variable in the index
  /// (1 = contiguous; 0 = invariant; k>1 = strided by k).
  int64_t IvCoeff = 0;
  /// True when the index minus IvCoeff*iv is a compile-time constant.
  bool OffsetConst = false;
  int64_t OffsetElems = 0;
  /// True when the non-iv part contains only terms invariant in the loop.
  bool OffsetInvariant = false;
  /// Symbolic terms of the offset (value -> coefficient). A term whose
  /// coefficient is a multiple of the alignment modulus contributes
  /// nothing to misalignment (a row stride of 16 f32 elements is 64
  /// bytes: every row base is 32-byte congruent).
  std::map<ir::ValueId, int64_t> OffsetTerms;

  /// True when the offset is congruent to OffsetElems modulo
  /// \p ModElems for every execution (all symbolic coefficients divide).
  bool offsetKnownMod(int64_t ModElems) const {
    if (OffsetConst)
      return true;
    for (const auto &[V, C] : OffsetTerms) {
      (void)V;
      if (C % ModElems != 0)
        return false;
    }
    return true;
  }
};

/// Shape of \p Index relative to loop \p LoopIdx.
AccessShape accessShape(const ir::Function &F, AffineAnalysis &AA,
                        const LoopNestInfo &Nest, uint32_t LoopIdx,
                        ir::ValueId Index);

struct AlignmentInfo {
  ir::AlignHint Hint; ///< mis/mod/IfJitAligns as encoded into the idioms.
};

/// Misalignment hint for a contiguous access of shape \p Shape to
/// \p Array. \p Shape.IvCoeff must be 1.
AlignmentInfo alignmentOf(const ir::Function &F, uint32_t Array,
                          const AccessShape &Shape);

} // namespace analysis
} // namespace vapor

#endif // VAPOR_ANALYSIS_ALIGNMENT_H
