//===- analysis/Certificate.h - Proof-carrying safety certificates -*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-checkable safety certificates: the verifier (src/verify) proves
/// per-access alignment and bounds facts while discharging its proof
/// obligations, and instead of discarding the proofs it packages them as a
/// per-(function, target) SafetyCertificate. Online consumers (the VM
/// pre-decoder and the native JIT) may elide the per-access align/bounds
/// checks of certificate-covered accesses — but only after the certificate
/// survives the *independent checker* in this file, which replays every
/// fact directly against the bytecode with zero trust in the producer.
///
/// Trust boundaries:
///  - Producer (verify): untrusted for elision. A corrupted or stale
///    certificate must never remove a check.
///  - Checker (this file): the sound core. checkCertificate() validates
///    the structural binding (content hash, access identity, claimed
///    shapes); checkAlignFact() re-derives each congruence claim with its
///    own, simpler mod-W residue evaluator; BoundsEvaluator re-derives
///    index ranges by interval arithmetic. Anything it cannot reproduce is
///    Rejected and the access keeps its checks.
///  - Consumer (jit::buildElisionPlan): evaluates the residual *runtime*
///    preconditions (concrete array bases, concrete parameter values)
///    against the checked facts and grants elision per access.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_ANALYSIS_CERTIFICATE_H
#define VAPOR_ANALYSIS_CERTIFICATE_H

#include "ir/Function.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace vapor {
namespace analysis {

/// A runtime precondition on one array base: the certificate's alignment
/// claim holds only in worlds where base(Array) % Bytes == 0. The plan
/// builder evaluates it against the concrete MemoryImage before eliding.
struct BaseAlignReq {
  uint32_t Array = ir::NoArray;
  uint64_t Bytes = 0; ///< Required base alignment in bytes (power of two).

  bool operator==(const BaseAlignReq &O) const {
    return Array == O.Array && Bytes == O.Bytes;
  }
};

/// One memory access's proven facts. An access may carry an alignment
/// claim, a bounds claim, or both; each is independently checkable and
/// independently elidable.
struct AccessFact {
  uint32_t InstrIdx = ~0u; ///< Bytecode instruction index of the access.
  uint32_t Array = ir::NoArray;
  uint32_t LoopIdx = ~0u; ///< Innermost enclosing loop; ~0u = straight-line.

  //--- Alignment claim: address ≡ 0 (mod AlignElems elements) -----------
  bool HasAlign = false;
  /// The congruence width W in elements (VSBytes / elem size). The VM's
  /// aligned accesses trap on address % (W * ES) != 0; proving residue 0
  /// mod W discharges exactly that check.
  int64_t AlignElems = 0;
  /// Every array-base alignment assumption the proof consumed. The claim
  /// is conditional on ALL of them (the residue derivation substitutes
  /// base symbols of *other* arrays too, via get_misalign congruences).
  std::vector<BaseAlignReq> BaseReqs;

  //--- Bounds claim: index ∈ [0, NumElems - SpanElems] ------------------
  bool HasBounds = false;
  uint32_t SpanElems = 0;  ///< Elements touched per access (W vector, 1 scalar).
  uint64_t NumElems = 0;   ///< Claimed array extent (must match the bytecode).
  ir::ValueId IndexVal = ir::NoValue; ///< The access's index value.
  /// True when the range depends on runtime parameters: no static Min/Max
  /// claim is made and the consumer must evaluate the range with concrete
  /// parameter values at plan time.
  bool DynamicRange = false;
  int64_t MinIdx = 0; ///< Static range claim (valid when !DynamicRange).
  int64_t MaxIdx = 0;
};

/// The per-(function, target) certificate. FnHash binds it to the exact
/// bytecode (ir::hashFunction); TargetName/VSBytes bind it to the machine
/// parameters every residue fact was instantiated with.
struct SafetyCertificate {
  std::string TargetName;
  uint32_t VSBytes = 0;
  uint64_t FnHash = 0;
  std::vector<AccessFact> Facts;
};

/// Deterministic structural hash of \p C (for cache keying: a mutated
/// certificate can never alias a cached artifact built from the original).
uint64_t certificateHash(const SafetyCertificate &C);

//===--- Interval arithmetic over the IR value graph ----------------------===//

struct Interval {
  int64_t Min = 0;
  int64_t Max = 0;
};

/// Resolves a function parameter by name to its concrete value; nullopt
/// means "unknown" and fails the evaluation. The producer passes a
/// fail-always callback (static claims only); the plan builder passes the
/// kernel's actual parameter bindings.
using ParamFn = std::function<std::optional<int64_t>(const std::string &)>;

/// Overflow-checked interval evaluator for integer IR values, used both to
/// produce bounds claims and to independently re-derive them. Fails closed:
/// any value it cannot bound (loop-carried state, opaque ops, arithmetic
/// overflow) yields nullopt.
class BoundsEvaluator {
public:
  BoundsEvaluator(const ir::Function &Fn, uint32_t VS, ParamFn Params)
      : F(Fn), VSBytes(VS), Param(std::move(Params)) {}

  std::optional<Interval> eval(ir::ValueId V);

private:
  std::optional<Interval> compute(ir::ValueId V);

  const ir::Function &F;
  uint32_t VSBytes;
  ParamFn Param;
  std::map<ir::ValueId, std::optional<Interval>> Memo;
  std::set<ir::ValueId> InFlight; ///< Cycle guard.
};

//===--- The independent checker ------------------------------------------===//

enum class FactVerdict : uint8_t {
  Confirmed, ///< Replay reproduced the claim; elision may proceed.
  Rejected,  ///< Replay disagreed or could not re-derive the claim.
};

/// Structural validation of the whole certificate against \p F: content
/// hash, machine parameters, and every fact's binding (instruction index,
/// opcode class, array identity, claimed span/extent/index, static range
/// recomputation). \returns an empty string on success, else the first
/// violation — on any violation the consumer must treat every fact as
/// Rejected.
std::string checkCertificate(const ir::Function &F,
                             const SafetyCertificate &C);

/// Independently replays one alignment fact against the bytecode: a
/// self-contained mod-W residue evaluation of the access's address form,
/// accepting exactly the worlds named by the fact's BaseReqs. Confirmed
/// only when the re-derived residue is 0 under those assumptions.
FactVerdict checkAlignFact(const ir::Function &F, const SafetyCertificate &C,
                           const AccessFact &Fact);

} // namespace analysis
} // namespace vapor

#endif // VAPOR_ANALYSIS_CERTIFICATE_H
