//===- analysis/Certificate.cpp - Certificates and their checker ----------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// The independent checker deliberately shares no code with the verifier's
// abstract interpreter: it re-derives residues with its own, simpler
// evaluator directly over the IR value graph. Redundancy is the point —
// a bug in the producer's symbolic domain cannot also be a bug here, so a
// wrong certificate gets Rejected instead of silently eliding a check.
//
// Both evaluators fail closed. Every "can't see through this" answer is
// nullopt, which the callers turn into "keep the check".
//
//===----------------------------------------------------------------------===//

#include "analysis/Certificate.h"

#include <algorithm>
#include <cassert>

using namespace vapor;
using namespace vapor::ir;

namespace {

int64_t floorMod(int64_t X, int64_t M) {
  assert(M > 0);
  int64_t R = X % M;
  return R < 0 ? R + M : R;
}

bool addOv(int64_t A, int64_t B, int64_t &R) {
  return __builtin_add_overflow(A, B, &R);
}
bool subOv(int64_t A, int64_t B, int64_t &R) {
  return __builtin_sub_overflow(A, B, &R);
}
bool mulOv(int64_t A, int64_t B, int64_t &R) {
  return __builtin_mul_overflow(A, B, &R);
}

uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

uint64_t hashString(uint64_t H, const std::string &S) {
  H = hashCombine(H, S.size());
  for (char C : S)
    H = hashCombine(H, static_cast<uint8_t>(C));
  return H;
}

/// Machine constant a vector-mode JIT materializes for get_vf /
/// get_align_limit of element type \p K on a VSBytes-wide target.
int64_t machineConst(uint32_t VSBytes, ScalarKind K) {
  int64_t ES = scalarSize(K);
  return ES > 0 ? static_cast<int64_t>(VSBytes) / ES : 0;
}

/// Resolves \p V to a compile-time integer constant in the certificate's
/// machine world (ConstInt, or a machine-parameter query the JIT folds).
std::optional<int64_t> constValue(const Function &F, uint32_t VSBytes,
                                  ValueId V) {
  if (V >= F.Values.size() || F.Values[V].Def != ValueDef::Instr)
    return std::nullopt;
  const Instr &I = F.Instrs[F.Values[V].A];
  switch (I.Op) {
  case Opcode::ConstInt:
    return I.IntImm;
  case Opcode::GetVF:
  case Opcode::GetAlignLimit:
    return machineConst(VSBytes, I.TyParam);
  default:
    return std::nullopt;
  }
}

//===--- The checker's own residue evaluator ------------------------------===//
//
// Residue of an integer IR value mod W, expressed as an affine form
//   Const + sum(Coeff_A * baseElems(A))
// over per-array base-element symbols, all coefficients reduced mod W.
// This is the machinery that replays the producer's congruence claims:
// get_misalign introduces base terms, rem/mul/shl/loop-induction rules
// propagate them, and the final form is judged against the certificate's
// BaseAlignReqs.

struct BaseAff {
  int64_t Const = 0;
  std::map<uint32_t, int64_t> BaseCoeff;

  bool isConst() const { return BaseCoeff.empty(); }
  bool operator==(const BaseAff &O) const {
    return Const == O.Const && BaseCoeff == O.BaseCoeff;
  }
};

class ResidueEval {
public:
  ResidueEval(const Function &Fn, uint32_t VS, int64_t Width)
      : F(Fn), VSBytes(VS), W(Width) {}

  std::optional<BaseAff> of(ValueId V) {
    auto It = Memo.find(V);
    if (It != Memo.end())
      return It->second;
    if (!InFlight.insert(V).second)
      return std::nullopt; // Cyclic definition: fail closed.
    std::optional<BaseAff> R = compute(V);
    InFlight.erase(V);
    Memo[V] = R;
    return R;
  }

private:
  BaseAff norm(BaseAff A) const {
    A.Const = floorMod(A.Const, W);
    for (auto It = A.BaseCoeff.begin(); It != A.BaseCoeff.end();) {
      It->second = floorMod(It->second, W);
      It = It->second == 0 ? A.BaseCoeff.erase(It) : std::next(It);
    }
    return A;
  }

  BaseAff cnst(int64_t C) const {
    BaseAff A;
    A.Const = floorMod(C, W);
    return A;
  }

  BaseAff combine(const BaseAff &A, const BaseAff &B, int64_t Sign) const {
    BaseAff R = A;
    R.Const += Sign * B.Const;
    for (const auto &[Arr, Co] : B.BaseCoeff)
      R.BaseCoeff[Arr] += Sign * Co;
    return norm(R);
  }

  BaseAff scale(const BaseAff &A, int64_t K) const {
    BaseAff R;
    int64_t KM = floorMod(K, W);
    R.Const = A.Const * KM;
    for (const auto &[Arr, Co] : A.BaseCoeff)
      R.BaseCoeff[Arr] = Co * KM;
    return norm(R);
  }

  std::optional<BaseAff> compute(ValueId V) {
    if (W <= 1)
      return cnst(0);
    if (V >= F.Values.size())
      return std::nullopt;
    const ValueInfo &VI = F.Values[V];
    switch (VI.Def) {
    case ValueDef::Instr:
      break;
    case ValueDef::LoopInd: {
      // iv = Lower + k*Step: when the step is ≡ 0 (mod W), every iterate
      // keeps Lower's residue. (Vector main loops step by VF ≡ 0 mod W;
      // peel loops step by 1 and correctly fail here.)
      const LoopStmt &L = F.Loops[VI.A];
      std::optional<BaseAff> St = of(L.Step);
      if (!St || !St->isConst() || St->Const != 0)
        return std::nullopt;
      return of(L.Lower);
    }
    default:
      return std::nullopt; // Params, loop-carried state: opaque.
    }

    const Instr &I = F.Instrs[VI.A];
    switch (I.Op) {
    case Opcode::ConstInt:
      return cnst(I.IntImm);
    case Opcode::Add: {
      auto A = of(I.Ops[0]), B = of(I.Ops[1]);
      if (!A || !B)
        return std::nullopt;
      return combine(*A, *B, 1);
    }
    case Opcode::Sub: {
      auto A = of(I.Ops[0]), B = of(I.Ops[1]);
      if (!A || !B)
        return std::nullopt;
      return combine(*A, *B, -1);
    }
    case Opcode::Neg: {
      auto A = of(I.Ops[0]);
      if (!A)
        return std::nullopt;
      return scale(*A, -1);
    }
    case Opcode::Mul: {
      auto A = of(I.Ops[0]), B = of(I.Ops[1]);
      // A constant factor ≡ 0 (mod W) zeroes the product even when the
      // other factor is unanalyzable (it is still an integer). This is
      // what discharges `(span / VF) * VF`-shaped main-loop bounds.
      if (A && A->isConst() && A->Const == 0)
        return cnst(0);
      if (B && B->isConst() && B->Const == 0)
        return cnst(0);
      if (!A || !B)
        return std::nullopt;
      if (A->isConst())
        return scale(*B, A->Const);
      if (B->isConst())
        return scale(*A, B->Const);
      return std::nullopt; // Product of two symbolic forms: not affine.
    }
    case Opcode::Shl: {
      std::optional<int64_t> Sh = constValue(F, VSBytes, I.Ops[1]);
      if (!Sh || *Sh < 0 || *Sh >= 62)
        return std::nullopt;
      auto A = of(I.Ops[0]);
      if (!A)
        return std::nullopt;
      return scale(*A, int64_t(1) << *Sh);
    }
    case Opcode::Rem: {
      // Truncated remainder satisfies r ≡ x (mod c) exactly; with W | c
      // the residue mod W passes through.
      std::optional<int64_t> C = constValue(F, VSBytes, I.Ops[1]);
      if (!C || *C <= 0 || *C % W != 0)
        return std::nullopt;
      return of(I.Ops[0]);
    }
    case Opcode::Min:
    case Opcode::Max: {
      // Sound only when both arms agree: the checker does not do the
      // producer's scenario forking, by design.
      auto A = of(I.Ops[0]), B = of(I.Ops[1]);
      if (!A || !B || !(*A == *B))
        return std::nullopt;
      return A;
    }
    case Opcode::GetVF:
    case Opcode::GetAlignLimit:
      return cnst(machineConst(VSBytes, I.TyParam));
    case Opcode::GetMisalign: {
      // m = (baseElems(A) + off) mod AL, so m ≡ baseElems(A) + off
      // (mod W) whenever W divides AL.
      if (I.Array >= F.Arrays.size())
        return std::nullopt;
      int64_t AL = machineConst(VSBytes, F.Arrays[I.Array].Elem);
      if (AL <= 1)
        return cnst(0);
      if (AL % W != 0)
        return std::nullopt;
      BaseAff R = cnst(I.IntImm);
      R.BaseCoeff[I.Array] = 1;
      return norm(R);
    }
    case Opcode::LoopBound:
      // Vector-mode lowering keeps the vector-version count.
      return of(I.Ops[0]);
    default:
      return std::nullopt;
    }
  }

  const Function &F;
  uint32_t VSBytes;
  int64_t W;
  std::map<ValueId, std::optional<BaseAff>> Memo;
  std::set<ValueId> InFlight;
};

bool isCertOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::ALoad:
  case Opcode::ULoad:
  case Opcode::AStore:
  case Opcode::UStore:
  case Opcode::Load:
  case Opcode::Store:
    return true;
  default:
    return false;
  }
}

bool isVectorAccess(Opcode Op) {
  return Op != Opcode::Load && Op != Opcode::Store;
}

} // namespace

namespace vapor {
namespace analysis {

uint64_t certificateHash(const SafetyCertificate &C) {
  uint64_t H = 0x5652435254ULL; // 'VRCRT'
  H = hashString(H, C.TargetName);
  H = hashCombine(H, C.VSBytes);
  H = hashCombine(H, C.FnHash);
  H = hashCombine(H, C.Facts.size());
  for (const AccessFact &F : C.Facts) {
    H = hashCombine(H, F.InstrIdx);
    H = hashCombine(H, F.Array);
    H = hashCombine(H, F.LoopIdx);
    H = hashCombine(H, F.HasAlign);
    H = hashCombine(H, static_cast<uint64_t>(F.AlignElems));
    H = hashCombine(H, F.BaseReqs.size());
    for (const BaseAlignReq &R : F.BaseReqs) {
      H = hashCombine(H, R.Array);
      H = hashCombine(H, R.Bytes);
    }
    H = hashCombine(H, F.HasBounds);
    H = hashCombine(H, F.SpanElems);
    H = hashCombine(H, F.NumElems);
    H = hashCombine(H, F.IndexVal);
    H = hashCombine(H, F.DynamicRange);
    H = hashCombine(H, static_cast<uint64_t>(F.MinIdx));
    H = hashCombine(H, static_cast<uint64_t>(F.MaxIdx));
  }
  return H;
}

//===--- BoundsEvaluator ---------------------------------------------------===//

std::optional<Interval> BoundsEvaluator::eval(ValueId V) {
  auto It = Memo.find(V);
  if (It != Memo.end())
    return It->second;
  if (!InFlight.insert(V).second)
    return std::nullopt;
  std::optional<Interval> R = compute(V);
  InFlight.erase(V);
  Memo[V] = R;
  return R;
}

std::optional<Interval> BoundsEvaluator::compute(ValueId V) {
  if (V >= F.Values.size())
    return std::nullopt;
  const ValueInfo &VI = F.Values[V];

  auto point = [](int64_t C) { return Interval{C, C}; };

  switch (VI.Def) {
  case ValueDef::Param: {
    if (!Param)
      return std::nullopt;
    std::optional<int64_t> P = Param(VI.Name);
    if (!P)
      return std::nullopt;
    return point(*P);
  }
  case ValueDef::LoopInd: {
    // iv ranges over [Lower, Upper) by Step: min is Lower's min; the last
    // iterate is Upper - Step when the span is provably Step-divisible,
    // Upper - 1 otherwise. Empty loops never produce an iv, so clamping
    // the top at Lower's min is sound.
    const LoopStmt &L = F.Loops[VI.A];
    std::optional<Interval> Lo = eval(L.Lower);
    std::optional<Interval> Up = eval(L.Upper);
    std::optional<int64_t> St = constValue(F, VSBytes, L.Step);
    if (!Lo || !Up || !St || *St < 1)
      return std::nullopt;
    int64_t Back = 1;
    if (*St > 1) {
      // Span divisibility via the residue evaluator mod Step: residues of
      // Upper and Lower must agree exactly (symbolic parts cancel).
      ResidueEval RE(F, VSBytes, *St);
      std::optional<BaseAff> RU = RE.of(L.Upper);
      std::optional<BaseAff> RL = RE.of(L.Lower);
      if (RU && RL && *RU == *RL)
        Back = *St;
    }
    int64_t Top;
    if (subOv(Up->Max, Back, Top))
      return std::nullopt;
    return Interval{Lo->Min, std::max(Lo->Min, Top)};
  }
  case ValueDef::Instr:
    break;
  default:
    return std::nullopt; // Loop-carried state: unbounded.
  }

  const Instr &I = F.Instrs[VI.A];
  switch (I.Op) {
  case Opcode::ConstInt:
    return point(I.IntImm);
  case Opcode::Add: {
    auto A = eval(I.Ops[0]), B = eval(I.Ops[1]);
    int64_t Mn, Mx;
    if (!A || !B || addOv(A->Min, B->Min, Mn) || addOv(A->Max, B->Max, Mx))
      return std::nullopt;
    return Interval{Mn, Mx};
  }
  case Opcode::Sub: {
    auto A = eval(I.Ops[0]), B = eval(I.Ops[1]);
    int64_t Mn, Mx;
    if (!A || !B || subOv(A->Min, B->Max, Mn) || subOv(A->Max, B->Min, Mx))
      return std::nullopt;
    return Interval{Mn, Mx};
  }
  case Opcode::Neg: {
    auto A = eval(I.Ops[0]);
    int64_t Mn, Mx;
    if (!A || subOv(0, A->Max, Mn) || subOv(0, A->Min, Mx))
      return std::nullopt;
    return Interval{Mn, Mx};
  }
  case Opcode::Mul: {
    auto A = eval(I.Ops[0]), B = eval(I.Ops[1]);
    if (!A || !B)
      return std::nullopt;
    int64_t C[4];
    if (mulOv(A->Min, B->Min, C[0]) || mulOv(A->Min, B->Max, C[1]) ||
        mulOv(A->Max, B->Min, C[2]) || mulOv(A->Max, B->Max, C[3]))
      return std::nullopt;
    return Interval{*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
  }
  case Opcode::Div: {
    auto A = eval(I.Ops[0]);
    std::optional<int64_t> D = constValue(F, VSBytes, I.Ops[1]);
    if (!A || !D || *D == 0)
      return std::nullopt;
    if (*D == -1 && A->Min == INT64_MIN)
      return std::nullopt;
    int64_t X = A->Min / *D, Y = A->Max / *D;
    return Interval{std::min(X, Y), std::max(X, Y)};
  }
  case Opcode::Rem: {
    auto A = eval(I.Ops[0]);
    std::optional<int64_t> D = constValue(F, VSBytes, I.Ops[1]);
    if (!A || !D || *D <= 0)
      return std::nullopt;
    if (A->Min >= 0)
      return Interval{0, std::min(A->Max, *D - 1)};
    return Interval{-(*D - 1), *D - 1};
  }
  case Opcode::Min: {
    auto A = eval(I.Ops[0]), B = eval(I.Ops[1]);
    if (!A || !B)
      return std::nullopt;
    return Interval{std::min(A->Min, B->Min), std::min(A->Max, B->Max)};
  }
  case Opcode::Max: {
    auto A = eval(I.Ops[0]), B = eval(I.Ops[1]);
    if (!A || !B)
      return std::nullopt;
    return Interval{std::max(A->Min, B->Min), std::max(A->Max, B->Max)};
  }
  case Opcode::Shl: {
    auto A = eval(I.Ops[0]);
    std::optional<int64_t> Sh = constValue(F, VSBytes, I.Ops[1]);
    if (!A || !Sh || *Sh < 0 || *Sh >= 62)
      return std::nullopt;
    int64_t K = int64_t(1) << *Sh, Mn, Mx;
    if (mulOv(A->Min, K, Mn) || mulOv(A->Max, K, Mx))
      return std::nullopt;
    return Interval{Mn, Mx};
  }
  case Opcode::GetVF:
  case Opcode::GetAlignLimit: {
    int64_t C = machineConst(VSBytes, I.TyParam);
    if (C <= 0)
      return std::nullopt;
    return point(C);
  }
  case Opcode::GetMisalign: {
    if (I.Array >= F.Arrays.size())
      return std::nullopt;
    int64_t AL = machineConst(VSBytes, F.Arrays[I.Array].Elem);
    return Interval{0, AL > 1 ? AL - 1 : 0};
  }
  case Opcode::LoopBound: {
    // Vector lowering keeps Ops[0], scalar lowering Ops[1]; the union
    // covers whichever the executed program materialized.
    auto A = eval(I.Ops[0]), B = eval(I.Ops[1]);
    if (!A || !B)
      return std::nullopt;
    return Interval{std::min(A->Min, B->Min), std::max(A->Max, B->Max)};
  }
  default:
    return std::nullopt;
  }
}

//===--- checkCertificate --------------------------------------------------===//

std::string checkCertificate(const Function &F, const SafetyCertificate &C) {
  if (C.VSBytes == 0)
    return "certificate carries no vector size";
  if (C.FnHash != hashFunction(F))
    return "certificate content hash does not match the bytecode";

  for (size_t N = 0; N < C.Facts.size(); ++N) {
    const AccessFact &Fa = C.Facts[N];
    std::string Tag = "fact " + std::to_string(N) + ": ";
    if (Fa.InstrIdx >= F.Instrs.size())
      return Tag + "instruction index out of range";
    const Instr &I = F.Instrs[Fa.InstrIdx];
    if (!isCertOpcode(I.Op))
      return Tag + "instruction is not a certifiable memory access";
    if (Fa.Array != I.Array || Fa.Array >= F.Arrays.size())
      return Tag + "array identity does not match the access";
    int64_t ES = scalarSize(F.Arrays[Fa.Array].Elem);
    if (ES <= 0 || C.VSBytes % ES != 0)
      return Tag + "element size inconsistent with the vector size";
    if (!Fa.HasAlign && !Fa.HasBounds)
      return Tag + "claims nothing";

    if (Fa.HasAlign) {
      if (!isVectorAccess(I.Op))
        return Tag + "alignment claim on a scalar access";
      if (Fa.AlignElems != static_cast<int64_t>(C.VSBytes) / ES)
        return Tag + "alignment width is not VSBytes over the element size";
      bool CoversOwn = false;
      for (const BaseAlignReq &R : Fa.BaseReqs) {
        if (R.Array >= F.Arrays.size())
          return Tag + "base requirement names a missing array";
        int64_t RES = scalarSize(F.Arrays[R.Array].Elem);
        if (RES <= 0 || R.Bytes == 0 ||
            R.Bytes % static_cast<uint64_t>(RES) != 0)
          return Tag + "base requirement is not element-granular";
        CoversOwn |= R.Array == Fa.Array;
      }
      // Element-granular addressing itself assumes the accessed base is a
      // whole number of elements; the requirement makes that a checked
      // runtime precondition rather than a modeling assumption.
      if (!CoversOwn)
        return Tag + "no base requirement on the accessed array";
    }

    if (Fa.HasBounds) {
      uint32_t Span = isVectorAccess(I.Op)
                          ? static_cast<uint32_t>(C.VSBytes / ES)
                          : 1u;
      if (Fa.SpanElems != Span)
        return Tag + "span does not match the access width";
      if (Fa.NumElems != F.Arrays[Fa.Array].NumElems)
        return Tag + "array extent does not match the bytecode";
      if (Fa.IndexVal != I.Ops[0])
        return Tag + "index value does not match the access";
      if (!Fa.DynamicRange) {
        BoundsEvaluator BE(F, C.VSBytes,
                           [](const std::string &) {
                             return std::optional<int64_t>();
                           });
        std::optional<Interval> R = BE.eval(Fa.IndexVal);
        if (!R)
          return Tag + "static range claim cannot be re-derived";
        if (R->Min != Fa.MinIdx || R->Max != Fa.MaxIdx)
          return Tag + "static range claim disagrees with re-derivation";
      }
    }
  }
  return "";
}

FactVerdict checkAlignFact(const Function &F, const SafetyCertificate &C,
                           const AccessFact &Fact) {
  if (!Fact.HasAlign || Fact.InstrIdx >= F.Instrs.size() ||
      Fact.Array >= F.Arrays.size())
    return FactVerdict::Rejected;
  const Instr &I = F.Instrs[Fact.InstrIdx];
  if (!isCertOpcode(I.Op) || !isVectorAccess(I.Op) || I.Ops.empty())
    return FactVerdict::Rejected;
  int64_t ES = scalarSize(F.Arrays[Fact.Array].Elem);
  if (ES <= 0 || Fact.AlignElems != static_cast<int64_t>(C.VSBytes) / ES)
    return FactVerdict::Rejected;
  int64_t W = Fact.AlignElems;

  // Address (in elements) = baseElems(accessed array) + index. Re-derive
  // its residue mod W and demand that every surviving base term is
  // annihilated by a base requirement the plan will actually test.
  BaseAff Total;
  if (W > 1) {
    ResidueEval RE(F, C.VSBytes, W);
    std::optional<BaseAff> Idx = RE.of(I.Ops[0]);
    if (!Idx)
      return FactVerdict::Rejected;
    Total = *Idx;
    if (Total.Const % W != 0)
      return FactVerdict::Rejected;
  }
  Total.BaseCoeff[Fact.Array] += 1;

  for (const auto &[Arr, Co] : Total.BaseCoeff) {
    int64_t CoM = W > 1 ? floorMod(Co, W) : 0;
    const BaseAlignReq *Req = nullptr;
    for (const BaseAlignReq &R : Fact.BaseReqs)
      if (R.Array == Arr)
        Req = &R;
    if (!Req)
      return FactVerdict::Rejected;
    int64_t RES = scalarSize(F.Arrays[Arr].Elem);
    if (RES <= 0 || Req->Bytes == 0 ||
        Req->Bytes % static_cast<uint64_t>(RES) != 0)
      return FactVerdict::Rejected;
    if (CoM == 0)
      continue;
    // Coeff * baseElems with baseElems ≡ 0 (mod Bytes/ES) vanishes mod W
    // iff W | Coeff * (Bytes/ES).
    int64_t M = static_cast<int64_t>(Req->Bytes) / RES;
    if (floorMod(CoM * M, W) != 0)
      return FactVerdict::Rejected;
  }
  return FactVerdict::Confirmed;
}

} // namespace analysis
} // namespace vapor
