//===- codegen/Emitter.h - x86-64 binary instruction encoder ---*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small raw x86-64 encoder for the native tier's binary emitter: a
/// growable byte buffer plus typed helpers for exactly the instruction
/// forms NativeJit.cpp emits. Both legacy-SSE and VEX encodings of the
/// vector forms are provided; the `UseVEX` switch (set from the CPUID
/// probe) selects between them uniformly so a function never mixes
/// encodings (which would incur AVX<->SSE transition stalls).
///
/// Register numbering follows the hardware: rax=0 rcx=1 rdx=2 rbx=3
/// rsp=4 rbp=5 rsi=6 rdi=7 r8..r15=8..15, xmm0..15 likewise.
///
/// Labels are byte positions; forward references go through 32-bit
/// fixups patched with patch32().
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_CODEGEN_EMITTER_H
#define VAPOR_CODEGEN_EMITTER_H

#include "support/Support.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace vapor {
namespace codegen {

// GPR numbers.
enum : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// x86 condition codes (the 0F 8x / 0F 9x / 0F 4x low nibble).
enum class CC : uint8_t {
  O = 0x0,
  NO = 0x1,
  B = 0x2,  ///< below (CF=1)
  AE = 0x3, ///< above-or-equal (CF=0)
  E = 0x4,  ///< equal (ZF=1)
  NE = 0x5,
  BE = 0x6, ///< below-or-equal (CF=1 or ZF=1)
  A = 0x7,  ///< above (CF=0 and ZF=0)
  S = 0x8,
  NS = 0x9,
  L = 0xC, ///< signed less
  GE = 0xD,
  LE = 0xE,
  G = 0xF,
};

class Emitter {
public:
  bool UseVEX = false; ///< Emit VEX forms of all SSE ops (AVX host).

  const std::vector<uint8_t> &code() const { return Buf; }
  size_t here() const { return Buf.size(); }

  //===--- Raw bytes ------------------------------------------------------===//

  void u8(uint8_t B) { Buf.push_back(B); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// Patches the 4 bytes at \p Pos with (Target - (Pos + 4)): rel32
  /// fields of jcc/jmp whose next-instruction boundary is Pos + 4.
  void patch32(size_t Pos, size_t Target) {
    int64_t Rel = static_cast<int64_t>(Target) - static_cast<int64_t>(Pos + 4);
    assert(Rel >= INT32_MIN && Rel <= INT32_MAX && "jump out of rel32 range");
    uint32_t V = static_cast<uint32_t>(static_cast<int32_t>(Rel));
    for (int I = 0; I < 4; ++I)
      Buf[Pos + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  //===--- Prefixes and operand bytes -------------------------------------===//

  void rex(bool W, unsigned Reg, unsigned Idx, unsigned Base, bool Force8 = false) {
    uint8_t R = 0x40 | (W ? 8 : 0) | ((Reg >> 3) << 2) | ((Idx >> 3) << 1) |
                (Base >> 3);
    // The prefix is mandatory with W/R/X/B set, and for SPL/BPL/SIL/DIL
    // byte registers; otherwise optional -- emit only when needed.
    if (R != 0x40 || Force8)
      u8(R);
  }

  void modrm(unsigned Mod, unsigned Reg, unsigned Rm) {
    u8(static_cast<uint8_t>((Mod << 6) | ((Reg & 7) << 3) | (Rm & 7)));
  }

  /// ModRM+SIB+disp for [Base + disp32] (no index). Base must not be
  /// rsp/r12 (would need a SIB byte) -- the emitter only uses rbx here.
  void memDisp(unsigned Reg, unsigned Base, int32_t Disp) {
    assert((Base & 7) != RSP && "rsp/r12 base needs SIB");
    if (Disp == 0 && (Base & 7) != RBP) {
      modrm(0, Reg, Base);
    } else if (Disp >= -128 && Disp <= 127) {
      modrm(1, Reg, Base);
      u8(static_cast<uint8_t>(Disp));
    } else {
      modrm(2, Reg, Base);
      u32(static_cast<uint32_t>(Disp));
    }
  }

  /// ModRM+SIB+disp for [Base + Index*2^Scale + Disp].
  void memSib(unsigned Reg, unsigned Base, unsigned Index, unsigned Scale,
              int32_t Disp) {
    assert(Index != RSP && "rsp cannot be an index register");
    uint8_t Sib = static_cast<uint8_t>((Scale << 6) | ((Index & 7) << 3) |
                                       (Base & 7));
    if (Disp == 0 && (Base & 7) != RBP) {
      modrm(0, Reg, 4);
      u8(Sib);
    } else if (Disp >= -128 && Disp <= 127) {
      modrm(1, Reg, 4);
      u8(Sib);
      u8(static_cast<uint8_t>(Disp));
    } else {
      modrm(2, Reg, 4);
      u8(Sib);
      u32(static_cast<uint32_t>(Disp));
    }
  }

  //===--- Moves ----------------------------------------------------------===//

  /// mov Dst64, [rbx + Disp] -- lane-file load (canonical 64-bit lane).
  void movRM64(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    u8(0x8B);
    memDisp(Dst, Base, Disp);
  }
  /// mov [rbx + Disp], Src64.
  void movMR64(unsigned Base, int32_t Disp, unsigned Src) {
    rex(true, Src, 0, Base);
    u8(0x89);
    memDisp(Src, Base, Disp);
  }
  /// mov Dst32, [Base + Disp] (zero-extends into the full register).
  void movRM32(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    u8(0x8B);
    memDisp(Dst, Base, Disp);
  }
  void movMR32(unsigned Base, int32_t Disp, unsigned Src) {
    rex(false, Src, 0, Base);
    u8(0x89);
    memDisp(Src, Base, Disp);
  }
  /// movzx Dst32, byte/word [Base + Disp] (Size = 1 or 2).
  void movzxRM(unsigned Dst, unsigned Base, int32_t Disp, unsigned Size) {
    rex(false, Dst, 0, Base);
    u8(0x0F);
    u8(Size == 1 ? 0xB6 : 0xB7);
    memDisp(Dst, Base, Disp);
  }
  /// movsx Dst64, 1/2/4-byte [Base + Disp].
  void movsxRM(unsigned Dst, unsigned Base, int32_t Disp, unsigned Size) {
    rex(true, Dst, 0, Base);
    if (Size == 4) {
      u8(0x63); // movsxd
    } else {
      u8(0x0F);
      u8(Size == 1 ? 0xBE : 0xBF);
    }
    memDisp(Dst, Base, Disp);
  }
  /// mov byte/word [Base + Disp], Src (low 8/16 bits).
  void movMRSmall(unsigned Base, int32_t Disp, unsigned Src, unsigned Size) {
    if (Size == 2)
      u8(0x66);
    rex(false, Src, 0, Base, /*Force8=*/Size == 1 && Src >= RSP);
    u8(Size == 1 ? 0x88 : 0x89);
    memDisp(Src, Base, Disp);
  }

  /// SIB-addressed loads/stores for host memory: [Base + Index + Disp].
  void movRMSib(unsigned Dst, unsigned Base, unsigned Index, int32_t Disp,
                unsigned Size) {
    if (Size == 8) {
      rex(true, Dst, Index, Base);
      u8(0x8B);
    } else if (Size == 4) {
      rex(false, Dst, Index, Base);
      u8(0x8B);
    } else {
      rex(false, Dst, Index, Base);
      u8(0x0F);
      u8(Size == 1 ? 0xB6 : 0xB7); // movzx
    }
    memSib(Dst, Base, Index, 0, Disp);
  }
  void movMRSib(unsigned Base, unsigned Index, int32_t Disp, unsigned Src,
                unsigned Size) {
    if (Size == 2)
      u8(0x66);
    rex(Size == 8, Src, Index, Base, /*Force8=*/Size == 1 && Src >= RSP);
    u8(Size == 1 ? 0x88 : 0x89);
    memSib(Src, Base, Index, 0, Disp);
  }

  /// mov Dst64, imm64 (movabs).
  void movImm64(unsigned Dst, uint64_t Imm) {
    rex(true, 0, 0, Dst);
    u8(static_cast<uint8_t>(0xB8 | (Dst & 7)));
    u64(Imm);
  }
  /// mov Dst32, imm32 (zero-extends).
  void movImm32(unsigned Dst, uint32_t Imm) {
    rex(false, 0, 0, Dst);
    u8(static_cast<uint8_t>(0xB8 | (Dst & 7)));
    u32(Imm);
  }
  /// mov Dst64, Src64.
  void movRR64(unsigned Dst, unsigned Src) {
    rex(true, Src, 0, Dst);
    u8(0x89);
    modrm(3, Src, Dst);
  }
  /// mov Dst32, Src32 (canonicalizing zero-extension; `mov eax, eax`).
  void movRR32(unsigned Dst, unsigned Src) {
    rex(false, Src, 0, Dst);
    u8(0x89);
    modrm(3, Src, Dst);
  }

  //===--- GPR ALU --------------------------------------------------------===//

  /// Two-register ALU op, 0x01-style opcode (add=0x01 or=0x09 and=0x21
  /// sub=0x29 xor=0x31 cmp=0x39 test=0x85): op Dst, Src.
  void aluRR(uint8_t Opc, unsigned Dst, unsigned Src, bool W) {
    rex(W, Src, 0, Dst);
    u8(Opc);
    modrm(3, Src, Dst);
  }
  void addRR64(unsigned D, unsigned S) { aluRR(0x01, D, S, true); }
  void subRR64(unsigned D, unsigned S) { aluRR(0x29, D, S, true); }
  void andRR64(unsigned D, unsigned S) { aluRR(0x21, D, S, true); }
  void orRR64(unsigned D, unsigned S) { aluRR(0x09, D, S, true); }
  void xorRR64(unsigned D, unsigned S) { aluRR(0x31, D, S, true); }
  void cmpRR64(unsigned D, unsigned S) { aluRR(0x39, D, S, true); }
  void testRR64(unsigned D, unsigned S) { aluRR(0x85, D, S, true); }
  void addRR32(unsigned D, unsigned S) { aluRR(0x01, D, S, false); }
  void subRR32(unsigned D, unsigned S) { aluRR(0x29, D, S, false); }
  void andRR32(unsigned D, unsigned S) { aluRR(0x21, D, S, false); }
  void orRR32(unsigned D, unsigned S) { aluRR(0x09, D, S, false); }
  void xorRR32(unsigned D, unsigned S) { aluRR(0x31, D, S, false); }

  /// imul Dst, Src (0F AF).
  void imulRR(unsigned Dst, unsigned Src, bool W) {
    rex(W, Dst, 0, Src);
    u8(0x0F);
    u8(0xAF);
    modrm(3, Dst, Src);
  }

  /// Reg <- Reg OP [Base + Disp], 0x03-style opcode (add=0x03 or=0x0B
  /// and=0x23 sub=0x2B xor=0x33 cmp=0x3B).
  void aluRM(uint8_t Opc, unsigned Dst, unsigned Base, int32_t Disp, bool W) {
    rex(W, Dst, 0, Base);
    u8(Opc);
    memDisp(Dst, Base, Disp);
  }
  void cmpRM64(unsigned Dst, unsigned Base, int32_t Disp) {
    aluRM(0x3B, Dst, Base, Disp, true);
  }
  /// imul Dst, [Base + Disp].
  void imulRM(unsigned Dst, unsigned Base, int32_t Disp, bool W) {
    rex(W, Dst, 0, Base);
    u8(0x0F);
    u8(0xAF);
    memDisp(Dst, Base, Disp);
  }
  /// [Base + Disp] OP<- Src64, 0x01-style opcode (add=0x01); used for
  /// the loop latch `add [iv], step`.
  void aluMR64(uint8_t Opc, unsigned Base, int32_t Disp, unsigned Src) {
    rex(true, Src, 0, Base);
    u8(Opc);
    memDisp(Src, Base, Disp);
  }

  /// mov dword [Base + Disp], imm32 (C7 /0).
  void movMImm32(unsigned Base, int32_t Disp, uint32_t Imm) {
    rex(false, 0, 0, Base);
    u8(0xC7);
    memDisp(0, Base, Disp);
    u32(Imm);
  }
  /// mov byte [Base + Disp], imm8 (C6 /0).
  void movMImm8(unsigned Base, int32_t Disp, uint8_t Imm) {
    rex(false, 0, 0, Base);
    u8(0xC6);
    memDisp(0, Base, Disp);
    u8(Imm);
  }

  /// mov Dst64, [Base + Index*8 + Disp] -- scaled lane-file indexing.
  void movRM64Scale8(unsigned Dst, unsigned Base, unsigned Index,
                     int32_t Disp) {
    rex(true, Dst, Index, Base);
    u8(0x8B);
    memSib(Dst, Base, Index, 3, Disp);
  }

  /// 0x81-group immediate ALU: /0 add, /4 and, /5 sub, /7 cmp.
  void aluImm32(unsigned Ext, unsigned Dst, int32_t Imm, bool W) {
    rex(W, 0, 0, Dst);
    u8(0x81);
    modrm(3, Ext, Dst);
    u32(static_cast<uint32_t>(Imm));
  }
  void andImm32(unsigned Dst, uint32_t Mask) {
    aluImm32(4, Dst, static_cast<int32_t>(Mask), false);
  }
  void addImm64(unsigned Dst, int32_t Imm) { aluImm32(0, Dst, Imm, true); }
  void subImm64(unsigned Dst, int32_t Imm) { aluImm32(5, Dst, Imm, true); }

  /// test Dst64, imm32 (F7 /0; imm sign-extends -- keep masks < 2^31).
  void testImm(unsigned Dst, uint32_t Imm) {
    rex(true, 0, 0, Dst);
    u8(0xF7);
    modrm(3, 0, Dst);
    u32(Imm);
  }

  /// Shifts by cl: shl /4, shr /5, sar /7.
  void shiftCl(unsigned Ext, unsigned Dst, bool W) {
    rex(W, 0, 0, Dst);
    u8(0xD3);
    modrm(3, Ext, Dst);
  }
  /// Shift by immediate (C1 group).
  void shiftImm(unsigned Ext, unsigned Dst, uint8_t Amt, bool W) {
    rex(W, 0, 0, Dst);
    u8(0xC1);
    modrm(3, Ext, Dst);
    u8(Amt);
  }

  /// neg Dst (F7 /3).
  void negR(unsigned Dst, bool W) {
    rex(W, 0, 0, Dst);
    u8(0xF7);
    modrm(3, 3, Dst);
  }

  /// cmovcc Dst, Src (0F 4x).
  void cmov(CC C, unsigned Dst, unsigned Src, bool W = true) {
    rex(W, Dst, 0, Src);
    u8(0x0F);
    u8(static_cast<uint8_t>(0x40 | static_cast<uint8_t>(C)));
    modrm(3, Dst, Src);
  }

  /// setcc Dst8 (0F 9x) -- use with Dst < 4 (al..bl) to skip REX games.
  void setcc(CC C, unsigned Dst) {
    assert(Dst < 4 && "setcc helper limited to al..bl");
    u8(0x0F);
    u8(static_cast<uint8_t>(0x90 | static_cast<uint8_t>(C)));
    modrm(3, 0, Dst);
  }
  /// movzx Dst32, Src8 (Src < 4).
  void movzxR8(unsigned Dst, unsigned Src) {
    assert(Src < 4 && "movzx8 helper limited to al..bl");
    rex(false, Dst, 0, Src);
    u8(0x0F);
    u8(0xB6);
    modrm(3, Dst, Src);
  }

  /// lea Dst, [Base + Disp].
  void lea(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    u8(0x8D);
    memDisp(Dst, Base, Disp);
  }

  /// inc qword [Base + Disp] (FF /0) -- audit-mode fire counters.
  void incM64(unsigned Base, int32_t Disp) {
    rex(true, 0, 0, Base);
    u8(0xFF);
    memDisp(0, Base, Disp);
  }

  //===--- Control flow ---------------------------------------------------===//

  void push(unsigned R) {
    if (R >= 8)
      u8(0x41);
    u8(static_cast<uint8_t>(0x50 | (R & 7)));
  }
  void pop(unsigned R) {
    if (R >= 8)
      u8(0x41);
    u8(static_cast<uint8_t>(0x58 | (R & 7)));
  }
  void ret() { u8(0xC3); }
  void callR(unsigned R) {
    if (R >= 8)
      u8(0x41);
    u8(0xFF);
    modrm(3, 2, R);
  }

  /// jcc rel32; \returns the fixup position for patch32().
  size_t jcc(CC C) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(C)));
    size_t Pos = here();
    u32(0);
    return Pos;
  }
  /// jmp rel32; \returns the fixup position.
  size_t jmp() {
    u8(0xE9);
    size_t Pos = here();
    u32(0);
    return Pos;
  }
  /// jmp rel32 to a known earlier target.
  void jmpTo(size_t Target) { patch32(jmp(), Target); }
  void jccTo(CC C, size_t Target) { patch32(jcc(C), Target); }

  /// test byte [Base+Disp], imm8 (F6 /0).
  void testM8(unsigned Base, int32_t Disp, uint8_t Imm) {
    u8(0xF6);
    memDisp(0, Base, Disp);
    u8(Imm);
  }

  //===--- SSE / VEX ------------------------------------------------------===//
  //
  // One helper per addressing shape; PP selects the mandatory prefix
  // (0=none, 1=66, 2=F3, 3=F2) and Opc the 0F-map opcode byte. The VEX
  // path encodes the same operation with vvvv = the first source, which
  // for our two-operand use is the destination itself (in-place forms).

private:
  void legacyPrefix(unsigned PP) {
    static const uint8_t P[4] = {0x00, 0x66, 0xF3, 0xF2};
    if (P[PP])
      u8(P[PP]);
  }

  /// VEX prefix for a 0F-map op. Uses the 2-byte form when possible.
  void vex(unsigned Reg, unsigned Idx, unsigned Base, unsigned VVVV,
           bool L256, unsigned PP) {
    bool R = Reg >= 8, X = Idx >= 8, B = Base >= 8;
    if (!X && !B) {
      u8(0xC5);
      u8(static_cast<uint8_t>((R ? 0 : 0x80) | ((~VVVV & 0xF) << 3) |
                              (L256 ? 4 : 0) | PP));
    } else {
      u8(0xC4);
      u8(static_cast<uint8_t>((R ? 0 : 0x80) | (X ? 0 : 0x40) |
                              (B ? 0 : 0x20) | 0x01)); // map 0F
      u8(static_cast<uint8_t>(((~VVVV & 0xF) << 3) | (L256 ? 4 : 0) | PP));
    }
  }

public:
  /// Xmm <- [Base + Index + Disp] style SSE load (also stores with the
  /// store opcode). Legacy or VEX per UseVEX; L256 only via VEX.
  void sseMemSib(unsigned PP, uint8_t Opc, unsigned Xmm, unsigned Base,
                 unsigned Index, int32_t Disp, bool L256 = false) {
    if (UseVEX || L256) {
      vex(Xmm, Index, Base, 0, L256, PP);
    } else {
      legacyPrefix(PP);
      rex(false, Xmm, Index, Base);
      u8(0x0F);
    }
    u8(Opc);
    memSib(Xmm, Base, Index, 0, Disp);
  }

  /// Xmm <- [Base + Disp] (lane file).
  void sseMemDisp(unsigned PP, uint8_t Opc, unsigned Xmm, unsigned Base,
                  int32_t Disp, bool L256 = false) {
    if (UseVEX || L256) {
      vex(Xmm, 0, Base, 0, L256, PP);
    } else {
      legacyPrefix(PP);
      rex(false, Xmm, 0, Base);
      u8(0x0F);
    }
    u8(Opc);
    memDisp(Xmm, Base, Disp);
  }

  /// Two-operand arithmetic Dst ?= Src register form. With VEX this is
  /// the three-operand form vop Dst, Dst, Src.
  void sseRR(unsigned PP, uint8_t Opc, unsigned Dst, unsigned Src,
             bool L256 = false) {
    if (UseVEX || L256) {
      vex(Dst, 0, Src, Dst, L256, PP);
    } else {
      legacyPrefix(PP);
      rex(false, Dst, 0, Src);
      u8(0x0F);
    }
    u8(Opc);
    modrm(3, Dst, Src);
  }

  /// Arithmetic Dst ?= [Base + Disp] memory-operand form (VEX: vop
  /// Dst, Dst, mem).
  void sseRM(unsigned PP, uint8_t Opc, unsigned Dst, unsigned Base,
             int32_t Disp, bool L256 = false) {
    if (UseVEX || L256) {
      vex(Dst, 0, Base, Dst, L256, PP);
    } else {
      legacyPrefix(PP);
      rex(false, Dst, 0, Base);
      u8(0x0F);
    }
    u8(Opc);
    memDisp(Dst, Base, Disp);
  }

  /// ucomisd/ucomiss Dst, Src. Two-operand compare: the VEX form takes
  /// no vvvv source, so it must encode vvvv=0 (sseRR's vvvv=Dst would
  /// #UD here).
  void ucomis(bool F64, unsigned Dst, unsigned Src) {
    if (UseVEX) {
      vex(Dst, 0, Src, 0, false, F64 ? 1 : 0);
    } else {
      if (F64)
        u8(0x66);
      rex(false, Dst, 0, Src);
      u8(0x0F);
    }
    u8(0x2E);
    modrm(3, Dst, Src);
  }

  /// movd Xmm, r32 / movd r32, Xmm.
  void movdToXmm(unsigned Xmm, unsigned R32) {
    if (UseVEX) {
      vex(Xmm, 0, R32, 0, false, 1);
    } else {
      u8(0x66);
      rex(false, Xmm, 0, R32);
      u8(0x0F);
    }
    u8(0x6E);
    modrm(3, Xmm, R32);
  }
  void movdFromXmm(unsigned R32, unsigned Xmm) {
    if (UseVEX) {
      vex(Xmm, 0, R32, 0, false, 1);
    } else {
      u8(0x66);
      rex(false, Xmm, 0, R32);
      u8(0x0F);
    }
    u8(0x7E);
    modrm(3, Xmm, R32);
  }

  /// vzeroupper (only meaningful on AVX hosts).
  void vzeroupper() {
    u8(0xC5);
    u8(0xF8);
    u8(0x77);
  }

private:
  std::vector<uint8_t> Buf;
};

} // namespace codegen
} // namespace vapor

#endif // VAPOR_CODEGEN_EMITTER_H
