//===- codegen/CpuFeatures.h - Runtime host-ISA detection ------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime CPU capability detection for the native x86-64 tier: one CPUID
/// probe at first use decides which encoding set the binary emitter may
/// write (legacy SSE2, VEX-128, VEX-256). This is the "compile once,
/// dispatch on the host ISA at run time" discipline the paper's split
/// compilation enables -- the same MachineIR produced by the online JIT
/// lowers to AVX forms on an AVX host and to plain SSE2 pairs elsewhere,
/// with the cycle-model VM remaining the portable fallback.
///
/// AVX reporting requires more than the CPUID feature bit: the OS must
/// have enabled XSAVE state for the ymm registers (OSXSAVE + XCR0[2:1]),
/// exactly the check real dispatchers perform.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_CODEGEN_CPUFEATURES_H
#define VAPOR_CODEGEN_CPUFEATURES_H

#include <string>

namespace vapor {
namespace codegen {

/// The ISA subsets the emitter can target. X64 is a compile-time fact
/// (this binary runs on x86-64); the rest come from CPUID.
struct CpuFeatures {
  bool X64 = false;
  bool SSE2 = false;
  bool SSE41 = false;
  bool AVX = false;  ///< VEX encodings + 256-bit float ops, OS-enabled.
  bool AVX2 = false; ///< 256-bit integer ops.

  /// "x86-64 sse2 sse4.1 avx avx2" (or "none" when nothing usable).
  std::string str() const;

  /// A canonical bitmask for cache keys: two hosts (or two forced test
  /// configurations) with equal masks produce identical machine code.
  unsigned bits() const {
    return (X64 ? 1u : 0u) | (SSE2 ? 2u : 0u) | (SSE41 ? 4u : 0u) |
           (AVX ? 8u : 0u) | (AVX2 ? 16u : 0u);
  }
};

/// The probed features of this host (CPUID, cached after the first call).
/// All-false on non-x86-64 builds or when VAPOR_NATIVE is compiled out.
const CpuFeatures &hostFeatures();

/// Whether the native tier can run at all with \p FX: requires an x86-64
/// host with SSE2 (the x86-64 baseline) and the emitter compiled in.
bool supported(const CpuFeatures &FX);
bool supported(); // hostFeatures() convenience.

} // namespace codegen
} // namespace vapor

#endif // VAPOR_CODEGEN_CPUFEATURES_H
