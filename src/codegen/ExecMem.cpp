//===- codegen/ExecMem.cpp - W^X executable page management ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "codegen/ExecMem.h"

#ifndef VAPOR_NATIVE_ENABLED
#define VAPOR_NATIVE_ENABLED 1
#endif

#if VAPOR_NATIVE_ENABLED && defined(__unix__)
#include <sys/mman.h>
#include <unistd.h>
#define VAPOR_EXECMEM_LIVE 1
#else
#define VAPOR_EXECMEM_LIVE 0
#endif

using namespace vapor::codegen;

#if VAPOR_EXECMEM_LIVE

bool ExecMem::allocate(size_t Size) {
  if (Ptr || Size == 0)
    return false;
  size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  size_t Rounded = (Size + Page - 1) & ~(Page - 1);
  void *P = mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Ptr = P;
  Len = Size;
  Cap = Rounded;
  Sealed = false;
  return true;
}

bool ExecMem::seal() {
  if (!Ptr || Sealed)
    return false;
  if (mprotect(Ptr, Cap, PROT_READ | PROT_EXEC) != 0) {
    release(); // Never keep writable code around after a failed seal.
    return false;
  }
  Sealed = true;
  return true;
}

void ExecMem::release() {
  if (Ptr) {
    munmap(Ptr, Cap);
    Ptr = nullptr;
  }
  Len = Cap = 0;
  Sealed = false;
}

#else // Portable stub: the native tier stands down on these hosts.

bool ExecMem::allocate(size_t) { return false; }
bool ExecMem::seal() { return false; }
void ExecMem::release() {
  Ptr = nullptr;
  Len = Cap = 0;
  Sealed = false;
}

#endif
