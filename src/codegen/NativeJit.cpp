//===- codegen/NativeJit.cpp - MachineIR -> x86-64 binary emitter ----------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
//
// Bit-exactness strategy: the builder below is a line-for-line mirror of
// the VM decoder's flattening walk (VM.cpp, VMDecoder). It lays out the
// same lane file, visits the region tree in the same order, and keeps an
// op *ordinal* that advances exactly when the decoder would emit a DOp,
// so trap attribution (pre-fusion PC) matches the VM without a mapping
// table. Each op is either lowered to x86-64 whose result provably
// equals the ScalarOps semantics, or compiled to a call into a shim that
// *runs* ScalarOps on the same lane file.
//
//===----------------------------------------------------------------------===//

#include "codegen/NativeJit.h"

#include "codegen/Emitter.h"
#include "ir/ScalarOps.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "support/Support.h"

#include <algorithm>
#include <csetjmp>
#include <cstring>
#include <string>

using namespace vapor;
using namespace vapor::ir;
using namespace vapor::target;
using namespace vapor::codegen;

//===----------------------------------------------------------------------===//
// The deferred-op shim: replays the exact VM handler lane loops over
// ScalarOps. Lane-file only -- never touches guest memory, never traps.
//===----------------------------------------------------------------------===//

namespace vapor {
namespace codegen {
extern "C" void vapor_codegen_shim(NativeContext *Ctx, const NOp *Op) {
  // Deadline checkpoint: shim calls are the native tier's only recurring
  // re-entries into C++, so the fuel budget is decremented here and an
  // exhausted run is abandoned by longjmping out of the generated frame
  // (no destructors are live below run()'s setjmp; the generated code
  // holds no resources). One predictable branch when unfueled.
  if (__builtin_expect(Ctx->FuelLeft != 0, 0) && --Ctx->FuelLeft == 0 &&
      Ctx->DeadlineJmp)
    std::longjmp(*static_cast<std::jmp_buf *>(Ctx->DeadlineJmp), 1);
  uint64_t *R = Ctx->Lanes;
  const NOp &O = *Op;
  switch (O.F) {
  case NOp::Fn::Bin:
    for (uint32_t L = 0; L < O.Lanes; ++L)
      R[O.A + L] = applyBinop(O.Sub, O.Kind, R[O.B + L], R[O.C + L]);
    break;
  case NOp::Fn::Un:
    for (uint32_t L = 0; L < O.Lanes; ++L)
      R[O.A + L] = applyUnop(O.Sub, O.Kind, R[O.B + L]);
    break;
  case NOp::Fn::Cmp:
    for (uint32_t L = 0; L < O.Lanes; ++L)
      R[O.A + L] = applyCompare(O.Sub, O.SrcKind, R[O.B + L], R[O.C + L]);
    break;
  case NOp::Fn::Sel:
    for (uint32_t L = 0; L < O.Lanes; ++L)
      R[O.A + L] = (R[O.B + L] & 1) ? R[O.C + L] : R[O.D + L];
    break;
  case NOp::Fn::Cvt:
    for (uint32_t L = 0; L < O.Lanes; ++L)
      R[O.A + L] = applyConvert(O.SrcKind, O.Kind, R[O.B + L]);
    break;
  case NOp::Fn::WMul: {
    uint64_t Off = O.Imm;
    for (uint32_t J = 0; J < O.Lanes; ++J)
      R[O.A + J] =
          applyBinop(Opcode::Mul, O.Kind,
                     applyConvert(O.SrcKind, O.Kind, R[O.B + Off + J]),
                     applyConvert(O.SrcKind, O.Kind, R[O.C + Off + J]));
    break;
  }
  case NOp::Fn::Pack: {
    uint32_t Half = O.Lanes / 2;
    for (uint32_t L = 0; L < Half; ++L) {
      R[O.A + L] = applyConvert(O.SrcKind, O.Kind, R[O.B + L]);
      R[O.A + Half + L] = applyConvert(O.SrcKind, O.Kind, R[O.C + L]);
    }
    break;
  }
  case NOp::Fn::Unpack: {
    uint64_t Off = O.Imm;
    for (uint32_t J = 0; J < O.Lanes; ++J)
      R[O.A + J] = applyConvert(O.SrcKind, O.Kind, R[O.B + Off + J]);
    break;
  }
  case NOp::Fn::Dot:
    for (uint32_t J = 0; J < O.Lanes; ++J) {
      uint64_t P0 =
          applyBinop(Opcode::Mul, O.Kind,
                     applyConvert(O.SrcKind, O.Kind, R[O.B + 2 * J]),
                     applyConvert(O.SrcKind, O.Kind, R[O.C + 2 * J]));
      uint64_t P1 =
          applyBinop(Opcode::Mul, O.Kind,
                     applyConvert(O.SrcKind, O.Kind, R[O.B + 2 * J + 1]),
                     applyConvert(O.SrcKind, O.Kind, R[O.C + 2 * J + 1]));
      R[O.A + J] = applyBinop(Opcode::Add, O.Kind,
                              applyBinop(Opcode::Add, O.Kind, R[O.D + J], P0),
                              P1);
    }
    break;
  case NOp::Fn::Affine: {
    uint64_t Cur = R[O.B], Inc = R[O.C];
    for (uint32_t L = 0; L < O.Lanes; ++L) {
      R[O.A + L] = Cur;
      Cur = applyBinop(Opcode::Add, O.Kind, Cur, Inc);
    }
    break;
  }
  case NOp::Fn::Reduce: {
    uint64_t Acc = R[O.B];
    for (uint32_t L = 1; L < O.Lanes; ++L)
      Acc = applyBinop(O.Sub, O.Kind, Acc, R[O.B + L]);
    R[O.A] = Acc;
    break;
  }
  }
}
} // namespace codegen
} // namespace vapor

//===----------------------------------------------------------------------===//
// The builder.
//===----------------------------------------------------------------------===//

namespace {

/// A pending jcc into a not-yet-emitted trap stub.
struct TrapFix {
  size_t Pos = 0;      ///< rel32 fixup position.
  uint32_t OpIdx = 0;  ///< Pre-fusion ordinal (~0u for bounds, as VM).
  uint32_t Align = 0;  ///< Required alignment (0 for bounds).
  bool IsStore = false;
  uint32_t Code = 0; ///< Entry return value: 1 align, 2 OOB.
};

class NativeBuilder {
public:
  NativeBuilder(const MFunction &Fn, const MemoryImage &Image,
                const CpuFeatures &Features, const ElisionPlan *Elide,
                NativeUnit &Unit)
      : F(Fn), Mem(Image), FX(Features), Plan(Elide), U(Unit) {
    E.UseVEX = FX.AVX;
  }

  void build() {
    layout();
    prologue();
    region(F.Body);
    E.aluRR(0x31, RAX, RAX, false); // xor eax, eax: clean completion.
    size_t LDone = E.here();
    epilogue();

    // Trap stubs live after the ret; each jcc above lands on its own.
    for (const TrapFix &T : TrapFixes) {
      E.patch32(T.Pos, E.here());
      E.movMR64(RBP, 32, RAX); // TrapAddr (rax holds the address).
      E.movMImm32(RBP, 40, T.OpIdx);
      E.movMImm32(RBP, 44, T.Align);
      E.movMImm8(RBP, 48, T.IsStore ? 1 : 0);
      E.movImm32(RAX, T.Code);
      E.jmpTo(LDone);
    }

    U.OpCount = Ordinal;
    U.Stats.CodeBytes = E.code().size();
    U.Stats.FeaturesUsed = FX.str();
    U.TargetName = F.Name; // Replaced by the target name in compileNative.
  }

  const std::vector<uint8_t> &code() const { return E.code(); }

private:
  const MFunction &F;
  const MemoryImage &Mem;
  const CpuFeatures &FX;
  const ElisionPlan *Plan; ///< Checked elision grants (may be null).
  NativeUnit &U;
  Emitter E;

  std::vector<uint32_t> Off;      ///< Lane-file offset per register.
  std::vector<uint32_t> RegLanes; ///< Lane count per register.
  uint32_t Ordinal = 0;           ///< Pre-fusion PC, lockstep with the VM.
  uint32_t ScratchLane = 0;       ///< Reduction accumulator lane.
  std::vector<TrapFix> TrapFixes;

  static int32_t d(uint32_t Lane) { return static_cast<int32_t>(Lane * 8); }

  //===--- Layout and frame -----------------------------------------------===//

  void layout() {
    // Identical to VMDecoder::decode(): vector registers get VS/ES lanes.
    Off.resize(F.Regs.size());
    RegLanes.resize(F.Regs.size());
    uint32_t Total = 0;
    for (size_t R = 0; R < F.Regs.size(); ++R) {
      unsigned Lanes = 1;
      if (F.Regs[R].Vector && F.VSBytes)
        Lanes = std::max(1u, F.VSBytes / scalarSize(F.Regs[R].Kind));
      Off[R] = Total;
      RegLanes[R] = Lanes;
      Total += Lanes;
    }
    U.LaneCount = Total;
    ScratchLane = Total; // One spare lane for inline reductions.
    U.LaneTotal = Total + 2;
    for (const MParam &P : F.Params) {
      assert(P.Reg < F.Regs.size() && "bad param register");
      U.Params.push_back({P.Name, Off[P.Reg], F.Regs[P.Reg].Kind});
    }
  }

  void prologue() {
    // Entry: rdi = NativeContext*. Pin the hot state in callee-saved
    // registers: rbx = lane base, rbp = ctx, r12 = MemBias, r13 = MemLo,
    // r14 = MemHi. Six pushes + 8 keeps rsp 16-aligned at call sites.
    E.push(RBX);
    E.push(RBP);
    E.push(R12);
    E.push(R13);
    E.push(R14);
    E.push(R15);
    E.subImm64(RSP, 8);
    E.movRR64(RBP, RDI);
    E.movRM64(RBX, RDI, 0);
    E.movRM64(R12, RDI, 8);
    E.movRM64(R13, RDI, 16);
    E.movRM64(R14, RDI, 24);
  }

  void epilogue() {
    if (E.UseVEX)
      E.vzeroupper();
    E.addImm64(RSP, 8);
    E.pop(R15);
    E.pop(R14);
    E.pop(R13);
    E.pop(R12);
    E.pop(RBP);
    E.pop(RBX);
    E.ret();
  }

  //===--- Trap checks ----------------------------------------------------===//
  // The faulting address must be in rax when the jcc fires.

  void alignCheck(uint32_t Mask, uint32_t Ord, bool IsStore) {
    if (!Mask)
      return; // Scalar-width "vectors" are always aligned.
    E.testImm(RAX, Mask);
    TrapFixes.push_back({E.jcc(CC::NE), Ord, Mask + 1, IsStore, 1});
  }

  void boundsCheck(uint64_t Size) {
    // VM: Addr < MemLo || Addr + Size > MemHi, with uint64 wraparound.
    E.cmpRR64(RAX, R13);
    TrapFixes.push_back({E.jcc(CC::B), ~0u, 0, false, 2});
    E.lea(RCX, RAX, static_cast<int32_t>(Size));
    E.cmpRR64(RCX, R14);
    TrapFixes.push_back({E.jcc(CC::A), ~0u, 0, false, 2});
  }

  /// Audit-mode counting: increments the context counters when the
  /// check predicate would genuinely fire, leaving all trap checks
  /// live. Mirrors the VM's auditCount preamble.
  void auditAlign(uint32_t Mask) {
    if (!Mask)
      return;
    E.testImm(RAX, Mask);
    size_t Skip = E.jcc(CC::E);
    E.incM64(RBP, 56); // NativeContext::AuditAlign
    E.patch32(Skip, E.here());
  }

  void auditBounds(uint64_t Size) {
    E.cmpRR64(RAX, R13);
    size_t Fire1 = E.jcc(CC::B);
    E.lea(RCX, RAX, static_cast<int32_t>(Size));
    E.cmpRR64(RCX, R14);
    size_t Fire2 = E.jcc(CC::A);
    size_t Skip = E.jmp();
    E.patch32(Fire1, E.here());
    E.patch32(Fire2, E.here());
    E.incM64(RBP, 64); // NativeContext::AuditBounds
    E.patch32(Skip, E.here());
  }

  /// Emits the check sequence for a memory access whose address is in
  /// rax, honoring the elision plan with exactly the VM decoder's
  /// VMCheck mapping: on aligned ops the align grant gates everything
  /// (a bounds-only grant elides nothing); audit mode keeps every check
  /// live and counts would-have-fired predicates first.
  void memChecks(const MInstr &I, bool Aligned, uint32_t Ord, bool IsStore,
                 uint64_t Size) {
    uint8_t G = Plan ? Plan->provenBits(I.SrcInstr) : 0;
    bool Audit = Plan && Plan->Mode == ElisionMode::Audit;
    if (Aligned) {
      uint32_t Mask = F.VSBytes - 1;
      if (Audit && (G & ElisionPlan::AlignBit)) {
        // The VM's AuditAlign state counts both predicates.
        auditAlign(Mask);
        auditBounds(Size);
      }
      bool ElideA = !Audit && (G & ElisionPlan::AlignBit);
      if (!ElideA)
        alignCheck(Mask, Ord, IsStore);
      if (!(ElideA && (G & ElisionPlan::BoundsBit)))
        boundsCheck(Size);
    } else {
      if (Audit && (G & ElisionPlan::BoundsBit))
        auditBounds(Size);
      if (Audit || !(G & ElisionPlan::BoundsBit))
        boundsCheck(Size);
    }
  }

  //===--- Region walk (mirrors VMDecoder) --------------------------------===//

  void region(const MRegion &R) {
    for (const MNodeRef &N : R.Nodes) {
      switch (N.Kind) {
      case MNodeKind::Instr:
        instr(F.Instrs[N.Index]);
        break;
      case MNodeKind::Loop:
        loop(F.Loops[N.Index]);
        break;
      case MNodeKind::If:
        ifStmt(F.Ifs[N.Index]);
        break;
      }
    }
  }

  /// Synthetic full-register copy (loop plumbing). One ordinal, exactly
  /// like the decoder's emitCopy -- skipped entirely when Dst == Src.
  void emitCopy(MReg Dst, MReg Src) {
    if (Dst == Src)
      return;
    copyLanes(Off[Dst], Off[Src], RegLanes[Dst]);
    ++Ordinal;
  }

  void loop(const MLoop &L) {
    emitCopy(L.IndVar, L.Lower);
    for (const MLoop::CarriedVar &C : L.Carried)
      emitCopy(C.Phi, C.Init);
    // HEAD: if ((int64)iv >= (int64)upper) goto END.
    size_t HeadPos = E.here();
    E.movRM64(RAX, RBX, d(Off[L.IndVar]));
    E.cmpRM64(RAX, RBX, d(Off[L.Upper]));
    size_t ExitFix = E.jcc(CC::GE);
    ++Ordinal; // The head DOp.

    region(L.Body);

    for (const MLoop::CarriedVar &C : L.Carried)
      if (C.Next != NoReg)
        emitCopy(C.Phi, C.Next);
    // LATCH: iv += step; goto HEAD.
    E.movRM64(RAX, RBX, d(Off[L.Step]));
    E.aluMR64(0x01, RBX, d(Off[L.IndVar]), RAX);
    ++Ordinal; // The latch DOp.
    E.jmpTo(HeadPos);
    E.patch32(ExitFix, E.here());
  }

  void ifStmt(const MIf &S) {
    E.testM8(RBX, d(Off[S.Cond]), 1);
    size_t ElseFix = E.jcc(CC::E);
    ++Ordinal; // The branch DOp.
    region(S.Then);
    size_t EndFix = E.jmp();
    ++Ordinal; // The jump DOp.
    E.patch32(ElseFix, E.here());
    region(S.Else);
    E.patch32(EndFix, E.here());
  }

  //===--- Lane-level code patterns ---------------------------------------===//

  /// Loads lane \p Lane decoded per \p K: sign-extended for signed
  /// sub-64 kinds, canonical (zero-extended) otherwise.
  void loadDecoded(unsigned Dst, uint32_t Lane, ScalarKind K) {
    unsigned ES = scalarSize(K);
    if (isSignedKind(K) && ES < 8)
      E.movsxRM(Dst, RBX, d(Lane), ES);
    else
      E.movRM64(Dst, RBX, d(Lane));
  }

  /// Masks \p Reg back to the canonical encoding of \p K.
  void maskTo(unsigned Reg, ScalarKind K) {
    unsigned ES = scalarSize(K);
    if (ES >= 8)
      return;
    if (ES == 4)
      E.movRR32(Reg, Reg); // mov r32, r32 zero-extends.
    else
      E.andImm32(Reg, static_cast<uint32_t>(laneMask(K)));
  }

  /// Stores xmm0 to lane \p Lane canonically (F32 zero-extends the
  /// 32-bit pattern through a GPR; a movss store would leave stale
  /// high bytes in the slot).
  void storeF(ScalarKind K, uint32_t Lane) {
    if (K == ScalarKind::F64) {
      E.sseMemDisp(3, 0x11, 0, RBX, d(Lane)); // movsd [lane], xmm0
    } else {
      E.movdFromXmm(RAX, 0); // movd eax, xmm0 (zero-extends).
      E.movMR64(RBX, d(Lane), RAX);
    }
  }

  static bool fpOpc(Opcode Op, uint8_t &Opc) {
    switch (Op) {
    case Opcode::Add:
      Opc = 0x58;
      return true;
    case Opcode::Sub:
      Opc = 0x5C;
      return true;
    case Opcode::Mul:
      Opc = 0x59;
      return true;
    case Opcode::Div:
      Opc = 0x5E;
      return true;
    case Opcode::Min:
      Opc = 0x5D; // minsd(X, Y) == X < Y ? X : Y, NaN -> Y: exact match.
      return true;
    case Opcode::Max:
      Opc = 0x5F; // maxsd(X, Y) == X > Y ? X : Y, NaN -> Y: exact match.
      return true;
    default:
      return false;
    }
  }

  /// Legacy-SSE packed integer opcodes usable on canonical 64-bit lanes.
  static bool intPackedOpc(Opcode Op, uint8_t &Opc) {
    switch (Op) {
    case Opcode::Add:
      Opc = 0xD4; // paddq
      return true;
    case Opcode::Sub:
      Opc = 0xFB; // psubq
      return true;
    case Opcode::And:
      Opc = 0xDB; // pand
      return true;
    case Opcode::Or:
      Opc = 0xEB; // por
      return true;
    case Opcode::Xor:
      Opc = 0xEF; // pxor
      return true;
    default:
      return false;
    }
  }

  /// SSE2 byte/word-wise packed forms that are lane-exact on canonical
  /// 64-bit lane slots: the live value sits in byte/word 0 of each slot
  /// and the zero high bytes are fixpoints of the operation (0 satop 0,
  /// min/max(0, 0) == 0), so a 16-byte chunk processes 2 lanes at once
  /// without ever mixing them. Restricted to the kinds whose ScalarOps
  /// semantics the hardware form matches exactly: saturating ops on the
  /// kind of their signedness, pmin/pmaxub on U8, pmin/pmaxsw on I16
  /// (the only narrow min/max encodings legacy SSE2 has).
  static bool narrowPackedOpc(Opcode Op, ScalarKind K, uint8_t &Opc) {
    bool S = isSignedKind(K);
    if (scalarSize(K) == 1) {
      switch (Op) {
      case Opcode::AddSatS:
        Opc = 0xEC; // paddsb
        return S;
      case Opcode::SubSatS:
        Opc = 0xE8; // psubsb
        return S;
      case Opcode::AddSatU:
        Opc = 0xDC; // paddusb
        return !S;
      case Opcode::SubSatU:
        Opc = 0xD8; // psubusb
        return !S;
      case Opcode::Min:
        Opc = 0xDA; // pminub
        return !S;
      case Opcode::Max:
        Opc = 0xDE; // pmaxub
        return !S;
      default:
        return false;
      }
    }
    if (scalarSize(K) == 2) {
      switch (Op) {
      case Opcode::AddSatS:
        Opc = 0xED; // paddsw
        return S;
      case Opcode::SubSatS:
        Opc = 0xE9; // psubsw
        return S;
      case Opcode::AddSatU:
        Opc = 0xDD; // paddusw
        return !S;
      case Opcode::SubSatU:
        Opc = 0xD9; // psubusw
        return !S;
      case Opcode::Min:
        Opc = 0xEA; // pminsw
        return S;
      case Opcode::Max:
        Opc = 0xEE; // pmaxsw
        return S;
      default:
        return false;
      }
    }
    return false;
  }

  static bool inlinableBin(Opcode Op, ScalarKind K) {
    if (K == ScalarKind::None || K == ScalarKind::I1)
      return false; // ScalarOps' kind dispatch is subtle there: shim.
    if (isFloatKind(K)) {
      uint8_t Opc;
      return fpOpc(Op, Opc);
    }
    switch (Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::Shl:
    case Opcode::ShrL:
    case Opcode::ShrA:
      return true;
    case Opcode::AddSatS:
    case Opcode::AddSatU:
    case Opcode::SubSatS:
    case Opcode::SubSatU:
      // Narrow kinds only (the verifier's contract); the clamp bounds
      // then fit an imm and the 64-bit intermediate cannot overflow.
      return scalarSize(K) <= 2;
    default:
      return false; // Div/Rem keep the VM's assert-on-zero via the shim.
    }
  }

  static bool inlinableUn(Opcode Op, ScalarKind K) {
    if (K == ScalarKind::None || K == ScalarKind::I1)
      return false;
    if (isFloatKind(K))
      return Op == Opcode::Neg || Op == Opcode::Abs || Op == Opcode::Sqrt;
    return Op == Opcode::Neg || Op == Opcode::Abs;
  }

  /// One scalar lane of applyBinop, lane-file in, lane-file out.
  void binLane(Opcode Sub, ScalarKind K, uint32_t A, uint32_t B, uint32_t C) {
    unsigned ES = scalarSize(K);
    if (isFloatKind(K)) {
      unsigned PP = K == ScalarKind::F64 ? 3 : 2; // F2 sd / F3 ss.
      uint8_t Opc = 0;
      fpOpc(Sub, Opc);
      E.sseMemDisp(PP, 0x10, 0, RBX, d(B)); // movs[sd] xmm0, [B]
      E.sseRM(PP, Opc, 0, RBX, d(C));       // op xmm0, [C]
      storeF(K, A);
      return;
    }
    switch (Sub) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor: {
      // Canonical-in, canonical-out: 64-bit ops for ES==8, 32-bit ops
      // (auto zero-extending) for ES==4, 32-bit + mask below that.
      uint8_t Opc = Sub == Opcode::Add   ? 0x03
                    : Sub == Opcode::Sub ? 0x2B
                    : Sub == Opcode::And ? 0x23
                    : Sub == Opcode::Or  ? 0x0B
                                         : 0x33;
      E.movRM64(RAX, RBX, d(B));
      E.aluRM(Opc, RAX, RBX, d(C), /*W=*/ES == 8);
      if (ES < 4)
        E.andImm32(RAX, static_cast<uint32_t>(laneMask(K)));
      break;
    }
    case Opcode::Mul:
      E.movRM64(RAX, RBX, d(B));
      E.imulRM(RAX, RBX, d(C), /*W=*/ES == 8);
      if (ES < 4)
        E.andImm32(RAX, static_cast<uint32_t>(laneMask(K)));
      break;
    case Opcode::Min:
    case Opcode::Max: {
      loadDecoded(RAX, B, K);
      loadDecoded(RCX, C, K);
      E.cmpRR64(RAX, RCX);
      bool S = isSignedKind(K);
      CC C2 = Sub == Opcode::Min ? (S ? CC::G : CC::A)  // replace if X > Y
                                 : (S ? CC::L : CC::B); // replace if X < Y
      E.cmov(C2, RAX, RCX);
      if (S)
        maskTo(RAX, K);
      break;
    }
    case Opcode::Shl:
      E.movRM64(RCX, RBX, d(C));
      E.andImm32(RCX, ES * 8 - 1);
      E.movRM64(RAX, RBX, d(B));
      E.shiftCl(4, RAX, /*W=*/ES == 8);
      if (ES < 4)
        E.andImm32(RAX, static_cast<uint32_t>(laneMask(K)));
      break;
    case Opcode::ShrL:
      E.movRM64(RCX, RBX, d(C));
      E.andImm32(RCX, ES * 8 - 1);
      E.movRM64(RAX, RBX, d(B)); // Canonical >> amt stays canonical.
      E.shiftCl(5, RAX, /*W=*/true);
      break;
    case Opcode::ShrA:
      E.movRM64(RCX, RBX, d(C));
      E.andImm32(RCX, ES * 8 - 1);
      loadDecoded(RAX, B, K); // sar of the sign-extended value...
      E.shiftCl(7, RAX, /*W=*/true);
      if (isSignedKind(K))
        maskTo(RAX, K); // ...re-encoded. Unsigned decode is nonneg: exact.
      break;
    case Opcode::AddSatS:
    case Opcode::AddSatU:
    case Opcode::SubSatS:
    case Opcode::SubSatU: {
      // Decoded 64-bit add/sub, then a two-sided clamp to the kind's
      // range. Narrow kinds only (inlinableBin), so the intermediate
      // never overflows and both bounds fit a signed imm.
      bool S = Sub == Opcode::AddSatS || Sub == Opcode::SubSatS;
      loadDecoded(RAX, B, K);
      loadDecoded(RCX, C, K);
      if (Sub == Opcode::AddSatS || Sub == Opcode::AddSatU)
        E.addRR64(RAX, RCX);
      else
        E.subRR64(RAX, RCX);
      uint64_t Hi = S ? laneMask(K) >> 1 : laneMask(K);
      E.movImm64(RCX, Hi);
      E.cmpRR64(RAX, RCX);
      E.cmov(CC::G, RAX, RCX);
      E.movImm64(RCX, S ? ~Hi : 0); // Signed low bound is -(Hi+1).
      E.cmpRR64(RAX, RCX);
      E.cmov(CC::L, RAX, RCX);
      E.andImm32(RAX, static_cast<uint32_t>(laneMask(K)));
      break;
    }
    default:
      vapor_unreachable("binLane on a non-inlinable opcode");
    }
    E.movMR64(RBX, d(A), RAX);
  }

  /// One scalar lane of applyCompare at operand kind \p SK. I1 operands
  /// decode to 0/1 either way, so the unsigned path covers them.
  void cmpLane(Opcode Sub, ScalarKind SK, uint32_t A, uint32_t B, uint32_t C) {
    CC Cond;
    if (isFloatKind(SK)) {
      bool F64 = SK == ScalarKind::F64;
      unsigned PP = F64 ? 3 : 2;
      E.sseMemDisp(PP, 0x10, 0, RBX, d(B));
      E.sseMemDisp(PP, 0x10, 1, RBX, d(C));
      // The VM compares through a 3-way Rel with NaN -> 0 ("equal"), so
      // EQ/LE/GE are *true* on NaN and LT/GT/NE false. ucomis flags on
      // unordered (ZF=CF=1) give exactly that with the codes below.
      switch (Sub) {
      case Opcode::CmpEQ:
        E.ucomis(F64, 0, 1);
        Cond = CC::E;
        break;
      case Opcode::CmpNE:
        E.ucomis(F64, 0, 1);
        Cond = CC::NE;
        break;
      case Opcode::CmpGT:
        E.ucomis(F64, 0, 1);
        Cond = CC::A;
        break;
      case Opcode::CmpLE:
        E.ucomis(F64, 0, 1);
        Cond = CC::BE;
        break;
      case Opcode::CmpLT: // X < Y  ==  Y > X with swapped operands.
        E.ucomis(F64, 1, 0);
        Cond = CC::A;
        break;
      default: // CmpGE == Y <= X swapped.
        E.ucomis(F64, 1, 0);
        Cond = CC::BE;
        break;
      }
    } else {
      bool S = isSignedKind(SK);
      if (S) {
        loadDecoded(RAX, B, SK);
        loadDecoded(RCX, C, SK);
      } else {
        E.movRM64(RAX, RBX, d(B));
        E.movRM64(RCX, RBX, d(C));
      }
      E.cmpRR64(RAX, RCX);
      switch (Sub) {
      case Opcode::CmpEQ:
        Cond = CC::E;
        break;
      case Opcode::CmpNE:
        Cond = CC::NE;
        break;
      case Opcode::CmpLT:
        Cond = S ? CC::L : CC::B;
        break;
      case Opcode::CmpLE:
        Cond = S ? CC::LE : CC::BE;
        break;
      case Opcode::CmpGT:
        Cond = S ? CC::G : CC::A;
        break;
      default:
        Cond = S ? CC::GE : CC::AE;
        break;
      }
    }
    E.setcc(Cond, RAX);
    E.movzxR8(RAX, RAX);
    E.movMR64(RBX, d(A), RAX);
  }

  void selLane(uint32_t A, uint32_t B, uint32_t C, uint32_t Dl) {
    E.movRM64(RCX, RBX, d(C));
    E.movRM64(RDX, RBX, d(Dl));
    E.testM8(RBX, d(B), 1);
    E.cmov(CC::E, RCX, RDX); // Bit clear -> take the else value.
    E.movMR64(RBX, d(A), RCX);
  }

  void unLane(Opcode Sub, ScalarKind K, uint32_t A, uint32_t B) {
    if (isFloatKind(K)) {
      bool F64 = K == ScalarKind::F64;
      if (Sub == Opcode::Sqrt) {
        unsigned PP = F64 ? 3 : 2;
        E.sseMemDisp(PP, 0x10, 0, RBX, d(B));
        E.sseRR(PP, 0x51, 0, 0); // sqrts[sd] xmm0, xmm0
        storeF(K, A);
        return;
      }
      // Neg/Abs are sign-bit games on the raw encoding.
      E.movRM64(RAX, RBX, d(B));
      if (F64) {
        E.movImm64(RCX, Sub == Opcode::Neg ? 0x8000000000000000ULL
                                           : 0x7FFFFFFFFFFFFFFFULL);
        if (Sub == Opcode::Neg)
          E.xorRR64(RAX, RCX);
        else
          E.andRR64(RAX, RCX);
      } else {
        if (Sub == Opcode::Neg)
          E.aluImm32(6, RAX, static_cast<int32_t>(0x80000000u), false);
        else
          E.andImm32(RAX, 0x7FFFFFFFu);
      }
      E.movMR64(RBX, d(A), RAX);
      return;
    }
    // Integer Neg/Abs on the decoded value, re-encoded. Abs follows
    // decodeInt exactly, including U64's wrap-through-signed behavior.
    loadDecoded(RAX, B, K);
    if (Sub == Opcode::Neg) {
      E.negR(RAX, true);
    } else {
      E.movRR64(RCX, RAX);
      E.negR(RCX, true);
      E.testRR64(RAX, RAX);
      E.cmov(CC::S, RAX, RCX);
    }
    maskTo(RAX, K);
    E.movMR64(RBX, d(A), RAX);
  }

  //===--- Vector helpers -------------------------------------------------===//

  /// Lane-file block copy; SIMD-chunked (addresses are 16B-aligned only
  /// by luck, so always the unaligned encodings).
  void copyLanes(uint32_t Dst, uint32_t Src, uint32_t Lanes) {
    if (Dst == Src)
      return;
    uint32_t L = 0;
    while (FX.AVX && Lanes - L >= 4) {
      E.sseMemDisp(2, 0x6F, 0, RBX, d(Src + L), /*L256=*/true);
      E.sseMemDisp(2, 0x7F, 0, RBX, d(Dst + L), /*L256=*/true);
      ++U.Stats.VexChunks;
      L += 4;
    }
    while (Lanes - L >= 2) {
      E.sseMemDisp(2, 0x6F, 0, RBX, d(Src + L));
      E.sseMemDisp(2, 0x7F, 0, RBX, d(Dst + L));
      L += 2;
    }
    for (; L < Lanes; ++L) {
      E.movRM64(RAX, RBX, d(Src + L));
      E.movMR64(RBX, d(Dst + L), RAX);
    }
  }

  /// Lane-wise binop over a register; packs canonical 64-bit lanes with
  /// SSE2/VEX where an exact packed form exists, scalar otherwise.
  void vecBin(Opcode Sub, ScalarKind K, uint32_t A, uint32_t B, uint32_t C,
              uint32_t Lanes) {
    uint8_t Opc = 0;
    unsigned LoadPP = 0, OpPP = 0;
    uint8_t LoadOpc = 0, StoreOpc = 0;
    bool Packed = false, YmmOk = false;
    if (scalarSize(K) == 8) {
      if (K == ScalarKind::F64 && fpOpc(Sub, Opc)) {
        // movupd + packed-double arithmetic; IEEE ops are lane-exact.
        Packed = true;
        LoadPP = 1;
        OpPP = 1;
        LoadOpc = 0x10;
        StoreOpc = 0x11;
        YmmOk = FX.AVX;
      } else if (isIntKind(K) && intPackedOpc(Sub, Opc)) {
        // movdqu + 64-bit packed int; wraparound is lane-exact.
        Packed = true;
        LoadPP = 2;
        OpPP = 1;
        LoadOpc = 0x6F;
        StoreOpc = 0x7F;
        YmmOk = FX.AVX2; // 256-bit integer ALU needs AVX2, not AVX.
      }
    } else if (isIntKind(K) && scalarSize(K) <= 2 &&
               narrowPackedOpc(Sub, K, Opc)) {
      // Saturating / narrow min-max forms, 2 canonical slots per chunk
      // (see narrowPackedOpc for the lane-exactness argument).
      Packed = true;
      LoadPP = 2;
      OpPP = 1;
      LoadOpc = 0x6F;
      StoreOpc = 0x7F;
      YmmOk = FX.AVX2;
    }
    // Both operands go through unaligned loads and the arithmetic is
    // register-register: lane-file vectors start at arbitrary 8-byte
    // offsets, and legacy-SSE packed ops with memory operands #GP on
    // anything not 16-aligned (VEX forms tolerate it, but the code must
    // be correct on the SSE2 baseline too).
    uint32_t L = 0;
    if (Packed) {
      while (YmmOk && Lanes - L >= 4) {
        E.sseMemDisp(LoadPP, LoadOpc, 0, RBX, d(B + L), /*L256=*/true);
        E.sseMemDisp(LoadPP, LoadOpc, 1, RBX, d(C + L), /*L256=*/true);
        E.sseRR(OpPP, Opc, 0, 1, /*L256=*/true);
        E.sseMemDisp(LoadPP, StoreOpc, 0, RBX, d(A + L), /*L256=*/true);
        ++U.Stats.PackedOps;
        ++U.Stats.VexChunks;
        L += 4;
      }
      while (Lanes - L >= 2) {
        E.sseMemDisp(LoadPP, LoadOpc, 0, RBX, d(B + L));
        E.sseMemDisp(LoadPP, LoadOpc, 1, RBX, d(C + L));
        E.sseRR(OpPP, Opc, 0, 1);
        E.sseMemDisp(LoadPP, StoreOpc, 0, RBX, d(A + L));
        ++U.Stats.PackedOps;
        L += 2;
      }
    }
    for (; L < Lanes; ++L)
      binLane(Sub, K, A + L, B + L, C + L);
  }

  //===--- Guest memory ---------------------------------------------------===//
  // Guest virtual address in rax; host pointer is [rax + r12 (+ disp)].
  // Guest buffers carry no alignment promise to *us*, so every host
  // access uses unaligned encodings; the architectural alignment trap
  // is the explicit check, exactly like the VM.

  void vload(const MInstr &I, bool Aligned, uint32_t Ord) {
    uint32_t A = Off[I.Dst], Lanes = RegLanes[I.Dst];
    unsigned ES = scalarSize(I.Kind);
    E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
    memChecks(I, Aligned, Ord, /*IsStore=*/false,
              static_cast<uint64_t>(Lanes) * ES);
    if (ES == 8) {
      uint32_t L = 0;
      while (FX.AVX && Lanes - L >= 4) {
        E.sseMemSib(2, 0x6F, 0, RAX, R12, d(L), /*L256=*/true);
        E.sseMemDisp(2, 0x7F, 0, RBX, d(A + L), /*L256=*/true);
        ++U.Stats.PackedOps;
        ++U.Stats.VexChunks;
        L += 4;
      }
      while (Lanes - L >= 2) {
        E.sseMemSib(2, 0x6F, 0, RAX, R12, d(L));
        E.sseMemDisp(2, 0x7F, 0, RBX, d(A + L));
        ++U.Stats.PackedOps;
        L += 2;
      }
      for (; L < Lanes; ++L) {
        E.movRMSib(RCX, RAX, R12, d(L), 8);
        E.movMR64(RBX, d(A + L), RCX);
      }
    } else {
      // Sub-64 lanes: per-lane zero-extending loads (ld<ES> semantics).
      for (uint32_t L = 0; L < Lanes; ++L) {
        E.movRMSib(RCX, RAX, R12, static_cast<int32_t>(L * ES), ES);
        E.movMR64(RBX, d(A + L), RCX);
      }
    }
  }

  void vstore(const MInstr &I, bool Aligned, uint32_t Ord) {
    uint32_t B = Off[I.Srcs[1]], Lanes = RegLanes[I.Srcs[1]];
    unsigned ES = scalarSize(I.Kind);
    E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
    memChecks(I, Aligned, Ord, /*IsStore=*/true,
              static_cast<uint64_t>(Lanes) * ES);
    if (ES == 8) {
      uint32_t L = 0;
      while (FX.AVX && Lanes - L >= 4) {
        E.sseMemDisp(2, 0x6F, 0, RBX, d(B + L), /*L256=*/true);
        E.sseMemSib(2, 0x7F, 0, RAX, R12, d(L), /*L256=*/true);
        ++U.Stats.PackedOps;
        ++U.Stats.VexChunks;
        L += 4;
      }
      while (Lanes - L >= 2) {
        E.sseMemDisp(2, 0x6F, 0, RBX, d(B + L));
        E.sseMemSib(2, 0x7F, 0, RAX, R12, d(L));
        ++U.Stats.PackedOps;
        L += 2;
      }
      for (; L < Lanes; ++L) {
        E.movRM64(RCX, RBX, d(B + L));
        E.movMRSib(RAX, R12, d(L), RCX, 8);
      }
    } else {
      // st<ES>: the low ES bytes of each lane.
      for (uint32_t L = 0; L < Lanes; ++L) {
        E.movRM64(RCX, RBX, d(B + L));
        E.movMRSib(RAX, R12, static_cast<int32_t>(L * ES), RCX, ES);
      }
    }
  }

  //===--- Shim plumbing --------------------------------------------------===//

  void emitShim(MOp Op, const NOp &N) {
    U.Shims.push_back(N);
    const NOp *P = &U.Shims.back(); // deque: stable across growth.
    if (E.UseVEX)
      E.vzeroupper(); // Don't make the C++ shim pay SSE-transition costs.
    E.movRR64(RDI, RBP);
    E.movImm64(RSI, reinterpret_cast<uintptr_t>(P));
    E.movImm64(RAX, reinterpret_cast<uintptr_t>(&vapor_codegen_shim));
    E.callR(RAX);
    ++U.Stats.HelperOps;
    ++U.Stats.HelperByOp[static_cast<unsigned>(Op)];
  }

  void countInline(MOp Op) {
    ++U.Stats.InlineOps;
    ++U.Stats.InlineByOp[static_cast<unsigned>(Op)];
  }

  //===--- Instruction lowering (mirrors VMDecoder::instr) ----------------===//

  void setImm(uint32_t A, uint64_t V) {
    E.movImm64(RAX, V);
    E.movMR64(RBX, d(A), RAX);
  }

  static unsigned log2Size(unsigned Bytes) {
    return static_cast<unsigned>(__builtin_ctz(Bytes));
  }

  void alu(const MInstr &I, uint32_t Ord) {
    (void)Ord;
    if (isCompare(I.SubOp)) {
      ScalarKind SK = F.Regs[I.Srcs[0]].Kind;
      uint32_t Lanes = RegLanes[I.Srcs[0]];
      if (SK == ScalarKind::None) {
        NOp N;
        N.F = NOp::Fn::Cmp;
        N.Sub = I.SubOp;
        N.SrcKind = SK;
        N.A = Off[I.Dst];
        N.B = Off[I.Srcs[0]];
        N.C = Off[I.Srcs[1]];
        N.Lanes = Lanes;
        emitShim(MOp::Alu, N);
        return;
      }
      for (uint32_t L = 0; L < Lanes; ++L)
        cmpLane(I.SubOp, SK, Off[I.Dst] + L, Off[I.Srcs[0]] + L,
                Off[I.Srcs[1]] + L);
      countInline(MOp::Alu);
      return;
    }
    switch (I.SubOp) {
    case Opcode::Select: {
      uint32_t Lanes = RegLanes[I.Dst];
      for (uint32_t L = 0; L < Lanes; ++L)
        selLane(Off[I.Dst] + L, Off[I.Srcs[0]] + L, Off[I.Srcs[1]] + L,
                Off[I.Srcs[2]] + L);
      countInline(MOp::Alu);
      return;
    }
    case Opcode::Convert: {
      NOp N;
      N.F = NOp::Fn::Cvt;
      N.Kind = I.Kind;
      N.SrcKind = F.Regs[I.Srcs[0]].Kind;
      N.A = Off[I.Dst];
      N.B = Off[I.Srcs[0]];
      N.Lanes = RegLanes[I.Dst];
      emitShim(MOp::Alu, N);
      return;
    }
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Sqrt: {
      uint32_t Lanes = RegLanes[I.Dst];
      if (!inlinableUn(I.SubOp, I.Kind)) {
        NOp N;
        N.F = NOp::Fn::Un;
        N.Sub = I.SubOp;
        N.Kind = I.Kind;
        N.A = Off[I.Dst];
        N.B = Off[I.Srcs[0]];
        N.Lanes = Lanes;
        emitShim(MOp::Alu, N);
        return;
      }
      for (uint32_t L = 0; L < Lanes; ++L)
        unLane(I.SubOp, I.Kind, Off[I.Dst] + L, Off[I.Srcs[0]] + L);
      countInline(MOp::Alu);
      return;
    }
    default: {
      uint32_t Lanes = RegLanes[I.Dst];
      if (!inlinableBin(I.SubOp, I.Kind)) {
        NOp N;
        N.F = NOp::Fn::Bin;
        N.Sub = I.SubOp;
        N.Kind = I.Kind;
        N.A = Off[I.Dst];
        N.B = Off[I.Srcs[0]];
        N.C = Off[I.Srcs[1]];
        N.Lanes = Lanes;
        emitShim(MOp::Alu, N);
        return;
      }
      vecBin(I.SubOp, I.Kind, Off[I.Dst], Off[I.Srcs[0]], Off[I.Srcs[1]],
             Lanes);
      countInline(MOp::Alu);
      return;
    }
    }
  }

  void instr(const MInstr &I) {
    uint32_t Ord = Ordinal; // This op's pre-fusion PC.
    switch (I.Op) {
    case MOp::LdImm: {
      ScalarKind K = I.Kind == ScalarKind::None ? ScalarKind::I64 : I.Kind;
      setImm(Off[I.Dst], encodeInt(K, I.Imm));
      countInline(I.Op);
      break;
    }
    case MOp::LdFImm:
      setImm(Off[I.Dst], encodeFP(I.Kind, I.FImm));
      countInline(I.Op);
      break;
    case MOp::LoadBase:
      assert(I.Array < Mem.arrayCount() &&
             "loadbase of an array missing from the memory image");
      setImm(Off[I.Dst], Mem.base(I.Array));
      countInline(I.Op);
      break;
    case MOp::Mov:
      copyLanes(Off[I.Dst], Off[I.Srcs[0]], RegLanes[I.Dst]);
      countInline(I.Op);
      break;
    case MOp::Addr:
      E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
      E.movRM64(RCX, RBX, d(Off[I.Srcs[1]]));
      if (unsigned Sh = log2Size(I.Scale))
        E.shiftImm(4, RCX, static_cast<uint8_t>(Sh), true);
      E.addRR64(RAX, RCX);
      E.movMR64(RBX, d(Off[I.Dst]), RAX);
      countInline(I.Op);
      break;
    case MOp::Alu:
      alu(I, Ord);
      break;
    case MOp::Load: {
      unsigned ES = scalarSize(I.Kind);
      E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
      memChecks(I, /*Aligned=*/false, Ord, /*IsStore=*/false, ES);
      E.movRMSib(RCX, RAX, R12, 0, ES); // Zero-extends: ld<ES>.
      E.movMR64(RBX, d(Off[I.Dst]), RCX);
      countInline(I.Op);
      break;
    }
    case MOp::Store: {
      unsigned ES = scalarSize(I.Kind);
      E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
      memChecks(I, /*Aligned=*/false, Ord, /*IsStore=*/true, ES);
      E.movRM64(RCX, RBX, d(Off[I.Srcs[1]]));
      E.movMRSib(RAX, R12, 0, RCX, ES);
      countInline(I.Op);
      break;
    }
    case MOp::VLoadA:
    case MOp::VLoadU:
      vload(I, I.Op == MOp::VLoadA, Ord);
      countInline(I.Op);
      break;
    case MOp::VStoreA:
    case MOp::VStoreU:
      vstore(I, I.Op == MOp::VStoreA, Ord);
      countInline(I.Op);
      break;
    case MOp::GetPerm:
      E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
      E.andImm32(RAX, F.VSBytes - 1);
      E.movMR64(RBX, d(Off[I.Dst]), RAX);
      countInline(I.Op);
      break;
    case MOp::VPerm: {
      uint32_t A = Off[I.Dst], Lanes = RegLanes[I.Dst];
      uint32_t B = Off[I.Srcs[0]], C = Off[I.Srcs[1]];
      unsigned Sh = log2Size(scalarSize(I.Kind));
      E.movRM64(RDX, RBX, d(Off[I.Srcs[2]])); // Token, read once.
      if (Sh)
        E.shiftImm(5, RDX, static_cast<uint8_t>(Sh), true);
      for (uint32_t L = 0; L < Lanes; ++L) {
        // Pos = token + L; pick from B when Pos < Lanes, else C. Only
        // the selected side is *read* -- lane-by-lane like the VM, so
        // permutes that alias their own destination stay bit-exact.
        E.lea(RCX, RDX, static_cast<int32_t>(L));
        E.aluImm32(7, RCX, static_cast<int32_t>(Lanes), true); // cmp
        size_t FromB = E.jcc(CC::B);
        E.movRM64Scale8(RSI, RBX, RCX,
                        d(C) - static_cast<int32_t>(Lanes * 8));
        size_t Done = E.jmp();
        E.patch32(FromB, E.here());
        E.movRM64Scale8(RSI, RBX, RCX, d(B));
        E.patch32(Done, E.here());
        E.movMR64(RBX, d(A + L), RSI);
      }
      countInline(I.Op);
      break;
    }
    case MOp::VSplat: {
      E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
      uint32_t A = Off[I.Dst], Lanes = RegLanes[I.Dst];
      for (uint32_t L = 0; L < Lanes; ++L)
        E.movMR64(RBX, d(A + L), RAX);
      countInline(I.Op);
      break;
    }
    case MOp::VAffine: {
      NOp N;
      N.F = NOp::Fn::Affine;
      N.Kind = I.Kind;
      N.A = Off[I.Dst];
      N.B = Off[I.Srcs[0]];
      N.C = Off[I.Srcs[1]];
      N.Lanes = RegLanes[I.Dst];
      emitShim(I.Op, N);
      break;
    }
    case MOp::VSetLane0:
      // Scalar first: it may be overwritten by the copy (VM reads it
      // into a local before its memcpy).
      E.movRM64(RDX, RBX, d(Off[I.Srcs[1]]));
      copyLanes(Off[I.Dst], Off[I.Srcs[0]], RegLanes[I.Dst]);
      E.movMR64(RBX, d(Off[I.Dst]), RDX);
      countInline(I.Op);
      break;
    case MOp::VExtract: {
      // Source lanes resolve at build time, exactly like the decoder's
      // aux table.
      uint32_t A = Off[I.Dst], Lanes = RegLanes[I.Dst];
      unsigned LC = RegLanes[I.Srcs[0]];
      for (uint32_t L = 0; L < Lanes; ++L) {
        uint64_t Pos = static_cast<uint64_t>(I.Imm) +
                       static_cast<uint64_t>(L) * I.Imm2;
        assert(Pos / LC < I.Srcs.size() && "extract out of concat range");
        uint32_t Src = Off[I.Srcs[Pos / LC]] + static_cast<uint32_t>(Pos % LC);
        E.movRM64(RAX, RBX, d(Src));
        E.movMR64(RBX, d(A + L), RAX);
      }
      countInline(I.Op);
      break;
    }
    case MOp::VIlvLo:
    case MOp::VIlvHi: {
      uint32_t A = Off[I.Dst], Lanes = RegLanes[I.Dst];
      uint32_t B = Off[I.Srcs[0]], C = Off[I.Srcs[1]];
      uint32_t Half = Lanes / 2;
      uint32_t Base = I.Op == MOp::VIlvHi ? Half : 0;
      // Keep the VM handler's exact load/store interleaving: sources
      // may alias the destination.
      for (uint32_t L = 0; L < Half; ++L) {
        E.movRM64(RAX, RBX, d(B + Base + L));
        E.movMR64(RBX, d(A + 2 * L), RAX);
        E.movRM64(RAX, RBX, d(C + Base + L));
        E.movMR64(RBX, d(A + 2 * L + 1), RAX);
      }
      countInline(I.Op);
      break;
    }
    case MOp::VWMulLo:
    case MOp::VWMulHi:
      emitShim(I.Op, wmulOp(I, I.Op == MOp::VWMulHi));
      break;
    case MOp::VPack: {
      NOp N;
      N.F = NOp::Fn::Pack;
      N.Kind = I.Kind;
      N.SrcKind = F.Regs[I.Srcs[0]].Kind;
      N.A = Off[I.Dst];
      N.B = Off[I.Srcs[0]];
      N.C = Off[I.Srcs[1]];
      N.Lanes = RegLanes[I.Dst];
      emitShim(I.Op, N);
      break;
    }
    case MOp::VUnpackLo:
    case MOp::VUnpackHi: {
      NOp N;
      N.F = NOp::Fn::Unpack;
      N.Kind = I.Kind;
      N.SrcKind = F.Regs[I.Srcs[0]].Kind;
      N.A = Off[I.Dst];
      N.B = Off[I.Srcs[0]];
      N.Lanes = RegLanes[I.Dst];
      N.Imm = I.Op == MOp::VUnpackHi ? N.Lanes : 0;
      emitShim(I.Op, N);
      break;
    }
    case MOp::VDot: {
      NOp N;
      N.F = NOp::Fn::Dot;
      N.Kind = I.Kind;
      N.SrcKind = F.Regs[I.Srcs[0]].Kind;
      N.A = Off[I.Dst];
      N.B = Off[I.Srcs[0]];
      N.C = Off[I.Srcs[1]];
      N.D = Off[I.Srcs[2]];
      N.Lanes = RegLanes[I.Dst];
      emitShim(I.Op, N);
      break;
    }
    case MOp::Reduce: {
      uint32_t Lanes = RegLanes[I.Srcs[0]];
      if (inlinableBin(I.SubOp, I.Kind)) {
        // Accumulate in the scratch lane (the VM accumulates in a
        // local), then write the destination once.
        E.movRM64(RAX, RBX, d(Off[I.Srcs[0]]));
        E.movMR64(RBX, d(ScratchLane), RAX);
        for (uint32_t L = 1; L < Lanes; ++L)
          binLane(I.SubOp, I.Kind, ScratchLane, ScratchLane,
                  Off[I.Srcs[0]] + L);
        E.movRM64(RAX, RBX, d(ScratchLane));
        E.movMR64(RBX, d(Off[I.Dst]), RAX);
        countInline(I.Op);
      } else {
        NOp N;
        N.F = NOp::Fn::Reduce;
        N.Sub = I.SubOp;
        N.Kind = I.Kind;
        N.A = Off[I.Dst];
        N.B = Off[I.Srcs[0]];
        N.Lanes = Lanes;
        emitShim(I.Op, N);
      }
      break;
    }
    case MOp::CallLib:
      switch (I.SubOp) {
      case Opcode::WidenMultLo:
        emitShim(I.Op, wmulOp(I, false));
        break;
      case Opcode::WidenMultHi:
        emitShim(I.Op, wmulOp(I, true));
        break;
      case Opcode::Convert: {
        NOp N;
        N.F = NOp::Fn::Cvt;
        N.Kind = I.Kind;
        N.SrcKind = F.Regs[I.Srcs[0]].Kind;
        N.A = Off[I.Dst];
        N.B = Off[I.Srcs[0]];
        N.Lanes = RegLanes[I.Dst];
        emitShim(I.Op, N);
        break;
      }
      default:
        vapor_unreachable("unsupported library call");
      }
      break;
    case MOp::SpillLd:
    case MOp::SpillSt:
      // Cost-model traffic: no machine state, but one VM PC slot.
      countInline(I.Op);
      break;
    }
    ++Ordinal;
    ++U.Stats.MInstrs;
  }

  NOp wmulOp(const MInstr &I, bool Hi) const {
    NOp N;
    N.F = NOp::Fn::WMul;
    N.Kind = I.Kind;
    N.SrcKind = F.Regs[I.Srcs[0]].Kind;
    N.A = Off[I.Dst];
    N.B = Off[I.Srcs[0]];
    N.C = Off[I.Srcs[1]];
    N.Lanes = RegLanes[I.Dst];
    N.Imm = Hi ? N.Lanes : 0;
    return N;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Public API.
//===----------------------------------------------------------------------===//

Expected<std::shared_ptr<const NativeUnit>>
vapor::codegen::compileNative(const MFunction &F, const TargetDesc &T,
                              const MemoryImage &Image,
                              const NativeOptions &Opts) {
  if (!supported(Opts.Features))
    return Status::error(status::Code::UnsupportedIdiom, status::Layer::Jit,
                         "native tier unsupported on this host (needs "
                         "x86-64 + sse2; have '" +
                             Opts.Features.str() + "')");

  auto U = std::make_shared<NativeUnit>();
  NativeBuilder B(F, Image, Opts.Features, Opts.Plan, *U);
  B.build();
  U->TargetName = T.Name;
  U->Stats.FeaturesUsed = Opts.Features.str();

  const std::vector<uint8_t> &Code = B.code();
  if (!U->Code.allocate(Code.size()))
    return Status::error(status::Code::Internal, status::Layer::Jit,
                         "executable page allocation failed");
  std::memcpy(U->Code.base(), Code.data(), Code.size());
  if (!U->Code.seal())
    return Status::error(status::Code::Internal, status::Layer::Jit,
                         "W^X seal of generated code failed");
  return std::shared_ptr<const NativeUnit>(std::move(U));
}

NativeExec::NativeExec(std::shared_ptr<const NativeUnit> U,
                       MemoryImage &Image)
    : Unit(std::move(U)), Mem(Image), RegStore(Unit->LaneTotal, 0) {
  Trap.Target = Unit->TargetName;
}

void NativeExec::setParamInt(const std::string &Name, int64_t V) {
  for (const DecodedProgram::ParamSlot &P : Unit->Params) {
    if (P.Name != Name)
      continue;
    RegStore[P.Off] = isFloatKind(P.Kind)
                          ? encodeFP(P.Kind, static_cast<double>(V))
                          : encodeInt(P.Kind, V);
    return;
  }
  fatalError("unknown integer parameter '" + Name + "'");
}

void NativeExec::setParamFP(const std::string &Name, double V) {
  for (const DecodedProgram::ParamSlot &P : Unit->Params) {
    if (P.Name != Name)
      continue;
    RegStore[P.Off] = isFloatKind(P.Kind)
                          ? encodeFP(P.Kind, V)
                          : encodeInt(P.Kind, static_cast<int64_t>(V));
    return;
  }
  fatalError("unknown float parameter '" + Name + "'");
}

Status NativeExec::run() {
  using status::Code;
  using status::Layer;
  if (Trapped) // A previous run already faulted; don't resume.
    return Status::error(Trap.TrapKind == TrapInfo::Kind::Alignment
                             ? Code::AlignmentTrap
                             : Code::OutOfBoundsAccess,
                         Layer::Vm, Trap.str());

  // Fault-injection site: a fueled native run reports deadline
  // exhaustion up front -- the injected analogue of a runaway kernel,
  // without needing one (mirrors the VM's fueled-entry site).
  if (Fuel != 0 &&
      faultinject::shouldFire(faultinject::SiteClass::Deadline))
    return Status::error(Code::DeadlineExceeded, Layer::Vm,
                         "injected fault: native deadline exceeded");

  NativeContext Ctx;
  Ctx.Lanes = RegStore.data();
  Ctx.MemBias = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Mem.data())) -
                Mem.lowAddr();
  Ctx.MemLo = Mem.lowAddr();
  Ctx.MemHi = Mem.highAddr();
  Ctx.FuelLeft = Fuel;
  std::jmp_buf DeadlineJmp;
  Ctx.DeadlineJmp = &DeadlineJmp;
  // NOLINTNEXTLINE(cert-err52-cpp): longjmp is the only way to abandon a
  // generated frame; nothing with a destructor is live across it.
  if (setjmp(DeadlineJmp) != 0) {
    static obs::Counter Deadlines("native.deadline_exceeded");
    Deadlines.add(1);
    return Status::error(
        Code::DeadlineExceeded, Layer::Vm,
        "deadline exceeded: native shim-call budget of " +
            std::to_string(Fuel) + " exhausted on " + Unit->TargetName);
  }

  uint64_t Rc = Unit->entry()(&Ctx);
  AuditAlignFired += Ctx.AuditAlign;
  AuditBoundsFired += Ctx.AuditBounds;
  if (Rc == 0)
    return Status::okStatus();

  Trapped = true;
  Trap.TrapKind =
      Rc == 1 ? TrapInfo::Kind::Alignment : TrapInfo::Kind::OutOfBounds;
  Trap.OpIndex = Ctx.TrapOp;
  Trap.Address = Ctx.TrapAddr;
  Trap.RequiredAlign = Ctx.TrapAlign;
  Trap.IsStore = Ctx.TrapIsStore != 0;
  Trap.Target = Unit->TargetName;
  return Status::error(Rc == 1 ? Code::AlignmentTrap : Code::OutOfBoundsAccess,
                       Layer::Vm, Trap.str());
}
