//===- codegen/CpuFeatures.cpp - Runtime host-ISA detection ----------------===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//

#include "codegen/CpuFeatures.h"

#ifndef VAPOR_NATIVE_ENABLED
#define VAPOR_NATIVE_ENABLED 1
#endif

#if VAPOR_NATIVE_ENABLED && defined(__x86_64__)
#include <cpuid.h>
#endif

using namespace vapor;
using namespace vapor::codegen;

std::string CpuFeatures::str() const {
  std::string S;
  auto Tag = [&](bool On, const char *Name) {
    if (!On)
      return;
    if (!S.empty())
      S += ' ';
    S += Name;
  };
  Tag(X64, "x86-64");
  Tag(SSE2, "sse2");
  Tag(SSE41, "sse4.1");
  Tag(AVX, "avx");
  Tag(AVX2, "avx2");
  return S.empty() ? "none" : S;
}

#if VAPOR_NATIVE_ENABLED && defined(__x86_64__)

static CpuFeatures probe() {
  CpuFeatures FX;
  FX.X64 = true;
  unsigned A = 0, B = 0, C = 0, D = 0;
  if (!__get_cpuid(1, &A, &B, &C, &D))
    return FX;
  FX.SSE2 = (D >> 26) & 1;
  FX.SSE41 = (C >> 19) & 1;

  // AVX needs the feature bit AND the OS to have enabled xmm+ymm XSAVE
  // state (OSXSAVE set, XCR0 bits 1 and 2).
  bool OsXsave = (C >> 27) & 1;
  bool AvxBit = (C >> 28) & 1;
  if (OsXsave && AvxBit) {
    unsigned Lo, Hi;
    __asm__ __volatile__("xgetbv" : "=a"(Lo), "=d"(Hi) : "c"(0));
    if ((Lo & 0x6) == 0x6) {
      FX.AVX = true;
      unsigned A7 = 0, B7 = 0, C7 = 0, D7 = 0;
      if (__get_cpuid_count(7, 0, &A7, &B7, &C7, &D7))
        FX.AVX2 = (B7 >> 5) & 1;
    }
  }
  return FX;
}

const CpuFeatures &vapor::codegen::hostFeatures() {
  static const CpuFeatures FX = probe();
  return FX;
}

#else // !VAPOR_NATIVE_ENABLED || !__x86_64__

const CpuFeatures &vapor::codegen::hostFeatures() {
  static const CpuFeatures FX; // All false: native tier stands down.
  return FX;
}

#endif

bool vapor::codegen::supported(const CpuFeatures &FX) {
  return FX.X64 && FX.SSE2;
}

bool vapor::codegen::supported() { return supported(hostFeatures()); }
