//===- codegen/NativeJit.h - MachineIR -> x86-64 binary emitter -*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/codegen/README.md for the
// ABI, the encoding table, and the demotion contract.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution tier: compiles the online JIT's MachineIR straight
/// to x86-64 machine code in mmap'd W^X pages, bypassing the cycle-model
/// VM entirely. The VM stays the golden, portable tier -- native output
/// must be bit-exact against it, including trap attribution, so the
/// emitter mirrors the VM decoder's flattening walk statement for
/// statement and keeps a running *ordinal* in lockstep with the VM's
/// pre-fusion PC.
///
/// Ops with a proven x86 equivalence (Table 1 idiom memory ops, lane-wise
/// int/fp arithmetic, compares, selects, permute/realign moves,
/// reductions) are emitted inline -- packed SSE2/VEX forms where the lane
/// layout allows, scalar x86-64 otherwise. Everything else (divides,
/// converts, widening multiplies, packs, dots, I1-kind ALU) calls a tiny
/// C++ shim that reuses the exact ScalarOps helpers the VM runs, making
/// bit-equality true by construction rather than by re-derivation.
///
/// The encoding set (legacy SSE2 vs VEX-128 vs VEX-256) is chosen at
/// compile time from a CpuFeatures mask, normally the host CPUID probe.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_CODEGEN_NATIVEJIT_H
#define VAPOR_CODEGEN_NATIVEJIT_H

#include "codegen/CpuFeatures.h"
#include "codegen/ExecMem.h"
#include "ir/Opcode.h"
#include "ir/Type.h"
#include "support/Status.h"
#include "target/Elision.h"
#include "target/MachineIR.h"
#include "target/MemoryImage.h"
#include "target/Target.h"
#include "target/VM.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace vapor {
namespace codegen {

/// The runtime state block the generated function receives (in rdi). The
/// prologue pins Lanes/MemBias/MemLo/MemHi in callee-saved registers; the
/// Trap* fields are written by the trap stubs before the early return.
/// Field offsets are part of the generated-code ABI, hence the asserts.
struct NativeContext {
  uint64_t *Lanes = nullptr; ///< Lane file base (same layout as the VM's).
  uint64_t MemBias = 0;      ///< host pointer == virtual addr + MemBias.
  uint64_t MemLo = 0;        ///< First valid virtual address.
  uint64_t MemHi = 0;        ///< One past the last valid virtual address.
  uint64_t TrapAddr = 0;     ///< Faulting virtual address.
  uint32_t TrapOp = ~0u;     ///< Pre-fusion op ordinal (~0u for OOB, as VM).
  uint32_t TrapAlign = 0;    ///< Required alignment (0 for OOB).
  uint8_t TrapIsStore = 0;
  /// Audit-mode telemetry (elision plans in ElisionMode::Audit): counts
  /// of genuine would-have-been-elided predicate fires, incremented
  /// inline by the generated code before the (still live) checks run.
  uint64_t AuditAlign = 0;
  uint64_t AuditBounds = 0;
  /// Deadline checkpoint state, consumed by vapor_codegen_shim only (the
  /// generated code never reads these, so they sit past the ABI-asserted
  /// prefix). FuelLeft is the remaining shim-call budget; 0 disarms the
  /// checkpoint. When the budget runs out the shim longjmps through
  /// DeadlineJmp (a std::jmp_buf*) back into NativeExec::run, which
  /// reports DeadlineExceeded -- the only way to stop a generated loop
  /// whose body no longer touches C++ except at shim boundaries.
  uint64_t FuelLeft = 0;
  void *DeadlineJmp = nullptr;
};
static_assert(offsetof(NativeContext, Lanes) == 0, "codegen ABI");
static_assert(offsetof(NativeContext, MemBias) == 8, "codegen ABI");
static_assert(offsetof(NativeContext, MemLo) == 16, "codegen ABI");
static_assert(offsetof(NativeContext, MemHi) == 24, "codegen ABI");
static_assert(offsetof(NativeContext, TrapAddr) == 32, "codegen ABI");
static_assert(offsetof(NativeContext, TrapOp) == 40, "codegen ABI");
static_assert(offsetof(NativeContext, TrapAlign) == 44, "codegen ABI");
static_assert(offsetof(NativeContext, TrapIsStore) == 48, "codegen ABI");
static_assert(offsetof(NativeContext, AuditAlign) == 56, "codegen ABI");
static_assert(offsetof(NativeContext, AuditBounds) == 64, "codegen ABI");

/// One deferred operation: the generated code calls vapor_codegen_shim
/// with a pointer to its NOp, and the shim replays the VM handler's exact
/// lane loop over ScalarOps. Shims only touch the lane file -- never
/// memory -- so they cannot trap.
struct NOp {
  enum class Fn : uint8_t {
    Bin,    ///< applyBinop lane loop (div/rem and I1/None kinds).
    Un,     ///< applyUnop lane loop.
    Cmp,    ///< applyCompare lane loop.
    Sel,    ///< select lane loop.
    Cvt,    ///< applyConvert lane loop.
    WMul,   ///< widening-multiply half (VWMulLo/Hi, CallLib WidenMult).
    Pack,   ///< VPack narrowing interleave.
    Unpack, ///< VUnpackLo/Hi widening half.
    Dot,    ///< VDot fused dot-product step.
    Affine, ///< VAffine lane ramp.
    Reduce, ///< Horizontal reduction.
  };
  Fn F = Fn::Bin;
  ir::Opcode Sub = ir::Opcode::Add;
  ir::ScalarKind Kind = ir::ScalarKind::None;
  ir::ScalarKind SrcKind = ir::ScalarKind::None;
  uint32_t A = 0, B = 0, C = 0, D = 0; ///< Lane-file offsets (lane units).
  uint32_t Lanes = 1;
  uint64_t Imm = 0;
};

extern "C" void vapor_codegen_shim(NativeContext *Ctx, const NOp *Op);

/// One slot per MOp value, for the per-op inline/helper breakdown.
constexpr unsigned NumMOps = static_cast<unsigned>(target::MOp::SpillSt) + 1;

struct NativeStats {
  uint64_t MInstrs = 0;   ///< MachineIR instructions walked.
  uint64_t InlineOps = 0; ///< Ops lowered to inline x86-64.
  uint64_t HelperOps = 0; ///< Ops lowered to ScalarOps shim calls.
  uint64_t PackedOps = 0; ///< SIMD-packed chunks emitted.
  uint64_t VexChunks = 0; ///< 256-bit VEX chunks among those.
  uint64_t CodeBytes = 0;
  std::string FeaturesUsed; ///< CpuFeatures::str() of the encoding set.
  std::array<uint32_t, NumMOps> InlineByOp{};
  std::array<uint32_t, NumMOps> HelperByOp{};
};

struct NativeOptions {
  /// Encoding set. Defaults to the host probe; tests force subsets to
  /// check feature-gated selection.
  CpuFeatures Features = hostFeatures();
  /// Checked elision plan (may be null): granted accesses drop (On) or
  /// audit-count (Audit) their inline align/bounds check sequences. The
  /// plan must outlive the compile call only -- grants are baked into
  /// the emitted code, so cache keys must include the plan hash.
  const target::ElisionPlan *Plan = nullptr;
};

/// An immutable compiled unit: sealed executable pages plus the shim
/// table the code points into and the parameter layout mirrored from the
/// VM decoder. Placement-specific (LoadBase bakes array bases), so cache
/// keys must include the memory-image placement hash.
class NativeUnit {
public:
  using EntryFn = uint64_t (*)(NativeContext *);

  ExecMem Code;
  std::deque<NOp> Shims; ///< deque: addresses are baked into the code.
  std::vector<target::DecodedProgram::ParamSlot> Params;
  uint32_t LaneCount = 0; ///< Register-file lanes (excl. scratch).
  uint32_t LaneTotal = 0; ///< Allocation size incl. scratch lanes.
  uint32_t OpCount = 0;   ///< Pre-fusion op ordinals emitted.
  std::string TargetName;
  NativeStats Stats;

  EntryFn entry() const {
    return reinterpret_cast<EntryFn>(Code.base());
  }
};

/// Binds a compiled unit to one MemoryImage and runs it, mirroring the
/// VM's execution API (setParam*, run, trapped, trapInfo).
class NativeExec {
public:
  NativeExec(std::shared_ptr<const NativeUnit> U, target::MemoryImage &Mem);

  void setParamInt(const std::string &Name, int64_t V);
  void setParamFP(const std::string &Name, double V);

  /// Executes. On a trap, returns the same Status the VM would
  /// (AlignmentTrap/OutOfBoundsAccess at Layer::Vm) with trapInfo()
  /// carrying VM-identical attribution.
  Status run();

  bool trapped() const { return Trapped; }
  const target::TrapInfo &trapInfo() const { return Trap; }

  /// Audit-mode telemetry accumulated across runs (mirrors
  /// VM::auditAlignFired/auditBoundsFired).
  uint64_t auditAlignFired() const { return AuditAlignFired; }
  uint64_t auditBoundsFired() const { return AuditBoundsFired; }

  /// Arms a per-run shim-call budget (mirrors VM::setFuel, but the unit
  /// is deferred-op shim calls -- the native tier's only recurring C++
  /// checkpoints). A run whose generated code makes more than \p
  /// MaxShimCalls shim calls is abandoned mid-flight via longjmp and
  /// reported as DeadlineExceeded. 0 (default) disarms; all-inline
  /// kernels make no shim calls and can only be bounded by the VM tier.
  void setFuel(uint64_t MaxShimCalls) { Fuel = MaxShimCalls; }

private:
  std::shared_ptr<const NativeUnit> Unit;
  target::MemoryImage &Mem;
  std::vector<uint64_t> RegStore;
  uint64_t Fuel = 0; ///< Per-run shim-call budget; 0 = unlimited.
  target::TrapInfo Trap;
  bool Trapped = false;
  uint64_t AuditAlignFired = 0;
  uint64_t AuditBoundsFired = 0;
};

/// Compiles \p F (as lowered for \p T) to native x86-64 bound to the
/// array placement of \p Image. Fails with UnsupportedIdiom when the
/// feature set cannot host the tier at all, and Internal when executable
/// pages cannot be obtained -- both demote cleanly to the VM.
Expected<std::shared_ptr<const NativeUnit>>
compileNative(const target::MFunction &F, const target::TargetDesc &T,
              const target::MemoryImage &Image, const NativeOptions &Opts);

} // namespace codegen
} // namespace vapor

#endif // VAPOR_CODEGEN_NATIVEJIT_H
