//===- codegen/ExecMem.h - W^X executable page management ------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// mmap-backed executable memory with a strict W^X lifecycle: a region is
/// allocated read-write, filled with emitted machine code, then *sealed*
/// read-execute. No mapping is ever writable and executable at the same
/// time, and sealing is one-way -- there is no API to make a sealed
/// region writable again. Release is idempotent (double-free safe) and
/// runs on destruction, so a unit that fails mid-build cannot leak a
/// mapping.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_CODEGEN_EXECMEM_H
#define VAPOR_CODEGEN_EXECMEM_H

#include <cstddef>
#include <cstdint>

namespace vapor {
namespace codegen {

class ExecMem {
public:
  ExecMem() = default;
  ~ExecMem() { release(); }

  ExecMem(const ExecMem &) = delete;
  ExecMem &operator=(const ExecMem &) = delete;
  ExecMem(ExecMem &&O) noexcept { moveFrom(O); }
  ExecMem &operator=(ExecMem &&O) noexcept {
    if (this != &O) {
      release();
      moveFrom(O);
    }
    return *this;
  }

  /// Maps \p Size bytes read-write (rounded up to whole pages).
  /// \returns false when the mapping fails or one is already held.
  bool allocate(size_t Size);

  /// Flips the mapping read-execute. \returns false when nothing is
  /// mapped, the region is already sealed, or mprotect fails (the
  /// mapping is released in that last case: never leave RW code around).
  bool seal();

  /// Unmaps. Safe to call repeatedly and with nothing mapped.
  void release();

  void *base() const { return Ptr; }
  size_t size() const { return Len; }       ///< Requested code bytes.
  size_t mappedSize() const { return Cap; } ///< Whole-page mapping size.
  bool sealed() const { return Sealed; }

private:
  void moveFrom(ExecMem &O) {
    Ptr = O.Ptr;
    Len = O.Len;
    Cap = O.Cap;
    Sealed = O.Sealed;
    O.Ptr = nullptr;
    O.Len = O.Cap = 0;
    O.Sealed = false;
  }

  void *Ptr = nullptr;
  size_t Len = 0;
  size_t Cap = 0;
  bool Sealed = false;
};

} // namespace codegen
} // namespace vapor

#endif // VAPOR_CODEGEN_EXECMEM_H
