//===- support/Support.h - Small shared utilities -------------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See README.md for the project
// overview and DESIGN.md for the system inventory.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers, alignment arithmetic, and a deterministic RNG shared
/// by every Vapor library. Nothing here depends on any other module.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_SUPPORT_SUPPORT_H
#define VAPOR_SUPPORT_SUPPORT_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace vapor {

/// Marks a point in the code that must never be reached. Prints \p Msg and
/// aborts; unlike assert() it also fires in release builds, because reaching
/// one of these always means a compiler-internal invariant was violated.
[[noreturn]] inline void unreachable(const char *Msg, const char *File,
                                     int Line) {
  std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

#define vapor_unreachable(MSG) ::vapor::unreachable(MSG, __FILE__, __LINE__)

/// Inlining controls for hot interpreter paths. The dispatch loop leans on
/// small always-inline gates in front of out-of-line slow paths; without
/// the attribute, GCC leaves e.g. the fault-injection hook as a real call
/// on every checked vector access.
#if defined(__GNUC__) || defined(__clang__)
#define VAPOR_ALWAYS_INLINE inline __attribute__((always_inline))
#define VAPOR_NOINLINE __attribute__((noinline))
#else
#define VAPOR_ALWAYS_INLINE inline
#define VAPOR_NOINLINE
#endif

/// Reports a fatal usage error (malformed input to a tool-level API) and
/// aborts. Library code prefers returning diagnostics; this is the backstop.
[[noreturn]] inline void fatalError(const std::string &Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg.c_str());
  std::abort();
}

/// \returns \p Value rounded down to the nearest multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  return Value & ~(Align - 1);
}

/// \returns \p Value rounded up to the nearest multiple of \p Align.
/// \p Align must be a power of two.
constexpr uint64_t alignUp(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// \returns true if \p Value is a multiple of \p Align (power of two).
constexpr bool isAligned(uint64_t Value, uint64_t Align) {
  return (Value & (Align - 1)) == 0;
}

/// \returns true if \p Value is a power of two (and nonzero).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Deterministic 64-bit splitmix generator. Used to fill benchmark arrays
/// so every run (and every target) sees identical input data.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniformly distributed integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// \returns a float in [0, 1).
  double nextUnit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace vapor

#endif // VAPOR_SUPPORT_SUPPORT_H
