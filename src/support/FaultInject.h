//===- support/FaultInject.h - Deterministic fault injection ---*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/support/README.md for the
// site-class inventory and the crashtest sweep built on top of this.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, site-counted fault-injection controller for the online
/// stage, in the spirit of the verifier's mutation test: instead of
/// corrupting the artifact, it forces the *consumer-side* failure paths —
/// decode errors, verifier findings, JIT "unsupported idiom" failures, and
/// VM alignment traps — at a chosen dynamic occurrence ("site") of each
/// class. The executor's degradation chain is validated by sweeping every
/// class and asserting that each run still completes with a correct,
/// honestly-tiered answer (tools/vapor-crashtest).
///
/// Hooks are compiled in unconditionally but gated behind one `Active`
/// bool, so uninstrumented runs pay a single predictable branch per hook
/// (only the VM's checked-access hook is on a hot path).
///
/// The controller is intentionally thread-local: every sweep thread owns
/// an independent controller, so the parallel crashtest driver can arm a
/// fault on one worker without perturbing the site counters of any other.
/// Arming and counting therefore stay exactly as deterministic as the
/// single-threaded sweeps were, regardless of how cells are scheduled.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_SUPPORT_FAULTINJECT_H
#define VAPOR_SUPPORT_FAULTINJECT_H

#include "support/Support.h"

#include <cstdint>

namespace vapor {
namespace faultinject {

/// The injectable failure classes, one per fallible online-stage surface.
enum class SiteClass : uint8_t {
  Decode = 0, ///< bytecode::decode returns a malformed-module Status.
  Verify,     ///< verify::verifyModule reports a fabricated Error finding.
  JitLower,   ///< jit::compileChecked returns unsupported-idiom.
  VmAlign,    ///< The VM's next checked vector access alignment-traps.
  NativeTrap, ///< The native tier's next run reports an alignment trap.
  Deadline,   ///< A fueled run reports DeadlineExceeded at its entry.
  QueueFull,  ///< The server's admission gate reports Overloaded.
  SocketIo,   ///< The server drops one response write on the floor.
};
constexpr unsigned NumSiteClasses = 8;

inline const char *siteClassName(SiteClass S) {
  switch (S) {
  case SiteClass::Decode:
    return "decode";
  case SiteClass::Verify:
    return "verify";
  case SiteClass::JitLower:
    return "jit-lower";
  case SiteClass::VmAlign:
    return "vm-align";
  case SiteClass::NativeTrap:
    return "native-trap";
  case SiteClass::Deadline:
    return "deadline";
  case SiteClass::QueueFull:
    return "queue-full";
  case SiteClass::SocketIo:
    return "socket-io";
  }
  return "unknown";
}

struct Controller {
  bool Active = false;  ///< Master gate: counters/firing only when set.
  bool Armed = false;   ///< A fault is scheduled.
  bool Sticky = false;  ///< Fire at every hit from FireAt on, not just once.
  SiteClass Target = SiteClass::Decode;
  uint64_t FireAt = 0;  ///< Dynamic hit index (per class) that fires.
  uint64_t Hits[NumSiteClasses] = {};
  uint64_t Fired = 0;   ///< Faults actually delivered since last reset.
};

namespace detail {
/// Constant-initialized (all members are trivial), so controller() has no
/// function-local-static init guard — the VM's checked-access hook reduces
/// to one thread-local bool load on the uninstrumented path. thread_local
/// gives every sweep worker its own deterministic counters (see file
/// comment); the code cache keys off the same flag to stay out of the way
/// of instrumented runs (jit/CodeCache.h).
inline thread_local Controller GlobalController;
} // namespace detail

inline Controller &controller() { return detail::GlobalController; }

/// Starts counting site hits without firing (dry run for site discovery).
inline void startCounting() {
  Controller &C = controller();
  C.Active = true;
  C.Armed = false;
}

/// Schedules one fault: class \p S fires at its \p FireAt-th dynamic hit
/// (0-based), once — or at every hit from there on when \p Sticky.
inline void arm(SiteClass S, uint64_t FireAt = 0, bool Sticky = false) {
  Controller &C = controller();
  C.Active = true;
  C.Armed = true;
  C.Sticky = Sticky;
  C.Target = S;
  C.FireAt = FireAt;
}

/// Deactivates the controller entirely (hooks return to the 1-branch fast
/// path). Counters keep their values until resetHits().
inline void disarm() {
  Controller &C = controller();
  C.Active = false;
  C.Armed = false;
}

inline void resetHits() {
  Controller &C = controller();
  for (uint64_t &H : C.Hits)
    H = 0;
  C.Fired = 0;
}

inline uint64_t hits(SiteClass S) {
  return controller().Hits[static_cast<unsigned>(S)];
}

inline uint64_t fired() { return controller().Fired; }

namespace detail {
/// The counting-and-firing slow path, deliberately out of line: it only
/// runs under an active controller (crashtest sweeps), so instrumented
/// runs pay the call and uninstrumented hot loops keep a two-instruction
/// gate.
VAPOR_NOINLINE inline bool shouldFireSlow(SiteClass S) {
  Controller &C = controller();
  uint64_t H = C.Hits[static_cast<unsigned>(S)]++;
  if (!C.Armed || C.Target != S)
    return false;
  if (H == C.FireAt || (C.Sticky && H > C.FireAt)) {
    ++C.Fired;
    return true;
  }
  return false;
}
} // namespace detail

/// The hook: call at a potential fault site of class \p S. \returns true
/// when the scheduled fault should be delivered here. Always inlined so
/// the uninstrumented path is just a thread-local bool load and a
/// predictable branch -- this sits on the VM's checked-access hot path,
/// once per aligned vector access.
VAPOR_ALWAYS_INLINE bool shouldFire(SiteClass S) {
  Controller &C = controller();
  if (__builtin_expect(!C.Active, 1))
    return false;
  return detail::shouldFireSlow(S);
}

/// RAII arming for tests: arms in the constructor, disarms and clears
/// counters on destruction.
class ScopedFault {
public:
  explicit ScopedFault(SiteClass S, uint64_t FireAt = 0, bool Sticky = false) {
    resetHits();
    arm(S, FireAt, Sticky);
  }
  ~ScopedFault() {
    disarm();
    resetHits();
  }
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;
};

} // namespace faultinject
} // namespace vapor

#endif // VAPOR_SUPPORT_FAULTINJECT_H
