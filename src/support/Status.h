//===- support/Status.h - Structured error propagation ---------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/support/README.md for the
// error-code taxonomy and the degradation contract built on top of it.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vapor::status — the structured error type carried through the online
/// stage. The pipeline's fault-tolerance contract ("never fail to produce
/// a correct answer") requires every representable failure to be *returned*
/// rather than aborted on, so the executor can demote the run to the next
/// cheaper tier. A Status names the failing layer, an error code from the
/// taxonomy below, and a human-readable context string; Expected<T> is the
/// value-or-Status carrier used by fallible factory surfaces (bytecode
/// decode, JIT lowering).
///
/// Aborts remain legal only for offline-stage internal invariants
/// (vapor_unreachable / assert in the vectorizer and analyses): reaching
/// one means the *producer* is broken, which no consumer-side tier can
/// recover from honestly.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_SUPPORT_STATUS_H
#define VAPOR_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vapor {
namespace status {

/// What went wrong. Codes are grouped by the layer that raises them; the
/// generic codes at the end may be raised anywhere.
enum class Code : uint8_t {
  Ok = 0,
  // Bytecode container (decode-time).
  BadMagic,           ///< Not a vapor bytecode module at all.
  BadVersion,         ///< Container version this consumer cannot read.
  TruncatedModule,    ///< Byte stream ended mid-field.
  MalformedModule,    ///< Structurally invalid field values.
  TrailingGarbage,    ///< Well-formed module followed by extra bytes.
  RejectedByVerifier, ///< Decoded, but the IR verifier refused it.
  // Static verifier gate.
  VerificationFailed, ///< A lowering exists that could trap/miscompile.
  // Online compiler.
  UnsupportedIdiom,   ///< No lowering (not even scalar) for an idiom.
  // VM execution.
  AlignmentTrap,      ///< Aligned vector access at a misaligned address.
  OutOfBoundsAccess,  ///< Access outside the memory image.
  // Deadlines and admission control (the execution service).
  DeadlineExceeded,   ///< Fuel/step budget exhausted; terminal, never demotes.
  Overloaded,         ///< Bounded queue full; retry after backoff.
  QuotaExceeded,      ///< Per-tenant in-flight cap reached.
  Unavailable,        ///< Server draining; no new work accepted.
  // Wire protocol.
  MalformedFrame,     ///< Framing violation (magic, length cap, kind).
  DuplicateRequest,   ///< Request id already in flight on this connection.
  // Generic.
  InvalidArgument,
  Internal,
};

/// The pipeline layer a Status originated in.
enum class Layer : uint8_t {
  None = 0,
  Bytecode, ///< Split-layer container decode.
  Verify,   ///< Static bytecode verifier gate.
  Jit,      ///< Online lowering.
  Vm,       ///< Target-model execution.
  Pipeline, ///< Driver-level (executor) conditions.
  Server,   ///< Execution-service framing/admission/scheduling.
};

inline const char *codeName(Code C) {
  switch (C) {
  case Code::Ok:
    return "ok";
  case Code::BadMagic:
    return "bad-magic";
  case Code::BadVersion:
    return "bad-version";
  case Code::TruncatedModule:
    return "truncated-module";
  case Code::MalformedModule:
    return "malformed-module";
  case Code::TrailingGarbage:
    return "trailing-garbage";
  case Code::RejectedByVerifier:
    return "rejected-by-verifier";
  case Code::VerificationFailed:
    return "verification-failed";
  case Code::UnsupportedIdiom:
    return "unsupported-idiom";
  case Code::AlignmentTrap:
    return "alignment-trap";
  case Code::OutOfBoundsAccess:
    return "out-of-bounds-access";
  case Code::DeadlineExceeded:
    return "deadline-exceeded";
  case Code::Overloaded:
    return "overloaded";
  case Code::QuotaExceeded:
    return "quota-exceeded";
  case Code::Unavailable:
    return "unavailable";
  case Code::MalformedFrame:
    return "malformed-frame";
  case Code::DuplicateRequest:
    return "duplicate-request";
  case Code::InvalidArgument:
    return "invalid-argument";
  case Code::Internal:
    return "internal";
  }
  return "unknown";
}

inline const char *layerName(Layer L) {
  switch (L) {
  case Layer::None:
    return "none";
  case Layer::Bytecode:
    return "bytecode";
  case Layer::Verify:
    return "verify";
  case Layer::Jit:
    return "jit";
  case Layer::Vm:
    return "vm";
  case Layer::Pipeline:
    return "pipeline";
  case Layer::Server:
    return "server";
  }
  return "unknown";
}

/// One structured error (or success). Default-constructed = Ok.
class Status {
public:
  Status() = default;

  static Status okStatus() { return Status(); }

  static Status error(Code C, Layer L, std::string Context) {
    assert(C != Code::Ok && "error() requires a non-Ok code");
    Status S;
    S.C = C;
    S.L = L;
    S.Context = std::move(Context);
    return S;
  }

  bool ok() const { return C == Code::Ok; }
  Code code() const { return C; }
  Layer layer() const { return L; }
  const std::string &context() const { return Context; }

  /// "layer: code: context" (or "ok").
  std::string str() const {
    if (ok())
      return "ok";
    std::string S = std::string(layerName(L)) + ": " + codeName(C);
    if (!Context.empty())
      S += ": " + Context;
    return S;
  }

private:
  Code C = Code::Ok;
  Layer L = Layer::None;
  std::string Context;
};

/// Value-or-Status. Construct from a T (success) or a non-Ok Status.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : Val(std::move(Value)) {}
  Expected(Status S) : St(std::move(S)) {
    assert(!St.ok() && "Expected error construction needs a non-Ok Status");
  }

  bool ok() const { return Val.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The Status: Ok when a value is present.
  const Status &status() const { return St; }

  T &operator*() {
    assert(ok() && "dereferencing an errored Expected");
    return *Val;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing an errored Expected");
    return *Val;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the value out (must be ok()).
  T take() {
    assert(ok() && "taking from an errored Expected");
    return std::move(*Val);
  }

private:
  std::optional<T> Val;
  Status St; // Ok iff Val holds a value.
};

} // namespace status

using status::Status;
template <typename T> using Expected = status::Expected<T>;

} // namespace vapor

#endif // VAPOR_SUPPORT_STATUS_H
