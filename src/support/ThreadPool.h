//===- support/ThreadPool.h - Work-stealing task pool ----------*- C++ -*-===//
//
// Part of the Vapor SIMD reproduction. See src/support/README.md for the
// sweep-engine design notes.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the parallel sweep engine: the
/// crashtest and the fig5/fig6/table3 benches run kernel x target cells
/// concurrently, each cell on its own MemoryImage (and, via the
/// thread-local fault-injection controller, its own site counters).
///
/// Design:
///  - each worker owns a deque; submit() distributes jobs round-robin;
///  - a worker pops from the *back* of its own deque (LIFO, cache-warm)
///    and steals from the *front* of a victim's deque (FIFO, the oldest
///    job, which minimizes contention with the victim's own popping);
///  - sleeping workers are woken through one shared condition variable;
///  - wait() blocks until every submitted job has finished (queued and
///    running), so pools are reusable across submission waves.
///
/// Jobs must not throw (the repo builds without exceptions in mind);
/// determinism of results is the *caller's* job: sweep cells write to
/// per-cell state and merge order-independently.
///
//===----------------------------------------------------------------------===//

#ifndef VAPOR_SUPPORT_THREADPOOL_H
#define VAPOR_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vapor {
namespace support {

namespace detail {
/// Thread-local worker id: 0 for the main (or any non-pool) thread,
/// W+1 for pool worker W. Assigned once per worker thread at spawn.
inline thread_local unsigned WorkerId = 0;
} // namespace detail

/// The calling thread's sweep-pool worker id (0 = not a pool worker).
/// The observability layer (obs/Obs.h) uses this as the trace thread id,
/// so parallel sweep cells land on their worker's timeline. Ids repeat
/// across pool instances; at most one sweep pool is live at a time.
inline unsigned currentWorkerId() { return detail::WorkerId; }

class ThreadPool {
public:
  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers) {
    if (Workers == 0)
      Workers = 1;
    Queues.resize(Workers);
    Threads.reserve(Workers);
    for (unsigned W = 0; W < Workers; ++W)
      Threads.emplace_back([this, W] { workerLoop(W); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Stop = true;
    }
    WorkCV.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// \returns the host's hardware concurrency (at least 1). The sweep
  /// drivers use this as the default --jobs value.
  static unsigned defaultWorkerCount() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

  /// Enqueues \p Job on the next worker's deque (round-robin).
  void submit(std::function<void()> Job) {
    unsigned Q = NextQueue.fetch_add(1, std::memory_order_relaxed) %
                 Queues.size();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Pending;
      Queues[Q].push_back(std::move(Job));
    }
    WorkCV.notify_one();
  }

  /// Enqueues \p Job at BACKGROUND priority: a worker only picks it up
  /// once every normal deque (its own and every steal victim's) is
  /// empty, so background work -- the tiering engine's off-thread
  /// compiles -- can never starve foreground jobs of a worker. Within
  /// the background lane jobs run FIFO. wait() covers these too.
  void submitBackground(std::function<void()> Job) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Pending;
      Background.push_back(std::move(Job));
    }
    WorkCV.notify_one();
  }

  /// Blocks until every job submitted so far has *finished* running.
  void wait() {
    std::unique_lock<std::mutex> Lock(Mu);
    IdleCV.wait(Lock, [this] { return Pending == 0; });
  }

private:
  /// Pops a job: own deque's back first, then steal the oldest job from
  /// another worker's deque front. Caller holds Mu.
  bool dequeue(unsigned Self, std::function<void()> &Out) {
    if (!Queues[Self].empty()) {
      Out = std::move(Queues[Self].back());
      Queues[Self].pop_back();
      return true;
    }
    for (size_t I = 1; I < Queues.size(); ++I) {
      size_t Victim = (Self + I) % Queues.size();
      if (!Queues[Victim].empty()) {
        Out = std::move(Queues[Victim].front());
        Queues[Victim].pop_front();
        return true;
      }
    }
    // Background lane last: only an otherwise-idle worker compiles.
    if (!Background.empty()) {
      Out = std::move(Background.front());
      Background.pop_front();
      return true;
    }
    return false;
  }

  void workerLoop(unsigned Self) {
    detail::WorkerId = Self + 1;
    std::unique_lock<std::mutex> Lock(Mu);
    while (true) {
      std::function<void()> Job;
      if (dequeue(Self, Job)) {
        Lock.unlock();
        Job();
        Lock.lock();
        if (--Pending == 0)
          IdleCV.notify_all();
        continue;
      }
      if (Stop)
        return;
      WorkCV.wait(Lock);
    }
  }

  std::vector<std::deque<std::function<void()>>> Queues;
  std::deque<std::function<void()>> Background; ///< Low-priority FIFO lane.
  std::vector<std::thread> Threads;
  std::mutex Mu;
  std::condition_variable WorkCV; ///< Signals new work or shutdown.
  std::condition_variable IdleCV; ///< Signals Pending reaching zero.
  uint64_t Pending = 0;           ///< Jobs queued or running.
  std::atomic<unsigned> NextQueue{0};
  bool Stop = false;
};

/// Runs Fn(0..N-1) across \p Jobs workers and returns when all calls have
/// finished. Jobs <= 1 (or a single item) runs inline on the caller's
/// thread with no pool at all -- the serial path stays byte-identical to
/// the pre-pool drivers, which is what keeps single-threaded sweeps (and
/// their fault-injection counters) trivially deterministic.
inline void parallelFor(unsigned Jobs, size_t N,
                        const std::function<void(size_t)> &Fn) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  ThreadPool Pool(Jobs < N ? Jobs : static_cast<unsigned>(N));
  for (size_t I = 0; I < N; ++I)
    Pool.submit([&Fn, I] { Fn(I); });
  Pool.wait();
}

} // namespace support
} // namespace vapor

#endif // VAPOR_SUPPORT_THREADPOOL_H
